// RDD-FGMRES baseline tests (Algorithm 8): correctness across process
// counts and preconditioners, plus its Table-1 exchange count (m+1).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/fgmres.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {
namespace {

fem::CantileverProblem test_problem() {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  return fem::make_cantilever(spec);
}

Vector reference_solution(const fem::CantileverProblem& prob) {
  Vector x(prob.load.size(), 0.0);
  Ilu0Precond ilu(prob.stiffness);
  SolveOptions opts;
  opts.tol = 1e-12;
  opts.max_iters = 50000;
  const SolveReport res = fgmres(prob.stiffness, prob.load, x, ilu, opts);
  EXPECT_TRUE(res.converged);
  return x;
}

using RddCase = std::tuple<int, PolyKind>;

class RddSolverTest : public ::testing::TestWithParam<RddCase> {};

TEST_P(RddSolverTest, MatchesSequentialSolution) {
  const auto [nparts, kind] = GetParam();
  const fem::CantileverProblem prob = test_problem();
  const Vector x_ref = reference_solution(prob);

  const partition::RddPartition part = exp::make_rdd(prob, nparts);
  RddOptions rdd;
  rdd.poly.kind = kind;
  rdd.poly.degree = kind == PolyKind::Neumann ? 15 : 7;
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 50000;
  const DistSolve res = solve_rdd(part, prob.load, rdd, opts);
  ASSERT_TRUE(res.converged);
  const real_t scale = la::nrm_inf(x_ref);
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale) << "dof " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RddSolverTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(PolyKind::None, PolyKind::Neumann,
                                         PolyKind::Gls)),
    [](const ::testing::TestParamInfo<RddCase>& info) {
      std::string name = "P" + std::to_string(std::get<0>(info.param));
      const PolyKind kind = std::get<1>(info.param);
      name += kind == PolyKind::None
                  ? "_none"
                  : (kind == PolyKind::Neumann ? "_Neumann" : "_GLS");
      return name;
    });

TEST(RddSolver, BlockJacobiIluConverges) {
  const fem::CantileverProblem prob = test_problem();
  const Vector x_ref = reference_solution(prob);
  const partition::RddPartition part = exp::make_rdd(prob, 4);
  RddOptions rdd;
  rdd.precond = RddOptions::Precond::BlockJacobiIlu;
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 50000;
  const DistSolve res = solve_rdd(part, prob.load, rdd, opts);
  ASSERT_TRUE(res.converged);
  const real_t scale = la::nrm_inf(x_ref);
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale);
}

par::PerfCounters per_iteration_delta(const partition::RddPartition& part,
                                      const Vector& f, const RddOptions& rdd,
                                      index_t n) {
  SolveOptions opts;
  opts.tol = 1e-300;
  opts.restart = 25;
  opts.max_iters = n;
  const DistSolve a = solve_rdd(part, f, rdd, opts);
  opts.max_iters = n + 1;
  const DistSolve b = solve_rdd(part, f, rdd, opts);
  return b.rank_counters[0].delta_since(a.rank_counters[0]);
}

class RddTable1Test : public ::testing::TestWithParam<int> {};

TEST_P(RddTable1Test, ExchangesPerIterationAreDegreePlusOne) {
  // Paper Table 1, Algorithm 8: m+1 exchange phases per Arnoldi
  // iteration (m inside the polynomial, 1 for the outer mat-vec).
  const int m = GetParam();
  const fem::CantileverProblem prob = test_problem();
  const partition::RddPartition part = exp::make_rdd(prob, 4);
  RddOptions rdd;
  rdd.poly.degree = m;
  const par::PerfCounters d = per_iteration_delta(part, prob.load, rdd, 3);
  EXPECT_EQ(d.neighbor_exchanges, static_cast<std::uint64_t>(m) + 1);
  EXPECT_EQ(d.matvecs, static_cast<std::uint64_t>(m) + 1);
  // One reduction per h_ij + one for the norm: the 4th iteration does 5.
  EXPECT_EQ(d.global_reductions, 5u);
}

INSTANTIATE_TEST_SUITE_P(Degrees, RddTable1Test, ::testing::Values(1, 3, 7));

TEST(RddSolver, BlockJacobiIluDoesNoExchangeInPrecondition) {
  const fem::CantileverProblem prob = test_problem();
  const partition::RddPartition part = exp::make_rdd(prob, 4);
  RddOptions rdd;
  rdd.precond = RddOptions::Precond::BlockJacobiIlu;
  const par::PerfCounters d = per_iteration_delta(part, prob.load, rdd, 3);
  // Only the outer mat-vec exchanges.
  EXPECT_EQ(d.neighbor_exchanges, 1u);
  EXPECT_EQ(d.matvecs, 1u);
}

TEST(RddSolver, EddAndRddAgreeOnSolution) {
  const fem::CantileverProblem prob = test_problem();
  const partition::RddPartition rpart = exp::make_rdd(prob, 4);
  const partition::EddPartition epart = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 7;
  RddOptions rdd;
  rdd.poly = poly;
  SolveOptions opts;
  opts.tol = 1e-10;
  const DistSolve r1 = solve_rdd(rpart, prob.load, rdd, opts);
  const DistSolve r2 = solve_edd(epart, prob.load, poly, opts);
  ASSERT_TRUE(r1.converged && r2.converged);
  const real_t scale = la::nrm_inf(r1.x);
  for (std::size_t i = 0; i < r1.x.size(); ++i)
    EXPECT_NEAR(r1.x[i], r2.x[i], 1e-6 * scale);
}

TEST(RddSolver, SingleRankNoMessaging) {
  const fem::CantileverProblem prob = test_problem();
  const partition::RddPartition part = exp::make_rdd(prob, 1);
  const DistSolve res = solve_rdd(part, prob.load);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.rank_counters[0].neighbor_msgs, 0u);
}

TEST(RddSolver, MoreRanksMoreMessagesPerExchange) {
  // §5: the RDD mat-vec involves more communicating pairs as P grows.
  const fem::CantileverProblem prob = test_problem();
  RddOptions rdd;
  rdd.poly.degree = 3;
  SolveOptions opts;
  opts.tol = 1e-300;
  opts.max_iters = 3;
  std::uint64_t msgs2 = 0, msgs8 = 0;
  {
    const auto res =
        solve_rdd(exp::make_rdd(prob, 2), prob.load, rdd, opts);
    for (const auto& c : res.rank_counters) msgs2 += c.neighbor_msgs;
  }
  {
    const auto res =
        solve_rdd(exp::make_rdd(prob, 8), prob.load, rdd, opts);
    for (const auto& c : res.rank_counters) msgs8 += c.neighbor_msgs;
  }
  EXPECT_GT(msgs8, msgs2);
}

}  // namespace
}  // namespace pfem::core
