// Lanczos spectrum estimation tests and the adaptive-Θ workflow it
// enables (the paper's Fig. 10 observation that a tighter Θ can beat the
// always-valid (ε, 1) default).
#include <gtest/gtest.h>

#include <cmath>

#include "core/diag_scaling.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "sparse/generators.hpp"
#include "sparse/lanczos.hpp"

namespace pfem::sparse {
namespace {

TEST(Lanczos, RitzValuesBracketTridiagSpectrum) {
  const index_t n = 100;
  const CsrMatrix a = tridiag(n, 2.0, -1.0);
  const double lmin = 2.0 - 2.0 * std::cos(M_PI / (n + 1.0));
  const double lmax = 2.0 + 2.0 * std::cos(M_PI / (n + 1.0));
  const LanczosResult res = lanczos(a, 40);
  ASSERT_GE(res.steps, 10);
  // Ritz values lie inside the spectrum and the extremes converge fast.
  EXPECT_GE(res.ritz_values.front(), lmin - 1e-10);
  EXPECT_LE(res.ritz_values.back(), lmax + 1e-10);
  // Extreme Ritz values converge slowly for this uniformly spread
  // spectrum; 40 steps give ~1e-2 absolute accuracy.
  EXPECT_NEAR(res.ritz_values.back(), lmax, 2e-2);
  EXPECT_NEAR(res.ritz_values.front(), lmin, 2e-2);
}

TEST(Lanczos, ExactOnDiagonalMatrixWithFewDistinctEigenvalues) {
  // 3 distinct eigenvalues -> Lanczos terminates after ~3 steps with the
  // exact spectrum.
  Vector eigs;
  for (int k = 0; k < 30; ++k)
    eigs.push_back(k % 3 == 0 ? 1.0 : (k % 3 == 1 ? 2.0 : 5.0));
  const CsrMatrix a = diagonal_matrix(eigs);
  const LanczosResult res = lanczos(a, 20);
  EXPECT_LE(res.steps, 4);
  EXPECT_NEAR(res.ritz_values.front(), 1.0, 1e-8);
  EXPECT_NEAR(res.ritz_values.back(), 5.0, 1e-8);
}

TEST(Lanczos, EstimateEnclosesScaledFeSpectrum) {
  fem::CantileverSpec spec;
  spec.nx = 12;
  spec.ny = 6;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const core::ScaledSystem s =
      core::scale_system(prob.stiffness, prob.load);
  const Interval iv = estimate_spectrum(s.a, 40);
  EXPECT_GT(iv.lo, 0.0);
  EXPECT_LT(iv.hi, 1.2);  // scaled spectrum is inside (0, 1)
  const double rho = power_method_rho(s.a, 600);
  EXPECT_GE(iv.hi, rho * 0.99);
}

TEST(Lanczos, AdaptiveThetaSolvesAndIsCompetitive) {
  // Build Θ from the Lanczos estimate of the scaled operator and solve;
  // must converge in no more iterations than the default Θ = (ε, 1)
  // (often fewer — Fig. 10's point).
  fem::CantileverSpec spec;
  spec.nx = 16;
  spec.ny = 8;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const core::ScaledSystem s =
      core::scale_system(prob.stiffness, prob.load);
  const Interval iv = estimate_spectrum(s.a, 30);

  const partition::EddPartition part = exp::make_edd(prob, 2);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 40000;

  core::PolySpec adaptive;
  adaptive.degree = 10;
  adaptive.theta = {{iv.lo, iv.hi}};
  const auto res_adaptive = core::solve_edd(part, prob.load, adaptive, opts);

  core::PolySpec fallback;
  fallback.degree = 10;
  const auto res_default = core::solve_edd(part, prob.load, fallback, opts);

  ASSERT_TRUE(res_adaptive.converged);
  ASSERT_TRUE(res_default.converged);
  EXPECT_LE(res_adaptive.iterations, res_default.iterations + 2);
}

TEST(Lanczos, StepCapRespected) {
  const CsrMatrix a = laplace2d(8, 8);
  const LanczosResult res = lanczos(a, 12);
  EXPECT_LE(res.steps, 12);
  EXPECT_EQ(res.ritz_values.size(), static_cast<std::size_t>(res.steps));
}

}  // namespace
}  // namespace pfem::sparse
