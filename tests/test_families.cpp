// Property tests for the problem-family generators (fem/families.hpp).
//
// Every solver-stack guarantee rests on the generated systems being
// well-formed: symmetric, SPD on the free dofs, and — after norm-1
// scaling — spectrum inside (0, 1] (Theorem 1) for ANY jump magnitude,
// anisotropy ratio, or interface placement.  These properties are
// checked across the knob ranges the benches sweep (jumps 1e0–1e6,
// anisotropy up to 1e3, rotated principal axes), plus the registry
// contract, bit-determinism of repeated builds, the dof_coeff class
// split, and the typed rejection of mismatched deflation layouts
// (validate_deflation / BadOperatorError).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/deflation.hpp"
#include "core/diag_scaling.hpp"
#include "exp/experiments.hpp"
#include "fem/families.hpp"
#include "sparse/lanczos.hpp"

using namespace pfem;

namespace {

// a(i, j) by row scan (rows are short for Q4/Hex8 stencils).
real_t entry(const sparse::CsrMatrix& a, index_t i, index_t j) {
  const auto cols = a.row_cols(i);
  const auto vals = a.row_vals(i);
  for (std::size_t k = 0; k < cols.size(); ++k)
    if (cols[k] == j) return vals[k];
  return 0.0;
}

void expect_symmetric(const sparse::CsrMatrix& a, const std::string& what) {
  real_t scale = 0.0;
  for (const real_t v : a.values()) scale = std::max(scale, std::abs(v));
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      ASSERT_NEAR(vals[k], entry(a, cols[k], i), 1e-12 * scale)
          << what << " at (" << i << ", " << cols[k] << ")";
  }
}

}  // namespace

TEST(Families, RegistryNamesBuildWithTheirDefaultSpecs) {
  const std::vector<std::string> names = fem::problem_families();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "cantilever2d");
  EXPECT_EQ(names[1], "hetero2d");
  EXPECT_EQ(names[2], "brick3d");
  for (const std::string& name : names) {
    const fem::FamilyProblem fp = fem::make_problem(fem::default_spec(name));
    EXPECT_EQ(fp.family, name);
    const auto n = static_cast<std::size_t>(fp.prob.dofs.num_free());
    ASSERT_GT(n, 0u) << name;
    // The deflation metadata is sized for the free-dof layout.
    EXPECT_EQ(fp.dof_coords.size(),
              n * static_cast<std::size_t>(fp.coord_dim))
        << name;
    EXPECT_EQ(fp.dof_coeff.size(), n) << name;
    EXPECT_EQ(fp.prob.dofs.num_free() % fp.components, 0) << name;
    EXPECT_EQ(fp.prob.load.size(), n) << name;
    // A matched deflation layout passes build-time validation.
    core::validate_deflation(exp::family_deflation(fp, /*jump_aware=*/true),
                             fp.prob.dofs.num_free());
  }
}

TEST(Families, UnknownFamilyAndOutOfRangeKnobsThrow) {
  EXPECT_THROW((void)fem::default_spec("helmholtz9d"), Error);
  fem::ProblemSpec spec = fem::default_spec("hetero2d");
  spec.family = "helmholtz9d";
  EXPECT_THROW((void)fem::make_problem(spec), Error);
  spec = fem::default_spec("hetero2d");
  spec.jump = 0.5;  // contrast below 1 would invert the class convention
  EXPECT_THROW((void)fem::make_problem(spec), Error);
  spec = fem::default_spec("hetero2d");
  spec.anisotropy = 0.25;
  EXPECT_THROW((void)fem::make_problem(spec), Error);
  spec = fem::default_spec("hetero2d");
  spec.checker = 0;
  EXPECT_THROW((void)fem::make_problem(spec), Error);
  spec = fem::default_spec("brick3d");
  spec.nz = 0;
  EXPECT_THROW((void)fem::make_problem(spec), Error);
}

TEST(Families, OperatorsStaySymmetricAcrossTheKnobRanges) {
  {
    fem::ProblemSpec spec = fem::default_spec("hetero2d");
    spec.nx = 8;
    spec.ny = 8;
    spec.jump = 1.0e4;
    spec.anisotropy = 100.0;
    spec.angle = 0.3;  // rotated axes make the tensor fully dense
    spec.aligned = false;
    spec.checker = 3;
    const fem::FamilyProblem fp = fem::make_problem(spec);
    expect_symmetric(fp.prob.stiffness, "hetero2d");
  }
  {
    fem::ProblemSpec spec = fem::default_spec("brick3d");
    spec.nx = 4;
    spec.ny = 2;
    spec.nz = 2;
    spec.jump = 1.0e4;
    spec.aligned = false;
    spec.checker = 2;
    const fem::FamilyProblem fp = fem::make_problem(spec);
    expect_symmetric(fp.prob.stiffness, "brick3d");
  }
}

// Theorem 1 is the load-bearing property: whatever the coefficient
// contrast, norm-1 scaling must land sigma(A-hat) inside (0, 1) so the
// default Theta = (eps, 1) stays valid.  Ritz values (safety = 1) lie
// INSIDE the true spectrum, so lo > 0 and hi < 1 are exact claims.
TEST(Families, ScaledSpectrumStaysInUnitIntervalForAnyJump) {
  for (const double jump : {1.0, 1.0e2, 1.0e4, 1.0e6}) {
    for (const double anisotropy : {1.0, 1.0e3}) {
      fem::ProblemSpec spec = fem::default_spec("hetero2d");
      spec.nx = 10;
      spec.ny = 10;
      spec.jump = jump;
      spec.anisotropy = anisotropy;
      spec.angle = 0.5;
      spec.aligned = false;
      spec.checker = 3;
      const fem::FamilyProblem fp = fem::make_problem(spec);
      const core::ScaledSystem s =
          core::scale_system(fp.prob.stiffness, fp.prob.load);
      const sparse::Interval ritz =
          sparse::estimate_spectrum(s.a, 40, /*safety=*/1.0);
      EXPECT_GT(ritz.lo, 0.0) << "jump " << jump << " aniso " << anisotropy;
      EXPECT_LT(ritz.hi, 1.0) << "jump " << jump << " aniso " << anisotropy;
    }
  }
  for (const double jump : {1.0, 1.0e4, 1.0e6}) {
    fem::ProblemSpec spec = fem::default_spec("brick3d");
    spec.nx = 4;
    spec.ny = 2;
    spec.nz = 2;
    spec.jump = jump;
    spec.aligned = false;
    spec.checker = 2;
    const fem::FamilyProblem fp = fem::make_problem(spec);
    const core::ScaledSystem s =
        core::scale_system(fp.prob.stiffness, fp.prob.load);
    const sparse::Interval ritz =
        sparse::estimate_spectrum(s.a, 40, /*safety=*/1.0);
    EXPECT_GT(ritz.lo, 0.0) << "brick3d jump " << jump;
    EXPECT_LT(ritz.hi, 1.0) << "brick3d jump " << jump;
  }
}

// The chaos replay contract and the service's cache keys both assume
// equal specs produce bit-identical operators.
TEST(Families, EqualSpecsProduceBitIdenticalSystems) {
  for (const std::string& name : fem::problem_families()) {
    fem::ProblemSpec spec = fem::default_spec(name);
    spec.jump = 1.0e4;
    spec.anisotropy = 10.0;
    spec.angle = 0.3;
    spec.aligned = false;
    spec.checker = 3;
    const fem::FamilyProblem a = fem::make_problem(spec);
    const fem::FamilyProblem b = fem::make_problem(spec);
    const auto av = a.prob.stiffness.values();
    const auto bv = b.prob.stiffness.values();
    ASSERT_EQ(av.size(), bv.size()) << name;
    for (std::size_t i = 0; i < av.size(); ++i)
      ASSERT_EQ(av[i], bv[i]) << name << " nnz " << i;  // bitwise, no tolerance
    EXPECT_EQ(a.prob.load, b.prob.load) << name;
    EXPECT_EQ(a.dof_coords, b.dof_coords) << name;
    EXPECT_EQ(a.dof_coeff, b.dof_coeff) << name;
  }
}

// The max-over-adjacent-elements rule: strictly-soft-side dofs carry 1,
// everything at or beyond the interface carries the jump — so the
// jump-aware class boundary traces the material interface exactly.
TEST(Families, DofCoeffPutsInterfaceDofsInTheStiffClass) {
  fem::ProblemSpec spec = fem::default_spec("hetero2d");
  spec.nx = 8;
  spec.ny = 8;
  spec.jump = 1.0e4;
  spec.aligned = true;  // interface at x = lx/2 = 4
  const fem::FamilyProblem fp = fem::make_problem(spec);
  const real_t half = 0.5 * static_cast<real_t>(spec.nx);
  for (index_t g = 0; g < fp.prob.dofs.num_free(); ++g) {
    const real_t x = fp.dof_coords[static_cast<std::size_t>(g) * 2];
    const real_t want = x >= half ? spec.jump : 1.0;
    ASSERT_EQ(fp.dof_coeff[static_cast<std::size_t>(g)], want)
        << "dof " << g << " at x = " << x;
  }
}

// Satellite: a coarse space built for the wrong family must die at
// BUILD time with the typed BadOperatorError, never silently assemble a
// wrong E (validate_deflation is called by build_edd_operator,
// solve_edd and Service::register_operator).
TEST(Families, MismatchedDeflationLayoutsAreTypedBuildErrors) {
  const fem::FamilyProblem fp =
      fem::make_problem(fem::default_spec("hetero2d"));
  const index_t n = fp.prob.dofs.num_free();
  const core::DeflationOptions good =
      exp::family_deflation(fp, /*jump_aware=*/true);
  core::validate_deflation(good, n);  // sanity: the matched layout passes

  {
    // 2-D coordinate table declared as 3-D (brick3d options on hetero2d).
    core::DeflationOptions opts = good;
    opts.coord_dim = 3;
    EXPECT_THROW(core::validate_deflation(opts, n), BadOperatorError);
  }
  {
    // Elasticity components on the scalar diffusion operator: pick a
    // component count that cannot divide this family's free-dof count.
    core::DeflationOptions opts = good;
    opts.components = 3;
    while (n % opts.components == 0) ++opts.components;
    EXPECT_THROW(core::validate_deflation(opts, n), BadOperatorError);
  }
  {
    // Jump-aware without the coefficient table.
    core::DeflationOptions opts = good;
    opts.dof_coeff.clear();
    EXPECT_THROW(core::validate_deflation(opts, n), BadOperatorError);
  }
  {
    // Degenerate coefficient entries (zero / non-finite).
    core::DeflationOptions opts = good;
    opts.dof_coeff[3] = 0.0;
    EXPECT_THROW(core::validate_deflation(opts, n), BadOperatorError);
    opts.dof_coeff[3] = std::numeric_limits<real_t>::quiet_NaN();
    EXPECT_THROW(core::validate_deflation(opts, n), BadOperatorError);
  }
  // The typed error is an Error subclass, so existing catch sites keep
  // working; the service maps it to Failed{BadOperator}.
  static_assert(std::is_base_of_v<Error, BadOperatorError>);
}
