// Sequential flexible GMRES tests (Algorithm 1): correctness against
// direct solves, restart behaviour, preconditioner effectiveness ordering.
#include <gtest/gtest.h>

#include <cmath>

#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "core/precond.hpp"
#include "fem/problems.hpp"
#include "la/dense.hpp"
#include "la/vector_ops.hpp"
#include "sparse/generators.hpp"

namespace pfem::core {
namespace {

Vector dense_solve(const sparse::CsrMatrix& a, const Vector& b) {
  la::DenseMatrix ad(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) ad(i, j) = a.at(i, j);
  Vector x = b;
  la::lu_solve(ad, x);
  return x;
}

TEST(Fgmres, SolvesSmallSpdToTolerance) {
  const sparse::CsrMatrix a = sparse::tridiag(20, 3.0, -1.0);
  Vector b(20);
  for (std::size_t i = 0; i < 20; ++i) b[i] = std::sin(double(i));
  const Vector x_ref = dense_solve(a, b);

  Vector x(20, 0.0);
  IdentityPrecond none;
  SolveOptions opts;
  opts.tol = 1e-10;
  const SolveReport res = fgmres(a, b, x, none, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.final_relres, 1e-10);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-8);
}

TEST(Fgmres, ZeroRhsConvergesImmediately) {
  const sparse::CsrMatrix a = sparse::tridiag(10, 2.0, -1.0);
  Vector b(10, 0.0), x(10, 0.0);
  IdentityPrecond none;
  const SolveReport res = fgmres(a, b, x, none);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Fgmres, ExactInitialGuessNoIterations) {
  const sparse::CsrMatrix a = sparse::tridiag(10, 2.0, -1.0);
  Vector x_true(10, 1.0);
  Vector b(10);
  a.spmv(x_true, b);
  Vector x = x_true;
  IdentityPrecond none;
  const SolveReport res = fgmres(a, b, x, none);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Fgmres, RestartStillConverges) {
  const sparse::CsrMatrix a = sparse::laplace2d(10, 10);
  Vector b(100, 1.0), x(100, 0.0);
  IdentityPrecond none;
  SolveOptions opts;
  opts.restart = 5;  // force many restarts
  opts.tol = 1e-8;
  opts.max_iters = 5000;
  const SolveReport res = fgmres(a, b, x, none, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.restarts, 1);
  Vector r(100);
  a.spmv(x, r);
  la::axpy(-1.0, b, r);
  EXPECT_LE(la::nrm2(r) / la::nrm2(b), 1e-7);
}

TEST(Fgmres, HistoryLengthMatchesIterations) {
  const sparse::CsrMatrix a = sparse::laplace2d(8, 8);
  Vector b(64, 1.0), x(64, 0.0);
  JacobiPrecond jacobi(a);
  const SolveReport res = fgmres(a, b, x, jacobi);
  EXPECT_EQ(res.history.size(), static_cast<std::size_t>(res.iterations));
  // Residual history non-increasing within a cycle (GMRES optimality).
  for (std::size_t i = 1; i < res.history.size(); ++i)
    EXPECT_LE(res.history[i], res.history[i - 1] * (1.0 + 1e-12));
}

TEST(Fgmres, Ilu0BeatsUnpreconditioned) {
  const sparse::CsrMatrix a = sparse::laplace2d(15, 15);
  Vector b(225, 1.0);
  SolveOptions opts;
  opts.tol = 1e-8;
  opts.max_iters = 3000;

  Vector x1(225, 0.0);
  IdentityPrecond none;
  const SolveReport r_none = fgmres(a, b, x1, none, opts);
  Vector x2(225, 0.0);
  Ilu0Precond ilu(a);
  const SolveReport r_ilu = fgmres(a, b, x2, ilu, opts);
  ASSERT_TRUE(r_none.converged);
  ASSERT_TRUE(r_ilu.converged);
  EXPECT_LT(r_ilu.iterations, r_none.iterations);
}

TEST(Fgmres, PolynomialPrecondBeatsUnpreconditionedOnScaledSystem) {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const ScaledSystem s = scale_system(prob.stiffness, prob.load);
  SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 5000;

  Vector x0(s.b.size(), 0.0);
  IdentityPrecond none;
  const SolveReport r_none = fgmres(s.a, s.b, x0, none, opts);

  Vector x1(s.b.size(), 0.0);
  GlsPrecond gls(LinearOp::from_csr(s.a),
                 GlsPolynomial(default_theta_after_scaling(), 7));
  const SolveReport r_gls = fgmres(s.a, s.b, x1, gls, opts);

  Vector x2(s.b.size(), 0.0);
  NeumannPrecond neumann(LinearOp::from_csr(s.a), NeumannPolynomial(20, 1.0));
  const SolveReport r_neu = fgmres(s.a, s.b, x2, neumann, opts);

  ASSERT_TRUE(r_none.converged);
  ASSERT_TRUE(r_gls.converged);
  ASSERT_TRUE(r_neu.converged);
  EXPECT_LT(r_gls.iterations, r_none.iterations);
  EXPECT_LT(r_neu.iterations, r_none.iterations);

  // All three give the same solution.
  for (std::size_t i = 0; i < x0.size(); ++i) {
    EXPECT_NEAR(x1[i], x0[i], 1e-4 * (1.0 + std::abs(x0[i])));
    EXPECT_NEAR(x2[i], x0[i], 1e-4 * (1.0 + std::abs(x0[i])));
  }
}

TEST(Fgmres, PrecondNamesAndMatvecCounts) {
  const sparse::CsrMatrix a = sparse::tridiag(5, 1.0, -0.2);
  EXPECT_EQ(IdentityPrecond{}.name(), "none");
  EXPECT_EQ(JacobiPrecond(a).name(), "Jacobi");
  EXPECT_EQ(Ilu0Precond(a).name(), "ILU(0)");
  GlsPrecond gls(LinearOp::from_csr(a), GlsPolynomial({{0.1, 1.0}}, 7));
  EXPECT_EQ(gls.name(), "GLS(7)");
  EXPECT_EQ(gls.matvecs_per_apply(), 7);
  NeumannPrecond neu(LinearOp::from_csr(a), NeumannPolynomial(20));
  EXPECT_EQ(neu.name(), "Neumann(20)");
  EXPECT_EQ(neu.matvecs_per_apply(), 20);
}

TEST(Fgmres, FunctionPrecondAdapter) {
  const sparse::CsrMatrix a = sparse::tridiag(12, 2.5, -1.0);
  Vector b(12, 1.0), x(12, 0.0);
  FunctionPrecond scale_by_half(
      "halver",
      [](std::span<const real_t> v, std::span<real_t> z) {
        for (std::size_t i = 0; i < v.size(); ++i) z[i] = 0.5 * v[i];
      });
  const SolveReport res = fgmres(a, b, x, scale_by_half);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(scale_by_half.name(), "halver");
}

class FgmresRestartSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(FgmresRestartSweep, ConvergesForAnyRestartLength) {
  const sparse::CsrMatrix a = sparse::laplace2d(9, 9);
  Vector b(81, 1.0), x(81, 0.0);
  JacobiPrecond jacobi(a);
  SolveOptions opts;
  opts.restart = GetParam();
  opts.tol = 1e-8;
  opts.max_iters = 5000;
  const SolveReport res = fgmres(a, b, x, jacobi, opts);
  EXPECT_TRUE(res.converged) << "restart " << GetParam();
  Vector r(81);
  a.spmv(x, r);
  la::axpy(-1.0, b, r);
  EXPECT_LE(la::nrm2(r) / la::nrm2(b), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Restarts, FgmresRestartSweep,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50));

}  // namespace
}  // namespace pfem::core
