// Unit tests for the sparse matrix substrate: COO assembly, CSR kernels,
// generators, and MatrixMarket I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "la/vector_ops.hpp"
#include "sparse/bsr.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"

namespace pfem::sparse {
namespace {

CsrMatrix small_matrix() {
  // [[2, -1, 0], [-1, 2, -1], [0, -1, 2]]
  return tridiag(3, 2.0, -1.0);
}

TEST(Coo, DuplicatesAreSummed) {
  CooBuilder coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  coo.add(1, 0, -1.0);
  coo.add(0, 1, 4.0);
  const CsrMatrix a = coo.build();
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(Coo, EmptyBuildsEmptyCsr) {
  CooBuilder coo(3, 3);
  const CsrMatrix a = coo.build();
  EXPECT_EQ(a.nnz(), 0);
  Vector x(3, 1.0), y(3, -1.0);
  a.spmv(x, y);
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Csr, SpmvMatchesManual) {
  const CsrMatrix a = small_matrix();
  Vector x{1.0, 2.0, 3.0}, y(3);
  a.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0);
}

TEST(Csr, SpmvAddAccumulates) {
  const CsrMatrix a = small_matrix();
  Vector x{1.0, 1.0, 1.0}, y{10.0, 10.0, 10.0};
  a.spmv_add(x, y, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(Csr, DiagonalAndRowNorms) {
  const CsrMatrix a = small_matrix();
  const Vector d = a.diagonal();
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  const Vector n1 = a.row_norms1();
  EXPECT_DOUBLE_EQ(n1[0], 3.0);
  EXPECT_DOUBLE_EQ(n1[1], 4.0);
}

TEST(Csr, SymmetricScaling) {
  CsrMatrix a = small_matrix();
  Vector d{1.0, 2.0, 3.0};
  a.scale_symmetric(d);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -2.0);   // 1*2*(-1)
  EXPECT_DOUBLE_EQ(a.at(1, 1), 8.0);    // 2*2*2
  EXPECT_DOUBLE_EQ(a.at(2, 1), -6.0);   // 3*2*(-1)
}

TEST(Csr, TransposeRoundTrip) {
  const CsrMatrix a = random_spd(30, 4, 0.1, 3);
  const CsrMatrix att = a.transposed().transposed();
  EXPECT_EQ(att.nnz(), a.nnz());
  Vector x(30), y1(30), y2(30);
  for (std::size_t i = 0; i < 30; ++i) x[i] = std::sin(1.0 + double(i));
  a.spmv(x, y1);
  att.spmv(x, y2);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(Csr, SymmetryDefect) {
  EXPECT_DOUBLE_EQ(small_matrix().symmetry_defect(), 0.0);
  CooBuilder coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, 1.0);
  EXPECT_DOUBLE_EQ(coo.build().symmetry_defect(), 1.0);
}

TEST(Csr, AddSamePattern) {
  CsrMatrix a = small_matrix();
  const CsrMatrix b = small_matrix();
  a.add_same_pattern(b, 0.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.5);
}

TEST(Csr, AddSamePatternRejectsMismatch) {
  CsrMatrix a = small_matrix();
  const CsrMatrix b = csr_identity(3);  // different pattern, same size
  EXPECT_THROW(a.add_same_pattern(b, 1.0), Error);
}

TEST(Csr, ExtractSquareKeepsSubBlock) {
  const CsrMatrix a = laplace2d(3, 3);
  const IndexVector keep{0, 1, 3, 4};
  const CsrMatrix sub = a.extract_square(keep);
  EXPECT_EQ(sub.rows(), 4);
  // a(0,1) = -1 -> sub(0,1); a(1,2) dropped (col 2 not kept).
  EXPECT_DOUBLE_EQ(sub.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 2), 0.0);   // was a(1,3)=0
  EXPECT_DOUBLE_EQ(sub.at(2, 3), -1.0);  // a(3,4) = -1
}

TEST(Csr, AtOutsidePatternIsZero) {
  const CsrMatrix a = small_matrix();
  EXPECT_DOUBLE_EQ(a.at(0, 2), 0.0);
}

TEST(Csr, Identity) {
  const CsrMatrix i5 = csr_identity(5);
  EXPECT_EQ(i5.nnz(), 5);
  Vector x{1, 2, 3, 4, 5}, y(5);
  i5.spmv(x, y);
  for (std::size_t k = 0; k < 5; ++k) EXPECT_DOUBLE_EQ(y[k], x[k]);
}

TEST(Generators, TridiagEigenvalues) {
  // Eigenvalues of tridiag(n, d, o) are d + 2o*cos(k*pi/(n+1)).
  const index_t n = 20;
  const CsrMatrix a = tridiag(n, 2.0, -1.0);
  // Largest eigenvalue ~ 2 + 2*cos(pi/(n+1)).
  const double lmax_expected =
      2.0 + 2.0 * std::cos(M_PI / static_cast<double>(n + 1));
  // Rayleigh-quotient check via the known eigenvector sin(k*pi*j/(n+1)).
  Vector v(static_cast<std::size_t>(n)), av(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j)
    v[j] = std::sin(M_PI * static_cast<double>(j + 1) /
                    static_cast<double>(n + 1));
  a.spmv(v, av);
  const double rq = la::dot(v, av) / la::dot(v, v);
  EXPECT_NEAR(rq, 4.0 - lmax_expected, 1e-12);  // smallest eig for k=1
}

TEST(Generators, Laplace2dStructure) {
  const CsrMatrix a = laplace2d(4, 3);
  EXPECT_EQ(a.rows(), 12);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 4), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(a.symmetry_defect(), 0.0);
}

TEST(Generators, RandomSpdIsSymmetricDiagDominant) {
  const CsrMatrix a = random_spd(50, 5, 0.2, 11);
  EXPECT_DOUBLE_EQ(a.symmetry_defect(), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    double offsum = 0.0, diag = 0.0;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i)
        diag = vals[k];
      else
        offsum += std::abs(vals[k]);
    }
    EXPECT_GE(diag, offsum + 0.19);
  }
}

TEST(Generators, DiagonalMatrix) {
  const CsrMatrix a = diagonal_matrix({0.5, -2.0, 7.0});
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -2.0);
}

TEST(Bsr2, SpmvMatchesCsrOnElasticityMatrix) {
  // An even-dimension FE-style matrix through the blocked kernel.
  const CsrMatrix a = random_spd(64, 5, 0.2, 21);
  const Bsr2 b(a);
  EXPECT_EQ(b.rows(), 64);
  Vector x(64), y_csr(64), y_bsr(64);
  for (std::size_t i = 0; i < 64; ++i) x[i] = std::sin(0.41 * double(i));
  a.spmv(x, y_csr);
  b.spmv(x, y_bsr);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(y_bsr[i], y_csr[i], 1e-13);
}

TEST(Bsr2, PaddingOverheadBounded) {
  // Block storage holds at most 4x the scalar nnz (every scalar alone in
  // its block) and at least nnz (perfect tiling).
  const CsrMatrix a = laplace2d(10, 10);  // 100x100, even
  const Bsr2 b(a);
  EXPECT_GE(b.stored_values(), static_cast<std::uint64_t>(a.nnz()));
  EXPECT_LE(b.stored_values(), 4ull * static_cast<std::uint64_t>(a.nnz()));
}

TEST(Bsr2, RejectsOddDimension) {
  const CsrMatrix a = tridiag(5, 2.0, -1.0);
  EXPECT_THROW(Bsr2 b(a), Error);
}

TEST(Io, RoundTripGeneral) {
  const CsrMatrix a = random_spd(15, 3, 0.1, 5);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CsrMatrix b = read_matrix_market(ss);
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.nnz(), b.nnz());
  Vector x(15), y1(15), y2(15);
  for (std::size_t i = 0; i < 15; ++i) x[i] = std::cos(double(i));
  a.spmv(x, y1);
  b.spmv(x, y2);
  for (std::size_t i = 0; i < 15; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-15);
}

TEST(Io, ReadsSymmetricStorage) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "2 2 2\n"
     << "1 1 3.0\n"
     << "2 1 -1.5\n";
  const CsrMatrix a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.5);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
}

TEST(Io, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a matrix\n1 1 1\n";
  EXPECT_THROW((void)read_matrix_market(ss), Error);
}

TEST(Io, RejectsOutOfRangeIndices) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 1\n"
     << "3 1 1.0\n";
  EXPECT_THROW((void)read_matrix_market(ss), Error);
}

}  // namespace
}  // namespace pfem::sparse
