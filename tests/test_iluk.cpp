// ILU(k) level-of-fill tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "sparse/generators.hpp"
#include "sparse/iluk.hpp"

namespace pfem::sparse {
namespace {

TEST(IlukPattern, LevelZeroIsIdentityTransformation) {
  const CsrMatrix a = laplace2d(6, 5);
  const CsrMatrix p = iluk_pattern(a, 0);
  EXPECT_EQ(p.nnz(), a.nnz());
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto ca = a.row_cols(i);
    const auto cp = p.row_cols(i);
    ASSERT_EQ(ca.size(), cp.size());
    for (std::size_t k = 0; k < ca.size(); ++k) EXPECT_EQ(ca[k], cp[k]);
  }
}

TEST(IlukPattern, FillGrowsMonotonicallyWithLevel) {
  const CsrMatrix a = laplace2d(8, 8);
  index_t prev = a.nnz();
  for (int k : {1, 2, 3}) {
    const index_t nnz = iluk_pattern(a, k).nnz();
    EXPECT_GE(nnz, prev) << "level " << k;
    prev = nnz;
  }
  // Laplacian fill is strict at level 1.
  EXPECT_GT(iluk_pattern(a, 1).nnz(), a.nnz());
}

TEST(IlukPattern, PreservesOriginalValues) {
  const CsrMatrix a = random_spd(30, 4, 0.2, 13);
  const CsrMatrix p = iluk_pattern(a, 2);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      EXPECT_DOUBLE_EQ(p.at(i, cols[k]), vals[k]);
  }
}

TEST(IlukPattern, TridiagonalGainsNoFill) {
  // A tridiagonal matrix factors without fill at any level.
  const CsrMatrix a = tridiag(20, 2.0, -1.0);
  EXPECT_EQ(iluk_pattern(a, 3).nnz(), a.nnz());
}

TEST(Iluk, HighLevelOnBandedMatrixIsExact) {
  // On a pentadiagonal band, enough fill levels give the complete LU:
  // the solve is then exact.
  const CsrMatrix a = laplace2d(2, 12);  // bandwidth 2 (nx = 2)
  const IluK ilu(a, 4);
  const index_t n = a.rows();
  Vector b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) b[i] = std::cos(0.3 * i);
  Vector x(static_cast<std::size_t>(n));
  ilu.solve(b, x);
  Vector check(static_cast<std::size_t>(n));
  a.spmv(x, check);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(check[i], b[i], 1e-10);
}

TEST(Iluk, HigherLevelReducesFgmresIterations) {
  // Fig. 11's ILU family: ILU(1) must beat ILU(0) in iterations on the
  // scaled cantilever system.
  fem::CantileverSpec spec;
  spec.nx = 20;
  spec.ny = 10;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const core::ScaledSystem s = core::scale_system(prob.stiffness, prob.load);
  core::SolveOptions opts;
  opts.tol = 1e-8;
  opts.max_iters = 50000;

  index_t prev = std::numeric_limits<index_t>::max();
  for (int level : {0, 1, 2}) {
    core::IlukPrecond p(s.a, level);
    Vector x(s.b.size(), 0.0);
    const core::SolveReport res = core::fgmres(s.a, s.b, x, p, opts);
    ASSERT_TRUE(res.converged) << "ILU(" << level << ")";
    EXPECT_LE(res.iterations, prev) << "ILU(" << level << ")";
    prev = res.iterations;
    EXPECT_EQ(p.name(), "ILU(" + std::to_string(level) + ")");
  }
}

TEST(Iluk, SolutionMatchesIlu0PathAtLevelZero) {
  const CsrMatrix a = random_spd(25, 3, 0.2, 31);
  const IluK k0(a, 0);
  const Ilu0 reference(a);
  Vector v(25);
  for (std::size_t i = 0; i < 25; ++i) v[i] = std::sin(double(i));
  Vector z1(25), z2(25);
  k0.solve(v, z1);
  reference.solve(v, z2);
  for (std::size_t i = 0; i < 25; ++i) EXPECT_DOUBLE_EQ(z1[i], z2[i]);
}

}  // namespace
}  // namespace pfem::sparse
