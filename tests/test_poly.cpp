// Polynomial preconditioner tests: Neumann series (§2.1.2), GLS (§2.1.3),
// the Stieltjes orthogonal basis, Θ validation, and the Eq. 24 stability
// bound behaviour behind Fig. 3.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/gls_poly.hpp"
#include "core/intervals.hpp"
#include "core/neumann.hpp"
#include "core/operator.hpp"
#include "core/orthopoly.hpp"
#include "sparse/generators.hpp"

namespace pfem::core {
namespace {

TEST(Intervals, ValidationRejectsBadThetas) {
  EXPECT_THROW(validate_theta({}), Error);
  EXPECT_THROW(validate_theta({{2.0, 1.0}}), Error);             // inverted
  EXPECT_THROW(validate_theta({{-1.0, 1.0}}), Error);            // contains 0
  EXPECT_THROW(validate_theta({{1.0, 2.0}, {1.5, 3.0}}), Error); // overlap
  EXPECT_THROW(validate_theta({{3.0, 4.0}, {1.0, 2.0}}), Error); // unordered
  EXPECT_NO_THROW(validate_theta({{-4.0, -1.0}, {7.0, 10.0}}));
  EXPECT_NO_THROW(validate_theta({{0.1, 2.5}}));
}

// Θ's intervals are CLOSED, so an endpoint at zero already puts 0 ∈ Θ:
// w(0) = 0 makes the GLS normal equations singular there (the quadrature
// weight 1/√((x−lo)(hi−x)) puts mass AT the endpoint).  Regression for
// the boundary cases the open-interval check used to wave through.
TEST(Intervals, ZeroEndpointsAreRejectedNotJustInteriorZeros) {
  EXPECT_THROW(validate_theta({{0.0, 1.0}}), Error);    // lo == 0
  EXPECT_THROW(validate_theta({{-1.0, 0.0}}), Error);   // hi == 0
  EXPECT_THROW(validate_theta({{0.0, 0.0}}), Error);    // degenerate at 0
  EXPECT_THROW(validate_theta({{-2.0, -1.0}, {0.0, 3.0}}), Error);
  EXPECT_THROW(validate_theta({{-3.0, 0.0}, {1.0, 2.0}}), Error);
  // Endpoints merely NEAR zero stay legal — the rule is 0 ∉ [lo, hi],
  // not a distance cutoff (default_theta_after_scaling relies on it).
  EXPECT_NO_THROW(validate_theta({{1e-300, 1.0}}));
  EXPECT_NO_THROW(validate_theta({{-1.0, -1e-300}}));
}

TEST(Intervals, Contains) {
  const Theta t{{-4.0, -1.0}, {7.0, 10.0}};
  EXPECT_TRUE(theta_contains(t, -2.0));
  EXPECT_TRUE(theta_contains(t, 7.0));
  EXPECT_FALSE(theta_contains(t, 0.0));
  EXPECT_FALSE(theta_contains(t, 5.0));
}

TEST(Intervals, DefaultThetaIsEpsilonToOne) {
  const Theta t = default_theta_after_scaling();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_GT(t[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(t[0].hi, 1.0);
}

TEST(OrthoBasis, OrthonormalUnderDiscreteMeasure) {
  const QuadratureRule rule = chebyshev_rule({{0.1, 2.5}}, 128);
  const OrthoBasis basis(rule, 8);
  for (int i = 0; i <= 8; ++i) {
    for (int j = 0; j <= 8; ++j) {
      real_t s = 0.0;
      const auto qi = basis.node_values(i);
      const auto qj = basis.node_values(j);
      for (std::size_t k = 0; k < rule.nodes.size(); ++k)
        s += rule.weights[k] * qi[k] * qj[k];
      EXPECT_NEAR(s, i == j ? 1.0 : 0.0, 1e-10)
          << "inner(" << i << "," << j << ")";
    }
  }
}

TEST(OrthoBasis, EvalAllMatchesNodeValues) {
  const QuadratureRule rule = chebyshev_rule({{0.5, 1.5}}, 64);
  const OrthoBasis basis(rule, 5);
  const Vector v = basis.eval_all(rule.nodes[10]);
  for (int i = 0; i <= 5; ++i)
    EXPECT_NEAR(v[static_cast<std::size_t>(i)], basis.node_values(i)[10],
                1e-12);
}

TEST(OrthoBasis, ChebyshevRuleCoversIntervals) {
  const Theta theta{{-4.0, -1.0}, {7.0, 10.0}};
  const QuadratureRule rule = chebyshev_rule(theta, 32);
  ASSERT_EQ(rule.nodes.size(), 64u);
  for (real_t x : rule.nodes) EXPECT_TRUE(theta_contains(theta, x));
}

TEST(Neumann, EvalEqualsGeometricSum) {
  const NeumannPolynomial p(6, 0.8);
  const real_t lambda = 0.7;
  real_t direct = 0.0;
  for (int i = 0; i <= 6; ++i)
    direct += std::pow(1.0 - 0.8 * lambda, i);
  direct *= 0.8;
  EXPECT_NEAR(p.eval(lambda), direct, 1e-14);
}

TEST(Neumann, ResidualIsGPower) {
  // With ω = 1: 1 − λP_m(λ) = (1−λ)^{m+1}.
  const NeumannPolynomial p(4, 1.0);
  for (real_t lambda : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(p.residual(lambda), std::pow(1.0 - lambda, 5), 1e-14);
  }
}

TEST(Neumann, PowerCoeffsConsistentWithEval) {
  const NeumannPolynomial p(7, 0.9);
  const Vector c = p.power_coeffs();
  ASSERT_EQ(c.size(), 8u);
  for (real_t lambda : {0.2, 0.55, 1.1}) {
    real_t horner = 0.0;
    for (int k = 7; k >= 0; --k)
      horner = horner * lambda + c[static_cast<std::size_t>(k)];
    EXPECT_NEAR(horner, p.eval(lambda), 1e-12);
  }
}

TEST(Neumann, ApplyOnDiagonalMatrixMatchesScalarEval) {
  const Vector eigs{0.1, 0.3, 0.6, 0.95};
  const sparse::CsrMatrix a = sparse::diagonal_matrix(eigs);
  const LinearOp op = LinearOp::from_csr(a);
  const NeumannPolynomial p(10, 1.0);
  Vector v(4, 1.0), z(4);
  p.apply(op, v, z);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(z[i], p.eval(eigs[i]), 1e-12);
}

TEST(Neumann, ResidualShrinksWithDegreeInsideUnitDisc) {
  // Fig. 1 behaviour: higher m pushes 1 − λP(λ) toward 0 on (0, 1).
  real_t prev = 1.0;
  for (int m : {1, 3, 5, 9, 15}) {
    const NeumannPolynomial p(m, 1.0);
    const real_t r = std::abs(p.residual(0.5));
    EXPECT_LT(r, prev);
    prev = r;
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(Gls, ResidualSupDecreasesWithDegree) {
  // Fig. 2(a): Θ = (0.1, 2.5), increasing m drives sup|1 − λP| down.
  const Theta theta{{0.1, 2.5}};
  const real_t sup2 = GlsPolynomial(theta, 2).residual_sup_on_theta();
  const real_t sup5 = GlsPolynomial(theta, 5).residual_sup_on_theta();
  const real_t sup10 = GlsPolynomial(theta, 10).residual_sup_on_theta();
  EXPECT_LT(sup5, sup2);
  EXPECT_LT(sup10, sup5);
  EXPECT_LT(sup10, 0.2);
}

TEST(Gls, WeightedL2ResidualMonotoneInDegree) {
  // ‖1 − λP_m‖_w is non-increasing in m (nested approximation spaces).
  const Theta theta{{-4.0, -1.0}, {7.0, 10.0}};
  const QuadratureRule rule = chebyshev_rule(theta, 256);
  real_t prev = 1e300;
  for (int m : {0, 1, 2, 4, 8, 12}) {
    const GlsPolynomial p(theta, m);
    real_t l2 = 0.0;
    for (std::size_t k = 0; k < rule.nodes.size(); ++k) {
      const real_t r = p.residual(rule.nodes[k]);
      l2 += rule.weights[k] * r * r;
    }
    EXPECT_LE(l2, prev * (1.0 + 1e-12)) << "degree " << m;
    prev = l2;
  }
}

TEST(Gls, ApplyOnDiagonalMatrixMatchesScalarEval) {
  const Vector eigs{0.15, 0.4, 1.1, 2.2};
  const sparse::CsrMatrix a = sparse::diagonal_matrix(eigs);
  const LinearOp op = LinearOp::from_csr(a);
  const GlsPolynomial p({{0.1, 2.5}}, 7);
  Vector v{1.0, -2.0, 0.5, 3.0}, z(4);
  p.apply(op, v, z);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(z[i], p.eval(eigs[i]) * v[i], 1e-10);
}

TEST(Gls, HandlesIndefiniteMultiIntervalTheta) {
  // Fig. 2(b): Θ on both sides of 0 — symmetric indefinite systems.
  const Theta theta{{-4.0, -1.0}, {7.0, 10.0}};
  const GlsPolynomial p(theta, 12);
  EXPECT_LT(p.residual_sup_on_theta(), 0.65);
  // p must flip sign between the negative and positive intervals so that
  // λ·p(λ) > 0 on both: check 1 − λp < 1 at the interval centers.
  EXPECT_LT(std::abs(p.residual(-2.5)), 1.0);
  EXPECT_LT(std::abs(p.residual(8.5)), 1.0);
  EXPECT_GT(-2.5 * p.eval(-2.5), 0.0);
  EXPECT_GT(8.5 * p.eval(8.5), 0.0);
}

TEST(Gls, FourIntervalTheta) {
  // Fig. 2(c): four disjoint intervals.
  const Theta theta{{-6.0, -4.1}, {-3.9, -0.1}, {0.1, 5.9}, {6.1, 8.0}};
  const GlsPolynomial p(theta, 16);
  // The residual stays bounded by 1 on Θ (the LS fit drives it well
  // below 1 on most of Θ even with holes around 0).
  EXPECT_LT(p.residual_sup_on_theta(), 1.05);
}

TEST(Gls, PowerCoeffsConsistentWithEval) {
  const GlsPolynomial p({{0.1, 2.5}}, 6);
  const Vector c = p.power_coeffs();
  ASSERT_EQ(c.size(), 7u);
  for (real_t lambda : {0.2, 1.0, 2.3}) {
    real_t horner = 0.0;
    for (int k = 6; k >= 0; --k)
      horner = horner * lambda + c[static_cast<std::size_t>(k)];
    EXPECT_NEAR(horner, p.eval(lambda), 1e-9 * (1.0 + std::abs(horner)));
  }
}

TEST(Gls, StabilityBoundGrowsWithDegreeOnSplitTheta) {
  // Fig. 3: for Θ = (−4,−1) ∪ (7,10) the power-basis coefficient mass
  // Σ|a_i| explodes with the degree — the reason the paper restricts
  // m < 10 in practice.
  const Theta theta{{-4.0, -1.0}, {7.0, 10.0}};
  const real_t s4 = GlsPolynomial(theta, 4).coeff_abs_sum();
  const real_t s10 = GlsPolynomial(theta, 10).coeff_abs_sum();
  const real_t s16 = GlsPolynomial(theta, 16).coeff_abs_sum();
  const real_t s24 = GlsPolynomial(theta, 24).coeff_abs_sum();
  EXPECT_GT(s10, 2.0 * s4);
  EXPECT_GT(s16, 2.0 * s10);
  EXPECT_GT(s24, 2.0 * s16);
  EXPECT_GT(polynomial_stability_bound(16, s16),
            polynomial_stability_bound(4, s4));
}

TEST(Gls, StabilityBoundJustifiesDegreeBelowTen) {
  // Fig. 3(a) / §2.2 conclusion: on Θ = (ε, 1) the coefficient mass grows
  // like ~5.8^m, so the Eq. 24 error bound is still tiny at m = 10 but
  // useless past m ≈ 20 — "for all practical purposes the degree of the
  // polynomial should be restricted to less than 10."
  const Theta unit = default_theta_after_scaling();
  const real_t b10 = polynomial_stability_bound(
      10, GlsPolynomial(unit, 10).coeff_abs_sum());
  const real_t b24 = polynomial_stability_bound(
      24, GlsPolynomial(unit, 24).coeff_abs_sum());
  EXPECT_LT(b10, 1e-6);  // still far below the 1e-6 solver tolerance
  EXPECT_GT(b24, 1.0);   // complete loss of accuracy
}

TEST(Gls, Degree0IsBestConstant) {
  // m = 0: p = μ0·φ0 constant; the residual must still be a valid
  // least-squares fit (|1 − λp| <= 1 somewhere and p > 0 on a positive Θ).
  const GlsPolynomial p({{0.5, 1.5}}, 0);
  EXPECT_GT(p.eval(1.0), 0.0);
  EXPECT_LT(std::abs(p.residual(1.0)), 1.0);
}

TEST(Gls, RejectsThetaContainingZero) {
  EXPECT_THROW(GlsPolynomial({{-1.0, 1.0}}, 3), Error);
}

class GlsDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(GlsDegreeSweep, PreconditionedSpectrumInsideUnitDisc) {
  // For λ ∈ Θ the GMRES-relevant quantity |1 − λP(λ)| must be < 1 so the
  // preconditioned spectrum clusters around 1 (Θ = (0.05, 1), the
  // post-scaling situation).
  const int m = GetParam();
  const GlsPolynomial p({{0.05, 1.0}}, m);
  EXPECT_LT(p.residual_sup_on_theta(), 1.0) << "degree " << m;
}

TEST_P(GlsDegreeSweep, ApplyIsLinear) {
  const int m = GetParam();
  const sparse::CsrMatrix a = sparse::tridiag(12, 0.6, -0.15);
  const LinearOp op = LinearOp::from_csr(a);
  const GlsPolynomial p({{0.05, 1.0}}, m);
  Vector u(12), v(12), zu(12), zv(12), zsum(12), uv(12);
  for (std::size_t i = 0; i < 12; ++i) {
    u[i] = std::sin(double(i) + 1.0);
    v[i] = std::cos(2.0 * double(i));
    uv[i] = 2.0 * u[i] - 3.0 * v[i];
  }
  p.apply(op, u, zu);
  p.apply(op, v, zv);
  p.apply(op, uv, zsum);
  for (std::size_t i = 0; i < 12; ++i)
    EXPECT_NEAR(zsum[i], 2.0 * zu[i] - 3.0 * zv[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Degrees, GlsDegreeSweep,
                         ::testing::Values(1, 2, 3, 5, 7, 10, 15, 20));

}  // namespace
}  // namespace pfem::core
