// Norm-1 diagonal scaling tests (§2.1.1): spectrum mapping into (0,1),
// solution recovery, and the Neumann-series precondition ρ(I−A) < 1.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/diag_scaling.hpp"
#include "fem/problems.hpp"
#include "la/dense.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/gershgorin.hpp"

namespace pfem::core {
namespace {

sparse::CsrMatrix identity_minus(const sparse::CsrMatrix& a) {
  sparse::CooBuilder coo(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    coo.add(i, i, 1.0);
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      coo.add(i, cols[k], -vals[k]);
  }
  return coo.build();
}

class ScalingSpectrumTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingSpectrumTest, RandomSpdSpectrumMapsIntoUnitInterval) {
  // Theorem 1 consequence (Eq. 12): σ(DKD) ⊂ (0, 1) for SPD K.  (The
  // bound is |x^T DKD x| ≤ Σ|k_ij|·|x_i||x_j|/√(d_i d_j) ≤ ‖x‖² by
  // AM-GM — row 1-norms of the *scaled* matrix may individually exceed
  // 1, so the check is on the spectral radius, not Gershgorin rows.)
  const sparse::CsrMatrix k = sparse::random_spd(60, 4, 0.2, GetParam());
  Vector f(60, 1.0);
  const ScaledSystem s = scale_system(k, f);
  EXPECT_LT(sparse::power_method_rho(s.a, 500), 1.0 + 1e-10);
  // Neumann precondition: ρ(I − A) < 1.
  EXPECT_LT(sparse::power_method_rho(identity_minus(s.a), 500), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingSpectrumTest,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(Scaling, FeStiffnessSpectrumInUnitInterval) {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const ScaledSystem s = scale_system(prob.stiffness, prob.load);
  const double rho = sparse::power_method_rho(s.a, 800);
  EXPECT_LT(rho, 1.0);
  EXPECT_GT(rho, 0.1);  // and not degenerate
}

TEST(Scaling, UnscaledSolutionSolvesOriginalSystem) {
  // Solve the scaled system densely, unscale, check K u = f.
  const sparse::CsrMatrix k = sparse::tridiag(8, 4.0, -1.0);
  Vector f(8);
  for (std::size_t i = 0; i < 8; ++i) f[i] = std::sin(double(i) + 0.5);
  const ScaledSystem s = scale_system(k, f);

  la::DenseMatrix ad(8, 8);
  for (index_t i = 0; i < 8; ++i)
    for (index_t j = 0; j < 8; ++j) ad(i, j) = s.a.at(i, j);
  Vector x = s.b;
  la::lu_solve(ad, x);
  const Vector u = s.unscale(x);

  Vector ku(8);
  k.spmv(u, ku);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(ku[i], f[i], 1e-10);
}

TEST(Scaling, ScaledDiagonalIsRowNormalized) {
  // (DKD)_ii = K_ii / ||k_i||_1 — diagonally dominant rows scale their
  // diagonal to at least 1/2.
  const sparse::CsrMatrix k = sparse::random_spd(40, 5, 0.3, 4);
  const Vector norms = k.row_norms1();
  Vector f(40, 0.0);
  const ScaledSystem s = scale_system(k, f);
  for (index_t i = 0; i < 40; ++i) {
    EXPECT_NEAR(s.a.at(i, i), k.at(i, i) / norms[static_cast<std::size_t>(i)],
                1e-12);
    EXPECT_GT(s.a.at(i, i), 0.5);
  }
}

TEST(Scaling, ZeroRowRejected) {
  sparse::CooBuilder coo(2, 2);
  coo.add(0, 0, 1.0);
  const sparse::CsrMatrix k = coo.build();
  Vector f(2, 0.0);
  EXPECT_THROW((void)scale_system(k, f), Error);
}

TEST(Scaling, Norm1ScalingVectorMatchesDefinition) {
  const sparse::CsrMatrix k = sparse::tridiag(5, 3.0, -1.0);
  const Vector d = norm1_scaling(k);
  EXPECT_NEAR(d[0], 1.0 / std::sqrt(4.0), 1e-14);
  EXPECT_NEAR(d[1], 1.0 / std::sqrt(5.0), 1e-14);
}

}  // namespace
}  // namespace pfem::core
