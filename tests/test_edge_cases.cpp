// Edge-case and robustness tests across modules: argument validation,
// capacity limits, degenerate inputs, and harness utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/bicgstab.hpp"
#include "core/cg.hpp"
#include "core/fgmres.hpp"
#include "core/orthopoly.hpp"
#include "core/precond.hpp"
#include "exp/table.hpp"
#include "la/dense.hpp"
#include "par/comm.hpp"
#include "par/cost_model.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"

namespace pfem {
namespace {

// ---- par runtime ----

TEST(ParEdge, AllreduceLengthMismatchFails) {
  EXPECT_THROW(par::run_spmd(2,
                             [](par::Comm& c) {
                               Vector v(c.rank() == 0 ? 3 : 4, 1.0);
                               c.allreduce_sum(v);
                             }),
               Error);
}

TEST(ParEdge, ManyInterleavedRoundsStayOrdered) {
  // 200 rounds of bidirectional traffic with alternating tags.
  par::run_spmd(2, [](par::Comm& c) {
    const int other = 1 - c.rank();
    Vector out;
    for (int round = 0; round < 200; ++round) {
      Vector payload{static_cast<real_t>(round), static_cast<real_t>(c.rank())};
      c.send(other, round % 3, payload);
      c.recv(other, round % 3, out);
      ASSERT_EQ(out.size(), 2u);
      EXPECT_DOUBLE_EQ(out[0], static_cast<real_t>(round));
      EXPECT_DOUBLE_EQ(out[1], static_cast<real_t>(other));
    }
  });
}

TEST(ParEdge, LargeMessageRoundTrip) {
  par::run_spmd(2, [](par::Comm& c) {
    if (c.rank() == 0) {
      Vector big(100000);
      for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = std::sin(double(i));
      c.send(1, 0, big);
    } else {
      Vector got;
      c.recv(0, 0, got);
      ASSERT_EQ(got.size(), 100000u);
      EXPECT_DOUBLE_EQ(got[777], std::sin(777.0));
    }
  });
}

TEST(ParEdge, SingleRankCollectivesTrivial) {
  par::run_spmd(1, [](par::Comm& c) {
    c.barrier();
    EXPECT_DOUBLE_EQ(c.allreduce_sum(3.5), 3.5);
    EXPECT_DOUBLE_EQ(c.allreduce_max(-2.0), -2.0);
  });
}

TEST(ParEdge, InvalidRankCountRejected) {
  EXPECT_THROW(par::run_spmd(0, [](par::Comm&) {}), Error);
}

TEST(CostModelEdge, BytesMatterAtFixedMessageCount) {
  par::PerfCounters light, heavy;
  light.neighbor_msgs = heavy.neighbor_msgs = 10;
  light.neighbor_bytes = 100;
  heavy.neighbor_bytes = 10000000;
  const auto m = par::MachineModel::ibm_sp2();
  EXPECT_GT(par::model_time(m, std::vector{heavy, heavy}).neighbor,
            par::model_time(m, std::vector{light, light}).neighbor);
}

// ---- orthogonal polynomials ----

TEST(OrthopolyEdge, TooFewNodesRejected) {
  const core::QuadratureRule rule = core::chebyshev_rule({{0.5, 1.5}}, 4);
  EXPECT_THROW(core::OrthoBasis(rule, 4), Error);  // needs > degree nodes
  EXPECT_NO_THROW(core::OrthoBasis(rule, 3));
}

TEST(OrthopolyEdge, RuleValidation) {
  EXPECT_THROW((void)core::chebyshev_rule({}, 8), Error);
  EXPECT_THROW((void)core::chebyshev_rule({{1.0, 0.5}}, 8), Error);
  EXPECT_THROW((void)core::chebyshev_rule({{0.5, 1.5}}, 0), Error);
}

TEST(OrthopolyEdge, AccessorsRangeChecked) {
  const core::QuadratureRule rule = core::chebyshev_rule({{0.5, 1.5}}, 32);
  const core::OrthoBasis basis(rule, 3);
  EXPECT_THROW((void)basis.alpha(3), Error);
  EXPECT_THROW((void)basis.sqrt_beta(4), Error);
  EXPECT_NO_THROW((void)basis.sqrt_beta(3));
}

// ---- solvers ----

TEST(FgmresEdge, MaxItersCapReportsNotConverged) {
  const sparse::CsrMatrix a = sparse::laplace2d(12, 12);
  Vector b(144, 1.0), x(144, 0.0);
  core::IdentityPrecond none;
  core::SolveOptions opts;
  opts.max_iters = 3;
  opts.tol = 1e-12;
  const core::SolveReport res = core::fgmres(a, b, x, none, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 3);
  EXPECT_EQ(res.history.size(), 3u);
}

TEST(SolverEdge, ZeroRhsConvergesInZeroIterations) {
  // ‖f‖ = 0 makes the relative residual 0/0; every Krylov driver must
  // short-circuit to x = 0, converged, without touching NaNs — even from
  // a nonzero initial guess.
  const sparse::CsrMatrix a = sparse::laplace2d(8, 8);
  const Vector b(64, 0.0);
  core::IdentityPrecond none;
  core::SolveOptions opts;
  opts.tol = 1e-10;

  const auto check = [](const core::SolveReport& res, const Vector& x) {
    EXPECT_TRUE(res.converged);
    EXPECT_EQ(res.iterations, 0);
    EXPECT_EQ(res.final_relres, 0.0);
    EXPECT_FALSE(std::isnan(res.final_relres));
    for (real_t v : x) EXPECT_EQ(v, 0.0);
  };

  Vector x(64, 3.0);  // nonzero guess must be overwritten with the solution
  check(core::fgmres(a, b, x, none, opts), x);
  x.assign(64, -2.0);
  check(core::pcg(a, b, x, none, opts), x);
  x.assign(64, 1.5);
  check(core::bicgstab(a, b, x, none, opts), x);
}

TEST(FgmresEdge, InvalidOptionsRejected) {
  const sparse::CsrMatrix a = sparse::tridiag(4, 2.0, -1.0);
  Vector b(4, 1.0), x(4, 0.0);
  core::IdentityPrecond none;
  core::SolveOptions opts;
  opts.restart = 0;
  EXPECT_THROW((void)core::fgmres(a, b, x, none, opts), Error);
  opts.restart = 25;
  opts.tol = 0.0;
  EXPECT_THROW((void)core::fgmres(a, b, x, none, opts), Error);
}

TEST(FgmresEdge, SizeMismatchRejected) {
  const sparse::CsrMatrix a = sparse::tridiag(4, 2.0, -1.0);
  Vector b(5, 1.0), x(4, 0.0);
  core::IdentityPrecond none;
  EXPECT_THROW((void)core::fgmres(a, b, x, none), Error);
}

TEST(PrecondEdge, JacobiRejectsZeroDiagonal) {
  sparse::CooBuilder coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  coo.add(1, 1, 0.0);
  const sparse::CsrMatrix a = coo.build();
  EXPECT_THROW(core::JacobiPrecond p(a), Error);
}

// ---- dense ----

TEST(DenseEdge, MultiplyShapeMismatchRejected) {
  la::DenseMatrix a(2, 3), b(2, 2);
  EXPECT_THROW((void)a.multiply(b), Error);
  EXPECT_THROW((void)a.max_abs_diff(b), Error);
}

TEST(DenseEdge, MatvecTransposeMatchesExplicitTranspose) {
  la::DenseMatrix a(3, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  a(2, 0) = 5;
  a(2, 1) = 6;
  Vector x{1.0, -1.0, 2.0}, y1(2), y2(2);
  a.matvec_transpose(x, y1);
  a.transposed().matvec(x, y2);
  EXPECT_DOUBLE_EQ(y1[0], y2[0]);
  EXPECT_DOUBLE_EQ(y1[1], y2[1]);
}

// ---- harness ----

TEST(TableEdge, RowWidthEnforced) {
  exp::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(TableEdge, CsvEscapesSeparatorsAndQuotes) {
  exp::Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  std::stringstream ss;
  t.print_csv(ss);
  const std::string csv = ss.str();
  EXPECT_NE(csv.find("name,value\n"), std::string::npos);
  EXPECT_NE(csv.find("plain,1\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\",\"quote\"\"inside\"\n"),
            std::string::npos);
}

TEST(TableEdge, FormattersBehave) {
  EXPECT_EQ(exp::Table::integer(42), "42");
  EXPECT_EQ(exp::Table::num(1.5, 2), "1.50");
  EXPECT_EQ(exp::Table::sci(0.0012, 1), "1.2e-03");
}

}  // namespace
}  // namespace pfem
