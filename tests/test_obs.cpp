// pfem::obs tests: tracer semantics (nesting, overflow, disabled-mode
// cost), export/parse round-trips, and — the load-bearing one — the
// Table-1 oracle: the per-rank count of "exchange" spans in a trace must
// equal PerfCounters::neighbor_exchanges exactly, and the per-iteration
// delta must be m+3 for basic EDD (Algorithm 5) and m+1 for enhanced
// EDD (Algorithm 6) on the paper's Table-1 configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <new>
#include <optional>
#include <sstream>
#include <thread>

#include "core/edd_batch.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "obs/trace_io.hpp"
#include "par/comm.hpp"
#include "svc/service.hpp"

// ---- Global allocation counter for the zero-overhead test -----------------
// Counting overloads of the global operator new; delete stays default.

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// GCC pairs the malloc/free inside these replacements with the default
// operators at some inlined call sites; the replacement set is
// consistent, so silence that diagnostic here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace {

using namespace pfem;

// ---- Tracer semantics -----------------------------------------------------

TEST(Tracer, RecordsNestedSpansWithDepths) {
  obs::Tracer tr;
  tr.arm(std::chrono::steady_clock::now(), 64);
  {
    obs::Span outer(&tr, "outer", obs::Cat::Solve);
    {
      obs::Span inner(&tr, "inner", obs::Cat::Matvec, 7);
    }
  }
  const auto recs = tr.records();
  ASSERT_EQ(recs.size(), 2u);
  // Spans land at close time: inner first.
  EXPECT_STREQ(recs[0].name, "inner");
  EXPECT_EQ(recs[0].depth, 1);
  EXPECT_EQ(recs[0].id, 7u);
  EXPECT_EQ(recs[0].cat, obs::Cat::Matvec);
  EXPECT_STREQ(recs[1].name, "outer");
  EXPECT_EQ(recs[1].depth, 0);
  EXPECT_LE(recs[1].t0_ns, recs[0].t0_ns);
  EXPECT_GE(recs[1].t1_ns, recs[0].t1_ns);
}

TEST(Tracer, RingOverflowKeepsNewestAndCountsDropped) {
  obs::Tracer tr;
  tr.arm(std::chrono::steady_clock::now(), 8);
  for (int i = 0; i < 20; ++i)
    tr.counter("tick", obs::Cat::Solve, static_cast<double>(i));
  EXPECT_EQ(tr.total(), 20u);
  EXPECT_EQ(tr.dropped(), 12u);
  const auto recs = tr.records();
  ASSERT_EQ(recs.size(), 8u);
  // Chronological order, oldest surviving record first.
  for (std::size_t i = 0; i < recs.size(); ++i)
    EXPECT_DOUBLE_EQ(recs[i].value, static_cast<double>(12 + i));
}

TEST(Tracer, DisabledModeDoesNotAllocate) {
  // Null tracer (solver ran without a trace): the span must cost one
  // branch and zero heap traffic.
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    OBS_SPAN(static_cast<obs::Tracer*>(nullptr), "hot", obs::Cat::Matvec);
  }
  obs::Tracer unarmed;  // armed_ == false: same promise
  for (int i = 0; i < 1000; ++i) {
    OBS_SPAN(&unarmed, "hot", obs::Cat::Matvec);
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
  EXPECT_EQ(unarmed.total(), 0u);
}

TEST(Tracer, EnabledSpansDoNotAllocateAfterArming) {
  obs::Tracer tr;
  tr.arm(std::chrono::steady_clock::now(), 256);
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    OBS_SPAN(&tr, "hot", obs::Cat::Matvec, static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed), before);
  EXPECT_EQ(tr.total(), 100u);
}

TEST(Tracer, SelfTimeExcludesChildren) {
  obs::Tracer tr;
  tr.arm(std::chrono::steady_clock::now(), 64);
  // parent [0, 100], child [10, 60]: self(parent) = 50.
  tr.span_at("child", obs::Cat::Matvec, 10, 60, 0, 1);
  tr.span_at("parent", obs::Cat::Solve, 0, 100, 0, 0);
  const auto stats = obs::span_stats(tr.records());
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    if (std::string(s.name) == "parent") {
      EXPECT_EQ(s.total_ns, 100u);
      EXPECT_EQ(s.self_ns, 50u);
    } else {
      EXPECT_EQ(s.total_ns, 50u);
      EXPECT_EQ(s.self_ns, 50u);
    }
  }
}

// ---- Concurrent rank lanes (TSan target) ----------------------------------

TEST(Trace, ConcurrentRankLanesAreRaceFree) {
  constexpr int kRanks = 4;
  obs::Trace trace(kRanks, 1024);
  par::run_spmd(
      kRanks,
      [](par::Comm& c) {
        for (int i = 0; i < 50; ++i) {
          OBS_SPAN(c.tracer(), "work", obs::Cat::Solve,
                   static_cast<std::uint32_t>(i));
          (void)c.allreduce_sum(1.0);  // interleave comm spans
        }
      },
      &trace);
  for (int r = 0; r < kRanks; ++r) {
    // 50 "work" + 50 "allreduce" spans per lane.
    EXPECT_EQ(trace.rank(r).total(), 100u) << "rank " << r;
  }
  EXPECT_EQ(trace.aux().total(), 0u);
}

// ---- Export / parse round-trip --------------------------------------------

TEST(Export, ChromeTraceRoundTripsThroughParser) {
  obs::Trace trace(2, 64);
  trace.rank(0).span_at("solve", obs::Cat::Solve, 0, 1000);
  trace.rank(0).span_at("exchange", obs::Cat::Exchange, 100, 200, 3, 1);
  trace.rank(0).counter("relres", obs::Cat::Solve, 1.5e-7);
  trace.rank(1).span_at("solve", obs::Cat::Solve, 0, 900);
  trace.aux().span_at("queued", obs::Cat::Svc, 0, 50, 42);

  std::ostringstream os;
  obs::chrome_trace_json(os, trace);

  obs::io::TraceFile t;
  std::string err;
  ASSERT_TRUE(obs::io::parse_chrome_trace(os.str(), t, err)) << err;
  EXPECT_TRUE(obs::io::check(t, err)) << err;
  EXPECT_EQ(t.nranks, 2);
  EXPECT_EQ(t.dropped, 0);

  const auto exchanges = obs::io::count_by_pid(t, "exchange");
  ASSERT_GE(exchanges.size(), 2u);
  EXPECT_EQ(exchanges[0], 1u);
  EXPECT_EQ(exchanges[1], 0u);
  const auto solves = obs::io::count_by_pid(t, "solve");
  EXPECT_EQ(solves[0], 1u);
  EXPECT_EQ(solves[1], 1u);
  // The aux lane (pid == nranks) carries the service span.
  const auto queued = obs::io::count_by_pid(t, "queued");
  ASSERT_EQ(queued.size(), 3u);
  EXPECT_EQ(queued[2], 1u);
}

TEST(Export, MetricsJsonParses) {
  obs::Trace trace(1, 64);
  trace.rank(0).span_at("solve", obs::Cat::Solve, 0, 1000);
  trace.rank(0).counter("relres", obs::Cat::Solve, 0.25);
  std::ostringstream os;
  obs::metrics_json(os, trace);
  obs::io::Json root;
  std::string err;
  ASSERT_TRUE(obs::io::json_parse(os.str(), root, err)) << err;
  EXPECT_EQ(root.at("schema").str_or(""), "pfem-metrics-v1");
  ASSERT_TRUE(root.at("lanes").is(obs::io::Json::Type::Array));
}

TEST(Export, MergeOffsetsPids) {
  obs::Trace a(1, 16), b(1, 16);
  a.rank(0).span_at("solve", obs::Cat::Solve, 0, 10);
  b.rank(0).span_at("solve", obs::Cat::Solve, 0, 20);
  auto to_file = [](const obs::Trace& t) {
    std::ostringstream os;
    obs::chrome_trace_json(os, t);
    obs::io::TraceFile f;
    std::string err;
    EXPECT_TRUE(obs::io::parse_chrome_trace(os.str(), f, err)) << err;
    return f;
  };
  const auto merged = obs::io::merge({to_file(a), to_file(b)});
  const auto solves = obs::io::count_by_pid(merged, "solve");
  // Lanes must not collide: each input's spans keep their own pid.
  std::uint64_t total = 0;
  for (const auto c : solves) {
    EXPECT_LE(c, 1u);
    total += c;
  }
  EXPECT_EQ(total, 2u);
}

// ---- Malformed input ------------------------------------------------------
//
// The reader is fed files from disk (pfem_trace --check, merges of
// third-party captures), so every rejection must be a diagnostic, never
// a crash.

TEST(MalformedInput, EveryTruncationOfAValidTraceIsRejectedWithADiagnostic) {
  obs::Trace trace(2, 16);
  trace.rank(0).span_at("solve", obs::Cat::Solve, 0, 1000);
  trace.rank(1).span_at("solve", obs::Cat::Solve, 0, 900);
  std::ostringstream os;
  obs::chrome_trace_json(os, trace);
  std::string full = os.str();

  obs::io::TraceFile t;
  std::string err;
  ASSERT_TRUE(obs::io::parse_chrome_trace(full, t, err)) << err;
  // A JSON document is only complete at its final non-whitespace byte:
  // every shorter prefix must fail cleanly with a non-empty error.
  while (!full.empty() && std::isspace(static_cast<unsigned char>(
                              full.back())))
    full.pop_back();
  for (std::size_t len = 0; len < full.size(); ++len) {
    obs::io::TraceFile part;
    err.clear();
    EXPECT_FALSE(obs::io::parse_chrome_trace(full.substr(0, len), part, err))
        << "prefix of length " << len << " parsed";
    EXPECT_FALSE(err.empty()) << "prefix of length " << len;
  }
}

TEST(MalformedInput, MissingTraceEventsArrayIsRejected) {
  obs::io::TraceFile t;
  std::string err;
  EXPECT_FALSE(obs::io::parse_chrome_trace("{\"pfem\":{}}", t, err));
  EXPECT_NE(err.find("traceEvents"), std::string::npos) << err;
}

TEST(MalformedInput, MisNestedSpansAreRejectedByCheck) {
  // Two spans on one lane that partially overlap: [0, 100) and [50, 150).
  obs::io::TraceFile t;
  obs::io::Event a;
  a.name = "outer";
  a.ts_us = 0.0;
  a.dur_us = 100.0;
  obs::io::Event b;
  b.name = "straddler";
  b.ts_us = 50.0;
  b.dur_us = 100.0;
  t.events = {a, b};
  std::string err;
  EXPECT_FALSE(obs::io::check(t, err));
  EXPECT_NE(err.find("partially overlaps"), std::string::npos) << err;
  EXPECT_NE(err.find("straddler"), std::string::npos) << err;
}

TEST(MalformedInput, DuplicateTrackMetadataIsRejectedByCheck) {
  // Two process_name entries claiming the same (pid, tid) lane — the
  // signature of a bad merge.
  obs::io::TraceFile t;
  obs::io::Event m;
  m.name = "process_name";
  m.ph = 'M';
  m.pid = 3;
  m.tid = 0;
  m.process_name = "rank 3";
  t.events = {m, m};
  std::string err;
  EXPECT_FALSE(obs::io::check(t, err));
  EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
  EXPECT_NE(err.find("pid 3"), std::string::npos) << err;
}

TEST(MalformedInput, DistinctMetadataNamesMaySharePidTid) {
  // process_name + thread_name on the same lane is the normal Chrome
  // idiom and must stay valid.
  obs::io::TraceFile t;
  obs::io::Event p;
  p.name = "process_name";
  p.ph = 'M';
  p.pid = 1;
  p.process_name = "rank 1";
  obs::io::Event th = p;
  th.name = "thread_name";
  t.events = {p, th};
  std::string err;
  EXPECT_TRUE(obs::io::check(t, err)) << err;
}

TEST(MalformedInput, BadPhaseAndNegativeDurationAreRejectedByCheck) {
  obs::io::TraceFile t;
  obs::io::Event e;
  e.name = "weird";
  e.ph = 'Q';
  t.events = {e};
  std::string err;
  EXPECT_FALSE(obs::io::check(t, err));
  EXPECT_NE(err.find("unknown phase"), std::string::npos) << err;

  e.ph = 'X';
  e.dur_us = -1.0;
  t.events = {e};
  EXPECT_FALSE(obs::io::check(t, err));
  EXPECT_NE(err.find("negative"), std::string::npos) << err;
}

// ---- The Table-1 oracle ---------------------------------------------------

core::SolveOptions capped(index_t n) {
  core::SolveOptions opts;
  opts.tol = 1e-300;  // never reached: run exactly n inner iterations
  opts.restart = 25;
  opts.max_iters = n;
  opts.observe.trace = true;
  return opts;
}

/// Per-rank "exchange" span counts of a solve's trace, via the full
/// export -> parse -> count pipeline.
std::vector<std::uint64_t> traced_exchanges(const obs::Trace& trace) {
  std::ostringstream os;
  obs::chrome_trace_json(os, trace);
  obs::io::TraceFile t;
  std::string err;
  EXPECT_TRUE(obs::io::parse_chrome_trace(os.str(), t, err)) << err;
  EXPECT_TRUE(obs::io::check(t, err)) << err;
  EXPECT_EQ(t.dropped, 0);  // ring big enough: counts are exact
  return obs::io::count_by_pid(t, "exchange");
}

class Table1Oracle : public ::testing::Test {
 protected:
  static constexpr int kRanks = 4;
  static constexpr int kDegree = 7;  // m

  void SetUp() override {
    fem::CantileverSpec spec;  // the paper's Table-1 configuration
    spec.nx = 12;
    spec.ny = 6;
    prob_.emplace(fem::make_cantilever(spec));
    part_.emplace(exp::make_edd(*prob_, kRanks));
    poly_.kind = core::PolyKind::Gls;
    poly_.degree = kDegree;
  }

  /// Solve with exactly n inner iterations; return the per-rank traced
  /// exchange counts after asserting they equal the PerfCounters totals.
  std::vector<std::uint64_t> run(core::EddVariant variant, index_t n) {
    const auto res = core::solve_edd(*part_, prob_->load, poly_, capped(n),
                                     variant);
    EXPECT_NE(res.trace, nullptr);
    auto traced = traced_exchanges(*res.trace);
    traced.resize(static_cast<std::size_t>(kRanks));
    for (int r = 0; r < kRanks; ++r) {
      EXPECT_EQ(traced[static_cast<std::size_t>(r)],
                res.rank_counters[static_cast<std::size_t>(r)]
                    .neighbor_exchanges)
          << "rank " << r << ": trace and PerfCounters disagree";
    }
    return traced;
  }

  std::optional<fem::CantileverProblem> prob_;
  std::optional<partition::EddPartition> part_;
  core::PolySpec poly_;
};

TEST_F(Table1Oracle, BasicVariantExchangesMPlus3PerIteration) {
  const auto at3 = run(core::EddVariant::Basic, 3);
  const auto at4 = run(core::EddVariant::Basic, 4);
  for (int r = 0; r < kRanks; ++r)
    EXPECT_EQ(at4[static_cast<std::size_t>(r)] -
                  at3[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(kDegree + 3))
        << "Algorithm 5 must cost m+3 exchanges per Arnoldi iteration";
}

TEST_F(Table1Oracle, EnhancedVariantExchangesMPlus1PerIteration) {
  const auto at3 = run(core::EddVariant::Enhanced, 3);
  const auto at4 = run(core::EddVariant::Enhanced, 4);
  for (int r = 0; r < kRanks; ++r)
    EXPECT_EQ(at4[static_cast<std::size_t>(r)] -
                  at3[static_cast<std::size_t>(r)],
              static_cast<std::uint64_t>(kDegree + 1))
        << "Algorithm 6 must cost m+1 exchanges per Arnoldi iteration";
}

// ---- Unified report shapes ------------------------------------------------

TEST(SolveReport, DistributedSolveCarriesHistoryAndTrace) {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const auto prob = fem::make_cantilever(spec);
  const auto part = exp::make_edd(prob, 2);
  core::PolySpec poly;
  poly.degree = 3;
  core::SolveOptions opts;
  opts.observe.trace = true;
  std::vector<std::pair<index_t, real_t>> seen;
  opts.observe.progress = [&](index_t it, real_t relres, std::size_t b) {
    EXPECT_EQ(b, 0u);
    seen.emplace_back(it, relres);
  };
  const auto res = core::solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_FALSE(res.history.empty());
  EXPECT_EQ(res.history.size(), static_cast<std::size_t>(res.iterations));
  EXPECT_EQ(seen.size(), res.history.size());
  EXPECT_NEAR(res.history.back(), res.final_relres,
              1e-6 + res.final_relres);
  ASSERT_NE(res.trace, nullptr);
  EXPECT_GT(res.trace->rank(0).total(), 0u);
}

TEST(SolveReport, BatchItemsCarryPerRhsHistory) {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const auto prob = fem::make_cantilever(spec);
  const auto part = exp::make_edd(prob, 2);
  core::PolySpec poly;
  poly.degree = 3;
  par::Team team(2);
  const auto op = core::build_edd_operator(team, part, poly);
  std::vector<Vector> rhs;
  for (int i = 0; i < 3; ++i) {
    Vector f = prob.load;
    for (real_t& v : f) v *= 1.0 + 0.25 * static_cast<real_t>(i);
    rhs.push_back(std::move(f));
  }
  core::SolveOptions opts;
  opts.observe.trace = true;
  const auto res = core::solve_edd_batch(team, part, op, rhs, opts);
  ASSERT_EQ(res.items.size(), 3u);
  for (const auto& item : res.items) {
    EXPECT_TRUE(item.converged);
    ASSERT_FALSE(item.history.empty());
    EXPECT_EQ(item.history.size(), static_cast<std::size_t>(item.iterations));
  }
  ASSERT_NE(res.trace, nullptr);
  EXPECT_GT(res.trace->rank(0).total(), 0u);
}

// ---- Service lifecycle ----------------------------------------------------

TEST(ServiceObs, LifecycleSpansAndFusedProgress) {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const auto prob = fem::make_cantilever(spec);
  auto part = std::make_shared<const partition::EddPartition>(
      exp::make_edd(prob, 2));
  core::PolySpec poly;
  poly.degree = 3;

  svc::ServiceConfig cfg;
  cfg.nranks = 2;
  cfg.observe.trace = true;
  svc::Service service(cfg);
  service.register_operator("op", part, poly);

  std::atomic<int> progress_calls{0};
  svc::SolveRequest req;
  req.operator_key = "op";
  req.rhs.push_back(prob.load);
  req.opts.observe.progress = [&](index_t, real_t, std::size_t b) {
    EXPECT_EQ(b, 0u);  // request-local RHS index, not the batch index
    progress_calls.fetch_add(1, std::memory_order_relaxed);
  };
  auto submitted = service.submit(std::move(req));
  const svc::Outcome outcome = submitted.outcome.get();
  ASSERT_TRUE(svc::ok(outcome));
  const auto& completed = std::get<svc::Completed>(outcome);
  EXPECT_GT(progress_calls.load(), 0);
  EXPECT_EQ(progress_calls.load(),
            static_cast<int>(completed.result.items.front().iterations));

  service.shutdown();
  ASSERT_NE(service.trace(), nullptr);

  std::ostringstream os;
  obs::chrome_trace_json(os, *service.trace());
  obs::io::TraceFile t;
  std::string err;
  ASSERT_TRUE(obs::io::parse_chrome_trace(os.str(), t, err)) << err;
  EXPECT_TRUE(obs::io::check(t, err)) << err;
  // Scheduler lane: the request was stamped queued -> dispatched; rank
  // lanes carry the operator build and the batch solve.
  const auto queued = obs::io::count_by_pid(t, "queued");
  ASSERT_EQ(queued.size(), 3u);
  EXPECT_EQ(queued[2], 1u);
  const auto dispatch = obs::io::count_by_pid(t, "dispatch");
  EXPECT_EQ(dispatch[2], 1u);
  const auto build = obs::io::count_by_pid(t, "build_operator");
  EXPECT_EQ(build[0], 1u);
  EXPECT_EQ(build[1], 1u);
  const auto solve = obs::io::count_by_pid(t, "solve_batch");
  EXPECT_EQ(solve[0], 1u);
  EXPECT_EQ(solve[1], 1u);
}

}  // namespace
