// Tests for RCM reordering, the restricted additive Schwarz RDD
// preconditioner, and Rayleigh-damped Newmark.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/fgmres.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/rcm.hpp"
#include "timeint/newmark.hpp"

namespace pfem {
namespace {

TEST(Rcm, OrderingIsPermutation) {
  const sparse::CsrMatrix a = sparse::laplace2d(9, 7);
  const IndexVector order = sparse::rcm_ordering(a);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(a.rows()));
  IndexVector sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < a.rows(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rcm, ReducesBandwidthOfShuffledLaplacian) {
  // Shuffle a banded matrix, then RCM must restore a narrow band.
  const sparse::CsrMatrix a = sparse::laplace2d(20, 5);
  IndexVector shuffle(static_cast<std::size_t>(a.rows()));
  std::iota(shuffle.begin(), shuffle.end(), index_t{0});
  // Deterministic shuffle: stride permutation.
  IndexVector scattered(shuffle.size());
  const index_t n = a.rows();
  for (index_t i = 0; i < n; ++i)
    scattered[static_cast<std::size_t>(i)] = (i * 37) % n;
  const sparse::CsrMatrix mixed = sparse::permute_symmetric(a, scattered);
  EXPECT_GT(sparse::bandwidth(mixed), sparse::bandwidth(a));

  const IndexVector order = sparse::rcm_ordering(mixed);
  const sparse::CsrMatrix restored = sparse::permute_symmetric(mixed, order);
  EXPECT_LE(sparse::bandwidth(restored), sparse::bandwidth(mixed) / 2);
  EXPECT_LE(sparse::bandwidth(restored), 2 * sparse::bandwidth(a));
}

TEST(Rcm, PermutedSolveMatchesOriginal) {
  const sparse::CsrMatrix a = sparse::random_spd(40, 4, 0.2, 9);
  Vector b(40);
  for (std::size_t i = 0; i < 40; ++i) b[i] = std::sin(double(i));
  const IndexVector order = sparse::rcm_ordering(a);
  const sparse::CsrMatrix p = sparse::permute_symmetric(a, order);

  Vector x(40, 0.0), xp(40, 0.0), bp(40);
  for (index_t k = 0; k < 40; ++k)
    bp[static_cast<std::size_t>(k)] =
        b[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])];
  core::Ilu0Precond ia(a), ip(p);
  core::SolveOptions opts;
  opts.tol = 1e-11;
  ASSERT_TRUE(core::fgmres(a, b, x, ia, opts).converged);
  ASSERT_TRUE(core::fgmres(p, bp, xp, ip, opts).converged);
  for (index_t k = 0; k < 40; ++k)
    EXPECT_NEAR(xp[static_cast<std::size_t>(k)],
                x[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])],
                1e-7);
}

TEST(Rcm, HandlesDisconnectedGraph) {
  // Block-diagonal: two disconnected Laplacians.
  sparse::CooBuilder coo(8, 8);
  for (index_t i = 0; i < 4; ++i) {
    coo.add(i, i, 2.0);
    if (i > 0) {
      coo.add(i, i - 1, -1.0);
      coo.add(i - 1, i, -1.0);
    }
  }
  for (index_t i = 4; i < 8; ++i) {
    coo.add(i, i, 2.0);
    if (i > 4) {
      coo.add(i, i - 1, -1.0);
      coo.add(i - 1, i, -1.0);
    }
  }
  const sparse::CsrMatrix a = coo.build();
  const IndexVector order = sparse::rcm_ordering(a);
  IndexVector sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 8; ++i) EXPECT_EQ(sorted[i], i);
}

class SchwarzTest : public ::testing::TestWithParam<int> {};

TEST_P(SchwarzTest, MatchesSequentialSolution) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  Vector x_ref(prob.load.size(), 0.0);
  core::Ilu0Precond ilu(prob.stiffness);
  core::SolveOptions ref_opts;
  ref_opts.tol = 1e-12;
  ref_opts.max_iters = 50000;
  ASSERT_TRUE(core::fgmres(prob.stiffness, prob.load, x_ref, ilu, ref_opts)
                  .converged);

  const partition::RddPartition part = exp::make_rdd(prob, nparts);
  core::RddOptions rdd;
  rdd.precond = core::RddOptions::Precond::AdditiveSchwarz;
  core::SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 50000;
  const core::DistSolve res = core::solve_rdd(part, prob.load, rdd,
                                                    opts);
  ASSERT_TRUE(res.converged);
  const real_t scale = la::nrm_inf(x_ref);
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, SchwarzTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(Schwarz, BeatsBlockJacobiIterations) {
  // The overlap couples subdomains: RAS should converge in no more
  // iterations than non-overlapping block Jacobi.
  fem::CantileverSpec spec;
  spec.nx = 16;
  spec.ny = 8;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::RddPartition part = exp::make_rdd(prob, 4);
  core::SolveOptions opts;
  opts.tol = 1e-8;
  opts.max_iters = 50000;
  core::RddOptions bj;
  bj.precond = core::RddOptions::Precond::BlockJacobiIlu;
  core::RddOptions ras;
  ras.precond = core::RddOptions::Precond::AdditiveSchwarz;
  const auto r_bj = core::solve_rdd(part, prob.load, bj, opts);
  const auto r_ras = core::solve_rdd(part, prob.load, ras, opts);
  ASSERT_TRUE(r_bj.converged && r_ras.converged);
  EXPECT_LE(r_ras.iterations, r_bj.iterations);
}

TEST(Schwarz, OneExchangePerApply) {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::RddPartition part = exp::make_rdd(prob, 4);
  core::RddOptions ras;
  ras.precond = core::RddOptions::Precond::AdditiveSchwarz;
  core::SolveOptions opts;
  opts.tol = 1e-300;
  opts.max_iters = 3;
  const auto a = core::solve_rdd(part, prob.load, ras, opts);
  opts.max_iters = 4;
  const auto b = core::solve_rdd(part, prob.load, ras, opts);
  const par::PerfCounters d =
      b.rank_counters[0].delta_since(a.rank_counters[0]);
  EXPECT_EQ(d.neighbor_exchanges, 2u);  // 1 precondition + 1 mat-vec
  EXPECT_EQ(d.matvecs, 1u);
}

TEST(Damping, RayleighDampedVibrationDecays) {
  // SDOF with Rayleigh damping: the free-vibration amplitude decays.
  sparse::CooBuilder km(1, 1), mm(1, 1);
  km.add(0, 0, 50.0);
  mm.add(0, 0, 2.0);
  const sparse::CsrMatrix k = km.build();
  const sparse::CsrMatrix m = mm.build();
  timeint::NewmarkOptions opts;
  opts.dt = 0.002;
  opts.rayleigh_alpha = 0.4;  // mass-proportional damping
  const timeint::Newmark nm(k, m, opts);

  Vector u{0.3}, v{0.0}, a{-50.0 * 0.3 / 2.0};
  Vector f{0.0};
  real_t peak = 0.0;
  for (int s = 0; s < 4000; ++s) {
    const Vector rhs = nm.effective_rhs(u, v, a, f);
    Vector u_new{rhs[0] / nm.k_eff().at(0, 0)};
    nm.advance(u_new, u, v, a);
    if (s > 3000) peak = std::max(peak, std::abs(u[0]));
  }
  EXPECT_LT(peak, 0.15);  // visibly damped from the initial 0.3

  // Undamped reference keeps its amplitude.
  timeint::NewmarkOptions undamped;
  undamped.dt = 0.002;
  const timeint::Newmark nm0(k, m, undamped);
  Vector u0{0.3}, v0{0.0}, a0{-50.0 * 0.3 / 2.0};
  real_t peak0 = 0.0;
  for (int s = 0; s < 4000; ++s) {
    const Vector rhs = nm0.effective_rhs(u0, v0, a0, f);
    Vector u_new{rhs[0] / nm0.k_eff().at(0, 0)};
    nm0.advance(u_new, u0, v0, a0);
    if (s > 3000) peak0 = std::max(peak0, std::abs(u0[0]));
  }
  EXPECT_GT(peak0, 0.29);
}

TEST(Damping, EffectiveStiffnessGainsDampingTerm) {
  sparse::CooBuilder km(1, 1), mm(1, 1);
  km.add(0, 0, 10.0);
  mm.add(0, 0, 2.0);
  const sparse::CsrMatrix k = km.build();
  const sparse::CsrMatrix m = mm.build();
  timeint::NewmarkOptions opts;
  opts.dt = 0.1;
  opts.rayleigh_alpha = 0.5;
  opts.rayleigh_beta = 0.01;
  const timeint::Newmark nm(k, m, opts);
  // a0 = 400, a1 = 20; C = 0.5*2 + 0.01*10 = 1.1.
  EXPECT_NEAR(nm.k_eff().at(0, 0), 10.0 + 400.0 * 2.0 + 20.0 * 1.1, 1e-10);
}

TEST(Damping, DampedStepLoadSettlesToStaticSolution) {
  // With damping, a constant load drives u to f/k without sustained
  // oscillation — the tail must sit near the static value.
  sparse::CooBuilder km(1, 1), mm(1, 1);
  km.add(0, 0, 40.0);
  mm.add(0, 0, 1.0);
  const sparse::CsrMatrix k = km.build();
  const sparse::CsrMatrix m = mm.build();
  timeint::NewmarkOptions opts;
  opts.dt = 0.01;
  opts.rayleigh_alpha = 3.0;
  const timeint::Newmark nm(k, m, opts);
  Vector u{0.0}, v{0.0}, a{8.0};
  Vector f{8.0};
  for (int s = 0; s < 4000; ++s) {
    const Vector rhs = nm.effective_rhs(u, v, a, f);
    Vector u_new{rhs[0] / nm.k_eff().at(0, 0)};
    nm.advance(u_new, u, v, a);
  }
  EXPECT_NEAR(u[0], 8.0 / 40.0, 1e-3);
}

}  // namespace
}  // namespace pfem
