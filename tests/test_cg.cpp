// PCG tests: sequential correctness, EDD-distributed correctness across
// process counts, and the m+1 exchange count per iteration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cg.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/dense.hpp"
#include "la/vector_ops.hpp"
#include "sparse/generators.hpp"

namespace pfem::core {
namespace {

Vector dense_solve(const sparse::CsrMatrix& a, const Vector& b) {
  la::DenseMatrix ad(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) ad(i, j) = a.at(i, j);
  Vector x = b;
  la::lu_solve(ad, x);
  return x;
}

TEST(Pcg, SolvesSpdSystem) {
  const sparse::CsrMatrix a = sparse::laplace2d(10, 10);
  Vector b(100);
  for (std::size_t i = 0; i < 100; ++i) b[i] = std::sin(0.17 * double(i));
  const Vector x_ref = dense_solve(a, b);
  Vector x(100, 0.0);
  JacobiPrecond jacobi(a);
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 2000;
  const SolveReport res = pcg(a, b, x, jacobi, opts);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-7);
}

TEST(Pcg, ExactInNStepsForTinySystem) {
  // CG terminates in at most n steps (exact arithmetic); a 5x5 system
  // must be solved in <= 5 iterations to near machine precision.
  const sparse::CsrMatrix a = sparse::tridiag(5, 3.0, -1.0);
  Vector b{1, 2, 3, 4, 5};
  Vector x(5, 0.0);
  IdentityPrecond none;
  SolveOptions opts;
  opts.tol = 1e-12;
  const SolveReport res = pcg(a, b, x, none, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 5);
}

TEST(Pcg, PolynomialPreconditionerCutsIterations) {
  fem::CantileverSpec spec;
  spec.nx = 12;
  spec.ny = 6;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const ScaledSystem s = scale_system(prob.stiffness, prob.load);
  SolveOptions opts;
  opts.tol = 1e-8;
  opts.max_iters = 20000;

  Vector x1(s.b.size(), 0.0);
  IdentityPrecond none;
  const SolveReport plain = pcg(s.a, s.b, x1, none, opts);

  Vector x2(s.b.size(), 0.0);
  GlsPrecond gls(LinearOp::from_csr(s.a),
                 GlsPolynomial(default_theta_after_scaling(), 7));
  const SolveReport with_gls = pcg(s.a, s.b, x2, gls, opts);

  ASSERT_TRUE(plain.converged && with_gls.converged);
  EXPECT_LT(with_gls.iterations, plain.iterations);
  for (std::size_t i = 0; i < x1.size(); ++i)
    EXPECT_NEAR(x2[i], x1[i], 1e-5 * (1.0 + std::abs(x1[i])));
}

TEST(Pcg, ThrowsOnIndefiniteOperator) {
  const sparse::CsrMatrix a = sparse::diagonal_matrix({1.0, -1.0, 2.0});
  Vector b{1, 1, 1}, x(3, 0.0);
  IdentityPrecond none;
  EXPECT_THROW((void)pcg(a, b, x, none), Error);
}

TEST(Pcg, ZeroRhs) {
  const sparse::CsrMatrix a = sparse::tridiag(8, 2.0, -1.0);
  Vector b(8, 0.0), x(8, 0.0);
  IdentityPrecond none;
  const SolveReport res = pcg(a, b, x, none);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

class EddCgTest : public ::testing::TestWithParam<int> {};

TEST_P(EddCgTest, MatchesSequentialSolution) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  Vector x_ref(prob.load.size(), 0.0);
  Ilu0Precond ilu(prob.stiffness);
  SolveOptions ref_opts;
  ref_opts.tol = 1e-12;
  ref_opts.max_iters = 50000;
  ASSERT_TRUE(
      fgmres(prob.stiffness, prob.load, x_ref, ilu, ref_opts).converged);

  const partition::EddPartition part = exp::make_edd(prob, nparts);
  PolySpec poly;
  poly.degree = 5;
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 50000;
  const DistSolve res = solve_edd_cg(part, prob.load, poly, opts);
  ASSERT_TRUE(res.converged);
  const real_t scale = la::nrm_inf(x_ref);
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale) << "dof " << i;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, EddCgTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(EddCg, ExchangesPerIterationAreDegreePlusOne) {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 6;
  SolveOptions opts;
  opts.tol = 1e-300;
  opts.max_iters = 3;
  const DistSolve a = solve_edd_cg(part, prob.load, poly, opts);
  opts.max_iters = 4;
  const DistSolve b = solve_edd_cg(part, prob.load, poly, opts);
  const par::PerfCounters d =
      b.rank_counters[0].delta_since(a.rank_counters[0]);
  EXPECT_EQ(d.neighbor_exchanges, 7u);  // m inside P(A), 1 for r_glob
  EXPECT_EQ(d.matvecs, 7u);
  EXPECT_EQ(d.global_reductions, 3u);   // pap, ||r||, rho
}

TEST(EddCg, ChebyshevPreconditionerWorksToo) {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 3);
  PolySpec poly;
  poly.kind = PolyKind::Chebyshev;
  poly.degree = 7;
  poly.theta = {{1e-4, 1.0}};
  const DistSolve res = solve_edd_cg(part, prob.load, poly);
  EXPECT_TRUE(res.converged);
}

TEST(EddCg, AgreesWithEddFgmresIterationsBallpark) {
  // Same preconditioner, same system: CG and FGMRES(∞) minimize in
  // related norms; iteration counts should be of the same order.
  fem::CantileverSpec spec;
  spec.nx = 12;
  spec.ny = 6;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-6;
  const DistSolve cg = solve_edd_cg(part, prob.load, poly, opts);
  const DistSolve gm = solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(cg.converged && gm.converged);
  EXPECT_LT(cg.iterations, 4 * gm.iterations + 10);
  EXPECT_LT(gm.iterations, 4 * cg.iterations + 10);
}

}  // namespace
}  // namespace pfem::core
