// Seeded fuzz of the EBE gather/scatter index path.
//
// The EbeStore constructor is the single validation gate for the
// matrix-free kernel's hot loop — apply_add runs with no bounds checks
// beyond the constrained-dof guard, so every malformed input must be
// rejected there with a typed error, and every degenerate-but-valid
// input (orphan dofs no element touches, elements made only of
// constrained slots, empty stores, empty subdomain ranges) must produce
// exactly the rows a reference COO assembly produces — zero rows
// included — and never an out-of-bounds access.  This binary runs under
// ASan+UBSan in CI, so "never OOB" is checked by the sanitizer, not by
// hope.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "la/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/ebe_store.hpp"

namespace pfem {
namespace {

/// splitmix64 — the repo's standard deterministic test generator.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed) {}
  std::uint64_t next() {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform in [0, m) for m >= 1.
  index_t below(index_t m) {
    return static_cast<index_t>(next() % static_cast<std::uint64_t>(m));
  }
  real_t value() {
    const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return (u - 0.5) * 8.0;
  }
};

struct FuzzCase {
  index_t n = 0;
  index_t edofs = 0;
  IndexVector dof_ids;
  std::vector<real_t> values;
};

/// A random store: mostly valid ids, a seeded sprinkle of constrained
/// markers, sometimes whole elements of nothing but -1, and (by
/// construction) dofs no element references — the orphan-node case.
FuzzCase random_case(Rng& rng, bool allow_empty) {
  FuzzCase c;
  c.n = allow_empty ? rng.below(24) : 1 + rng.below(23);
  c.edofs = 1 + rng.below(std::min<index_t>(sparse::kMaxEbeElemDofs, 12));
  const index_t ne = allow_empty ? rng.below(12) : rng.below(11) + 1;
  for (index_t e = 0; e < ne; ++e) {
    const bool all_constrained = rng.below(8) == 0;
    for (index_t k = 0; k < c.edofs; ++k) {
      const bool constrained =
          all_constrained || c.n == 0 || rng.below(5) == 0;
      c.dof_ids.push_back(constrained ? index_t{-1} : rng.below(c.n));
    }
    for (index_t k = 0; k < c.edofs * c.edofs; ++k)
      c.values.push_back(rng.value());
  }
  return c;
}

/// Reference: assemble the same elements through the COO path, apply the
/// assembled CSR.  Constrained slots (-1) are skipped exactly as the
/// assembly layer skips fixed dofs.
sparse::CsrMatrix assemble_reference(const FuzzCase& c) {
  sparse::CooBuilder coo(c.n, c.n);
  const auto ed = static_cast<std::size_t>(c.edofs);
  const std::size_t ne = c.dof_ids.size() / ed;
  for (std::size_t e = 0; e < ne; ++e) {
    for (std::size_t r = 0; r < ed; ++r) {
      const index_t gi = c.dof_ids[e * ed + r];
      if (gi < 0) continue;
      for (std::size_t col = 0; col < ed; ++col) {
        const index_t gj = c.dof_ids[e * ed + col];
        if (gj < 0) continue;
        coo.add(gi, gj, c.values[e * ed * ed + r * ed + col]);
      }
    }
  }
  return coo.build();
}

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34,
                                    55, 89, 144, 233};

TEST(EbeFuzz, RandomStoresMatchCooAssemblyIncludingZeroRows) {
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    for (int round = 0; round < 16; ++round) {
      const FuzzCase c = random_case(rng, /*allow_empty=*/true);
      const sparse::EbeStore store(c.n, c.edofs, IndexVector(c.dof_ids),
                                   std::vector<real_t>(c.values));
      const sparse::CsrMatrix ref = assemble_reference(c);

      const std::size_t n = static_cast<std::size_t>(c.n);
      Vector x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = rng.value();
      Vector y_ref(n, 0.0), y(n, 0.0);
      ref.spmv(x, y_ref);
      store.apply_add(0, store.num_elems(), x, y);

      // The element sweep reassociates row sums, so compare to a scaled
      // ulp bound — and require EXACT zeros on rows no element touches
      // (orphan dofs): nothing may scatter there, not even a rounded
      // zero.
      std::vector<char> touched(n, 0);
      for (const index_t id : store.dof_ids())
        if (id >= 0) touched[static_cast<std::size_t>(id)] = 1;
      real_t scale = 1.0;
      for (std::size_t i = 0; i < n; ++i)
        scale = std::max(scale, std::abs(y_ref[i]));
      for (std::size_t i = 0; i < n; ++i) {
        if (touched[i] == 0) {
          ASSERT_EQ(y[i], 0.0) << "orphan dof " << i << " seed " << seed;
        } else {
          ASSERT_NEAR(y[i], y_ref[i], 1e-12 * scale)
              << "dof " << i << " seed " << seed;
        }
      }
    }
  }
}

TEST(EbeFuzz, ScaleFoldMatchesCsrScalingOnMergedEntries) {
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed * 7919);
    const FuzzCase c = random_case(rng, /*allow_empty=*/false);
    sparse::EbeStore store(c.n, c.edofs, IndexVector(c.dof_ids),
                           std::vector<real_t>(c.values));
    sparse::CsrMatrix ref = assemble_reference(c);

    Vector d(static_cast<std::size_t>(c.n));
    for (auto& v : d) v = 0.25 + std::abs(rng.value());
    ref.scale_symmetric(d);
    store.scale_symmetric(d);

    // Assembling AFTER the fold must agree with scaling the assembled
    // matrix: both round d_r*d_c first, and (Σv)·t == Σ(v·t) holds only
    // to reassociation, so the check is an ulp bound on the entries.
    FuzzCase folded = c;
    folded.values.assign(store.values().begin(), store.values().end());
    const sparse::CsrMatrix refolded = assemble_reference(folded);
    const auto a = ref.values();
    const auto b = refolded.values();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k)
      ASSERT_NEAR(a[k], b[k],
                  1e-12 * std::max<real_t>(1.0, std::abs(a[k])))
          << "entry " << k << " seed " << seed;
  }
}

TEST(EbeFuzz, MalformedInputsAreTypedErrorsNeverOob) {
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed * 104729);
    const FuzzCase c = random_case(rng, /*allow_empty=*/false);
    if (c.dof_ids.empty()) continue;

    // Corrupt one id past either end of [0, n) — must throw, not read.
    for (const index_t bad : {c.n, static_cast<index_t>(c.n + rng.below(100)),
                              index_t{-2},
                              static_cast<index_t>(-2 - rng.below(100))}) {
      IndexVector ids = c.dof_ids;
      ids[static_cast<std::size_t>(rng.below(as_index(ids.size())))] = bad;
      EXPECT_THROW(sparse::EbeStore(c.n, c.edofs, std::move(ids),
                                    std::vector<real_t>(c.values)),
                   Error)
          << "bad id " << bad << " seed " << seed;
    }

    // Truncated / oversized buffers must throw before any indexing.
    {
      IndexVector ids = c.dof_ids;
      ids.pop_back();
      EXPECT_THROW(sparse::EbeStore(c.n, c.edofs, std::move(ids),
                                    std::vector<real_t>(c.values)),
                   Error);
    }
    {
      std::vector<real_t> vals = c.values;
      vals.pop_back();
      EXPECT_THROW(sparse::EbeStore(c.n, c.edofs, IndexVector(c.dof_ids),
                                    std::move(vals)),
                   Error);
    }
  }
}

TEST(EbeFuzz, DegenerateShapesApplyCleanly) {
  // Empty store over zero dofs.
  const sparse::EbeStore empty(0, 4, IndexVector{}, {});
  EXPECT_EQ(empty.num_elems(), 0);
  Vector none;
  empty.apply_add(0, 0, none, none);

  // Elements made only of constrained slots: apply is a global no-op.
  const index_t n = 6;
  IndexVector ids(8, -1);
  std::vector<real_t> vals(32, 3.5);
  const sparse::EbeStore ghost(n, 4, std::move(ids), std::move(vals));
  Vector x(static_cast<std::size_t>(n), 2.0);
  Vector y(static_cast<std::size_t>(n), 0.0);
  ghost.apply_add(0, ghost.num_elems(), x, y);
  for (const real_t v : y) ASSERT_EQ(v, 0.0);

  // Empty element ranges are no-ops wherever they sit.
  Rng rng(42);
  const FuzzCase c = random_case(rng, /*allow_empty=*/false);
  const sparse::EbeStore store(c.n, c.edofs, IndexVector(c.dof_ids),
                               std::vector<real_t>(c.values));
  Vector xs(static_cast<std::size_t>(c.n), 1.0);
  Vector ys(static_cast<std::size_t>(c.n), 0.0);
  store.apply_add(0, 0, xs, ys);
  store.apply_add(store.num_elems(), store.num_elems(), xs, ys);
  for (const real_t v : ys) ASSERT_EQ(v, 0.0);

  // Multi-RHS over an empty lane set.
  store.apply_add_many(0, store.num_elems(), {}, {});
}

}  // namespace
}  // namespace pfem
