// Partitioning tests: geometric partitioners, EDD subdomain construction
// (Eq. 27–32 identities), and RDD block-row splitting (Fig. 6/7).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "partition/edd.hpp"
#include "partition/geom.hpp"
#include "partition/rdd.hpp"

namespace pfem::partition {
namespace {

std::vector<Point> grid_points(int nx, int ny) {
  std::vector<Point> pts;
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i)
      pts.emplace_back(static_cast<real_t>(i), static_cast<real_t>(j));
  return pts;
}

TEST(Geom, StripsAreBalancedAndContiguous) {
  const auto pts = grid_points(8, 4);
  const IndexVector part = partition_strips(pts, 4, true);
  const IndexVector sizes = part_sizes(part, 4);
  for (index_t s : sizes) EXPECT_EQ(s, 8);
  // Items sorted by x must have non-decreasing part ids.
  for (std::size_t k = 0; k < pts.size(); ++k)
    for (std::size_t l = 0; l < pts.size(); ++l)
      if (pts[k].first < pts[l].first) {
        EXPECT_LE(part[k], part[l]);
      }
}

TEST(Geom, RcbBalanced) {
  const auto pts = grid_points(10, 6);
  for (int p : {2, 3, 4, 5, 8}) {
    const IndexVector part = partition_rcb(pts, p);
    const IndexVector sizes = part_sizes(part, p);
    const index_t lo = *std::min_element(sizes.begin(), sizes.end());
    const index_t hi = *std::max_element(sizes.begin(), sizes.end());
    EXPECT_LE(hi - lo, 2) << "p=" << p;
    index_t total = std::accumulate(sizes.begin(), sizes.end(), index_t{0});
    EXPECT_EQ(total, as_index(pts.size()));
  }
}

TEST(Geom, Rcb3BalancedOnCube) {
  std::vector<Point3> pts;
  for (int k = 0; k < 4; ++k)
    for (int j = 0; j < 4; ++j)
      for (int i = 0; i < 4; ++i)
        pts.push_back({real_t(i), real_t(j), real_t(k)});
  for (int p : {2, 4, 8}) {
    const IndexVector part = partition_rcb3(pts, p);
    const IndexVector sizes = part_sizes(part, p);
    for (index_t s : sizes) EXPECT_EQ(s, 64 / p) << "p=" << p;
  }
  // 8 parts on a cube must split in all three axes: each octant's
  // points share a part, and parts differ across octants.
  const IndexVector part8 = partition_rcb3(pts, 8);
  auto at = [&](int i, int j, int k) {
    return part8[static_cast<std::size_t>((k * 4 + j) * 4 + i)];
  };
  EXPECT_NE(at(0, 0, 0), at(3, 0, 0));
  EXPECT_NE(at(0, 0, 0), at(0, 3, 0));
  EXPECT_NE(at(0, 0, 0), at(0, 0, 3));
}

TEST(Geom, SinglePartTrivial) {
  const auto pts = grid_points(3, 3);
  const IndexVector part = partition_rcb(pts, 1);
  for (index_t p : part) EXPECT_EQ(p, 0);
}

class EddPartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(EddPartitionTest, LocalMatricesSumToGlobal) {
  // Σ_s B_s^T K̂_loc^(s) B_s == K (Eq. 32): apply both to random vectors.
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const EddPartition part = exp::make_edd(prob, nparts);
  ASSERT_EQ(part.nparts(), nparts);

  const std::size_t n = static_cast<std::size_t>(part.n_global);
  Vector x(n), y_ref(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(0.13 * double(i) + 1);
  prob.stiffness.spmv(x, y_ref);

  // Distributed: scatter x (global fmt), local SpMV, gather local fmt.
  std::vector<Vector> y_loc(static_cast<std::size_t>(nparts));
  for (int s = 0; s < nparts; ++s) {
    const Vector xs = edd_scatter(part, s, x);
    y_loc[static_cast<std::size_t>(s)].resize(xs.size());
    part.subs[static_cast<std::size_t>(s)].k_loc.spmv(
        xs, y_loc[static_cast<std::size_t>(s)]);
  }
  const Vector y = edd_gather_local(part, y_loc);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-9);
}

TEST_P(EddPartitionTest, ElementsCoverDisjointly) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const EddPartition part = exp::make_edd(prob, nparts);
  std::set<index_t> seen;
  for (const EddSubdomain& sub : part.subs)
    for (index_t e : sub.elems) EXPECT_TRUE(seen.insert(e).second);
  EXPECT_EQ(as_index(seen.size()), prob.mesh.num_elems());
}

TEST_P(EddPartitionTest, NeighborListsAreMutualAndAligned) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const EddPartition part = exp::make_edd(prob, nparts);
  for (int s = 0; s < nparts; ++s) {
    const EddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
    for (const auto& nb : sub.neighbors) {
      const EddSubdomain& other = part.subs[static_cast<std::size_t>(nb.rank)];
      const auto it = std::find_if(
          other.neighbors.begin(), other.neighbors.end(),
          [&](const auto& onb) { return onb.rank == s; });
      ASSERT_NE(it, other.neighbors.end());
      ASSERT_EQ(it->shared_local_dofs.size(), nb.shared_local_dofs.size());
      // Both orderings refer to the same ascending global dofs.
      for (std::size_t k = 0; k < nb.shared_local_dofs.size(); ++k) {
        const index_t g_here =
            sub.local_to_global[static_cast<std::size_t>(
                nb.shared_local_dofs[k])];
        const index_t g_there =
            other.local_to_global[static_cast<std::size_t>(
                it->shared_local_dofs[k])];
        EXPECT_EQ(g_here, g_there);
      }
    }
  }
}

TEST_P(EddPartitionTest, MultiplicityCountsTouchingSubdomains) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const EddPartition part = exp::make_edd(prob, nparts);
  Vector count(static_cast<std::size_t>(part.n_global), 0.0);
  for (const EddSubdomain& sub : part.subs)
    for (index_t g : sub.local_to_global)
      count[static_cast<std::size_t>(g)] += 1.0;
  for (const EddSubdomain& sub : part.subs)
    for (std::size_t l = 0; l < sub.local_to_global.size(); ++l)
      EXPECT_DOUBLE_EQ(
          static_cast<double>(sub.multiplicity[l]),
          count[static_cast<std::size_t>(sub.local_to_global[l])]);
}

TEST_P(EddPartitionTest, ScatterGatherRoundTrip) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const EddPartition part = exp::make_edd(prob, nparts);
  const std::size_t n = static_cast<std::size_t>(part.n_global);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.5 + double(i % 7);
  std::vector<Vector> copies;
  for (int s = 0; s < nparts; ++s) copies.push_back(edd_scatter(part, s, x));
  const Vector back = edd_gather_global(part, copies);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(back[i], x[i]);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, EddPartitionTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

class RddPartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(RddPartitionTest, LocalPlusExternalReproducesMatvec) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const RddPartition part = exp::make_rdd(prob, nparts);
  const std::size_t n = static_cast<std::size_t>(part.n_global);

  Vector x(n), y_ref(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::cos(0.31 * double(i));
  prob.stiffness.spmv(x, y_ref);

  std::vector<Vector> y_loc(static_cast<std::size_t>(nparts));
  for (int s = 0; s < nparts; ++s) {
    const RddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
    const Vector xs = rdd_scatter(part, s, x);
    Vector x_ext(std::max<std::size_t>(1, static_cast<std::size_t>(sub.n_ext())),
                 0.0);
    for (std::size_t k = 0; k < sub.ext_global.size(); ++k)
      x_ext[k] = x[static_cast<std::size_t>(sub.ext_global[k])];
    Vector& ys = y_loc[static_cast<std::size_t>(s)];
    ys.resize(xs.size());
    sub.a_loc.spmv(xs, ys);
    if (sub.n_ext() > 0) sub.a_ext.spmv_add(x_ext, ys);
  }
  const Vector y = rdd_gather(part, y_loc);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-10);
}

TEST_P(RddPartitionTest, RowsCoverDisjointly) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const RddPartition part = exp::make_rdd(prob, nparts);
  std::set<index_t> seen;
  for (const RddSubdomain& sub : part.subs)
    for (index_t g : sub.rows) EXPECT_TRUE(seen.insert(g).second);
  EXPECT_EQ(as_index(seen.size()), part.n_global);
}

TEST_P(RddPartitionTest, CommScheduleConsistent) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const RddPartition part = exp::make_rdd(prob, nparts);
  for (int s = 0; s < nparts; ++s) {
    const RddSubdomain& sub = part.subs[static_cast<std::size_t>(s)];
    for (const auto& nb : sub.neighbors) {
      const RddSubdomain& other =
          part.subs[static_cast<std::size_t>(nb.rank)];
      const auto it = std::find_if(
          other.neighbors.begin(), other.neighbors.end(),
          [&](const auto& onb) { return onb.rank == s; });
      if (!nb.recv_ext_positions.empty()) {
        ASSERT_NE(it, other.neighbors.end());
        // What s expects from nb.rank must be what nb.rank sends.
        ASSERT_EQ(it->send_local_rows.size(), nb.recv_ext_positions.size());
        for (std::size_t k = 0; k < nb.recv_ext_positions.size(); ++k) {
          const index_t g_recv = sub.ext_global[static_cast<std::size_t>(
              nb.recv_ext_positions[k])];
          const index_t g_send = other.rows[static_cast<std::size_t>(
              it->send_local_rows[k])];
          EXPECT_EQ(g_recv, g_send);
        }
      }
    }
  }
}

TEST_P(RddPartitionTest, InteriorBoundarySplitCounts) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const RddPartition part = exp::make_rdd(prob, nparts);
  for (const RddSubdomain& sub : part.subs) {
    EXPECT_EQ(sub.n_interior + sub.n_boundary, sub.n_local());
    if (nparts == 1) {
      EXPECT_EQ(sub.n_boundary, 0);
      EXPECT_EQ(sub.n_ext(), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, RddPartitionTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(EddStats, InterfaceGrowsWithParts) {
  fem::CantileverSpec spec;
  spec.nx = 16;
  spec.ny = 8;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const EddPartition p2 = exp::make_edd(prob, 2);
  const EddPartition p8 = exp::make_edd(prob, 8);
  EXPECT_GT(p8.total_interface_dofs(), p2.total_interface_dofs());
  EXPECT_GE(p8.max_neighbors(), p2.max_neighbors());
  EXPECT_EQ(exp::make_edd(prob, 1).total_interface_dofs(), 0);
}

TEST(NodePartToDofPart, InheritsNodeAssignment) {
  fem::CantileverSpec spec;
  spec.nx = 4;
  spec.ny = 2;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  IndexVector node_part(static_cast<std::size_t>(prob.mesh.num_nodes()), 0);
  for (index_t n = 0; n < prob.mesh.num_nodes(); ++n)
    node_part[static_cast<std::size_t>(n)] = n % 2;
  const IndexVector dof_part =
      node_part_to_dof_part(prob.dofs, node_part);
  for (index_t n = 0; n < prob.mesh.num_nodes(); ++n)
    for (index_t c = 0; c < 2; ++c) {
      const index_t d = prob.dofs.dof(n, c);
      if (d >= 0) {
        EXPECT_EQ(dof_part[static_cast<std::size_t>(d)],
                  node_part[static_cast<std::size_t>(n)]);
      }
    }
}

}  // namespace
}  // namespace pfem::partition
