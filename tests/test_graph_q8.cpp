// Tests for the graph partitioner and the Q8 serendipity element.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "exp/experiments.hpp"
#include "fem/elements.hpp"
#include "fem/problems.hpp"
#include "fem/structured.hpp"
#include "la/vector_ops.hpp"
#include "partition/geom.hpp"
#include "partition/graph.hpp"

namespace pfem {
namespace {

TEST(ElementAdjacency, StructuredQuadCounts) {
  const fem::Mesh mesh = fem::structured_quad(4, 3, 4.0, 3.0);
  const auto adj_edge = partition::element_adjacency(mesh, 2);
  const auto adj_node = partition::element_adjacency(mesh, 1);
  // Interior element: 4 edge-neighbors, 8 node-neighbors.
  const index_t interior = 1 * 4 + 1;  // element (1,1)
  EXPECT_EQ(adj_edge[static_cast<std::size_t>(interior)].size(), 4u);
  EXPECT_EQ(adj_node[static_cast<std::size_t>(interior)].size(), 8u);
  // Corner element: 2 edge-neighbors, 3 node-neighbors.
  EXPECT_EQ(adj_edge[0].size(), 2u);
  EXPECT_EQ(adj_node[0].size(), 3u);
}

TEST(GreedyPartition, BalancedAndCovering) {
  const fem::Mesh mesh = fem::structured_quad(10, 6, 10.0, 6.0);
  const auto adj = partition::element_adjacency(mesh, 2);
  for (int p : {2, 3, 4, 7}) {
    const IndexVector part = partition::partition_greedy(adj, p);
    const IndexVector sizes = partition::part_sizes(part, p);
    const index_t total =
        std::accumulate(sizes.begin(), sizes.end(), index_t{0});
    EXPECT_EQ(total, mesh.num_elems());
    const index_t lo = *std::min_element(sizes.begin(), sizes.end());
    const index_t hi = *std::max_element(sizes.begin(), sizes.end());
    EXPECT_LE(hi - lo, 2) << "p=" << p;
  }
}

TEST(GreedyPartition, ProducesConnectedLowCutPartsOnStrip) {
  // On a long strip the greedy growth should essentially recover strips:
  // the edge cut must be within a small factor of the optimal (ny per
  // cut) and far below a random assignment.
  const fem::Mesh mesh = fem::structured_quad(32, 4, 32.0, 4.0);
  const auto adj = partition::element_adjacency(mesh, 2);
  const IndexVector part = partition::partition_greedy(adj, 4);
  const std::int64_t cut = partition::edge_cut(adj, part);
  EXPECT_LE(cut, 4 * 3 * 3);  // <= 3x optimal (3 cuts x 4 edges)
  IndexVector random_part(static_cast<std::size_t>(mesh.num_elems()));
  for (std::size_t e = 0; e < random_part.size(); ++e)
    random_part[e] = static_cast<index_t>(e % 4);
  EXPECT_LT(cut, partition::edge_cut(adj, random_part) / 4);
}

TEST(GreedyPartition, DrivesEddSolveCorrectly) {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const auto adj = partition::element_adjacency(prob.mesh, 2);
  const IndexVector elem_part = partition::partition_greedy(adj, 4);
  const partition::EddPartition part = partition::build_edd_partition(
      prob.mesh, prob.dofs, prob.material, fem::Operator::Stiffness,
      elem_part, 4);
  core::PolySpec poly;
  poly.degree = 7;
  const core::DistSolve res = core::solve_edd(part, prob.load, poly);
  EXPECT_TRUE(res.converged);
}

// ---- Q8 element ----

const fem::Quad8Coords kUnitQ8{0,   0,   1, 0,   1,   1, 0, 1,
                               0.5, 0,   1, 0.5, 0.5, 1, 0, 0.5};

TEST(Quad8, StiffnessSymmetricWithRigidBodyNullspace) {
  fem::Material mat;
  const la::DenseMatrix ke = fem::quad8_stiffness(kUnitQ8, mat);
  EXPECT_LT(ke.max_abs_diff(ke.transposed()), 1e-9);
  Vector tx(16, 0.0), ty(16, 0.0), rot(16, 0.0), f(16);
  for (int i = 0; i < 8; ++i) {
    tx[2 * i] = 1.0;
    ty[2 * i + 1] = 1.0;
    rot[2 * i] = -kUnitQ8[2 * i + 1];
    rot[2 * i + 1] = kUnitQ8[2 * i];
  }
  for (const Vector& u : {tx, ty, rot}) {
    ke.matvec(u, f);
    EXPECT_LT(la::nrm_inf(f), 1e-8);
  }
}

TEST(Quad8, MassTotalEqualsElementMass) {
  fem::Material mat;
  mat.density = 4.0;
  mat.thickness = 0.25;
  const la::DenseMatrix me = fem::quad8_mass(kUnitQ8, mat);
  double total = 0.0;
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) total += me(2 * i, 2 * j);
  EXPECT_NEAR(total, 4.0 * 0.25 * 1.0, 1e-10);
}

TEST(Quad8, LinearFieldReproducedExactly) {
  // Serendipity elements contain the full linear (indeed quadratic)
  // polynomial space: a linear displacement field has zero residual
  // force beyond the constant-strain reaction pattern; equivalently the
  // energy of u = a*x matches the exact constant-strain energy.
  fem::Material mat;
  const la::DenseMatrix ke = fem::quad8_stiffness(kUnitQ8, mat);
  const double a = 0.02;
  Vector u(16, 0.0), f(16);
  for (int i = 0; i < 8; ++i) u[2 * i] = a * kUnitQ8[2 * i];
  ke.matvec(u, f);
  const double energy = 0.5 * la::dot(u, f);
  const double d00 = mat.plane_stress_d()(0, 0);
  EXPECT_NEAR(energy, 0.5 * d00 * a * a * 1.0, 1e-10 * energy);
}

TEST(Quad8, StructuredMeshCounts) {
  const fem::Mesh mesh = fem::structured_quad8(3, 2, 3.0, 2.0);
  // corners 4*3=12, h-mids 3*3=9, v-mids 4*2=8 -> 29 nodes, 6 elements.
  EXPECT_EQ(mesh.num_nodes(), 29);
  EXPECT_EQ(mesh.num_elems(), 6);
  EXPECT_EQ(nodes_per_elem(mesh.type()), 8);
  // Midside of the first element's bottom edge sits at (0.5, 0).
  const auto nodes = mesh.elem_nodes(0);
  EXPECT_DOUBLE_EQ(mesh.x(nodes[4]), 0.5);
  EXPECT_DOUBLE_EQ(mesh.y(nodes[4]), 0.0);
  EXPECT_DOUBLE_EQ(mesh.x(nodes[7]), 0.0);
  EXPECT_DOUBLE_EQ(mesh.y(nodes[7]), 0.5);
}

TEST(Quad8, CantileverSolvesAndBeatsQ4Accuracy) {
  // Same element budget: the Q8 discretization is stiffer-resolved and
  // its tip deflection should be at least as large (closer to the
  // continuum limit) than Q4's on the same coarse mesh.
  fem::CantileverSpec q4spec;
  q4spec.nx = 8;
  q4spec.ny = 2;
  fem::CantileverSpec q8spec = q4spec;
  q8spec.elem_type = fem::ElemType::Quad8;
  const auto q4 = fem::make_cantilever(q4spec);
  const auto q8 = fem::make_cantilever(q8spec);

  auto tip_u = [](const fem::CantileverProblem& prob, index_t nx) {
    Vector x(prob.load.size(), 0.0);
    core::Ilu0Precond ilu(prob.stiffness);
    core::SolveOptions opts;
    opts.tol = 1e-10;
    opts.max_iters = 50000;
    EXPECT_TRUE(
        core::fgmres(prob.stiffness, prob.load, x, ilu, opts).converged);
    const auto tip = prob.mesh.nodes_at_x(static_cast<real_t>(nx));
    real_t u = 0.0;
    for (index_t n : tip) u += x[static_cast<std::size_t>(
        prob.dofs.dof(n, 0))];
    return u / static_cast<real_t>(tip.size());
  };
  const real_t u4 = tip_u(q4, q4spec.nx);
  const real_t u8 = tip_u(q8, q8spec.nx);
  EXPECT_GT(u4, 0.0);
  EXPECT_GE(u8, u4 * 0.99);  // Q8 at least as flexible (less locking)
}

TEST(Quad8, MatrixGraphDenserThanQ4) {
  // §5's non-planarity argument: the Q8 system couples more dofs per
  // row than Q4 on the same grid.
  fem::CantileverSpec q4spec;
  q4spec.nx = 6;
  q4spec.ny = 6;
  fem::CantileverSpec q8spec = q4spec;
  q8spec.elem_type = fem::ElemType::Quad8;
  const auto q4 = fem::make_cantilever(q4spec);
  const auto q8 = fem::make_cantilever(q8spec);
  const double q4_density =
      static_cast<double>(q4.stiffness.nnz()) / q4.stiffness.rows();
  const double q8_density =
      static_cast<double>(q8.stiffness.nnz()) / q8.stiffness.rows();
  EXPECT_GT(q8_density, q4_density);
}

TEST(Quad8, EddSolveAcrossPartitions) {
  fem::CantileverSpec spec;
  spec.nx = 6;
  spec.ny = 3;
  spec.elem_type = fem::ElemType::Quad8;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  Vector x_ref(prob.load.size(), 0.0);
  core::Ilu0Precond ilu(prob.stiffness);
  core::SolveOptions ref_opts;
  ref_opts.tol = 1e-12;
  ref_opts.max_iters = 50000;
  ASSERT_TRUE(core::fgmres(prob.stiffness, prob.load, x_ref, ilu, ref_opts)
                  .converged);

  const partition::EddPartition part = exp::make_edd(prob, 4);
  core::PolySpec poly;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 50000;
  const core::DistSolve res = core::solve_edd(part, prob.load, poly,
                                                    opts);
  ASSERT_TRUE(res.converged);
  const real_t scale = la::nrm_inf(x_ref);
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale);
}

}  // namespace
}  // namespace pfem
