// Newmark time integration tests: SDOF analytic solution, stability,
// effective-system consistency, and the dynamic drivers (sequential and
// EDD) agreeing with each other.
#include <gtest/gtest.h>

#include <cmath>

#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "core/precond.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "timeint/dynamic_driver.hpp"
#include "timeint/newmark.hpp"

namespace pfem::timeint {
namespace {

sparse::CsrMatrix scalar_matrix(real_t v) {
  sparse::CooBuilder coo(1, 1);
  coo.add(0, 0, v);
  return coo.build();
}

TEST(Newmark, EffectiveStiffnessIsKPlusA0M) {
  const sparse::CsrMatrix k = scalar_matrix(10.0);
  const sparse::CsrMatrix m = scalar_matrix(2.0);
  NewmarkOptions opts;
  opts.dt = 0.1;
  const Newmark nm(k, m, opts);
  // a0 = 1/(beta dt^2) = 1/(0.25*0.01) = 400.
  EXPECT_NEAR(nm.a0(), 400.0, 1e-12);
  EXPECT_NEAR(nm.k_eff().at(0, 0), 10.0 + 400.0 * 2.0, 1e-12);
}

TEST(Newmark, SdofFreeVibrationMatchesCosine) {
  // m ü + k u = 0, u(0)=u0, v(0)=0  =>  u(t) = u0 cos(ω t), ω = sqrt(k/m).
  const real_t mval = 2.0, kval = 50.0, u0 = 0.3;
  const real_t omega = std::sqrt(kval / mval);
  const sparse::CsrMatrix k = scalar_matrix(kval);
  const sparse::CsrMatrix m = scalar_matrix(mval);
  NewmarkOptions opts;
  opts.dt = 0.002;  // well below the period 2π/5 ≈ 1.26
  const Newmark nm(k, m, opts);

  Vector u{u0}, v{0.0}, a{-kval * u0 / mval};  // a(0) = -k u0 / m
  Vector f{0.0};
  const int steps = 500;
  for (int s = 0; s < steps; ++s) {
    const Vector rhs = nm.effective_rhs(u, v, a, f);
    Vector u_new{rhs[0] / nm.k_eff().at(0, 0)};
    nm.advance(u_new, u, v, a);
  }
  const real_t t = steps * opts.dt;
  EXPECT_NEAR(u[0], u0 * std::cos(omega * t), 2e-3 * u0);
}

TEST(Newmark, AverageAccelerationConservesEnergy) {
  // β=1/4, γ=1/2 conserves the discrete energy of free vibration.
  const sparse::CsrMatrix k = scalar_matrix(30.0);
  const sparse::CsrMatrix m = scalar_matrix(1.5);
  NewmarkOptions opts;
  opts.dt = 0.01;
  const Newmark nm(k, m, opts);
  Vector u{1.0}, v{0.0}, a{-30.0 / 1.5};
  Vector f{0.0};
  const real_t e0 = 0.5 * 30.0 * u[0] * u[0] + 0.5 * 1.5 * v[0] * v[0];
  for (int s = 0; s < 2000; ++s) {
    const Vector rhs = nm.effective_rhs(u, v, a, f);
    Vector u_new{rhs[0] / nm.k_eff().at(0, 0)};
    nm.advance(u_new, u, v, a);
  }
  const real_t e = 0.5 * 30.0 * u[0] * u[0] + 0.5 * 1.5 * v[0] * v[0];
  EXPECT_NEAR(e, e0, 1e-6 * e0);
}

TEST(Newmark, StaticLimitReachedUnderConstantLoad) {
  // With large damping-free dynamics the displacement oscillates around
  // the static solution u_s = f/k; its time average approaches u_s.
  const sparse::CsrMatrix k = scalar_matrix(40.0);
  const sparse::CsrMatrix m = scalar_matrix(1.0);
  NewmarkOptions opts;
  opts.dt = 0.005;
  const Newmark nm(k, m, opts);
  Vector u{0.0}, v{0.0}, a{8.0};  // a0 = f/m
  Vector f{8.0};
  real_t mean = 0.0;
  const int steps = 4000;
  for (int s = 0; s < steps; ++s) {
    const Vector rhs = nm.effective_rhs(u, v, a, f);
    Vector u_new{rhs[0] / nm.k_eff().at(0, 0)};
    nm.advance(u_new, u, v, a);
    mean += u[0];
  }
  mean /= steps;
  EXPECT_NEAR(mean, 8.0 / 40.0, 0.01 * 8.0 / 40.0);
}

TEST(Newmark, RejectsMismatchedPatterns) {
  const sparse::CsrMatrix k = sparse::CooBuilder(1, 1).build();  // empty
  const sparse::CsrMatrix m = scalar_matrix(1.0);
  EXPECT_THROW(Newmark(k, m, NewmarkOptions{}), Error);
}

fem::CantileverProblem dyn_problem() {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 3;
  return fem::make_cantilever(spec);
}

TEST(DynamicDriver, SequentialRunsAndConverges) {
  const fem::CantileverProblem prob = dyn_problem();
  const sparse::CsrMatrix m = prob.assemble_mass();
  DynamicRunOptions opts;
  opts.steps = 4;
  opts.solve.tol = 1e-8;
  const DynamicRunResult res = run_dynamic_sequential(
      prob.stiffness, m, prob.load, opts,
      [](const sparse::CsrMatrix& a) {
        return std::make_unique<core::GlsPrecond>(
            core::LinearOp::from_csr(a),
            core::GlsPolynomial(core::default_theta_after_scaling(), 7));
      });
  EXPECT_TRUE(res.all_converged);
  ASSERT_EQ(res.iterations_per_step.size(), 4u);
  for (index_t it : res.iterations_per_step) EXPECT_GT(it, 0);
  EXPECT_FALSE(res.first_step_history.empty());
  EXPECT_GT(la::nrm_inf(res.u_final), 0.0);
}

TEST(DynamicDriver, EddMatchesSequentialTrajectory) {
  const fem::CantileverProblem prob = dyn_problem();
  const sparse::CsrMatrix m = prob.assemble_mass();
  DynamicRunOptions opts;
  opts.steps = 3;
  opts.solve.tol = 1e-10;

  const DynamicRunResult seq = run_dynamic_sequential(
      prob.stiffness, m, prob.load, opts,
      [](const sparse::CsrMatrix& a) {
        return std::make_unique<core::Ilu0Precond>(a);
      });
  ASSERT_TRUE(seq.all_converged);

  const partition::EddPartition part = exp::make_edd(prob, 3);
  core::PolySpec poly;
  poly.degree = 7;
  const EddDynamicResult par = run_dynamic_edd(
      prob.mesh, prob.dofs, prob.material, part, prob.load, opts, poly);
  ASSERT_TRUE(par.all_converged);

  const real_t scale = la::nrm_inf(seq.u_final) + 1e-30;
  ASSERT_EQ(par.u_final.size(), seq.u_final.size());
  for (std::size_t i = 0; i < seq.u_final.size(); ++i)
    EXPECT_NEAR(par.u_final[i], seq.u_final[i], 1e-5 * scale) << "dof " << i;
  // Counters accumulated over all steps.
  EXPECT_GT(par.rank_counters_total[0].matvecs, 0u);
}

TEST(DynamicDriver, EffectiveSystemBetterConditionedThanStatic) {
  // The mass term shifts the spectrum away from zero: the dynamic
  // effective system should converge in no more iterations than the
  // static one (Figs. 11 vs 12 show dynamic converging faster).
  const fem::CantileverProblem prob = dyn_problem();
  const sparse::CsrMatrix m = prob.assemble_mass();

  core::SolveOptions sopts;
  sopts.tol = 1e-6;
  const core::ScaledSystem stat =
      core::scale_system(prob.stiffness, prob.load);
  Vector x1(stat.b.size(), 0.0);
  core::GlsPrecond p1(core::LinearOp::from_csr(stat.a),
                      core::GlsPolynomial(core::default_theta_after_scaling(),
                                          7));
  const core::SolveReport r_static =
      core::fgmres(stat.a, stat.b, x1, p1, sopts);

  NewmarkOptions nopts;
  nopts.dt = 0.01;
  const Newmark nm(prob.stiffness, m, nopts);
  const core::ScaledSystem dyn = core::scale_system(nm.k_eff(), prob.load);
  Vector x2(dyn.b.size(), 0.0);
  core::GlsPrecond p2(core::LinearOp::from_csr(dyn.a),
                      core::GlsPolynomial(core::default_theta_after_scaling(),
                                          7));
  const core::SolveReport r_dyn = core::fgmres(dyn.a, dyn.b, x2, p2, sopts);

  ASSERT_TRUE(r_static.converged && r_dyn.converged);
  EXPECT_LE(r_dyn.iterations, r_static.iterations);
}

}  // namespace
}  // namespace pfem::timeint
