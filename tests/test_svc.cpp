// Tests for the warm-path solve stack: PolySpec validation, setup
// accounting, the fused multi-RHS batch solver (core/edd_batch), and
// the solve service (svc) — caching, batching, deadlines, backpressure,
// cancellation, shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "core/edd_batch.hpp"
#include "core/edd_kernels.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "svc/job_queue.hpp"
#include "svc/operator_cache.hpp"
#include "svc/service.hpp"

namespace pfem {
namespace {

constexpr int kRanks = 4;

struct Scene {
  fem::CantileverProblem prob;
  std::shared_ptr<const partition::EddPartition> part;
  core::PolySpec poly;
};

Scene make_scene(int nx = 16, int ny = 6) {
  fem::CantileverSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  fem::CantileverProblem prob = fem::make_cantilever(spec);
  auto part = std::make_shared<const partition::EddPartition>(
      exp::make_edd(prob, kRanks));
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 5;
  return Scene{std::move(prob), std::move(part), poly};
}

/// n RHS with genuinely different directions, so per-RHS convergence
/// (and the fused solver's done-set dropout) actually diverges.
std::vector<Vector> varied_rhs(const Scene& s, int n) {
  std::vector<Vector> rhs;
  for (int i = 0; i < n; ++i) {
    Vector f = s.prob.load;
    for (std::size_t k = 0; k < f.size(); ++k)
      f[k] = f[k] * (1.0 + 0.2 * i) +
             0.01 * static_cast<real_t>((k * (i + 1)) % 7);
    rhs.push_back(std::move(f));
  }
  return rhs;
}

double rel_err(const Vector& a, const Vector& b) {
  real_t num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num / den);
}

// ---------------------------------------------------------------- PolySpec

TEST(PolySpecValidation, RejectsNonPositiveDegree) {
  core::PolySpec p;
  p.kind = core::PolyKind::Gls;
  p.degree = 0;
  EXPECT_THROW(core::validate_poly_spec(p), Error);
  p.kind = core::PolyKind::Neumann;
  p.degree = -3;
  EXPECT_THROW(core::validate_poly_spec(p), Error);
  p.kind = core::PolyKind::Chebyshev;
  p.degree = 0;
  EXPECT_THROW(core::validate_poly_spec(p), Error);
}

TEST(PolySpecValidation, NoneIgnoresDegree) {
  core::PolySpec p;
  p.kind = core::PolyKind::None;
  p.degree = -1;
  EXPECT_NO_THROW(core::validate_poly_spec(p));
}

TEST(PolySpecValidation, ChebyshevNeedsOneStrictlyPositiveInterval) {
  core::PolySpec p;
  p.kind = core::PolyKind::Chebyshev;
  p.degree = 5;
  p.theta = {};
  EXPECT_THROW(core::validate_poly_spec(p), Error);
  p.theta = {{0.1, 0.5}, {0.7, 1.9}};  // multi-interval has no Chebyshev form
  EXPECT_THROW(core::validate_poly_spec(p), Error);
  p.theta = {{0.0, 1.9}};  // 0 included
  EXPECT_THROW(core::validate_poly_spec(p), Error);
  p.theta = {{0.5, 0.1}};  // not an interval
  EXPECT_THROW(core::validate_poly_spec(p), Error);
  p.theta = {{0.1, 1.9}};
  EXPECT_NO_THROW(core::validate_poly_spec(p));
}

TEST(PolySpecValidation, SolveEntryRejectsBadSpecWithClearError) {
  const Scene s = make_scene(8, 4);
  core::PolySpec bad;
  bad.kind = core::PolyKind::Chebyshev;
  bad.degree = 4;
  bad.theta = {{0.1, 0.5}, {0.7, 1.9}};
  try {
    (void)core::solve_edd(*s.part, s.prob.load, bad);
    FAIL() << "expected pfem::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("Chebyshev"), std::string::npos);
  }
}

// ------------------------------------------------------------ setup split

TEST(SetupCounters, CoverPreconditionerBuildNotJustScaling) {
  const Scene s = make_scene(8, 4);
  core::PolySpec none;
  none.kind = core::PolyKind::None;
  const auto r_none = core::solve_edd(*s.part, s.prob.load, none);
  const auto r_gls = core::solve_edd(*s.part, s.prob.load, s.poly);
  // The GLS run's setup slice must include the Stieltjes basis build on
  // top of the (identical) scaling work.
  EXPECT_GT(r_gls.setup_counters[0].flops, r_none.setup_counters[0].flops);
  EXPECT_GT(r_gls.setup_counters[0].total_seconds, 0.0);
}

TEST(BuildOperator, ProducesScaledMatricesAndPrebuiltPolynomial) {
  const Scene s = make_scene(8, 4);
  par::Team team(kRanks);
  const auto op = core::build_edd_operator(team, *s.part, s.poly);
  ASSERT_EQ(op.a.size(), static_cast<std::size_t>(kRanks));
  ASSERT_EQ(op.d.size(), static_cast<std::size_t>(kRanks));
  EXPECT_NE(op.gls, nullptr);
  EXPECT_EQ(op.cheb, nullptr);
  EXPECT_GT(op.setup_seconds, 0.0);
  ASSERT_EQ(op.setup_counters.size(), static_cast<std::size_t>(kRanks));
  // Each rank did the scaling exchange and was charged the poly build.
  for (const auto& c : op.setup_counters) {
    EXPECT_EQ(c.neighbor_exchanges, 1u);
    EXPECT_GT(c.flops, 0u);
  }
}

// ------------------------------------------------------------- batch solve

TEST(BatchSolve, MatchesSequentialSolvePerRhs) {
  const Scene s = make_scene();
  const auto rhs = varied_rhs(s, 3);
  par::Team team(kRanks);
  const auto op = core::build_edd_operator(team, *s.part, s.poly);
  const auto batch = core::solve_edd_batch(team, *s.part, op, rhs);
  ASSERT_EQ(batch.x.size(), 3u);
  for (int b = 0; b < 3; ++b) {
    const auto single = core::solve_edd(*s.part, rhs[static_cast<std::size_t>(b)], s.poly);
    ASSERT_TRUE(single.converged);
    ASSERT_TRUE(batch.items[static_cast<std::size_t>(b)].converged);
    EXPECT_LE(batch.items[static_cast<std::size_t>(b)].final_relres, 1e-6);
    EXPECT_LT(rel_err(batch.x[static_cast<std::size_t>(b)], single.x), 1e-8);
  }
}

TEST(BatchSolve, FusedExchangeCountDoesNotScaleWithBatchSize) {
  const Scene s = make_scene();
  par::Team team(kRanks);
  const auto op = core::build_edd_operator(team, *s.part, s.poly);
  // Scalar multiples of one RHS converge identically, so iteration
  // counts match and the exchange counts are directly comparable.
  std::vector<Vector> one{s.prob.load};
  std::vector<Vector> four;
  for (int i = 0; i < 4; ++i) {
    Vector f = s.prob.load;
    for (real_t& v : f) v *= static_cast<real_t>(i + 1);
    four.push_back(std::move(f));
  }
  const auto r1 = core::solve_edd_batch(team, *s.part, op, one);
  const auto r4 = core::solve_edd_batch(team, *s.part, op, four);
  ASSERT_EQ(r1.items[0].iterations, r4.items[0].iterations);
  for (int rank = 0; rank < kRanks; ++rank) {
    const auto& c1 = r1.rank_counters[static_cast<std::size_t>(rank)];
    const auto& c4 = r4.rank_counters[static_cast<std::size_t>(rank)];
    // One fused message round per exchange regardless of batch width.
    EXPECT_EQ(c4.neighbor_exchanges, c1.neighbor_exchanges);
    EXPECT_EQ(c4.global_reductions, c1.global_reductions);
    // ...while the arithmetic genuinely scales with the batch.
    EXPECT_GT(c4.flops, 3 * c1.flops);
  }
}

TEST(BatchSolve, ZeroRhsIsExactImmediately) {
  const Scene s = make_scene(8, 4);
  par::Team team(kRanks);
  const auto op = core::build_edd_operator(team, *s.part, s.poly);
  std::vector<Vector> rhs{Vector(s.prob.load.size(), 0.0), s.prob.load};
  const auto r = core::solve_edd_batch(team, *s.part, op, rhs);
  EXPECT_TRUE(r.items[0].converged);
  EXPECT_EQ(r.items[0].iterations, 0);
  for (const real_t v : r.x[0]) EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(r.items[1].converged);
  EXPECT_GT(r.items[1].iterations, 0);
}

TEST(BatchSolve, HonorsLocalMatrixOverride) {
  const Scene s = make_scene(8, 4);
  par::Team team(kRanks);
  auto stiffened = std::vector<sparse::CsrMatrix>();
  for (const auto& sub : s.part->subs) {
    sparse::CsrMatrix k = sub.k_loc;
    for (real_t& v : k.values()) v *= 4.0;
    stiffened.push_back(std::move(k));
  }
  const auto op = core::build_edd_operator(team, *s.part, s.poly);
  const auto op4 = core::build_edd_operator(team, *s.part, s.poly, &stiffened);
  std::vector<Vector> rhs{s.prob.load};
  const auto r = core::solve_edd_batch(team, *s.part, op, rhs);
  const auto r4 = core::solve_edd_batch(team, *s.part, op4, rhs);
  ASSERT_TRUE(r.items[0].converged && r4.items[0].converged);
  // (4K) x = f  =>  x = (K^-1 f) / 4.
  Vector quarter = r.x[0];
  for (real_t& v : quarter) v /= 4.0;
  EXPECT_LT(rel_err(r4.x[0], quarter), 1e-6);
}

TEST(BatchSolve, DeflatedOperatorMatchesUndeflatedSolution) {
  const Scene s = make_scene();
  par::Team team(kRanks);
  core::DeflationOptions defl;
  defl.enabled = true;
  const auto plain = core::build_edd_operator(team, *s.part, s.poly);
  const auto defd =
      core::build_edd_operator(team, *s.part, s.poly, nullptr, nullptr, {},
                               defl);
  ASSERT_NE(defd.coarse, nullptr);
  EXPECT_EQ(plain.coarse, nullptr);
  const auto rhs = varied_rhs(s, 3);
  const auto r0 = core::solve_edd_batch(team, *s.part, plain, rhs);
  const auto rd = core::solve_edd_batch(team, *s.part, defd, rhs);
  for (std::size_t b = 0; b < rhs.size(); ++b) {
    ASSERT_TRUE(r0.items[b].converged);
    ASSERT_TRUE(rd.items[b].converged);
    EXPECT_LT(rel_err(rd.x[b], r0.x[b]), 1e-6);
  }
  for (int rank = 0; rank < kRanks; ++rank) {
    EXPECT_GT(rd.rank_counters[static_cast<std::size_t>(rank)].coarse_solves,
              0u);
    EXPECT_EQ(r0.rank_counters[static_cast<std::size_t>(rank)].coarse_solves,
              0u);
  }
}

TEST(BatchSolve, DeflatedBatchIsBitwiseDeterministic) {
  const Scene s = make_scene();
  par::Team team(kRanks);
  core::DeflationOptions defl;
  defl.enabled = true;
  const auto op =
      core::build_edd_operator(team, *s.part, s.poly, nullptr, nullptr, {},
                               defl);
  const auto rhs = varied_rhs(s, 2);
  const auto a = core::solve_edd_batch(team, *s.part, op, rhs);
  const auto b = core::solve_edd_batch(team, *s.part, op, rhs);
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    ASSERT_TRUE(a.items[i].converged && b.items[i].converged);
    EXPECT_EQ(a.items[i].iterations, b.items[i].iterations);
    for (std::size_t k = 0; k < a.x[i].size(); ++k)
      EXPECT_EQ(a.x[i][k], b.x[i][k]) << "rhs " << i << " dof " << k;
  }
}

TEST(BatchSolve, ReportsTrivialRhsAndHonestRestarts) {
  const Scene s = make_scene(8, 4);
  par::Team team(kRanks);
  const auto op = core::build_edd_operator(team, *s.part, s.poly);
  std::vector<Vector> rhs{Vector(s.prob.load.size(), 0.0), s.prob.load};
  const auto r = core::solve_edd_batch(team, *s.part, op, rhs);
  EXPECT_TRUE(r.items[0].trivial_rhs);
  EXPECT_TRUE(r.items[0].converged);
  EXPECT_EQ(r.items[0].restarts, 0);
  EXPECT_FALSE(r.items[1].trivial_rhs);
  // The real solve finished well inside the default restart length: a
  // first-cycle convergence reports zero RE-starts.
  ASSERT_TRUE(r.items[1].converged);
  EXPECT_EQ(r.items[1].restarts, 0);
  EXPECT_FALSE(r.items[1].breakdown);
}

// ---------------------------------------------------------------- JobQueue

TEST(JobQueue, AdmissionBoundAndPriorityOrder) {
  svc::JobQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1, svc::Priority::Normal));
  EXPECT_TRUE(q.try_push(2, svc::Priority::High));
  EXPECT_FALSE(q.try_push(3, svc::Priority::High));  // full: shed
  EXPECT_EQ(q.pop().value(), 2);                     // high first
  EXPECT_EQ(q.pop().value(), 1);
  q.close();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, DrainMatchingRemovesAcrossPriorities) {
  svc::JobQueue<int> q(8);
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(q.try_push(int(i), i % 2 ? svc::Priority::High
                                         : svc::Priority::Normal));
  const auto evens = q.drain_matching([](int v) { return v % 2 == 0; }, 2);
  EXPECT_EQ(evens.size(), 2u);
  EXPECT_EQ(q.size(), 4u);
  const auto gone = q.remove_if([](int v) { return v == 5; });
  ASSERT_TRUE(gone.has_value());
  EXPECT_EQ(*gone, 5);
  EXPECT_FALSE(q.remove_if([](int v) { return v == 99; }).has_value());
}

TEST(JobQueue, FifoWithinEachPriorityClass) {
  svc::JobQueue<int> q(8);
  ASSERT_TRUE(q.try_push(10, svc::Priority::Normal));
  ASSERT_TRUE(q.try_push(90, svc::Priority::High));
  ASSERT_TRUE(q.try_push(11, svc::Priority::Normal));
  ASSERT_TRUE(q.try_push(91, svc::Priority::High));
  // High overtakes Normal, but admission order is preserved inside each
  // class — the service's fairness contract.
  EXPECT_EQ(q.pop().value(), 90);
  EXPECT_EQ(q.pop().value(), 91);
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 11);
}

TEST(JobQueue, RejectedPushLeavesCapacityAccountingIntact) {
  svc::JobQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1, svc::Priority::Normal));
  EXPECT_FALSE(q.try_push(2, svc::Priority::Normal));
  EXPECT_FALSE(q.try_push(3, svc::Priority::High));  // cap spans classes
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(4, svc::Priority::High));  // slot freed
  EXPECT_EQ(q.pop().value(), 4);
}

TEST(JobQueue, CloseDrainsQueuedJobsThenReportsClosed) {
  // Drain-style shutdown: close() refuses new work but queued jobs stay
  // poppable until empty — then pop() reports closed with nullopt.
  svc::JobQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1, svc::Priority::Normal));
  ASSERT_TRUE(q.try_push(2, svc::Priority::High));
  q.close();
  EXPECT_FALSE(q.try_push(3, svc::Priority::High));
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(JobQueue, DrainAllEmptiesBothClassesInPriorityOrder) {
  svc::JobQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1, svc::Priority::Normal));
  ASSERT_TRUE(q.try_push(2, svc::Priority::High));
  ASSERT_TRUE(q.try_push(3, svc::Priority::Normal));
  const auto all = q.drain_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 2);  // high first, then normals FIFO
  EXPECT_EQ(all[1], 1);
  EXPECT_EQ(all[2], 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(JobQueue, CloseWakesABlockedConsumer) {
  svc::JobQueue<int> q(4);
  std::thread consumer([&] {
    const auto got = q.pop();  // blocks until close()
    EXPECT_FALSE(got.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

// ----------------------------------------------------------- OperatorCache

TEST(OperatorCache, LruEvictsBuiltStateButKeepsRecipe) {
  const Scene s = make_scene(8, 4);
  par::Team team(kRanks);
  svc::OperatorCache cache(/*capacity=*/1);
  cache.register_operator("a", s.part, s.poly);
  cache.register_operator("b", s.part, s.poly);
  auto [sa, hit_a] = cache.get_or_build("a", team);
  EXPECT_FALSE(hit_a);
  auto [sb, hit_b] = cache.get_or_build("b", team);  // evicts a
  EXPECT_FALSE(hit_b);
  EXPECT_EQ(cache.built_count(), 1u);
  auto [sa2, hit_a2] = cache.get_or_build("a", team);  // rebuild
  EXPECT_FALSE(hit_a2);
  auto [sa3, hit_a3] = cache.get_or_build("a", team);
  EXPECT_TRUE(hit_a3);
  EXPECT_TRUE(cache.contains("b"));  // recipe survives eviction
  // Evicted-but-handed-out state stays valid through the shared_ptr.
  EXPECT_EQ(sb->a.size(), static_cast<std::size_t>(kRanks));
}

// ------------------------------------------------------------------ Service

svc::SolveRequest make_request(const Scene& s, const std::string& key,
                               real_t scale = 1.0) {
  svc::SolveRequest req;
  req.operator_key = key;
  Vector f = s.prob.load;
  for (real_t& v : f) v *= scale;
  req.rhs.push_back(std::move(f));
  return req;
}

TEST(Service, SolvesAndCachesOperator) {
  const Scene s = make_scene();
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);

  auto first = service.submit(make_request(s, "op")).outcome.get();
  ASSERT_TRUE(svc::ok(first));
  EXPECT_FALSE(std::get<svc::Completed>(first).cache_hit);
  EXPECT_TRUE(std::get<svc::Completed>(first).result.items[0].converged);

  auto second = service.submit(make_request(s, "op", 2.0)).outcome.get();
  ASSERT_TRUE(svc::ok(second));
  EXPECT_TRUE(std::get<svc::Completed>(second).cache_hit);

  const auto st = service.stats();
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_GE(st.cache_hits, 1u);
  EXPECT_GT(service.latency().count, 0u);
  service.shutdown();
}

TEST(Service, EbeKernelFormatSolvesThroughServiceLikeCsr) {
  // ServiceConfig.kernels reaches the operator cache, so a service
  // configured with the matrix-free Ebe format must converge with the
  // same iteration count as a Csr-configured one (the format-neutral
  // contract; solutions differ only by the element sweep's
  // reassociation).
  const Scene s = make_scene();
  index_t csr_iters = 0;
  {
    svc::ServiceConfig cfg;
    cfg.nranks = kRanks;
    cfg.kernels.format = core::KernelOptions::Format::Csr;
    svc::Service service(cfg);
    service.register_operator("op", s.part, s.poly);
    auto out = service.submit(make_request(s, "op")).outcome.get();
    ASSERT_TRUE(svc::ok(out));
    const auto& item = std::get<svc::Completed>(out).result.items[0];
    ASSERT_TRUE(item.converged);
    csr_iters = item.iterations;
    service.shutdown();
  }
  {
    svc::ServiceConfig cfg;
    cfg.nranks = kRanks;
    cfg.kernels.format = core::KernelOptions::Format::Ebe;
    cfg.kernels.overlap = true;
    svc::Service service(cfg);
    service.register_operator("op", s.part, s.poly);
    auto out = service.submit(make_request(s, "op")).outcome.get();
    ASSERT_TRUE(svc::ok(out));
    const auto& item = std::get<svc::Completed>(out).result.items[0];
    EXPECT_TRUE(item.converged);
    EXPECT_EQ(item.iterations, csr_iters);
    service.shutdown();
  }
}

TEST(Service, DeflationConfigBakesCoarseStateIntoCachedOperator) {
  // cfg.deflation is operator state: the coarse factorization is built
  // once, cached with the scaled matrices, and reused on a cache hit —
  // every deflated solve stamps coarse_solves on its counters.
  const Scene s = make_scene();
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  cfg.deflation.enabled = true;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);

  auto first = service.submit(make_request(s, "op")).outcome.get();
  ASSERT_TRUE(svc::ok(first));
  const auto& c1 = std::get<svc::Completed>(first);
  EXPECT_FALSE(c1.cache_hit);
  ASSERT_TRUE(c1.result.items[0].converged);
  for (const auto& c : c1.result.rank_counters)
    EXPECT_GT(c.coarse_solves, 0u);

  auto second = service.submit(make_request(s, "op", 2.0)).outcome.get();
  ASSERT_TRUE(svc::ok(second));
  const auto& c2 = std::get<svc::Completed>(second);
  EXPECT_TRUE(c2.cache_hit);  // coarse factor reused, not rebuilt
  ASSERT_TRUE(c2.result.items[0].converged);
  for (const auto& c : c2.result.rank_counters)
    EXPECT_GT(c.coarse_solves, 0u);
  service.shutdown();
}

TEST(Service, SurfacesTrivialRhsFlagThroughOutcome) {
  const Scene s = make_scene(8, 4);
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);
  svc::SolveRequest req;
  req.operator_key = "op";
  req.rhs.push_back(Vector(s.prob.load.size(), 0.0));
  auto out = service.submit(std::move(req)).outcome.get();
  ASSERT_TRUE(svc::ok(out));
  const auto& item = std::get<svc::Completed>(out).result.items[0];
  EXPECT_TRUE(item.trivial_rhs);
  EXPECT_TRUE(item.converged);
  EXPECT_EQ(item.iterations, 0);
  service.shutdown();
}

TEST(Service, PausedBurstCoalescesIntoOneFusedBatch) {
  const Scene s = make_scene();
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);
  ASSERT_TRUE(svc::ok(service.submit(make_request(s, "op")).outcome.get()));
  const auto warm = service.stats();

  service.set_paused(true);
  std::vector<std::future<svc::Outcome>> pending;
  for (int i = 0; i < 4; ++i)
    pending.push_back(
        service.submit(make_request(s, "op", 1.0 + i)).outcome);
  service.set_paused(false);
  for (auto& f : pending) {
    const auto o = f.get();
    ASSERT_TRUE(svc::ok(o));
    EXPECT_TRUE(std::get<svc::Completed>(o).cache_hit);
  }
  const auto st = service.stats();
  EXPECT_EQ(st.batches - warm.batches, 1u);  // 4 requests, ONE fused solve
  EXPECT_EQ(st.rhs_solved - warm.rhs_solved, 4u);
  service.shutdown();
}

TEST(Service, RejectsUnknownOperatorAndBadRequests) {
  const Scene s = make_scene(8, 4);
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);

  auto unknown = service.submit(make_request(s, "nope")).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(unknown));
  EXPECT_EQ(std::get<svc::Rejected>(unknown).reason,
            svc::RejectReason::UnknownOperator);

  svc::SolveRequest empty;
  empty.operator_key = "op";
  auto bad = service.submit(std::move(empty)).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(bad));
  EXPECT_EQ(std::get<svc::Rejected>(bad).reason,
            svc::RejectReason::BadRequest);

  svc::SolveRequest short_rhs;
  short_rhs.operator_key = "op";
  short_rhs.rhs.push_back(Vector(3, 1.0));
  auto wrong = service.submit(std::move(short_rhs)).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(wrong));
  EXPECT_EQ(std::get<svc::Rejected>(wrong).reason,
            svc::RejectReason::BadRequest);
  service.shutdown();
}

TEST(Service, DeadlineRejectedAtAdmissionAndAtDispatch) {
  const Scene s = make_scene();
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);

  // Admission: already expired -> immediate typed rejection, no hang.
  auto expired = make_request(s, "op");
  expired.deadline = svc::Clock::now() - std::chrono::milliseconds(1);
  auto r1 = service.submit(std::move(expired)).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(r1));
  EXPECT_EQ(std::get<svc::Rejected>(r1).reason,
            svc::RejectReason::DeadlineExceeded);

  // Dispatch: expires while held in the paused queue.
  service.set_paused(true);
  auto queued = make_request(s, "op");
  queued.deadline = svc::Clock::now() + std::chrono::milliseconds(20);
  auto fut = service.submit(std::move(queued)).outcome;
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  service.set_paused(false);
  auto r2 = fut.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(r2));
  EXPECT_EQ(std::get<svc::Rejected>(r2).reason,
            svc::RejectReason::DeadlineExceeded);

  const auto st = service.stats();
  EXPECT_EQ(st.rejected_deadline, 2u);
  service.shutdown();
}

TEST(Service, WatchdogCancelsMidSolveOnDeadline) {
  // A solve that cannot converge (tol below attainable) runs until the
  // deadline watchdog cancels the team; the client gets a typed
  // rejection, the service survives and completes the next request.
  const Scene s = make_scene(24, 8);
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);

  auto hopeless = make_request(s, "op");
  hopeless.opts.tol = 1e-300;  // unattainable
  hopeless.opts.max_iters = 100000000;
  hopeless.deadline = svc::Clock::now() + std::chrono::milliseconds(50);
  const auto t0 = svc::Clock::now();
  auto outcome = service.submit(std::move(hopeless)).outcome.get();
  const auto waited = svc::Clock::now() - t0;
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(outcome));
  EXPECT_EQ(std::get<svc::Rejected>(outcome).reason,
            svc::RejectReason::DeadlineExceeded);
  EXPECT_LT(std::chrono::duration<double>(waited).count(), 10.0);

  auto after = service.submit(make_request(s, "op")).outcome.get();
  ASSERT_TRUE(svc::ok(after));
  service.shutdown();
}

TEST(Service, QueueFullShedsTypedRejection) {
  const Scene s = make_scene(8, 4);
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  cfg.queue_capacity = 2;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);
  service.set_paused(true);

  // First job: wait until the (paused) scheduler holds it, so the queue
  // is demonstrably empty before the fill — makes the overflow point
  // deterministic rather than racing the scheduler's pop.
  std::vector<std::future<svc::Outcome>> pending;
  pending.push_back(service.submit(make_request(s, "op")).outcome);
  for (int spin = 0; service.queue_depth() > 0 && spin < 2000; ++spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(service.queue_depth(), 0u);

  // Fill the queue to capacity, then one more: it must be refused.
  for (int i = 0; i < 2; ++i)
    pending.push_back(service.submit(make_request(s, "op")).outcome);
  auto overflow = service.submit(make_request(s, "op"));
  auto shed = overflow.outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(shed));
  EXPECT_EQ(std::get<svc::Rejected>(shed).reason,
            svc::RejectReason::QueueFull);

  service.set_paused(false);
  for (auto& f : pending) EXPECT_TRUE(svc::ok(f.get()));
  EXPECT_GE(service.stats().rejected_queue_full, 1u);
  service.shutdown();
}

TEST(Service, CancelQueuedAndRunningJobs) {
  const Scene s = make_scene();
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);

  // Queued: pause, submit two, cancel the second while it waits.
  service.set_paused(true);
  auto first = service.submit(make_request(s, "op"));
  auto second = service.submit(make_request(s, "op"));
  EXPECT_TRUE(service.cancel(second.id));
  service.set_paused(false);
  EXPECT_TRUE(svc::ok(first.outcome.get()));
  EXPECT_TRUE(std::holds_alternative<svc::Cancelled>(second.outcome.get()));

  // Running: an unconvergeable solve is cancelled mid-flight.
  auto hopeless = make_request(s, "op");
  hopeless.opts.tol = 1e-300;
  hopeless.opts.max_iters = 100000000;
  auto running = service.submit(std::move(hopeless));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(service.cancel(running.id));
  EXPECT_TRUE(
      std::holds_alternative<svc::Cancelled>(running.outcome.get()));
  EXPECT_FALSE(service.cancel(running.id));  // already finished

  // The team survives the abort and keeps serving.
  EXPECT_TRUE(svc::ok(service.submit(make_request(s, "op")).outcome.get()));
  service.shutdown();
}

TEST(Service, UpdateOperatorInvalidatesCacheAndChangesSolution) {
  const Scene s = make_scene(8, 4);
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);

  auto base = service.submit(make_request(s, "op")).outcome.get();
  ASSERT_TRUE(svc::ok(base));

  auto stiffened = std::make_shared<std::vector<sparse::CsrMatrix>>();
  for (const auto& sub : s.part->subs) {
    sparse::CsrMatrix k = sub.k_loc;
    for (real_t& v : k.values()) v *= 4.0;
    stiffened->push_back(std::move(k));
  }
  service.update_operator("op", stiffened);
  auto scaled = service.submit(make_request(s, "op")).outcome.get();
  ASSERT_TRUE(svc::ok(scaled));
  EXPECT_FALSE(std::get<svc::Completed>(scaled).cache_hit);  // rebuilt
  EXPECT_EQ(service.stats().cache_misses, 2u);

  Vector quarter = std::get<svc::Completed>(base).result.x[0];
  for (real_t& v : quarter) v /= 4.0;
  EXPECT_LT(rel_err(std::get<svc::Completed>(scaled).result.x[0], quarter),
            1e-6);
  service.shutdown();
}

TEST(Service, ShutdownDrainsThenRefusesNewWork) {
  const Scene s = make_scene();
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", s.part, s.poly);

  std::vector<std::future<svc::Outcome>> pending;
  for (int i = 0; i < 3; ++i)
    pending.push_back(service.submit(make_request(s, "op", 1.0 + i)).outcome);
  service.shutdown(/*drain=*/true);
  for (auto& f : pending) EXPECT_TRUE(svc::ok(f.get()));

  auto refused = service.submit(make_request(s, "op")).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(refused));
  EXPECT_EQ(std::get<svc::Rejected>(refused).reason,
            svc::RejectReason::ShuttingDown);
}

// ---------------------------------------------------------------- sessions

/// Per-rank matrix copies with the diagonal scaled by (1 + drift): a
/// deterministic SPD-preserving drifting operator for session streams.
std::shared_ptr<const std::vector<sparse::CsrMatrix>> drifted(
    const Scene& s, real_t drift) {
  auto mats = std::make_shared<std::vector<sparse::CsrMatrix>>();
  for (const auto& sub : s.part->subs) {
    sparse::CsrMatrix a = sub.k_loc;
    const auto rp = a.row_ptr();
    const auto ci = a.col_idx();
    auto vals = a.values();
    for (index_t i = 0; i < a.rows(); ++i)
      for (index_t k = rp[static_cast<std::size_t>(i)];
           k < rp[static_cast<std::size_t>(i) + 1]; ++k)
        if (ci[static_cast<std::size_t>(k)] == i)
          vals[static_cast<std::size_t>(k)] *= 1.0 + drift;
    mats->push_back(std::move(a));
  }
  return mats;
}

TEST(Session, WarmStartReplaysBitIdenticalAndReducesIterations) {
  const Scene s = make_scene();

  struct Stream {
    std::vector<int> cold, warm;
    std::vector<Vector> x;  ///< warm-lane solutions, per step
    std::uint64_t warm_rhs = 0;
  };
  // One drifting trace: per step, drift the operator + RHS and solve
  // cold (session-less) then warm (session).
  const auto run_stream = [&]() {
    svc::ServiceConfig cfg;
    cfg.nranks = kRanks;
    svc::Service service(cfg);
    service.register_operator("op", s.part, s.poly);
    const svc::SessionId sid = service.open_session("op");
    EXPECT_NE(sid, svc::kNoSession);
    Stream out;
    for (int t = 0; t < 4; ++t) {
      if (t > 0) service.update_operator("op", drifted(s, 0.01 * t));
      for (const bool warm : {false, true}) {
        svc::SolveRequest req = make_request(s, "op", 1.0 + 0.02 * t);
        req.session = warm ? sid : svc::kNoSession;
        const svc::Outcome o = service.submit(std::move(req)).outcome.get();
        const auto* c = std::get_if<svc::Completed>(&o);
        EXPECT_NE(c, nullptr);
        if (c == nullptr) return out;  // ASSERT can't cross the lambda
        (warm ? out.warm : out.cold)
            .push_back(c->result.items.at(0).iterations);
        if (warm) out.x.push_back(c->result.x.at(0));
      }
    }
    out.warm_rhs = service.stats().warm_rhs;
    service.shutdown(/*drain=*/true);
    return out;
  };

  const Stream a = run_stream();
  const Stream b = run_stream();

  // Same session, same trace => same iteration counts AND bitwise-equal
  // solutions, run to run (the replay contract).
  EXPECT_EQ(a.cold, b.cold);
  EXPECT_EQ(a.warm, b.warm);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);

  // Step 0's warm solve has no state yet; every later one does.
  EXPECT_EQ(a.warm_rhs, 3u);
  int cold_total = 0, warm_total = 0;
  for (std::size_t i = 1; i < a.cold.size(); ++i) {
    cold_total += a.cold[i];
    warm_total += a.warm[i];
  }
  EXPECT_LT(warm_total, cold_total);
}

TEST(Session, AdmissionRejectsUnknownAndMismatchedSessions) {
  const Scene s = make_scene();
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("a", s.part, s.poly);
  service.register_operator("b", s.part, s.poly);

  EXPECT_EQ(service.open_session("no-such-operator"), svc::kNoSession);
  const svc::SessionId sid = service.open_session("a");
  ASSERT_NE(sid, svc::kNoSession);

  svc::SolveRequest unknown = make_request(s, "a");
  unknown.session = sid + 999;
  const svc::Outcome o1 = service.submit(std::move(unknown)).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(o1));
  EXPECT_EQ(std::get<svc::Rejected>(o1).reason,
            svc::RejectReason::UnknownSession);

  svc::SolveRequest mismatched = make_request(s, "b");
  mismatched.session = sid;  // pinned to "a"
  const svc::Outcome o2 = service.submit(std::move(mismatched)).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Rejected>(o2));
  EXPECT_EQ(std::get<svc::Rejected>(o2).reason, svc::RejectReason::BadRequest);

  EXPECT_TRUE(service.close_session(sid));
  EXPECT_FALSE(service.close_session(sid));  // already closed
  service.shutdown(/*drain=*/true);
}

TEST(Session, OperatorCacheEvictionDropsStateButKeepsHandle) {
  const Scene s = make_scene();
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  cfg.cache_capacity = 1;  // building any second operator evicts the first
  svc::Service service(cfg);
  service.register_operator("a", s.part, s.poly);
  service.register_operator("b", s.part, s.poly);
  const svc::SessionId sid = service.open_session("a");
  ASSERT_NE(sid, svc::kNoSession);

  const auto solve = [&](const std::string& key, svc::SessionId id) {
    svc::SolveRequest req = make_request(s, key);
    req.session = id;
    const svc::Outcome o = service.submit(std::move(req)).outcome.get();
    EXPECT_TRUE(svc::ok(o));
    return svc::ok(o)
               ? std::get<svc::Completed>(o).result.items.at(0).iterations
               : -1;
  };

  solve("a", sid);  // builds 'a' and deposits the session's first state
  // Warm replay of the identical RHS starts at the solution: ~free.
  const int warm = solve("a", sid);
  EXPECT_EQ(service.stats().warm_rhs, 1u);
  EXPECT_EQ(service.stats().sessions_evicted, 0u);

  // Building 'b' LRU-evicts 'a' — and with it the session's state.
  solve("b", svc::kNoSession);
  EXPECT_EQ(service.stats().sessions_evicted, 1u);

  // The handle survives eviction; the next solve just runs cold again.
  const int after = solve("a", sid);
  EXPECT_EQ(service.stats().warm_rhs, 1u);  // no warm lane this time
  EXPECT_GT(after, warm);
  EXPECT_TRUE(service.close_session(sid));
  service.shutdown(/*drain=*/true);
}

// ------------------------------------------------- degenerate operators

/// Local-matrix override with every coefficient of one global dof's row
/// and column zeroed on every rank: norm-1 scaling meets an all-zero
/// row at build time and must throw the typed BadOperatorError.
std::shared_ptr<const std::vector<sparse::CsrMatrix>> zeroed_dof_override(
    const Scene& s, index_t dead_dof) {
  auto mats = std::make_shared<std::vector<sparse::CsrMatrix>>();
  for (const auto& sub : s.part->subs) {
    sparse::CsrMatrix k = sub.k_loc;
    const auto rp = k.row_ptr();
    const auto ci = k.col_idx();
    const auto vals = k.values();  // mutable span
    for (index_t i = 0; i < k.rows(); ++i) {
      const index_t gi = sub.local_to_global[static_cast<std::size_t>(i)];
      for (index_t p = rp[static_cast<std::size_t>(i)];
           p < rp[static_cast<std::size_t>(i) + 1]; ++p) {
        const index_t gj = sub.local_to_global[static_cast<std::size_t>(
            ci[static_cast<std::size_t>(p)])];
        if (gi == dead_dof || gj == dead_dof)
          vals[static_cast<std::size_t>(p)] = 0.0;
      }
    }
    mats->push_back(std::move(k));
  }
  return mats;
}

TEST(ServiceBadOperator, DegenerateBuildFailsTypedAndIsRequestScoped) {
  const Scene s = make_scene(8, 4);
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("good", s.part, s.poly);
  service.register_operator("dead", s.part, s.poly,
                            zeroed_dof_override(s, /*dead_dof=*/5));

  // The degenerate build surfaces as Failed{BadOperator} — not a crash,
  // not a retry loop, not a generic SolveError.
  const svc::Outcome bad = service.submit(make_request(s, "dead")).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Failed>(bad));
  {
    const auto& f = std::get<svc::Failed>(bad);
    EXPECT_EQ(f.reason, svc::FailReason::BadOperator);
    EXPECT_FALSE(f.comm);
    EXPECT_NE(f.error.find("row"), std::string::npos) << f.error;
  }

  // Request-scoped: the shard keeps serving other operators...
  const svc::Outcome good = service.submit(make_request(s, "good")).outcome.get();
  ASSERT_TRUE(svc::ok(good));

  // ...the failed build never entered the cache (no retry burned a
  // slot, no poisoned state) and a resubmit is deterministically typed
  // again.
  const auto st1 = service.stats();
  const svc::Outcome again = service.submit(make_request(s, "dead")).outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Failed>(again));
  EXPECT_EQ(std::get<svc::Failed>(again).reason,
            svc::FailReason::BadOperator);
  EXPECT_EQ(service.stats().failed, st1.failed + 1);
  EXPECT_EQ(service.stats().retries, 0u);

  // And the key itself is healthy: swapping real matrices back in
  // revives it without re-registering.
  service.update_operator("dead", nullptr);
  const svc::Outcome fixed = service.submit(make_request(s, "dead")).outcome.get();
  EXPECT_TRUE(svc::ok(fixed));
  service.shutdown(/*drain=*/true);
}

TEST(ServiceBadOperator, MismatchedDeflationIsRejectedAtRegistration) {
  // Per-operator deflation is validated against the partition's dof
  // count when the recipe is registered — a layout for the wrong family
  // must never reach a solve thread.
  const Scene s = make_scene(8, 4);
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  core::DeflationOptions defl;
  defl.enabled = true;
  defl.components = 2;
  defl.coord_dim = 3;  // 3-D table on the 2-D cantilever
  defl.dof_coords = fem::free_dof_coords(s.prob.mesh, s.prob.dofs);
  EXPECT_THROW(service.register_operator("op", s.part, s.poly, nullptr, defl),
               BadOperatorError);
  service.shutdown();
}

TEST(ServiceMixedTenants, PerOperatorDeflationServesDifferentFamilies) {
  // One service, two tenants with incompatible coarse-space layouts:
  // the scalar hetero2d family (components = 1, jump-aware) and the
  // paper's elasticity cantilever (components = 2).  Each key carries
  // its own DeflationOptions; both must solve, deflated, side by side.
  fem::ProblemSpec hs = fem::default_spec("hetero2d");
  hs.jump = 1.0e4;
  hs.aligned = false;
  hs.checker = 3;
  const fem::FamilyProblem hetero = fem::make_problem(hs);
  auto hpart = std::make_shared<const partition::EddPartition>(
      exp::make_edd(hetero, kRanks));
  const Scene s = make_scene();

  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("hetero", hpart, s.poly, nullptr,
                            exp::family_deflation(hetero, true));
  core::DeflationOptions edefl;
  edefl.enabled = true;
  edefl.components = 2;
  edefl.coord_dim = 2;
  edefl.dof_coords = fem::free_dof_coords(s.prob.mesh, s.prob.dofs);
  service.register_operator("elastic", s.part, s.poly, nullptr, edefl);

  svc::SolveRequest hreq;
  hreq.operator_key = "hetero";
  hreq.rhs.push_back(hetero.prob.load);
  const svc::Outcome ho = service.submit(std::move(hreq)).outcome.get();
  ASSERT_TRUE(svc::ok(ho));
  EXPECT_TRUE(std::get<svc::Completed>(ho).result.items[0].converged);
  // The coarse correction genuinely ran on the scalar tenant.
  EXPECT_GT(std::get<svc::Completed>(ho)
                .result.rank_counters[0]
                .coarse_solves,
            0u);

  const svc::Outcome eo = service.submit(make_request(s, "elastic")).outcome.get();
  ASSERT_TRUE(svc::ok(eo));
  EXPECT_TRUE(std::get<svc::Completed>(eo).result.items[0].converged);
  service.shutdown(/*drain=*/true);
}

}  // namespace
}  // namespace pfem
