// Randomized property tests: distributed kernels vs sequential
// references over random meshes/partitions/vectors, solver correctness
// over random SPD systems, and failure injection in the runtime.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/cg.hpp"
#include "core/diag_scaling.hpp"
#include "core/edd_batch.hpp"
#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/dense.hpp"
#include "la/vector_ops.hpp"
#include "partition/edd.hpp"
#include "fem/structured.hpp"
#include "partition/geom.hpp"
#include "sparse/generators.hpp"

namespace pfem {
namespace {

/// Random cantilever + random part count driven by the seed.
struct FuzzCase {
  fem::CantileverProblem prob;
  int nparts;
  Rng rng;
};

FuzzCase make_case(std::uint64_t seed) {
  Rng rng(seed);
  fem::CantileverSpec spec;
  spec.nx = rng.uniform_index(3, 14);
  spec.ny = rng.uniform_index(1, 8);
  spec.elem_type = rng.uniform(0, 1) < 0.3 ? fem::ElemType::Tri3
                                           : fem::ElemType::Quad4;
  const int max_parts =
      std::min<int>(8, spec.elem_type == fem::ElemType::Tri3
                           ? 2 * spec.nx * spec.ny
                           : spec.nx * spec.ny);
  const int nparts = static_cast<int>(rng.uniform_index(1, max_parts));
  return FuzzCase{fem::make_cantilever(spec), nparts, std::move(rng)};
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, EddMatvecAgreesWithGlobal) {
  FuzzCase c = make_case(GetParam());
  const partition::EddPartition part = exp::make_edd(c.prob, c.nparts);
  const std::size_t n = static_cast<std::size_t>(part.n_global);
  Vector x(n), y_ref(n);
  for (real_t& v : x) v = c.rng.normal();
  c.prob.stiffness.spmv(x, y_ref);
  std::vector<Vector> y_loc(part.subs.size());
  for (int s = 0; s < part.nparts(); ++s) {
    const Vector xs = partition::edd_scatter(part, s, x);
    y_loc[static_cast<std::size_t>(s)].resize(xs.size());
    part.subs[static_cast<std::size_t>(s)].k_loc.spmv(
        xs, y_loc[static_cast<std::size_t>(s)]);
  }
  const Vector y = partition::edd_gather_local(part, y_loc);
  const real_t scale = la::nrm_inf(y_ref) + 1.0;
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(y[i], y_ref[i], 1e-10 * scale);
}

TEST_P(FuzzSeed, EddInnerProductIdentity) {
  // Eq. 33: <x, y> = Σ_s <x̂_loc, ŷ_glob>, with x̂_loc built by the
  // multiplicity splitting.
  FuzzCase c = make_case(GetParam());
  const partition::EddPartition part = exp::make_edd(c.prob, c.nparts);
  const std::size_t n = static_cast<std::size_t>(part.n_global);
  Vector x(n), y(n);
  for (real_t& v : x) v = c.rng.normal();
  for (real_t& v : y) v = c.rng.normal();
  const real_t ref = la::dot(x, y);

  real_t acc = 0.0;
  for (int s = 0; s < part.nparts(); ++s) {
    const auto& sub = part.subs[static_cast<std::size_t>(s)];
    const Vector y_glob = partition::edd_scatter(part, s, y);
    for (std::size_t l = 0; l < sub.local_to_global.size(); ++l) {
      const real_t x_loc =
          x[static_cast<std::size_t>(sub.local_to_global[l])] /
          static_cast<real_t>(sub.multiplicity[l]);
      acc += x_loc * y_glob[l];
    }
  }
  EXPECT_NEAR(acc, ref, 1e-9 * (std::abs(ref) + 1.0));
}

TEST_P(FuzzSeed, AllSolversAgreeOnRandomProblem) {
  FuzzCase c = make_case(GetParam());
  core::SolveOptions opts;
  opts.tol = 1e-9;
  opts.max_iters = 50000;
  core::PolySpec poly;
  poly.degree = static_cast<int>(c.rng.uniform_index(1, 10));

  const partition::EddPartition epart = exp::make_edd(c.prob, c.nparts);
  const auto edd = core::solve_edd(epart, c.prob.load, poly, opts);
  ASSERT_TRUE(edd.converged) << "seed " << GetParam();

  const partition::RddPartition rpart = exp::make_rdd(c.prob, c.nparts);
  core::RddOptions rdd_opts;
  rdd_opts.poly = poly;
  const auto rdd = core::solve_rdd(rpart, c.prob.load, rdd_opts, opts);
  ASSERT_TRUE(rdd.converged) << "seed " << GetParam();

  const auto cg = core::solve_edd_cg(epart, c.prob.load, poly, opts);
  ASSERT_TRUE(cg.converged) << "seed " << GetParam();

  const real_t scale = la::nrm_inf(edd.x) + 1e-30;
  for (std::size_t i = 0; i < edd.x.size(); ++i) {
    EXPECT_NEAR(rdd.x[i], edd.x[i], 1e-5 * scale) << "seed " << GetParam();
    EXPECT_NEAR(cg.x[i], edd.x[i], 1e-5 * scale) << "seed " << GetParam();
  }
}

TEST_P(FuzzSeed, FusedBatchMatchesPerRhsSolves) {
  // The loop-fused multi-RHS sweep shares messages and allreduces across
  // the batch, but each RHS's arithmetic must be the one the standalone
  // enhanced solver performs: identical iteration counts and residual
  // histories, not just "both converge".
  FuzzCase c = make_case(GetParam());
  const partition::EddPartition part = exp::make_edd(c.prob, c.nparts);
  core::PolySpec poly;
  poly.degree = static_cast<int>(c.rng.uniform_index(1, 8));
  core::SolveOptions opts;
  opts.tol = 1e-9;
  opts.max_iters = 50000;

  const std::size_t n = static_cast<std::size_t>(part.n_global);
  std::vector<Vector> rhs(1 + GetParam() % 3);
  rhs[0] = c.prob.load;
  for (std::size_t b = 1; b < rhs.size(); ++b) {
    rhs[b].resize(n);
    for (real_t& v : rhs[b]) v = c.rng.normal();
  }

  par::Team team(part.nparts());
  const core::EddOperatorState op = core::build_edd_operator(team, part, poly);
  const core::BatchSolveResult batch =
      core::solve_edd_batch(team, part, op, rhs, opts);
  ASSERT_FALSE(batch.comm_failed()) << batch.comm_error;
  ASSERT_EQ(batch.items.size(), rhs.size());

  for (std::size_t b = 0; b < rhs.size(); ++b) {
    const auto single = core::solve_edd(part, rhs[b], poly, opts);
    const auto& item = batch.items[b];
    ASSERT_EQ(item.converged, single.converged)
        << "seed " << GetParam() << " rhs " << b;
    ASSERT_EQ(item.iterations, single.iterations)
        << "seed " << GetParam() << " rhs " << b;
    EXPECT_NEAR(item.final_relres, single.final_relres, 1e-12)
        << "seed " << GetParam() << " rhs " << b;
    ASSERT_EQ(item.history.size(), single.history.size());
    for (std::size_t it = 0; it < item.history.size(); ++it)
      EXPECT_NEAR(item.history[it], single.history[it], 1e-12)
          << "seed " << GetParam() << " rhs " << b << " iter " << it;
    const real_t scale = la::nrm_inf(single.x) + 1e-30;
    ASSERT_EQ(batch.x[b].size(), single.x.size());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(batch.x[b][i], single.x[i], 1e-10 * scale)
          << "seed " << GetParam() << " rhs " << b;
  }
}

TEST_P(FuzzSeed, RandomSpdSystemsThroughSequentialSolvers) {
  Rng rng(GetParam() * 977 + 3);
  const index_t n = rng.uniform_index(10, 80);
  const sparse::CsrMatrix k =
      sparse::random_spd(n, rng.uniform_index(2, 6), 0.15, GetParam());
  Vector b(static_cast<std::size_t>(n));
  for (real_t& v : b) v = rng.normal();

  la::DenseMatrix kd(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) kd(i, j) = k.at(i, j);
  Vector x_ref = b;
  la::lu_solve(kd, x_ref);

  const core::ScaledSystem s = core::scale_system(k, b);
  core::SolveOptions opts;
  opts.tol = 1e-11;
  opts.max_iters = 20000;

  Vector x1(b.size(), 0.0);
  core::GlsPrecond gls(core::LinearOp::from_csr(s.a),
                       core::GlsPolynomial(core::default_theta_after_scaling(),
                                           5));
  ASSERT_TRUE(core::fgmres(s.a, s.b, x1, gls, opts).converged);
  const Vector u1 = s.unscale(x1);

  Vector x2(b.size(), 0.0);
  core::JacobiPrecond jac(s.a);
  ASSERT_TRUE(core::pcg(s.a, s.b, x2, jac, opts).converged);
  const Vector u2 = s.unscale(x2);

  const real_t scale = la::nrm_inf(x_ref) + 1e-30;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(u1[i], x_ref[i], 1e-6 * scale);
    EXPECT_NEAR(u2[i], x_ref[i], 1e-6 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(FailureInjection, RankFailureDuringSolveUnwindsCleanly) {
  // Kill one rank mid-collective repeatedly; the team must never
  // deadlock and the error must surface.
  for (int victim = 0; victim < 3; ++victim) {
    EXPECT_THROW(
        par::run_spmd(3,
                      [victim](par::Comm& comm) {
                        for (int it = 0;; ++it) {
                          if (comm.rank() == victim && it == 5)
                            throw Error("injected failure");
                          (void)comm.allreduce_sum(1.0);
                        }
                      }),
        Error);
  }
}

TEST(FailureInjection, SingularLocalMatrixSurfacesFromRank) {
  // A floating one-element "subdomain" matrix makes the distributed
  // scaling/ILU path throw inside a rank; the driver must rethrow.
  fem::Mesh mesh = fem::structured_quad(1, 1, 1.0, 1.0);
  fem::DofMap dofs(mesh.num_nodes(), 2);
  dofs.finalize();
  fem::Material mat;
  const sparse::CsrMatrix k =
      fem::assemble(mesh, dofs, mat, fem::Operator::Stiffness);
  EXPECT_THROW(par::run_spmd(2,
                             [&](par::Comm& comm) {
                               if (comm.rank() == 1) {
                                 sparse::Ilu0 ilu(k, 1e-8);
                               }
                               comm.barrier();
                             }),
               Error);
}

}  // namespace
}  // namespace pfem
