// Unit tests for the dense linear algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "la/dense.hpp"
#include "la/hessenberg_lsq.hpp"
#include "la/vector_ops.hpp"

namespace pfem::la {
namespace {

TEST(VectorOps, AxpyAndScal) {
  Vector x{1.0, 2.0, 3.0};
  Vector y{1.0, 1.0, 1.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_DOUBLE_EQ(y[2], 7.0);
  scal(0.5, y);
  EXPECT_DOUBLE_EQ(y[2], 3.5);
}

TEST(VectorOps, Axpby) {
  Vector x{1.0, -1.0};
  Vector y{2.0, 2.0};
  axpby(3.0, x, -1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], -5.0);
}

TEST(VectorOps, DotAndNorms) {
  Vector x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(nrm_inf(x), 4.0);
}

TEST(VectorOps, SubAndCopyAndFill) {
  Vector x{5.0, 7.0}, y{1.0, 2.0}, z(2);
  sub(x, y, z);
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 5.0);
  copy(z, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  fill(y, 0.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(VectorOps, FlopFormulas) {
  EXPECT_EQ(flops::axpy(10), 20u);
  EXPECT_EQ(flops::dot(10), 20u);
  EXPECT_EQ(flops::scal(10), 10u);
}

TEST(DenseMatrix, MatvecAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  Vector x{1.0, 1.0, 1.0}, y(2);
  a.matvec(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);

  Vector xt{1.0, 1.0}, yt(3);
  a.matvec_transpose(xt, yt);
  EXPECT_DOUBLE_EQ(yt[0], 5.0);
  EXPECT_DOUBLE_EQ(yt[2], 9.0);

  const DenseMatrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(DenseMatrix, Multiply) {
  DenseMatrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 5;
  b(0, 1) = 6;
  b(1, 0) = 7;
  b(1, 1) = 8;
  const DenseMatrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Cholesky, SolvesSpdSystem) {
  DenseMatrix a(3, 3);
  // SPD: A = L L^T of L = [[2,0,0],[1,3,0],[0,1,1]].
  const double l[3][3] = {{2, 0, 0}, {1, 3, 0}, {0, 1, 1}};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) {
      double s = 0;
      for (int k = 0; k < 3; ++k) s += l[i][k] * l[j][k];
      a(i, j) = s;
    }
  Vector b{1.0, 2.0, 3.0};
  Vector x = b;
  DenseMatrix acopy = a;
  cholesky_solve(acopy, x);
  Vector check(3);
  a.matvec(x, check);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(check[i], b[i], 1e-12);
}

TEST(Cholesky, ThrowsOnIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(1, 1) = -1;
  Vector b{1.0, 1.0};
  EXPECT_THROW(cholesky_solve(a, b), Error);
}

TEST(Lu, SolvesGeneralSystemWithPivoting) {
  DenseMatrix a(3, 3);
  a(0, 0) = 0;  // forces a pivot swap
  a(0, 1) = 2;
  a(0, 2) = 1;
  a(1, 0) = 1;
  a(1, 1) = 1;
  a(1, 2) = 1;
  a(2, 0) = 4;
  a(2, 1) = -1;
  a(2, 2) = 3;
  const DenseMatrix orig = a;
  Vector b{4.0, 3.0, 6.0};
  Vector x = b;
  lu_solve(a, x);
  Vector check(3);
  orig.matvec(x, check);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(check[i], b[i], 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  Vector b{1.0, 2.0};
  EXPECT_THROW(lu_solve(a, b), Error);
}

TEST(JacobiEig, DiagonalMatrixExact) {
  DenseMatrix a(3, 3);
  a(0, 0) = -2.0;
  a(1, 1) = 1.0;
  a(2, 2) = 5.0;
  const EigRange r = symmetric_eig_range(a);
  EXPECT_NEAR(r.min, -2.0, 1e-12);
  EXPECT_NEAR(r.max, 5.0, 1e-12);
}

TEST(JacobiEig, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  DenseMatrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  const EigRange r = symmetric_eig_range(a);
  EXPECT_NEAR(r.min, 1.0, 1e-10);
  EXPECT_NEAR(r.max, 3.0, 1e-10);
}

TEST(HessenbergLsq, MatchesNormalEquationsSolution) {
  // Hessenberg system from a fake 3-step Arnoldi; compare against the
  // dense least-squares solution of min ||beta e1 - H y||.
  const double beta = 2.0;
  // Columns (each j+2 long).
  const std::vector<Vector> cols = {
      {1.0, 0.5}, {0.3, 1.2, 0.4}, {0.1, 0.7, 0.9, 0.2}};
  HessenbergLsq lsq(3, beta);
  double res = 0;
  for (const auto& c : cols) res = lsq.push_column(c);
  const Vector y = lsq.solve();
  ASSERT_EQ(y.size(), 3u);

  // Dense reference: H is 4x3, solve normal equations H^T H y = H^T b.
  DenseMatrix h(4, 3);
  for (int j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < cols[static_cast<std::size_t>(j)].size(); ++i)
      h(static_cast<index_t>(i), j) = cols[static_cast<std::size_t>(j)][i];
  Vector b{beta, 0.0, 0.0, 0.0};
  DenseMatrix hth(3, 3);
  Vector htb(3, 0.0);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double s = 0;
      for (int k = 0; k < 4; ++k) s += h(k, i) * h(k, j);
      hth(i, j) = s;
    }
    for (int k = 0; k < 4; ++k) htb[static_cast<std::size_t>(i)] += h(k, i) * b[static_cast<std::size_t>(k)];
  }
  cholesky_solve(hth, htb);
  for (int i = 0; i < 3; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], htb[static_cast<std::size_t>(i)], 1e-10);

  // Residual reported by the incremental QR equals the true residual.
  Vector hy(4, 0.0);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 3; ++j)
      hy[static_cast<std::size_t>(i)] += h(i, j) * htb[static_cast<std::size_t>(j)];
  double true_res = 0;
  for (int i = 0; i < 4; ++i) {
    const double d = b[static_cast<std::size_t>(i)] - hy[static_cast<std::size_t>(i)];
    true_res += d * d;
  }
  EXPECT_NEAR(res, std::sqrt(true_res), 1e-10);
}

TEST(HessenbergLsq, ResidualMonotoneNonIncreasing) {
  HessenbergLsq lsq(4, 1.0);
  double prev = 1.0;
  const std::vector<Vector> cols = {
      {0.9, 0.6}, {0.2, 0.8, 0.5}, {0.1, 0.3, 0.7, 0.4},
      {0.05, 0.2, 0.3, 0.6, 0.3}};
  for (const auto& c : cols) {
    const double r = lsq.push_column(c);
    EXPECT_LE(r, prev + 1e-14);
    prev = r;
  }
}

TEST(HessenbergLsq, CapacityEnforced) {
  HessenbergLsq lsq(1, 1.0);
  (void)lsq.push_column(Vector{1.0, 0.1});
  EXPECT_THROW((void)lsq.push_column(Vector{0.1, 1.0, 0.1}), Error);
}

}  // namespace
}  // namespace pfem::la
