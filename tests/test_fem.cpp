// Finite element substrate tests: meshers, element integrals (with the
// classical invariants: symmetry, rigid-body nullspace, mass totals,
// patch test), dof numbering, assembly, and the cantilever factory
// (Table 2 reproduction).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "fem/assembly.hpp"
#include "fem/ebe.hpp"
#include "fem/elements.hpp"
#include "fem/problems.hpp"
#include "fem/structured.hpp"
#include "la/dense.hpp"
#include "la/vector_ops.hpp"

namespace pfem::fem {
namespace {

const QuadCoords kUnitSquare{0, 0, 1, 0, 1, 1, 0, 1};
const TriCoords kUnitTri{0, 0, 1, 0, 0, 1};

TEST(StructuredMesh, QuadCountsAndCoords) {
  const Mesh m = structured_quad(3, 2, 6.0, 2.0);
  EXPECT_EQ(m.num_nodes(), 12);
  EXPECT_EQ(m.num_elems(), 6);
  EXPECT_DOUBLE_EQ(m.x(0), 0.0);
  EXPECT_DOUBLE_EQ(m.x(3), 6.0);
  EXPECT_DOUBLE_EQ(m.y(11), 2.0);
  const auto nodes = m.elem_nodes(0);
  EXPECT_EQ(nodes[0], 0);
  EXPECT_EQ(nodes[1], 1);
  EXPECT_EQ(nodes[2], 5);
  EXPECT_EQ(nodes[3], 4);
}

TEST(StructuredMesh, TriSplitsEachCell) {
  const Mesh m = structured_tri(3, 2, 3.0, 2.0);
  EXPECT_EQ(m.num_elems(), 12);
  EXPECT_EQ(nodes_per_elem(m.type()), 3);
  for (index_t e = 0; e < m.num_elems(); ++e) {
    TriCoords xy{};
    const auto nodes = m.elem_nodes(e);
    for (int i = 0; i < 3; ++i) {
      xy[2 * i] = m.x(nodes[i]);
      xy[2 * i + 1] = m.y(nodes[i]);
    }
    EXPECT_GT(tri3_area(xy), 0.0) << "element " << e << " not CCW";
  }
}

TEST(StructuredMesh, EdgeSelectors) {
  const Mesh m = structured_quad(4, 3, 4.0, 3.0);
  EXPECT_EQ(m.nodes_at_x(0.0).size(), 4u);
  EXPECT_EQ(m.nodes_at_x(4.0).size(), 4u);
  EXPECT_EQ(m.nodes_at_y(0.0).size(), 5u);
  const auto bb = m.bounding_box();
  EXPECT_DOUBLE_EQ(bb[1], 4.0);
  EXPECT_DOUBLE_EQ(bb[3], 3.0);
}

TEST(Elements, Quad4StiffnessSymmetric) {
  Material mat;
  const la::DenseMatrix ke = quad4_stiffness(kUnitSquare, mat);
  EXPECT_LT(ke.max_abs_diff(ke.transposed()), 1e-10);
}

TEST(Elements, Quad4StiffnessRigidBodyNullspace) {
  // Translations in x and y and an infinitesimal rotation produce zero
  // force: Ke * u_rigid = 0.
  Material mat;
  const la::DenseMatrix ke = quad4_stiffness(kUnitSquare, mat);
  Vector tx(8, 0.0), ty(8, 0.0), rot(8, 0.0), f(8);
  for (int i = 0; i < 4; ++i) {
    tx[2 * i] = 1.0;
    ty[2 * i + 1] = 1.0;
    // Rotation about origin: u = -y, v = x.
    rot[2 * i] = -kUnitSquare[2 * i + 1];
    rot[2 * i + 1] = kUnitSquare[2 * i];
  }
  for (const Vector& u : {tx, ty, rot}) {
    ke.matvec(u, f);
    EXPECT_LT(la::nrm_inf(f), 1e-9);
  }
}

TEST(Elements, Quad4StiffnessPositiveSemiDefinite) {
  Material mat;
  const la::DenseMatrix ke = quad4_stiffness(kUnitSquare, mat);
  const la::EigRange r = la::symmetric_eig_range(ke);
  EXPECT_GT(r.max, 0.0);
  EXPECT_GT(r.min, -1e-8 * r.max);  // PSD up to roundoff
}

TEST(Elements, Quad4MassTotalEqualsElementMass) {
  Material mat;
  mat.density = 2.5;
  mat.thickness = 0.5;
  const la::DenseMatrix me = quad4_mass(kUnitSquare, mat);
  // Sum over the u-dofs block = rho * t * area.
  double total = 0.0;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) total += me(2 * i, 2 * j);
  EXPECT_NEAR(total, 2.5 * 0.5 * 1.0, 1e-12);
  EXPECT_LT(me.max_abs_diff(me.transposed()), 1e-12);
  const la::EigRange r = la::symmetric_eig_range(me);
  EXPECT_GT(r.min, 0.0);  // consistent mass is SPD
}

TEST(Elements, Tri3StiffnessPropertiesAndArea) {
  Material mat;
  EXPECT_DOUBLE_EQ(tri3_area(kUnitTri), 0.5);
  const la::DenseMatrix ke = tri3_stiffness(kUnitTri, mat);
  EXPECT_LT(ke.max_abs_diff(ke.transposed()), 1e-10);
  Vector tx(6, 0.0), f(6);
  for (int i = 0; i < 3; ++i) tx[2 * i] = 1.0;
  ke.matvec(tx, f);
  EXPECT_LT(la::nrm_inf(f), 1e-10);
}

TEST(Elements, Tri3MassTotal) {
  Material mat;
  mat.density = 3.0;
  const la::DenseMatrix me = tri3_mass(kUnitTri, mat);
  double total = 0.0;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) total += me(2 * i, 2 * j);
  EXPECT_NEAR(total, 3.0 * 0.5, 1e-12);
}

TEST(Elements, DegenerateElementThrows) {
  // Clockwise node order inverts the Jacobian everywhere.
  const QuadCoords inverted{0, 0, 0, 1, 1, 1, 1, 0};
  EXPECT_THROW((void)quad4_stiffness(inverted, Material{}), Error);
  const TriCoords collinear{0, 0, 1, 0, 2, 0};
  EXPECT_THROW((void)tri3_stiffness(collinear, Material{}), Error);
}

TEST(Elements, PoissonRowSumsZero) {
  // Laplace stiffness annihilates constants.
  const la::DenseMatrix kq = quad4_poisson(kUnitSquare);
  for (index_t i = 0; i < 4; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < 4; ++j) s += kq(i, j);
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
  const la::DenseMatrix kt = tri3_poisson(kUnitTri);
  for (index_t i = 0; i < 3; ++i) {
    double s = 0.0;
    for (index_t j = 0; j < 3; ++j) s += kt(i, j);
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
}

TEST(Elements, PatchTestConstantStrain) {
  // A linear displacement field u = a*x, v = 0 on a distorted Q4 must
  // produce the constant-strain energy 1/2 eps^T D eps * area exactly
  // (bilinear elements pass the patch test).
  Material mat;
  const QuadCoords xy{0, 0, 1.2, 0.1, 1.1, 0.9, -0.1, 1.0};
  const la::DenseMatrix ke = quad4_stiffness(xy, mat);
  const double a = 0.01;
  Vector u(8, 0.0), f(8);
  for (int i = 0; i < 4; ++i) u[2 * i] = a * xy[2 * i];
  ke.matvec(u, f);
  const double energy = 0.5 * la::dot(u, f);

  // Area by the shoelace formula.
  double area = 0.0;
  for (int i = 0; i < 4; ++i) {
    const int j = (i + 1) % 4;
    area += xy[2 * i] * xy[2 * j + 1] - xy[2 * j] * xy[2 * i + 1];
  }
  area *= 0.5;
  // eps = (a, 0, 0): energy density = 1/2 * D00 * a^2.
  const double d00 = mat.plane_stress_d()(0, 0);
  EXPECT_NEAR(energy, 0.5 * d00 * a * a * area, 1e-10 * std::abs(energy));
}

TEST(DofMap, NumberingSkipsFixed) {
  DofMap dofs(3, 2);
  dofs.fix_node(0);
  dofs.fix(1, 1);
  dofs.finalize();
  EXPECT_EQ(dofs.num_free(), 3);
  EXPECT_EQ(dofs.dof(0, 0), -1);
  EXPECT_EQ(dofs.dof(0, 1), -1);
  EXPECT_EQ(dofs.dof(1, 0), 0);
  EXPECT_EQ(dofs.dof(1, 1), -1);
  EXPECT_EQ(dofs.dof(2, 0), 1);
  EXPECT_EQ(dofs.dof(2, 1), 2);
}

TEST(DofMap, UsageErrors) {
  DofMap dofs(2, 1);
  EXPECT_THROW((void)dofs.dof(0, 0), Error);  // before finalize
  dofs.finalize();
  EXPECT_THROW(dofs.fix(0, 0), Error);        // after finalize
  EXPECT_THROW(dofs.finalize(), Error);       // double finalize
}

TEST(Assembly, GlobalStiffnessSymmetricSpd) {
  const Mesh mesh = structured_quad(4, 3, 4.0, 3.0);
  DofMap dofs(mesh.num_nodes(), 2);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  dofs.finalize();
  Material mat;
  const sparse::CsrMatrix k = assemble(mesh, dofs, mat,
                                       Operator::Stiffness);
  EXPECT_EQ(k.rows(), dofs.num_free());
  EXPECT_LT(k.symmetry_defect(), 1e-9);
  // SPD after clamping: quadratic form positive for a few random vectors.
  Vector x(static_cast<std::size_t>(k.rows())), kx(x.size());
  for (int trial = 0; trial < 5; ++trial) {
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = std::sin(double(trial + 1) * double(i + 1));
    k.spmv(x, kx);
    EXPECT_GT(la::dot(x, kx), 0.0);
  }
}

TEST(Assembly, SubsetSumsToWhole) {
  // Σ_s B_s^T K̂_loc B_s == K (Eq. 32): assembling two element subsets in
  // global numbering and summing reproduces the full matrix.
  const Mesh mesh = structured_quad(4, 2, 4.0, 2.0);
  DofMap dofs(mesh.num_nodes(), 2);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  dofs.finalize();
  Material mat;
  const sparse::CsrMatrix k = assemble(mesh, dofs, mat,
                                       Operator::Stiffness);

  IndexVector identity_map(static_cast<std::size_t>(dofs.num_free()));
  std::iota(identity_map.begin(), identity_map.end(), index_t{0});
  IndexVector first, second;
  for (index_t e = 0; e < mesh.num_elems(); ++e)
    (e < mesh.num_elems() / 2 ? first : second).push_back(e);
  const sparse::CsrMatrix k1 = assemble_subset(
      mesh, dofs, mat, Operator::Stiffness, first, identity_map,
      dofs.num_free());
  const sparse::CsrMatrix k2 = assemble_subset(
      mesh, dofs, mat, Operator::Stiffness, second, identity_map,
      dofs.num_free());

  Vector x(static_cast<std::size_t>(k.rows())), y(x.size()), y12(x.size()),
      t(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::cos(0.7 * double(i));
  k.spmv(x, y);
  k1.spmv(x, y12);
  k2.spmv(x, t);
  la::axpy(1.0, t, y12);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(y[i], y12[i], 1e-10);
}

TEST(Assembly, LoadHelpers) {
  const Mesh mesh = structured_quad(2, 2, 2.0, 2.0);
  DofMap dofs(mesh.num_nodes(), 2);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  dofs.finalize();
  Vector f(static_cast<std::size_t>(dofs.num_free()), 0.0);
  const IndexVector tip = mesh.nodes_at_x(2.0);
  add_edge_load(dofs, tip, 0, 30.0, f);
  double total = 0.0;
  for (real_t v : f) total += v;
  EXPECT_NEAR(total, 30.0, 1e-12);
  // Fixed dofs silently ignored.
  add_point_load(dofs, 0, 0, 5.0, f);
  double total2 = 0.0;
  for (real_t v : f) total2 += v;
  EXPECT_NEAR(total2, 30.0, 1e-12);
}

TEST(Cantilever, Table2CountsMatchPaper) {
  const auto meshes = table2_meshes();
  ASSERT_EQ(meshes.size(), 10u);
  const index_t expected_nodes[] = {16,   369,  861,  2601,  3721,
                                    5041, 6561, 8281, 10201, 20301};
  const index_t expected_eqn[] = {28,    656,   1640,  5100,  7320,
                                  9940,  12960, 16380, 20200, 40400};
  for (std::size_t i = 0; i < meshes.size(); ++i) {
    EXPECT_EQ(meshes[i].n_nodes, expected_nodes[i]) << meshes[i].name;
    EXPECT_EQ(meshes[i].n_eqn, expected_eqn[i]) << meshes[i].name;
  }
}

TEST(Cantilever, BuiltProblemMatchesTable2) {
  for (int mesh_no : {1, 2, 4}) {
    const CantileverProblem prob = make_table2_cantilever(mesh_no);
    const auto info = table2_meshes()[static_cast<std::size_t>(mesh_no - 1)];
    EXPECT_EQ(prob.mesh.num_nodes(), info.n_nodes) << info.name;
    EXPECT_EQ(prob.dofs.num_free(), info.n_eqn) << info.name;
    EXPECT_EQ(prob.stiffness.rows(), info.n_eqn) << info.name;
  }
}

TEST(Cantilever, TipDisplacesTowardLoad) {
  CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 2;
  const CantileverProblem prob = make_cantilever(spec);
  // Pulling in +x must stretch the beam: solve roughly and check the tip
  // x-displacement is positive.  Use a coarse direct check via energy:
  // f^T u > 0 for the true solution; here verify f is nonzero and K SPD
  // suffices for the solver tests; do a quick Jacobi-ish iteration:
  Vector u(prob.load.size(), 0.0);
  const Vector d = prob.stiffness.diagonal();
  Vector r = prob.load;
  for (int it = 0; it < 500; ++it) {
    for (std::size_t i = 0; i < u.size(); ++i) u[i] += 0.8 * r[i] / d[i];
    prob.stiffness.spmv(u, r);
    for (std::size_t i = 0; i < u.size(); ++i) r[i] = prob.load[i] - r[i];
  }
  const index_t tip_node = prob.mesh.nodes_at_x(
      static_cast<real_t>(spec.nx))[0];
  const index_t tip_dof = prob.dofs.dof(tip_node, 0);
  ASSERT_GE(tip_dof, 0);
  EXPECT_GT(u[static_cast<std::size_t>(tip_dof)], 0.0);
}

TEST(Cantilever, MassAssemblesWithSamePattern) {
  CantileverSpec spec;
  spec.nx = 6;
  spec.ny = 3;
  const CantileverProblem prob = make_cantilever(spec);
  const sparse::CsrMatrix m = prob.assemble_mass();
  EXPECT_EQ(m.rows(), prob.stiffness.rows());
  // Same pattern -> add_same_pattern must succeed.
  sparse::CsrMatrix keff = prob.stiffness;
  EXPECT_NO_THROW(keff.add_same_pattern(m, 4.0));
}

TEST(Ebe, ApplyMatchesAssembledMatrix) {
  for (ElemType t : {ElemType::Quad4, ElemType::Tri3, ElemType::Quad8}) {
    CantileverSpec spec;
    spec.nx = 6;
    spec.ny = 3;
    spec.elem_type = t;
    const CantileverProblem prob = make_cantilever(spec);
    const EbeOperator ebe(prob.mesh, prob.dofs, prob.material,
                          Operator::Stiffness);
    const std::size_t n = prob.load.size();
    Vector x(n), y1(n), y2(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = std::cos(0.23 * double(i));
    prob.stiffness.spmv(x, y1);
    ebe.apply(x, y2);
    const real_t scale = la::nrm_inf(y1) + 1.0;
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(y2[i], y1[i], 1e-11 * scale);
  }
}

TEST(Ebe, StoresMoreThanCsrButNeedsNoAssembly) {
  CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 10;
  const CantileverProblem prob = make_cantilever(spec);
  const EbeOperator ebe(prob.mesh, prob.dofs, prob.material,
                        Operator::Stiffness);
  EXPECT_GT(ebe.stored_values(),
            static_cast<std::uint64_t>(prob.stiffness.nnz()));
  EXPECT_LT(ebe.stored_values(),
            3ull * static_cast<std::uint64_t>(prob.stiffness.nnz()));
}

TEST(Ebe, LinearOpAdapterWorks) {
  CantileverSpec spec;
  spec.nx = 5;
  spec.ny = 2;
  const CantileverProblem prob = make_cantilever(spec);
  const EbeOperator ebe(prob.mesh, prob.dofs, prob.material,
                        Operator::Stiffness);
  const core::LinearOp op = ebe.as_linear_op();
  EXPECT_EQ(op.size(), prob.dofs.num_free());
  Vector x(prob.load.size(), 1.0), y(prob.load.size());
  op.apply(x, y);
  EXPECT_GT(la::nrm_inf(y), 0.0);
}

TEST(Cantilever, TriElementVariant) {
  CantileverSpec spec;
  spec.nx = 6;
  spec.ny = 2;
  spec.elem_type = ElemType::Tri3;
  const CantileverProblem prob = make_cantilever(spec);
  EXPECT_EQ(prob.mesh.num_elems(), 2 * 6 * 2);
  EXPECT_LT(prob.stiffness.symmetry_defect(), 1e-9);
}

}  // namespace
}  // namespace pfem::fem
