// Chebyshev polynomial preconditioner tests: min-max optimality,
// operator application, and integration with the solvers.
#include <gtest/gtest.h>

#include <cmath>

#include "core/chebyshev.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "core/gls_poly.hpp"
#include "core/precond.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "sparse/generators.hpp"
#include "sparse/lanczos.hpp"

namespace pfem::core {
namespace {

TEST(Chebyshev, ResidualBoundedByMinimaxValue) {
  const ChebyshevPolynomial p({0.1, 2.5}, 7);
  const real_t bound = p.minimax_bound();
  EXPECT_GT(bound, 0.0);
  EXPECT_LT(bound, 1.0);
  real_t sup = 0.0;
  for (int k = 0; k <= 2000; ++k) {
    const real_t lambda = 0.1 + 2.4 * k / 2000.0;
    sup = std::max(sup, std::abs(p.residual(lambda)));
  }
  EXPECT_LE(sup, bound * (1.0 + 1e-10));
  // Equioscillation: the bound is attained at the interval ends.
  EXPECT_NEAR(std::abs(p.residual(0.1)), bound, 1e-12);
  EXPECT_NEAR(std::abs(p.residual(2.5)), bound, 1e-12);
}

TEST(Chebyshev, MinimaxBoundDecaysWithDegree) {
  real_t prev = 1.0;
  for (int m : {0, 2, 4, 8, 16}) {
    const real_t b = ChebyshevPolynomial({0.1, 1.0}, m).minimax_bound();
    EXPECT_LT(b, prev);
    prev = b;
  }
  EXPECT_LT(prev, 1e-3);
}

TEST(Chebyshev, Degree0IsOptimalConstant) {
  const ChebyshevPolynomial p({0.5, 1.5}, 0);
  EXPECT_NEAR(p.eval(1.0), 2.0 / (0.5 + 1.5), 1e-14);
}

TEST(Chebyshev, ApplyOnDiagonalMatrixMatchesScalarEval) {
  const Vector eigs{0.12, 0.5, 1.3, 2.4};
  const sparse::CsrMatrix a = sparse::diagonal_matrix(eigs);
  const LinearOp op = LinearOp::from_csr(a);
  const ChebyshevPolynomial p({0.1, 2.5}, 9);
  Vector v{1.0, -1.0, 2.0, 0.5}, z(4);
  p.apply(op, v, z);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(z[i], p.eval(eigs[i]) * v[i], 1e-11);
}

TEST(Chebyshev, PowerCoeffsConsistentWithEval) {
  const ChebyshevPolynomial p({0.2, 1.8}, 6);
  const Vector c = p.power_coeffs();
  ASSERT_EQ(c.size(), 7u);
  for (real_t lambda : {0.3, 1.0, 1.7}) {
    real_t horner = 0.0;
    for (int k = 6; k >= 0; --k)
      horner = horner * lambda + c[static_cast<std::size_t>(k)];
    EXPECT_NEAR(horner, p.eval(lambda), 1e-10 * (1.0 + std::abs(horner)));
  }
}

TEST(Chebyshev, RejectsInvalidInterval) {
  EXPECT_THROW(ChebyshevPolynomial({-1.0, 1.0}, 3), Error);
  EXPECT_THROW(ChebyshevPolynomial({0.0, 1.0}, 3), Error);
  EXPECT_THROW(ChebyshevPolynomial({2.0, 1.0}, 3), Error);
}

TEST(Chebyshev, ComparableToGlsOnSameInterval) {
  // Both aim at 1 − λp ≈ 0 on the same interval (∞-norm vs weighted
  // L2): their sup-residuals should be within a small factor.
  const Interval iv{0.05, 1.0};
  const ChebyshevPolynomial cheb(iv, 8);
  const GlsPolynomial gls({iv}, 8);
  real_t sup_cheb = 0.0, sup_gls = 0.0;
  for (int k = 0; k <= 1000; ++k) {
    const real_t lambda = iv.lo + (iv.hi - iv.lo) * k / 1000.0;
    sup_cheb = std::max(sup_cheb, std::abs(cheb.residual(lambda)));
    sup_gls = std::max(sup_gls, std::abs(gls.residual(lambda)));
  }
  EXPECT_LT(sup_cheb, 1.0);
  EXPECT_LT(sup_gls, 1.0);
  EXPECT_LT(sup_cheb, 5.0 * sup_gls + 0.05);
  // Chebyshev is *optimal* in the sup norm: it cannot lose to GLS there.
  EXPECT_LE(sup_cheb, sup_gls * (1.0 + 1e-9));
}

TEST(Chebyshev, PrecondSpeedsUpFgmresWithMatchedInterval) {
  // Chebyshev equioscillates over its *whole* interval, so unlike GLS it
  // needs an interval matched to the spectrum (a Lanczos estimate) —
  // with one it must beat the unpreconditioned solver.
  const sparse::CsrMatrix a = sparse::laplace2d(12, 12);
  Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions opts;
  opts.tol = 1e-8;
  opts.max_iters = 20000;

  Vector x0(b.size(), 0.0);
  IdentityPrecond none;
  const SolveReport plain = fgmres(a, b, x0, none, opts);

  const sparse::Interval iv = sparse::estimate_spectrum(a, 30);
  Vector x1(b.size(), 0.0);
  ChebyshevPrecond cheb(LinearOp::from_csr(a),
                        ChebyshevPolynomial({iv.lo, iv.hi}, 10));
  const SolveReport with_cheb = fgmres(a, b, x1, cheb, opts);

  ASSERT_TRUE(plain.converged && with_cheb.converged);
  EXPECT_LT(with_cheb.iterations, plain.iterations / 2);
  EXPECT_EQ(cheb.name(), "Cheb(10)");
  EXPECT_EQ(cheb.matvecs_per_apply(), 10);
  for (std::size_t i = 0; i < x0.size(); ++i)
    EXPECT_NEAR(x1[i], x0[i], 1e-5 * (1.0 + std::abs(x0[i])));
}

class ChebyshevDistTest : public ::testing::TestWithParam<int> {};

TEST_P(ChebyshevDistTest, EddAndRddSolveWithChebyshev) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  PolySpec poly;
  poly.kind = PolyKind::Chebyshev;
  poly.degree = 7;
  poly.theta = {{1e-4, 1.0}};
  SolveOptions opts;
  opts.tol = 1e-8;
  opts.max_iters = 50000;

  const auto epart = exp::make_edd(prob, nparts);
  const DistSolve edd_basic =
      solve_edd(epart, prob.load, poly, opts, EddVariant::Basic);
  const DistSolve edd_enh =
      solve_edd(epart, prob.load, poly, opts, EddVariant::Enhanced);
  ASSERT_TRUE(edd_basic.converged);
  ASSERT_TRUE(edd_enh.converged);

  const auto rpart = exp::make_rdd(prob, nparts);
  RddOptions rdd;
  rdd.poly = poly;
  const DistSolve rddr = solve_rdd(rpart, prob.load, rdd, opts);
  ASSERT_TRUE(rddr.converged);

  const real_t scale = la::nrm_inf(edd_enh.x);
  for (std::size_t i = 0; i < edd_enh.x.size(); ++i) {
    EXPECT_NEAR(edd_basic.x[i], edd_enh.x[i], 1e-5 * scale);
    EXPECT_NEAR(rddr.x[i], edd_enh.x[i], 1e-5 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, ChebyshevDistTest,
                         ::testing::Values(1, 3, 4));

}  // namespace
}  // namespace pfem::core
