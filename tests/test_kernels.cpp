// SELL-C-σ kernel-layer property tests.
//
// The contract under test is *bit*-identity: the SELL layout, the fused
// D K D scaling, the interior/interface row split and the overlapped
// distributed apply must all reproduce the scalar-CSR reference to the
// last ulp, across the synthetic generator family, every vector-friendly
// chunk width, and the empty-row / tiny-matrix edge cases.  Every
// comparison below is exact double equality on purpose.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "la/dense.hpp"
#include "la/vector_ops.hpp"

#include "core/cg.hpp"
#include "core/edd_batch.hpp"
#include "core/edd_solver.hpp"
#include "core/kernels.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "sparse/ebe_store.hpp"
#include "sparse/generators.hpp"
#include "sparse/sell.hpp"

namespace pfem {
namespace {

using core::KernelOptions;
using core::RankKernel;
using sparse::CsrMatrix;
using sparse::SellMatrix;

// Deterministic pseudo-random vector with sign changes and a spread of
// magnitudes (splitmix64-driven).
Vector test_vector(std::size_t n, std::uint64_t seed) {
  Vector x(n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0,1)
    x[i] = (u - 0.5) * std::pow(10.0, static_cast<double>(i % 7) - 3.0);
  }
  return x;
}

/// Matrix with empty rows (including the first and last), single-entry
/// rows and one dense-ish row — the padding edge cases.
CsrMatrix ragged_matrix() {
  const index_t n = 13;
  std::vector<std::vector<std::pair<index_t, real_t>>> rows(
      static_cast<std::size_t>(n));
  rows[1] = {{0, 2.0}, {1, -1.0}, {5, 0.25}};
  rows[3] = {{3, 4.0}};
  rows[5] = {{0, 1.0}, {2, -2.0}, {4, 3.0}, {6, -4.0}, {8, 5.0},
             {10, -6.0}, {12, 7.0}};
  rows[6] = {{6, 1.5}};
  rows[10] = {{9, -0.5}, {10, 8.0}, {11, -0.5}};
  IndexVector rp(static_cast<std::size_t>(n) + 1, 0);
  IndexVector ci;
  Vector vals;
  for (index_t i = 0; i < n; ++i) {
    for (const auto& [c, v] : rows[static_cast<std::size_t>(i)]) {
      ci.push_back(c);
      vals.push_back(v);
    }
    rp[static_cast<std::size_t>(i) + 1] = static_cast<index_t>(ci.size());
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vals));
}

std::vector<CsrMatrix> matrix_family() {
  std::vector<CsrMatrix> fam;
  fam.push_back(sparse::laplace2d(7, 5));
  fam.push_back(sparse::laplace2d(16, 16));
  fam.push_back(sparse::random_spd(97, 5));
  fam.push_back(sparse::tridiag(33, 4.0, -1.0));
  Vector eig(24);
  for (std::size_t i = 0; i < eig.size(); ++i)
    eig[i] = 0.5 + static_cast<real_t>(i);
  fam.push_back(sparse::diagonal_matrix(eig));
  fam.push_back(sparse::convection_diffusion_2d(9, 11, 8.0, -3.0));
  fam.push_back(ragged_matrix());
  fam.push_back(sparse::tridiag(1, 3.0, 0.0));  // single row
  fam.push_back(sparse::tridiag(3, 3.0, -1.0));  // n < every chunk width
  fam.push_back(sparse::tridiag(8, 3.0, -1.0));  // n == default chunk
  return fam;
}

const int kChunks[] = {4, 8, 16, 0};  // 0 = platform default

TEST(SellSpmv, BitIdenticalToCsrAcrossFamilyAndChunks) {
  for (const CsrMatrix& a : matrix_family()) {
    const std::size_t n = static_cast<std::size_t>(a.rows());
    const Vector x = test_vector(static_cast<std::size_t>(a.cols()), 17);
    Vector y_ref(n, 0.0), y(n, 0.0);
    a.spmv(x, y_ref);
    for (const int c : kChunks) {
      const SellMatrix s = SellMatrix::from_csr(a, c);
      EXPECT_EQ(s.nnz(), a.nnz());
      la::fill(y, 0.0);
      s.spmv(x, y);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(y[i], y_ref[i]) << "row " << i << " chunk " << c;
    }
  }
}

TEST(SellSpmv, SpmvAddBitIdenticalToCsr) {
  for (const CsrMatrix& a : matrix_family()) {
    const std::size_t n = static_cast<std::size_t>(a.rows());
    const Vector x = test_vector(static_cast<std::size_t>(a.cols()), 23);
    Vector y_ref = test_vector(n, 29);
    Vector y = y_ref;
    a.spmv_add(x, y_ref);
    const SellMatrix s = SellMatrix::from_csr(a, 8);
    s.spmv_add(x, y);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y[i], y_ref[i]);
  }
}

TEST(SellSpmv, FusedScalingBitIdenticalToEagerScaling) {
  for (const CsrMatrix& a : matrix_family()) {
    if (a.rows() != a.cols()) continue;
    const std::size_t n = static_cast<std::size_t>(a.rows());
    // Any positive diagonal exercises the rounding contract; use the
    // paper's 1/sqrt(row norm) where rows are nonempty.
    Vector d = a.row_norms1();
    for (std::size_t i = 0; i < n; ++i)
      d[i] = d[i] > 0.0 ? 1.0 / std::sqrt(d[i]) : 1.0;
    const Vector x = test_vector(n, 31);

    CsrMatrix scaled = a;
    scaled.scale_symmetric(d);
    Vector y_ref(n, 0.0), y(n, 0.0);
    scaled.spmv(x, y_ref);

    for (const int c : kChunks) {
      const SellMatrix s = SellMatrix::from_csr(a, c);
      la::fill(y, 0.0);
      s.spmv_scaled(d, x, y);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(y[i], y_ref[i]) << "row " << i << " chunk " << c;
    }
  }
}

TEST(SellSpmv, RoundTripsToCsrExactly) {
  for (const CsrMatrix& a : matrix_family()) {
    for (const int c : kChunks) {
      const CsrMatrix back = SellMatrix::from_csr(a, c).to_csr();
      ASSERT_EQ(back.rows(), a.rows());
      ASSERT_EQ(back.cols(), a.cols());
      ASSERT_EQ(back.nnz(), a.nnz());
      const auto rp = a.row_ptr(), rp2 = back.row_ptr();
      const auto ci = a.col_idx(), ci2 = back.col_idx();
      const auto v = a.values(), v2 = back.values();
      for (std::size_t k = 0; k < rp.size(); ++k) ASSERT_EQ(rp2[k], rp[k]);
      for (std::size_t k = 0; k < ci.size(); ++k) ASSERT_EQ(ci2[k], ci[k]);
      for (std::size_t k = 0; k < v.size(); ++k) ASSERT_EQ(v2[k], v[k]);
    }
  }
}

TEST(SellSpmv, RowSubsetBlocksComposeToFullApply) {
  for (const CsrMatrix& a : matrix_family()) {
    const index_t n = a.rows();
    IndexVector even, odd, none;
    for (index_t i = 0; i < n; ++i) ((i % 2 == 0) ? even : odd).push_back(i);
    const Vector x = test_vector(static_cast<std::size_t>(a.cols()), 37);
    Vector y_ref(static_cast<std::size_t>(n), 0.0);
    a.spmv(x, y_ref);

    const SellMatrix se = SellMatrix::from_csr_rows(a, even, 8);
    const SellMatrix so = SellMatrix::from_csr_rows(a, odd, 8);
    const SellMatrix s0 = SellMatrix::from_csr_rows(a, none, 8);
    EXPECT_EQ(se.nnz() + so.nnz(), a.nnz());
    EXPECT_EQ(s0.nnz(), 0);
    Vector y(static_cast<std::size_t>(n), 0.0);
    se.spmv(x, y);
    so.spmv(x, y);
    s0.spmv(x, y);  // no-op on empty subset
    for (std::size_t i = 0; i < y.size(); ++i) ASSERT_EQ(y[i], y_ref[i]);
  }
}

// ---- RankKernel: every (format, overlap) combination must agree with
// the eager-scaled CSR reference, whole-apply and split-apply alike.

TEST(RankKernelTest, AllConfigsBitIdenticalToScaledCsr) {
  const CsrMatrix k = sparse::laplace2d(11, 9);
  const std::size_t n = static_cast<std::size_t>(k.rows());
  Vector d = k.row_norms1();
  for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 / std::sqrt(d[i]);
  // An arbitrary scattered "interface": every 7th dof.
  IndexVector iface;
  for (index_t i = 0; i < k.rows(); i += 7) iface.push_back(i);

  CsrMatrix scaled = k;
  scaled.scale_symmetric(d);
  const Vector x = test_vector(n, 41);
  Vector y_ref(n, 0.0);
  scaled.spmv(x, y_ref);

  for (const auto format :
       {KernelOptions::Format::Csr, KernelOptions::Format::Sell}) {
    for (const bool overlap : {false, true}) {
      for (const int c : kChunks) {
        KernelOptions ko;
        ko.format = format;
        ko.overlap = overlap;
        ko.chunk = c;
        const RankKernel a(k, Vector(d), iface, ko);
        EXPECT_EQ(a.split(), overlap);
        Vector y(n, 0.0);
        a.apply(x, y);
        for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y[i], y_ref[i]);
        if (a.split()) {
          // The two half-applies must partition the rows: coupled then
          // interior writes every entry exactly once.
          Vector y2(n, -1.0e300);
          a.apply_coupled(x, y2);
          a.apply_interior(x, y2);
          for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y2[i], y_ref[i]);
        }
      }
    }
  }

  // No interface dofs => never split, regardless of the overlap knob.
  const RankKernel whole(k, Vector(d), IndexVector{},
                         KernelOptions{KernelOptions::Format::Sell, true});
  EXPECT_FALSE(whole.split());
}

TEST(RankKernelTest, FromScaledMatchesOwningBuild) {
  const CsrMatrix k = sparse::convection_diffusion_2d(8, 7, 2.0, 1.0);
  const std::size_t n = static_cast<std::size_t>(k.rows());
  Vector d = k.row_norms1();
  for (std::size_t i = 0; i < n; ++i) d[i] = 1.0 / std::sqrt(d[i]);
  IndexVector iface = {0, 5, 17, 30};

  CsrMatrix scaled = k;
  scaled.scale_symmetric(d);
  const Vector x = test_vector(n, 43);
  Vector y_ref(n, 0.0);
  const RankKernel owning(k, Vector(d), iface, {});
  owning.apply(x, y_ref);

  for (const auto format :
       {KernelOptions::Format::Csr, KernelOptions::Format::Sell}) {
    for (const bool overlap : {false, true}) {
      KernelOptions ko;
      ko.format = format;
      ko.overlap = overlap;
      const RankKernel view = RankKernel::from_scaled(&scaled, iface, ko);
      Vector y(n, 0.0);
      view.apply(x, y);
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y[i], y_ref[i]);
    }
  }
}

// ---- Distributed: kernel format and exchange overlap are bit-neutral
// for every solver path, and leave the Table-1 exchange counts alone.

std::vector<KernelOptions> kernel_configs() {
  std::vector<KernelOptions> cfgs;
  for (const auto format :
       {KernelOptions::Format::Csr, KernelOptions::Format::Sell})
    for (const bool overlap : {false, true}) {
      KernelOptions ko;
      ko.format = format;
      ko.overlap = overlap;
      cfgs.push_back(ko);
    }
  return cfgs;
}

TEST(DistKernels, SolveEddBitNeutralAcrossKernelConfigs) {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 3;

  for (const auto variant :
       {core::EddVariant::Basic, core::EddVariant::Enhanced}) {
    std::vector<core::DistSolve> runs;
    for (const KernelOptions& ko : kernel_configs()) {
      core::SolveOptions opts;
      opts.tol = 1e-8;
      opts.kernels = ko;
      runs.push_back(solve_edd(part, prob.load, poly, opts, variant));
      ASSERT_TRUE(runs.back().converged);
    }
    const core::DistSolve& ref = runs.front();
    for (std::size_t r = 1; r < runs.size(); ++r) {
      EXPECT_EQ(runs[r].iterations, ref.iterations);
      ASSERT_EQ(runs[r].history.size(), ref.history.size());
      for (std::size_t i = 0; i < ref.history.size(); ++i)
        ASSERT_EQ(runs[r].history[i], ref.history[i]) << "iteration " << i;
      ASSERT_EQ(runs[r].x.size(), ref.x.size());
      for (std::size_t i = 0; i < ref.x.size(); ++i)
        ASSERT_EQ(runs[r].x[i], ref.x[i]) << "dof " << i;
      // Overlap restructures each exchange but never adds or drops one.
      ASSERT_EQ(runs[r].rank_counters.size(), ref.rank_counters.size());
      for (std::size_t s = 0; s < ref.rank_counters.size(); ++s)
        EXPECT_EQ(runs[r].rank_counters[s].neighbor_exchanges,
                  ref.rank_counters[s].neighbor_exchanges);
    }
  }
}

TEST(DistKernels, SolveEddCgBitNeutralAcrossKernelConfigs) {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 3);
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 3;

  std::vector<core::DistSolve> runs;
  for (const KernelOptions& ko : kernel_configs()) {
    core::SolveOptions opts;
    opts.tol = 1e-8;
    opts.kernels = ko;
    runs.push_back(core::solve_edd_cg(part, prob.load, poly, opts));
    ASSERT_TRUE(runs.back().converged);
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].history.size(), runs[0].history.size());
    for (std::size_t i = 0; i < runs[0].history.size(); ++i)
      ASSERT_EQ(runs[r].history[i], runs[0].history[i]);
    for (std::size_t i = 0; i < runs[0].x.size(); ++i)
      ASSERT_EQ(runs[r].x[i], runs[0].x[i]);
  }
}

TEST(DistKernels, BatchSolveBitNeutralAcrossKernelConfigs) {
  fem::CantileverSpec spec;
  spec.nx = 9;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const int p = 3;
  const partition::EddPartition part = exp::make_edd(prob, p);
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 3;

  std::vector<Vector> rhs;
  rhs.push_back(Vector(prob.load.begin(), prob.load.end()));
  rhs.push_back(test_vector(prob.load.size(), 47));

  par::Team team(p);
  std::vector<core::BatchSolveResult> runs;
  for (const KernelOptions& ko : kernel_configs()) {
    core::SolveOptions opts;
    opts.tol = 1e-8;
    opts.kernels = ko;
    const core::EddOperatorState op =
        core::build_edd_operator(team, part, poly, nullptr, nullptr, ko);
    runs.push_back(core::solve_edd_batch(team, part, op, rhs, opts));
    ASSERT_TRUE(runs.back().comm_error.empty());
    for (const auto& item : runs.back().items)
      ASSERT_TRUE(item.converged);
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].x.size(), runs[0].x.size());
    for (std::size_t b = 0; b < runs[0].x.size(); ++b) {
      for (std::size_t i = 0; i < runs[0].x[b].size(); ++i)
        ASSERT_EQ(runs[r].x[b][i], runs[0].x[b][i])
            << "rhs " << b << " dof " << i;
      ASSERT_EQ(runs[r].items[b].history.size(),
                runs[0].items[b].history.size());
      for (std::size_t i = 0; i < runs[0].items[b].history.size(); ++i)
        ASSERT_EQ(runs[r].items[b].history[i],
                  runs[0].items[b].history[i]);
    }
  }
}

// ---- EbeStore: the matrix-free element container under Format::Ebe.
// Bit-identity with assembled CSR cannot hold for a general mesh (the
// element sweep reassociates row sums), so the exact tests use shapes
// where the accumulation order coincides — a single dense element — and
// the distributed tests check the format-neutral invariants instead:
// identical iteration counts, identical exchange counters, ulp-bounded
// solutions.

/// One dense element covering every dof: the EBE sweep's per-row
/// accumulation runs in ascending column order, exactly like the CSR row
/// loop, so apply and scaling must match bit for bit.
sparse::EbeStore dense_single_element(const la::DenseMatrix& ke) {
  IndexVector ids(static_cast<std::size_t>(ke.rows()));
  for (index_t i = 0; i < ke.rows(); ++i)
    ids[static_cast<std::size_t>(i)] = i;
  const auto data = ke.data();
  return sparse::EbeStore(ke.rows(), ke.rows(), std::move(ids),
                          std::vector<real_t>(data.begin(), data.end()));
}

la::DenseMatrix dense_test_matrix(index_t n, std::uint64_t seed) {
  la::DenseMatrix m(n, n);
  const Vector v = test_vector(static_cast<std::size_t>(n) *
                                   static_cast<std::size_t>(n),
                               seed);
  for (index_t r = 0; r < n; ++r)
    for (index_t c = 0; c < n; ++c)
      m(r, c) = v[static_cast<std::size_t>(r) * n + c] +
                (r == c ? 10.0 : 0.0);
  return m;
}

CsrMatrix csr_from_dense(const la::DenseMatrix& m) {
  const index_t n = m.rows();
  IndexVector rp(static_cast<std::size_t>(n) + 1, 0);
  IndexVector ci;
  Vector vals;
  for (index_t r = 0; r < n; ++r) {
    for (index_t c = 0; c < n; ++c) {
      ci.push_back(c);
      vals.push_back(m(r, c));
    }
    rp[static_cast<std::size_t>(r) + 1] = as_index(ci.size());
  }
  return CsrMatrix(n, n, std::move(rp), std::move(ci), std::move(vals));
}

TEST(EbeStore, SingleDenseElementApplyBitIdenticalToCsr) {
  const index_t n = 12;
  const la::DenseMatrix ke = dense_test_matrix(n, 53);
  const sparse::EbeStore store = dense_single_element(ke);
  const CsrMatrix a = csr_from_dense(ke);
  const Vector x = test_vector(static_cast<std::size_t>(n), 59);
  Vector y_ref(static_cast<std::size_t>(n), 0.0);
  a.spmv(x, y_ref);
  Vector y(static_cast<std::size_t>(n), 0.0);
  store.apply_add(0, store.num_elems(), x, y);
  for (std::size_t i = 0; i < y.size(); ++i) ASSERT_EQ(y[i], y_ref[i]);
}

TEST(EbeStore, ScaleFoldBitIdenticalToCsrScaleSymmetric) {
  const index_t n = 9;
  const la::DenseMatrix ke = dense_test_matrix(n, 61);
  sparse::EbeStore store = dense_single_element(ke);
  CsrMatrix a = csr_from_dense(ke);
  Vector d = a.row_norms1();
  for (auto& v : d) v = 1.0 / std::sqrt(v);
  a.scale_symmetric(d);
  store.scale_symmetric(d);
  const auto ref = a.values();
  const auto got = store.values();
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k)
    ASSERT_EQ(got[k], ref[k]) << "entry " << k;
}

TEST(EbeStore, ConstructionRejectsMalformedInput) {
  // edofs outside [1, kMaxEbeElemDofs].
  EXPECT_THROW(sparse::EbeStore(4, 0, IndexVector{}, {}), Error);
  EXPECT_THROW(sparse::EbeStore(4, sparse::kMaxEbeElemDofs + 1,
                                IndexVector{}, {}),
               Error);
  // dof_ids not a multiple of edofs.
  EXPECT_THROW(sparse::EbeStore(4, 2, IndexVector{0, 1, 2}, Vector(4, 0.0)),
               Error);
  // values size mismatch.
  EXPECT_THROW(sparse::EbeStore(4, 2, IndexVector{0, 1}, Vector(3, 0.0)),
               Error);
  // Out-of-bounds dof id, and an id below the -1 marker.
  EXPECT_THROW(sparse::EbeStore(4, 2, IndexVector{0, 4}, Vector(4, 0.0)),
               Error);
  EXPECT_THROW(sparse::EbeStore(4, 2, IndexVector{0, -2}, Vector(4, 0.0)),
               Error);
  // Valid: constrained markers and an empty store.
  EXPECT_NO_THROW(sparse::EbeStore(4, 2, IndexVector{-1, 3}, Vector(4, 1.0)));
  EXPECT_NO_THROW(sparse::EbeStore(0, 2, IndexVector{}, {}));
}

TEST(EbeStore, PermutedRejectsNonPermutations) {
  const la::DenseMatrix ke = dense_test_matrix(3, 67);
  const sparse::EbeStore store = dense_single_element(ke);
  const IndexVector dup = {0, 0};
  const IndexVector oob = {1};
  EXPECT_THROW((void)store.permuted(dup), Error);
  EXPECT_THROW((void)store.permuted(oob), Error);
  const IndexVector id_order = {0};
  const sparse::EbeStore same = store.permuted(id_order);
  EXPECT_EQ(same.num_elems(), store.num_elems());
}

// ---- RankKernel Format::Ebe: built from a real partition's element
// store, checked against the scalar-CSR kernel.

struct EbeFixture {
  fem::CantileverProblem prob;
  partition::EddPartition part;
  EbeFixture() : prob(fem::make_cantilever(make_spec())),
                 part(exp::make_edd(prob, 4)) {}
  static fem::CantileverSpec make_spec() {
    fem::CantileverSpec s;
    s.nx = 10;
    s.ny = 5;
    return s;
  }
};

/// Local positive scaling for kernel-level tests (the solver's d is
/// globally exchanged; any positive diagonal exercises the contract).
Vector local_scaling(const CsrMatrix& k) {
  Vector d = k.row_norms1();
  for (auto& v : d) v = v > 0.0 ? 1.0 / std::sqrt(v) : 1.0;
  return d;
}

TEST(RankKernelEbe, HalvesComposeBitwiseToWholeApply) {
  const EbeFixture fx;
  for (const auto& sub : fx.part.subs) {
    ASSERT_NE(sub.elem_store, nullptr);
    const Vector d = local_scaling(sub.k_loc);
    KernelOptions ko;
    ko.format = KernelOptions::Format::Ebe;
    ko.overlap = true;
    const RankKernel a(sub.k_loc, Vector(d), sub.interface_local_dofs, ko,
                       sub.elem_store.get());
    ASSERT_TRUE(a.additive());
    const std::size_t n = static_cast<std::size_t>(sub.n_local());
    const Vector x = test_vector(n, 71);
    Vector y_whole(n, 0.0), y_split(n, 0.0);
    a.apply(x, y_whole);
    // Elements are stored [coupled | interior], so the Enhanced-order
    // split (coupled first) replays apply()'s scatter-add order exactly.
    la::fill(y_split, 0.0);
    a.apply_coupled(x, y_split);
    a.apply_interior(x, y_split);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y_split[i], y_whole[i]);
  }
}

TEST(RankKernelEbe, ApplyMatchesCsrWithinUlpBound) {
  const EbeFixture fx;
  for (const auto& sub : fx.part.subs) {
    const Vector d = local_scaling(sub.k_loc);
    KernelOptions csr;
    csr.format = KernelOptions::Format::Csr;
    csr.overlap = false;
    const RankKernel ref(sub.k_loc, Vector(d), sub.interface_local_dofs,
                         csr);
    KernelOptions ebe;
    ebe.format = KernelOptions::Format::Ebe;
    ebe.overlap = false;
    const RankKernel a(sub.k_loc, Vector(d), sub.interface_local_dofs, ebe,
                       sub.elem_store.get());
    EXPECT_EQ(a.apply_flops(), sub.elem_store->apply_flops());
    const std::size_t n = static_cast<std::size_t>(sub.n_local());
    const Vector x = test_vector(n, 73);
    Vector y_ref(n, 0.0), y(n, 0.0);
    ref.apply(x, y_ref);
    a.apply(x, y);
    // Reassociation bound: the element sweep and the row loop agree to a
    // few ulps of the row magnitude Σ|v_k x_k| — 1e-13 relative covers
    // the handful of contributing elements per row with a wide margin.
    real_t scale = 1.0;
    for (std::size_t i = 0; i < n; ++i)
      scale = std::max(scale, std::abs(y_ref[i]));
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(y[i], y_ref[i], 1e-13 * scale) << "dof " << i;
  }
}

TEST(RankKernelEbe, ApplyManyBitIdenticalToPerLaneApply) {
  const EbeFixture fx;
  const auto& sub = fx.part.subs.front();
  const Vector d = local_scaling(sub.k_loc);
  KernelOptions ko;
  ko.format = KernelOptions::Format::Ebe;
  ko.overlap = true;
  const RankKernel a(sub.k_loc, Vector(d), sub.interface_local_dofs, ko,
                     sub.elem_store.get());
  const std::size_t n = static_cast<std::size_t>(sub.n_local());
  std::vector<Vector> xs = {test_vector(n, 79), test_vector(n, 83),
                            test_vector(n, 89)};
  std::vector<Vector> ys(xs.size(), Vector(n));
  std::vector<const Vector*> xp;
  std::vector<Vector*> yp;
  for (std::size_t b = 0; b < xs.size(); ++b) {
    xp.push_back(&xs[b]);
    yp.push_back(&ys[b]);
  }
  a.apply_many(xp, yp);
  // The element-major sweep runs each lane through the identical
  // per-element gather/multiply/scatter order as a standalone apply.
  for (std::size_t b = 0; b < xs.size(); ++b) {
    Vector y_one(n, 0.0);
    a.apply(xs[b], y_one);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(ys[b][i], y_one[i]);
  }
}

TEST(RankKernelEbe, TypedErrorsWithoutElementData) {
  const EbeFixture fx;
  const auto& sub = fx.part.subs.front();
  const Vector d = local_scaling(sub.k_loc);
  KernelOptions ko;
  ko.format = KernelOptions::Format::Ebe;
  // No element store: typed error, not UB.
  EXPECT_THROW(RankKernel(sub.k_loc, Vector(d), sub.interface_local_dofs,
                          ko, nullptr),
               Error);
  // from_scaled cannot serve the matrix-free format at all.
  CsrMatrix scaled = sub.k_loc;
  scaled.scale_symmetric(d);
  EXPECT_THROW(
      (void)RankKernel::from_scaled(&scaled, sub.interface_local_dofs, ko),
      Error);
}

// ---- Distributed Format::Ebe: the format must preserve the solver's
// observable contract — iteration counts, exchange counters, convergence
// — against the Csr reference, and the Enhanced discipline must be
// bit-neutral in the overlap knob (its split replays apply()'s order).

std::vector<KernelOptions> ebe_configs() {
  std::vector<KernelOptions> cfgs;
  for (const bool overlap : {false, true}) {
    KernelOptions ko;
    ko.format = KernelOptions::Format::Ebe;
    ko.overlap = overlap;
    cfgs.push_back(ko);
  }
  return cfgs;
}

TEST(DistKernelsEbe, SolveEddPreservesIterationsAndExchangeCounts) {
  const EbeFixture fx;
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 3;

  for (const auto variant :
       {core::EddVariant::Basic, core::EddVariant::Enhanced}) {
    core::SolveOptions ref_opts;
    ref_opts.tol = 1e-8;
    ref_opts.kernels.format = KernelOptions::Format::Csr;
    ref_opts.kernels.overlap = false;
    const core::DistSolve ref =
        solve_edd(fx.part, fx.prob.load, poly, ref_opts, variant);
    ASSERT_TRUE(ref.converged);

    const real_t xscale = la::nrm_inf(ref.x);
    for (const KernelOptions& ko : ebe_configs()) {
      core::SolveOptions opts;
      opts.tol = 1e-8;
      opts.kernels = ko;
      const core::DistSolve run =
          solve_edd(fx.part, fx.prob.load, poly, opts, variant);
      ASSERT_TRUE(run.converged);
      // The format-neutral contract: same iteration trajectory length
      // and the Table-1 exchange counts untouched.
      EXPECT_EQ(run.iterations, ref.iterations);
      EXPECT_EQ(run.history.size(), ref.history.size());
      ASSERT_EQ(run.rank_counters.size(), ref.rank_counters.size());
      for (std::size_t s = 0; s < ref.rank_counters.size(); ++s)
        EXPECT_EQ(run.rank_counters[s].neighbor_exchanges,
                  ref.rank_counters[s].neighbor_exchanges)
            << "rank " << s;
      // Solutions agree to the reassociation ulp bound.
      ASSERT_EQ(run.x.size(), ref.x.size());
      for (std::size_t i = 0; i < ref.x.size(); ++i)
        ASSERT_NEAR(run.x[i], ref.x[i], 1e-8 * xscale) << "dof " << i;
    }
  }
}

TEST(DistKernelsEbe, EnhancedOverlapIsBitNeutral) {
  const EbeFixture fx;
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 3;

  std::vector<core::DistSolve> runs;
  for (const KernelOptions& ko : ebe_configs()) {
    core::SolveOptions opts;
    opts.tol = 1e-8;
    opts.kernels = ko;
    runs.push_back(solve_edd(fx.part, fx.prob.load, poly, opts,
                             core::EddVariant::Enhanced));
    ASSERT_TRUE(runs.back().converged);
  }
  // Enhanced splits coupled-then-interior — the stored element order —
  // so turning overlap on must not move a single bit.  (Basic's split
  // runs interior first, a different scatter-add order, so it is only
  // ulp-close; the iteration/exchange contract above covers it.)
  const core::DistSolve& ref = runs.front();
  for (std::size_t r = 1; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].iterations, ref.iterations);
    ASSERT_EQ(runs[r].history.size(), ref.history.size());
    for (std::size_t i = 0; i < ref.history.size(); ++i)
      ASSERT_EQ(runs[r].history[i], ref.history[i]) << "iteration " << i;
    ASSERT_EQ(runs[r].x.size(), ref.x.size());
    for (std::size_t i = 0; i < ref.x.size(); ++i)
      ASSERT_EQ(runs[r].x[i], ref.x[i]) << "dof " << i;
  }
}

TEST(DistKernelsEbe, SolveEddCgPreservesConvergence) {
  const EbeFixture fx;
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 3;

  core::SolveOptions ref_opts;
  ref_opts.tol = 1e-8;
  ref_opts.kernels.format = KernelOptions::Format::Csr;
  ref_opts.kernels.overlap = false;
  const core::DistSolve ref =
      core::solve_edd_cg(fx.part, fx.prob.load, poly, ref_opts);
  ASSERT_TRUE(ref.converged);
  const real_t xscale = la::nrm_inf(ref.x);

  for (const KernelOptions& ko : ebe_configs()) {
    core::SolveOptions opts;
    opts.tol = 1e-8;
    opts.kernels = ko;
    const core::DistSolve run =
        core::solve_edd_cg(fx.part, fx.prob.load, poly, opts);
    ASSERT_TRUE(run.converged);
    EXPECT_EQ(run.iterations, ref.iterations);
    for (std::size_t i = 0; i < ref.x.size(); ++i)
      ASSERT_NEAR(run.x[i], ref.x[i], 1e-8 * xscale) << "dof " << i;
  }
}

TEST(DistKernelsEbe, BatchSolvePreservesConvergence) {
  const EbeFixture fx;
  const int p = fx.part.nparts();
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 3;

  std::vector<Vector> rhs;
  rhs.push_back(Vector(fx.prob.load.begin(), fx.prob.load.end()));
  rhs.push_back(test_vector(fx.prob.load.size(), 97));

  par::Team team(p);
  core::SolveOptions ref_opts;
  ref_opts.tol = 1e-8;
  ref_opts.kernels.format = KernelOptions::Format::Csr;
  ref_opts.kernels.overlap = false;
  const core::EddOperatorState ref_op = core::build_edd_operator(
      team, fx.part, poly, nullptr, nullptr, ref_opts.kernels);
  const core::BatchSolveResult ref =
      core::solve_edd_batch(team, fx.part, ref_op, rhs, ref_opts);
  ASSERT_TRUE(ref.comm_error.empty());

  std::vector<core::BatchSolveResult> runs;
  for (const KernelOptions& ko : ebe_configs()) {
    core::SolveOptions opts;
    opts.tol = 1e-8;
    opts.kernels = ko;
    const core::EddOperatorState op =
        core::build_edd_operator(team, fx.part, poly, nullptr, nullptr, ko);
    runs.push_back(core::solve_edd_batch(team, fx.part, op, rhs, opts));
    ASSERT_TRUE(runs.back().comm_error.empty());
  }
  for (std::size_t r = 0; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].items.size(), ref.items.size());
    for (std::size_t b = 0; b < ref.items.size(); ++b) {
      ASSERT_TRUE(runs[r].items[b].converged);
      EXPECT_EQ(runs[r].items[b].iterations, ref.items[b].iterations)
          << "rhs " << b;
      real_t xscale = 1.0;
      for (const real_t v : ref.x[b]) xscale = std::max(xscale, std::abs(v));
      for (std::size_t i = 0; i < ref.x[b].size(); ++i)
        ASSERT_NEAR(runs[r].x[b][i], ref.x[b][i], 1e-8 * xscale)
            << "rhs " << b << " dof " << i;
    }
  }
  // The batch split order (coupled before interior) equals the stored
  // element order, so the Ebe batch is bit-neutral in the overlap knob.
  for (std::size_t b = 0; b < rhs.size(); ++b)
    for (std::size_t i = 0; i < runs[0].x[b].size(); ++i)
      ASSERT_EQ(runs[1].x[b][i], runs[0].x[b][i])
          << "rhs " << b << " dof " << i;
}

TEST(DistKernelsEbe, LocalMatrixOverrideIsRejected) {
  const EbeFixture fx;
  core::PolySpec poly;
  poly.kind = core::PolyKind::None;
  core::SolveOptions opts;
  opts.kernels.format = KernelOptions::Format::Ebe;
  std::vector<CsrMatrix> override_mats;
  for (const auto& sub : fx.part.subs) override_mats.push_back(sub.k_loc);
  EXPECT_THROW((void)solve_edd(fx.part, fx.prob.load, poly, opts,
                               core::EddVariant::Enhanced, &override_mats),
               Error);
  EXPECT_THROW((void)core::solve_edd_cg(fx.part, fx.prob.load, poly, opts,
                                        &override_mats),
               Error);
  par::Team team(fx.part.nparts());
  EXPECT_THROW((void)core::build_edd_operator(team, fx.part, poly,
                                              &override_mats, nullptr,
                                              opts.kernels),
               Error);
}

// ---- Acceptance (ISSUE 9): Format::Ebe solves the paper's Table-2
// meshes through both EDD disciplines with iteration counts and
// per-rank exchange counts identical to Format::Csr.

TEST(DistKernelsEbe, Table2MeshesMatchCsrIterationForIteration) {
  for (const int mesh_number : {1, 2}) {
    const fem::CantileverProblem prob =
        fem::make_table2_cantilever(mesh_number);
    const int p = mesh_number == 1 ? 2 : 4;
    const partition::EddPartition part = exp::make_edd(prob, p);
    core::PolySpec poly;
    poly.kind = core::PolyKind::Gls;
    poly.degree = 3;

    for (const auto variant :
         {core::EddVariant::Basic, core::EddVariant::Enhanced}) {
      core::SolveOptions copts;
      copts.tol = 1e-8;
      copts.kernels.format = KernelOptions::Format::Csr;
      const core::DistSolve csr =
          solve_edd(part, prob.load, poly, copts, variant);
      ASSERT_TRUE(csr.converged);

      core::SolveOptions eopts;
      eopts.tol = 1e-8;
      eopts.kernels.format = KernelOptions::Format::Ebe;
      const core::DistSolve ebe =
          solve_edd(part, prob.load, poly, eopts, variant);
      ASSERT_TRUE(ebe.converged);

      EXPECT_EQ(ebe.iterations, csr.iterations)
          << "Mesh" << mesh_number << " variant "
          << (variant == core::EddVariant::Basic ? "Basic" : "Enhanced");
      EXPECT_EQ(ebe.restarts, csr.restarts);
      ASSERT_EQ(ebe.rank_counters.size(), csr.rank_counters.size());
      for (std::size_t s = 0; s < csr.rank_counters.size(); ++s)
        EXPECT_EQ(ebe.rank_counters[s].neighbor_exchanges,
                  csr.rank_counters[s].neighbor_exchanges)
            << "rank " << s;
    }
  }
}

// ---- Regression (satellite bugfix): a right-hand side small enough
// that Arnoldi/CG inner products underflow into the sqrt_nonneg clamp
// region must terminate cleanly (converged, finite solution), never
// divide by a clamped-to-zero norm.

TEST(ArnoldiUnderflow, TinyRhsTerminatesCleanlyAndConverges) {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 3);
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 3;
  core::SolveOptions opts;
  opts.tol = 1e-6;

  // Reference at normal scale.
  const core::DistSolve ref = solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(ref.converged);

  // ~1e-160 scaling: residual norms sit near 1e-160, so every squared
  // inner product (~1e-320) is subnormal and the clamp is live.
  const real_t scale = 1e-160;
  Vector f_tiny(prob.load.size());
  for (std::size_t i = 0; i < f_tiny.size(); ++i)
    f_tiny[i] = scale * prob.load[i];

  const core::DistSolve tiny = solve_edd(part, f_tiny, poly, opts);
  ASSERT_TRUE(tiny.converged);
  const real_t xref = la::nrm_inf(ref.x);
  for (std::size_t i = 0; i < tiny.x.size(); ++i) {
    ASSERT_TRUE(std::isfinite(tiny.x[i]));
    // The solve is not exactly scale-equivariant in the subnormal range
    // (squared inner products lose bits there), but the solution must
    // still track the scaled reference to a few digits.
    ASSERT_NEAR(tiny.x[i], scale * ref.x[i], 1e-2 * scale * xref);
  }

  // CG's rho quotients keep fewer bits than Arnoldi norms, so probe it a
  // little above the FGMRES scale — squared inner products (~1e-310) are
  // still subnormal, which is the clamp region under test.
  Vector f_cg(prob.load.size());
  for (std::size_t i = 0; i < f_cg.size(); ++i)
    f_cg[i] = 1e-155 * prob.load[i];
  const core::DistSolve cg = core::solve_edd_cg(part, f_cg, poly, opts);
  ASSERT_TRUE(cg.converged);
  for (std::size_t i = 0; i < cg.x.size(); ++i)
    ASSERT_TRUE(std::isfinite(cg.x[i]));
}

TEST(ArnoldiUnderflow, InvalidSolveOptionsAreRejected) {
  fem::CantileverSpec spec;
  spec.nx = 4;
  spec.ny = 2;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 2);
  core::PolySpec poly;
  poly.kind = core::PolyKind::None;
  core::SolveOptions bad;
  bad.tol = 0.0;  // would defeat every convergence guard
  EXPECT_THROW((void)solve_edd(part, prob.load, poly, bad), Error);
  bad.tol = 1e-6;
  bad.restart = 0;
  EXPECT_THROW((void)solve_edd(part, prob.load, poly, bad), Error);
}

}  // namespace
}  // namespace pfem
