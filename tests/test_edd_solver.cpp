// Parallel EDD-FGMRES tests (Algorithms 5/6): correctness against
// sequential references across process counts, variants and
// preconditioners, plus the Table-1 per-iteration communication counts.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {
namespace {

fem::CantileverProblem test_problem() {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  return fem::make_cantilever(spec);
}

Vector reference_solution(const fem::CantileverProblem& prob) {
  Vector x(prob.load.size(), 0.0);
  Ilu0Precond ilu(prob.stiffness);
  SolveOptions opts;
  opts.tol = 1e-12;
  opts.max_iters = 50000;
  const SolveReport res = fgmres(prob.stiffness, prob.load, x, ilu, opts);
  EXPECT_TRUE(res.converged);
  return x;
}

using EddCase = std::tuple<int, EddVariant, PolyKind>;

class EddSolverTest : public ::testing::TestWithParam<EddCase> {};

TEST_P(EddSolverTest, MatchesSequentialSolution) {
  const auto [nparts, variant, kind] = GetParam();
  const fem::CantileverProblem prob = test_problem();
  const Vector x_ref = reference_solution(prob);

  const partition::EddPartition part = exp::make_edd(prob, nparts);
  PolySpec poly;
  poly.kind = kind;
  poly.degree = kind == PolyKind::Neumann ? 15 : 7;
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 50000;
  const DistSolve res =
      solve_edd(part, prob.load, poly, opts, variant);
  ASSERT_TRUE(res.converged);
  // Classical Gram-Schmidt (the paper's choice) loses a couple of digits
  // of the Givens-tracked residual at tolerances this far below the
  // paper's 1e-6; accept a small gap on the true residual.
  EXPECT_LE(res.final_relres, 1e-7);
  ASSERT_EQ(res.x.size(), x_ref.size());
  const real_t scale = la::nrm_inf(x_ref);
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale) << "dof " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EddSolverTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(EddVariant::Basic,
                                         EddVariant::Enhanced),
                       ::testing::Values(PolyKind::None, PolyKind::Neumann,
                                         PolyKind::Gls)),
    [](const ::testing::TestParamInfo<EddCase>& info) {
      std::string name = "P" + std::to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) == EddVariant::Basic ? "_Basic"
                                                           : "_Enhanced";
      const PolyKind kind = std::get<2>(info.param);
      name += kind == PolyKind::None
                  ? "_none"
                  : (kind == PolyKind::Neumann ? "_Neumann" : "_GLS");
      return name;
    });

TEST(EddSolver, BasicAndEnhancedAgreeOnIterations) {
  // Same partition, same scaling, same polynomial: the two variants are
  // algebraically identical and must take (nearly) the same iterations.
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 5;
  SolveOptions opts;
  opts.tol = 1e-8;
  const DistSolve basic =
      solve_edd(part, prob.load, poly, opts, EddVariant::Basic);
  const DistSolve enhanced =
      solve_edd(part, prob.load, poly, opts, EddVariant::Enhanced);
  ASSERT_TRUE(basic.converged && enhanced.converged);
  EXPECT_NEAR(static_cast<double>(basic.iterations),
              static_cast<double>(enhanced.iterations), 2.0);
}

/// Per-iteration counter deltas measured by running the same solve with
/// max_iters = n and n+1 at an unreachable tolerance — everything outside
/// the extra inner iteration cancels.
par::PerfCounters per_iteration_delta(const partition::EddPartition& part,
                                      const Vector& f, const PolySpec& poly,
                                      EddVariant variant, index_t n) {
  SolveOptions opts;
  opts.tol = 1e-300;
  opts.restart = 25;
  opts.max_iters = n;
  const DistSolve a = solve_edd(part, f, poly, opts, variant);
  opts.max_iters = n + 1;
  const DistSolve b = solve_edd(part, f, poly, opts, variant);
  return b.rank_counters[0].delta_since(a.rank_counters[0]);
}

class EddTable1Test : public ::testing::TestWithParam<int> {};

TEST_P(EddTable1Test, ExchangesPerIterationMatchTable1) {
  // Paper Table 1: per Arnoldi iteration, Algorithm 5 does m+3 nearest-
  // neighbor exchanges, Algorithm 6 does m+1 (m = polynomial degree).
  const int m = GetParam();
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.kind = PolyKind::Gls;
  poly.degree = m;

  const par::PerfCounters basic =
      per_iteration_delta(part, prob.load, poly, EddVariant::Basic, 3);
  EXPECT_EQ(basic.neighbor_exchanges, static_cast<std::uint64_t>(m) + 3);
  EXPECT_EQ(basic.matvecs, static_cast<std::uint64_t>(m) + 1);

  const par::PerfCounters enhanced =
      per_iteration_delta(part, prob.load, poly, EddVariant::Enhanced, 3);
  EXPECT_EQ(enhanced.neighbor_exchanges, static_cast<std::uint64_t>(m) + 1);
  EXPECT_EQ(enhanced.matvecs, static_cast<std::uint64_t>(m) + 1);

  // Per the paper: one global reduction per h_ij plus one for the norm —
  // the 4th inner iteration (j = 3) performs 4 + 1 = 5.
  EXPECT_EQ(basic.global_reductions, 5u);
  EXPECT_EQ(enhanced.global_reductions, 5u);
}

INSTANTIATE_TEST_SUITE_P(Degrees, EddTable1Test, ::testing::Values(1, 3, 7));

TEST(EddSolver, NeumannExchangeCountMatchesToo) {
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 2);
  PolySpec poly;
  poly.kind = PolyKind::Neumann;
  poly.degree = 6;
  const par::PerfCounters d =
      per_iteration_delta(part, prob.load, poly, EddVariant::Enhanced, 2);
  EXPECT_EQ(d.neighbor_exchanges, 7u);
  EXPECT_EQ(d.matvecs, 7u);
}

TEST(EddSolver, SingleRankDoesNoMessaging) {
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 1);
  PolySpec poly;
  poly.degree = 7;
  const DistSolve res = solve_edd(part, prob.load, poly);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.rank_counters[0].neighbor_msgs, 0u);
  EXPECT_EQ(res.rank_counters[0].neighbor_bytes, 0u);
}

TEST(EddSolver, HigherDegreeReducesIterations) {
  // Fig. 13 behaviour on a small problem: GLS(10) needs fewer Arnoldi
  // iterations than GLS(1).
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 2);
  SolveOptions opts;
  opts.tol = 1e-6;
  PolySpec lo;
  lo.degree = 1;
  PolySpec hi;
  hi.degree = 10;
  const DistSolve r_lo = solve_edd(part, prob.load, lo, opts);
  const DistSolve r_hi = solve_edd(part, prob.load, hi, opts);
  ASSERT_TRUE(r_lo.converged && r_hi.converged);
  EXPECT_LT(r_hi.iterations, r_lo.iterations);
}

TEST(EddSolver, LocalMatrixOverrideSolvesEffectiveSystem) {
  // Override k_loc with K + a0*M subdomain matrices and verify the
  // solution solves the global effective system.
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 3);
  const real_t a0 = 12.5;

  std::vector<sparse::CsrMatrix> eff;
  for (int s = 0; s < part.nparts(); ++s) {
    sparse::CsrMatrix ke = part.subs[static_cast<std::size_t>(s)].k_loc;
    const sparse::CsrMatrix ml = partition::assemble_edd_local(
        prob.mesh, prob.dofs, prob.material, fem::Operator::Mass, part, s);
    ke.add_same_pattern(ml, a0);
    eff.push_back(std::move(ke));
  }

  PolySpec poly;
  poly.degree = 5;
  SolveOptions opts;
  opts.tol = 1e-10;
  const DistSolve res = solve_edd(part, prob.load, poly, opts,
                                        EddVariant::Enhanced, &eff);
  ASSERT_TRUE(res.converged);

  sparse::CsrMatrix k_eff = prob.stiffness;
  k_eff.add_same_pattern(prob.assemble_mass(), a0);
  Vector check(res.x.size());
  k_eff.spmv(res.x, check);
  const real_t fscale = la::nrm_inf(prob.load);
  for (std::size_t i = 0; i < check.size(); ++i)
    EXPECT_NEAR(check[i], prob.load[i], 1e-6 * fscale);
}

TEST(EddSolver, ThetaSensitivityAffectsConvergence) {
  // Fig. 10: a Θ that misses the actual spectrum degrades convergence
  // relative to Θ = (ε, 1).
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 2);
  SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 20000;

  PolySpec good;
  good.degree = 10;  // Θ defaults to (ε, 1)
  PolySpec bad;
  bad.degree = 10;
  bad.theta = {{0.5, 1.0}};  // misses the low end of the spectrum
  const DistSolve r_good = solve_edd(part, prob.load, good, opts);
  const DistSolve r_bad = solve_edd(part, prob.load, bad, opts);
  ASSERT_TRUE(r_good.converged);
  ASSERT_TRUE(r_bad.converged);
  EXPECT_LE(r_good.iterations, r_bad.iterations);
}

TEST(EddSolver, RunsAreBitwiseDeterministic) {
  // The deterministic allreduce and the rank-ordered exchange make a
  // distributed solve independent of thread scheduling: two runs must
  // produce bit-identical solutions (the property EDD-PCG relies on).
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 8);
  PolySpec poly;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-9;
  const DistSolve a = solve_edd(part, prob.load, poly, opts);
  const DistSolve b = solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_EQ(a.x[i], b.x[i]) << "bitwise mismatch at dof " << i;
}

// ---- Honest report semantics -----------------------------------------

TEST(EddSolverReport, FirstCycleConvergenceReportsZeroRestarts) {
  // A solve that converges inside its first FGMRES cycle never
  // *re*-started; it must report restarts == 0 (it used to report 1).
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 2);
  PolySpec poly;
  poly.degree = 10;
  SolveOptions opts;
  opts.tol = 1e-6;
  opts.restart = 200;  // plenty of room to finish in one cycle
  const DistSolve res = solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_LE(res.iterations, 200);
  EXPECT_EQ(res.restarts, 0);
  EXPECT_FALSE(res.breakdown);
  EXPECT_FALSE(res.trivial_rhs);
}

TEST(EddSolverReport, MultiCycleSolveCountsOnlyReStarts) {
  // With restart = 2 a real solve needs several cycles; restarts must be
  // exactly ceil(iterations / 2) - 1, not one more.
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 2);
  PolySpec poly;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-8;
  opts.restart = 2;
  opts.max_iters = 50000;
  const DistSolve res = solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_GT(res.iterations, 2);
  EXPECT_EQ(res.restarts, (res.iterations - 1) / 2);
}

TEST(EddSolverReport, ZeroRhsIsTrivialNotIterated) {
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 2);
  const Vector zero(prob.load.size(), 0.0);
  PolySpec poly;
  const DistSolve res = solve_edd(part, zero, poly);
  EXPECT_TRUE(res.converged);  // x = 0 is exact
  EXPECT_TRUE(res.trivial_rhs);
  EXPECT_FALSE(res.breakdown);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_EQ(res.restarts, 0);
  EXPECT_EQ(res.final_relres, 0.0);
  for (const real_t xi : res.x) EXPECT_EQ(xi, 0.0);
}

TEST(EddSolverReport, RankDeficientBreakdownIsNotConvergence) {
  // K = [[1,1],[1,1]] is singular with b = (1,0) having a component in
  // the null space: the Arnoldi space is exhausted at iteration 2 with
  // the residual stuck near 1/sqrt(2).  The old report called that
  // "converged"; now it must say breakdown = true, converged = false.
  partition::EddPartition part;
  part.n_global = 2;
  partition::EddSubdomain sub;
  sub.local_to_global = {0, 1};
  sub.k_loc = sparse::CsrMatrix(2, 2, {0, 2, 4}, {0, 1, 0, 1},
                                {1.0, 1.0, 1.0, 1.0});
  sub.multiplicity = {1, 1};
  part.subs.push_back(std::move(sub));

  const Vector b = {1.0, 0.0};
  PolySpec poly;
  poly.kind = PolyKind::None;
  SolveOptions opts;
  opts.tol = 1e-8;
  const DistSolve res = solve_edd(part, b, poly, opts);
  EXPECT_TRUE(res.breakdown);
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.final_relres, 0.5);  // ~0.707, nowhere near the tol
  EXPECT_EQ(res.iterations, 2);
}

TEST(EddSolverReport, LuckyBreakdownStillReportsConvergence) {
  // On a consistent system an Arnoldi breakdown means the exact solution
  // was found: breakdown and converged are then both true.
  partition::EddPartition part;
  part.n_global = 2;
  partition::EddSubdomain sub;
  sub.local_to_global = {0, 1};
  sub.k_loc = sparse::CsrMatrix(2, 2, {0, 1, 2}, {0, 1}, {2.0, 3.0});
  sub.multiplicity = {1, 1};
  part.subs.push_back(std::move(sub));

  const Vector b = {1.0, 1.0};
  PolySpec poly;
  poly.kind = PolyKind::None;
  SolveOptions opts;
  opts.tol = 1e-12;
  const DistSolve res = solve_edd(part, b, poly, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_LE(res.final_relres, 1e-12);
}

// ---- Two-level subdomain deflation -----------------------------------

TEST(EddDeflation, DeflatedSolveMatchesReference) {
  const fem::CantileverProblem prob = test_problem();
  const Vector x_ref = reference_solution(prob);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.deflation.enabled = true;
  for (const EddVariant variant : {EddVariant::Basic, EddVariant::Enhanced}) {
    const DistSolve res =
        solve_edd(part, prob.load, poly, opts, variant);
    ASSERT_TRUE(res.converged);
    const real_t scale = la::nrm_inf(x_ref);
    for (std::size_t i = 0; i < x_ref.size(); ++i)
      EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale) << "dof " << i;
    for (const auto& c : res.rank_counters)
      EXPECT_GT(c.coarse_solves, 0u);
  }
}

TEST(EddDeflation, DeflatedRunsAreBitwiseDeterministic) {
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 8);
  PolySpec poly;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-9;
  opts.deflation.enabled = true;
  const DistSolve a = solve_edd(part, prob.load, poly, opts);
  const DistSolve b = solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_EQ(a.iterations, b.iterations);
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_EQ(a.x[i], b.x[i]) << "bitwise mismatch at dof " << i;
}

TEST(EddDeflation, PerIterationCostsExtendTable1) {
  // The coarse correction adds, per Arnoldi iteration: ONE small
  // allreduce (the coarse residual) and ONE extra mat-vec (A Z y).  Zy
  // is globally consistent by construction, so the Basic discipline
  // needs no extra exchange (m+3 stays m+3) while Enhanced globalizes
  // its extra mat-vec with one (m+1 becomes m+2).
  const int m = 3;
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.kind = PolyKind::Gls;
  poly.degree = m;

  SolveOptions opts;
  opts.tol = 1e-300;
  opts.restart = 25;
  auto delta = [&](EddVariant variant, index_t n) {
    opts.deflation.enabled = true;
    opts.max_iters = n;
    const DistSolve a = solve_edd(part, prob.load, poly, opts, variant);
    opts.max_iters = n + 1;
    const DistSolve b = solve_edd(part, prob.load, poly, opts, variant);
    return b.rank_counters[0].delta_since(a.rank_counters[0]);
  };

  const par::PerfCounters basic = delta(EddVariant::Basic, 3);
  EXPECT_EQ(basic.neighbor_exchanges, static_cast<std::uint64_t>(m) + 3);
  EXPECT_EQ(basic.matvecs, static_cast<std::uint64_t>(m) + 2);
  EXPECT_EQ(basic.coarse_solves, 1u);
  EXPECT_EQ(basic.global_reductions, 6u);  // 5 (Table 1 at j=3) + coarse

  const par::PerfCounters enhanced = delta(EddVariant::Enhanced, 3);
  EXPECT_EQ(enhanced.neighbor_exchanges, static_cast<std::uint64_t>(m) + 2);
  EXPECT_EQ(enhanced.matvecs, static_cast<std::uint64_t>(m) + 2);
  EXPECT_EQ(enhanced.coarse_solves, 1u);
  EXPECT_EQ(enhanced.global_reductions, 6u);
}

TEST(EddSolver, SetupCountersAreSubsetOfTotals) {
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 7;
  const DistSolve res = solve_edd(part, prob.load, poly);
  ASSERT_EQ(res.setup_counters.size(), res.rank_counters.size());
  for (std::size_t r = 0; r < res.rank_counters.size(); ++r) {
    EXPECT_LE(res.setup_counters[r].flops, res.rank_counters[r].flops);
    EXPECT_LE(res.setup_counters[r].neighbor_exchanges,
              res.rank_counters[r].neighbor_exchanges);
    // Setup performs exactly one exchange (the row-norm sum, Alg. 3).
    EXPECT_EQ(res.setup_counters[r].neighbor_exchanges, 1u);
  }
}

}  // namespace
}  // namespace pfem::core
