// Deterministic fault injection (src/fault) end to end: plan
// generation, the injector's one-shot/replay contract, the runtime's
// channel-level fault hooks and timeouts, typed solver degradation,
// service retry with deterministic backoff, and the seeded chaos sweep
// (ChaosSweep.* — labeled chaos;slow in CMake).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "chaos_harness.hpp"
#include "core/edd_batch.hpp"
#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "fault/fault.hpp"
#include "net/shm.hpp"
#include "net/socket_transport.hpp"
#include "obs/trace.hpp"
#include "par/comm.hpp"
#include "svc/service.hpp"

namespace pfem {
namespace {

using fault::FaultAction;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultSite;
using fault::FaultSpec;
using fault::FaultType;
using fault::Op;
using fault::PlannedFault;

// ------------------------------------------------------------- plan

TEST(FaultPlan, SameSeedSamePlanDifferentSeedDiffers) {
  FaultSpec spec;
  spec.nranks = 4;
  spec.nfaults = 4;
  const FaultPlan a = FaultPlan::generate(17, spec);
  const FaultPlan b = FaultPlan::generate(17, spec);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.describe(), b.describe());
  const FaultPlan c = FaultPlan::generate(18, spec);
  EXPECT_NE(a.faults, c.faults);
}

TEST(FaultPlan, SitesRespectTheSpec) {
  FaultSpec spec;
  spec.nranks = 4;
  spec.nfaults = 6;
  spec.max_seq = 32;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::generate(seed, spec);
    EXPECT_FALSE(plan.faults.empty()) << "seed " << seed;
    for (const PlannedFault& f : plan.faults) {
      EXPECT_GE(f.site.rank, 0);
      EXPECT_LT(f.site.rank, spec.nranks);
      EXPECT_LT(f.site.seq, spec.max_seq);
      if (f.site.op == Op::Collective) {
        EXPECT_EQ(f.site.peer, -1);
      } else {
        EXPECT_GE(f.site.peer, 0);
        EXPECT_LT(f.site.peer, spec.nranks);
        EXPECT_NE(f.site.peer, f.site.rank);
      }
      // Wire faults originate at the sender.
      if (f.action.type == FaultType::Drop ||
          f.action.type == FaultType::Duplicate) {
        EXPECT_EQ(f.site.op, Op::Send) << plan.describe();
      }
    }
    // Sorted and unique by site.
    for (std::size_t i = 1; i < plan.faults.size(); ++i)
      EXPECT_TRUE(plan.faults[i - 1].site < plan.faults[i].site);
  }
}

TEST(FaultPlan, TypeFlagsRestrictGeneration) {
  FaultSpec spec;
  spec.nranks = 4;
  spec.nfaults = 8;
  spec.drop = spec.duplicate = spec.stall = spec.crash = false;  // delay only
  for (std::uint64_t seed = 1; seed <= 10; ++seed)
    for (const PlannedFault& f : FaultPlan::generate(seed, spec).faults)
      EXPECT_EQ(f.action.type, FaultType::Delay);
}

TEST(FaultPlan, AtMostOneAbortingCapsDropsAndCrashes) {
  FaultSpec spec;
  spec.nranks = 4;
  spec.nfaults = 8;
  spec.at_most_one_aborting = true;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    int aborting = 0;
    for (const PlannedFault& f : FaultPlan::generate(seed, spec).faults)
      if (f.action.type == FaultType::Drop ||
          f.action.type == FaultType::Crash)
        ++aborting;
    EXPECT_LE(aborting, 1) << "seed " << seed;
  }
}

TEST(FaultPlan, DescribeNamesEveryFault) {
  FaultSpec spec;
  spec.nfaults = 5;
  const FaultPlan plan = FaultPlan::generate(3, spec);
  const std::string d = plan.describe();
  for (const PlannedFault& f : plan.faults)
    EXPECT_NE(d.find(fault::fault_type_name(f.action.type)),
              std::string::npos);
}

// ---------------------------------------------------------- backoff

TEST(Backoff, DeterministicCappedAndJittered) {
  for (int attempt = 0; attempt < 6; ++attempt) {
    const double a = fault::backoff_seconds(0.01, 0.1, attempt, 42);
    const double b = fault::backoff_seconds(0.01, 0.1, attempt, 42);
    EXPECT_EQ(a, b);  // bitwise replayable
    const double nominal = std::min(0.01 * std::pow(2.0, attempt), 0.1);
    EXPECT_GE(a, 0.5 * nominal);
    EXPECT_LE(a, nominal);
  }
  // Different seeds draw different jitter.
  EXPECT_NE(fault::backoff_seconds(0.01, 0.1, 0, 1),
            fault::backoff_seconds(0.01, 0.1, 0, 2));
}

// --------------------------------------------------------- injector

TEST(Injector, FiresOnceLogsInOrderAndResets) {
  FaultPlan plan;
  plan.seed = 1;
  plan.nranks = 2;
  plan.faults = {
      {FaultSite{0, 1, Op::Send, 3}, FaultAction{FaultType::Delay, 1e-3}},
      {FaultSite{1, -1, Op::Collective, 0}, FaultAction{FaultType::Crash, 0}},
  };
  FaultInjector inj(plan);

  EXPECT_EQ(inj.fire(FaultSite{0, 1, Op::Send, 2}), nullptr);  // not planned
  const FaultAction* a = inj.fire(FaultSite{0, 1, Op::Send, 3});
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->type, FaultType::Delay);
  EXPECT_EQ(inj.fire(FaultSite{0, 1, Op::Send, 3}), nullptr);  // one-shot

  ASSERT_EQ(inj.events(0).size(), 1u);
  EXPECT_EQ(inj.events(0)[0].site, (FaultSite{0, 1, Op::Send, 3}));
  EXPECT_TRUE(inj.events(1).empty());
  EXPECT_EQ(inj.all_events().size(), 1u);

  inj.reset();
  EXPECT_TRUE(inj.all_events().empty());
  EXPECT_NE(inj.fire(FaultSite{0, 1, Op::Send, 3}), nullptr);  // re-armed
}

// ------------------------------------------------- channel-level faults

constexpr int kRanks = chaos::kRanks;

FaultPlan one_fault(FaultSite site, FaultAction action) {
  FaultPlan plan;
  plan.nranks = kRanks;
  plan.faults = {{site, action}};
  return plan;
}

/// `iters` ring exchanges (every rank sends to rank+1, receives from
/// rank-1) with content checks, then one allreduce.  Any payload
/// corruption — e.g. a duplicate that is not absorbed — lands in
/// `corrupt`.
std::function<void(par::Comm&)> ring_job(int iters,
                                         std::atomic<int>& corrupt) {
  return [iters, &corrupt](par::Comm& c) {
    const int r = c.rank();
    const int n = c.size();
    const int to = (r + 1) % n;
    const int from = (r + n - 1) % n;
    Vector buf;
    real_t acc = 0.0;
    for (int i = 0; i < iters; ++i) {
      const Vector msg{static_cast<real_t>(r * 1000 + i),
                       static_cast<real_t>(i)};
      c.send(to, 7, msg);
      c.recv(from, 7, buf);
      if (buf.size() != 2 ||
          buf[0] != static_cast<real_t>(from * 1000 + i) ||
          buf[1] != static_cast<real_t>(i))
        corrupt.fetch_add(1, std::memory_order_relaxed);
      acc += buf[0];
    }
    (void)c.allreduce_sum(acc);
  };
}

TEST(CommFaults, DelayCompletesAndCounts) {
  FaultInjector inj(one_fault(FaultSite{1, 2, Op::Send, 3},
                              FaultAction{FaultType::Delay, 1e-3}));
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  std::atomic<int> corrupt{0};
  const auto counters = team.run(ring_job(8, corrupt));
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(counters[1].fault_delays, 1u);
  ASSERT_EQ(inj.events(1).size(), 1u);
  EXPECT_EQ(inj.events(1)[0].action.type, FaultType::Delay);
}

TEST(CommFaults, DuplicateIsAbsorbedByWireSequenceNumbers) {
  FaultInjector inj(one_fault(FaultSite{2, 3, Op::Send, 1},
                              FaultAction{FaultType::Duplicate, 0}));
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  std::atomic<int> corrupt{0};
  const auto counters = team.run(ring_job(8, corrupt));
  EXPECT_EQ(corrupt.load(), 0);  // receiver saw every message exactly once
  EXPECT_EQ(counters[2].fault_dups, 1u);
}

TEST(CommFaults, DropIsDetectedAsAWireSeqGapAtTheReceiver) {
  // The dropped message consumes a wire seq, so the receiver's next
  // take sees a gap and fails typed *immediately* — the stream can
  // never silently shift onto the following message.
  FaultInjector inj(one_fault(FaultSite{0, 1, Op::Send, 2},
                              FaultAction{FaultType::Drop, 0}));
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  team.set_comm_timeout(0.5);
  std::atomic<int> corrupt{0};
  try {
    (void)team.run(ring_job(8, corrupt));
    FAIL() << "expected par::CommError";
  } catch (const par::CommError& e) {
    EXPECT_EQ(e.kind(), fault::CommErrorKind::Lost);
    EXPECT_EQ(e.rank(), 1);  // the starved receiver, not the dropper
    EXPECT_EQ(e.op(), Op::Recv);
    EXPECT_NE(std::string(e.what()).find("lost"), std::string::npos);
  }
  EXPECT_EQ(corrupt.load(), 0);  // the shifted payload was never delivered
}

TEST(CommFaults, DropOfTheFinalMessageFallsBackToATimeout) {
  // No later message exists to reveal the gap, so the deadline is the
  // backstop that keeps the receiver from hanging.
  FaultInjector inj(one_fault(FaultSite{0, 1, Op::Send, 3},
                              FaultAction{FaultType::Drop, 0}));
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  team.set_comm_timeout(0.15);
  std::atomic<int> corrupt{0};
  try {
    (void)team.run(ring_job(4, corrupt));
    FAIL() << "expected par::CommError";
  } catch (const par::CommError& e) {
    // Several ranks can hit their deadline near-simultaneously (the
    // starved receiver, plus ranks waiting on it in the allreduce), so
    // only the kind is deterministic.
    EXPECT_EQ(e.kind(), fault::CommErrorKind::Timeout);
  }
}

TEST(CommFaults, CrashSurfacesTypedWithSite) {
  FaultInjector inj(one_fault(FaultSite{3, 0, Op::Send, 0},
                              FaultAction{FaultType::Crash, 0}));
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  team.set_comm_timeout(0.5);
  std::atomic<int> corrupt{0};
  try {
    (void)team.run(ring_job(8, corrupt));
    FAIL() << "expected par::CommError";
  } catch (const par::CommError& e) {
    EXPECT_EQ(e.kind(), fault::CommErrorKind::Crash);
    EXPECT_EQ(e.rank(), 3);
    EXPECT_NE(std::string(e.what()).find("injected crash"),
              std::string::npos);
  }
}

TEST(CommFaults, CollectiveCrashUnwindsTheWholeTeam) {
  FaultInjector inj(one_fault(FaultSite{2, -1, Op::Collective, 0},
                              FaultAction{FaultType::Crash, 0}));
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  team.set_comm_timeout(0.5);
  EXPECT_THROW((void)team.run([](par::Comm& c) { c.barrier(); }),
               par::CommError);
}

TEST(CommFaults, StallShorterThanTimeoutCompletes) {
  FaultInjector inj(one_fault(FaultSite{1, 2, Op::Send, 0},
                              FaultAction{FaultType::Stall, 0.02}));
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  team.set_comm_timeout(0.5);
  std::atomic<int> corrupt{0};
  const auto counters = team.run(ring_job(4, corrupt));
  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(counters[1].fault_stalls, 1u);
}

TEST(CommFaults, StallLongerThanTimeoutBecomesATypedTimeout) {
  FaultInjector inj(one_fault(FaultSite{1, 2, Op::Send, 0},
                              FaultAction{FaultType::Stall, 5.0}));
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  team.set_comm_timeout(0.1);
  std::atomic<int> corrupt{0};
  try {
    (void)team.run(ring_job(4, corrupt));
    FAIL() << "expected par::CommError";
  } catch (const par::CommError& e) {
    EXPECT_EQ(e.kind(), fault::CommErrorKind::Timeout);
  }
}

TEST(CommFaults, TimeoutFiresWithoutAnyInjectedFault) {
  par::Team team(2);
  team.set_comm_timeout(0.1);
  try {
    (void)team.run([](par::Comm& c) {
      if (c.rank() == 1) {
        Vector v;
        c.recv(0, 9, v);  // rank 0 never sends
      }
    });
    FAIL() << "expected par::CommError";
  } catch (const par::CommError& e) {
    EXPECT_EQ(e.kind(), fault::CommErrorKind::Timeout);
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.peer(), 0);
  }
}

TEST(CommFaults, FaultSpansMatchFaultCounters) {
  // In-process version of the pfem_trace --counters cross-check: for a
  // completed job, per-rank fault_* counters and per-lane fault_* spans
  // must agree exactly.
  FaultPlan plan;
  plan.nranks = kRanks;
  plan.faults = {
      {FaultSite{0, 1, Op::Send, 1}, FaultAction{FaultType::Delay, 1e-3}},
      {FaultSite{1, 2, Op::Send, 0}, FaultAction{FaultType::Duplicate, 0}},
      {FaultSite{2, 3, Op::Send, 2}, FaultAction{FaultType::Duplicate, 0}},
      {FaultSite{3, -1, Op::Collective, 0},
       FaultAction{FaultType::Stall, 2e-3}},
  };
  FaultInjector inj(plan);
  par::Team team(kRanks);
  team.set_fault_injector(&inj);
  obs::Trace trace(kRanks);
  std::atomic<int> corrupt{0};
  const auto counters = team.run(ring_job(8, corrupt), &trace);
  EXPECT_EQ(corrupt.load(), 0);
  for (int r = 0; r < kRanks; ++r) {
    std::map<std::string, std::uint64_t> spans;
    for (const obs::Record& rec : trace.rank(r).records())
      if (rec.kind == obs::Record::Kind::Span &&
          std::string(rec.name).rfind("fault_", 0) == 0)
        ++spans[rec.name];
    EXPECT_EQ(spans["fault_delay"], counters[r].fault_delays) << "rank " << r;
    EXPECT_EQ(spans["fault_dup"], counters[r].fault_dups) << "rank " << r;
    EXPECT_EQ(spans["fault_stall"], counters[r].fault_stalls) << "rank " << r;
    EXPECT_EQ(spans["fault_drop"], counters[r].fault_drops) << "rank " << r;
  }
}

// ------------------------------------------------- typed solver reports

TEST(SolverFaults, BatchReturnsTypedPartialReportOnCrash) {
  const chaos::Scene& s = chaos::scene();
  par::Team team(kRanks);
  // Build cleanly first, then arm the injector so the fault lands
  // mid-solve, after some iterations wrote history.
  const core::EddOperatorState op =
      core::build_edd_operator(team, *s.part, s.poly);
  FaultInjector inj(one_fault(FaultSite{1, -1, Op::Collective, 5},
                              FaultAction{FaultType::Crash, 0}));
  team.set_fault_injector(&inj);
  team.set_comm_timeout(0.5);
  const std::vector<Vector> rhs{s.prob.load};
  const core::BatchSolveResult r =
      core::solve_edd_batch(team, *s.part, op, rhs);
  ASSERT_TRUE(r.comm_failed());
  EXPECT_NE(r.comm_error.find("injected crash"), std::string::npos);
  EXPECT_TRUE(r.x.empty());  // never hand out corrupt solutions
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_FALSE(r.items[0].converged);
  EXPECT_EQ(r.items[0].comm_error, r.comm_error);
}

TEST(SolverFaults, SolveEddReturnsTypedPartialReportOnCrash) {
  const chaos::Scene& s = chaos::scene();
  FaultInjector inj(one_fault(FaultSite{2, -1, Op::Collective, 40},
                              FaultAction{FaultType::Crash, 0}));
  core::SolveOptions opts;
  opts.observe.fault_injector = &inj;
  opts.observe.comm_timeout_seconds = 0.5;
  const core::DistSolve r =
      core::solve_edd(*s.part, s.prob.load, s.poly, opts);
  ASSERT_TRUE(r.comm_failed());
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.x.empty());
  EXPECT_EQ(r.history.size(), static_cast<std::size_t>(r.iterations));
}

TEST(SolverFaults, SolveRddReturnsTypedPartialReportOnCrash) {
  const chaos::Scene& s = chaos::scene();
  const partition::RddPartition part = exp::make_rdd(s.prob, kRanks);
  FaultInjector inj(one_fault(FaultSite{1, -1, Op::Collective, 30},
                              FaultAction{FaultType::Crash, 0}));
  core::SolveOptions opts;
  opts.observe.fault_injector = &inj;
  opts.observe.comm_timeout_seconds = 0.5;
  const core::DistSolve r =
      core::solve_rdd(part, s.prob.load, core::RddOptions{}, opts);
  ASSERT_TRUE(r.comm_failed());
  EXPECT_FALSE(r.converged);
  EXPECT_TRUE(r.x.empty());
}

// --------------------------------------------------- service retries

svc::ServiceConfig chaos_service_config(FaultInjector* inj,
                                        int max_attempts) {
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  cfg.fault_injector = inj;
  cfg.comm_timeout_seconds = 0.5;
  cfg.retry.max_attempts = max_attempts;
  cfg.retry.base_backoff_seconds = 1e-3;
  cfg.retry.max_backoff_seconds = 5e-3;
  return cfg;
}

TEST(ServiceRetry, RetriesPastAOneShotCrashAndCompletes) {
  const chaos::Scene& s = chaos::scene();
  FaultInjector inj(one_fault(FaultSite{1, -1, Op::Collective, 0},
                              FaultAction{FaultType::Crash, 0}));
  svc::Service service(chaos_service_config(&inj, 3));
  service.register_operator("k", s.part, s.poly);
  svc::SolveRequest req;
  req.operator_key = "k";
  req.rhs = {s.prob.load};
  req.seed = 1234;
  auto sub = service.submit(std::move(req));
  const svc::Outcome out = sub.outcome.get();
  ASSERT_TRUE(svc::ok(out)) << "retry should have recovered";
  const auto& c = std::get<svc::Completed>(out);
  EXPECT_TRUE(c.result.items.at(0).converged);
  for (const auto& rc : c.result.rank_counters)
    EXPECT_EQ(rc.fault_retries, 1u);  // one re-dispatch recorded
  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.comm_failures, 1u);
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.failed, 0u);
}

TEST(ServiceRetry, ExhaustedRetriesDegradeToTypedFailure) {
  const chaos::Scene& s = chaos::scene();
  // One crash per attempt: rank 1's collective seq k is reached only on
  // attempt k+1 (earlier seqs are consumed one-shot), so every attempt
  // dies deterministically.
  FaultPlan plan;
  plan.nranks = kRanks;
  plan.faults = {
      {FaultSite{1, -1, Op::Collective, 0}, FaultAction{FaultType::Crash, 0}},
      {FaultSite{1, -1, Op::Collective, 1}, FaultAction{FaultType::Crash, 0}},
  };
  FaultInjector inj(plan);
  svc::Service service(chaos_service_config(&inj, 2));
  service.register_operator("k", s.part, s.poly);
  svc::SolveRequest req;
  req.operator_key = "k";
  req.rhs = {s.prob.load};
  auto sub = service.submit(std::move(req));
  const svc::Outcome out = sub.outcome.get();
  ASSERT_TRUE(std::holds_alternative<svc::Failed>(out));
  const auto& f = std::get<svc::Failed>(out);
  EXPECT_TRUE(f.comm);
  EXPECT_NE(f.error.find("after 2 attempt(s)"), std::string::npos);
  const svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.comm_failures, 2u);
  EXPECT_EQ(st.retries, 1u);
  EXPECT_EQ(st.failed, 1u);
  EXPECT_EQ(st.completed, 0u);
}

TEST(ServiceRetry, NoFaultsMeansNoRetriesAndZeroStampedCounters) {
  const chaos::Scene& s = chaos::scene();
  svc::Service service(chaos_service_config(nullptr, 3));
  service.register_operator("k", s.part, s.poly);
  svc::SolveRequest req;
  req.operator_key = "k";
  req.rhs = {s.prob.load};
  auto sub = service.submit(std::move(req));
  const svc::Outcome out = sub.outcome.get();
  ASSERT_TRUE(svc::ok(out));
  for (const auto& rc : std::get<svc::Completed>(out).result.rank_counters)
    EXPECT_EQ(rc.fault_retries, 0u);
  EXPECT_EQ(service.stats().retries, 0u);
}

// -------------------------------------------------------- chaos sweep

/// The full 64-seed sweep over one channel substrate.  Fault injection
/// sits above the transport seam, so the identical contract must hold
/// on in-process rings, shared-memory rings, and the socket wire.
void chaos_sweep_all_seeds(const chaos::TransportFactory& transport) {
  // One process-wide watchdog over the whole sweep: a single hung seed
  // kills the binary loudly instead of wedging CI.
  chaos::GlobalWatchdog watchdog(240.0);

  FaultSpec spec;
  spec.nranks = kRanks;
  spec.nfaults = 2;
  spec.max_seq = 40;
  spec.at_most_one_aborting = true;  // the replayable-plan contract
  spec.delay_seconds = 1e-4;
  spec.stall_seconds = 5e-3;  // well under the comm timeout: never aborts
  const double timeout_s = 0.1;

  int converged = 0;
  int typed = 0;
  std::set<std::string> distinct_signatures;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    watchdog.note("seed " + std::to_string(seed));
    const FaultPlan plan = FaultPlan::generate(seed, spec);
    const std::string recipe =
        "seed " + std::to_string(seed) + "\n" + plan.describe();

    FaultInjector inj(plan);
    const chaos::ChaosRun run1 = chaos::run_case(inj, timeout_s, transport);

    // Invariant 1: no hang (watchdog) and no untyped outcome.
    EXPECT_TRUE(run1.converged || run1.typed_error) << recipe;
    EXPECT_FALSE(run1.converged && run1.typed_error) << recipe;
    // Invariant 2: a "converged" answer is a real answer — checked
    // against the assembled stiffness, not the solver's own recurrence.
    if (run1.converged)
      EXPECT_LT(run1.true_relres, 1e-6) << recipe;
    else
      EXPECT_NE(run1.error.find("rank"), std::string::npos) << recipe;

    // Invariant 3: the same seed replays the same fault behavior.
    inj.reset();
    const chaos::ChaosRun run2 = chaos::run_case(inj, timeout_s, transport);
    EXPECT_EQ(run1.converged, run2.converged) << recipe;
    EXPECT_EQ(run1.typed_error, run2.typed_error) << recipe;
    EXPECT_EQ(chaos::deterministic_signature(run1),
              chaos::deterministic_signature(run2))
        << recipe;
    if (run1.converged && run2.converged) {
      // Injected delays/stalls/dups must not perturb the numerics: the
      // replayed residual history is bit-identical.
      EXPECT_EQ(run1.history, run2.history) << recipe;
      EXPECT_EQ(run1.signature, run2.signature) << recipe;
    }

    converged += run1.converged ? 1 : 0;
    typed += run1.typed_error ? 1 : 0;
    distinct_signatures.insert(run1.signature);
  }

  // The sweep must actually exercise both halves of the contract and
  // genuinely different schedules, or the invariants above are vacuous.
  EXPECT_GE(converged, 8);
  EXPECT_GE(typed, 8);
  EXPECT_GE(static_cast<int>(distinct_signatures.size()), 16);
}

TEST(ChaosSweep, EverySeedConvergesOrFailsTypedAndReplaysExactly) {
  chaos_sweep_all_seeds({});
}

TEST(ChaosSweep, ShmTransportEverySeedConvergesOrFailsTyped) {
  chaos_sweep_all_seeds(
      [](int n) { return net::make_shm_loopback_transport(n); });
}

TEST(ChaosSweep, SocketTransportEverySeedConvergesOrFailsTyped) {
  chaos_sweep_all_seeds(
      [](int n) { return net::make_socket_loopback_transport(n); });
}

// The chaos contract on the problem families: a 1e4 coefficient jump
// misaligned with the partition, solved with the jump-aware two-level
// coarse space.  The deflated build adds an allreduce (coarse Gram
// assembly) and a redundant factorization to the fault surface, and the
// heterogeneous operator stresses the scaled-residual path — converged
// XOR typed + exact replay must survive both.
TEST(ChaosSweep, FamilyScenesWithDeflationConvergeOrFailTyped) {
  chaos::GlobalWatchdog watchdog(240.0);

  FaultSpec spec;
  spec.nranks = kRanks;
  spec.nfaults = 2;
  spec.max_seq = 40;
  spec.at_most_one_aborting = true;
  spec.delay_seconds = 1e-4;
  spec.stall_seconds = 5e-3;
  const double timeout_s = 0.1;

  int converged = 0;
  int typed = 0;
  std::set<std::string> distinct_signatures;
  for (const char* family : {"hetero2d", "brick3d"}) {
    const chaos::Scene& sc = chaos::family_scene(family);
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      watchdog.note(std::string(family) + " seed " + std::to_string(seed));
      const FaultPlan plan = FaultPlan::generate(seed, spec);
      const std::string recipe = std::string(family) + " seed " +
                                 std::to_string(seed) + "\n" + plan.describe();

      FaultInjector inj(plan);
      const chaos::ChaosRun run1 = chaos::run_case(inj, timeout_s, {}, {}, &sc);
      EXPECT_TRUE(run1.converged || run1.typed_error) << recipe;
      EXPECT_FALSE(run1.converged && run1.typed_error) << recipe;
      if (run1.converged)
        // The solver's 1e-6 stop is on the norm-1-scaled system; the 1e4
        // jump amplifies the unscaled residual by the coefficient range.
        // 1e-3 still flags a corrupted exchange (O(1) garbage) loudly.
        EXPECT_LT(run1.true_relres, 1e-3) << recipe;
      else
        EXPECT_NE(run1.error.find("rank"), std::string::npos) << recipe;

      inj.reset();
      const chaos::ChaosRun run2 = chaos::run_case(inj, timeout_s, {}, {}, &sc);
      EXPECT_EQ(run1.converged, run2.converged) << recipe;
      EXPECT_EQ(run1.typed_error, run2.typed_error) << recipe;
      EXPECT_EQ(chaos::deterministic_signature(run1),
                chaos::deterministic_signature(run2))
          << recipe;
      if (run1.converged && run2.converged) {
        EXPECT_EQ(run1.history, run2.history) << recipe;
        EXPECT_EQ(run1.signature, run2.signature) << recipe;
      }

      converged += run1.converged ? 1 : 0;
      typed += run1.typed_error ? 1 : 0;
      distinct_signatures.insert(run1.signature);
    }
  }

  EXPECT_GE(converged, 4);
  EXPECT_GE(typed, 4);
  EXPECT_GE(static_cast<int>(distinct_signatures.size()), 8);
}

// Kernel-format independence under chaos: the matrix-free Ebe kernel
// with exchange overlap must hit the same fault sites and replay the
// same deterministic signatures as the scalar-CSR kernel — the exchange
// schedule (where faults bind) is a property of the discipline, not of
// the operator storage.  8 seeds: enough to cover converged and typed
// outcomes without doubling the sweep's runtime.
TEST(ChaosSweep, EbeKernelHitsSameFaultSitesAsCsr) {
  chaos::GlobalWatchdog watchdog(120.0);

  FaultSpec spec;
  spec.nranks = kRanks;
  spec.nfaults = 2;
  spec.max_seq = 40;
  spec.at_most_one_aborting = true;
  spec.delay_seconds = 1e-4;
  spec.stall_seconds = 5e-3;
  const double timeout_s = 0.1;

  core::KernelOptions csr;
  csr.format = core::KernelOptions::Format::Csr;
  csr.overlap = false;
  core::KernelOptions ebe;
  ebe.format = core::KernelOptions::Format::Ebe;
  ebe.overlap = true;

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    watchdog.note("ebe-vs-csr seed " + std::to_string(seed));
    const FaultPlan plan = FaultPlan::generate(seed, spec);
    const std::string recipe =
        "seed " + std::to_string(seed) + "\n" + plan.describe();

    FaultInjector inj(plan);
    const chaos::ChaosRun ref = chaos::run_case(inj, timeout_s, {}, csr);
    inj.reset();
    const chaos::ChaosRun run = chaos::run_case(inj, timeout_s, {}, ebe);

    // Same outcome class and the same deterministic fault record: the
    // plans bind to exchange/collective sequence numbers, which the
    // format leaves untouched.
    EXPECT_TRUE(run.converged || run.typed_error) << recipe;
    EXPECT_EQ(run.converged, ref.converged) << recipe;
    EXPECT_EQ(run.typed_error, ref.typed_error) << recipe;
    EXPECT_EQ(chaos::deterministic_signature(run),
              chaos::deterministic_signature(ref))
        << recipe;
    if (run.converged) {
      EXPECT_LT(run.true_relres, 1e-6) << recipe;
      // Same trajectory length; the values differ only by the element
      // sweep's reassociation.
      EXPECT_EQ(run.history.size(), ref.history.size()) << recipe;
    }
  }
}

TEST(ChaosSweep, ServiceSurvivesASeededFaultStreamWithRetries) {
  chaos::GlobalWatchdog watchdog(240.0);
  const chaos::Scene& s = chaos::scene();

  // A heavier plan than the per-request tests: several aborting faults
  // spread over the first attempts' op space.  With retries bounded
  // above the fault count, every request must still end Completed or
  // typed Failed — and the service must keep serving afterwards.
  FaultSpec spec;
  spec.nranks = kRanks;
  spec.nfaults = 3;
  spec.max_seq = 60;
  spec.delay_seconds = 1e-4;
  spec.stall_seconds = 5e-3;

  for (std::uint64_t seed = 101; seed <= 116; ++seed) {
    watchdog.note("svc seed " + std::to_string(seed));
    const FaultPlan plan = FaultPlan::generate(seed, spec);
    FaultInjector inj(plan);
    svc::Service service(chaos_service_config(&inj, 5));
    service.register_operator("k", s.part, s.poly);

    std::vector<std::future<svc::Outcome>> futures;
    for (int i = 0; i < 3; ++i) {
      svc::SolveRequest req;
      req.operator_key = "k";
      req.rhs = {s.prob.load};
      req.seed = seed * 10 + static_cast<std::uint64_t>(i);
      futures.push_back(service.submit(std::move(req)).outcome);
    }
    int completed = 0;
    for (auto& f : futures) {
      const svc::Outcome out = f.get();  // watchdog guards against hangs
      if (svc::ok(out)) {
        ++completed;
        EXPECT_TRUE(std::get<svc::Completed>(out).result.items.at(0).converged)
            << "seed " << seed;
      } else {
        ASSERT_TRUE(std::holds_alternative<svc::Failed>(out))
            << "seed " << seed << "\n" << plan.describe();
        EXPECT_TRUE(std::get<svc::Failed>(out).comm) << "seed " << seed;
      }
    }
    // 5 attempts vs at most 3 one-shot faults: the stream drains and
    // at least the tail requests complete.
    EXPECT_GE(completed, 1) << "seed " << seed << "\n" << plan.describe();
    service.shutdown(/*drain=*/true);
  }
}

TEST(ChaosSweep, SessionStreamFailsTypedAndReplaysDeterministically) {
  chaos::GlobalWatchdog watchdog(240.0);
  const chaos::Scene& s = chaos::scene();

  // A session stream under injected faults: every step must end
  // Completed or typed comm-Failed (never hang, never untyped), a
  // failed step must not corrupt the session (later steps still
  // complete warm), and the whole stream — including the warm-lane
  // iteration counts — must replay identically for the same seed.
  FaultSpec spec;
  spec.nranks = kRanks;
  spec.nfaults = 2;
  spec.max_seq = 60;
  spec.delay_seconds = 1e-4;
  spec.stall_seconds = 5e-3;

  const auto run_stream = [&](std::uint64_t seed) {
    const FaultPlan plan = FaultPlan::generate(seed, spec);
    FaultInjector inj(plan);
    svc::Service service(chaos_service_config(&inj, 5));
    service.register_operator("k", s.part, s.poly);
    const svc::SessionId sid = service.open_session("k");
    EXPECT_NE(sid, svc::kNoSession);
    std::vector<int> iters;  // -1 marks a typed comm failure
    for (int t = 0; t < 4; ++t) {
      svc::SolveRequest req;
      req.operator_key = "k";
      req.session = sid;
      Vector f = s.prob.load;
      for (real_t& v : f) v *= 1.0 + 0.01 * t;
      req.rhs = {std::move(f)};
      const svc::Outcome out = service.submit(std::move(req)).outcome.get();
      if (svc::ok(out)) {
        iters.push_back(
            std::get<svc::Completed>(out).result.items.at(0).iterations);
      } else {
        EXPECT_TRUE(std::holds_alternative<svc::Failed>(out))
            << "seed " << seed << "\n" << plan.describe();
        if (const auto* fl = std::get_if<svc::Failed>(&out)) {
          EXPECT_TRUE(fl->comm) << "seed " << seed;
        }
        iters.push_back(-1);
      }
    }
    service.shutdown(/*drain=*/true);
    return iters;
  };

  int completed = 0;
  for (std::uint64_t seed = 201; seed <= 208; ++seed) {
    watchdog.note("session seed " + std::to_string(seed));
    const std::vector<int> a = run_stream(seed);
    const std::vector<int> b = run_stream(seed);
    EXPECT_EQ(a, b) << "seed " << seed;  // warm lanes replay exactly
    for (const int it : a) completed += it >= 0 ? 1 : 0;
  }
  // The invariants are vacuous if nothing ever completes.
  EXPECT_GE(completed, 8);
}

}  // namespace
}  // namespace pfem
