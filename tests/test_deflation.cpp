// Two-level subdomain deflation (core/deflation): coarse-space
// invariants, the weak-scaling smoke the acceptance gate rides on, and
// the counters-vs-spans coarse-traffic cross-check.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/deflation.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"

namespace pfem::core {
namespace {

fem::CantileverProblem cantilever(int nx, int ny) {
  fem::CantileverSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  return fem::make_cantilever(spec);
}

DistSolve run(const fem::CantileverProblem& prob,
                    const partition::EddPartition& part, bool deflated,
                    bool trace = false) {
  PolySpec poly;
  poly.kind = PolyKind::Gls;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 50000;
  opts.deflation.enabled = deflated;
  opts.deflation.dof_coords = fem::free_dof_coords(prob.mesh, prob.dofs);
  opts.deflation.coord_dim = static_cast<int>(prob.mesh.dim());
  opts.observe.trace = trace;
  return solve_edd(part, prob.load, poly, opts);
}

TEST(DeflationSpace, CoarseColumnsAgreeAcrossSharedDofs) {
  // The whole exchange-free design rests on col(l) being a function of
  // the GLOBAL dof id alone: two ranks sharing a dof must map it to the
  // same coarse column, so Zy is globally consistent with no exchange.
  const fem::CantileverProblem prob = cantilever(16, 8);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  DeflationOptions o;
  o.enabled = true;
  o.dof_coords = fem::free_dof_coords(prob.mesh, prob.dofs);
  o.coord_dim = static_cast<int>(prob.mesh.dim());
  std::vector<std::vector<real_t>> global_val(
      static_cast<std::size_t>(part.n_global), std::vector<real_t>());
  for (int s = 0; s < part.nparts(); ++s) {
    const auto& sub = part.subs[static_cast<std::size_t>(s)];
    const Vector w(sub.local_to_global.size(), 1.0);
    DeflationRank dr(sub, s, part.nparts(), o, w);
    EXPECT_EQ(dr.ncoarse(), static_cast<index_t>(part.nparts() *
                                                 dr.nbasis() * o.components));
    Vector y(static_cast<std::size_t>(dr.ncoarse()));
    for (std::size_t c = 0; c < y.size(); ++c)
      y[c] = static_cast<real_t>(c + 1);
    Vector z(sub.local_to_global.size());
    dr.prolong_global(y, z);
    for (std::size_t l = 0; l < z.size(); ++l) {
      const auto g = static_cast<std::size_t>(sub.local_to_global[l]);
      global_val[g].push_back(z[l]);
    }
  }
  for (const auto& vals : global_val)
    for (std::size_t i = 1; i < vals.size(); ++i)
      EXPECT_EQ(vals[i], vals[0]);  // bit-identical across every sharer
}

TEST(DeflationSpace, RestrictGlobalIsAdjointOfProlong) {
  // Σ_s Zᵀ_s applied to globally consistent copies of v equals Zᵀv:
  // ⟨Zy, v⟩ accumulated via restrict_global must equal ⟨y, Zᵀv⟩.
  const fem::CantileverProblem prob = cantilever(12, 6);
  const partition::EddPartition part = exp::make_edd(prob, 3);
  DeflationOptions o;
  o.enabled = true;
  o.dof_coords = fem::free_dof_coords(prob.mesh, prob.dofs);
  o.coord_dim = static_cast<int>(prob.mesh.dim());
  Vector v(static_cast<std::size_t>(part.n_global));
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = 0.25 + static_cast<real_t>(i % 11);

  Vector ztv;  // accumulated over ranks, as the solver's allreduce does
  real_t zy_dot_v = 0.0;
  Vector y;
  for (int s = 0; s < part.nparts(); ++s) {
    const auto& sub = part.subs[static_cast<std::size_t>(s)];
    // A non-trivial weight that is a pure function of the global dof id
    // (the consistency requirement the solver meets with w = 1/d̂).
    Vector w(sub.local_to_global.size());
    for (std::size_t l = 0; l < w.size(); ++l)
      w[l] = 1.0 + 0.1 * static_cast<real_t>(sub.local_to_global[l] % 5);
    DeflationRank dr(sub, s, part.nparts(), o, w);
    if (ztv.empty()) {
      ztv.assign(static_cast<std::size_t>(dr.ncoarse()), 0.0);
      y.assign(static_cast<std::size_t>(dr.ncoarse()), 0.0);
      for (std::size_t c = 0; c < y.size(); ++c)
        y[c] = 1.0 / static_cast<real_t>(c + 2);
    }
    const std::size_t nl = sub.local_to_global.size();
    Vector v_glob(nl), z(nl);
    for (std::size_t l = 0; l < nl; ++l)
      v_glob[l] = v[static_cast<std::size_t>(sub.local_to_global[l])];
    dr.restrict_global(v_glob, ztv);
    dr.prolong_global(y, z);
    // ⟨Zy, v⟩ restricted to this rank, weighted by 1/multiplicity so
    // shared dofs count once.
    for (std::size_t l = 0; l < nl; ++l)
      zy_dot_v += z[l] * v_glob[l] /
                  static_cast<real_t>(sub.multiplicity[l]);
  }
  real_t y_dot_ztv = 0.0;
  for (std::size_t c = 0; c < y.size(); ++c) y_dot_ztv += y[c] * ztv[c];
  EXPECT_NEAR(zy_dot_v, y_dot_ztv, 1e-9 * std::abs(y_dot_ztv));
}

TEST(DeflationSmoke, WeakScalingIterationGrowthStaysBounded) {
  // The acceptance gate itself: on the paper's Table-2 family, deflated
  // iteration counts from Mesh4 @ P = 2 to Mesh10 @ P = 16 must grow by
  // at most 1.3x.  (Each solve is sub-second; the single-level solver's
  // 52 -> ~300 growth over the same sweep is what motivated the coarse
  // space.)
  const fem::CantileverProblem small = fem::make_table2_cantilever(4);
  const fem::CantileverProblem large = fem::make_table2_cantilever(10);
  const partition::EddPartition part2 = exp::make_edd(small, 2);
  const partition::EddPartition part16 = exp::make_edd(large, 16);

  const DistSolve d2 = run(small, part2, /*deflated=*/true);
  const DistSolve d16 = run(large, part16, /*deflated=*/true);
  ASSERT_TRUE(d2.converged);
  ASSERT_TRUE(d16.converged);
  EXPECT_LE(static_cast<double>(d16.iterations),
            1.3 * static_cast<double>(d2.iterations))
      << "deflated weak scaling grew: P2=" << d2.iterations
      << " P16=" << d16.iterations;

  // And the coarse space actually earns its keep mid-sweep: Mesh9 at
  // P = 8 deflated beats undeflated outright.
  const fem::CantileverProblem mid = fem::make_table2_cantilever(9);
  const partition::EddPartition part8 = exp::make_edd(mid, 8);
  const DistSolve d8 = run(mid, part8, /*deflated=*/true);
  const DistSolve u8 = run(mid, part8, /*deflated=*/false);
  ASSERT_TRUE(d8.converged);
  ASSERT_TRUE(u8.converged);
  EXPECT_LT(d8.iterations, u8.iterations);
}

TEST(DeflationTrace, CoarseSpansMatchCoarseSolveCounters) {
  // Same invariant pfem_trace --counters enforces on captures: the
  // one-shot solver stamps exactly one "coarse_correct" span per coarse
  // solve, on the rank that bumped the counter.
  const fem::CantileverProblem prob = cantilever(16, 8);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  const DistSolve res = run(prob, part, /*deflated=*/true,
                                  /*trace=*/true);
  ASSERT_TRUE(res.converged);
  ASSERT_NE(res.trace, nullptr);
  for (int r = 0; r < part.nparts(); ++r) {
    std::uint64_t spans = 0;
    for (const auto& rec : res.trace->rank(r).records())
      if (std::strcmp(rec.name, "coarse_correct") == 0 &&
          rec.t1_ns != rec.t0_ns)
        ++spans;
    EXPECT_EQ(spans,
              res.rank_counters[static_cast<std::size_t>(r)].coarse_solves)
        << "rank " << r;
    EXPECT_GT(spans, 0u);
  }
}

TEST(DeflationOptionsKnob, MoreVectorsPerSubdomainNeverHurts) {
  // The q = 4 space (patch {1, x} per component) contains the q = 2 one
  // (patch constants), so iterations must not regress (tiny slack for
  // FP noise).
  const fem::CantileverProblem prob = cantilever(24, 12);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.kind = PolyKind::Gls;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-6;
  opts.deflation.enabled = true;
  opts.deflation.dof_coords = fem::free_dof_coords(prob.mesh, prob.dofs);
  opts.deflation.coord_dim = static_cast<int>(prob.mesh.dim());
  opts.deflation.vectors_per_subdomain = 2;
  const DistSolve q2 = solve_edd(part, prob.load, poly, opts);
  opts.deflation.vectors_per_subdomain = 4;
  const DistSolve q4 = solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(q2.converged && q4.converged);
  EXPECT_LE(q4.iterations, q2.iterations + 2);
}

TEST(JumpAwareSpace, ClassSplitDoublesTheCoarseSpaceConsistently) {
  // With jump_aware every patch splits into two coefficient classes:
  // ncoarse doubles, and the exchange-free consistency contract (bit-
  // identical Zy across sharers) must survive the split — the class of
  // a dof is a pure function of its global id via the replicated
  // dof_coeff table.
  fem::ProblemSpec spec = fem::default_spec("hetero2d");
  spec.jump = 1.0e4;
  spec.aligned = false;
  spec.checker = 3;
  const fem::FamilyProblem fp = fem::make_problem(spec);
  const partition::EddPartition part = exp::make_edd(fp, 4);

  const DeflationOptions plain = exp::family_deflation(fp, false);
  const DeflationOptions aware = exp::family_deflation(fp, true);
  std::vector<std::vector<real_t>> global_val(
      static_cast<std::size_t>(part.n_global), std::vector<real_t>());
  for (int s = 0; s < part.nparts(); ++s) {
    const auto& sub = part.subs[static_cast<std::size_t>(s)];
    const Vector w(sub.local_to_global.size(), 1.0);
    DeflationRank one(sub, s, part.nparts(), plain, w);
    DeflationRank two(sub, s, part.nparts(), aware, w);
    EXPECT_EQ(one.nclasses(), 1);
    EXPECT_EQ(two.nclasses(), 2);
    EXPECT_EQ(two.ncoarse(), 2 * one.ncoarse());
    EXPECT_EQ(two.nbasis(), one.nbasis());

    Vector y(static_cast<std::size_t>(two.ncoarse()));
    for (std::size_t c = 0; c < y.size(); ++c)
      y[c] = static_cast<real_t>(c + 1);
    Vector z(sub.local_to_global.size());
    two.prolong_global(y, z);
    for (std::size_t l = 0; l < z.size(); ++l)
      global_val[static_cast<std::size_t>(sub.local_to_global[l])]
          .push_back(z[l]);
  }
  for (const auto& vals : global_val)
    for (std::size_t i = 1; i < vals.size(); ++i)
      EXPECT_EQ(vals[i], vals[0]);
}

TEST(JumpAwareSpace, ClassIndicatorColumnsSelectExactlyTheStiffDofs) {
  // Activate only the class-1 indicator column of every patch: the
  // prolonged vector must be nonzero exactly on the dofs at or above
  // the pivot (the geometric mean of the coefficient range) — i.e. the
  // split traces dof_coeff, not geometry.
  fem::ProblemSpec spec = fem::default_spec("hetero2d");
  spec.jump = 1.0e4;
  spec.aligned = false;
  spec.checker = 3;
  const fem::FamilyProblem fp = fem::make_problem(spec);
  const partition::EddPartition part = exp::make_edd(fp, 4);
  const DeflationOptions aware = exp::family_deflation(fp, true);
  // pivot = sqrt(1 * 1e4) = 1e2; the table is two-valued {1, 1e4}.
  const real_t pivot = 1.0e2;

  for (int s = 0; s < part.nparts(); ++s) {
    const auto& sub = part.subs[static_cast<std::size_t>(s)];
    const Vector w(sub.local_to_global.size(), 1.0);
    DeflationRank dr(sub, s, part.nparts(), aware, w);
    const int block = dr.nbasis() * aware.components;  // columns per
                                                       // (patch, class)
    Vector y(static_cast<std::size_t>(dr.ncoarse()), 0.0);
    for (int p = 0; p < part.nparts(); ++p)
      y[static_cast<std::size_t>((p * 2 + 1) * block)] = 1.0;  // class 1
    Vector z(sub.local_to_global.size());
    dr.prolong_global(y, z);
    for (std::size_t l = 0; l < z.size(); ++l) {
      const auto g = static_cast<std::size_t>(sub.local_to_global[l]);
      if (fp.dof_coeff[g] >= pivot)
        EXPECT_NE(z[l], 0.0) << "stiff dof " << g << " missed";
      else
        EXPECT_EQ(z[l], 0.0) << "soft dof " << g << " leaked into class 1";
    }
  }
}

TEST(JumpAwareSolve, HoldsTheLineWhereStandardDeflationDegrades) {
  // The bench gate's mechanism at test size: on a misaligned 1e4
  // checkerboard the per-class columns must do at least as well as the
  // geometric coarse space, and stay within 1.5x of the homogeneous
  // deflated count (bench/hetero_scaling enforces the same bound on the
  // Table-2-sized mesh).
  fem::ProblemSpec spec = fem::default_spec("hetero2d");
  spec.nx = 24;
  spec.ny = 24;
  spec.aligned = false;
  spec.checker = 3;
  PolySpec poly;
  poly.kind = PolyKind::Gls;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 50000;

  spec.jump = 1.0;
  const fem::FamilyProblem homog = fem::make_problem(spec);
  spec.jump = 1.0e4;
  const fem::FamilyProblem jumpy = fem::make_problem(spec);
  const partition::EddPartition part = exp::make_edd(jumpy, 4);

  opts.deflation = exp::family_deflation(homog, false);
  const DistSolve ref = solve_edd(exp::make_edd(homog, 4), homog.prob.load,
                                  poly, opts);
  opts.deflation = exp::family_deflation(jumpy, false);
  const DistSolve standard = solve_edd(part, jumpy.prob.load, poly, opts);
  opts.deflation = exp::family_deflation(jumpy, true);
  const DistSolve aware = solve_edd(part, jumpy.prob.load, poly, opts);

  ASSERT_TRUE(ref.converged && standard.converged && aware.converged);
  EXPECT_LE(aware.iterations, standard.iterations);
  EXPECT_LE(static_cast<double>(aware.iterations),
            1.5 * static_cast<double>(ref.iterations))
      << "jump-aware " << aware.iterations << " vs homogeneous "
      << ref.iterations;
}

}  // namespace
}  // namespace pfem::core
