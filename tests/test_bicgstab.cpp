// BiCGSTAB tests: unsymmetric convection-diffusion systems (the problem
// class the paper motivates GMRES with), EDD-distributed correctness,
// and agreement with FGMRES.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bicgstab.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/dense.hpp"
#include "la/vector_ops.hpp"
#include "sparse/generators.hpp"

namespace pfem::core {
namespace {

Vector dense_solve(const sparse::CsrMatrix& a, const Vector& b) {
  la::DenseMatrix ad(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) ad(i, j) = a.at(i, j);
  Vector x = b;
  la::lu_solve(ad, x);
  return x;
}

TEST(ConvectionDiffusion, IsUnsymmetricMMatrix) {
  const sparse::CsrMatrix a = sparse::convection_diffusion_2d(8, 8, 4.0, 2.0);
  EXPECT_GT(a.symmetry_defect(), 1.0);  // genuinely unsymmetric
  // Row sums are >= 0 (M-matrix with Dirichlet boundary).
  for (index_t i = 0; i < a.rows(); ++i) {
    real_t s = 0.0;
    for (real_t v : a.row_vals(i)) s += v;
    EXPECT_GE(s, -1e-12);
  }
  // Zero convection recovers the symmetric Laplacian.
  const sparse::CsrMatrix l = sparse::convection_diffusion_2d(8, 8, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(l.symmetry_defect(), 0.0);
}

TEST(Bicgstab, SolvesUnsymmetricSystem) {
  const sparse::CsrMatrix a =
      sparse::convection_diffusion_2d(10, 10, 6.0, -3.0);
  Vector b(100);
  for (std::size_t i = 0; i < 100; ++i) b[i] = std::sin(0.13 * double(i));
  const Vector x_ref = dense_solve(a, b);

  Vector x(100, 0.0);
  JacobiPrecond jacobi(a);
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 5000;
  const SolveReport res = bicgstab(a, b, x, jacobi, opts);
  ASSERT_TRUE(res.converged);
  const real_t scale = la::nrm_inf(x_ref) + 1e-30;
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_NEAR(x[i], x_ref[i], 1e-7 * scale);
}

TEST(Bicgstab, AgreesWithFgmresOnUnsymmetricSystem) {
  const sparse::CsrMatrix a =
      sparse::convection_diffusion_2d(12, 12, 8.0, 8.0);
  Vector b(144, 1.0);
  SolveOptions opts;
  opts.tol = 1e-9;
  opts.max_iters = 10000;
  Vector x1(144, 0.0), x2(144, 0.0);
  JacobiPrecond p1(a), p2(a);
  const SolveReport rb = bicgstab(a, b, x1, p1, opts);
  const SolveReport rg = fgmres(a, b, x2, p2, opts);
  ASSERT_TRUE(rb.converged && rg.converged);
  const real_t scale = la::nrm_inf(x2) + 1e-30;
  for (std::size_t i = 0; i < 144; ++i)
    EXPECT_NEAR(x1[i], x2[i], 1e-6 * scale);
}

TEST(Bicgstab, ZeroRhs) {
  const sparse::CsrMatrix a = sparse::tridiag(10, 2.0, -1.0);
  Vector b(10, 0.0), x(10, 0.0);
  IdentityPrecond none;
  const SolveReport res = bicgstab(a, b, x, none);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(Bicgstab, PolynomialPreconditionerReducesIterations) {
  fem::CantileverSpec spec;
  spec.nx = 14;
  spec.ny = 7;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const ScaledSystem s = scale_system(prob.stiffness, prob.load);
  SolveOptions opts;
  opts.tol = 1e-8;
  opts.max_iters = 20000;

  Vector x1(s.b.size(), 0.0);
  IdentityPrecond none;
  const SolveReport plain = bicgstab(s.a, s.b, x1, none, opts);
  Vector x2(s.b.size(), 0.0);
  GlsPrecond gls(LinearOp::from_csr(s.a),
                 GlsPolynomial(default_theta_after_scaling(), 7));
  const SolveReport prec = bicgstab(s.a, s.b, x2, gls, opts);
  ASSERT_TRUE(plain.converged && prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

class EddBicgstabTest : public ::testing::TestWithParam<int> {};

TEST_P(EddBicgstabTest, MatchesSequentialSolution) {
  const int nparts = GetParam();
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  Vector x_ref(prob.load.size(), 0.0);
  Ilu0Precond ilu(prob.stiffness);
  SolveOptions ref_opts;
  ref_opts.tol = 1e-12;
  ref_opts.max_iters = 50000;
  ASSERT_TRUE(
      fgmres(prob.stiffness, prob.load, x_ref, ilu, ref_opts).converged);

  const partition::EddPartition part = exp::make_edd(prob, nparts);
  PolySpec poly;
  poly.degree = 5;
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 50000;
  const DistSolve res = solve_edd_bicgstab(part, prob.load, poly,
                                                 opts);
  ASSERT_TRUE(res.converged);
  const real_t scale = la::nrm_inf(x_ref);
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale) << "dof " << i;
}

INSTANTIATE_TEST_SUITE_P(PartCounts, EddBicgstabTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(EddBicgstab, ExchangeCountPerIteration) {
  // Per full BiCGSTAB step: two preconditioner applications (m exchanges
  // each) and two outer mat-vecs = 2m + 2 exchanges.
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 4;
  SolveOptions opts;
  opts.tol = 1e-300;
  opts.max_iters = 3;
  const auto a = solve_edd_bicgstab(part, prob.load, poly, opts);
  opts.max_iters = 4;
  const auto b = solve_edd_bicgstab(part, prob.load, poly, opts);
  const par::PerfCounters d =
      b.rank_counters[0].delta_since(a.rank_counters[0]);
  EXPECT_EQ(d.neighbor_exchanges, 2u * 4 + 2);
  EXPECT_EQ(d.matvecs, 2u * 4 + 2);
}

TEST(UnsymmetricRdd, FgmresSolvesConvectionDiffusionDistributed) {
  // The paper's headline claim: the framework handles *unsymmetric*
  // systems through GMRES.  Drive an upwind convection-diffusion matrix
  // through the RDD solver (no mesh needed) with a Neumann polynomial
  // (valid: the scaled M-matrix has rho(I - A) < 1).
  const sparse::CsrMatrix a =
      sparse::convection_diffusion_2d(12, 12, 5.0, 2.0);
  Vector b(144);
  for (std::size_t i = 0; i < 144; ++i) b[i] = std::cos(0.21 * double(i));
  const Vector x_ref = dense_solve(a, b);

  IndexVector row_part(144);
  for (std::size_t i = 0; i < 144; ++i)
    row_part[i] = static_cast<index_t>((i * 4) / 144);
  const partition::RddPartition part =
      partition::build_rdd_partition(a, row_part, 4);
  RddOptions rdd;
  rdd.poly.kind = PolyKind::Neumann;
  rdd.poly.degree = 10;
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 50000;
  const DistSolve res = solve_rdd(part, b, rdd, opts);
  ASSERT_TRUE(res.converged);
  const real_t scale = la::nrm_inf(x_ref) + 1e-30;
  for (std::size_t i = 0; i < 144; ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale);
}

}  // namespace
}  // namespace pfem::core
