// Cross-module integration tests reproducing the paper's qualitative
// findings end-to-end on Table-2-scale problems.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/diag_scaling.hpp"
#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "fem/structured.hpp"
#include "la/vector_ops.hpp"
#include "par/cost_model.hpp"
#include "sparse/io.hpp"

namespace pfem {
namespace {

TEST(Integration, Mesh1StaticAllPreconditionersAgree) {
  // The paper's Mesh1 (7x1, 28 equations) solved with every
  // preconditioner must yield the same displacement field.
  const fem::CantileverProblem prob = fem::make_table2_cantilever(1);
  const core::ScaledSystem s = core::scale_system(prob.stiffness, prob.load);
  core::SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 5000;

  std::vector<Vector> solutions;
  {
    Vector x(s.b.size(), 0.0);
    core::Ilu0Precond p(s.a);
    ASSERT_TRUE(core::fgmres(s.a, s.b, x, p, opts).converged);
    solutions.push_back(s.unscale(x));
  }
  {
    Vector x(s.b.size(), 0.0);
    core::GlsPrecond p(core::LinearOp::from_csr(s.a),
                       core::GlsPolynomial(core::default_theta_after_scaling(),
                                           7));
    ASSERT_TRUE(core::fgmres(s.a, s.b, x, p, opts).converged);
    solutions.push_back(s.unscale(x));
  }
  {
    Vector x(s.b.size(), 0.0);
    core::NeumannPrecond p(core::LinearOp::from_csr(s.a),
                           core::NeumannPolynomial(20, 1.0));
    ASSERT_TRUE(core::fgmres(s.a, s.b, x, p, opts).converged);
    solutions.push_back(s.unscale(x));
  }
  const real_t scale = la::nrm_inf(solutions[0]);
  for (std::size_t k = 1; k < solutions.size(); ++k)
    for (std::size_t i = 0; i < solutions[0].size(); ++i)
      EXPECT_NEAR(solutions[k][i], solutions[0][i], 1e-6 * scale);
}

TEST(Integration, Gls7CompetitiveWithIlu0OnMesh1) {
  // §6.2 "Polynomial Preconditioner vs. ILU(0)": GLS(7) converges in a
  // comparable (or smaller) number of iterations than ILU(0) on Mesh1.
  const fem::CantileverProblem prob = fem::make_table2_cantilever(1);
  const core::ScaledSystem s = core::scale_system(prob.stiffness, prob.load);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 5000;

  Vector x1(s.b.size(), 0.0);
  core::Ilu0Precond ilu(s.a);
  const auto r_ilu = core::fgmres(s.a, s.b, x1, ilu, opts);
  Vector x2(s.b.size(), 0.0);
  core::GlsPrecond gls(core::LinearOp::from_csr(s.a),
                       core::GlsPolynomial(core::default_theta_after_scaling(),
                                           7));
  const auto r_gls = core::fgmres(s.a, s.b, x2, gls, opts);
  ASSERT_TRUE(r_ilu.converged && r_gls.converged);
  // "completely comparable": allow a 2x band rather than strict order.
  EXPECT_LE(r_gls.iterations, 2 * r_ilu.iterations);
}

TEST(Integration, DegreeOrderingOnMesh1) {
  // Fig. 13: GLS(20) ≻ GLS(10) ≻ GLS(3) ≻ GLS(1) in iteration count.
  const fem::CantileverProblem prob = fem::make_table2_cantilever(1);
  const partition::EddPartition part = exp::make_edd(prob, 2);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 20000;
  index_t prev = std::numeric_limits<index_t>::max();
  for (int m : {1, 3, 10, 20}) {
    core::PolySpec poly;
    poly.degree = m;
    const auto res = core::solve_edd(part, prob.load, poly, opts);
    ASSERT_TRUE(res.converged) << "GLS(" << m << ")";
    EXPECT_LE(res.iterations, prev) << "GLS(" << m << ")";
    prev = res.iterations;
  }
}

TEST(Integration, PoissonOnTriMeshSolves) {
  // Scalar Poisson on the T3 mesh exercises the scalar element path and
  // the planar-graph case discussed in §5.
  const fem::Mesh mesh = fem::structured_tri(10, 10, 1.0, 1.0);
  fem::DofMap dofs(mesh.num_nodes(), 1);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  for (index_t n : mesh.nodes_at_x(1.0)) dofs.fix_node(n);
  dofs.finalize();
  fem::Material mat;
  const sparse::CsrMatrix k = fem::assemble(mesh, dofs, mat,
                                            fem::Operator::Poisson);
  Vector f(static_cast<std::size_t>(dofs.num_free()), 0.01);

  const core::ScaledSystem s = core::scale_system(k, f);
  Vector x(s.b.size(), 0.0);
  core::GlsPrecond p(core::LinearOp::from_csr(s.a),
                     core::GlsPolynomial(core::default_theta_after_scaling(),
                                         5));
  core::SolveOptions opts;
  opts.tol = 1e-8;
  const auto res = core::fgmres(s.a, s.b, x, p, opts);
  EXPECT_TRUE(res.converged);
  // Solution of -Δu = c with zero BCs is positive inside.
  const Vector u = s.unscale(x);
  for (real_t v : u) EXPECT_GT(v, 0.0);
}

TEST(Integration, ModeledSpeedupIncreasesWithDegree) {
  // Fig. 15/17(a): EDD speedup at fixed P grows with polynomial degree
  // (mat-vec work dominates, comm amortized).
  // Needs a paper-scale mesh (interface fraction small enough that the
  // iteration count stays P-flat, as in Table 3).
  fem::CantileverSpec spec;
  spec.nx = 48;
  spec.ny = 48;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const par::MachineModel origin = par::MachineModel::sgi_origin();
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 40000;

  double speedup_low = 0.0, speedup_high = 0.0;
  {
    core::PolySpec poly;
    poly.degree = 2;
    const auto rows = exp::edd_speedup_study(prob, poly, {1, 8}, origin, opts);
    speedup_low = rows.back().speedup;
  }
  {
    core::PolySpec poly;
    poly.degree = 10;
    const auto rows = exp::edd_speedup_study(prob, poly, {1, 8}, origin, opts);
    speedup_high = rows.back().speedup;
  }
  EXPECT_GT(speedup_high, speedup_low);
  EXPECT_GT(speedup_high, 5.0);  // strong scaling at P=8
}

TEST(Integration, ModeledSpeedupIncreasesWithProblemSize) {
  // Fig. 17(c,d): larger problems scale closer to linear.
  const par::MachineModel origin = par::MachineModel::sgi_origin();
  core::PolySpec poly;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 40000;

  fem::CantileverSpec small;
  small.nx = 12;
  small.ny = 12;
  fem::CantileverSpec large;
  large.nx = 36;
  large.ny = 36;
  const auto rows_small = exp::edd_speedup_study(
      fem::make_cantilever(small), poly, {1, 8}, origin, opts);
  const auto rows_large = exp::edd_speedup_study(
      fem::make_cantilever(large), poly, {1, 8}, origin, opts);
  EXPECT_GT(rows_large.back().speedup, rows_small.back().speedup);
}

TEST(Integration, OriginOutscalesSp2AtSmallP) {
  // Fig. 17(e): the Origin's lower latency gives better speedup than the
  // SP2 on the same trace.
  fem::CantileverSpec spec;
  spec.nx = 24;
  spec.ny = 24;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  core::PolySpec poly;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 40000;

  const auto sp2 = exp::edd_speedup_study(prob, poly, {1, 4},
                                          par::MachineModel::ibm_sp2(), opts);
  const auto origin = exp::edd_speedup_study(
      prob, poly, {1, 4}, par::MachineModel::sgi_origin(), opts);
  EXPECT_GT(origin.back().speedup, sp2.back().speedup);
}

TEST(Integration, MatrixMarketSystemRoundTripSolve) {
  // External-user path: dump the FE system, reload it, solve with RDD.
  const fem::CantileverProblem prob = fem::make_table2_cantilever(1);
  std::stringstream ss;
  sparse::write_matrix_market(ss, prob.stiffness);
  const sparse::CsrMatrix k = sparse::read_matrix_market(ss);

  IndexVector row_part(static_cast<std::size_t>(k.rows()));
  for (std::size_t i = 0; i < row_part.size(); ++i)
    row_part[i] = static_cast<index_t>((i * 2) / row_part.size());
  const partition::RddPartition part =
      partition::build_rdd_partition(k, row_part, 2);
  const core::DistSolve res = core::solve_rdd(part, prob.load);
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace pfem
