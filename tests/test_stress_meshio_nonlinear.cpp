// Tests for stress recovery, mesh file I/O, and the nonlinear
// quasi-static driver.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/fgmres.hpp"
#include "exp/experiments.hpp"
#include "fem/mesh_io.hpp"
#include "fem/problems.hpp"
#include "fem/stress.hpp"
#include "fem/structured.hpp"
#include "fem/vtk.hpp"
#include "la/vector_ops.hpp"
#include "timeint/nonlinear_driver.hpp"

namespace pfem {
namespace {

// ---- Stress recovery ----

TEST(Stress, UniaxialBarRecoversExactStress) {
  // A bar pulled with total force F over cross-section A = ny (thickness
  // 1) carries sxx = F/A everywhere, syy ≈ sxy ≈ 0 away from the clamp.
  fem::CantileverSpec spec;
  spec.nx = 12;
  spec.ny = 3;
  spec.load_total = 60.0;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  Vector u(prob.load.size(), 0.0);
  core::Ilu0Precond ilu(prob.stiffness);
  core::SolveOptions opts;
  opts.tol = 1e-11;
  ASSERT_TRUE(core::fgmres(prob.stiffness, prob.load, u, ilu, opts)
                  .converged);

  const auto stresses =
      fem::compute_stresses(prob.mesh, prob.dofs, prob.material, u);
  ASSERT_EQ(stresses.size(), static_cast<std::size_t>(prob.mesh.num_elems()));
  const real_t expected = 60.0 / 3.0;  // F / (ny * thickness)
  // Check an element in the middle of the bar (away from end effects).
  const index_t mid = prob.mesh.num_elems() / 2;
  EXPECT_NEAR(stresses[static_cast<std::size_t>(mid)].sxx, expected,
              0.05 * expected);
  EXPECT_LT(std::abs(stresses[static_cast<std::size_t>(mid)].syy),
            0.1 * expected);
  EXPECT_NEAR(stresses[static_cast<std::size_t>(mid)].von_mises, expected,
              0.1 * expected);
}

TEST(Stress, ZeroDisplacementZeroStress) {
  fem::CantileverSpec spec;
  spec.nx = 4;
  spec.ny = 2;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  Vector u(prob.load.size(), 0.0);
  for (const auto& s :
       fem::compute_stresses(prob.mesh, prob.dofs, prob.material, u)) {
    EXPECT_DOUBLE_EQ(s.von_mises, 0.0);
    EXPECT_DOUBLE_EQ(s.sxx, 0.0);
  }
}

TEST(Stress, Hex8UniaxialBar) {
  fem::Cantilever3dSpec spec;
  spec.nx = 8;
  spec.ny = 2;
  spec.nz = 2;
  spec.load_total = 40.0;
  const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);
  Vector u(prob.load.size(), 0.0);
  core::Ilu0Precond ilu(prob.stiffness);
  core::SolveOptions opts;
  opts.tol = 1e-11;
  opts.max_iters = 50000;
  ASSERT_TRUE(core::fgmres(prob.stiffness, prob.load, u, ilu, opts)
                  .converged);
  const auto stresses =
      fem::compute_stresses(prob.mesh, prob.dofs, prob.material, u);
  const real_t expected = 40.0 / 4.0;  // F / (ny*nz)
  // Pick an element mid-bar (away from the clamped face's constrained
  // lateral contraction): centroid x closest to nx/2.
  index_t mid = 0;
  real_t best = 1e30;
  for (index_t e = 0; e < prob.mesh.num_elems(); ++e) {
    const auto [cx, cy] = prob.mesh.elem_centroid(e);
    (void)cy;
    const real_t d = std::abs(cx - static_cast<real_t>(spec.nx) / 2.0);
    if (d < best) {
      best = d;
      mid = e;
    }
  }
  EXPECT_NEAR(stresses[static_cast<std::size_t>(mid)].sxx, expected,
              0.1 * expected);
  EXPECT_NEAR(stresses[static_cast<std::size_t>(mid)].von_mises, expected,
              0.15 * expected);
}

TEST(Stress, AllElementTypesProduceFiniteStress) {
  for (fem::ElemType t : {fem::ElemType::Quad4, fem::ElemType::Tri3,
                          fem::ElemType::Quad8}) {
    fem::CantileverSpec spec;
    spec.nx = 5;
    spec.ny = 2;
    spec.elem_type = t;
    const fem::CantileverProblem prob = fem::make_cantilever(spec);
    Vector u(prob.load.size(), 0.0);
    core::Ilu0Precond ilu(prob.stiffness);
    core::SolveOptions opts;
    opts.tol = 1e-9;
    opts.max_iters = 50000;
    ASSERT_TRUE(core::fgmres(prob.stiffness, prob.load, u, ilu, opts)
                    .converged);
    for (const auto& s :
         fem::compute_stresses(prob.mesh, prob.dofs, prob.material, u)) {
      EXPECT_TRUE(std::isfinite(s.von_mises));
      EXPECT_GE(s.von_mises, 0.0);
    }
  }
}

// ---- Mesh I/O ----

TEST(MeshIo, RoundTrip2d) {
  const fem::Mesh mesh = fem::structured_quad(4, 3, 4.0, 3.0);
  std::stringstream ss;
  fem::write_mesh(ss, mesh);
  const fem::Mesh back = fem::read_mesh(ss);
  ASSERT_EQ(back.num_nodes(), mesh.num_nodes());
  ASSERT_EQ(back.num_elems(), mesh.num_elems());
  EXPECT_EQ(back.type(), mesh.type());
  for (index_t n = 0; n < mesh.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(back.x(n), mesh.x(n));
    EXPECT_DOUBLE_EQ(back.y(n), mesh.y(n));
  }
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const auto a = mesh.elem_nodes(e);
    const auto b = back.elem_nodes(e);
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(MeshIo, RoundTrip3d) {
  const fem::Mesh mesh = fem::structured_hex(3, 2, 2, 3.0, 2.0, 2.0);
  std::stringstream ss;
  fem::write_mesh(ss, mesh);
  const fem::Mesh back = fem::read_mesh(ss);
  EXPECT_EQ(back.dim(), 3);
  EXPECT_EQ(back.num_nodes(), mesh.num_nodes());
  for (index_t n = 0; n < mesh.num_nodes(); ++n)
    EXPECT_DOUBLE_EQ(back.z(n), mesh.z(n));
}

TEST(MeshIo, RejectsGarbage) {
  std::stringstream ss("nonsense 2\n");
  EXPECT_THROW((void)fem::read_mesh(ss), Error);
}

TEST(MeshIo, RejectsBadConnectivity) {
  std::stringstream ss;
  ss << "pfem-mesh 1\nelemtype tri3\nnodes 3\n0 0\n1 0\n0 1\n"
     << "elements 1\n0 1 7\n";  // node 7 does not exist
  EXPECT_THROW((void)fem::read_mesh(ss), Error);
}

TEST(MeshIo, TypeNamesRoundTrip) {
  for (fem::ElemType t : {fem::ElemType::Quad4, fem::ElemType::Tri3,
                          fem::ElemType::Quad8, fem::ElemType::Hex8})
    EXPECT_EQ(fem::elem_type_from_name(fem::elem_type_name(t)), t);
  EXPECT_THROW((void)fem::elem_type_from_name("hex27"), Error);
}

TEST(MeshIo, ReadMeshSolvesEndToEnd) {
  // Write a mesh, read it back, build a problem on it by hand and solve.
  const fem::Mesh original = fem::structured_quad(6, 3, 6.0, 3.0);
  std::stringstream ss;
  fem::write_mesh(ss, original);
  const fem::Mesh mesh = fem::read_mesh(ss);

  fem::DofMap dofs(mesh.num_nodes(), 2);
  for (index_t n : mesh.nodes_at_x(0.0)) dofs.fix_node(n);
  dofs.finalize();
  fem::Material mat;
  const sparse::CsrMatrix k =
      fem::assemble(mesh, dofs, mat, fem::Operator::Stiffness);
  Vector f(static_cast<std::size_t>(dofs.num_free()), 0.0);
  const IndexVector tip = mesh.nodes_at_x(6.0);
  fem::add_edge_load(dofs, tip, 0, 50.0, f);

  Vector x(f.size(), 0.0);
  core::Ilu0Precond ilu(k);
  EXPECT_TRUE(core::fgmres(k, f, x, ilu).converged);
}

// ---- Nonlinear driver ----

TEST(Nonlinear, ZeroSofteningRecoversLinearSolution) {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 3;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  Vector x_lin(prob.load.size(), 0.0);
  core::Ilu0Precond ilu(prob.stiffness);
  core::SolveOptions sopts;
  sopts.tol = 1e-11;
  ASSERT_TRUE(core::fgmres(prob.stiffness, prob.load, x_lin, ilu, sopts)
                  .converged);

  timeint::NonlinearOptions nopts;
  nopts.softening = 0.0;
  nopts.solve.tol = 1e-11;
  const timeint::NonlinearResult res = timeint::solve_nonlinear_sequential(
      prob.mesh, prob.dofs, prob.material, prob.load, nopts);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.picard_iterations, 1);
  const real_t scale = la::nrm_inf(x_lin);
  for (std::size_t i = 0; i < x_lin.size(); ++i)
    EXPECT_NEAR(res.u[i], x_lin[i], 1e-6 * scale);
}

TEST(Nonlinear, SofteningIncreasesDisplacement) {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 3;
  spec.load_total = 200.0;  // large enough to produce visible strain
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  timeint::NonlinearOptions lin;
  lin.softening = 0.0;
  const auto r_lin = timeint::solve_nonlinear_sequential(
      prob.mesh, prob.dofs, prob.material, prob.load, lin);
  timeint::NonlinearOptions soft;
  soft.softening = 5.0;
  const auto r_soft = timeint::solve_nonlinear_sequential(
      prob.mesh, prob.dofs, prob.material, prob.load, soft);
  ASSERT_TRUE(r_lin.converged && r_soft.converged);
  EXPECT_GT(r_soft.picard_iterations, 1);
  EXPECT_GT(la::nrm_inf(r_soft.u), la::nrm_inf(r_lin.u));
  // Picard history contracts.
  const auto& h = r_soft.picard_history;
  ASSERT_GE(h.size(), 2u);
  EXPECT_LT(h.back(), h.front());
}

TEST(Nonlinear, EddMatchesSequential) {
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 3;
  spec.load_total = 150.0;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 3);

  timeint::NonlinearOptions nopts;
  nopts.softening = 3.0;
  nopts.solve.tol = 1e-10;
  const auto seq = timeint::solve_nonlinear_sequential(
      prob.mesh, prob.dofs, prob.material, prob.load, nopts);
  core::PolySpec poly;
  poly.degree = 7;
  const auto par = timeint::solve_nonlinear_edd(
      prob.mesh, prob.dofs, prob.material, part, prob.load, poly, nopts);
  ASSERT_TRUE(seq.converged && par.converged);
  const real_t scale = la::nrm_inf(seq.u);
  for (std::size_t i = 0; i < seq.u.size(); ++i)
    EXPECT_NEAR(par.u[i], seq.u[i], 1e-4 * scale);
}

TEST(Nonlinear, SecantFactorsBehave) {
  fem::CantileverSpec spec;
  spec.nx = 4;
  spec.ny = 2;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  Vector zero(prob.load.size(), 0.0);
  for (real_t f : timeint::secant_factors(prob.mesh, prob.dofs, zero, 2.0))
    EXPECT_DOUBLE_EQ(f, 1.0);
  // A deformed state softens every strained element: factors in (0, 1].
  Vector u(prob.load.size(), 0.01);
  for (real_t f : timeint::secant_factors(prob.mesh, prob.dofs, u, 2.0)) {
    EXPECT_GT(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}


// ---- VTK export ----

TEST(Vtk, WritesWellFormedFile) {
  fem::CantileverSpec spec;
  spec.nx = 4;
  spec.ny = 2;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  Vector u(prob.load.size(), 0.0);
  core::Ilu0Precond ilu(prob.stiffness);
  ASSERT_TRUE(core::fgmres(prob.stiffness, prob.load, u, ilu).converged);
  const auto stresses =
      fem::compute_stresses(prob.mesh, prob.dofs, prob.material, u);
  Vector vm;
  for (const auto& s : stresses) vm.push_back(s.von_mises);

  std::stringstream ss;
  fem::write_vtk(ss, prob.mesh, prob.dofs, u, {{"von_mises", vm}});
  const std::string text = ss.str();
  EXPECT_NE(text.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(text.find("POINTS 15 double"), std::string::npos);
  EXPECT_NE(text.find("CELLS 8 40"), std::string::npos);
  EXPECT_NE(text.find("CELL_TYPES 8"), std::string::npos);
  EXPECT_NE(text.find("VECTORS displacement double"), std::string::npos);
  EXPECT_NE(text.find("SCALARS von_mises double 1"), std::string::npos);
}

TEST(Vtk, CellTypesAndFieldValidation) {
  EXPECT_EQ(fem::vtk_cell_type(fem::ElemType::Quad4), 9);
  EXPECT_EQ(fem::vtk_cell_type(fem::ElemType::Tri3), 5);
  EXPECT_EQ(fem::vtk_cell_type(fem::ElemType::Quad8), 23);
  EXPECT_EQ(fem::vtk_cell_type(fem::ElemType::Hex8), 12);

  fem::CantileverSpec spec;
  spec.nx = 2;
  spec.ny = 1;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  Vector u(prob.load.size(), 0.0);
  std::stringstream ss;
  EXPECT_THROW(
      fem::write_vtk(ss, prob.mesh, prob.dofs, u, {{"bad", Vector(99)}}),
      Error);
}

}  // namespace
}  // namespace pfem
