// Seeded chaos harness for the fault-injection tests (test_fault.cpp).
//
// A chaos case is: generate a FaultPlan from a seed, arm it (plus a
// channel timeout) on a fresh 4-rank team, build the operator and run
// one batch solve on a small cantilever, and record what happened —
// converged, typed comm error, or (the bug we hunt) anything else.
// The whole sweep runs under a GlobalWatchdog so a hang becomes a loud
// process abort with the offending seed printed, never a stuck CI job.
//
// Determinism contract asserted by the sweep (see DESIGN.md §9): with
// at_most_one_aborting plans, a replay of the same seed reproduces
//   - the identical full fault-event sequence when no aborting fault
//     fired (and the identical residual history), and
//   - the identical event prefix of the aborting rank up to and
//     including the aborting fault otherwise (event logs of *other*
//     ranks after the abort flag trips are timing-dependent by design).
#pragma once

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/edd_batch.hpp"
#include "exp/experiments.hpp"
#include "fault/fault.hpp"
#include "fem/families.hpp"
#include "fem/problems.hpp"
#include "net/transport.hpp"
#include "par/comm.hpp"

namespace pfem::chaos {

inline constexpr int kRanks = 4;

/// Hard backstop for the whole test binary: if anything hangs past the
/// deadline, print a diagnostic and _Exit non-zero (no unwinding — a
/// deadlocked team cannot be joined anyway).  Exit code 86 marks a
/// watchdog kill apart from ordinary test failures.
class GlobalWatchdog {
 public:
  explicit GlobalWatchdog(double seconds) {
    thread_ = std::thread([this, seconds] {
      std::unique_lock lock(m_);
      if (!cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                        [this] { return done_; })) {
        std::fprintf(stderr,
                     "chaos watchdog: no completion within %.1f s while "
                     "running '%s' — aborting the process\n",
                     seconds, note_.c_str());
        std::fflush(stderr);
        std::_Exit(86);
      }
    });
  }

  GlobalWatchdog(const GlobalWatchdog&) = delete;
  GlobalWatchdog& operator=(const GlobalWatchdog&) = delete;

  ~GlobalWatchdog() {
    {
      std::scoped_lock lock(m_);
      done_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

  /// Name the work in flight, so a kill message says which seed hung.
  void note(std::string what) {
    std::scoped_lock lock(m_);
    note_ = std::move(what);
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool done_ = false;
  std::string note_;
  std::thread thread_;
};

/// The shared model every chaos case solves: a small cantilever whose
/// EDD partition matches kRanks.  Built once — plan generation varies
/// per seed, the physics does not need to.
struct Scene {
  fem::CantileverProblem prob;
  std::shared_ptr<const partition::EddPartition> part;
  core::PolySpec poly;
  /// Optional two-level deflation baked into the case's operator build
  /// (the family scenes use the jump-aware coarse space; the default
  /// scene runs one-level).
  core::DeflationOptions deflation;
};

inline const Scene& scene() {
  static const Scene s = [] {
    fem::CantileverSpec spec;
    spec.nx = 10;
    spec.ny = 4;
    fem::CantileverProblem prob = fem::make_cantilever(spec);
    auto part = std::make_shared<const partition::EddPartition>(
        exp::make_edd(prob, kRanks));
    core::PolySpec poly;
    poly.kind = core::PolyKind::Gls;
    poly.degree = 4;
    return Scene{std::move(prob), std::move(part), poly, {}};
  }();
  return s;
}

/// A problem-family scene (fem/families.hpp) with a 1e4 coefficient
/// jump misaligned with the partition and the matching jump-aware
/// deflation baked in: the chaos contract must hold on heterogeneous
/// operators and two-level builds too (the coarse assembly adds an
/// allreduce + redundant factorization to the fault surface).  Built
/// once per family.
inline const Scene& family_scene(const std::string& family) {
  static std::mutex m;
  static std::map<std::string, Scene> scenes;
  std::scoped_lock lock(m);
  auto it = scenes.find(family);
  if (it == scenes.end()) {
    fem::ProblemSpec spec = fem::default_spec(family);
    spec.jump = 1.0e4;
    spec.aligned = false;
    spec.checker = 3;
    fem::FamilyProblem fp = fem::make_problem(spec);
    auto part = std::make_shared<const partition::EddPartition>(
        exp::make_edd(fp, kRanks));
    core::PolySpec poly;
    poly.kind = core::PolyKind::Gls;
    poly.degree = 4;
    core::DeflationOptions deflation =
        exp::family_deflation(fp, /*jump_aware=*/true);
    it = scenes
             .emplace(family, Scene{std::move(fp.prob), std::move(part), poly,
                                    std::move(deflation)})
             .first;
  }
  return it->second;
}

/// What one chaos case produced.  The invariant every case must satisfy:
/// converged XOR typed_error (never a hang — the watchdog enforces that
/// side — and never an untyped escape).
struct ChaosRun {
  bool converged = false;
  bool typed_error = false;
  std::string error;               ///< CommError text when typed_error
  double true_relres = -1.0;       ///< ‖K x − f‖/‖f‖ when converged
  std::vector<real_t> history;     ///< residual history when converged
  std::string signature;           ///< event_signature(all fired events)
  std::vector<std::vector<fault::FaultEvent>> rank_events;  ///< per rank
};

/// Optional channel substrate for a chaos case: given kRanks, build the
/// net::Transport the team should run on (shm loopback, socket
/// loopback, ...).  Null means the default in-process rings.  Fault
/// injection sits above the transport seam, so every substrate must
/// satisfy the same chaos contract.
using TransportFactory =
    std::function<std::shared_ptr<net::Transport>(int nranks)>;

/// Build + solve on a fresh team with `inj` armed.  Every outcome is
/// captured; only a non-Comm exception escapes (and fails the test).
/// `kernels` selects the rank-kernel format/overlap under chaos — the
/// fault sites and replay contract must be kernel-independent.
/// `sc` selects the scene (null = the default cantilever).
inline ChaosRun run_case(fault::FaultInjector& inj, double timeout_seconds,
                         const TransportFactory& transport_factory = {},
                         const core::KernelOptions& kernels = {},
                         const Scene* sc = nullptr) {
  const Scene& s = sc != nullptr ? *sc : scene();
  ChaosRun out;
  {
    par::TeamConfig tc;
    tc.nranks = kRanks;
    if (transport_factory) tc.transport = transport_factory(kRanks);
    par::Team team(tc);
    team.set_comm_timeout(timeout_seconds);
    team.set_fault_injector(&inj);
    try {
      const core::EddOperatorState op =
          core::build_edd_operator(team, *s.part, s.poly, nullptr, nullptr,
                                   kernels, s.deflation);
      const std::vector<Vector> rhs{s.prob.load};
      const core::BatchSolveResult r =
          core::solve_edd_batch(team, *s.part, op, rhs);
      if (r.comm_failed()) {
        out.typed_error = true;
        out.error = r.comm_error;
      } else {
        out.converged = r.items.at(0).converged;
        out.history = r.items.at(0).history;
        if (out.converged) {
          // Verify against ground truth: the solver's own residual
          // recurrence could be fooled by a corrupted exchange; the
          // assembled stiffness cannot.
          const Vector& x = r.x.at(0);
          Vector kx(x.size(), 0.0);
          s.prob.stiffness.spmv(x, kx);
          real_t num = 0.0;
          real_t den = 0.0;
          for (std::size_t i = 0; i < x.size(); ++i) {
            const real_t d = kx[i] - s.prob.load[i];
            num += d * d;
            den += s.prob.load[i] * s.prob.load[i];
          }
          out.true_relres = std::sqrt(num / den);
        }
      }
    } catch (const par::CommError& e) {
      out.typed_error = true;  // the operator build died on the wire
      out.error = e.what();
    }
  }  // team joined: the injector's logs are safe to read
  for (int r = 0; r < kRanks; ++r) out.rank_events.push_back(inj.events(r));
  out.signature = fault::event_signature(inj.all_events());
  return out;
}

[[nodiscard]] inline bool is_aborting(const fault::FaultEvent& e) {
  return e.action.type == fault::FaultType::Drop ||
         e.action.type == fault::FaultType::Crash;
}

/// The deterministic part of a run's fault record: the full event
/// sequence when no aborting fault fired; otherwise the aborting rank's
/// own log up to and including its aborting event.  Nothing else is
/// replayable by contract — other ranks proceed normally until the
/// abort flag trips them at a timing-dependent point, so their log
/// lengths may differ across replays (see DESIGN.md §9).  With
/// at_most_one_aborting plans the aborting rank is unique.
[[nodiscard]] inline std::string deterministic_signature(const ChaosRun& run) {
  for (const auto& evts : run.rank_events)
    for (const auto& e : evts)
      if (is_aborting(e)) {
        std::vector<fault::FaultEvent> prefix;
        for (const auto& p : evts) {
          prefix.push_back(p);
          if (is_aborting(p)) break;
        }
        return fault::event_signature(prefix);
      }
  return run.signature;
}

}  // namespace pfem::chaos
