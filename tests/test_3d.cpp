// 3-D substrate tests: Hex8 element invariants, the structured hex
// mesher, and the full solver stack on 3-D elasticity.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cg.hpp"
#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/elements.hpp"
#include "fem/problems.hpp"
#include "fem/structured.hpp"
#include "la/vector_ops.hpp"

namespace pfem {
namespace {

const fem::HexCoords kUnitCube{0, 0, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0,
                               0, 0, 1, 1, 0, 1, 1, 1, 1, 0, 1, 1};

TEST(Hex8, StiffnessSymmetric) {
  fem::Material mat;
  const la::DenseMatrix ke = fem::hex8_stiffness(kUnitCube, mat);
  EXPECT_LT(ke.max_abs_diff(ke.transposed()), 1e-9);
}

TEST(Hex8, RigidBodyNullspaceSixModes) {
  // 3 translations + 3 infinitesimal rotations produce zero force.
  fem::Material mat;
  const la::DenseMatrix ke = fem::hex8_stiffness(kUnitCube, mat);
  std::vector<Vector> modes(6, Vector(24, 0.0));
  for (int i = 0; i < 8; ++i) {
    const real_t x = kUnitCube[3 * i], y = kUnitCube[3 * i + 1],
                 z = kUnitCube[3 * i + 2];
    modes[0][3 * i] = 1.0;       // tx
    modes[1][3 * i + 1] = 1.0;   // ty
    modes[2][3 * i + 2] = 1.0;   // tz
    modes[3][3 * i] = -y;        // rot z
    modes[3][3 * i + 1] = x;
    modes[4][3 * i + 1] = -z;    // rot x
    modes[4][3 * i + 2] = y;
    modes[5][3 * i + 2] = -x;    // rot y
    modes[5][3 * i] = z;
  }
  Vector f(24);
  for (const Vector& u : modes) {
    ke.matvec(u, f);
    EXPECT_LT(la::nrm_inf(f), 1e-8);
  }
}

TEST(Hex8, PatchTestUniaxialStretch) {
  // u = a*x on a distorted hexahedron reproduces the constant-strain
  // energy 1/2 D00 a^2 V exactly (trilinear patch test).
  fem::Material mat;
  fem::HexCoords xyz = kUnitCube;
  xyz[3 * 6] = 1.2;  // perturb one top corner
  xyz[3 * 6 + 1] = 1.1;
  const la::DenseMatrix ke = fem::hex8_stiffness(xyz, mat);
  const double a = 0.01;
  Vector u(24, 0.0), f(24);
  for (int i = 0; i < 8; ++i) u[3 * i] = a * xyz[3 * i];
  ke.matvec(u, f);
  const double energy = 0.5 * la::dot(u, f);
  // Volume by Gauss integration of the same element: use the mass with
  // unit density as Σ N_i N_j integrals... simpler: energy ratio check
  // against the unit cube version scaled by volume is fragile for a
  // distorted cell, so check instead that stress is constant: the
  // internal force at interior-free dofs balances (f in the nullspace of
  // rigid translations: Σ f_x = 0).
  double fx_sum = 0.0;
  for (int i = 0; i < 8; ++i) fx_sum += f[3 * i];
  EXPECT_NEAR(fx_sum, 0.0, 1e-10 * la::nrm_inf(f));
  EXPECT_GT(energy, 0.0);
}

TEST(Hex8, MassTotalEqualsDensityTimesVolume) {
  fem::Material mat;
  mat.density = 3.0;
  const la::DenseMatrix me = fem::hex8_mass(kUnitCube, mat);
  double total = 0.0;
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) total += me(3 * i, 3 * j);
  EXPECT_NEAR(total, 3.0, 1e-12);
}

TEST(Hex8, InvertedElementThrows) {
  fem::HexCoords bad = kUnitCube;
  for (int i = 0; i < 8; ++i) bad[3 * i + 2] = -bad[3 * i + 2];  // mirror z
  EXPECT_THROW((void)fem::hex8_stiffness(bad, fem::Material{}), Error);
}

TEST(StructuredHex, CountsAndCoords) {
  const fem::Mesh mesh = fem::structured_hex(3, 2, 2, 3.0, 2.0, 2.0);
  EXPECT_EQ(mesh.dim(), 3);
  EXPECT_EQ(mesh.num_nodes(), 4 * 3 * 3);
  EXPECT_EQ(mesh.num_elems(), 12);
  EXPECT_DOUBLE_EQ(mesh.z(mesh.num_nodes() - 1), 2.0);
  EXPECT_EQ(mesh.nodes_at_x(0.0).size(), 9u);
  // Every element has positive volume via the stiffness path.
  fem::Material mat;
  for (index_t e = 0; e < mesh.num_elems(); ++e)
    EXPECT_NO_THROW((void)fem::element_matrix(mesh, mat,
                                              fem::Operator::Stiffness, e));
}

TEST(Cantilever3d, AssemblesSpdSystem) {
  fem::Cantilever3dSpec spec;
  const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);
  EXPECT_EQ(prob.dofs.dofs_per_node(), 3);
  EXPECT_LT(prob.stiffness.symmetry_defect(), 1e-8);
  Vector x(prob.load.size()), kx(prob.load.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::sin(double(i));
  prob.stiffness.spmv(x, kx);
  EXPECT_GT(la::dot(x, kx), 0.0);
}

TEST(Cantilever3d, EddSolveMatchesSequential) {
  fem::Cantilever3dSpec spec;
  spec.nx = 6;
  spec.ny = 2;
  spec.nz = 2;
  const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);

  Vector x_ref(prob.load.size(), 0.0);
  core::Ilu0Precond ilu(prob.stiffness);
  core::SolveOptions ref_opts;
  ref_opts.tol = 1e-12;
  ref_opts.max_iters = 50000;
  ASSERT_TRUE(core::fgmres(prob.stiffness, prob.load, x_ref, ilu, ref_opts)
                  .converged);

  for (int p : {2, 4}) {
    const partition::EddPartition part = exp::make_edd(prob, p);
    core::PolySpec poly;
    poly.degree = 7;
    core::SolveOptions opts;
    opts.tol = 1e-10;
    opts.max_iters = 50000;
    const core::DistSolve res = core::solve_edd(part, prob.load, poly,
                                                      opts);
    ASSERT_TRUE(res.converged) << "P=" << p;
    const real_t scale = la::nrm_inf(x_ref);
    for (std::size_t i = 0; i < x_ref.size(); ++i)
      EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * scale) << "P=" << p;
  }
}

TEST(Cantilever3d, RddAndCgWorkToo) {
  fem::Cantilever3dSpec spec;
  spec.nx = 5;
  const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);
  const partition::RddPartition rpart = exp::make_rdd(prob, 3);
  const core::DistSolve rdd = core::solve_rdd(rpart, prob.load);
  EXPECT_TRUE(rdd.converged);

  const partition::EddPartition epart = exp::make_edd(prob, 3);
  core::PolySpec poly;
  poly.degree = 5;
  const core::DistSolve cg = core::solve_edd_cg(epart, prob.load, poly);
  EXPECT_TRUE(cg.converged);
  const real_t scale = la::nrm_inf(rdd.x);
  for (std::size_t i = 0; i < rdd.x.size(); ++i)
    EXPECT_NEAR(cg.x[i], rdd.x[i], 1e-4 * scale);
}

TEST(Cantilever3d, TipStretchesUnderPull) {
  fem::Cantilever3dSpec spec;
  spec.nx = 8;
  const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);
  const partition::EddPartition part = exp::make_edd(prob, 2);
  core::PolySpec poly;
  poly.degree = 7;
  const core::DistSolve res = core::solve_edd(part, prob.load, poly);
  ASSERT_TRUE(res.converged);
  for (index_t n : prob.mesh.nodes_at_x(static_cast<real_t>(spec.nx))) {
    const index_t d = prob.dofs.dof(n, 0);
    ASSERT_GE(d, 0);
    EXPECT_GT(res.x[static_cast<std::size_t>(d)], 0.0);
  }
}

TEST(Material, Elastic3dMatrixProperties) {
  fem::Material mat;
  const la::DenseMatrix d = mat.elastic_3d_d();
  EXPECT_LT(d.max_abs_diff(d.transposed()), 1e-12);
  const la::EigRange r = la::symmetric_eig_range(d);
  EXPECT_GT(r.min, 0.0);  // positive definite for nu < 0.5
  // Shear modulus on the diagonal.
  EXPECT_NEAR(d(3, 3), 1000.0 / (2.0 * 1.3), 1e-9);
}

}  // namespace
}  // namespace pfem
