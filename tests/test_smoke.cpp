// End-to-end smoke test: build a small cantilever, solve it with the
// EDD solver on 4 ranks, compare against a direct sequential solve.
#include <gtest/gtest.h>

#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"

namespace pfem {
namespace {

TEST(Smoke, EddSolveMatchesSequential) {
  fem::CantileverSpec spec;
  spec.nx = 12;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);

  // Sequential reference via FGMRES + ILU(0) to tight tolerance.
  Vector x_ref(prob.load.size(), 0.0);
  core::Ilu0Precond ilu(prob.stiffness);
  core::SolveOptions seq_opts;
  seq_opts.tol = 1e-12;
  seq_opts.max_iters = 20000;
  const core::SolveReport ref =
      core::fgmres(prob.stiffness, prob.load, x_ref, ilu, seq_opts);
  ASSERT_TRUE(ref.converged);

  const partition::EddPartition part = exp::make_edd(prob, 4);
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-10;
  opts.max_iters = 20000;
  const core::DistSolve res = core::solve_edd(part, prob.load, poly,
                                                    opts);
  ASSERT_TRUE(res.converged);
  ASSERT_EQ(res.x.size(), x_ref.size());
  for (std::size_t i = 0; i < x_ref.size(); ++i)
    EXPECT_NEAR(res.x[i], x_ref[i], 1e-6 * (1.0 + std::abs(x_ref[i])))
        << "dof " << i;
}

}  // namespace
}  // namespace pfem
