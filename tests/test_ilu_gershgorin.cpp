// Tests for Gershgorin spectrum bounds (Theorem 1) and ILU(0), including
// the paper's floating-subdomain failure mode (§3.2.3).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "fem/assembly.hpp"
#include "fem/dofmap.hpp"
#include "fem/structured.hpp"
#include "la/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "sparse/gershgorin.hpp"
#include "sparse/ilu0.hpp"

namespace pfem::sparse {
namespace {

TEST(Gershgorin, LambdaMaxBoundHoldsForTridiag) {
  const index_t n = 50;
  const CsrMatrix a = tridiag(n, 2.0, -1.0);
  const double lmax = 2.0 + 2.0 * std::cos(M_PI / static_cast<double>(n + 1));
  const double bound = gershgorin_lambda_max_bound(a);
  EXPECT_LE(lmax, bound);
  EXPECT_DOUBLE_EQ(bound, 4.0);
}

TEST(Gershgorin, IntervalEnclosesSpectrum) {
  const CsrMatrix a = tridiag(30, 2.0, -1.0);
  const Interval iv = gershgorin_interval(a);
  EXPECT_LE(iv.lo, 2.0 - 2.0 * std::cos(M_PI / 31.0));
  EXPECT_GE(iv.hi, 2.0 + 2.0 * std::cos(M_PI / 31.0));
  EXPECT_DOUBLE_EQ(iv.lo, 0.0);
  EXPECT_DOUBLE_EQ(iv.hi, 4.0);
}

TEST(Gershgorin, PowerMethodFindsSpectralRadius) {
  const index_t n = 40;
  const CsrMatrix a = tridiag(n, 2.0, -1.0);
  const double lmax = 2.0 + 2.0 * std::cos(M_PI / static_cast<double>(n + 1));
  EXPECT_NEAR(power_method_rho(a, 2000), lmax, 1e-6);
}

TEST(Ilu0, ExactForTridiagonal) {
  // ILU(0) on a tridiagonal matrix incurs no fill, so LU is exact and a
  // single solve gives the exact solution.
  const index_t n = 25;
  const CsrMatrix a = tridiag(n, 3.0, -1.0);
  const Ilu0 ilu(a);
  Vector b(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) b[i] = std::sin(0.3 * i + 1.0);
  Vector x(static_cast<std::size_t>(n));
  ilu.solve(b, x);
  Vector check(static_cast<std::size_t>(n));
  a.spmv(x, check);
  for (index_t i = 0; i < n; ++i) EXPECT_NEAR(check[i], b[i], 1e-12);
}

TEST(Ilu0, RichardsonWithIluPreconditionerConverges) {
  // For an M-matrix the ILU(0) splitting is convergent: the
  // preconditioned Richardson iteration z += C(b − Az) contracts.
  const CsrMatrix a = laplace2d(12, 12);
  const Ilu0 ilu(a);
  const std::size_t n = static_cast<std::size_t>(a.rows());
  Vector b(n, 1.0), z(n, 0.0), r(n), dz(n);
  real_t res0 = 0.0, res = 0.0;
  for (int it = 0; it < 120; ++it) {
    a.spmv(z, r);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    res = la::nrm2(r);
    if (it == 0) res0 = res;
    ilu.solve(r, dz);
    la::axpy(1.0, dz, z);
  }
  EXPECT_LT(res, 1e-6 * res0);
}

TEST(Ilu0, ThrowsOnMissingDiagonal) {
  CooBuilder coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);
  const CsrMatrix a = coo.build();
  EXPECT_THROW(Ilu0 ilu(a), Error);
}

TEST(Ilu0, FloatingSubdomainZeroPivot) {
  // The paper's §3.2.3 failure mode: a subdomain stiffness with no
  // Dirichlet support is singular (rigid-body modes).  On a one-element
  // subdomain the pattern is dense, so ILU(0) is an exact LU and must
  // hit a (numerically) zero pivot when eliminating into the rigid-body
  // nullspace.
  fem::Mesh mesh = fem::structured_quad(1, 1, 1.0, 1.0);
  fem::DofMap dofs(mesh.num_nodes(), 2);
  dofs.finalize();  // nothing fixed -> floating
  fem::Material mat;
  const CsrMatrix k = fem::assemble(mesh, dofs, mat,
                                    fem::Operator::Stiffness);
  EXPECT_THROW(Ilu0 ilu(k, /*pivot_tol=*/1e-8), Error);
}

TEST(Ilu0, ConstrainedSubdomainFactors) {
  // Same mesh with one edge clamped factors fine.
  fem::Mesh mesh = fem::structured_quad(2, 2, 2.0, 2.0);
  fem::DofMap dofs(mesh.num_nodes(), 2);
  for (index_t node : mesh.nodes_at_x(0.0)) dofs.fix_node(node);
  dofs.finalize();
  fem::Material mat;
  const CsrMatrix k = fem::assemble(mesh, dofs, mat,
                                    fem::Operator::Stiffness);
  EXPECT_NO_THROW(Ilu0 ilu(k));
}

TEST(Ilu0, SolveFlopsPositive) {
  const Ilu0 ilu(tridiag(10, 2.0, -1.0));
  EXPECT_GT(ilu.solve_flops(), 0u);
}

}  // namespace
}  // namespace pfem::sparse
