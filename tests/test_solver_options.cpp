// Tests for the solver ablation options: CGS2 re-orthogonalization and
// batched Gram-Schmidt reductions.
#include <gtest/gtest.h>

#include <cmath>

#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "sparse/generators.hpp"

namespace pfem::core {
namespace {

fem::CantileverProblem test_problem() {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 5;
  return fem::make_cantilever(spec);
}

TEST(Reorth, SequentialCgs2TightensTrueResidual) {
  const sparse::CsrMatrix a = sparse::laplace2d(14, 14);
  Vector b(static_cast<std::size_t>(a.rows()), 1.0);
  SolveOptions opts;
  opts.tol = 1e-13;
  opts.max_iters = 5000;
  JacobiPrecond jacobi(a);

  Vector x1(b.size(), 0.0);
  const SolveReport plain = fgmres(a, b, x1, jacobi, opts);
  Vector x2(b.size(), 0.0);
  SolveOptions opts2 = opts;
  opts2.reorthogonalize = true;
  const SolveReport cgs2 = fgmres(a, b, x2, jacobi, opts2);

  // Both must reach a very small true residual; CGS2 must not be worse.
  EXPECT_LT(cgs2.final_relres, 1e-10);
  EXPECT_LE(cgs2.final_relres, plain.final_relres * 10.0);
}

TEST(Reorth, EddSolutionUnchanged) {
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-10;
  const DistSolve plain = solve_edd(part, prob.load, poly, opts);
  SolveOptions opts2 = opts;
  opts2.reorthogonalize = true;
  for (EddVariant variant : {EddVariant::Basic, EddVariant::Enhanced}) {
    const DistSolve re =
        solve_edd(part, prob.load, poly, opts2, variant);
    ASSERT_TRUE(re.converged);
    const real_t scale = la::nrm_inf(plain.x);
    for (std::size_t i = 0; i < plain.x.size(); ++i)
      EXPECT_NEAR(re.x[i], plain.x[i], 1e-6 * scale);
  }
}

TEST(Batched, EddSameSolutionFewerReductions) {
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 5;
  SolveOptions opts;
  opts.tol = 1e-8;
  const DistSolve paper = solve_edd(part, prob.load, poly, opts);
  SolveOptions opts2 = opts;
  opts2.batched_reductions = true;
  const DistSolve batched = solve_edd(part, prob.load, poly, opts2);

  ASSERT_TRUE(paper.converged && batched.converged);
  EXPECT_EQ(paper.iterations, batched.iterations);
  // Identical numerics (the batched sum folds the same rank partials in
  // the same deterministic order).
  for (std::size_t i = 0; i < paper.x.size(); ++i)
    EXPECT_DOUBLE_EQ(batched.x[i], paper.x[i]);
  EXPECT_LT(batched.rank_counters[0].global_reductions,
            paper.rank_counters[0].global_reductions);
}

TEST(Batched, PerIterationReductionCountIsConstant) {
  // With batching, every iteration does exactly 2 reductions (one fused
  // h-batch + one norm), independent of j.
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 4);
  PolySpec poly;
  poly.degree = 3;
  SolveOptions opts;
  opts.tol = 1e-300;
  opts.batched_reductions = true;
  opts.max_iters = 5;
  const DistSolve a = solve_edd(part, prob.load, poly, opts);
  opts.max_iters = 6;
  const DistSolve b = solve_edd(part, prob.load, poly, opts);
  const par::PerfCounters d =
      b.rank_counters[0].delta_since(a.rank_counters[0]);
  EXPECT_EQ(d.global_reductions, 2u);
  EXPECT_EQ(d.neighbor_exchanges, 4u);  // unchanged: m+1
}

TEST(Batched, RddSameSolution) {
  const fem::CantileverProblem prob = test_problem();
  const partition::RddPartition part = exp::make_rdd(prob, 4);
  RddOptions rdd;
  rdd.poly.degree = 5;
  SolveOptions opts;
  opts.tol = 1e-8;
  const DistSolve paper = solve_rdd(part, prob.load, rdd, opts);
  SolveOptions opts2 = opts;
  opts2.batched_reductions = true;
  const DistSolve batched = solve_rdd(part, prob.load, rdd, opts2);
  ASSERT_TRUE(paper.converged && batched.converged);
  for (std::size_t i = 0; i < paper.x.size(); ++i)
    EXPECT_DOUBLE_EQ(batched.x[i], paper.x[i]);
  EXPECT_LT(batched.rank_counters[0].global_reductions,
            paper.rank_counters[0].global_reductions);
}

TEST(Batched, ReorthCombinationConverges) {
  const fem::CantileverProblem prob = test_problem();
  const partition::EddPartition part = exp::make_edd(prob, 3);
  PolySpec poly;
  poly.degree = 7;
  SolveOptions opts;
  opts.tol = 1e-10;
  opts.batched_reductions = true;
  opts.reorthogonalize = true;
  const DistSolve res = solve_edd(part, prob.load, poly, opts);
  EXPECT_TRUE(res.converged);
}

}  // namespace
}  // namespace pfem::core
