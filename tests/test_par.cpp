// Tests for the message-passing runtime (the MPI substitute) and the
// machine cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "par/comm.hpp"
#include "par/cost_model.hpp"

namespace pfem::par {
namespace {

TEST(Comm, PointToPointDelivers) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      Vector data{1.0, 2.0, 3.0};
      c.send(1, 7, data);
    } else {
      Vector out;
      c.recv(0, 7, out);
      ASSERT_EQ(out.size(), 3u);
      EXPECT_DOUBLE_EQ(out[1], 2.0);
    }
  });
}

TEST(Comm, MessagesWithSameTagStayOrdered) {
  run_spmd(2, [](Comm& c) {
    constexpr int kMsgs = 50;
    if (c.rank() == 0) {
      for (int k = 0; k < kMsgs; ++k) {
        Vector data{static_cast<real_t>(k)};
        c.send(1, 0, data);
      }
    } else {
      Vector out;
      for (int k = 0; k < kMsgs; ++k) {
        c.recv(0, 0, out);
        EXPECT_DOUBLE_EQ(out[0], static_cast<real_t>(k));
      }
    }
  });
}

TEST(Comm, TagsMatchSelectively) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      Vector a{10.0}, b{20.0};
      c.send(1, /*tag=*/2, a);
      c.send(1, /*tag=*/1, b);
    } else {
      Vector out;
      c.recv(0, 1, out);  // delivered second, matched first by tag
      EXPECT_DOUBLE_EQ(out[0], 20.0);
      c.recv(0, 2, out);
      EXPECT_DOUBLE_EQ(out[0], 10.0);
    }
  });
}

TEST(Comm, AllreduceSumScalar) {
  for (int p : {1, 2, 4, 7}) {
    run_spmd(p, [p](Comm& c) {
      const real_t sum = c.allreduce_sum(static_cast<real_t>(c.rank() + 1));
      EXPECT_DOUBLE_EQ(sum, p * (p + 1) / 2.0);
    });
  }
}

TEST(Comm, AllreduceSumVectorDeterministicAcrossRanks) {
  // All ranks must observe bit-identical results.
  constexpr int kP = 5;
  std::vector<Vector> results(kP);
  run_spmd(kP, [&](Comm& c) {
    Vector v(8);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = std::sin(static_cast<real_t>(c.rank()) * 1.7 +
                      static_cast<real_t>(i));
    c.allreduce_sum(v);
    results[static_cast<std::size_t>(c.rank())] = v;
  });
  for (int r = 1; r < kP; ++r)
    for (std::size_t i = 0; i < results[0].size(); ++i)
      EXPECT_EQ(results[0][i], results[static_cast<std::size_t>(r)][i])
          << "bitwise mismatch at rank " << r;
}

TEST(Comm, AllreduceMax) {
  run_spmd(4, [](Comm& c) {
    const real_t m = c.allreduce_max(static_cast<real_t>(-c.rank()));
    EXPECT_DOUBLE_EQ(m, 0.0);
  });
}

TEST(Comm, BarrierOrdersPhases) {
  constexpr int kP = 4;
  std::atomic<int> phase1{0};
  run_spmd(kP, [&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    // After the barrier every rank must see all increments.
    EXPECT_EQ(phase1.load(), kP);
    (void)c;
  });
}

TEST(Comm, ExceptionPropagatesAndTeamUnwinds) {
  // Rank 1 throws; rank 0 is blocked in a barrier and must be released.
  EXPECT_THROW(
      run_spmd(3,
               [](Comm& c) {
                 if (c.rank() == 1) throw Error("rank 1 failed");
                 c.barrier();  // would deadlock without abort handling
               }),
      Error);
}

TEST(Comm, ExceptionWhileBlockedInRecv) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& c) {
                          if (c.rank() == 1) throw Error("boom");
                          Vector out;
                          c.recv(1, 0, out);  // never arrives
                        }),
               Error);
}

TEST(Comm, CountersTrackTraffic) {
  const auto counters = run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      Vector data(10, 1.0);
      c.send(1, 0, data);
    } else {
      Vector out;
      c.recv(0, 0, out);
    }
    (void)c.allreduce_sum(1.0);
  });
  EXPECT_EQ(counters[0].neighbor_msgs, 1u);
  EXPECT_EQ(counters[0].neighbor_bytes, 80u);
  EXPECT_EQ(counters[1].neighbor_msgs, 0u);
  EXPECT_EQ(counters[0].global_reductions, 1u);
  EXPECT_EQ(counters[1].global_reductions, 1u);
}

TEST(Comm, SelfSendRejected) {
  EXPECT_THROW(run_spmd(1,
                        [](Comm& c) {
                          Vector v{1.0};
                          c.send(0, 0, v);
                        }),
               Error);
}

TEST(Counters, DeltaAndAccumulate) {
  PerfCounters a;
  a.flops = 100;
  a.neighbor_msgs = 3;
  PerfCounters b = a;
  b.flops = 150;
  b.global_reductions = 2;
  const PerfCounters d = b.delta_since(a);
  EXPECT_EQ(d.flops, 50u);
  EXPECT_EQ(d.neighbor_msgs, 0u);
  EXPECT_EQ(d.global_reductions, 2u);
  PerfCounters sum;
  sum += a;
  sum += d;
  EXPECT_EQ(sum.flops, 150u);
}

TEST(CostModel, SerialHasNoCommCost) {
  PerfCounters c;
  c.flops = 1000000;
  c.global_reductions = 50;  // ignored at P=1
  c.global_bytes = 400;
  const ModeledTime t =
      model_time(MachineModel::sgi_origin(), std::vector<PerfCounters>{c});
  EXPECT_GT(t.compute, 0.0);
  EXPECT_DOUBLE_EQ(t.neighbor, 0.0);
  EXPECT_DOUBLE_EQ(t.global_comm, 0.0);
}

TEST(CostModel, CommCostScalesWithLatency) {
  PerfCounters c;
  c.flops = 1000;
  c.neighbor_msgs = 100;
  c.neighbor_bytes = 8000;
  c.global_reductions = 10;
  c.global_bytes = 80;
  const std::vector<PerfCounters> ranks(4, c);
  const ModeledTime sp2 = model_time(MachineModel::ibm_sp2(), ranks);
  const ModeledTime origin = model_time(MachineModel::sgi_origin(), ranks);
  // SP2 latency is 4x the Origin's: neighbor time strictly larger.
  EXPECT_GT(sp2.neighbor, origin.neighbor);
  EXPECT_GT(sp2.global_comm, origin.global_comm);
}

TEST(CostModel, SpeedupOfPerfectlySplitWork) {
  PerfCounters serial;
  serial.flops = 8000000;
  PerfCounters quarter;
  quarter.flops = 2000000;  // no comm: ideal speedup 4
  const double s = modeled_speedup(
      MachineModel::sgi_origin(), std::vector<PerfCounters>{serial},
      std::vector<PerfCounters>(4, quarter));
  EXPECT_NEAR(s, 4.0, 1e-9);
}

TEST(CostModel, MaxRankDominates) {
  PerfCounters fast, slow;
  fast.flops = 100;
  slow.flops = 10000;
  const ModeledTime t = model_time(MachineModel::modern_node(),
                                   std::vector<PerfCounters>{fast, slow});
  const ModeledTime t_slow = model_time(MachineModel::modern_node(),
                                        std::vector<PerfCounters>{slow});
  EXPECT_DOUBLE_EQ(t.compute, t_slow.compute);
}

}  // namespace
}  // namespace pfem::par
