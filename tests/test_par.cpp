// Tests for the message-passing runtime (the MPI substitute) and the
// machine cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "par/comm.hpp"
#include "par/cost_model.hpp"

namespace pfem::par {
namespace {

TEST(Comm, PointToPointDelivers) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      Vector data{1.0, 2.0, 3.0};
      c.send(1, 7, data);
    } else {
      Vector out;
      c.recv(0, 7, out);
      ASSERT_EQ(out.size(), 3u);
      EXPECT_DOUBLE_EQ(out[1], 2.0);
    }
  });
}

TEST(Comm, MessagesWithSameTagStayOrdered) {
  run_spmd(2, [](Comm& c) {
    constexpr int kMsgs = 50;
    if (c.rank() == 0) {
      for (int k = 0; k < kMsgs; ++k) {
        Vector data{static_cast<real_t>(k)};
        c.send(1, 0, data);
      }
    } else {
      Vector out;
      for (int k = 0; k < kMsgs; ++k) {
        c.recv(0, 0, out);
        EXPECT_DOUBLE_EQ(out[0], static_cast<real_t>(k));
      }
    }
  });
}

TEST(Comm, TagsMatchSelectively) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      Vector a{10.0}, b{20.0};
      c.send(1, /*tag=*/2, a);
      c.send(1, /*tag=*/1, b);
    } else {
      Vector out;
      c.recv(0, 1, out);  // delivered second, matched first by tag
      EXPECT_DOUBLE_EQ(out[0], 20.0);
      c.recv(0, 2, out);
      EXPECT_DOUBLE_EQ(out[0], 10.0);
    }
  });
}

TEST(Comm, AllreduceSumScalar) {
  for (int p : {1, 2, 4, 7}) {
    run_spmd(p, [p](Comm& c) {
      const real_t sum = c.allreduce_sum(static_cast<real_t>(c.rank() + 1));
      EXPECT_DOUBLE_EQ(sum, p * (p + 1) / 2.0);
    });
  }
}

TEST(Comm, AllreduceSumVectorDeterministicAcrossRanks) {
  // All ranks must observe bit-identical results.
  constexpr int kP = 5;
  std::vector<Vector> results(kP);
  run_spmd(kP, [&](Comm& c) {
    Vector v(8);
    for (std::size_t i = 0; i < v.size(); ++i)
      v[i] = std::sin(static_cast<real_t>(c.rank()) * 1.7 +
                      static_cast<real_t>(i));
    c.allreduce_sum(v);
    results[static_cast<std::size_t>(c.rank())] = v;
  });
  for (int r = 1; r < kP; ++r)
    for (std::size_t i = 0; i < results[0].size(); ++i)
      EXPECT_EQ(results[0][i], results[static_cast<std::size_t>(r)][i])
          << "bitwise mismatch at rank " << r;
}

TEST(Comm, AllreduceMax) {
  run_spmd(4, [](Comm& c) {
    const real_t m = c.allreduce_max(static_cast<real_t>(-c.rank()));
    EXPECT_DOUBLE_EQ(m, 0.0);
  });
}

TEST(Comm, BarrierOrdersPhases) {
  constexpr int kP = 4;
  std::atomic<int> phase1{0};
  run_spmd(kP, [&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    // After the barrier every rank must see all increments.
    EXPECT_EQ(phase1.load(), kP);
    (void)c;
  });
}

TEST(Comm, ExceptionPropagatesAndTeamUnwinds) {
  // Rank 1 throws; rank 0 is blocked in a barrier and must be released.
  EXPECT_THROW(
      run_spmd(3,
               [](Comm& c) {
                 if (c.rank() == 1) throw Error("rank 1 failed");
                 c.barrier();  // would deadlock without abort handling
               }),
      Error);
}

TEST(Comm, ExceptionWhileBlockedInRecv) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& c) {
                          if (c.rank() == 1) throw Error("boom");
                          Vector out;
                          c.recv(1, 0, out);  // never arrives
                        }),
               Error);
}

TEST(Comm, CountersTrackTrafficOnBothSides) {
  const auto counters = run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      Vector data(10, 1.0);
      c.send(1, 0, data);
    } else {
      Vector out;
      c.recv(0, 0, out);
    }
    (void)c.allreduce_sum(1.0);
  });
  // Send side.
  EXPECT_EQ(counters[0].neighbor_msgs, 1u);
  EXPECT_EQ(counters[0].neighbor_bytes, 80u);
  EXPECT_EQ(counters[0].neighbor_msgs_recv, 0u);
  EXPECT_EQ(counters[1].neighbor_msgs, 0u);
  // Receive side is accounted symmetrically.
  EXPECT_EQ(counters[1].neighbor_msgs_recv, 1u);
  EXPECT_EQ(counters[1].neighbor_bytes_recv, 80u);
  // 80-byte payload lands in the [64, 128) histogram bucket of the sender.
  EXPECT_EQ(counters[0].msg_size_hist[PerfCounters::hist_bucket(80)], 1u);
  EXPECT_EQ(counters[0].global_reductions, 1u);
  EXPECT_EQ(counters[1].global_reductions, 1u);
}

TEST(Comm, RecvIntoPrepostedSpan) {
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      Vector data{4.0, 5.0, 6.0};
      c.send(1, 3, data);
    } else {
      Vector buf(3, 0.0);
      c.recv(0, 3, std::span<real_t>(buf.data(), buf.size()));
      EXPECT_DOUBLE_EQ(buf[0], 4.0);
      EXPECT_DOUBLE_EQ(buf[2], 6.0);
    }
  });
}

TEST(Comm, RecvIntoWrongSizedSpanFails) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& c) {
                          if (c.rank() == 0) {
                            Vector data{1.0, 2.0, 3.0};
                            c.send(1, 0, data);
                          } else {
                            Vector buf(4, 0.0);
                            c.recv(0, 0,
                                   std::span<real_t>(buf.data(), buf.size()));
                          }
                        }),
               Error);
}

TEST(Comm, PingPongLatencyWellUnder50ms) {
  // Regression guard for the seed runtime's 50 ms-granularity polling
  // receive: a notify racing the mailbox scan cost up to 50 ms per recv.
  // 250 round trips must average far below that (they take microseconds
  // on the channel runtime).
  constexpr int kRounds = 250;
  const auto t0 = std::chrono::steady_clock::now();
  run_spmd(2, [](Comm& c) {
    Vector ball(8, 1.0);
    Vector buf(8, 0.0);
    const std::span<real_t> view(buf.data(), buf.size());
    for (int k = 0; k < kRounds; ++k) {
      if (c.rank() == 0) {
        c.send(1, 0, ball);
        c.recv(1, 0, view);
      } else {
        c.recv(0, 0, view);
        c.send(0, 0, ball);
      }
    }
  });
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // 10 ms per round trip is ~50x looser than measured, but a single
  // 50 ms poll per recv would need >= 12 s.
  EXPECT_LT(secs, 0.010 * kRounds);
}

TEST(Comm, WaitTimeSplitIsRecorded) {
  const auto counters = run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      Vector out;
      c.recv(1, 0, out);  // blocks ~20 ms -> neighbor wait
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      Vector data{1.0};
      c.send(0, 0, data);
    }
    if (c.rank() == 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)c.allreduce_sum(1.0);  // rank 0 waits ~20 ms -> reduction wait
  });
  EXPECT_GT(counters[0].neighbor_wait_seconds, 0.005);
  EXPECT_GT(counters[0].reduce_wait_seconds, 0.005);
  EXPECT_GT(counters[0].total_seconds,
            counters[0].neighbor_wait_seconds +
                counters[0].reduce_wait_seconds - 1e-9);
  EXPECT_GE(counters[0].compute_seconds(), 0.0);
  EXPECT_EQ(counters[1].neighbor_wait_seconds, 0.0);
}

TEST(Comm, AbortWhileBlockedInAllreduce) {
  // Ranks 0 and 1 are inside the reduction tree when rank 2 dies; the
  // whole team must unwind with the originating error.
  EXPECT_THROW(run_spmd(3,
                        [](Comm& c) {
                          if (c.rank() == 2) throw Error("rank 2 failed");
                          (void)c.allreduce_sum(1.0);
                        }),
               Error);
}

TEST(Comm, AbortWhileBlockedInSend) {
  // Rank 0 fills the channel ring (the peer never drains it) and blocks
  // in send; rank 1's failure must release it.
  EXPECT_THROW(run_spmd(2,
                        [](Comm& c) {
                          if (c.rank() == 1) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(20));
                            throw Error("receiver died");
                          }
                          Vector v{1.0};
                          for (int k = 0; k < 4096; ++k) c.send(1, 0, v);
                        }),
               Error);
}

TEST(Comm, ManyMessagesThroughBoundedRing) {
  // More in-flight traffic than the ring has slots: the sender must
  // back-pressure and every message still arrives in order.
  constexpr int kMsgs = 1000;
  run_spmd(2, [](Comm& c) {
    if (c.rank() == 0) {
      for (int k = 0; k < kMsgs; ++k) {
        Vector data{static_cast<real_t>(k)};
        c.send(1, 0, data);
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      Vector out;
      for (int k = 0; k < kMsgs; ++k) {
        c.recv(0, 0, out);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_DOUBLE_EQ(out[0], static_cast<real_t>(k));
      }
    }
  });
}

// ---- Table-1 exchange accounting and determinism of the full solver ----

TEST(Comm, ExchangeCountsMatchTable1Exactly) {
  // Whole-run exact counts for a capped solve (tolerance unreachable, one
  // restart cycle of `it` inner iterations, polynomial degree `deg`):
  //   Enhanced (Alg. 6): 1 setup + 1 restart residual + it*(deg+1) + 1 final
  //   Basic    (Alg. 5): 1 setup + 2 restart residual + it*(deg+3) + 3 final
  // locking the paper's m+1 vs m+3 per-iteration exchanges.
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 4);

  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 5;
  core::SolveOptions opts;
  opts.tol = 1e-300;
  opts.max_iters = 3;
  opts.restart = 25;

  const auto deg = static_cast<std::uint64_t>(poly.degree);
  const auto it = static_cast<std::uint64_t>(opts.max_iters);

  const core::DistSolve enhanced = core::solve_edd(
      part, prob.load, poly, opts, core::EddVariant::Enhanced);
  for (const PerfCounters& c : enhanced.rank_counters)
    EXPECT_EQ(c.neighbor_exchanges, 3 + it * (deg + 1));

  const core::DistSolve basic =
      core::solve_edd(part, prob.load, poly, opts, core::EddVariant::Basic);
  for (const PerfCounters& c : basic.rank_counters)
    EXPECT_EQ(c.neighbor_exchanges, 6 + it * (deg + 3));
}

TEST(Comm, SolveEddIsBitDeterministic) {
  // The tree allreduce folds in a fixed order and broadcasts the root's
  // bytes, so two runs over the same inputs must agree bit for bit.
  fem::CantileverSpec spec;
  spec.nx = 8;
  spec.ny = 4;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 4);

  core::PolySpec poly;
  core::SolveOptions opts;
  opts.tol = 1e-10;
  const core::DistSolve a = core::solve_edd(part, prob.load, poly, opts);
  const core::DistSolve b = core::solve_edd(part, prob.load, poly, opts);
  ASSERT_TRUE(a.converged && b.converged);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i)
    ASSERT_EQ(a.x[i], b.x[i]) << "bitwise mismatch at dof " << i;
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i)
    ASSERT_EQ(a.history[i], b.history[i]);
}

TEST(Comm, SelfSendRejected) {
  EXPECT_THROW(run_spmd(1,
                        [](Comm& c) {
                          Vector v{1.0};
                          c.send(0, 0, v);
                        }),
               Error);
}

TEST(Counters, DeltaAndAccumulate) {
  PerfCounters a;
  a.flops = 100;
  a.neighbor_msgs = 3;
  PerfCounters b = a;
  b.flops = 150;
  b.global_reductions = 2;
  const PerfCounters d = b.delta_since(a);
  EXPECT_EQ(d.flops, 50u);
  EXPECT_EQ(d.neighbor_msgs, 0u);
  EXPECT_EQ(d.global_reductions, 2u);
  PerfCounters sum;
  sum += a;
  sum += d;
  EXPECT_EQ(sum.flops, 150u);
}

TEST(CostModel, SerialHasNoCommCost) {
  PerfCounters c;
  c.flops = 1000000;
  c.global_reductions = 50;  // ignored at P=1
  c.global_bytes = 400;
  const ModeledTime t =
      model_time(MachineModel::sgi_origin(), std::vector<PerfCounters>{c});
  EXPECT_GT(t.compute, 0.0);
  EXPECT_DOUBLE_EQ(t.neighbor, 0.0);
  EXPECT_DOUBLE_EQ(t.global_comm, 0.0);
}

TEST(CostModel, CommCostScalesWithLatency) {
  PerfCounters c;
  c.flops = 1000;
  c.neighbor_msgs = 100;
  c.neighbor_bytes = 8000;
  c.global_reductions = 10;
  c.global_bytes = 80;
  const std::vector<PerfCounters> ranks(4, c);
  const ModeledTime sp2 = model_time(MachineModel::ibm_sp2(), ranks);
  const ModeledTime origin = model_time(MachineModel::sgi_origin(), ranks);
  // SP2 latency is 4x the Origin's: neighbor time strictly larger.
  EXPECT_GT(sp2.neighbor, origin.neighbor);
  EXPECT_GT(sp2.global_comm, origin.global_comm);
}

TEST(CostModel, SpeedupOfPerfectlySplitWork) {
  PerfCounters serial;
  serial.flops = 8000000;
  PerfCounters quarter;
  quarter.flops = 2000000;  // no comm: ideal speedup 4
  const double s = modeled_speedup(
      MachineModel::sgi_origin(), std::vector<PerfCounters>{serial},
      std::vector<PerfCounters>(4, quarter));
  EXPECT_NEAR(s, 4.0, 1e-9);
}

TEST(CostModel, MaxRankDominates) {
  PerfCounters fast, slow;
  fast.flops = 100;
  slow.flops = 10000;
  const ModeledTime t = model_time(MachineModel::modern_node(),
                                   std::vector<PerfCounters>{fast, slow});
  const ModeledTime t_slow = model_time(MachineModel::modern_node(),
                                        std::vector<PerfCounters>{slow});
  EXPECT_DOUBLE_EQ(t.compute, t_slow.compute);
}

TEST(Team, ReusedAcrossJobsWithFreshCountersEachJob) {
  Team team(4);
  EXPECT_EQ(team.size(), 4);
  for (int job = 0; job < 3; ++job) {
    const auto counters = team.run([&](Comm& c) {
      const real_t total =
          c.allreduce_sum(static_cast<real_t>(c.rank() + job));
      EXPECT_DOUBLE_EQ(total, 6.0 + 4.0 * job);
    });
    ASSERT_EQ(counters.size(), 4u);
    // Counters restart per job — a reused team must not accumulate.
    for (const auto& rc : counters) EXPECT_EQ(rc.global_reductions, 1u);
  }
}

TEST(Team, CancelUnblocksBlockedRecvAndTeamSurvives) {
  Team team(2);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    team.cancel();
  });
  // Both ranks block in recv with nobody sending: only the cancel can
  // release them, and it must surface as Cancelled, not a rank failure.
  EXPECT_THROW(team.run([](Comm& c) {
                 Vector v;
                 c.recv(1 - c.rank(), 0, v);
               }),
               Cancelled);
  canceller.join();
  // The team is reusable after a cancelled job.
  const auto counters = team.run([](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 2.0);
  });
  EXPECT_EQ(counters.size(), 2u);
}

TEST(Team, SendRecvAgainstCancelledTeamThrowsCancelled) {
  // Ranks that keep issuing comm calls after cancellation hit the abort
  // path on every subsequent op; the job still exits as Cancelled.
  Team team(2);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    team.cancel();
  });
  EXPECT_THROW(team.run([](Comm& c) {
                 Vector v{1.0};
                 for (;;) {
                   if (c.rank() == 0) {
                     c.send(1, 0, v);
                   } else {
                     c.recv(0, 0, v);
                   }
                 }
               }),
               Cancelled);
  canceller.join();
  EXPECT_FALSE(team.cancel_requested());  // consumed by the failed job
}

TEST(Team, CancelWhileIdleDoesNotPoisonNextJob) {
  Team team(2);
  team.cancel();  // no job running: absorbed at the next run()
  const auto counters = team.run([](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 2.0);
  });
  EXPECT_EQ(counters.size(), 2u);
}

TEST(Team, RankFailureWinsOverConcurrentWork) {
  // A real error in one rank unwinds a reused team with the original
  // error type (not Cancelled), and the team stays usable.
  Team team(2);
  EXPECT_THROW(team.run([](Comm& c) {
                 if (c.rank() == 1) throw Error("rank 1 failed");
                 Vector v;
                 c.recv(1, 0, v);  // released by the abort
               }),
               Error);
  const auto counters = team.run([](Comm& c) {
    EXPECT_DOUBLE_EQ(c.allreduce_sum(1.0), 2.0);
  });
  EXPECT_EQ(counters.size(), 2u);
}

}  // namespace
}  // namespace pfem::par
