// pfem::net tests — the transport seam and the service wire protocol.
//
// Four layers, each with its own contract:
//   1. frame.hpp / proto.hpp codecs: every malformed input (truncated,
//      bad magic/version/type, oversized, structurally broken body)
//      maps to a typed status — never UB, never an exception.
//   2. Transport parity: the SPMD runtime produces bit-identical
//      results over the in-process rings, the shared-memory loopback
//      and the socket loopback — including the full EDD batch solve,
//      whose iteration and exchange counts must not depend on the wire.
//   3. Multi-process: a team genuinely split across two forked
//      processes (socket frames, shared-memory rings) reproduces the
//      in-process solve bit for bit.  Skipped under ASan/TSan — the
//      sanitizer runtimes do not survive fork+threads.
//   4. The remote service: Server/Client request/response (typed
//      rejections, deadline, solutions on request, malformed-frame
//      close) and the Router (cache affinity, spill, typed
//      backpressure shedding).

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/edd_batch.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "net/frame.hpp"
#include "net/proto.hpp"
#include "net/shm.hpp"
#include "net/socket_transport.hpp"
#include "net/sockets.hpp"
#include "net/spawn.hpp"
#include "net/transport.hpp"
#include "par/comm.hpp"
#include "svc/remote.hpp"
#include "svc/service.hpp"

// Fork-based multi-process tests are incompatible with ASan/TSan: fork
// duplicates only the calling thread, and the sanitizer runtimes keep
// state owned by threads that no longer exist in the child.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PFEM_NO_FORK_TESTS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PFEM_NO_FORK_TESTS 1
#endif
#endif

namespace pfem {
namespace {

// ---------------------------------------------------------------------------
// 1. par wire frame (frame.hpp)
// ---------------------------------------------------------------------------

TEST(NetFrame, HeaderRoundTripsAllFields) {
  net::FrameHeader h;
  h.kind = static_cast<std::uint16_t>(net::FrameKind::Data);
  h.src = 3;
  h.dst = 1;
  h.tag = -101;  // reserved collective tags must survive as negatives
  h.seq = 0xdeadbeefcafeull;
  h.count = 77;
  net::ByteBuffer buf;
  net::encode_frame_header(buf, h);
  ASSERT_EQ(buf.size(), net::kFrameHeaderBytes);

  net::FrameHeader d;
  ASSERT_EQ(net::decode_frame_header(buf, d), net::FrameStatus::Ok);
  EXPECT_EQ(d.kind, h.kind);
  EXPECT_EQ(d.src, 3);
  EXPECT_EQ(d.dst, 1);
  EXPECT_EQ(d.tag, -101);
  EXPECT_EQ(d.seq, h.seq);
  EXPECT_EQ(d.count, 77u);
}

TEST(NetFrame, AbortKindRoundTrips) {
  net::FrameHeader h;
  h.kind = static_cast<std::uint16_t>(net::FrameKind::Abort);
  net::ByteBuffer buf;
  net::encode_frame_header(buf, h);
  net::FrameHeader d;
  ASSERT_EQ(net::decode_frame_header(buf, d), net::FrameStatus::Ok);
  EXPECT_EQ(d.kind, static_cast<std::uint16_t>(net::FrameKind::Abort));
}

TEST(NetFrame, EveryMalformedHeaderGetsItsTypedStatus) {
  net::FrameHeader good;
  net::ByteBuffer buf;
  net::encode_frame_header(buf, good);
  net::FrameHeader d;

  // Truncated: every strict prefix is typed, not UB.
  for (std::size_t n = 0; n < net::kFrameHeaderBytes; ++n)
    EXPECT_EQ(net::decode_frame_header(std::span(buf.data(), n), d),
              net::FrameStatus::Truncated)
        << "prefix of " << n << " bytes";

  auto mutate = [&](std::size_t offset, std::uint32_t value,
                    std::size_t nbytes) {
    net::ByteBuffer b = buf;
    for (std::size_t i = 0; i < nbytes; ++i)
      b[offset + i] = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
    return b;
  };
  EXPECT_EQ(net::decode_frame_header(mutate(0, 0xdeadbeefu, 4), d),
            net::FrameStatus::BadMagic);
  EXPECT_EQ(net::decode_frame_header(mutate(4, 999, 2), d),
            net::FrameStatus::BadVersion);
  EXPECT_EQ(net::decode_frame_header(mutate(6, 0, 2), d),
            net::FrameStatus::BadKind);
  EXPECT_EQ(net::decode_frame_header(mutate(6, 99, 2), d),
            net::FrameStatus::BadKind);

  net::FrameHeader big;
  big.count = net::kMaxFrameDoubles + 1;
  net::ByteBuffer bb;
  net::encode_frame_header(bb, big);
  EXPECT_EQ(net::decode_frame_header(bb, d), net::FrameStatus::Oversized);
}

// ---------------------------------------------------------------------------
// 2. service protocol (proto.hpp)
// ---------------------------------------------------------------------------

namespace proto = net::proto;

/// Split one encoded frame into (validated header, body span).
proto::ProtoHeader split_frame(const net::ByteBuffer& frame,
                               std::span<const unsigned char>& body) {
  proto::ProtoHeader h;
  EXPECT_GE(frame.size(), proto::kProtoHeaderBytes);
  EXPECT_EQ(proto::decode_header(
                std::span(frame.data(), proto::kProtoHeaderBytes), h),
            proto::DecodeStatus::Ok);
  EXPECT_EQ(frame.size(), proto::kProtoHeaderBytes + h.body_len);
  body = std::span(frame.data() + proto::kProtoHeaderBytes,
                   static_cast<std::size_t>(h.body_len));
  return h;
}

TEST(NetProto, HelloAndAckRoundTrip) {
  net::ByteBuffer f;
  proto::encode_hello(f, proto::HelloMsg{"loadgen-7"});
  std::span<const unsigned char> body;
  proto::ProtoHeader h = split_frame(f, body);
  EXPECT_EQ(h.type, static_cast<std::uint16_t>(proto::MsgType::Hello));
  proto::HelloMsg m;
  ASSERT_EQ(proto::decode_hello(body, m), proto::DecodeStatus::Ok);
  EXPECT_EQ(m.client_name, "loadgen-7");

  net::ByteBuffer f2;
  proto::encode_hello_ack(f2, proto::HelloAckMsg{"shard0", 4});
  proto::ProtoHeader h2 = split_frame(f2, body);
  EXPECT_EQ(h2.type, static_cast<std::uint16_t>(proto::MsgType::HelloAck));
  proto::HelloAckMsg a;
  ASSERT_EQ(proto::decode_hello_ack(body, a), proto::DecodeStatus::Ok);
  EXPECT_EQ(a.server_name, "shard0");
  EXPECT_EQ(a.nranks, 4);
}

TEST(NetProto, SolveRequestRoundTripsEveryField) {
  proto::SolveRequestMsg m;
  m.req_id = 42;
  m.operator_key = "op3";
  m.session_id = 0xface5ull;
  m.priority = 1;
  m.deadline_ns = 2'500'000'000ull;
  m.seed = 0x5eedull;
  m.want_solution = true;
  m.restart = 30;
  m.max_iters = 500;
  m.tol = 1e-8;
  m.rhs = {{1.0, -2.5, 3.25}, {0.0, 4.125}};
  net::ByteBuffer f;
  proto::encode_solve_request(f, m);

  std::span<const unsigned char> body;
  proto::ProtoHeader h = split_frame(f, body);
  EXPECT_EQ(h.type, static_cast<std::uint16_t>(proto::MsgType::SolveRequest));
  proto::SolveRequestMsg d;
  ASSERT_EQ(proto::decode_solve_request(body, d), proto::DecodeStatus::Ok);
  EXPECT_EQ(d.req_id, 42u);
  EXPECT_EQ(d.operator_key, "op3");
  EXPECT_EQ(d.session_id, 0xface5ull);
  EXPECT_EQ(d.priority, 1u);
  EXPECT_EQ(d.deadline_ns, m.deadline_ns);
  EXPECT_EQ(d.seed, m.seed);
  EXPECT_TRUE(d.want_solution);
  EXPECT_EQ(d.restart, 30);
  EXPECT_EQ(d.max_iters, 500);
  EXPECT_EQ(d.tol, 1e-8);
  ASSERT_EQ(d.rhs, m.rhs);  // bitwise: doubles travel as raw LE bits
}

TEST(NetProto, SolveResponseRoundTripsEveryField) {
  proto::SolveResponseMsg m;
  m.req_id = 7;
  m.status = proto::SolveStatus::Completed;
  m.detail = "warm";
  m.cache_hit = true;
  m.comm = false;
  m.queue_seconds = 0.125;
  m.solve_seconds = 2.75;
  m.items = {{true, false, 43, 3.5e-7}, {false, true, 12, 0.5}};
  m.solution = {{9.0, -8.0}};
  net::ByteBuffer f;
  proto::encode_solve_response(f, m);

  std::span<const unsigned char> body;
  proto::ProtoHeader h = split_frame(f, body);
  EXPECT_EQ(h.type, static_cast<std::uint16_t>(proto::MsgType::SolveResponse));
  proto::SolveResponseMsg d;
  ASSERT_EQ(proto::decode_solve_response(body, d), proto::DecodeStatus::Ok);
  EXPECT_EQ(d.req_id, 7u);
  EXPECT_EQ(d.status, proto::SolveStatus::Completed);
  EXPECT_EQ(d.detail, "warm");
  EXPECT_TRUE(d.cache_hit);
  EXPECT_FALSE(d.comm);
  EXPECT_EQ(d.queue_seconds, 0.125);
  EXPECT_EQ(d.solve_seconds, 2.75);
  ASSERT_EQ(d.items.size(), 2u);
  EXPECT_TRUE(d.items[0].converged);
  EXPECT_FALSE(d.items[0].breakdown);
  EXPECT_EQ(d.items[0].iterations, 43);
  EXPECT_EQ(d.items[0].final_relres, 3.5e-7);
  EXPECT_FALSE(d.items[1].converged);
  EXPECT_TRUE(d.items[1].breakdown);
  ASSERT_EQ(d.solution, m.solution);
}

TEST(NetProto, ReqIdSitsAtTheFixedRouterOffset) {
  // The router rewrites req_id in place at body offset 0; this is the
  // wire-compat assertion that protects that trick against reordering.
  proto::SolveRequestMsg m;
  m.req_id = 0x1122334455667788ull;
  m.operator_key = "k";
  m.rhs = {{1.0}};
  net::ByteBuffer f;
  proto::encode_solve_request(f, m);
  std::uint64_t wire = 0;
  std::memcpy(&wire, f.data() + proto::kProtoHeaderBytes, 8);
  EXPECT_EQ(wire, m.req_id);

  proto::SolveResponseMsg r;
  r.req_id = 0x99aabbccddeeff00ull;
  net::ByteBuffer f2;
  proto::encode_solve_response(f2, r);
  std::memcpy(&wire, f2.data() + proto::kProtoHeaderBytes, 8);
  EXPECT_EQ(wire, r.req_id);
}

TEST(NetProto, MalformedHeadersGetTypedStatuses) {
  net::ByteBuffer f;
  proto::encode_hello(f, proto::HelloMsg{"x"});
  proto::ProtoHeader h;

  for (std::size_t n = 0; n < proto::kProtoHeaderBytes; ++n)
    EXPECT_EQ(proto::decode_header(std::span(f.data(), n), h),
              proto::DecodeStatus::Truncated);

  auto corrupt = [&](std::size_t off, std::uint64_t v, std::size_t nbytes) {
    net::ByteBuffer b = f;
    for (std::size_t i = 0; i < nbytes; ++i)
      b[off + i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    return b;
  };
  auto head = [&](const net::ByteBuffer& b) {
    return std::span(b.data(), proto::kProtoHeaderBytes);
  };
  EXPECT_EQ(proto::decode_header(head(corrupt(0, 0xdeadbeefu, 4)), h),
            proto::DecodeStatus::BadMagic);
  EXPECT_EQ(proto::decode_header(head(corrupt(4, 2, 2)), h),
            proto::DecodeStatus::BadVersion);
  EXPECT_EQ(proto::decode_header(head(corrupt(6, 0, 2)), h),
            proto::DecodeStatus::BadType);
  EXPECT_EQ(proto::decode_header(head(corrupt(6, 99, 2)), h),
            proto::DecodeStatus::BadType);
  EXPECT_EQ(
      proto::decode_header(head(corrupt(8, proto::kMaxBodyBytes + 1, 8)), h),
      proto::DecodeStatus::Oversized);
}

TEST(NetProto, TruncatedBodiesAreBadBodyNeverUB) {
  proto::SolveRequestMsg m;
  m.req_id = 5;
  m.operator_key = "op0";
  m.rhs = {{1.0, 2.0, 3.0}};
  net::ByteBuffer f;
  proto::encode_solve_request(f, m);
  const auto* body = f.data() + proto::kProtoHeaderBytes;
  const std::size_t body_len = f.size() - proto::kProtoHeaderBytes;

  proto::SolveRequestMsg d;
  for (std::size_t n = 0; n < body_len; ++n)
    EXPECT_EQ(proto::decode_solve_request(std::span(body, n), d),
              proto::DecodeStatus::BadBody)
        << "body prefix of " << n << " bytes";

  // Trailing garbage after a well-formed body is also structural error.
  net::ByteBuffer longer(body, body + body_len);
  longer.push_back(0xab);
  EXPECT_EQ(proto::decode_solve_request(longer, d),
            proto::DecodeStatus::BadBody);
}

TEST(NetProto, LyingCountFieldsAreOversizedNotAllocated) {
  // A body whose string length claims more than the cap: the decoder
  // must reject on the count, not trust it and allocate/overread.
  net::ByteBuffer body;
  net::put_u64(body, 1);                   // req_id
  net::put_u32(body, (1u << 16) + 1);      // operator_key length over cap
  proto::SolveRequestMsg d;
  EXPECT_EQ(proto::decode_solve_request(body, d),
            proto::DecodeStatus::Oversized);

  // Vector-count lie: claims 2^40 RHS vectors in a tiny body.
  net::ByteBuffer b2;
  net::put_u64(b2, 1);          // req_id
  net::put_u32(b2, 1);          // key length
  b2.push_back('k');
  net::put_u64(b2, 0);          // session_id
  net::put_u32(b2, 0);          // priority
  net::put_u64(b2, 0);          // deadline
  net::put_u64(b2, 0);          // seed
  b2.push_back(0);              // want_solution
  net::put_i32(b2, 25);
  net::put_i32(b2, 100);
  net::put_f64(b2, 1e-6);
  net::put_u64(b2, 1ull << 40);  // rhs count lie
  EXPECT_EQ(proto::decode_solve_request(b2, d),
            proto::DecodeStatus::Oversized);
}

// ---------------------------------------------------------------------------
// 3. transport contract, exercised directly
// ---------------------------------------------------------------------------

struct CaptureSink : net::MsgSink {
  Vector data;
  void deliver(Vector* owned, std::span<const real_t> d) override {
    if (owned != nullptr)
      data = std::move(*owned);
    else
      data.assign(d.begin(), d.end());
  }
};

class TransportContract
    : public ::testing::TestWithParam<const char*> {
 protected:
  static std::shared_ptr<net::Transport> make(int n) {
    const std::string which = GetParam();
    if (which == "inproc") return net::make_inproc_transport(n);
    if (which == "shm") return net::make_shm_loopback_transport(n);
    return net::make_socket_loopback_transport(n);
  }
};

TEST_P(TransportContract, PushTakePreservesPayloadAndTagFifo) {
  auto t = make(2);
  net::WaitStats ws;
  const Vector a{1.0, 2.5, -3.0};
  const Vector b{7.0};
  const Vector c{9.0, 10.0};
  t->push(0, 1, /*tag=*/5, a, false, ws);
  t->push(0, 1, /*tag=*/9, b, false, ws);
  t->push(0, 1, /*tag=*/5, c, false, ws);

  CaptureSink s;
  t->take(1, 0, 9, s, ws);  // skips (stashes) the older tag-5 message
  EXPECT_EQ(s.data, b);
  t->take(1, 0, 5, s, ws);  // stashed message comes back first: FIFO per tag
  EXPECT_EQ(s.data, a);
  t->take(1, 0, 5, s, ws);
  EXPECT_EQ(s.data, c);
}

TEST_P(TransportContract, DroppedMessageSurfacesAsTypedLoss) {
  auto t = make(2);
  net::WaitStats ws;
  t->push(0, 1, 3, Vector{1.0}, false, ws);
  t->mark_dropped(0, 1);            // injected Drop consumes a wire seq
  t->push(0, 1, 3, Vector{2.0}, false, ws);

  CaptureSink s;
  t->take(1, 0, 3, s, ws);          // first message is intact
  EXPECT_EQ(s.data, Vector{1.0});
  try {
    t->take(1, 0, 3, s, ws);        // the gap must fail typed, not shift
    FAIL() << "sequence gap was silently consumed";
  } catch (const par::CommError& e) {
    EXPECT_EQ(e.kind(), fault::CommErrorKind::Lost);
  }
}

TEST_P(TransportContract, WireDuplicateIsAbsorbed) {
  auto t = make(2);
  net::WaitStats ws;
  t->push(0, 1, 1, Vector{5.0}, false, ws);
  t->push(0, 1, 1, Vector{5.0}, /*wire_dup=*/true, ws);  // injected dup
  t->push(0, 1, 1, Vector{6.0}, false, ws);

  CaptureSink s;
  t->take(1, 0, 1, s, ws);
  EXPECT_EQ(s.data, Vector{5.0});
  t->take(1, 0, 1, s, ws);  // duplicate absorbed: next delivery is 6.0
  EXPECT_EQ(s.data, Vector{6.0});
}

TEST_P(TransportContract, AbortUnwindsBlockedTake) {
  auto t = make(2);
  t->abort();
  EXPECT_TRUE(t->is_aborted());
  CaptureSink s;
  net::WaitStats ws;
  EXPECT_THROW(t->take(1, 0, 0, s, ws), net::Aborted);
}

TEST_P(TransportContract, LoopbackTopologyReportsSingleProcess) {
  auto t = make(3);
  EXPECT_EQ(t->nranks(), 3);
  EXPECT_EQ(t->rank_base(), 0);
  EXPECT_EQ(t->local_ranks(), 3);
  // Loopback = all ranks here, so collectives may stay on the
  // in-process reduction cells; this is what keeps counters comparable.
  EXPECT_FALSE(t->multi_process());
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportContract,
                         ::testing::Values("inproc", "shm", "socket"));

// ---------------------------------------------------------------------------
// 4. SPMD + solve parity across transports
// ---------------------------------------------------------------------------

using TransportFactory =
    std::function<std::shared_ptr<net::Transport>(int)>;

/// A small SPMD job mixing tagged p2p (with a deliberate stash) and
/// collectives; returns per-rank digests that must be bitwise equal on
/// every transport.
std::vector<real_t> spmd_digest(const TransportFactory& factory, int n) {
  par::TeamConfig tc;
  tc.nranks = n;
  if (factory) tc.transport = factory(n);
  par::Team team(tc);
  std::vector<real_t> digest(static_cast<std::size_t>(n), 0.0);
  team.run([&](par::Comm& c) {
    const int r = c.rank();
    const int next = (r + 1) % n;
    const int prev = (r + n - 1) % n;
    Vector big(17, 0.0);
    for (std::size_t i = 0; i < big.size(); ++i)
      big[i] = 0.25 * static_cast<real_t>(r + 1) + static_cast<real_t>(i);
    c.send(next, /*tag=*/5, big);
    c.send(next, /*tag=*/9, Vector{static_cast<real_t>(r) * 3.5});
    Vector got9;
    c.recv(prev, 9, got9);  // newer tag first: forces a stash of tag 5
    Vector got5;
    c.recv(prev, 5, got5);
    real_t acc = got9.at(0);
    for (const real_t v : got5) acc += v;
    acc += c.allreduce_sum(static_cast<real_t>(r + 1) * 0.125);
    acc += c.allreduce_max(static_cast<real_t>((r * 7) % n));
    digest[static_cast<std::size_t>(r)] = acc;
  });
  return digest;
}

TEST(NetParity, SpmdJobIsBitIdenticalAcrossTransports) {
  for (const int n : {2, 4, 5}) {  // 5: non-power-of-two tournament tree
    const std::vector<real_t> ref = spmd_digest({}, n);
    const std::vector<real_t> shm =
        spmd_digest([](int k) { return net::make_shm_loopback_transport(k); },
                    n);
    const std::vector<real_t> sock = spmd_digest(
        [](int k) { return net::make_socket_loopback_transport(k); }, n);
    EXPECT_EQ(ref, shm) << "shm loopback diverged at n=" << n;
    EXPECT_EQ(ref, sock) << "socket loopback diverged at n=" << n;
  }
}

struct SolveScene {
  fem::CantileverProblem prob;
  std::shared_ptr<const partition::EddPartition> part;
  core::PolySpec poly;
};

SolveScene make_scene(int nparts) {
  fem::CantileverSpec spec;
  spec.nx = 10;
  spec.ny = 4;
  fem::CantileverProblem prob = fem::make_cantilever(spec);
  auto part = std::make_shared<const partition::EddPartition>(
      exp::make_edd(prob, nparts));
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 4;
  return SolveScene{std::move(prob), std::move(part), poly};
}

struct SolveDigest {
  bool converged = false;
  std::int64_t iterations = 0;
  std::uint64_t relres_bits = 0;  ///< final_relres, compared bitwise
  std::vector<std::uint64_t> exchanges;  ///< per rank
  Vector x;
};

SolveDigest run_solve(const SolveScene& s,
                      std::shared_ptr<net::Transport> transport, int n) {
  par::TeamConfig tc;
  tc.nranks = n;
  tc.transport = std::move(transport);
  par::Team team(tc);
  const core::EddOperatorState op =
      core::build_edd_operator(team, *s.part, s.poly);
  const std::vector<Vector> rhs{s.prob.load};
  const core::BatchSolveResult r =
      core::solve_edd_batch(team, *s.part, op, rhs);
  SolveDigest d;
  EXPECT_FALSE(r.comm_failed()) << r.comm_error;
  if (r.comm_failed()) return d;
  d.converged = r.items.at(0).converged;
  d.iterations = r.items.at(0).iterations;
  std::memcpy(&d.relres_bits, &r.items.at(0).final_relres, 8);
  for (const par::PerfCounters& c : r.rank_counters)
    d.exchanges.push_back(c.neighbor_exchanges);
  if (!r.x.empty()) d.x = r.x.at(0);
  return d;
}

TEST(NetParity, EddBatchSolveIsBitIdenticalAcrossTransports) {
  const int n = 4;
  const SolveScene s = make_scene(n);
  const SolveDigest ref = run_solve(s, nullptr, n);
  ASSERT_TRUE(ref.converged);
  for (const char* which : {"shm", "socket"}) {
    const SolveDigest got = run_solve(
        s,
        std::string(which) == "shm"
            ? net::make_shm_loopback_transport(n)
            : net::make_socket_loopback_transport(n),
        n);
    EXPECT_TRUE(got.converged) << which;
    EXPECT_EQ(got.iterations, ref.iterations) << which;
    EXPECT_EQ(got.relres_bits, ref.relres_bits) << which;
    EXPECT_EQ(got.exchanges, ref.exchanges) << which;
    EXPECT_EQ(got.x, ref.x) << which;  // bitwise, not approx
  }
}

// ---------------------------------------------------------------------------
// 5. genuinely multi-process teams (forked; skipped under ASan/TSan)
// ---------------------------------------------------------------------------

/// Plain pipe I/O (sockets.hpp's read_full/write_full are
/// socket-only: recv/send fail with ENOTSOCK on a pipe fd).
bool pipe_write(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t k = ::write(fd, p, n);
    if (k <= 0) return false;
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

bool pipe_read(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t k = ::read(fd, p, n);
    if (k <= 0) return false;
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

/// Fixed-size digest a forked child reports through a pipe.
struct ChildReport {
  std::int64_t iterations = 0;
  std::uint64_t relres_bits = 0;
  std::int32_t converged = 0;
  std::int32_t pad = 0;
  std::uint64_t exchanges[2] = {0, 0};  ///< child-hosted ranks (2, 3)
};

void expect_matches_reference(const SolveDigest& ref, const SolveDigest& mine,
                              const ChildReport& child) {
  // Convergence reports are written by each process's local leader from
  // allreduced data, so both processes (and the reference) must agree
  // bit for bit; exchange counters are per-rank and compared where the
  // rank actually ran.
  EXPECT_TRUE(mine.converged);
  EXPECT_EQ(mine.iterations, ref.iterations);
  EXPECT_EQ(mine.relres_bits, ref.relres_bits);
  EXPECT_NE(child.converged, 0);
  EXPECT_EQ(child.iterations, ref.iterations);
  EXPECT_EQ(child.relres_bits, ref.relres_bits);
  ASSERT_EQ(ref.exchanges.size(), 4u);
  EXPECT_EQ(mine.exchanges.at(0), ref.exchanges.at(0));
  EXPECT_EQ(mine.exchanges.at(1), ref.exchanges.at(1));
  EXPECT_EQ(child.exchanges[0], ref.exchanges.at(2));
  EXPECT_EQ(child.exchanges[1], ref.exchanges.at(3));
}

TEST(NetMultiProcess, SocketTwoProcessSolveMatchesInProcessBitForBit) {
#ifdef PFEM_NO_FORK_TESTS
  GTEST_SKIP() << "fork-based multi-process test skipped under sanitizers";
#else
  const int n = 4;
  const SolveScene s = make_scene(n);
  const SolveDigest ref = run_solve(s, nullptr, n);
  ASSERT_TRUE(ref.converged);

  const std::array<int, 2> pair = net::stream_pair();
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);

  const pid_t pid = net::fork_run([&]() -> int {
    net::close_fd(pair[0]);
    ::close(pipefd[0]);
    net::SocketTransportConfig cfg;
    cfg.ranks_per_proc = {2, 2};
    cfg.my_proc = 1;
    cfg.fds = {pair[1], -1};
    const SolveScene cs = make_scene(n);  // deterministic: same scene
    const SolveDigest d =
        run_solve(cs, net::make_socket_transport(cfg), n);
    ChildReport rep;
    rep.iterations = d.iterations;
    rep.relres_bits = d.relres_bits;
    rep.converged = d.converged ? 1 : 0;
    rep.exchanges[0] = d.exchanges.at(2);
    rep.exchanges[1] = d.exchanges.at(3);
    const bool ok = pipe_write(pipefd[1], &rep, sizeof rep);
    ::close(pipefd[1]);
    return ok && d.converged ? 0 : 1;
  });

  net::close_fd(pair[1]);
  ::close(pipefd[1]);
  net::SocketTransportConfig cfg;
  cfg.ranks_per_proc = {2, 2};
  cfg.my_proc = 0;
  cfg.fds = {-1, pair[0]};
  const SolveDigest mine = run_solve(s, net::make_socket_transport(cfg), n);

  ChildReport child;
  ASSERT_TRUE(pipe_read(pipefd[0], &child, sizeof child));
  ::close(pipefd[0]);
  EXPECT_EQ(net::wait_exit(pid), 0);
  expect_matches_reference(ref, mine, child);
#endif
}

TEST(NetMultiProcess, ShmTwoProcessSolveMatchesInProcessBitForBit) {
#ifdef PFEM_NO_FORK_TESTS
  GTEST_SKIP() << "fork-based multi-process test skipped under sanitizers";
#else
  const int n = 4;
  const SolveScene s = make_scene(n);
  const SolveDigest ref = run_solve(s, nullptr, n);
  ASSERT_TRUE(ref.converged);

  // The region must exist BEFORE fork so both processes map it.
  std::shared_ptr<net::ShmRegion> region = net::ShmRegion::create(n);
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);

  const pid_t pid = net::fork_run([&]() -> int {
    ::close(pipefd[0]);
    net::ShmTransportConfig cfg;
    cfg.ranks_per_proc = {2, 2};
    cfg.my_proc = 1;
    const SolveScene cs = make_scene(n);
    const SolveDigest d =
        run_solve(cs, net::make_shm_transport(region, cfg), n);
    ChildReport rep;
    rep.iterations = d.iterations;
    rep.relres_bits = d.relres_bits;
    rep.converged = d.converged ? 1 : 0;
    rep.exchanges[0] = d.exchanges.at(2);
    rep.exchanges[1] = d.exchanges.at(3);
    const bool ok = pipe_write(pipefd[1], &rep, sizeof rep);
    ::close(pipefd[1]);
    return ok && d.converged ? 0 : 1;
  });

  ::close(pipefd[1]);
  net::ShmTransportConfig cfg;
  cfg.ranks_per_proc = {2, 2};
  cfg.my_proc = 0;
  const SolveDigest mine = run_solve(s, net::make_shm_transport(region, cfg), n);

  ChildReport child;
  ASSERT_TRUE(pipe_read(pipefd[0], &child, sizeof child));
  ::close(pipefd[0]);
  EXPECT_EQ(net::wait_exit(pid), 0);
  expect_matches_reference(ref, mine, child);
#endif
}

// ---------------------------------------------------------------------------
// 6. remote service: Server / Client / Router
// ---------------------------------------------------------------------------

std::string unique_sock(const char* stem) {
  return "unix:/tmp/pfem_test_" + std::string(stem) + "_" +
         std::to_string(::getpid()) + ".sock";
}

struct RemoteRig {
  SolveScene scene;
  std::unique_ptr<svc::Service> service;
  std::unique_ptr<svc::Server> server;
  std::string addr;

  explicit RemoteRig(const char* stem, int nranks = 2) : scene(make_scene(nranks)) {
    svc::ServiceConfig cfg;
    cfg.nranks = nranks;
    service = std::make_unique<svc::Service>(cfg);
    service->register_operator("op0", scene.part, scene.poly);
    addr = unique_sock(stem);
    server = std::make_unique<svc::Server>(*service, addr, "test-shard");
  }

  ~RemoteRig() {
    // Resolve outstanding futures before the harvesters are joined.
    if (service) service->shutdown(/*drain=*/true);
    if (server) server->stop();
  }
};

proto::SolveRequestMsg basic_request(const RemoteRig& rig) {
  proto::SolveRequestMsg req;
  req.operator_key = "op0";
  req.rhs = {rig.scene.prob.load};
  return req;
}

TEST(NetRemote, HandshakeAdvertisesNameAndTeamSize) {
  RemoteRig rig("hs");
  svc::Client client(rig.addr, "t");
  EXPECT_EQ(client.server_name(), "test-shard");
  EXPECT_EQ(client.server_nranks(), 2);
}

TEST(NetRemote, SolveOverTheWireMatchesLocalSubmitBitForBit) {
  RemoteRig rig("solve");

  // Local reference through the same service (also warms the cache).
  svc::SolveRequest local;
  local.operator_key = "op0";
  local.rhs = {rig.scene.prob.load};
  auto sub = rig.service->submit(std::move(local));
  const svc::Outcome out = sub.outcome.get();
  const auto* done = std::get_if<svc::Completed>(&out);
  ASSERT_NE(done, nullptr);

  svc::Client client(rig.addr, "t");
  proto::SolveRequestMsg req = basic_request(rig);
  req.want_solution = true;
  proto::SolveResponseMsg resp;
  ASSERT_TRUE(client.solve(req, resp));
  EXPECT_EQ(resp.status, proto::SolveStatus::Completed);
  EXPECT_TRUE(resp.cache_hit);  // the local solve built the operator
  ASSERT_EQ(resp.items.size(), 1u);
  EXPECT_TRUE(resp.items[0].converged);
  EXPECT_EQ(resp.items[0].iterations, done->result.items.at(0).iterations);
  EXPECT_EQ(resp.items[0].final_relres,
            done->result.items.at(0).final_relres);
  ASSERT_EQ(resp.solution.size(), 1u);
  EXPECT_EQ(resp.solution[0], done->result.x.at(0));  // bitwise

  // Without want_solution the payload stays off the wire.
  proto::SolveRequestMsg req2 = basic_request(rig);
  proto::SolveResponseMsg resp2;
  ASSERT_TRUE(client.solve(req2, resp2));
  EXPECT_EQ(resp2.status, proto::SolveStatus::Completed);
  EXPECT_TRUE(resp2.solution.empty());
}

TEST(NetRemote, UnknownOperatorIsTypedRejection) {
  RemoteRig rig("unknown");
  svc::Client client(rig.addr, "t");
  proto::SolveRequestMsg req = basic_request(rig);
  req.operator_key = "no-such-operator";
  proto::SolveResponseMsg resp;
  ASSERT_TRUE(client.solve(req, resp));
  EXPECT_EQ(resp.status, proto::SolveStatus::Rejected);
  EXPECT_EQ(resp.reject_reason,
            static_cast<std::uint32_t>(svc::RejectReason::UnknownOperator));
}

TEST(NetRemote, ExpiredRelativeDeadlineIsTypedRejection) {
  RemoteRig rig("deadline");
  svc::Client client(rig.addr, "t");
  proto::SolveRequestMsg req = basic_request(rig);
  req.deadline_ns = 1;  // re-anchored on the server clock; expired at once
  proto::SolveResponseMsg resp;
  ASSERT_TRUE(client.solve(req, resp));
  EXPECT_EQ(resp.status, proto::SolveStatus::Rejected);
  EXPECT_EQ(resp.reject_reason,
            static_cast<std::uint32_t>(svc::RejectReason::DeadlineExceeded));
}

TEST(NetRemote, MalformedFrameClosesConnectionWithTypedCount) {
  RemoteRig rig("malformed");
  const int fd = net::connect_to(rig.addr);

  net::ByteBuffer hello;
  proto::encode_hello(hello, proto::HelloMsg{"fuzz"});
  ASSERT_TRUE(net::write_full(fd, hello.data(), hello.size()));
  unsigned char ackbuf[proto::kProtoHeaderBytes];
  ASSERT_TRUE(net::read_full(fd, ackbuf, sizeof ackbuf));
  proto::ProtoHeader ack;
  ASSERT_EQ(proto::decode_header(ackbuf, ack), proto::DecodeStatus::Ok);
  std::vector<unsigned char> ackbody(static_cast<std::size_t>(ack.body_len));
  ASSERT_TRUE(net::read_full(fd, ackbody.data(), ackbody.size()));

  // Now a frame with a corrupt magic: the server must close, not crash.
  net::ByteBuffer bad;
  net::put_u32(bad, 0xdeadbeefu);
  net::put_u16(bad, proto::kProtoVersion);
  net::put_u16(bad, static_cast<std::uint16_t>(proto::MsgType::SolveRequest));
  net::put_u64(bad, 0);
  ASSERT_TRUE(net::write_full(fd, bad.data(), bad.size()));

  unsigned char byte;
  EXPECT_FALSE(net::read_full(fd, &byte, 1));  // orderly close, no payload
  net::close_fd(fd);

  // The close is counted as a typed malformed-frame event.
  for (int i = 0; i < 100 && rig.server->stats().malformed == 0; ++i)
    ::usleep(10 * 1000);
  EXPECT_EQ(rig.server->stats().malformed, 1u);
}

TEST(NetRemote, RouterRoutesByOperatorAffinityAndShedsWhenSaturated) {
  // Two shards with the SAME registered operator; a router in front.
  RemoteRig shard0("router_s0");
  RemoteRig shard1("router_s1");

  svc::RouterConfig rc;
  rc.listen_addr = unique_sock("router");
  rc.shard_addrs = {shard0.addr, shard1.addr};
  rc.max_inflight_per_shard = 1;
  svc::Router router(rc);
  ASSERT_EQ(router.nshards(), 2);

  // Phase 1: affinity. A blocking client keeps at most one request in
  // flight, so every request lands on its hash-affine shard.
  {
    svc::Client client(rc.listen_addr, "t");
    EXPECT_EQ(client.server_name(), "pfem-router");
    EXPECT_EQ(client.server_nranks(), 2);  // relayed from the shards
    for (int i = 0; i < 6; ++i) {
      proto::SolveRequestMsg req = basic_request(shard0);
      proto::SolveResponseMsg resp;
      ASSERT_TRUE(client.solve(req, resp));
      EXPECT_EQ(resp.status, proto::SolveStatus::Completed);
    }
    const svc::Router::Stats st = router.stats();
    EXPECT_EQ(st.forwarded, 6u);
    EXPECT_EQ(st.affinity, 6u);
    EXPECT_EQ(st.spilled, 0u);
    EXPECT_EQ(st.rejected_backpressure, 0u);
    EXPECT_EQ(st.responses, 6u);
    // All six went to ONE shard (the affine one for "op0").
    const std::uint64_t s0 = shard0.server->stats().requests;
    const std::uint64_t s1 = shard1.server->stats().requests;
    EXPECT_EQ(s0 + s1, 6u);
    EXPECT_TRUE(s0 == 6u || s1 == 6u) << "s0=" << s0 << " s1=" << s1;
  }

  // Phase 2: deterministic backpressure. Freeze both services so
  // nothing completes, then pipeline three raw requests for one key:
  // 1st -> affine shard, 2nd -> spill, 3rd -> typed local rejection.
  shard0.service->set_paused(true);
  shard1.service->set_paused(true);

  const int fd = net::connect_to(rc.listen_addr);
  net::ByteBuffer hello;
  proto::encode_hello(hello, proto::HelloMsg{"raw"});
  ASSERT_TRUE(net::write_full(fd, hello.data(), hello.size()));
  unsigned char hdrbuf[proto::kProtoHeaderBytes];
  ASSERT_TRUE(net::read_full(fd, hdrbuf, sizeof hdrbuf));
  proto::ProtoHeader ph;
  ASSERT_EQ(proto::decode_header(hdrbuf, ph), proto::DecodeStatus::Ok);
  std::vector<unsigned char> skip(static_cast<std::size_t>(ph.body_len));
  ASSERT_TRUE(net::read_full(fd, skip.data(), skip.size()));

  const std::uint64_t base_forwarded = router.stats().forwarded;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    proto::SolveRequestMsg req = basic_request(shard0);
    req.req_id = id;
    net::ByteBuffer f;
    proto::encode_solve_request(f, req);
    ASSERT_TRUE(net::write_full(fd, f.data(), f.size()));
  }

  auto read_response = [&](proto::SolveResponseMsg& resp) {
    ASSERT_TRUE(net::read_full(fd, hdrbuf, sizeof hdrbuf));
    ASSERT_EQ(proto::decode_header(hdrbuf, ph), proto::DecodeStatus::Ok);
    ASSERT_EQ(ph.type,
              static_cast<std::uint16_t>(proto::MsgType::SolveResponse));
    std::vector<unsigned char> body(static_cast<std::size_t>(ph.body_len));
    ASSERT_TRUE(net::read_full(fd, body.data(), body.size()));
    ASSERT_EQ(proto::decode_solve_response(body, resp),
              proto::DecodeStatus::Ok);
  };

  // With both shards frozen and capacity 1 each, the 3rd request is
  // shed at the router and its typed rejection is the FIRST response.
  proto::SolveResponseMsg rejected;
  read_response(rejected);
  EXPECT_EQ(rejected.req_id, 3u);
  EXPECT_EQ(rejected.status, proto::SolveStatus::Rejected);
  EXPECT_EQ(rejected.reject_reason,
            static_cast<std::uint32_t>(svc::RejectReason::QueueFull));

  {
    const svc::Router::Stats st = router.stats();
    EXPECT_EQ(st.forwarded - base_forwarded, 2u);  // 1 affine + 1 spill
    EXPECT_EQ(st.spilled, 1u);
    EXPECT_EQ(st.rejected_backpressure, 1u);
  }

  // Unfreeze: the two forwarded requests complete on their shards.
  shard0.service->set_paused(false);
  shard1.service->set_paused(false);
  proto::SolveResponseMsg a;
  proto::SolveResponseMsg b;
  read_response(a);
  read_response(b);
  EXPECT_EQ(a.status, proto::SolveStatus::Completed);
  EXPECT_EQ(b.status, proto::SolveStatus::Completed);
  EXPECT_TRUE((a.req_id == 1 && b.req_id == 2) ||
              (a.req_id == 2 && b.req_id == 1));
  net::close_fd(fd);
  router.stop();
}

// ---------------------------------------------------------------------------
// 7. solve sessions over the wire
// ---------------------------------------------------------------------------

TEST(NetSession, SessionFramesRoundTripEveryField) {
  {
    proto::SessionOpenMsg m{41, "opX"};
    net::ByteBuffer f;
    proto::encode_session_open(f, m);
    std::span<const unsigned char> body;
    const proto::ProtoHeader h = split_frame(f, body);
    EXPECT_EQ(h.type, static_cast<std::uint16_t>(proto::MsgType::SessionOpen));
    proto::SessionOpenMsg d;
    ASSERT_EQ(proto::decode_session_open(body, d), proto::DecodeStatus::Ok);
    EXPECT_EQ(d.req_id, 41u);
    EXPECT_EQ(d.operator_key, "opX");
  }
  {
    proto::SessionCloseMsg m{43, "opX", 7};
    net::ByteBuffer f;
    proto::encode_session_close(f, m);
    std::span<const unsigned char> body;
    const proto::ProtoHeader h = split_frame(f, body);
    EXPECT_EQ(h.type,
              static_cast<std::uint16_t>(proto::MsgType::SessionClose));
    proto::SessionCloseMsg d;
    ASSERT_EQ(proto::decode_session_close(body, d), proto::DecodeStatus::Ok);
    EXPECT_EQ(d.req_id, 43u);
    EXPECT_EQ(d.operator_key, "opX");
    EXPECT_EQ(d.session_id, 7u);
  }
  {
    proto::SessionAckMsg m{44, 0, "operator 'z' is not registered"};
    net::ByteBuffer f;
    proto::encode_session_ack(f, m);
    std::span<const unsigned char> body;
    const proto::ProtoHeader h = split_frame(f, body);
    EXPECT_EQ(h.type, static_cast<std::uint16_t>(proto::MsgType::SessionAck));
    proto::SessionAckMsg d;
    ASSERT_EQ(proto::decode_session_ack(body, d), proto::DecodeStatus::Ok);
    EXPECT_EQ(d.req_id, 44u);
    EXPECT_EQ(d.session_id, 0u);
    EXPECT_EQ(d.detail, "operator 'z' is not registered");
  }
}

TEST(NetSession, OpenSolveCloseRoundTripsOverTheWire) {
  RemoteRig rig("sess");
  svc::Client client(rig.addr, "t");

  EXPECT_EQ(client.open_session("no-such-operator"), 0u);
  const std::uint64_t sid = client.open_session("op0");
  ASSERT_NE(sid, 0u);

  proto::SolveRequestMsg req = basic_request(rig);
  req.session_id = sid;
  proto::SolveResponseMsg resp;
  ASSERT_TRUE(client.solve(req, resp));
  ASSERT_EQ(resp.status, proto::SolveStatus::Completed);
  const int first = resp.items.at(0).iterations;

  // The warm replay of the identical RHS starts at its solution.
  proto::SolveRequestMsg again = basic_request(rig);
  again.session_id = sid;
  proto::SolveResponseMsg resp2;
  ASSERT_TRUE(client.solve(again, resp2));
  ASSERT_EQ(resp2.status, proto::SolveStatus::Completed);
  EXPECT_LT(resp2.items.at(0).iterations, first);

  // An unknown handle is a typed rejection, not a cold fallback.
  proto::SolveRequestMsg unknown = basic_request(rig);
  unknown.session_id = sid + 777;
  proto::SolveResponseMsg resp3;
  ASSERT_TRUE(client.solve(unknown, resp3));
  EXPECT_EQ(resp3.status, proto::SolveStatus::Rejected);
  EXPECT_EQ(resp3.reject_reason,
            static_cast<std::uint32_t>(svc::RejectReason::UnknownSession));

  EXPECT_TRUE(client.close_session("op0", sid));
  EXPECT_FALSE(client.close_session("op0", sid));  // already closed
}

TEST(NetSession, SessionPinnedRoutingAcrossForkedShards) {
#ifdef PFEM_NO_FORK_TESTS
  GTEST_SKIP() << "fork-based multi-process test skipped under sanitizers";
#else
  // Two shard PROCESSES (Service + Server each), both registering the
  // same keys, with a router in front.  A session opened through the
  // router lives in exactly one shard's SessionTable; this test passes
  // only if every frame of the session's traffic is pinned there.
  constexpr int kShardProcs = 2;
  struct ShardProc {
    pid_t pid = -1;
    int ready_r = -1;
    int ctl_w = -1;
  };
  std::vector<std::string> addrs;
  for (int i = 0; i < kShardProcs; ++i)
    addrs.push_back(unique_sock(("pin_s" + std::to_string(i)).c_str()));

  std::vector<ShardProc> procs;
  for (int i = 0; i < kShardProcs; ++i) {
    int ready[2], ctl[2];
    ASSERT_EQ(::pipe(ready), 0);
    ASSERT_EQ(::pipe(ctl), 0);
    const pid_t pid = net::fork_run([&, i]() -> int {
      ::close(ready[0]);
      ::close(ctl[1]);
      const SolveScene cs = make_scene(2);
      svc::ServiceConfig cfg;
      cfg.nranks = 2;
      svc::Service service(cfg);
      service.register_operator("k0", cs.part, cs.poly);
      svc::Server server(service, addrs[static_cast<std::size_t>(i)],
                         "pin" + std::to_string(i));
      unsigned char b = 1;
      if (!pipe_write(ready[1], &b, 1)) return 3;
      (void)pipe_read(ctl[0], &b, 1);  // parent closes its end when done
      server.stop();
      service.shutdown(/*drain=*/true);
      return 0;
    });
    ::close(ready[1]);
    ::close(ctl[0]);
    procs.push_back(ShardProc{pid, ready[0], ctl[1]});
  }
  for (const ShardProc& p : procs) {
    unsigned char b = 0;
    ASSERT_TRUE(pipe_read(p.ready_r, &b, 1)) << "shard failed to come up";
  }

  {
    svc::RouterConfig rc;
    rc.listen_addr = unique_sock("pin_r");
    rc.shard_addrs = {addrs[0], addrs[1]};
    svc::Router router(rc);
    svc::Client client(rc.listen_addr, "t");
    const SolveScene s = make_scene(2);

    const std::uint64_t sid = client.open_session("k0");
    ASSERT_NE(sid, 0u);

    constexpr int kSteps = 3;
    int cold_total = 0, warm_total = 0;
    for (int t = 0; t < kSteps; ++t) {
      Vector f = s.prob.load;
      for (real_t& v : f) v *= 1.0 + 0.01 * t;
      for (const bool warm : {false, true}) {
        proto::SolveRequestMsg req;
        req.operator_key = "k0";
        req.session_id = warm ? sid : 0;
        req.rhs = {f};
        proto::SolveResponseMsg resp;
        ASSERT_TRUE(client.solve(req, resp));
        ASSERT_EQ(resp.status, proto::SolveStatus::Completed);
        (warm ? warm_total : cold_total) += resp.items.at(0).iterations;
      }
    }
    // Warm solves only beat cold if each one found the state deposited
    // by its predecessor — i.e. if all of them landed on the session's
    // shard.
    EXPECT_LT(warm_total, cold_total);
    EXPECT_TRUE(client.close_session("k0", sid));

    const svc::Router::Stats st = router.stats();
    EXPECT_EQ(st.session_frames, 2u);  // open + close
    EXPECT_EQ(st.session_pinned, static_cast<std::uint64_t>(kSteps));
    EXPECT_EQ(st.forwarded, static_cast<std::uint64_t>(2 * kSteps));
    EXPECT_EQ(st.spilled, 0u);
    router.stop();
  }

  for (const ShardProc& p : procs) {
    ::close(p.ctl_w);
    ::close(p.ready_r);
  }
  for (const ShardProc& p : procs) EXPECT_EQ(net::wait_exit(p.pid), 0);
#endif
}

}  // namespace
}  // namespace pfem
