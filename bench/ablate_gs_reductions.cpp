// Ablation: the paper's one-allreduce-per-Gram-Schmidt-coefficient
// (Algorithms 5/6/8, Table 1's ~m̃+1 global communications per iteration)
// versus batching all j+1 coefficients into a single allreduce — the
// standard modern optimization.  Quantifies how much of the polynomial
// degree's speedup benefit comes from amortizing those reductions.
#include <iostream>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 60 : 40;
  spec.ny = spec.nx;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const par::MachineModel origin = par::MachineModel::sgi_origin();

  exp::banner(std::cout,
              "Ablation — per-coefficient reductions (paper) vs batched "
              "allreduce, EDD-FGMRES, SGI Origin model");

  exp::Table table({"m", "P", "reductions/run (paper)", "(batched)",
                    "S paper", "S batched"});
  for (int m : {3, 10}) {
    core::PolySpec poly;
    poly.degree = m;
    core::SolveOptions paper;
    paper.tol = 1e-6;
    paper.max_iters = 60000;
    core::SolveOptions batched = paper;
    batched.batched_reductions = true;

    double t1_paper = 0.0, t1_batched = 0.0;
    for (int p : {1, 2, 4, 8}) {
      const partition::EddPartition part = exp::make_edd(prob, p);
      const auto res_paper = core::solve_edd(part, prob.load, poly, paper);
      const auto res_batched =
          core::solve_edd(part, prob.load, poly, batched);
      const double tp =
          par::model_time(origin, res_paper.rank_counters).total();
      const double tb =
          par::model_time(origin, res_batched.rank_counters).total();
      if (p == 1) {
        t1_paper = tp;
        t1_batched = tb;
      }
      table.add_row(
          {exp::Table::integer(m), exp::Table::integer(p),
           exp::Table::integer(static_cast<long long>(
               res_paper.rank_counters[0].global_reductions)),
           exp::Table::integer(static_cast<long long>(
               res_batched.rank_counters[0].global_reductions)),
           exp::Table::num(t1_paper / tp, 2),
           exp::Table::num(t1_batched / tb, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: batching cuts reductions ~(j+1)-fold and lifts "
               "speedup most at low degree\n(where the per-iteration fixed "
               "communication is least amortized).\n";
  return 0;
}
