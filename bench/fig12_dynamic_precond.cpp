// Fig. 12: ILU(0) vs polynomial preconditioners for the *dynamic*
// cantilever (Mesh1 and Mesh2): the Newmark effective system
// [K + a0·M] u = f̂ solved per step.  The mass shift improves the
// conditioning, so every preconditioner converges faster than in the
// static case, with the same GLS(7) > ILU(0) > Neumann(20) ordering.
#include <iostream>

#include "bench_common.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "timeint/dynamic_driver.hpp"

namespace {

using namespace pfem;

void run_mesh(int mesh_no) {
  const fem::CantileverProblem prob = fem::make_table2_cantilever(mesh_no);
  const sparse::CsrMatrix m = prob.assemble_mass();
  exp::banner(std::cout, "Fig. 12 — dynamic, Mesh" + std::to_string(mesh_no) +
                             " (" + std::to_string(prob.dofs.num_free()) +
                             " equations, Newmark dt = 0.05)");

  timeint::DynamicRunOptions opts;
  opts.steps = 3;
  opts.solve.tol = 1e-6;
  opts.solve.max_iters = 60000;

  exp::Table table({"preconditioner", "iters step1", "iters step2",
                    "iters step3", "total"});
  auto run = [&](const std::string& name,
                 const timeint::PrecondFactory& factory) {
    const timeint::DynamicRunResult res = timeint::run_dynamic_sequential(
        prob.stiffness, m, prob.load, opts, factory);
    table.add_row({name,
                   exp::Table::integer(res.iterations_per_step[0]),
                   exp::Table::integer(res.iterations_per_step[1]),
                   exp::Table::integer(res.iterations_per_step[2]),
                   exp::Table::integer(res.total_iterations)});
    bench::print_history(name + " (step 1)", res.first_step_history);
  };

  run("none", [](const sparse::CsrMatrix&) {
    return std::make_unique<core::IdentityPrecond>();
  });
  run("ILU(0)", [](const sparse::CsrMatrix& a) {
    return std::make_unique<core::Ilu0Precond>(a);
  });
  run("GLS(7)", [](const sparse::CsrMatrix& a) {
    return std::make_unique<core::GlsPrecond>(
        core::LinearOp::from_csr(a),
        core::GlsPolynomial(core::default_theta_after_scaling(), 7));
  });
  run("Neumann(20)", [](const sparse::CsrMatrix& a) {
    return std::make_unique<core::NeumannPrecond>(
        core::LinearOp::from_csr(a), core::NeumannPolynomial(20, 1.0));
  });
  table.print(std::cout);
}

}  // namespace

int main() {
  run_mesh(1);
  run_mesh(2);
  return 0;
}
