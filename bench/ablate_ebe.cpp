// Ablation: assembled CSR vs element-by-element (EBE) operator —
// storage, flops per apply, and wall time of the mat-vec and of a full
// GLS(7)-preconditioned FGMRES solve driven through each operator.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "exp/table.hpp"
#include "fem/ebe.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 80 : 40;
  spec.ny = spec.nx;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const fem::EbeOperator ebe(prob.mesh, prob.dofs, prob.material,
                             fem::Operator::Stiffness);

  exp::banner(std::cout, "Ablation — assembled CSR vs element-by-element "
                         "operator (" + std::to_string(prob.dofs.num_free()) +
                         " equations)");

  // Mat-vec agreement + wall time.
  const std::size_t n = prob.load.size();
  Vector x(n), y1(n), y2(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(0.37 * double(i));
  prob.stiffness.spmv(x, y1);
  ebe.apply(x, y2);
  real_t diff = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    diff = std::max(diff, std::abs(y1[i] - y2[i]));

  auto time_applies = [&](auto&& fn) {
    const int reps = 50;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0).count() / reps;
  };
  const double t_csr = time_applies([&] { prob.stiffness.spmv(x, y1); });
  const double t_ebe = time_applies([&] { ebe.apply(x, y2); });

  exp::Table table({"operator", "stored values", "flops/apply",
                    "apply time (us)"});
  table.add_row({"assembled CSR",
                 exp::Table::integer(prob.stiffness.nnz()),
                 exp::Table::integer(static_cast<long long>(
                     prob.stiffness.spmv_flops())),
                 exp::Table::num(t_csr * 1e6, 1)});
  table.add_row({"element-by-element",
                 exp::Table::integer(static_cast<long long>(
                     ebe.stored_values())),
                 exp::Table::integer(static_cast<long long>(
                     ebe.apply_flops())),
                 exp::Table::num(t_ebe * 1e6, 1)});
  table.print(std::cout);
  std::cout << "max |y_csr - y_ebe| = " << exp::Table::sci(diff, 2) << "\n";

  // End-to-end: FGMRES+GLS(7) driven through the EBE operator (no
  // assembled matrix anywhere except the diagonal-scaling vector).
  const core::ScaledSystem s = core::scale_system(prob.stiffness, prob.load);
  // EBE of the *scaled* operator: wrap D * K_ebe * D.
  Vector tmp(n);
  const core::LinearOp scaled_ebe(
      as_index(n), [&](std::span<const real_t> in, std::span<real_t> out) {
        for (std::size_t i = 0; i < n; ++i) tmp[i] = s.d[i] * in[i];
        ebe.apply(tmp, out);
        for (std::size_t i = 0; i < n; ++i) out[i] *= s.d[i];
      });
  core::GlsPrecond precond(
      scaled_ebe, core::GlsPolynomial(core::default_theta_after_scaling(), 7));
  Vector sol(n, 0.0);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  const core::SolveReport res =
      core::fgmres(scaled_ebe, s.b, sol, precond, opts);
  std::cout << "matrix-free FGMRES-GLS(7): "
            << (res.converged ? "converged" : "FAILED") << " in "
            << res.iterations << " iterations\n";
  std::cout << "\nexpected: EBE stores ~1.6x the values and costs ~1.6x the "
               "flops per apply, but needs no assembly at all\n(the paper's "
               "no-assembly theme taken to its limit).\n";
  return res.converged ? 0 : 1;
}
