// Ablation: element order and the §5 planar-graph argument.  Q4 and Q8
// couple more dofs per row than T3 (whose matrix graph is planar); this
// bench measures matrix density and the per-iteration communication
// volume of EDD vs RDD for each element type — the paper's reasoning for
// why row-based partitioning deteriorates for higher-order elements.
#include <iostream>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  const index_t n = full ? 40 : 20;
  exp::banner(std::cout,
              "Ablation — element order: matrix density and per-iteration "
              "comm bytes (P = 4, GLS(7))");

  exp::Table table({"element", "nEqn", "nnz/row", "EDD kB/iter",
                    "RDD kB/iter", "RDD dup nnz x"});
  for (auto [name, type] :
       {std::pair{"T3", fem::ElemType::Tri3},
        std::pair{"Q4", fem::ElemType::Quad4},
        std::pair{"Q8", fem::ElemType::Quad8}}) {
    fem::CantileverSpec spec;
    spec.nx = n;
    spec.ny = n;
    spec.elem_type = type;
    const fem::CantileverProblem prob = fem::make_cantilever(spec);

    core::PolySpec poly;
    poly.degree = 7;
    core::SolveOptions capped;
    capped.tol = 1e-300;
    capped.max_iters = 6;

    // Bytes per iteration from a 5-iteration delta.
    auto bytes_per_iter_edd = [&](int iters_lo) {
      const auto part = exp::make_edd(prob, 4);
      core::SolveOptions a = capped;
      a.max_iters = iters_lo;
      core::SolveOptions b = capped;
      b.max_iters = iters_lo + 1;
      const auto ra = core::solve_edd(part, prob.load, poly, a);
      const auto rb = core::solve_edd(part, prob.load, poly, b);
      return rb.rank_counters[0]
          .delta_since(ra.rank_counters[0])
          .neighbor_bytes;
    };
    const auto rpart = exp::make_rdd(prob, 4);
    auto bytes_per_iter_rdd = [&](int iters_lo) {
      core::RddOptions rdd;
      rdd.poly = poly;
      core::SolveOptions a = capped;
      a.max_iters = iters_lo;
      core::SolveOptions b = capped;
      b.max_iters = iters_lo + 1;
      const auto ra = core::solve_rdd(rpart, prob.load, rdd, a);
      const auto rb = core::solve_rdd(rpart, prob.load, rdd, b);
      return rb.rank_counters[0]
          .delta_since(ra.rank_counters[0])
          .neighbor_bytes;
    };

    std::uint64_t owned_nnz = 0, dup_nnz = 0;
    for (const auto& sub : rpart.subs) {
      owned_nnz += static_cast<std::uint64_t>(sub.a_loc.nnz()) +
                   static_cast<std::uint64_t>(sub.a_ext.nnz());
      dup_nnz += sub.duplicated_nnz;
    }

    table.add_row(
        {name, exp::Table::integer(prob.dofs.num_free()),
         exp::Table::num(static_cast<double>(prob.stiffness.nnz()) /
                             prob.stiffness.rows(), 1),
         exp::Table::num(static_cast<double>(bytes_per_iter_edd(3)) / 1024.0,
                         2),
         exp::Table::num(static_cast<double>(bytes_per_iter_rdd(3)) / 1024.0,
                         2),
         exp::Table::num(static_cast<double>(dup_nnz) /
                             static_cast<double>(owned_nnz), 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: nnz/row and comm volume grow with element "
               "order; the RDD duplicated-element storage factor grows "
               "too (the paper's Fig. 8 drawbacks).\n";
  return 0;
}
