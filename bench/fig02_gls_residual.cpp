// Fig. 2: GLS residual polynomials 1 − λP_m(λ) for the three spectrum
// estimates of the paper: (a) Θ = (0.1, 2.5), (b) Θ = (−4,−1) ∪ (7,10),
// (c) the four-interval Θ.  Shows the residual collapsing toward 0 on Θ
// as the degree increases — including across indefinite, disconnected
// spectra, which is what makes GLS "general".
#include <iostream>

#include "bench_common.hpp"
#include "core/gls_poly.hpp"
#include "exp/table.hpp"

namespace {

void show(const std::string& name, const pfem::core::Theta& theta,
          const std::vector<int>& degrees) {
  using namespace pfem;
  exp::banner(std::cout, name);
  std::vector<std::string> headers{"lambda"};
  for (int m : degrees) headers.push_back("m=" + std::to_string(m));
  exp::Table table(std::move(headers));

  std::vector<core::GlsPolynomial> polys;
  for (int m : degrees) polys.emplace_back(theta, m);

  for (const core::Interval& iv : theta) {
    for (int k = 0; k <= 4; ++k) {
      const double lambda = iv.lo + (iv.hi - iv.lo) * k / 4.0;
      std::vector<std::string> row{exp::Table::num(lambda, 2)};
      for (const auto& p : polys)
        row.push_back(exp::Table::sci(p.residual(lambda), 2));
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);

  std::cout << "sup over Theta: ";
  for (std::size_t i = 0; i < polys.size(); ++i)
    std::cout << "m=" << degrees[i] << ": "
              << pfem::exp::Table::sci(polys[i].residual_sup_on_theta(), 2)
              << "  ";
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace pfem;
  show("Fig. 2(a) — GLS residual, Theta = (0.1, 2.5)",
       {{0.1, 2.5}}, {3, 7, 10, 16});
  show("Fig. 2(b) — GLS residual, Theta = (-4,-1) U (7,10)",
       {{-4.0, -1.0}, {7.0, 10.0}}, {4, 8, 12, 20});
  show("Fig. 2(c) — GLS residual, four-interval Theta",
       {{-6.0, -4.1}, {-3.9, -0.1}, {0.1, 5.9}, {6.1, 8.0}},
       {8, 12, 16, 24});
  return 0;
}
