// Extension: iteration degradation of EDD-FGMRES-GLS under coefficient
// jumps, and what the jump-aware coarse space buys back.
//
// The hetero2d family (fem/families.hpp) puts a kappa-jump checkerboard
// across the partition interfaces of a Table-2-sized mesh (Mesh5 =
// 60x60) at P = 8.  Norm-1 scaling keeps sigma(A-hat) in (0, 1], but a
// jump of 10^4 pushes a cluster of eigenvalues toward 0 and one-level
// GLS stalls on them.  The sweep records iterations vs jump for
//   - polynomial degree m in {4, 7} on the default Theta and GLS(7) on
//     a truncated Theta = [0.01, 1] (the Eq.-18 knob a user would reach
//     for first — and the wrong tool for jumps);
//   - deflation off / standard coordinate coarse space / the jump-aware
//     coefficient-split coarse space (DESIGN.md §15).
//
// Jump patterns: `aligned` puts the interface on the x = lx/2 plane
// (coincides with RCB's first cut — every patch single-class),
// `checker3` a 3x3 checkerboard whose block boundaries (20, 40) miss
// every binary RCB cut (15, 30, 45) — each subdomain straddles both
// classes, the regime the class split is for — and `checker4` a 4x4
// board with several same-class blocks per subdomain (disconnected
// class components per patch: the documented worst case a
// one-vector-per-class space cannot fully cover, see EXPERIMENTS.md).
//
// Acceptance gate (run_paper_full.sh): with GLS(7) on the default
// Theta on the misaligned checker3 pattern, jump-aware deflation at
// jump = 10^4 must hold within kMaxGrowth = 1.5x the homogeneous
// (jump = 1) standard-deflation count.  --json=PATH records the sweep
// (BENCH_hetero.json).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/families.hpp"

namespace {

constexpr double kMaxGrowth = 1.5;
constexpr int kParts = 8;

struct Config {
  const char* name;
  int degree;
  pfem::core::Theta theta;
};

struct Variant {
  const char* name;
  bool deflate;
  bool jump_aware;
};

struct Pattern {
  const char* name;
  bool aligned;
  pfem::index_t checker;
};

struct Point {
  const char* config;
  const char* pattern;
  const char* variant;
  double jump;
  pfem::index_t n_eqn = 0;
  pfem::index_t iters = 0;
  pfem::index_t ncoarse = 0;
  bool converged = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pfem;
  bench::full_run(argc, argv);  // accepted for uniformity; sweep is fixed
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--json=", 0) == 0) json_path = a.substr(7);
  }

  exp::banner(std::cout,
              "Extension — heterogeneous diffusion (hetero2d checkerboard, "
              "Mesh5-sized, P = 8): iterations vs jump");

  const std::vector<Config> configs = {
      {"gls4", 4, core::default_theta_after_scaling()},
      {"gls7", 7, core::default_theta_after_scaling()},
      {"gls7_theta.01", 7, {{0.01, 1.0}}},
  };
  const std::vector<Variant> variants = {
      {"off", false, false},
      {"deflated", true, false},
      {"jump_aware", true, true},
  };
  const std::vector<Pattern> patterns = {
      {"aligned", true, 4},
      {"checker3", false, 3},
      {"checker4", false, 4},
  };
  const std::vector<double> jumps = {1.0, 1.0e2, 1.0e4};

  std::vector<Point> pts;
  index_t ref_iters = 0;   // homogeneous, standard deflation, gls7
  index_t gate_iters = 0;  // jump 1e4, jump-aware, gls7
  bool gate_runs_ok = true;

  for (const Config& cfg : configs) {
    core::PolySpec poly;
    poly.kind = core::PolyKind::Gls;
    poly.degree = cfg.degree;
    poly.theta = cfg.theta;

    for (const Pattern& pat : patterns) {
      for (double jump : jumps) {
        fem::ProblemSpec spec = fem::default_spec("hetero2d");
        spec.nx = 60;
        spec.ny = 60;  // Table-2 Mesh5 size
        spec.jump = jump;
        spec.aligned = pat.aligned;
        spec.checker = pat.checker;
        const fem::FamilyProblem fp = fem::make_problem(spec);
        const partition::EddPartition part = exp::make_edd(fp, kParts);

        for (const Variant& v : variants) {
          core::SolveOptions opts;
          opts.tol = 1e-6;
          opts.max_iters = 60000;
          if (v.deflate)
            opts.deflation = exp::family_deflation(fp, v.jump_aware);

          const core::DistSolve r =
              core::solve_edd(part, fp.prob.load, poly, opts);
          Point p;
          p.config = cfg.name;
          p.pattern = pat.name;
          p.variant = v.name;
          p.jump = jump;
          p.n_eqn = fp.prob.dofs.num_free();
          p.iters = r.iterations;
          p.converged = r.converged;
          // ncoarse = P * nclasses * nbasis({1,x,y}) * components(1).
          if (v.deflate)
            p.ncoarse = static_cast<index_t>(kParts) * (v.jump_aware ? 2 : 1) *
                        (fp.coord_dim + 1) * fp.components;
          pts.push_back(p);

          const bool gate_cfg = std::string(cfg.name) == "gls7" &&
                                std::string(pat.name) == "checker3";
          if (gate_cfg && jump == 1.0 && v.deflate && !v.jump_aware) {
            ref_iters = r.iterations;
            gate_runs_ok = gate_runs_ok && r.converged;
          }
          if (gate_cfg && jump == 1.0e4 && v.jump_aware) {
            gate_iters = r.iterations;
            gate_runs_ok = gate_runs_ok && r.converged;
          }
        }
      }
    }
  }

  exp::Table table({"config", "pattern", "jump", "variant", "nEqn", "dim(E)",
                    "iterations", "converged"});
  for (const Point& p : pts)
    table.add_row({p.config, p.pattern, exp::Table::sci(p.jump, 0), p.variant,
                   exp::Table::integer(p.n_eqn), exp::Table::integer(p.ncoarse),
                   exp::Table::integer(p.iters), p.converged ? "yes" : "no"});
  table.print(std::cout);

  const double growth =
      ref_iters > 0
          ? static_cast<double>(gate_iters) / static_cast<double>(ref_iters)
          : 0.0;
  const bool pass = gate_runs_ok && ref_iters > 0 && growth <= kMaxGrowth;
  std::printf(
      "\njump-aware @ jump 1e4: %zu iters vs homogeneous deflated %zu "
      "(growth %.2fx, gate <= %.1fx) — %s\n",
      static_cast<std::size_t>(gate_iters),
      static_cast<std::size_t>(ref_iters), growth, kMaxGrowth,
      pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n  \"bench\": \"hetero_scaling\",\n"
        << "  \"family\": \"hetero2d\",\n  \"mesh\": \"60x60\",\n"
        << "  \"nprocs\": " << kParts << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Point& p = pts[i];
      out << "    {\"config\": \"" << p.config << "\", \"pattern\": \""
          << p.pattern << "\", \"jump\": " << p.jump << ", \"variant\": \""
          << p.variant << "\", \"n_eqn\": " << p.n_eqn
          << ", \"coarse_dim\": " << p.ncoarse
          << ", \"iterations\": " << p.iters
          << ", \"converged\": " << (p.converged ? "true" : "false") << "}"
          << (i + 1 < pts.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"ref_iters\": " << ref_iters
        << ",\n  \"gate_iters\": " << gate_iters
        << ",\n  \"growth\": " << growth
        << ",\n  \"max_growth\": " << kMaxGrowth
        << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::printf("hetero sweep written to %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}
