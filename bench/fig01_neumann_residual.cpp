// Fig. 1: Neumann-series residual polynomials 1 − λP_{m−1}(λ) on
// Θ = (0, 30) for m = 5, 6, 7.  The scaling factor ω = 2/30 centres the
// series so ρ(I − ωA) < 1 on the interval; the figure's message is that
// the residual is driven toward 0 across the whole interval as the
// degree grows.
#include <iostream>

#include "bench_common.hpp"
#include "core/neumann.hpp"
#include "exp/table.hpp"

int main() {
  using namespace pfem;
  exp::banner(std::cout, "Fig. 1 — Neumann residual 1 - lambda*P_m(lambda), "
                         "Theta = (0, 30), omega = 2/30");

  const double omega = 2.0 / 30.0;
  const int degrees[] = {4, 5, 6};  // P_{m-1} for m = 5, 6, 7
  exp::Table table({"lambda", "m=5", "m=6", "m=7"});
  for (int k = 0; k <= 12; ++k) {
    const double lambda = 30.0 * k / 12.0 + (k == 0 ? 0.5 : 0.0);
    std::vector<std::string> row{exp::Table::num(lambda, 2)};
    for (int d : degrees) {
      const core::NeumannPolynomial p(d, omega);
      row.push_back(exp::Table::sci(p.residual(lambda), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // The residual is (1 - omega*lambda)^{m+1}: near zero across the
  // interval interior, approaching 1 at the endpoints — Fig. 1's shape.
  auto sup_over = [&](int d, double lo, double hi) {
    const core::NeumannPolynomial p(d, omega);
    double sup = 0.0;
    for (int k = 0; k <= 1000; ++k) {
      const double lambda = lo + (hi - lo) * k / 1000.0;
      sup = std::max(sup, std::abs(p.residual(lambda)));
    }
    return sup;
  };
  std::cout << "\nsup |1 - lambda*P(lambda)|:\n";
  for (int d : degrees)
    std::cout << "  m = " << d + 1
              << "  over (0.5, 29.5): " << exp::Table::sci(sup_over(d, 0.5, 29.5), 3)
              << "   over the interior (7.5, 22.5): "
              << exp::Table::sci(sup_over(d, 7.5, 22.5), 3) << "\n";
  return 0;
}
