// Table 1: communication/computation cost of one inner Arnoldi iteration
// for Algorithm 5 (basic EDD), Algorithm 6 (enhanced EDD) and
// Algorithm 8 (RDD), measured — not estimated — by differencing the
// per-rank counters between runs capped at n and n+1 inner iterations.
//
// Paper's claim: per iteration, Alg. 5 does m+3 nearest-neighbor
// exchanges, Alg. 6 does m+1, Alg. 8 does m+1 (m = polynomial degree);
// global communications are one per Gram-Schmidt coefficient plus one
// norm (≈ m̃+1 worst case); all do m+1 mat-vecs.
#include <iostream>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"

namespace {

using namespace pfem;

core::SolveOptions capped(index_t n) {
  core::SolveOptions opts;
  opts.tol = 1e-300;  // never reached: run exactly n inner iterations
  opts.restart = 25;
  opts.max_iters = n;
  return opts;
}

par::PerfCounters edd_delta(const partition::EddPartition& part,
                            const Vector& f, const core::PolySpec& poly,
                            core::EddVariant variant, index_t n) {
  const auto a = core::solve_edd(part, f, poly, capped(n), variant);
  const auto b = core::solve_edd(part, f, poly, capped(n + 1), variant);
  return b.rank_counters[0].delta_since(a.rank_counters[0]);
}

par::PerfCounters rdd_delta(const partition::RddPartition& part,
                            const Vector& f, const core::PolySpec& poly,
                            index_t n) {
  core::RddOptions rdd;
  rdd.poly = poly;
  const auto a = core::solve_rdd(part, f, rdd, capped(n));
  const auto b = core::solve_rdd(part, f, rdd, capped(n + 1));
  return b.rank_counters[0].delta_since(a.rank_counters[0]);
}

std::vector<std::string> row(const std::string& alg, int m,
                             const par::PerfCounters& d) {
  return {alg,
          std::to_string(m),
          exp::Table::integer(static_cast<long long>(d.neighbor_exchanges)),
          exp::Table::integer(static_cast<long long>(d.global_reductions)),
          exp::Table::integer(static_cast<long long>(d.matvecs)),
          exp::Table::integer(static_cast<long long>(d.inner_products)),
          exp::Table::integer(static_cast<long long>(d.vector_updates))};
}

}  // namespace

int main(int argc, char** argv) {
  exp::banner(std::cout,
              "Table 1 — measured cost of one inner Arnoldi iteration "
              "(4th iteration, j = 3; P = 4; GLS(m))");

  fem::CantileverSpec spec;
  spec.nx = 12;
  spec.ny = 6;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition epart = exp::make_edd(prob, 4);
  const partition::RddPartition rpart = exp::make_rdd(prob, 4);

  exp::Table table({"Algorithm", "m", "neighbor comm", "global comm",
                    "mat-vec", "inner-prod", "vec-update"});
  for (int m : {3, 7, 10}) {
    core::PolySpec poly;
    poly.degree = m;
    table.add_row(row("Alg.5 EDD-basic", m,
                      edd_delta(epart, prob.load, poly,
                                core::EddVariant::Basic, 3)));
    table.add_row(row("Alg.6 EDD-enhanced", m,
                      edd_delta(epart, prob.load, poly,
                                core::EddVariant::Enhanced, 3)));
    table.add_row(row("Alg.8 RDD", m, rdd_delta(rpart, prob.load, poly, 3)));
  }
  table.print(std::cout);
  std::cout << "\nexpected from the paper: neighbor comm = m+3 (Alg.5), "
               "m+1 (Alg.6), m+1 (Alg.8); mat-vec = m+1;\n"
               "global comm = (j+1) Gram-Schmidt reductions + 1 norm = 5 at "
               "j = 3.\n";

  if (!bench::counters_json_path(argc, argv).empty() ||
      exp::trace_requested(argc, argv)) {
    // Full per-rank trace of a representative run (Alg.6, GLS(7), 4 its).
    core::PolySpec poly;
    poly.degree = 7;
    core::SolveOptions opts = capped(4);
    opts.observe = exp::observe_from_flags(argc, argv);
    const auto res = core::solve_edd(epart, prob.load, poly, opts,
                                     core::EddVariant::Enhanced);
    if (!bench::dump_counters_if_requested(argc, argv, res.rank_counters,
                                           res.setup_counters))
      return 1;
    if (!exp::dump_trace_if_requested(argc, argv, res.trace.get())) return 1;
  }
  return 0;
}
