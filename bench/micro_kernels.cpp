// google-benchmark micro-benchmarks of the solver's time-consuming
// kernels (§3.1.2): SpMV, polynomial application, ILU(0) solve, the
// nearest-neighbor exchange, and the allreduce.
#include <benchmark/benchmark.h>

#include "core/edd_solver.hpp"
#include "core/gls_poly.hpp"
#include "core/neumann.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "par/comm.hpp"
#include "sparse/bsr.hpp"
#include "sparse/generators.hpp"
#include "sparse/ilu0.hpp"

namespace {

using namespace pfem;

const fem::CantileverProblem& cantilever() {
  static const fem::CantileverProblem prob = [] {
    fem::CantileverSpec spec;
    spec.nx = 50;
    spec.ny = 50;
    return fem::make_cantilever(spec);
  }();
  return prob;
}

void BM_Spmv(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  Vector x(static_cast<std::size_t>(a.cols()), 1.0);
  Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spmv);


void BM_SpmvBsr2(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const sparse::Bsr2 b(a);
  Vector x(static_cast<std::size_t>(a.cols()), 1.0);
  Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    b.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvBsr2);

void BM_GlsApply(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const core::LinearOp op = core::LinearOp::from_csr(a);
  const core::GlsPolynomial poly(core::default_theta_after_scaling(),
                                 static_cast<int>(state.range(0)));
  Vector v(static_cast<std::size_t>(a.rows()), 1.0);
  Vector z(v.size());
  for (auto _ : state) {
    poly.apply(op, v, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_GlsApply)->Arg(3)->Arg(7)->Arg(10);

void BM_NeumannApply(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const core::LinearOp op = core::LinearOp::from_csr(a);
  const core::NeumannPolynomial poly(static_cast<int>(state.range(0)), 1.0);
  Vector v(static_cast<std::size_t>(a.rows()), 1.0);
  Vector z(v.size());
  for (auto _ : state) {
    poly.apply(op, v, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_NeumannApply)->Arg(10)->Arg(20);

void BM_Ilu0Factor(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  for (auto _ : state) {
    sparse::Ilu0 ilu(a);
    benchmark::DoNotOptimize(&ilu);
  }
}
BENCHMARK(BM_Ilu0Factor);

void BM_Ilu0Solve(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const sparse::Ilu0 ilu(a);
  Vector v(static_cast<std::size_t>(a.rows()), 1.0);
  Vector z(v.size());
  for (auto _ : state) {
    ilu.solve(v, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_Ilu0Solve);

void BM_GlsConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::GlsPolynomial poly(core::default_theta_after_scaling(),
                             static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(&poly);
  }
}
BENCHMARK(BM_GlsConstruction)->Arg(7)->Arg(10);

void BM_Allreduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    par::run_spmd(p, [](par::Comm& c) {
      for (int k = 0; k < 32; ++k)
        benchmark::DoNotOptimize(c.allreduce_sum(1.0));
    });
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_EddSolveGls7(benchmark::State& state) {
  const fem::CantileverProblem& prob = cantilever();
  const partition::EddPartition part =
      exp::make_edd(prob, static_cast<int>(state.range(0)));
  core::PolySpec poly;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  for (auto _ : state) {
    const auto res = core::solve_edd(part, prob.load, poly, opts);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_EddSolveGls7)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
