// google-benchmark micro-benchmarks of the solver's time-consuming
// kernels (§3.1.2): SpMV, polynomial application, ILU(0) solve, the
// nearest-neighbor exchange, and the allreduce.
//
// --kernels-json=PATH additionally runs the CSR-vs-SELL-vs-fused kernel
// sweep over the Table 2 mesh family and writes one JSON record per
// mesh (timings, GFLOP/s, speedups) before the google benchmarks.
//
// --ebe-json=PATH runs the matrix-free sweep instead: the Format::Ebe
// rank kernel (per-element dense matrices, gather-multiply-scatter)
// against scaled scalar CSR and SELL-C-σ on the same meshes, with a
// bytes-per-dof column for all three storage formats.  EBE is not
// bit-identical to the assembled formats (the element sweep
// reassociates row sums), so this sweep measures time and footprint,
// not the bit-identity the --kernels-json contenders share.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/edd_solver.hpp"
#include "core/gls_poly.hpp"
#include "core/kernels.hpp"
#include "core/neumann.hpp"
#include "exp/experiments.hpp"
#include "fem/ebe.hpp"
#include "fem/problems.hpp"
#include "la/vector_ops.hpp"
#include "par/comm.hpp"
#include "sparse/bsr.hpp"
#include "sparse/generators.hpp"
#include "sparse/ilu0.hpp"
#include "sparse/sell.hpp"

namespace {

using namespace pfem;

const fem::CantileverProblem& cantilever() {
  static const fem::CantileverProblem prob = [] {
    fem::CantileverSpec spec;
    spec.nx = 50;
    spec.ny = 50;
    return fem::make_cantilever(spec);
  }();
  return prob;
}

void BM_Spmv(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  Vector x(static_cast<std::size_t>(a.cols()), 1.0);
  Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    a.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_Spmv);


void BM_SpmvBsr2(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const sparse::Bsr2 b(a);
  Vector x(static_cast<std::size_t>(a.cols()), 1.0);
  Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    b.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvBsr2);

void BM_GlsApply(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const core::LinearOp op = core::LinearOp::from_csr(a);
  const core::GlsPolynomial poly(core::default_theta_after_scaling(),
                                 static_cast<int>(state.range(0)));
  Vector v(static_cast<std::size_t>(a.rows()), 1.0);
  Vector z(v.size());
  for (auto _ : state) {
    poly.apply(op, v, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_GlsApply)->Arg(3)->Arg(7)->Arg(10);

void BM_NeumannApply(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const core::LinearOp op = core::LinearOp::from_csr(a);
  const core::NeumannPolynomial poly(static_cast<int>(state.range(0)), 1.0);
  Vector v(static_cast<std::size_t>(a.rows()), 1.0);
  Vector z(v.size());
  for (auto _ : state) {
    poly.apply(op, v, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_NeumannApply)->Arg(10)->Arg(20);

void BM_Ilu0Factor(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  for (auto _ : state) {
    sparse::Ilu0 ilu(a);
    benchmark::DoNotOptimize(&ilu);
  }
}
BENCHMARK(BM_Ilu0Factor);

void BM_Ilu0Solve(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const sparse::Ilu0 ilu(a);
  Vector v(static_cast<std::size_t>(a.rows()), 1.0);
  Vector z(v.size());
  for (auto _ : state) {
    ilu.solve(v, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_Ilu0Solve);

void BM_GlsConstruction(benchmark::State& state) {
  for (auto _ : state) {
    core::GlsPolynomial poly(core::default_theta_after_scaling(),
                             static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(&poly);
  }
}
BENCHMARK(BM_GlsConstruction)->Arg(7)->Arg(10);

void BM_Allreduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    par::run_spmd(p, [](par::Comm& c) {
      for (int k = 0; k < 32; ++k)
        benchmark::DoNotOptimize(c.allreduce_sum(1.0));
    });
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Allreduce)->Arg(2)->Arg(4)->Arg(8);

void BM_EddSolveGls7(benchmark::State& state) {
  const fem::CantileverProblem& prob = cantilever();
  const partition::EddPartition part =
      exp::make_edd(prob, static_cast<int>(state.range(0)));
  core::PolySpec poly;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  for (auto _ : state) {
    const auto res = core::solve_edd(part, prob.load, poly, opts);
    benchmark::DoNotOptimize(res.iterations);
  }
}
BENCHMARK(BM_EddSolveGls7)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SpmvSell(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  const sparse::SellMatrix s = sparse::SellMatrix::from_csr(a);
  Vector x(static_cast<std::size_t>(a.cols()), 1.0);
  Vector y(static_cast<std::size_t>(a.rows()));
  for (auto _ : state) {
    s.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvSell);

void BM_GlsApplyFusedSell(benchmark::State& state) {
  const sparse::CsrMatrix& a = cantilever().stiffness;
  Vector d = a.row_norms1();
  for (auto& di : d) di = 1.0 / std::sqrt(di);
  core::KernelOptions ko;
  ko.overlap = false;
  const core::RankKernel kern(a, std::move(d), {}, ko);
  const core::LinearOp op(
      a.rows(), [&kern](std::span<const real_t> x, std::span<real_t> y) {
        kern.apply(x, y);
      });
  const core::GlsPolynomial poly(core::default_theta_after_scaling(),
                                 static_cast<int>(state.range(0)));
  Vector v(static_cast<std::size_t>(a.rows()), 1.0);
  Vector z(v.size());
  for (auto _ : state) {
    poly.apply(op, v, z);
    benchmark::DoNotOptimize(z.data());
  }
}
BENCHMARK(BM_GlsApplyFusedSell)->Arg(3)->Arg(7)->Arg(10);

// ---------------------------------------------------------------------
// CSR-vs-SELL-vs-fused sweep (--kernels-json=PATH).
//
// Per Table 2 mesh: raw SpMV and the GLS-7 polynomial apply, each
// through (a) the eagerly scaled scalar-CSR kernel the solvers used
// before the kernel layer, (b) SELL-C-σ on the same scaled entries, and
// (c) the fused SELL kernel (unscaled entries, D K D folded in).  All
// three are bit-identical (tests/test_kernels.cpp), so this measures
// speed alone.  The acceptance bar is fused GLS-7 >= 1.5x scalar CSR.

/// One contender in an interleaved timing comparison.  Rounds of the
/// competing kernels alternate (A B C A B C ...) so frequency drift or
/// a noisy co-tenant biases against no particular contender; the
/// per-call time is the best round.
struct TimedKernel {
  std::function<void()> fn;
  int reps = 1;
  double best = 0.0;
};

void time_kernels(std::span<TimedKernel> ks) {
  using clock = std::chrono::steady_clock;
  auto once = [](TimedKernel& k) {
    const auto t0 = clock::now();
    for (int r = 0; r < k.reps; ++r) k.fn();
    return std::chrono::duration<double>(clock::now() - t0).count() / k.reps;
  };
  for (auto& k : ks) {
    k.fn();  // warm caches and page in the operand arrays
    double t = once(k);
    while (t * k.reps < 10e-3 && k.reps < (1 << 20)) {
      k.reps *= 2;
      t = once(k);
    }
    k.best = t;
  }
  for (int round = 0; round < 5; ++round) {
    for (auto& k : ks) k.best = std::min(k.best, once(k));
  }
}

struct KernelSweepRow {
  std::string mesh;
  index_t n = 0;
  index_t nnz = 0;
  int chunk = 0;
  double spmv_csr = 0, spmv_sell = 0, spmv_fused = 0;
  double poly_csr = 0, poly_fused = 0;
};

KernelSweepRow sweep_mesh(int mesh_number, int degree) {
  const fem::CantileverProblem prob = fem::make_table2_cantilever(mesh_number);
  const sparse::CsrMatrix& k = prob.stiffness;

  Vector d = k.row_norms1();
  for (auto& di : d) di = 1.0 / std::sqrt(di);
  sparse::CsrMatrix scaled = k;
  scaled.scale_symmetric(d);

  const sparse::SellMatrix sell = sparse::SellMatrix::from_csr(scaled);
  core::KernelOptions ko;
  ko.overlap = false;
  const core::RankKernel fused(k, Vector(d), {}, ko);

  KernelSweepRow row;
  row.mesh = fem::table2_meshes()[static_cast<std::size_t>(mesh_number - 1)]
                 .name;
  row.n = k.rows();
  row.nnz = k.nnz();
  row.chunk = sell.chunk();

  Vector x(static_cast<std::size_t>(k.cols()), 1.0);
  Vector y(static_cast<std::size_t>(k.rows()));
  TimedKernel spmv[3];
  spmv[0].fn = [&] { scaled.spmv(x, y); };
  spmv[1].fn = [&] { sell.spmv(x, y); };
  spmv[2].fn = [&] { fused.apply(x, y); };
  time_kernels(spmv);
  row.spmv_csr = spmv[0].best;
  row.spmv_sell = spmv[1].best;
  row.spmv_fused = spmv[2].best;

  const core::GlsPolynomial poly(core::default_theta_after_scaling(), degree);
  const core::LinearOp op_csr = core::LinearOp::from_csr(scaled);
  const core::LinearOp op_fused(
      k.rows(), [&fused](std::span<const real_t> in, std::span<real_t> out) {
        fused.apply(in, out);
      });
  Vector z(x.size());
  TimedKernel pk[2];
  pk[0].fn = [&] { poly.apply(op_csr, x, z); };
  pk[1].fn = [&] { poly.apply(op_fused, x, z); };
  time_kernels(pk);
  row.poly_csr = pk[0].best;
  row.poly_fused = pk[1].best;
  return row;
}

int run_kernel_sweep(const std::string& json_path, int max_mesh) {
  const int degree = 7;
  const auto meshes = fem::table2_meshes();
  const int nmesh =
      std::min<int>(max_mesh, static_cast<int>(meshes.size()));

  std::vector<KernelSweepRow> rows;
  std::printf("kernel sweep: scaled CSR vs SELL-C-s vs fused (GLS-%d)\n",
              degree);
  std::printf("%-8s %9s %10s  %10s %10s %10s  %8s | %10s %10s  %8s\n", "mesh",
              "n", "nnz", "spmv_csr", "spmv_sell", "spmv_fused", "speedup",
              "poly_csr", "poly_fused", "speedup");
  for (int m = 1; m <= nmesh; ++m) {
    rows.push_back(sweep_mesh(m, degree));
    const auto& r = rows.back();
    std::printf(
        "%-8s %9lld %10lld  %9.2fus %9.2fus %9.2fus  %7.2fx | %9.2fus "
        "%9.2fus  %7.2fx\n",
        r.mesh.c_str(), static_cast<long long>(r.n),
        static_cast<long long>(r.nnz), r.spmv_csr * 1e6, r.spmv_sell * 1e6,
        r.spmv_fused * 1e6, r.spmv_csr / r.spmv_fused, r.poly_csr * 1e6,
        r.poly_fused * 1e6, r.poly_csr / r.poly_fused);
    std::fflush(stdout);
  }

  double geo_spmv = 0.0, geo_poly = 0.0;
  for (const auto& r : rows) {
    geo_spmv += std::log(r.spmv_csr / r.spmv_fused);
    geo_poly += std::log(r.poly_csr / r.poly_fused);
  }
  geo_spmv = std::exp(geo_spmv / static_cast<double>(rows.size()));
  geo_poly = std::exp(geo_poly / static_cast<double>(rows.size()));
  std::printf("geomean speedup: spmv %.2fx, GLS-%d apply %.2fx\n", geo_spmv,
              degree, geo_poly);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"micro_kernels\",\n  \"sweep\": "
         "\"csr_vs_sell_vs_fused\",\n  \"poly_degree\": "
      << degree << ",\n  \"geomean_speedup\": {\"spmv_fused\": " << geo_spmv
      << ", \"poly_fused\": " << geo_poly << "},\n  \"meshes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const double gf = 2.0 * static_cast<double>(r.nnz) * 1e-9;
    out << "    {\"mesh\": \"" << r.mesh << "\", \"n\": " << r.n
        << ", \"nnz\": " << r.nnz << ", \"chunk\": " << r.chunk
        << ",\n     \"spmv_seconds\": {\"csr\": " << r.spmv_csr
        << ", \"sell\": " << r.spmv_sell << ", \"fused\": " << r.spmv_fused
        << "},\n     \"spmv_gflops\": {\"csr\": " << gf / r.spmv_csr
        << ", \"sell\": " << gf / r.spmv_sell
        << ", \"fused\": " << gf / r.spmv_fused
        << "},\n     \"poly_seconds\": {\"csr\": " << r.poly_csr
        << ", \"fused\": " << r.poly_fused
        << "},\n     \"speedup\": {\"spmv_sell\": " << r.spmv_csr / r.spmv_sell
        << ", \"spmv_fused\": " << r.spmv_csr / r.spmv_fused
        << ", \"poly_fused\": " << r.poly_csr / r.poly_fused << "}}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("kernel sweep written to %s\n", json_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------
// Matrix-free EBE sweep (--ebe-json=PATH).
//
// Same Table 2 mesh family, but the contender is the Format::Ebe rank
// kernel: per-element dense matrices with the norm-1 scaling folded at
// build time, applied by gather-multiply-scatter.  Alongside the
// timings the sweep reports a bytes-per-dof column — the resident
// operator footprint each format streams per SpMV:
//   csr   nnz*(8 value + 4 col) + (n+1)*4 row-pointer bytes
//   sell  padded_nnz*(8 + 4) + (nchunks+1)*4 chunk-offset bytes
//   ebe   stored dense entries*8 + element dof ids*4
// EBE trades duplicated interface entries (dense element blocks) for a
// perfectly regular layout and zero assembly; the column quantifies
// that trade per mesh.

struct EbeSweepRow {
  std::string mesh;
  index_t n = 0;
  index_t nnz = 0;
  index_t elems = 0;
  double spmv_csr = 0, spmv_sell = 0, spmv_ebe = 0;
  double poly_csr = 0, poly_ebe = 0;
  double bpd_csr = 0, bpd_sell = 0, bpd_ebe = 0;
};

EbeSweepRow sweep_mesh_ebe(int mesh_number, int degree) {
  const fem::CantileverProblem prob = fem::make_table2_cantilever(mesh_number);
  const sparse::CsrMatrix& k = prob.stiffness;

  Vector d = k.row_norms1();
  for (auto& di : d) di = 1.0 / std::sqrt(di);
  sparse::CsrMatrix scaled = k;
  scaled.scale_symmetric(d);
  const sparse::SellMatrix sell = sparse::SellMatrix::from_csr(scaled);

  const sparse::EbeStore elems = fem::build_ebe_store(
      prob.mesh, prob.dofs, prob.material, fem::Operator::Stiffness);
  core::KernelOptions eo;
  eo.format = core::KernelOptions::Format::Ebe;
  eo.overlap = false;
  const core::RankKernel ebe(k, Vector(d), {}, eo, &elems);

  EbeSweepRow row;
  row.mesh = fem::table2_meshes()[static_cast<std::size_t>(mesh_number - 1)]
                 .name;
  row.n = k.rows();
  row.nnz = k.nnz();
  row.elems = elems.num_elems();

  const double n = static_cast<double>(k.rows());
  row.bpd_csr = (static_cast<double>(k.nnz()) * (8.0 + 4.0) +
                 static_cast<double>(k.rows() + 1) * 4.0) /
                n;
  const index_t nchunks =
      (sell.stored_rows() + sell.chunk() - 1) / sell.chunk();
  row.bpd_sell = (static_cast<double>(sell.padded_nnz()) * (8.0 + 4.0) +
                  static_cast<double>(nchunks + 1) * 4.0) /
                 n;
  row.bpd_ebe = (static_cast<double>(elems.stored_values()) * 8.0 +
                 static_cast<double>(elems.dof_ids().size()) * 4.0) /
                n;

  Vector x(static_cast<std::size_t>(k.cols()), 1.0);
  Vector y(static_cast<std::size_t>(k.rows()));
  TimedKernel spmv[3];
  spmv[0].fn = [&] { scaled.spmv(x, y); };
  spmv[1].fn = [&] { sell.spmv(x, y); };
  spmv[2].fn = [&] { ebe.apply(x, y); };
  time_kernels(spmv);
  row.spmv_csr = spmv[0].best;
  row.spmv_sell = spmv[1].best;
  row.spmv_ebe = spmv[2].best;

  const core::GlsPolynomial poly(core::default_theta_after_scaling(), degree);
  const core::LinearOp op_csr = core::LinearOp::from_csr(scaled);
  const core::LinearOp op_ebe(
      k.rows(), [&ebe](std::span<const real_t> in, std::span<real_t> out) {
        ebe.apply(in, out);
      });
  Vector z(x.size());
  TimedKernel pk[2];
  pk[0].fn = [&] { poly.apply(op_csr, x, z); };
  pk[1].fn = [&] { poly.apply(op_ebe, x, z); };
  time_kernels(pk);
  row.poly_csr = pk[0].best;
  row.poly_ebe = pk[1].best;
  return row;
}

int run_ebe_sweep(const std::string& json_path, int max_mesh) {
  const int degree = 7;
  const auto meshes = fem::table2_meshes();
  const int nmesh = std::min<int>(max_mesh, static_cast<int>(meshes.size()));

  std::vector<EbeSweepRow> rows;
  std::printf("EBE sweep: matrix-free vs scaled CSR vs SELL (GLS-%d)\n",
              degree);
  std::printf("%-8s %9s %8s  %10s %10s %10s  %8s | %8s %8s %8s\n", "mesh",
              "n", "elems", "spmv_csr", "spmv_sell", "spmv_ebe", "ebe_vs_csr",
              "B/dof csr", "sell", "ebe");
  for (int m = 1; m <= nmesh; ++m) {
    rows.push_back(sweep_mesh_ebe(m, degree));
    const auto& r = rows.back();
    std::printf(
        "%-8s %9lld %8lld  %9.2fus %9.2fus %9.2fus  %7.2fx | %8.1f %8.1f "
        "%8.1f\n",
        r.mesh.c_str(), static_cast<long long>(r.n),
        static_cast<long long>(r.elems), r.spmv_csr * 1e6, r.spmv_sell * 1e6,
        r.spmv_ebe * 1e6, r.spmv_csr / r.spmv_ebe, r.bpd_csr, r.bpd_sell,
        r.bpd_ebe);
    std::fflush(stdout);
  }

  double geo_spmv = 0.0, geo_poly = 0.0;
  for (const auto& r : rows) {
    geo_spmv += std::log(r.spmv_csr / r.spmv_ebe);
    geo_poly += std::log(r.poly_csr / r.poly_ebe);
  }
  geo_spmv = std::exp(geo_spmv / static_cast<double>(rows.size()));
  geo_poly = std::exp(geo_poly / static_cast<double>(rows.size()));
  std::printf("geomean speed vs scaled CSR: spmv %.2fx, GLS-%d apply %.2fx\n",
              geo_spmv, degree, geo_poly);

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << "{\n  \"bench\": \"micro_kernels\",\n  \"sweep\": "
         "\"ebe_vs_csr_vs_sell\",\n  \"poly_degree\": "
      << degree << ",\n  \"geomean_speed_vs_csr\": {\"spmv_ebe\": " << geo_spmv
      << ", \"poly_ebe\": " << geo_poly << "},\n  \"meshes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    const double gf = 2.0 * static_cast<double>(r.nnz) * 1e-9;
    out << "    {\"mesh\": \"" << r.mesh << "\", \"n\": " << r.n
        << ", \"nnz\": " << r.nnz << ", \"elems\": " << r.elems
        << ",\n     \"spmv_seconds\": {\"csr\": " << r.spmv_csr
        << ", \"sell\": " << r.spmv_sell << ", \"ebe\": " << r.spmv_ebe
        << "},\n     \"spmv_gflops\": {\"csr\": " << gf / r.spmv_csr
        << ", \"sell\": " << gf / r.spmv_sell
        << ", \"ebe\": " << gf / r.spmv_ebe
        << "},\n     \"poly_seconds\": {\"csr\": " << r.poly_csr
        << ", \"ebe\": " << r.poly_ebe
        << "},\n     \"bytes_per_dof\": {\"csr\": " << r.bpd_csr
        << ", \"sell\": " << r.bpd_sell << ", \"ebe\": " << r.bpd_ebe
        << "},\n     \"speed_vs_csr\": {\"spmv_ebe\": "
        << r.spmv_csr / r.spmv_ebe
        << ", \"poly_ebe\": " << r.poly_csr / r.poly_ebe << "}}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("EBE sweep written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string ebe_json_path;
  int max_mesh = 8;  // Mesh9/10 assemble slowly; opt in via --kernels-meshes
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view a(argv[i]);
    if (a.rfind("--kernels-json=", 0) == 0) {
      json_path = std::string(a.substr(15));
    } else if (a.rfind("--ebe-json=", 0) == 0) {
      ebe_json_path = std::string(a.substr(11));
    } else if (a.rfind("--kernels-meshes=", 0) == 0) {
      max_mesh = std::atoi(a.substr(17).data());
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    if (const int rc = run_kernel_sweep(json_path, max_mesh); rc != 0) {
      return rc;
    }
  }
  if (!ebe_json_path.empty()) {
    if (const int rc = run_ebe_sweep(ebe_json_path, max_mesh); rc != 0) {
      return rc;
    }
  }
  int rc = static_cast<int>(rest.size());
  benchmark::Initialize(&rc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
