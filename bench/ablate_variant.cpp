// Ablation: Algorithm 5 (basic, m+3 exchanges/iter) vs Algorithm 6
// (enhanced, m+1 exchanges/iter) — what the paper's enhancement is worth
// in modeled time on both machines, across polynomial degrees.
#include <iostream>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 60 : 40;
  spec.ny = spec.nx;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 8);

  exp::banner(std::cout,
              "Ablation — EDD-FGMRES Algorithm 5 (basic) vs Algorithm 6 "
              "(enhanced), P = 8");

  exp::Table table({"m", "variant", "iters", "exchanges", "T(SP2) s",
                    "T(Origin) s"});
  for (int m : {1, 3, 7, 10}) {
    core::PolySpec poly;
    poly.degree = m;
    core::SolveOptions opts;
    opts.tol = 1e-6;
    opts.max_iters = 60000;
    for (auto variant : {core::EddVariant::Basic, core::EddVariant::Enhanced}) {
      const auto res = core::solve_edd(part, prob.load, poly, opts, variant);
      table.add_row(
          {exp::Table::integer(m),
           variant == core::EddVariant::Basic ? "Alg.5 basic"
                                              : "Alg.6 enhanced",
           exp::Table::integer(res.iterations),
           exp::Table::integer(static_cast<long long>(
               res.rank_counters[0].neighbor_exchanges)),
           exp::Table::num(par::model_time(par::MachineModel::ibm_sp2(),
                                           res.rank_counters).total(), 4),
           exp::Table::num(par::model_time(par::MachineModel::sgi_origin(),
                                           res.rank_counters).total(), 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: the enhancement saves 2 exchanges/iteration — "
               "largest relative gain at low degree and on the\n"
               "high-latency SP2.\n";
  return 0;
}
