// Shared plumbing for the per-figure/table bench binaries.
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "exp/table.hpp"

namespace pfem::bench {

/// True when the binary was invoked with --full (paper-scale sweep);
/// default runs are sized to finish in seconds.
inline bool full_run(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return true;
  return false;
}

/// Print a residual history downsampled to ~`points` rows.
inline void print_history(const std::string& label,
                          const std::vector<double>& history, int points = 8) {
  std::cout << "  " << label << " [iter: relres]: ";
  if (history.empty()) {
    std::cout << "(converged immediately)\n";
    return;
  }
  const std::size_t stride =
      std::max<std::size_t>(1, history.size() / static_cast<std::size_t>(points));
  for (std::size_t i = 0; i < history.size(); i += stride)
    std::cout << i + 1 << ": " << exp::Table::sci(history[i], 1) << "  ";
  std::cout << history.size() << ": "
            << exp::Table::sci(history.back(), 1) << "\n";
}

}  // namespace pfem::bench
