// Shared plumbing for the per-figure/table bench binaries.
#pragma once

#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "exp/table.hpp"
#include "par/counters.hpp"

namespace pfem::bench {

/// True when the binary was invoked with --full (paper-scale sweep);
/// default runs are sized to finish in seconds.
inline bool full_run(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return true;
  return false;
}

/// Print a residual history downsampled to ~`points` rows.
inline void print_history(const std::string& label,
                          const std::vector<double>& history, int points = 8) {
  std::cout << "  " << label << " [iter: relres]: ";
  if (history.empty()) {
    std::cout << "(converged immediately)\n";
    return;
  }
  const std::size_t stride =
      std::max<std::size_t>(1, history.size() / static_cast<std::size_t>(points));
  for (std::size_t i = 0; i < history.size(); i += stride)
    std::cout << i + 1 << ": " << exp::Table::sci(history[i], 1) << "  ";
  std::cout << history.size() << ": "
            << exp::Table::sci(history.back(), 1) << "\n";
}

/// Integer given via e.g. --rhs=N (prefix includes the '='), or the
/// fallback when the flag is absent.
inline int int_flag(int argc, char** argv, const char* prefix, int fallback) {
  const std::size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], prefix, len) == 0)
      return std::stoi(argv[i] + len);
  return fallback;
}

/// Path given via --counters-json=FILE, or "" when the flag is absent.
inline std::string counters_json_path(int argc, char** argv) {
  constexpr const char* kFlag = "--counters-json=";
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0)
      return std::string(argv[i] + std::strlen(kFlag));
  return {};
}

/// When --counters-json=FILE was passed, dump the per-rank PerfCounters of
/// the run (typically DistSolveResult::rank_counters / ::setup_counters)
/// to FILE and print a confirmation line.  Returns false only when the
/// dump was requested and failed, so callers can surface it in the exit
/// code.
inline bool dump_counters_if_requested(
    int argc, char** argv, std::span<const par::PerfCounters> ranks,
    std::span<const par::PerfCounters> setup = {}) {
  const std::string path = counters_json_path(argc, argv);
  if (path.empty()) return true;
  if (!par::dump_counters_json(path, ranks, setup)) {
    std::cerr << "error: could not write counters to " << path << "\n";
    return false;
  }
  std::cout << "per-rank counters written to " << path << "\n";
  return true;
}

}  // namespace pfem::bench
