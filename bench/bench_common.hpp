// Shared plumbing for the per-figure/table bench binaries.  Flag parsing
// and the observability dumps live in exp/cli.hpp (shared with the
// service tools); this header keeps the bench-flavored names and the
// residual-history printer.
#pragma once

#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "exp/table.hpp"
#include "par/counters.hpp"

namespace pfem::bench {

/// True when the binary was invoked with --full (paper-scale sweep);
/// default runs are sized to finish in seconds.
inline bool full_run(int argc, char** argv) {
  return exp::has_flag(argc, argv, "--full");
}

/// Print a residual history downsampled to ~`points` rows.
inline void print_history(const std::string& label,
                          const std::vector<double>& history, int points = 8) {
  std::cout << "  " << label << " [iter: relres]: ";
  if (history.empty()) {
    std::cout << "(converged immediately)\n";
    return;
  }
  const std::size_t stride =
      std::max<std::size_t>(1, history.size() / static_cast<std::size_t>(points));
  for (std::size_t i = 0; i < history.size(); i += stride)
    std::cout << i + 1 << ": " << exp::Table::sci(history[i], 1) << "  ";
  std::cout << history.size() << ": "
            << exp::Table::sci(history.back(), 1) << "\n";
}

/// Integer given via e.g. --rhs=N (prefix includes the '='), or the
/// fallback when the flag is absent.  (Deprecated spelling — new code
/// should use exp::int_flag with the bare flag name.)
inline int int_flag(int argc, char** argv, const char* prefix, int fallback) {
  std::string name(prefix);
  if (!name.empty() && name.back() == '=') name.pop_back();
  return exp::int_flag(argc, argv, name.c_str(), fallback);
}

/// Path given via --counters-json=FILE, or "" when the flag is absent.
inline std::string counters_json_path(int argc, char** argv) {
  return exp::counters_json_path(argc, argv);
}

/// See exp::dump_counters_if_requested.
inline bool dump_counters_if_requested(
    int argc, char** argv, std::span<const par::PerfCounters> ranks,
    std::span<const par::PerfCounters> setup = {}) {
  return exp::dump_counters_if_requested(argc, argv, ranks, setup);
}

}  // namespace pfem::bench
