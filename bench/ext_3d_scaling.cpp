// Extension: the solver stack on 3-D elasticity (trilinear hexahedra).
// The paper's §5 flags 3-D as the regime where the row-based layout's
// duplicated-element storage "may increase drastically"; this bench runs
// the EDD solver on a 3-D bar, reports modeled speedup, measures the
// RDD duplication factor in 2-D vs 3-D, and runs the brick3d family's
// stiffness-jump sweep (deflation off / standard / jump-aware).
// --json=PATH records everything for run_paper_full.sh (BENCH_3d.json).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/families.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

namespace {

struct BarRow {
  std::string bar;
  pfem::index_t n_eqn = 0;
  pfem::index_t iters = 0;
  double s2 = 0.0, s4 = 0.0, s8 = 0.0;
};

struct DeflRow {
  std::string bar;
  pfem::index_t n_eqn = 0;
  pfem::index_t iters_off = 0;
  pfem::index_t iters_defl = 0;
};

struct JumpRow {
  double jump = 1.0;
  std::string variant;
  pfem::index_t iters = 0;
  bool converged = false;
};

struct DupRow {
  std::string problem;
  pfem::index_t n_eqn = 0;
  double factor = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--json=", 0) == 0) json_path = a.substr(7);
  }
  std::vector<BarRow> bar_rows;
  std::vector<DeflRow> defl_rows;
  std::vector<JumpRow> jump_rows;
  std::vector<DupRow> dup_rows;
  const par::MachineModel origin = par::MachineModel::sgi_origin();
  core::PolySpec poly;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::banner(std::cout, "Extension — 3-D elasticity (Hex8 bar), "
                         "EDD-FGMRES-GLS(7) modeled speedup");
  exp::Table table({"bar", "nEqn", "iters(P=1)", "S(P=2)", "S(P=4)",
                    "S(P=8)"});
  const std::vector<std::array<index_t, 3>> bars =
      full ? std::vector<std::array<index_t, 3>>{{16, 4, 4}, {24, 6, 6},
                                                 {32, 8, 8}}
           : std::vector<std::array<index_t, 3>>{{12, 3, 3}, {16, 4, 4}};
  for (const auto& [nx, ny, nz] : bars) {
    fem::Cantilever3dSpec spec;
    spec.nx = nx;
    spec.ny = ny;
    spec.nz = nz;
    const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);
    const auto rows =
        exp::edd_speedup_study(prob, poly, {1, 2, 4, 8}, origin, opts);
    const std::string bar = std::to_string(nx) + "x" + std::to_string(ny) +
                            "x" + std::to_string(nz);
    table.add_row({bar, exp::Table::integer(prob.dofs.num_free()),
                   exp::Table::integer(rows[0].iterations),
                   exp::Table::num(rows[1].speedup, 2),
                   exp::Table::num(rows[2].speedup, 2),
                   exp::Table::num(rows[3].speedup, 2)});
    bar_rows.push_back({bar, prob.dofs.num_free(), rows[0].iterations,
                        rows[1].speedup, rows[2].speedup, rows[3].speedup});
  }
  table.print(std::cout);

  // Two-level deflation carries over to 3-D unchanged: coord_dim = 3,
  // three displacement components, q = 12 for the full {1, x, y, z}
  // per-component patch basis (dim(E) = 12 P).
  exp::banner(std::cout,
              "Extension — deflation on the 3-D bar, EDD-FGMRES-GLS(7), "
              "P = 8");
  exp::Table defl_table({"bar", "nEqn", "iters off", "iters defl",
                         "dim(E)"});
  for (const auto& [nx, ny, nz] : bars) {
    fem::Cantilever3dSpec spec;
    spec.nx = nx;
    spec.ny = ny;
    spec.nz = nz;
    const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);
    const partition::EddPartition part = exp::make_edd(prob, 8);
    const core::DistSolve off =
        core::solve_edd(part, prob.load, poly, opts);
    core::SolveOptions dopts = opts;
    dopts.deflation.enabled = true;
    dopts.deflation.vectors_per_subdomain = 12;
    dopts.deflation.components = 3;
    dopts.deflation.dof_coords = fem::free_dof_coords(prob.mesh, prob.dofs);
    dopts.deflation.coord_dim = 3;
    const core::DistSolve defl =
        core::solve_edd(part, prob.load, poly, dopts);
    const std::string bar = std::to_string(nx) + "x" + std::to_string(ny) +
                            "x" + std::to_string(nz);
    defl_table.add_row({bar, exp::Table::integer(prob.dofs.num_free()),
                        exp::Table::integer(off.iterations),
                        exp::Table::integer(defl.iterations),
                        exp::Table::integer(12 * 8)});
    defl_rows.push_back(
        {bar, prob.dofs.num_free(), off.iterations, defl.iterations});
  }
  defl_table.print(std::cout);

  // The brick3d family: per-element stiffness jumps on the hex bar.  An
  // x-aligned interface at P = 8 leaves every patch single-class, so the
  // checkerboard (misaligned with every RCB cut) is the sweep here too.
  exp::banner(std::cout,
              "Extension — brick3d stiffness jumps (checkerboard), "
              "EDD-FGMRES-GLS(7), P = 8");
  exp::Table jump_table({"jump", "variant", "iterations", "converged"});
  {
    fem::ProblemSpec spec = fem::default_spec("brick3d");
    if (full) {
      spec.nx = 16;
      spec.ny = 4;
      spec.nz = 4;
    } else {
      spec.nx = 12;
      spec.ny = 3;
      spec.nz = 3;
    }
    spec.aligned = false;
    spec.checker = 3;
    for (double jump : {1.0, 1.0e4}) {
      spec.jump = jump;
      const fem::FamilyProblem fp = fem::make_problem(spec);
      const partition::EddPartition part = exp::make_edd(fp, 8);
      for (int v = 0; v < 3; ++v) {
        core::SolveOptions jopts = opts;
        if (v > 0) jopts.deflation = exp::family_deflation(fp, v == 2);
        const core::DistSolve r =
            core::solve_edd(part, fp.prob.load, poly, jopts);
        const char* vname = v == 0 ? "off" : (v == 1 ? "deflated"
                                                     : "jump_aware");
        jump_table.add_row({exp::Table::sci(jump, 0), vname,
                            exp::Table::integer(r.iterations),
                            r.converged ? "yes" : "no"});
        jump_rows.push_back({jump, vname, r.iterations, r.converged});
      }
    }
  }
  jump_table.print(std::cout);

  // RDD duplicated-element storage factor: 2-D vs 3-D at P = 8.
  exp::banner(std::cout,
              "RDD duplicated-element storage factor (paper Fig. 8 / §5), "
              "P = 8");
  exp::Table dup({"problem", "nEqn", "dup nnz / owned nnz"});
  {
    fem::CantileverSpec spec2;
    spec2.nx = 16;
    spec2.ny = 16;
    const fem::CantileverProblem p2 = fem::make_cantilever(spec2);
    const auto rp = exp::make_rdd(p2, 8);
    std::uint64_t owned = 0, dupn = 0;
    for (const auto& sub : rp.subs) {
      owned += static_cast<std::uint64_t>(sub.a_loc.nnz()) +
               static_cast<std::uint64_t>(sub.a_ext.nnz());
      dupn += sub.duplicated_nnz;
    }
    dup.add_row({"2-D 16x16 Q4", exp::Table::integer(p2.dofs.num_free()),
                 exp::Table::num(double(dupn) / double(owned), 3)});
    dup_rows.push_back(
        {"2d_16x16_q4", p2.dofs.num_free(), double(dupn) / double(owned)});
  }
  {
    fem::Cantilever3dSpec spec3;
    spec3.nx = 8;
    spec3.ny = 5;
    spec3.nz = 5;
    const fem::CantileverProblem p3 = fem::make_cantilever_3d(spec3);
    const auto rp = exp::make_rdd(p3, 8);
    std::uint64_t owned = 0, dupn = 0;
    for (const auto& sub : rp.subs) {
      owned += static_cast<std::uint64_t>(sub.a_loc.nnz()) +
               static_cast<std::uint64_t>(sub.a_ext.nnz());
      dupn += sub.duplicated_nnz;
    }
    dup.add_row({"3-D 8x5x5 Hex8", exp::Table::integer(p3.dofs.num_free()),
                 exp::Table::num(double(dupn) / double(owned), 3)});
    dup_rows.push_back(
        {"3d_8x5x5_hex8", p3.dofs.num_free(), double(dupn) / double(owned)});
  }
  dup.print(std::cout);
  std::cout << "\nexpected: the 3-D duplication factor exceeds the 2-D one "
               "(thicker interface layers) — the paper's\n\"storage "
               "requirements may increase drastically\" drawback.\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n  \"bench\": \"ext_3d_scaling\",\n  \"full\": "
        << (full ? "true" : "false") << ",\n  \"speedup\": [\n";
    for (std::size_t i = 0; i < bar_rows.size(); ++i) {
      const BarRow& r = bar_rows[i];
      out << "    {\"bar\": \"" << r.bar << "\", \"n_eqn\": " << r.n_eqn
          << ", \"iters_p1\": " << r.iters << ", \"s2\": " << r.s2
          << ", \"s4\": " << r.s4 << ", \"s8\": " << r.s8 << "}"
          << (i + 1 < bar_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"deflation\": [\n";
    for (std::size_t i = 0; i < defl_rows.size(); ++i) {
      const DeflRow& r = defl_rows[i];
      out << "    {\"bar\": \"" << r.bar << "\", \"n_eqn\": " << r.n_eqn
          << ", \"iters_off\": " << r.iters_off
          << ", \"iters_deflated\": " << r.iters_defl
          << ", \"coarse_dim\": " << 12 * 8 << "}"
          << (i + 1 < defl_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"brick3d_jumps\": [\n";
    for (std::size_t i = 0; i < jump_rows.size(); ++i) {
      const JumpRow& r = jump_rows[i];
      out << "    {\"jump\": " << r.jump << ", \"variant\": \"" << r.variant
          << "\", \"iterations\": " << r.iters
          << ", \"converged\": " << (r.converged ? "true" : "false") << "}"
          << (i + 1 < jump_rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"rdd_duplication\": [\n";
    for (std::size_t i = 0; i < dup_rows.size(); ++i) {
      const DupRow& r = dup_rows[i];
      out << "    {\"problem\": \"" << r.problem
          << "\", \"n_eqn\": " << r.n_eqn << ", \"factor\": " << r.factor
          << "}" << (i + 1 < dup_rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("3-D sweep written to %s\n", json_path.c_str());
  }
  return 0;
}
