// Extension: the solver stack on 3-D elasticity (trilinear hexahedra).
// The paper's §5 flags 3-D as the regime where the row-based layout's
// duplicated-element storage "may increase drastically"; this bench runs
// the EDD solver on a 3-D bar, reports modeled speedup, and measures the
// RDD duplication factor in 2-D vs 3-D.
#include <iostream>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  const par::MachineModel origin = par::MachineModel::sgi_origin();
  core::PolySpec poly;
  poly.degree = 7;
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::banner(std::cout, "Extension — 3-D elasticity (Hex8 bar), "
                         "EDD-FGMRES-GLS(7) modeled speedup");
  exp::Table table({"bar", "nEqn", "iters(P=1)", "S(P=2)", "S(P=4)",
                    "S(P=8)"});
  const std::vector<std::array<index_t, 3>> bars =
      full ? std::vector<std::array<index_t, 3>>{{16, 4, 4}, {24, 6, 6},
                                                 {32, 8, 8}}
           : std::vector<std::array<index_t, 3>>{{12, 3, 3}, {16, 4, 4}};
  for (const auto& [nx, ny, nz] : bars) {
    fem::Cantilever3dSpec spec;
    spec.nx = nx;
    spec.ny = ny;
    spec.nz = nz;
    const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);
    const auto rows =
        exp::edd_speedup_study(prob, poly, {1, 2, 4, 8}, origin, opts);
    table.add_row({std::to_string(nx) + "x" + std::to_string(ny) + "x" +
                       std::to_string(nz),
                   exp::Table::integer(prob.dofs.num_free()),
                   exp::Table::integer(rows[0].iterations),
                   exp::Table::num(rows[1].speedup, 2),
                   exp::Table::num(rows[2].speedup, 2),
                   exp::Table::num(rows[3].speedup, 2)});
  }
  table.print(std::cout);

  // Two-level deflation carries over to 3-D unchanged: coord_dim = 3,
  // three displacement components, q = 12 for the full {1, x, y, z}
  // per-component patch basis (dim(E) = 12 P).
  exp::banner(std::cout,
              "Extension — deflation on the 3-D bar, EDD-FGMRES-GLS(7), "
              "P = 8");
  exp::Table defl_table({"bar", "nEqn", "iters off", "iters defl",
                         "dim(E)"});
  for (const auto& [nx, ny, nz] : bars) {
    fem::Cantilever3dSpec spec;
    spec.nx = nx;
    spec.ny = ny;
    spec.nz = nz;
    const fem::CantileverProblem prob = fem::make_cantilever_3d(spec);
    const partition::EddPartition part = exp::make_edd(prob, 8);
    const core::DistSolve off =
        core::solve_edd(part, prob.load, poly, opts);
    core::SolveOptions dopts = opts;
    dopts.deflation.enabled = true;
    dopts.deflation.vectors_per_subdomain = 12;
    dopts.deflation.components = 3;
    dopts.deflation.dof_coords = fem::free_dof_coords(prob.mesh, prob.dofs);
    dopts.deflation.coord_dim = 3;
    const core::DistSolve defl =
        core::solve_edd(part, prob.load, poly, dopts);
    defl_table.add_row({std::to_string(nx) + "x" + std::to_string(ny) + "x" +
                            std::to_string(nz),
                        exp::Table::integer(prob.dofs.num_free()),
                        exp::Table::integer(off.iterations),
                        exp::Table::integer(defl.iterations),
                        exp::Table::integer(12 * 8)});
  }
  defl_table.print(std::cout);

  // RDD duplicated-element storage factor: 2-D vs 3-D at P = 8.
  exp::banner(std::cout,
              "RDD duplicated-element storage factor (paper Fig. 8 / §5), "
              "P = 8");
  exp::Table dup({"problem", "nEqn", "dup nnz / owned nnz"});
  {
    fem::CantileverSpec spec2;
    spec2.nx = 16;
    spec2.ny = 16;
    const fem::CantileverProblem p2 = fem::make_cantilever(spec2);
    const auto rp = exp::make_rdd(p2, 8);
    std::uint64_t owned = 0, dupn = 0;
    for (const auto& sub : rp.subs) {
      owned += static_cast<std::uint64_t>(sub.a_loc.nnz()) +
               static_cast<std::uint64_t>(sub.a_ext.nnz());
      dupn += sub.duplicated_nnz;
    }
    dup.add_row({"2-D 16x16 Q4", exp::Table::integer(p2.dofs.num_free()),
                 exp::Table::num(double(dupn) / double(owned), 3)});
  }
  {
    fem::Cantilever3dSpec spec3;
    spec3.nx = 8;
    spec3.ny = 5;
    spec3.nz = 5;
    const fem::CantileverProblem p3 = fem::make_cantilever_3d(spec3);
    const auto rp = exp::make_rdd(p3, 8);
    std::uint64_t owned = 0, dupn = 0;
    for (const auto& sub : rp.subs) {
      owned += static_cast<std::uint64_t>(sub.a_loc.nnz()) +
               static_cast<std::uint64_t>(sub.a_ext.nnz());
      dupn += sub.duplicated_nnz;
    }
    dup.add_row({"3-D 8x5x5 Hex8", exp::Table::integer(p3.dofs.num_free()),
                 exp::Table::num(double(dupn) / double(owned), 3)});
  }
  dup.print(std::cout);
  std::cout << "\nexpected: the 3-D duplication factor exceeds the 2-D one "
               "(thicker interface layers) — the paper's\n\"storage "
               "requirements may increase drastically\" drawback.\n";
  return 0;
}
