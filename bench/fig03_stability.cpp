// Fig. 3: floating-point stability of the polynomial application —
// the Eq. 24 bound m·ε·Σ|a_i| versus the polynomial degree, for
// Θ = (ε, 1) (the post-scaling default) and Θ = (−4,−1) ∪ (7,10).
// The bound explodes with the degree, which is why the paper restricts
// m < 10 in practice (§2.2).
#include <iostream>

#include "bench_common.hpp"
#include "core/gls_poly.hpp"
#include "core/neumann.hpp"
#include "exp/table.hpp"

int main() {
  using namespace pfem;
  exp::banner(std::cout,
              "Fig. 3 — stability bound m*eps*sum|a_i| vs polynomial degree");

  const core::Theta unit = core::default_theta_after_scaling();
  const core::Theta split{{-4.0, -1.0}, {7.0, 10.0}};

  exp::Table table({"degree", "GLS Theta=(eps,1)", "GLS split Theta",
                    "Neumann omega=1"});
  for (int m : {1, 2, 4, 6, 8, 10, 14, 18, 22, 26, 30}) {
    const double b_unit = core::polynomial_stability_bound(
        m, core::GlsPolynomial(unit, m).coeff_abs_sum());
    const double b_split = core::polynomial_stability_bound(
        m, core::GlsPolynomial(split, m).coeff_abs_sum());
    const double b_neumann = core::polynomial_stability_bound(
        m, core::NeumannPolynomial(m, 1.0).coeff_abs_sum());
    table.add_row({exp::Table::integer(m), exp::Table::sci(b_unit, 2),
                   exp::Table::sci(b_split, 2),
                   exp::Table::sci(b_neumann, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(paper's conclusion: keep the degree below ~10 — the\n"
               " Theta=(eps,1) bound crosses the 1e-6 solver tolerance "
               "shortly after m = 10)\n";
  return 0;
}
