// Fig. 17(e): portability — the same solver trace modeled on the IBM SP2
// (distributed memory, high message latency) and the SGI Origin (ccNUMA,
// low latency).  The Origin scales better at small P, the paper's
// observation attributed to its shared-memory architecture.
#include <iostream>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 60 : 36;
  spec.ny = full ? 60 : 36;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  core::PolySpec poly;
  poly.degree = 7;

  exp::banner(std::cout, "Fig. 17(e) — EDD-FGMRES-GLS(7) speedup: IBM SP2 "
                         "vs SGI Origin vs modern node");

  // One trace per P, evaluated under the three machine models.
  const std::vector<par::MachineModel> machines = {
      par::MachineModel::ibm_sp2(), par::MachineModel::sgi_origin(),
      par::MachineModel::modern_node()};

  std::vector<std::vector<par::PerfCounters>> traces;
  std::vector<index_t> iters;
  std::vector<par::PerfCounters> last_setup;
  for (int p : {1, 2, 4, 8}) {
    const partition::EddPartition part = exp::make_edd(prob, p);
    const auto res = core::solve_edd(part, prob.load, poly, opts);
    traces.push_back(res.rank_counters);
    last_setup = res.setup_counters;
    iters.push_back(res.iterations);
  }

  exp::Table table({"P", "iters", "T(SP2) s", "S(SP2)", "T(Origin) s",
                    "S(Origin)", "S(modern)"});
  std::vector<double> t1(machines.size());
  for (std::size_t m = 0; m < machines.size(); ++m)
    t1[m] = par::model_time(machines[m], traces[0]).total();
  const int pvals[] = {1, 2, 4, 8};
  for (std::size_t k = 0; k < traces.size(); ++k) {
    std::vector<double> t(machines.size());
    for (std::size_t m = 0; m < machines.size(); ++m)
      t[m] = par::model_time(machines[m], traces[k]).total();
    table.add_row({exp::Table::integer(pvals[k]),
                   exp::Table::integer(iters[k]), exp::Table::num(t[0], 4),
                   exp::Table::num(t1[0] / t[0], 2),
                   exp::Table::num(t[1], 4),
                   exp::Table::num(t1[1] / t[1], 2),
                   exp::Table::num(t1[2] / t[2], 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: S(Origin) > S(SP2) at every P > 1.\n";
  if (!full) std::cout << "(pass --full for the 60x60 mesh)\n";
  return bench::dump_counters_if_requested(argc, argv, traces.back(),
                                           last_setup)
             ? 0
             : 1;
}
