// Solve-service load bench: what the warm path actually buys.
//
// Three ways to push N right-hand sides through the same operator at
// P = 4:
//
//   cold solve_edd   — the pre-service workflow: every solve spawns a
//                      fresh team, redoes the norm-1 scaling and the
//                      polynomial build, solves one RHS;
//   warm closed-loop — a Service with concurrent closed-loop clients:
//                      operator built once, requests coalesce into
//                      fused multi-RHS batches;
//   warm open-loop   — requests arrive in one burst (maximum batching
//                      headroom), futures harvested afterwards.
//
// Prints solves/sec and the speedup over the cold baseline.  The warm
// batched service is expected to clear 2x cold throughput — that ratio
// is what justifies the svc layer (see DESIGN.md).
//
// A third mode (--replay) measures what solve SESSIONS buy: a drifting
// operator/RHS trace solved step by step, once session-less (cold) and
// once through a session (warm start + recycled directions).  Gate:
// warm mean iterations over the drift steps must be >= 30% below cold.
// --replay-json=FILE records the run (BENCH_sessions.json in
// run_paper_full.sh).
//
// A second mode (--socket) measures the same cold/warm contrast against
// the sharded deployment: two forked shard processes (each a Service
// behind a svc::Server on a unix socket), a svc::Router with
// operator-cache-affinity routing in front, and closed-loop svc::Client
// peers driving it over the wire.  Cold is the first touch of every
// operator key (build + solve over the socket); warm is a same-keys
// request stream, which affinity routing keeps pinned to the shard
// whose cache holds the built operator.  Gates: warm >= 2x cold
// throughput AND >= 90% warm cache-hit rate.  --socket-json=FILE
// records the run for run_paper_full.sh (folded into BENCH_net.json).
#include <algorithm>
#include <atomic>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "net/sockets.hpp"
#include "net/spawn.hpp"
#include "svc/remote.hpp"
#include "svc/service.hpp"

namespace {

using namespace pfem;

constexpr int kRanks = 4;

struct Workload {
  fem::CantileverProblem prob;
  std::shared_ptr<const partition::EddPartition> part;
  core::PolySpec poly;
  std::vector<Vector> rhs;  ///< N distinct load vectors
};

Workload make_workload(int nx, int ny, int n_rhs, int nparts = kRanks) {
  fem::CantileverSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  fem::CantileverProblem prob = fem::make_cantilever(spec);
  auto part = std::make_shared<const partition::EddPartition>(
      exp::make_edd(prob, nparts));
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 7;
  std::vector<Vector> rhs;
  for (int i = 0; i < n_rhs; ++i) {
    Vector f = prob.load;
    for (real_t& v : f) v *= 1.0 + 0.05 * static_cast<real_t>(i);
    rhs.push_back(std::move(f));
  }
  return Workload{std::move(prob), std::move(part), poly, std::move(rhs)};
}

double run_cold(const Workload& w) {
  const WallTimer t;
  for (const Vector& f : w.rhs) {
    const auto res = core::solve_edd(*w.part, f, w.poly);
    PFEM_CHECK(res.converged);
  }
  return t.seconds();
}

double run_warm_burst(const Workload& w, std::uint64_t* batches, int argc,
                      char** argv) {
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  cfg.max_batch_rhs = w.rhs.size();
  // Tracing stays on for the timed runs on purpose: the acceptance
  // ratio below must hold with spans recording.
  cfg.observe = exp::observe_from_flags(argc, argv);
  svc::Service service(cfg);
  service.register_operator("op", w.part, w.poly);
  // Warm the cache so the bench isolates the steady state.
  {
    svc::SolveRequest req;
    req.operator_key = "op";
    req.rhs.push_back(w.rhs.front());
    PFEM_CHECK(svc::ok(service.submit(std::move(req)).outcome.get()));
  }
  const WallTimer t;
  // Hold dispatch while the burst lands so all N RHS coalesce into one
  // fused batch — the open-loop best case.
  service.set_paused(true);
  std::vector<std::future<svc::Outcome>> pending;
  for (const Vector& f : w.rhs) {
    svc::SolveRequest req;
    req.operator_key = "op";
    req.rhs.push_back(f);
    pending.push_back(service.submit(std::move(req)).outcome);
  }
  service.set_paused(false);
  for (auto& fut : pending) PFEM_CHECK(svc::ok(fut.get()));
  const double seconds = t.seconds();
  if (batches != nullptr) *batches = service.stats().batches - 1;
  service.shutdown();
  // Each timing run overwrites the dump; the final file is the keeper.
  if (cfg.observe.trace)
    PFEM_CHECK(exp::dump_trace_if_requested(argc, argv, service.trace()));
  return seconds;
}

double run_warm_closed(const Workload& w, int clients) {
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", w.part, w.poly);
  {
    svc::SolveRequest req;
    req.operator_key = "op";
    req.rhs.push_back(w.rhs.front());
    PFEM_CHECK(svc::ok(service.submit(std::move(req)).outcome.get()));
  }
  std::atomic<std::size_t> next{0};
  const WallTimer t;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c)
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= w.rhs.size()) return;
        svc::SolveRequest req;
        req.operator_key = "op";
        req.rhs.push_back(w.rhs[i]);
        PFEM_CHECK(svc::ok(service.submit(std::move(req)).outcome.get()));
      }
    });
  for (auto& th : workers) th.join();
  const double seconds = t.seconds();
  service.shutdown();
  return seconds;
}

// ---------------------------------------------------------------------------
// --socket: the sharded deployment.
// ---------------------------------------------------------------------------

/// Pipe I/O for the shard control/ready channels (plain read/write —
/// net::read_full/write_full are recv/send-based and socket-only).
bool pipe_put(int fd, unsigned char b) {
  for (;;) {
    const ssize_t n = ::write(fd, &b, 1);
    if (n == 1) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

bool pipe_get(int fd, unsigned char& b) {
  for (;;) {
    const ssize_t n = ::read(fd, &b, 1);
    if (n == 1) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF (peer closed) or error
  }
}

std::string op_key(int i) { return "op" + std::to_string(i); }

/// Shard process body: a Service behind a socket Server, every operator
/// key registered (spill can route any key to any shard), parked on the
/// control pipe until the parent is done.
int shard_main(int idx, const std::string& addr, int nx, int ny, int nranks,
               int nops, int ready_fd, int ctl_fd) {
  const Workload w = make_workload(nx, ny, /*n_rhs=*/1, nranks);
  svc::ServiceConfig cfg;
  cfg.nranks = nranks;
  cfg.cache_capacity = static_cast<std::size_t>(2 * nops);
  svc::Service service(cfg);
  for (int i = 0; i < nops; ++i)
    service.register_operator(op_key(i), w.part, w.poly);
  svc::Server server(service, addr, "shard" + std::to_string(idx));
  if (!pipe_put(ready_fd, 1)) return 3;
  unsigned char sink = 0;
  (void)pipe_get(ctl_fd, sink);  // parent closes its end when done
  server.stop();
  service.shutdown(true);
  return 0;
}

struct SocketRun {
  double cold_per_s = 0.0;
  double warm_per_s = 0.0;
  double hit_rate = 0.0;
  int warm_requests = 0;
  int warm_hits = 0;
  svc::Router::Stats router;
};

int run_socket_mode(int argc, char** argv) {
  const bool full = bench::full_run(argc, argv);
  const int nx = bench::int_flag(argc, argv, "--nx=", full ? 24 : 12);
  const int ny = bench::int_flag(argc, argv, "--ny=", full ? 8 : 4);
  const int nops = bench::int_flag(argc, argv, "--ops=", 8);
  const int warm_n = bench::int_flag(argc, argv, "--warm=", full ? 192 : 64);
  const int nclients = bench::int_flag(argc, argv, "--clients=", 4);
  const std::uint64_t seed = static_cast<std::uint64_t>(
      bench::int_flag(argc, argv, "--seed=", 0));
  constexpr int kShards = 2;
  constexpr int kShardRanks = 2;

  const std::string base =
      "/tmp/pfem_svc_load_" + std::to_string(::getpid());
  std::vector<std::string> shard_addrs;
  for (int s = 0; s < kShards; ++s)
    shard_addrs.push_back("unix:" + base + "_s" + std::to_string(s) +
                          ".sock");
  const std::string router_addr = "unix:" + base + "_r.sock";

  // Fork the shards FIRST — before any thread exists in this process
  // (see net::fork_run).
  struct ShardProc {
    pid_t pid = -1;
    int ready_r = -1;
    int ctl_w = -1;
  };
  std::vector<ShardProc> shards;
  for (int s = 0; s < kShards; ++s) {
    int ready[2], ctl[2];
    PFEM_CHECK(::pipe(ready) == 0 && ::pipe(ctl) == 0);
    const pid_t pid = net::fork_run([&, s]() -> int {
      net::close_fd(ready[0]);
      net::close_fd(ctl[1]);
      return shard_main(s, shard_addrs[static_cast<std::size_t>(s)], nx, ny,
                        kShardRanks, nops, ready[1], ctl[0]);
    });
    net::close_fd(ready[1]);
    net::close_fd(ctl[0]);
    shards.push_back(ShardProc{pid, ready[0], ctl[1]});
  }
  for (const ShardProc& sp : shards) {
    unsigned char b = 0;
    PFEM_CHECK_MSG(pipe_get(sp.ready_r, b), "shard failed to come up");
  }

  const Workload w = make_workload(nx, ny, /*n_rhs=*/nops, kShardRanks);
  exp::banner(std::cout,
              "Service load bench --socket — " +
                  std::to_string(w.prob.dofs.num_free()) + " equations, " +
                  std::to_string(kShards) + " shards x P=" +
                  std::to_string(kShardRanks) + ", " + std::to_string(nops) +
                  " operators, " + std::to_string(warm_n) + " warm solves");

  SocketRun run;
  int rc = 0;
  {
    svc::RouterConfig rcfg;
    rcfg.listen_addr = router_addr;
    rcfg.shard_addrs = shard_addrs;
    svc::Router router(rcfg);

    const auto make_req = [&](int key, int i) {
      net::proto::SolveRequestMsg req;
      req.operator_key = op_key(key);
      req.seed = seed + static_cast<std::uint64_t>(i);
      req.rhs.push_back(w.rhs[static_cast<std::size_t>(i % nops)]);
      return req;
    };

    // Cold: first touch of every key over the wire — each solve pays
    // the norm-1 scaling and the polynomial build on its shard.
    {
      svc::Client client(router_addr, "bench-cold");
      const WallTimer t;
      for (int i = 0; i < nops; ++i) {
        net::proto::SolveRequestMsg req = make_req(i, i);
        net::proto::SolveResponseMsg resp;
        PFEM_CHECK(client.solve(req, resp));
        PFEM_CHECK(resp.status == net::proto::SolveStatus::Completed);
      }
      run.cold_per_s = nops / t.seconds();
    }

    // Warm: a same-operator stream from closed-loop clients (the
    // acceptance shape).  Affinity routing pins every request to the
    // one shard whose cache holds the built operator, and concurrent
    // requests for the same key coalesce there into fused multi-RHS
    // batches — the same mechanism the in-process warm path measures.
    {
      std::atomic<int> next{0};
      std::atomic<int> hits{0};
      std::atomic<bool> ok{true};
      const WallTimer t;
      std::vector<std::thread> workers;
      for (int c = 0; c < nclients; ++c)
        workers.emplace_back([&, c] {
          svc::Client client(router_addr,
                             "bench-warm" + std::to_string(c));
          for (;;) {
            const int i = next.fetch_add(1);
            if (i >= warm_n) return;
            net::proto::SolveRequestMsg req = make_req(/*key=*/0, i);
            net::proto::SolveResponseMsg resp;
            if (!client.solve(req, resp) ||
                resp.status != net::proto::SolveStatus::Completed) {
              ok.store(false);
              return;
            }
            if (resp.cache_hit) hits.fetch_add(1);
          }
        });
      for (auto& th : workers) th.join();
      PFEM_CHECK_MSG(ok.load(), "a warm solve failed over the wire");
      run.warm_per_s = warm_n / t.seconds();
      run.warm_requests = warm_n;
      run.warm_hits = hits.load();
      run.hit_rate = static_cast<double>(run.warm_hits) / warm_n;
    }
    run.router = router.stats();
    router.stop();
  }

  // Orderly shard teardown: drop the control pipes, reap the children.
  for (const ShardProc& sp : shards) {
    net::close_fd(sp.ctl_w);
    net::close_fd(sp.ready_r);
  }
  for (const ShardProc& sp : shards) {
    const int code = net::wait_exit(sp.pid);
    if (code != 0) {
      std::cerr << "svc_load --socket: shard exited " << code << "\n";
      rc = 2;
    }
  }

  const double speedup = run.warm_per_s / run.cold_per_s;
  exp::Table table({"phase", "solves/s", "cache hits"});
  table.add_row({"cold (first touch, 1 client)",
                 exp::Table::num(run.cold_per_s, 1), "0/" +
                 std::to_string(nops)});
  table.add_row({"warm (" + std::to_string(nclients) + " clients)",
                 exp::Table::num(run.warm_per_s, 1),
                 std::to_string(run.warm_hits) + "/" +
                     std::to_string(run.warm_requests)});
  table.print(std::cout);
  std::cout << "\nrouter: forwarded=" << run.router.forwarded
            << " affinity=" << run.router.affinity
            << " spilled=" << run.router.spilled
            << " shed=" << run.router.rejected_backpressure << "\n";
  std::cout << "warm speedup over cold: " << exp::Table::num(speedup, 2)
            << "x (floor: 2x); warm hit rate: "
            << exp::Table::num(100.0 * run.hit_rate, 1)
            << "% (floor: 90%)\n";

  const bool pass = speedup >= 2.0 && run.hit_rate >= 0.9 && rc == 0;
  const std::string json = exp::str_flag(argc, argv, "--socket-json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    if (!out) {
      std::cerr << "error: cannot write " << json << "\n";
      return 2;
    }
    out << "{\n  \"bench\": \"svc_load_socket\",\n  \"shards\": " << kShards
        << ",\n  \"ranks_per_shard\": " << kShardRanks
        << ",\n  \"equations\": " << w.prob.dofs.num_free()
        << ",\n  \"operators\": " << nops
        << ",\n  \"cold_solves_per_s\": " << run.cold_per_s
        << ",\n  \"warm_solves_per_s\": " << run.warm_per_s
        << ",\n  \"warm_speedup\": " << speedup
        << ",\n  \"warm_requests\": " << run.warm_requests
        << ",\n  \"warm_cache_hits\": " << run.warm_hits
        << ",\n  \"warm_hit_rate\": " << run.hit_rate
        << ",\n  \"router\": {\"forwarded\": " << run.router.forwarded
        << ", \"affinity\": " << run.router.affinity
        << ", \"spilled\": " << run.router.spilled
        << ", \"rejected_backpressure\": "
        << run.router.rejected_backpressure
        << "},\n  \"gates\": {\"warm_speedup_floor\": 2.0, "
           "\"hit_rate_floor\": 0.9, \"pass\": "
        << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "socket shard results written to " << json << "\n";
  }
  if (!pass) {
    std::cerr << "svc_load --socket: FAILED — "
              << (rc != 0 ? "shard exit code; " : "")
              << (speedup < 2.0 ? "warm below 2x cold; " : "")
              << (run.hit_rate < 0.9 ? "hit rate below 90%; " : "") << "\n";
    return rc != 0 ? rc : 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// --replay: the session warm-start / recycling gate.
// ---------------------------------------------------------------------------

/// Per-rank matrix copies with the diagonal scaled by (1 + drift) — a
/// deterministic SPD-preserving drifting operator, same sparsity.
std::shared_ptr<const std::vector<sparse::CsrMatrix>> drifted_matrices(
    const partition::EddPartition& part, real_t drift) {
  auto mats = std::make_shared<std::vector<sparse::CsrMatrix>>();
  mats->reserve(part.subs.size());
  for (const auto& sub : part.subs) {
    sparse::CsrMatrix a = sub.k_loc;
    const auto rp = a.row_ptr();
    const auto ci = a.col_idx();
    auto vals = a.values();
    for (index_t i = 0; i < a.rows(); ++i)
      for (index_t k = rp[static_cast<std::size_t>(i)];
           k < rp[static_cast<std::size_t>(i) + 1]; ++k)
        if (ci[static_cast<std::size_t>(k)] == i)
          vals[static_cast<std::size_t>(k)] *= 1.0 + drift;
    mats->push_back(std::move(a));
  }
  return mats;
}

int run_replay_mode(int argc, char** argv) {
  const bool full = bench::full_run(argc, argv);
  const int nx = bench::int_flag(argc, argv, "--nx=", full ? 24 : 12);
  const int ny = bench::int_flag(argc, argv, "--ny=", full ? 8 : 4);
  const int steps = bench::int_flag(argc, argv, "--steps=", full ? 16 : 10);
  const Workload w = make_workload(nx, ny, /*n_rhs=*/1);
  exp::banner(std::cout,
              "Service session bench --replay — " +
                  std::to_string(w.prob.dofs.num_free()) +
                  " equations, P=" + std::to_string(kRanks) + ", " +
                  std::to_string(steps) + " drift steps");

  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", w.part, w.poly);
  const svc::SessionId session = service.open_session("op");
  PFEM_CHECK(session != svc::kNoSession);

  const auto solve_one = [&](svc::SessionId sid, const Vector& f) {
    svc::SolveRequest req;
    req.operator_key = "op";
    req.session = sid;
    req.rhs.push_back(f);
    svc::Outcome o = service.submit(std::move(req)).outcome.get();
    const auto* c = std::get_if<svc::Completed>(&o);
    PFEM_CHECK_MSG(c != nullptr && c->result.items.front().converged,
                   "replay solve did not complete");
    return c->result.items.front().iterations;
  };

  // Step 0 warms the session (its warm solve is itself cold); the means
  // below therefore cover steps >= 1 only.
  std::vector<int> cold_iters, warm_iters;
  for (int t = 0; t < steps; ++t) {
    if (t > 0)
      service.update_operator(
          "op", drifted_matrices(*w.part, 0.05 * static_cast<real_t>(t) /
                                              static_cast<real_t>(steps)));
    Vector f = w.prob.load;
    const real_t s = static_cast<real_t>(t) / static_cast<real_t>(steps);
    for (std::size_t i = 0; i < f.size(); ++i)
      f[i] *= 1.0 + 0.1 * s * (0.5 + 0.5 * static_cast<real_t>(i % 7) / 7.0);
    cold_iters.push_back(solve_one(svc::kNoSession, f));
    warm_iters.push_back(solve_one(session, f));
  }
  const svc::ServiceStats st = service.stats();
  service.shutdown();

  double cold_sum = 0.0, warm_sum = 0.0;
  for (std::size_t i = 1; i < cold_iters.size(); ++i) {
    cold_sum += cold_iters[i];
    warm_sum += warm_iters[i];
  }
  const double denom = static_cast<double>(steps - 1);
  const double cold_mean = cold_sum / denom;
  const double warm_mean = warm_sum / denom;
  const double reduction = 1.0 - warm_mean / cold_mean;

  exp::Table table({"lane", "mean iters (steps 1+)", "total iters"});
  table.add_row({"cold (session-less)", exp::Table::num(cold_mean, 2),
                 exp::Table::num(cold_sum, 0)});
  table.add_row({"warm (session)", exp::Table::num(warm_mean, 2),
                 exp::Table::num(warm_sum, 0)});
  table.print(std::cout);
  std::cout << "\nwarm iteration reduction: "
            << exp::Table::num(100.0 * reduction, 1)
            << "% (floor: 30%); warm_rhs=" << st.warm_rhs << "\n";

  const bool pass = reduction >= 0.30;
  const std::string json = exp::str_flag(argc, argv, "--replay-json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    if (!out) {
      std::cerr << "error: cannot write " << json << "\n";
      return 2;
    }
    out << "{\n  \"bench\": \"svc_sessions\",\n  \"equations\": "
        << w.prob.dofs.num_free() << ",\n  \"ranks\": " << kRanks
        << ",\n  \"steps\": " << steps
        << ",\n  \"cold_mean_iters\": " << cold_mean
        << ",\n  \"warm_mean_iters\": " << warm_mean
        << ",\n  \"iter_reduction\": " << reduction
        << ",\n  \"warm_rhs\": " << st.warm_rhs
        << ",\n  \"gates\": {\"iter_reduction_floor\": 0.3, \"pass\": "
        << (pass ? "true" : "false") << "}\n}\n";
    std::cout << "session replay results written to " << json << "\n";
  }
  if (!pass) {
    std::cerr << "svc_load --replay: FAILED — warm lane saved "
              << exp::Table::num(100.0 * reduction, 1)
              << "% of iterations, floor is 30%\n";
    return 1;
  }
  return 0;
}

}  // namespace

/// Median of three timing runs: single-core scheduling noise easily
/// swings one run by 2x, the median run far less.
template <class Fn>
double median3(Fn&& fn) {
  double a = fn(), b = fn(), c = fn();
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

int main(int argc, char** argv) {
  if (pfem::exp::has_flag(argc, argv, "--replay") ||
      !pfem::exp::str_flag(argc, argv, "--replay-json", "").empty())
    return run_replay_mode(argc, argv);
  if (pfem::exp::has_flag(argc, argv, "--socket") ||
      !pfem::exp::str_flag(argc, argv, "--socket-json", "").empty())
    return run_socket_mode(argc, argv);

  const bool full = bench::full_run(argc, argv);
  // Default sizing keeps per-rank compute small so per-solve
  // synchronization — the thing the fused batch actually removes — is a
  // visible fraction of the cold baseline.
  const int nx = bench::int_flag(argc, argv, "--nx=", full ? 24 : 12);
  const int ny = bench::int_flag(argc, argv, "--ny=", full ? 8 : 4);
  const int n_rhs = bench::int_flag(argc, argv, "--rhs=", 32);
  const Workload w = make_workload(nx, ny, n_rhs);
  exp::banner(std::cout,
              "Service load bench — " +
                  std::to_string(w.prob.dofs.num_free()) + " equations, P=" +
                  std::to_string(kRanks) + ", " + std::to_string(n_rhs) +
                  " RHS, " + w.poly.name());

  const double cold_s = median3([&] { return run_cold(w); });
  std::uint64_t burst_batches = 0;
  const double burst_s =
      median3([&] { return run_warm_burst(w, &burst_batches, argc, argv); });
  const double closed_s =
      median3([&] { return run_warm_closed(w, /*clients=*/4); });

  const double n = static_cast<double>(n_rhs);
  exp::Table table({"mode", "solves/s", "speedup vs cold"});
  table.add_row({"cold solve_edd (rebuild every call)",
                 exp::Table::num(n / cold_s, 1), exp::Table::num(1.0, 2)});
  table.add_row({"warm service, 4 closed-loop clients",
                 exp::Table::num(n / closed_s, 1),
                 exp::Table::num(cold_s / closed_s, 2)});
  table.add_row({"warm service, burst (" + std::to_string(burst_batches) +
                     " fused batches)",
                 exp::Table::num(n / burst_s, 1),
                 exp::Table::num(cold_s / burst_s, 2)});
  table.print(std::cout);

  const double speedup = cold_s / burst_s;
  std::cout << "\nwarm burst speedup over cold: " << exp::Table::num(speedup, 2)
            << "x (acceptance floor: 2x)\n";
  if (speedup < 2.0) {
    std::cerr << "svc_load: FAILED — warm service below 2x cold throughput\n";
    return 1;
  }
  return 0;
}
