// Solve-service load bench: what the warm path actually buys.
//
// Three ways to push N right-hand sides through the same operator at
// P = 4:
//
//   cold solve_edd   — the pre-service workflow: every solve spawns a
//                      fresh team, redoes the norm-1 scaling and the
//                      polynomial build, solves one RHS;
//   warm closed-loop — a Service with concurrent closed-loop clients:
//                      operator built once, requests coalesce into
//                      fused multi-RHS batches;
//   warm open-loop   — requests arrive in one burst (maximum batching
//                      headroom), futures harvested afterwards.
//
// Prints solves/sec and the speedup over the cold baseline.  The warm
// batched service is expected to clear 2x cold throughput — that ratio
// is what justifies the svc layer (see DESIGN.md).
#include <algorithm>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "svc/service.hpp"

namespace {

using namespace pfem;

constexpr int kRanks = 4;

struct Workload {
  fem::CantileverProblem prob;
  std::shared_ptr<const partition::EddPartition> part;
  core::PolySpec poly;
  std::vector<Vector> rhs;  ///< N distinct load vectors
};

Workload make_workload(int nx, int ny, int n_rhs) {
  fem::CantileverSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  fem::CantileverProblem prob = fem::make_cantilever(spec);
  auto part = std::make_shared<const partition::EddPartition>(
      exp::make_edd(prob, kRanks));
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 7;
  std::vector<Vector> rhs;
  for (int i = 0; i < n_rhs; ++i) {
    Vector f = prob.load;
    for (real_t& v : f) v *= 1.0 + 0.05 * static_cast<real_t>(i);
    rhs.push_back(std::move(f));
  }
  return Workload{std::move(prob), std::move(part), poly, std::move(rhs)};
}

double run_cold(const Workload& w) {
  const WallTimer t;
  for (const Vector& f : w.rhs) {
    const auto res = core::solve_edd(*w.part, f, w.poly);
    PFEM_CHECK(res.converged);
  }
  return t.seconds();
}

double run_warm_burst(const Workload& w, std::uint64_t* batches, int argc,
                      char** argv) {
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  cfg.max_batch_rhs = w.rhs.size();
  // Tracing stays on for the timed runs on purpose: the acceptance
  // ratio below must hold with spans recording.
  cfg.observe = exp::observe_from_flags(argc, argv);
  svc::Service service(cfg);
  service.register_operator("op", w.part, w.poly);
  // Warm the cache so the bench isolates the steady state.
  {
    svc::SolveRequest req;
    req.operator_key = "op";
    req.rhs.push_back(w.rhs.front());
    PFEM_CHECK(svc::ok(service.submit(std::move(req)).outcome.get()));
  }
  const WallTimer t;
  // Hold dispatch while the burst lands so all N RHS coalesce into one
  // fused batch — the open-loop best case.
  service.set_paused(true);
  std::vector<std::future<svc::Outcome>> pending;
  for (const Vector& f : w.rhs) {
    svc::SolveRequest req;
    req.operator_key = "op";
    req.rhs.push_back(f);
    pending.push_back(service.submit(std::move(req)).outcome);
  }
  service.set_paused(false);
  for (auto& fut : pending) PFEM_CHECK(svc::ok(fut.get()));
  const double seconds = t.seconds();
  if (batches != nullptr) *batches = service.stats().batches - 1;
  service.shutdown();
  // Each timing run overwrites the dump; the final file is the keeper.
  if (cfg.observe.trace)
    PFEM_CHECK(exp::dump_trace_if_requested(argc, argv, service.trace()));
  return seconds;
}

double run_warm_closed(const Workload& w, int clients) {
  svc::ServiceConfig cfg;
  cfg.nranks = kRanks;
  svc::Service service(cfg);
  service.register_operator("op", w.part, w.poly);
  {
    svc::SolveRequest req;
    req.operator_key = "op";
    req.rhs.push_back(w.rhs.front());
    PFEM_CHECK(svc::ok(service.submit(std::move(req)).outcome.get()));
  }
  std::atomic<std::size_t> next{0};
  const WallTimer t;
  std::vector<std::thread> workers;
  for (int c = 0; c < clients; ++c)
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= w.rhs.size()) return;
        svc::SolveRequest req;
        req.operator_key = "op";
        req.rhs.push_back(w.rhs[i]);
        PFEM_CHECK(svc::ok(service.submit(std::move(req)).outcome.get()));
      }
    });
  for (auto& th : workers) th.join();
  const double seconds = t.seconds();
  service.shutdown();
  return seconds;
}

}  // namespace

/// Median of three timing runs: single-core scheduling noise easily
/// swings one run by 2x, the median run far less.
template <class Fn>
double median3(Fn&& fn) {
  double a = fn(), b = fn(), c = fn();
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

int main(int argc, char** argv) {
  const bool full = bench::full_run(argc, argv);
  // Default sizing keeps per-rank compute small so per-solve
  // synchronization — the thing the fused batch actually removes — is a
  // visible fraction of the cold baseline.
  const int nx = bench::int_flag(argc, argv, "--nx=", full ? 24 : 12);
  const int ny = bench::int_flag(argc, argv, "--ny=", full ? 8 : 4);
  const int n_rhs = bench::int_flag(argc, argv, "--rhs=", 32);
  const Workload w = make_workload(nx, ny, n_rhs);
  exp::banner(std::cout,
              "Service load bench — " +
                  std::to_string(w.prob.dofs.num_free()) + " equations, P=" +
                  std::to_string(kRanks) + ", " + std::to_string(n_rhs) +
                  " RHS, " + w.poly.name());

  const double cold_s = median3([&] { return run_cold(w); });
  std::uint64_t burst_batches = 0;
  const double burst_s =
      median3([&] { return run_warm_burst(w, &burst_batches, argc, argv); });
  const double closed_s =
      median3([&] { return run_warm_closed(w, /*clients=*/4); });

  const double n = static_cast<double>(n_rhs);
  exp::Table table({"mode", "solves/s", "speedup vs cold"});
  table.add_row({"cold solve_edd (rebuild every call)",
                 exp::Table::num(n / cold_s, 1), exp::Table::num(1.0, 2)});
  table.add_row({"warm service, 4 closed-loop clients",
                 exp::Table::num(n / closed_s, 1),
                 exp::Table::num(cold_s / closed_s, 2)});
  table.add_row({"warm service, burst (" + std::to_string(burst_batches) +
                     " fused batches)",
                 exp::Table::num(n / burst_s, 1),
                 exp::Table::num(cold_s / burst_s, 2)});
  table.print(std::cout);

  const double speedup = cold_s / burst_s;
  std::cout << "\nwarm burst speedup over cold: " << exp::Table::num(speedup, 2)
            << "x (acceptance floor: 2x)\n";
  if (speedup < 2.0) {
    std::cerr << "svc_load: FAILED — warm service below 2x cold throughput\n";
    return 1;
  }
  return 0;
}
