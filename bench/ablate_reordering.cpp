// Ablation: matrix reordering (RCM).  The paper's claim (ii) is that the
// EDD formulation avoids "reordering of a matrix to gain parallel
// performance"; this bench measures what reordering is worth for the
// methods that do depend on matrix structure: bandwidth and ILU(0)
// quality under natural / shuffled / RCM orderings — and shows the
// polynomial preconditioner is ordering-invariant.
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "sparse/rcm.hpp"

namespace {

using namespace pfem;

struct Row {
  std::string name;
  index_t bandwidth;
  index_t ilu_iters;
  index_t gls_iters;
};

Row run(const std::string& name, const sparse::CsrMatrix& k,
        const Vector& f) {
  const core::ScaledSystem s = core::scale_system(k, f);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  Row row;
  row.name = name;
  row.bandwidth = sparse::bandwidth(k);
  {
    Vector x(s.b.size(), 0.0);
    core::Ilu0Precond p(s.a);
    row.ilu_iters = core::fgmres(s.a, s.b, x, p, opts).iterations;
  }
  {
    Vector x(s.b.size(), 0.0);
    core::GlsPrecond p(
        core::LinearOp::from_csr(s.a),
        core::GlsPolynomial(core::default_theta_after_scaling(), 7));
    row.gls_iters = core::fgmres(s.a, s.b, x, p, opts).iterations;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 60 : 30;
  spec.ny = full ? 30 : 15;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const index_t n = prob.stiffness.rows();

  exp::banner(std::cout, "Ablation — RCM reordering (" +
                             std::to_string(n) + " equations)");

  // Natural FE ordering, a scrambling permutation, and RCM of the
  // scramble (recovering structure from nothing).
  IndexVector scramble(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    scramble[static_cast<std::size_t>(i)] =
        static_cast<index_t>((static_cast<long long>(i) * 10007) % n);
  const sparse::CsrMatrix shuffled =
      sparse::permute_symmetric(prob.stiffness, scramble);
  Vector f_shuffled(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k)
    f_shuffled[static_cast<std::size_t>(k)] = prob.load[
        static_cast<std::size_t>(scramble[static_cast<std::size_t>(k)])];

  const IndexVector rcm = sparse::rcm_ordering(shuffled);
  const sparse::CsrMatrix restored =
      sparse::permute_symmetric(shuffled, rcm);
  Vector f_restored(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k)
    f_restored[static_cast<std::size_t>(k)] = f_shuffled[
        static_cast<std::size_t>(rcm[static_cast<std::size_t>(k)])];

  exp::Table table({"ordering", "bandwidth", "ILU(0) iters", "GLS(7) iters"});
  for (const Row& row : {run("natural (FE)", prob.stiffness, prob.load),
                         run("scrambled", shuffled, f_shuffled),
                         run("RCM of scrambled", restored, f_restored)}) {
    table.add_row({row.name, exp::Table::integer(row.bandwidth),
                   exp::Table::integer(row.ilu_iters),
                   exp::Table::integer(row.gls_iters)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: bandwidth collapses under RCM; ILU(0) quality "
               "tracks the ordering, while the polynomial\npreconditioner "
               "is ordering-invariant (the paper's point: EDD + polynomial "
               "needs no reordering at all).\n";
  return 0;
}
