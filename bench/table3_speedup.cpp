// Table 3: iterations, CPU time and speedup of EDD-FGMRES-GLS(m) for the
// static cantilever on the SGI Origin, m = 7..10, P = 1, 2, 4, 8.
//
// CPU times are modeled (α-β-γ cost model on the measured per-rank
// trace); absolute values differ from the paper's 1998-era runs but the
// shape reproduces: iterations nearly constant in P, speedup improves
// with mesh size, and GLS(10) converges in fewer iterations than GLS(7)
// yet can cost *more* time (three extra mat-vecs per iteration) — the
// paper's convergence/CPU-time trade-off.
#include <iostream>

#include "bench_common.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  const par::MachineModel origin = par::MachineModel::sgi_origin();
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::banner(std::cout,
              "Table 3 — FGMRES-GLS(m), static problem, modeled on " +
                  origin.name);

  // The paper sweeps Mesh1..Mesh7; the default run stops at Mesh4.
  const int last_mesh = full ? 7 : 4;
  exp::Table table({"Mesh", "P", "m=7 iters", "m=7 T(s)", "m=7 S",
                    "m=8 iters", "m=8 T(s)", "m=8 S", "m=9 iters",
                    "m=9 T(s)", "m=9 S", "m=10 iters", "m=10 T(s)",
                    "m=10 S"});

  for (int mesh_no = 1; mesh_no <= last_mesh; ++mesh_no) {
    const fem::CantileverProblem prob = fem::make_table2_cantilever(mesh_no);
    // Gather rows per degree, then emit one table row per P.
    std::vector<std::vector<exp::SpeedupRow>> per_degree;
    for (int m : {7, 8, 9, 10}) {
      core::PolySpec poly;
      poly.degree = m;
      per_degree.push_back(
          exp::edd_speedup_study(prob, poly, {1, 2, 4, 8}, origin, opts));
    }
    for (std::size_t k = 0; k < per_degree[0].size(); ++k) {
      std::vector<std::string> row{
          k == 0 ? "Mesh" + std::to_string(mesh_no) : "",
          exp::Table::integer(per_degree[0][k].nprocs)};
      for (const auto& rows : per_degree) {
        row.push_back(exp::Table::integer(rows[k].iterations));
        row.push_back(exp::Table::num(rows[k].modeled_seconds, 4));
        row.push_back(exp::Table::num(rows[k].speedup, 2));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);
  if (!full) std::cout << "(pass --full for Mesh1..Mesh7 as in the paper)\n";
  return 0;
}
