// Figs. 15/16/17(a,b): parallel speedup vs P for increasing polynomial
// degree — EDD-FGMRES-GLS(m) speedup *improves* with m (mat-vec work
// dominates and amortizes the per-iteration fixed communication), while
// RDD-FGMRES-GLS(m) is largely insensitive to m.
//
// Machine times come from the α-β-γ cost model (SGI Origin preset)
// evaluated on the exact per-rank communication/computation trace; see
// DESIGN.md §2 for the substitution rationale.
#include <iostream>

#include "bench_common.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 60 : 40;
  spec.ny = full ? 60 : 40;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const par::MachineModel origin = par::MachineModel::sgi_origin();
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::banner(std::cout,
              "Fig. 15/17(a) — EDD-FGMRES-GLS(m) modeled speedup on " +
                  origin.name + ", mesh " + std::to_string(spec.nx) + "x" +
                  std::to_string(spec.ny));
  exp::Table edd({"m", "P=1 iters", "S(P=2)", "S(P=4)", "S(P=8)"});
  for (int m : {3, 7, 10}) {
    core::PolySpec poly;
    poly.degree = m;
    const auto rows =
        exp::edd_speedup_study(prob, poly, {1, 2, 4, 8}, origin, opts);
    edd.add_row({exp::Table::integer(m),
                 exp::Table::integer(rows[0].iterations),
                 exp::Table::num(rows[1].speedup, 2),
                 exp::Table::num(rows[2].speedup, 2),
                 exp::Table::num(rows[3].speedup, 2)});
  }
  edd.print(std::cout);

  exp::banner(std::cout, "Fig. 17(b) — RDD-FGMRES-GLS(m) modeled speedup");
  exp::Table rdd({"m", "P=1 iters", "S(P=2)", "S(P=4)", "S(P=8)"});
  for (int m : {3, 7, 10}) {
    core::PolySpec poly;
    poly.degree = m;
    const auto rows =
        exp::rdd_speedup_study(prob, poly, {1, 2, 4, 8}, origin, opts);
    rdd.add_row({exp::Table::integer(m),
                 exp::Table::integer(rows[0].iterations),
                 exp::Table::num(rows[1].speedup, 2),
                 exp::Table::num(rows[2].speedup, 2),
                 exp::Table::num(rows[3].speedup, 2)});
  }
  rdd.print(std::cout);
  std::cout << "\nexpected shape: EDD speedup grows with m; RDD speedup "
               "nearly flat in m;\nEDD >= RDD at equal m.\n";
  if (!full) std::cout << "(pass --full for the 60x60 mesh)\n";
  return 0;
}
