// Fig. 17(c,d): speedup vs P as the problem size grows — larger meshes
// approach linear speedup because the subdomain interface (communication)
// shrinks relative to subdomain volume (computation).
#include <iostream>

#include "bench_common.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  const par::MachineModel origin = par::MachineModel::sgi_origin();
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  core::PolySpec poly;
  poly.degree = 7;

  exp::banner(std::cout,
              "Fig. 17(c,d) — EDD-FGMRES-GLS(7) modeled speedup vs problem "
              "size (" + origin.name + ")");
  exp::Table table({"mesh", "nEqn", "iters(P=1)", "S(P=2)", "S(P=4)",
                    "S(P=8)"});
  const std::vector<int> sizes =
      full ? std::vector<int>{20, 30, 40, 50, 60, 80}
           : std::vector<int>{16, 24, 32, 48};
  for (int n : sizes) {
    fem::CantileverSpec spec;
    spec.nx = n;
    spec.ny = n;
    const fem::CantileverProblem prob = fem::make_cantilever(spec);
    const auto rows =
        exp::edd_speedup_study(prob, poly, {1, 2, 4, 8}, origin, opts);
    table.add_row({std::to_string(n) + "x" + std::to_string(n),
                   exp::Table::integer(prob.dofs.num_free()),
                   exp::Table::integer(rows[0].iterations),
                   exp::Table::num(rows[1].speedup, 2),
                   exp::Table::num(rows[2].speedup, 2),
                   exp::Table::num(rows[3].speedup, 2)});
  }
  table.print(std::cout);
  std::cout << "\nexpected shape: each speedup column increases down the "
               "table (toward linear).\n";
  if (!full) std::cout << "(pass --full for meshes up to 80x80)\n";
  return 0;
}
