// Extension: two-level subdomain deflation on the Table-2 weak-scaling
// sweep.  The single-level EDD-FGMRES-GLS(7) iteration count grows ~6x
// from Mesh4 @ P = 2 to Mesh10 @ P = 16 (the classic one-level DD
// pathology: no global information transfer).  With the coarse space
// (per-subdomain {1, x, y} x component, see DESIGN.md §11) the count
// must stay within 1.3x — that bound is this bench's acceptance gate:
// it exits nonzero when deflated growth exceeds it, and
// --deflation-json=PATH records the sweep for run_paper_full.sh.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"

namespace {

constexpr double kMaxGrowth = 1.3;

struct Point {
  int mesh_no;
  int nprocs;
  pfem::index_t n_eqn = 0;
  pfem::index_t ncoarse = 0;
  pfem::index_t iters_off = 0;
  pfem::index_t iters_defl = 0;
  std::uint64_t coarse_solves = 0;   // rank 0, deflated run
  std::uint64_t reductions_defl = 0; // rank 0, deflated run
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pfem;
  bench::full_run(argc, argv);  // accepted for uniformity; sweep is fixed
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--deflation-json=", 0) == 0) json_path = a.substr(17);
  }

  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = 7;

  exp::banner(std::cout,
              "Extension — two-level deflation, Table-2 weak scaling, "
              "EDD-FGMRES-GLS(7)");

  // ~Constant dofs per rank across the sweep (the paper's Table-2 family
  // only reaches P = 8; Mesh10 at P = 16 extends the same trend).
  std::vector<Point> pts = {{4, 2}, {6, 4}, {9, 8}, {10, 16}};
  bool all_converged = true;
  for (Point& p : pts) {
    const fem::CantileverProblem prob = fem::make_table2_cantilever(p.mesh_no);
    const partition::EddPartition part = exp::make_edd(prob, p.nprocs);
    p.n_eqn = prob.dofs.num_free();

    core::SolveOptions opts;
    opts.tol = 1e-6;
    opts.max_iters = 60000;
    const core::DistSolve off =
        core::solve_edd(part, prob.load, poly, opts);

    opts.deflation.enabled = true;
    opts.deflation.dof_coords = fem::free_dof_coords(prob.mesh, prob.dofs);
    opts.deflation.coord_dim = static_cast<int>(prob.mesh.dim());
    const core::DistSolve defl =
        core::solve_edd(part, prob.load, poly, opts);

    p.ok = off.converged && defl.converged;
    all_converged = all_converged && p.ok;
    p.iters_off = off.iterations;
    p.iters_defl = defl.iterations;
    if (!defl.rank_counters.empty()) {
      p.coarse_solves = defl.rank_counters[0].coarse_solves;
      p.reductions_defl = defl.rank_counters[0].global_reductions;
    }
    // nbasis = 3 ({1, x, y}) x 2 components per subdomain at q = 6.
    p.ncoarse = static_cast<index_t>(p.nprocs) * 6;
  }

  exp::Table table({"Mesh", "P", "nEqn", "iters off", "iters defl",
                    "dim(E)", "coarse solves", "reductions"});
  for (const Point& p : pts)
    table.add_row({"Mesh" + std::to_string(p.mesh_no),
                   exp::Table::integer(p.nprocs),
                   exp::Table::integer(p.n_eqn),
                   exp::Table::integer(p.iters_off),
                   exp::Table::integer(p.iters_defl),
                   exp::Table::integer(p.ncoarse),
                   exp::Table::integer(static_cast<index_t>(p.coarse_solves)),
                   exp::Table::integer(
                       static_cast<index_t>(p.reductions_defl))});
  table.print(std::cout);

  const double growth_off = static_cast<double>(pts.back().iters_off) /
                            static_cast<double>(pts.front().iters_off);
  const double growth = static_cast<double>(pts.back().iters_defl) /
                        static_cast<double>(pts.front().iters_defl);
  const bool pass = all_converged && growth <= kMaxGrowth;
  std::printf(
      "\nP=2 -> P=16 iteration growth: single-level %.2fx, deflated %.2fx "
      "(gate: <= %.1fx) — %s\n",
      growth_off, growth, kMaxGrowth, pass ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << "{\n  \"bench\": \"deflation_scaling\",\n"
        << "  \"preconditioner\": \"gls7\",\n  \"points\": [\n";
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const Point& p = pts[i];
      out << "    {\"mesh\": \"Mesh" << p.mesh_no << "\", \"nprocs\": "
          << p.nprocs << ", \"n_eqn\": " << p.n_eqn
          << ", \"iters_off\": " << p.iters_off
          << ", \"iters_deflated\": " << p.iters_defl
          << ", \"coarse_dim\": " << p.ncoarse
          << ", \"coarse_solves\": " << p.coarse_solves
          << ", \"global_reductions\": " << p.reductions_defl
          << ", \"converged\": " << (p.ok ? "true" : "false") << "}"
          << (i + 1 < pts.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"growth_off\": " << growth_off
        << ",\n  \"growth_deflated\": " << growth
        << ",\n  \"max_growth\": " << kMaxGrowth
        << ",\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
    std::printf("deflation sweep written to %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}
