// Ablation: spectrum estimate quality (extends Fig. 10) — the default
// Θ = (ε, 1), a Lanczos-adaptive Θ, and Chebyshev on the adaptive
// interval, at several polynomial degrees.
#include <iostream>

#include "bench_common.hpp"
#include "core/diag_scaling.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"
#include "sparse/lanczos.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 50 : 28;
  spec.ny = spec.nx;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  const par::MachineModel origin = par::MachineModel::sgi_origin();

  const core::ScaledSystem s =
      core::scale_system(prob.stiffness, prob.load);
  const sparse::Interval iv = sparse::estimate_spectrum(s.a, 30);

  exp::banner(std::cout, "Ablation — adaptive Theta via Lanczos (" +
                             std::to_string(prob.dofs.num_free()) +
                             " equations, P = 4); estimate [" +
                             exp::Table::sci(iv.lo, 2) + ", " +
                             exp::Table::num(iv.hi, 3) + "]");
  exp::Table table({"m", "GLS (eps,1)", "GLS adaptive", "Cheb adaptive",
                    "T(Origin): default", "adaptive", "cheb"});
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  for (int m : {3, 5, 7, 10}) {
    core::PolySpec fallback;
    fallback.degree = m;
    core::PolySpec adaptive;
    adaptive.degree = m;
    adaptive.theta = {{iv.lo, iv.hi}};
    core::PolySpec cheb;
    cheb.kind = core::PolyKind::Chebyshev;
    cheb.degree = m;
    cheb.theta = {{iv.lo, iv.hi}};

    const auto r0 = core::solve_edd(part, prob.load, fallback, opts);
    const auto r1 = core::solve_edd(part, prob.load, adaptive, opts);
    const auto r2 = core::solve_edd(part, prob.load, cheb, opts);
    table.add_row(
        {exp::Table::integer(m), exp::Table::integer(r0.iterations),
         exp::Table::integer(r1.iterations),
         exp::Table::integer(r2.iterations),
         exp::Table::num(par::model_time(origin, r0.rank_counters).total(),
                         4),
         exp::Table::num(par::model_time(origin, r1.rank_counters).total(),
                         4),
         exp::Table::num(par::model_time(origin, r2.rank_counters).total(),
                         4)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: the adaptive Theta never loses to (eps,1) and "
               "wins at low degree; Chebyshev is competitive only with a "
               "tight interval.\n";
  return 0;
}
