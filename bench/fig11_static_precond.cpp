// Fig. 11: ILU(0) vs polynomial preconditioners for the *static*
// cantilever (Mesh1 and Mesh2), single processor.  Paper's finding:
//   GLS(7)  >  ILU(0)  >  Neumann(20)     ("converges faster than")
// with all three far ahead of the unpreconditioned solver.
#include <iostream>

#include "bench_common.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"

namespace {

using namespace pfem;

void run_mesh(int mesh_no) {
  const fem::CantileverProblem prob = fem::make_table2_cantilever(mesh_no);
  exp::banner(std::cout, "Fig. 11 — static, Mesh" + std::to_string(mesh_no) +
                             " (" + std::to_string(prob.dofs.num_free()) +
                             " equations)");
  const core::ScaledSystem s = core::scale_system(prob.stiffness, prob.load);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::Table table({"preconditioner", "iterations", "mat-vecs/apply",
                    "final relres"});
  auto run = [&](core::Preconditioner& p) {
    Vector x(s.b.size(), 0.0);
    const core::SolveReport res = core::fgmres(s.a, s.b, x, p, opts);
    table.add_row({p.name(), exp::Table::integer(res.iterations),
                   exp::Table::integer(p.matvecs_per_apply()),
                   exp::Table::sci(res.final_relres, 2)});
    bench::print_history(p.name(), res.history);
  };

  core::IdentityPrecond none;
  run(none);
  core::Ilu0Precond ilu(s.a);
  run(ilu);
  core::IlukPrecond ilu1(s.a, 1);
  run(ilu1);
  core::GlsPrecond gls(core::LinearOp::from_csr(s.a),
                       core::GlsPolynomial(core::default_theta_after_scaling(),
                                           7));
  run(gls);
  core::NeumannPrecond neumann(core::LinearOp::from_csr(s.a),
                               core::NeumannPolynomial(20, 1.0));
  run(neumann);
  table.print(std::cout);
}

}  // namespace

int main() {
  run_mesh(1);
  run_mesh(2);
  std::cout << "\npaper's ordering (iterations): GLS(7) < ILU(0) < "
               "Neumann(20), all << unpreconditioned\n";
  return 0;
}
