// Ablation: partitioning method — coordinate strips vs recursive
// coordinate bisection vs greedy graph growing.  Compares interface
// size, element-graph edge cut, iteration count and modeled time of the
// EDD solve they induce.
#include <iostream>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"
#include "partition/geom.hpp"
#include "partition/graph.hpp"

namespace {

using namespace pfem;

IndexVector make_elem_part(const fem::CantileverProblem& prob, int nparts,
                           const std::string& method) {
  std::vector<partition::Point> centroids;
  for (index_t e = 0; e < prob.mesh.num_elems(); ++e)
    centroids.push_back(prob.mesh.elem_centroid(e));
  if (method == "strips")
    return partition::partition_strips(centroids, nparts);
  if (method == "rcb") return partition::partition_rcb(centroids, nparts);
  const auto adj = partition::element_adjacency(prob.mesh, 2);
  return partition::partition_greedy(adj, nparts);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 60 : 32;
  spec.ny = spec.nx;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const par::MachineModel origin = par::MachineModel::sgi_origin();
  const int nparts = 8;
  const auto adj = partition::element_adjacency(prob.mesh, 2);

  exp::banner(std::cout, "Ablation — partition method (EDD-FGMRES-GLS(7), "
                         "P = 8, " + std::to_string(prob.dofs.num_free()) +
                         " equations)");
  exp::Table table({"method", "edge cut", "iface dofs", "max nbrs", "iters",
                    "T(Origin) s"});
  for (const std::string method : {"strips", "rcb", "greedy"}) {
    const IndexVector elem_part = make_elem_part(prob, nparts, method);
    const partition::EddPartition part = partition::build_edd_partition(
        prob.mesh, prob.dofs, prob.material, fem::Operator::Stiffness,
        elem_part, nparts);
    core::PolySpec poly;
    poly.degree = 7;
    core::SolveOptions opts;
    opts.tol = 1e-6;
    opts.max_iters = 60000;
    const auto res = core::solve_edd(part, prob.load, poly, opts);
    table.add_row(
        {method,
         exp::Table::integer(partition::edge_cut(adj, elem_part)),
         exp::Table::integer(part.total_interface_dofs()),
         exp::Table::integer(part.max_neighbors()),
         exp::Table::integer(res.iterations),
         exp::Table::num(par::model_time(origin, res.rank_counters).total(),
                         4)});
  }
  table.print(std::cout);
  std::cout << "\nexpected: RCB cuts least on a square domain; strips "
               "trade a larger cut for fewer neighbors (2 vs up to 5),\n"
               "so message *count* and *volume* pull modeled time in "
               "opposite directions.\n";
  return 0;
}
