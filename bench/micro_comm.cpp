// Micro-benchmark: the rebuilt pfem::par runtime (per-pair SPSC channels,
// spin-then-park wakeup, tournament-tree allreduce) against a faithful
// in-file copy of the original mailbox runtime (per-rank mutex + deque,
// 50 ms polling wait, per-message heap allocation, two-barrier linear-fold
// allreduce).  Three probes:
//
//   ping-pong   P=2, one 8-byte message bounced back and forth; reports
//               the single-message round-trip latency.
//   exchange    P=8 ring, every rank sends to and receives from both ring
//               neighbours each iteration (the EDD interface-exchange
//               pattern); reports whole-team exchange throughput.
//   allreduce   P=8, 64-double vector sum; reports per-op latency.
//
// A second mode (--net) runs the same three probes over the pfem::net
// transport ladder instead — in-process ring vs shared-memory ring vs
// socket loopback (every frame serialized through a real socketpair) —
// so the cost of leaving the address space is a measured number, not a
// guess.  --net-json=FILE records the sweep for run_paper_full.sh,
// which folds it into BENCH_net.json.
//
// Usage: micro_comm [--full] [--counters-json=FILE]
//        micro_comm --net [--full] [--net-json=FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "exp/table.hpp"
#include "net/shm.hpp"
#include "net/socket_transport.hpp"
#include "net/transport.hpp"
#include "par/comm.hpp"
#include "par/counters.hpp"

namespace pfem::bench {
namespace {

// ---------------------------------------------------------------------------
// Legacy runtime, reproduced verbatim-in-spirit from the pre-rewrite
// src/par/comm.cpp: one mailbox per rank, every send allocates a fresh
// Vector, take() scans the deque under the mailbox mutex and falls back to
// a 50 ms timed wait, and allreduce is deposit + barrier + every-rank
// linear fold + barrier.
// ---------------------------------------------------------------------------
namespace legacy {

struct Message {
  int src;
  int tag;
  Vector payload;
};

struct Mailbox {
  std::mutex m;
  std::condition_variable cv;
  std::deque<Message> msgs;
};

class Team {
 public:
  explicit Team(int size) : size_(size), boxes_(size), slots_(size) {}

  [[nodiscard]] int size() const noexcept { return size_; }

  void deliver(int dest, Message msg) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
    {
      std::lock_guard<std::mutex> lk(box.m);
      box.msgs.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  Vector take(int dest, int src, int tag) {
    Mailbox& box = boxes_[static_cast<std::size_t>(dest)];
    std::unique_lock<std::mutex> lk(box.m);
    for (;;) {
      const auto it = std::find_if(
          box.msgs.begin(), box.msgs.end(),
          [&](const Message& m) { return m.src == src && m.tag == tag; });
      if (it != box.msgs.end()) {
        Vector payload = std::move(it->payload);
        box.msgs.erase(it);
        return payload;
      }
      box.cv.wait_for(lk, std::chrono::milliseconds(50));
    }
  }

  void barrier() {
    std::unique_lock<std::mutex> lk(barrier_m_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == size_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lk, [&] { return barrier_gen_ != gen; });
  }

  void allreduce(int rank, std::span<real_t> inout) {
    slots_[static_cast<std::size_t>(rank)].assign(inout.begin(), inout.end());
    barrier();
    Vector acc(slots_[0]);
    for (int r = 1; r < size_; ++r) {
      const Vector& s = slots_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += s[i];
    }
    std::copy(acc.begin(), acc.end(), inout.begin());
    barrier();  // no rank may overwrite its slot before all have folded
  }

 private:
  int size_;
  std::vector<Mailbox> boxes_;
  std::vector<Vector> slots_;

  std::mutex barrier_m_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
};

class Comm {
 public:
  Comm(int rank, Team* team) : rank_(rank), team_(team) {}
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return team_->size(); }

  void send(int dest, int tag, std::span<const real_t> data) {
    team_->deliver(dest, Message{rank_, tag, Vector(data.begin(), data.end())});
  }
  void recv(int src, int tag, Vector& out) {
    out = team_->take(rank_, src, tag);
  }
  void barrier() { team_->barrier(); }
  void allreduce_sum(std::span<real_t> inout) {
    team_->allreduce(rank_, inout);
  }

 private:
  int rank_;
  Team* team_;
};

void run_spmd(int nranks, const std::function<void(Comm&)>& fn) {
  Team team(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    threads.emplace_back([&, r] {
      Comm comm(r, &team);
      fn(comm);
    });
  for (std::thread& t : threads) t.join();
}

}  // namespace legacy

// ---------------------------------------------------------------------------
// Probes.  Each is written twice against the two (intentionally identical)
// comm interfaces; rank 0 times the steady-state loop between barriers so
// thread spawn/join stays out of the measurement.
// ---------------------------------------------------------------------------
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

template <class CommT>
void pingpong_body(CommT& c, int rounds, double& out_seconds) {
  const int other = 1 - c.rank();
  Vector msg{1.0}, in;
  c.barrier();
  const auto t0 = Clock::now();
  for (int i = 0; i < rounds; ++i) {
    if (c.rank() == 0) {
      c.send(other, 0, msg);
      c.recv(other, 0, in);
    } else {
      c.recv(other, 0, in);
      c.send(other, 0, in);
    }
  }
  if (c.rank() == 0) out_seconds = seconds_between(t0, Clock::now());
}

template <class CommT>
void exchange_body(CommT& c, int iters, std::size_t msg_len,
                   double& out_seconds) {
  const int p = c.size();
  const int left = (c.rank() + p - 1) % p;
  const int right = (c.rank() + 1) % p;
  Vector out(msg_len, static_cast<real_t>(c.rank())), in;
  c.barrier();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    c.send(left, 1, out);
    c.send(right, 2, out);
    c.recv(left, 2, in);
    c.recv(right, 1, in);
  }
  c.barrier();
  if (c.rank() == 0) out_seconds = seconds_between(t0, Clock::now());
}

template <class CommT>
void allreduce_body(CommT& c, int reps, std::size_t len, double& out_seconds) {
  Vector v(len, 1.0);
  c.barrier();
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) c.allreduce_sum(v);
  if (c.rank() == 0) out_seconds = seconds_between(t0, Clock::now());
}

/// Best-of-`reps` wall time for `run()` (robust against scheduler noise).
double best_of(int reps, const std::function<double()>& run) {
  double best = run();
  for (int i = 1; i < reps; ++i) best = std::min(best, run());
  return best;
}

// ---------------------------------------------------------------------------
// Transport-comparison mode (--net): the same probes against the
// pfem::net loopback ladder.  Every rung presents identical Team
// semantics; what changes is purely how bytes move, so the deltas below
// are the transport tax and nothing else.
// ---------------------------------------------------------------------------
using TransportFactory =
    std::function<std::shared_ptr<net::Transport>(int nranks)>;

struct NetProbeResult {
  std::string name;
  double ping_us = 0.0;    ///< P=2 round-trip latency
  double exch_per_s = 0.0; ///< team ring exchanges per second
  double red_us = 0.0;     ///< per-allreduce latency
};

/// One timed Team job over a fresh transport (construction and thread
/// spawn stay outside the probe's own barrier-to-barrier window).
template <class Body>
double timed_team_job(const TransportFactory& make, int nranks, Body&& body) {
  par::TeamConfig cfg;
  cfg.nranks = nranks;
  cfg.transport = make(nranks);
  par::Team team(cfg);
  double s = 0.0;
  team.run([&](par::Comm& c) { body(c, s); });
  return s;
}

NetProbeResult net_probe(const std::string& name, const TransportFactory& make,
                         int ping, int exch, std::size_t exch_len, int red,
                         std::size_t red_len, int team, int best) {
  NetProbeResult r;
  r.name = name;
  const double ping_s = best_of(best, [&] {
    return timed_team_job(make, 2, [&](par::Comm& c, double& s) {
      pingpong_body(c, ping, s);
    });
  });
  const double exch_s = best_of(best, [&] {
    return timed_team_job(make, team, [&](par::Comm& c, double& s) {
      exchange_body(c, exch, exch_len, s);
    });
  });
  const double red_s = best_of(best, [&] {
    return timed_team_job(make, team, [&](par::Comm& c, double& s) {
      allreduce_body(c, red, red_len, s);
    });
  });
  r.ping_us = 1e6 * ping_s / ping;
  r.exch_per_s = exch / exch_s;
  r.red_us = 1e6 * red_s / red;
  return r;
}

int run_net_mode(int argc, char** argv) {
  const bool full = full_run(argc, argv);
  // The socket rung funnels every frame through one socketpair reader,
  // so the net sweep uses P=4 and smaller counts than the legacy
  // comparison — latency ratios, not saturation, are the product here.
  const int kPing = full ? 5000 : 1000;
  const int kExch = full ? 1000 : 200;
  const std::size_t kExchLen = 1024;  // 8 KiB messages
  const int kRed = full ? 1000 : 200;
  const std::size_t kRedLen = 64;
  const int kTeam = 4;
  const int kBestOf = 3;

  const std::vector<std::pair<std::string, TransportFactory>> rungs = {
      {"inproc", [](int n) { return net::make_inproc_transport(n); }},
      {"shm", [](int n) { return net::make_shm_loopback_transport(n); }},
      {"socket", [](int n) { return net::make_socket_loopback_transport(n); }},
  };
  std::vector<NetProbeResult> results;
  for (const auto& [name, make] : rungs)
    results.push_back(net_probe(name, make, kPing, kExch, kExchLen, kRed,
                                kRedLen, kTeam, kBestOf));

  std::cout << "micro_comm --net: transport ladder, P=" << kTeam
            << (full ? " (--full)" : "") << "\n";
  exp::Table t({"transport", "ping-pong P=2 (us/rt)",
                "ring exchange (exch/s)", "allreduce 64 (us/op)"});
  for (const NetProbeResult& r : results)
    t.add_row({r.name, exp::Table::num(r.ping_us, 3),
               exp::Table::num(r.exch_per_s, 0), exp::Table::num(r.red_us, 3)});
  t.print(std::cout);

  const std::string json = exp::str_flag(argc, argv, "--net-json", "");
  if (!json.empty()) {
    std::ofstream out(json);
    if (!out) {
      std::cerr << "error: cannot write " << json << "\n";
      return 1;
    }
    out << "{\n  \"bench\": \"micro_comm_net\",\n  \"team\": " << kTeam
        << ",\n  \"exchange_len_doubles\": " << kExchLen
        << ",\n  \"allreduce_len_doubles\": " << kRedLen
        << ",\n  \"transports\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const NetProbeResult& r = results[i];
      out << "    {\"name\": \"" << r.name << "\", \"pingpong_us\": "
          << r.ping_us << ", \"exchange_per_s\": " << r.exch_per_s
          << ", \"allreduce_us\": " << r.red_us << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "transport comparison written to " << json << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace pfem::bench

int main(int argc, char** argv) {
  using namespace pfem;
  using namespace pfem::bench;

  if (exp::has_flag(argc, argv, "--net") ||
      !exp::str_flag(argc, argv, "--net-json", "").empty())
    return run_net_mode(argc, argv);

  const bool full = full_run(argc, argv);
  const int kPing = full ? 20000 : 2000;      // round trips, P=2
  const int kExch = full ? 5000 : 500;        // ring exchanges, P=8
  const std::size_t kExchLen = 1024;          // doubles per message (8 KiB)
  const int kRed = full ? 5000 : 500;         // allreduce ops, P=8
  const std::size_t kRedLen = 64;             // doubles per allreduce
  const int kTeam = 8;
  const int kBestOf = 3;

  std::vector<par::PerfCounters> last_counters;

  const double ping_old = best_of(kBestOf, [&] {
    double s = 0.0;
    legacy::run_spmd(2, [&](legacy::Comm& c) { pingpong_body(c, kPing, s); });
    return s;
  });
  const double ping_new = best_of(kBestOf, [&] {
    double s = 0.0;
    par::run_spmd(2, [&](par::Comm& c) { pingpong_body(c, kPing, s); });
    return s;
  });

  const double exch_old = best_of(kBestOf, [&] {
    double s = 0.0;
    legacy::run_spmd(kTeam, [&](legacy::Comm& c) {
      exchange_body(c, kExch, kExchLen, s);
    });
    return s;
  });
  const double exch_new = best_of(kBestOf, [&] {
    double s = 0.0;
    last_counters = par::run_spmd(kTeam, [&](par::Comm& c) {
      exchange_body(c, kExch, kExchLen, s);
    });
    return s;
  });

  const double red_old = best_of(kBestOf, [&] {
    double s = 0.0;
    legacy::run_spmd(kTeam, [&](legacy::Comm& c) {
      allreduce_body(c, kRed, kRedLen, s);
    });
    return s;
  });
  const double red_new = best_of(kBestOf, [&] {
    double s = 0.0;
    par::run_spmd(kTeam, [&](par::Comm& c) {
      allreduce_body(c, kRed, kRedLen, s);
    });
    return s;
  });

  const double ping_us_old = 1e6 * ping_old / kPing;
  const double ping_us_new = 1e6 * ping_new / kPing;
  const double exch_rate_old = kExch / exch_old;  // team exchanges per second
  const double exch_rate_new = kExch / exch_new;
  const double red_us_old = 1e6 * red_old / kRed;
  const double red_us_new = 1e6 * red_new / kRed;

  std::cout << "micro_comm: legacy mailbox runtime vs channel runtime"
            << (full ? " (--full)" : "") << "\n";
  exp::Table t({"probe", "legacy", "new", "speedup"});
  t.add_row({"ping-pong latency P=2 (us/rt)", exp::Table::num(ping_us_old, 3),
             exp::Table::num(ping_us_new, 3),
             exp::Table::num(ping_us_old / ping_us_new, 1) + "x"});
  t.add_row({"ring exchange P=8 (exchanges/s)",
             exp::Table::num(exch_rate_old, 0), exp::Table::num(exch_rate_new, 0),
             exp::Table::num(exch_rate_new / exch_rate_old, 1) + "x"});
  t.add_row({"allreduce 64 doubles P=8 (us/op)", exp::Table::num(red_us_old, 3),
             exp::Table::num(red_us_new, 3),
             exp::Table::num(red_us_old / red_us_new, 1) + "x"});
  t.print(std::cout);

  if (exp::trace_requested(argc, argv)) {
    // A dedicated traced run so the timed probes above stay untouched.
    const obs::ObserveOptions oo = exp::observe_from_flags(argc, argv);
    obs::Trace trace(kTeam, oo.ring_capacity);
    par::run_spmd(
        kTeam,
        [&](par::Comm& c) {
          double s = 0.0;
          exchange_body(c, kExch, kExchLen, s);
        },
        &trace);
    if (!exp::dump_trace_if_requested(argc, argv, &trace)) return 1;
  }

  return dump_counters_if_requested(argc, argv, last_counters) ? 0 : 1;
}
