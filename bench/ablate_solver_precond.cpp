// Ablation: solver x preconditioner matrix on one SPD problem —
// EDD-FGMRES vs EDD-PCG, each with GLS / Neumann / Chebyshev
// (Lanczos-matched interval) / none.  Iterations, mat-vecs and modeled
// time tell which combination wins where.
#include <iostream>

#include "bench_common.hpp"
#include "core/cg.hpp"
#include "core/diag_scaling.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"
#include "sparse/lanczos.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 50 : 30;
  spec.ny = spec.nx;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const partition::EddPartition part = exp::make_edd(prob, 4);
  const par::MachineModel origin = par::MachineModel::sgi_origin();

  // Lanczos interval of the scaled operator for the Chebyshev entry.
  const core::ScaledSystem s =
      core::scale_system(prob.stiffness, prob.load);
  const sparse::Interval iv = sparse::estimate_spectrum(s.a, 30);

  exp::banner(std::cout, "Ablation — solver x preconditioner (EDD, P = 4, " +
                             std::to_string(prob.dofs.num_free()) +
                             " equations)");
  exp::Table table({"solver", "preconditioner", "iters", "mat-vecs/rank",
                    "T(Origin) s", "converged"});

  std::vector<core::PolySpec> specs;
  {
    core::PolySpec none;
    none.kind = core::PolyKind::None;
    specs.push_back(none);
    core::PolySpec gls;
    gls.degree = 7;
    specs.push_back(gls);
    core::PolySpec neumann;
    neumann.kind = core::PolyKind::Neumann;
    neumann.degree = 15;
    specs.push_back(neumann);
    core::PolySpec cheb;
    cheb.kind = core::PolyKind::Chebyshev;
    cheb.degree = 7;
    cheb.theta = {{iv.lo, iv.hi}};
    specs.push_back(cheb);
  }

  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;
  for (const core::PolySpec& poly : specs) {
    const auto gm = core::solve_edd(part, prob.load, poly, opts);
    table.add_row({"EDD-FGMRES", poly.name(),
                   exp::Table::integer(gm.iterations),
                   exp::Table::integer(static_cast<long long>(
                       gm.rank_counters[0].matvecs)),
                   exp::Table::num(
                       par::model_time(origin, gm.rank_counters).total(), 4),
                   gm.converged ? "yes" : "NO"});
    const auto cg = core::solve_edd_cg(part, prob.load, poly, opts);
    table.add_row({"EDD-PCG", poly.name(),
                   exp::Table::integer(cg.iterations),
                   exp::Table::integer(static_cast<long long>(
                       cg.rank_counters[0].matvecs)),
                   exp::Table::num(
                       par::model_time(origin, cg.rank_counters).total(), 4),
                   cg.converged ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\n(Chebyshev interval from a 30-step Lanczos estimate: ["
            << exp::Table::sci(iv.lo, 2) << ", " << exp::Table::num(iv.hi, 3)
            << "])\n";
  return 0;
}
