// Fig. 10: convergence of EDD-GMRES-GLS(10) versus the spectrum estimate
// Θ.  Θ = (ε, 1) is always *valid* after norm-1 scaling, but the paper
// notes it is not necessarily *optimal*: tightening the interval around
// the true spectrum can help, while an estimate that misses part of the
// spectrum hurts badly.
#include <iostream>

#include "bench_common.hpp"
#include "core/edd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "sparse/gershgorin.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  exp::banner(std::cout,
              "Fig. 10 — EDD-GMRES-GLS(10) convergence vs Theta estimate");

  const fem::CantileverProblem prob =
      full ? fem::make_table2_cantilever(4)   // Mesh4, as in the paper
           : [] {
               fem::CantileverSpec spec;
               spec.nx = 24;
               spec.ny = 24;
               return fem::make_cantilever(spec);
             }();
  const partition::EddPartition part = exp::make_edd(prob, 4);

  struct Case {
    std::string name;
    core::Theta theta;
  };
  const double eps = std::numeric_limits<double>::epsilon();
  const std::vector<Case> cases = {
      {"(eps, 1)    [default]", {{eps, 1.0}}},
      {"(eps, 0.7)", {{eps, 0.7}}},
      {"(1e-4, 1)", {{1e-4, 1.0}}},
      {"(1e-2, 1)", {{1e-2, 1.0}}},
      {"(0.2, 1)   [misses low modes]", {{0.2, 1.0}}},
      {"(eps, 2)   [overshoots]", {{eps, 2.0}}},
  };

  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::Table table({"Theta", "iterations", "converged", "final relres"});
  for (const Case& c : cases) {
    core::PolySpec poly;
    poly.degree = 10;
    poly.theta = c.theta;
    const auto res = core::solve_edd(part, prob.load, poly, opts);
    table.add_row({c.name, exp::Table::integer(res.iterations),
                   res.converged ? "yes" : "NO",
                   exp::Table::sci(res.final_relres, 2)});
  }
  table.print(std::cout);
  if (!full) std::cout << "(pass --full to run on the paper's Mesh4)\n";
  return 0;
}
