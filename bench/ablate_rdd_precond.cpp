// Ablation: the RDD preconditioner family of §4.1.2 — block-Jacobi
// ILU(0), restricted additive Schwarz (overlap 1), and the polynomial —
// compared on iterations, per-apply communication and modeled time.
// Block-local preconditioners weaken as P grows (their blocks shrink);
// the polynomial's quality is P-invariant — the paper's robustness
// argument in §3.2.3 made quantitative.
#include <iostream>

#include "bench_common.hpp"
#include "core/rdd_solver.hpp"
#include "exp/experiments.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "par/cost_model.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  fem::CantileverSpec spec;
  spec.nx = full ? 60 : 32;
  spec.ny = spec.nx;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  const par::MachineModel origin = par::MachineModel::sgi_origin();

  exp::banner(std::cout, "Ablation — RDD preconditioners (" +
                             std::to_string(prob.dofs.num_free()) +
                             " equations)");
  exp::Table table({"P", "preconditioner", "iters", "T(Origin) s"});
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  for (int p : {2, 4, 8}) {
    const partition::RddPartition part = exp::make_rdd(prob, p);
    auto run = [&](const std::string& name, const core::RddOptions& rdd) {
      const auto res = core::solve_rdd(part, prob.load, rdd, opts);
      table.add_row(
          {exp::Table::integer(p), name, exp::Table::integer(res.iterations),
           exp::Table::num(par::model_time(origin, res.rank_counters).total(),
                           4)});
    };
    core::RddOptions bj;
    bj.precond = core::RddOptions::Precond::BlockJacobiIlu;
    run("block-Jacobi ILU(0)", bj);
    core::RddOptions ras;
    ras.precond = core::RddOptions::Precond::AdditiveSchwarz;
    run("additive Schwarz(1)", ras);
    core::RddOptions poly;
    poly.poly.degree = 7;
    run("GLS(7)", poly);
  }
  table.print(std::cout);
  std::cout << "\nexpected: block preconditioners lose iterations as P "
               "grows (smaller blocks); GLS(7) iteration count is\n"
               "P-invariant.  Schwarz <= block-Jacobi in iterations at "
               "every P.\n";
  return 0;
}
