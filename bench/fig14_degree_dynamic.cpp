// Fig. 14: convergence vs GLS polynomial degree, dynamic analysis
// (Newmark effective system), Mesh1 and Mesh2.  Same ordering as the
// static case with uniformly fewer iterations.
#include <iostream>

#include "bench_common.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"
#include "timeint/newmark.hpp"

namespace {

using namespace pfem;

void run_mesh(int mesh_no) {
  const fem::CantileverProblem prob = fem::make_table2_cantilever(mesh_no);
  const sparse::CsrMatrix m = prob.assemble_mass();
  timeint::NewmarkOptions nopts;
  const timeint::Newmark nm(prob.stiffness, m, nopts);
  exp::banner(std::cout, "Fig. 14 — dynamic degree sweep, Mesh" +
                             std::to_string(mesh_no) + " (dt = " +
                             exp::Table::num(nopts.dt, 3) + ")");

  const core::ScaledSystem s = core::scale_system(nm.k_eff(), prob.load);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::Table table({"preconditioner", "iterations", "final relres"});
  for (int deg : {1, 3, 7, 10, 20}) {
    core::GlsPrecond p(
        core::LinearOp::from_csr(s.a),
        core::GlsPolynomial(core::default_theta_after_scaling(), deg));
    Vector x(s.b.size(), 0.0);
    const core::SolveReport res = core::fgmres(s.a, s.b, x, p, opts);
    table.add_row({p.name(), exp::Table::integer(res.iterations),
                   exp::Table::sci(res.final_relres, 2)});
    bench::print_history(p.name(), res.history);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  run_mesh(1);
  run_mesh(2);
  return 0;
}
