// Fig. 13: convergence vs GLS polynomial degree, static analysis,
// Mesh1 and Mesh2.  Paper's ordering in iteration count:
//   GLS(20) > GLS(10) > GLS(7) > GLS(3) > GLS(1)
// (but each iteration of a higher degree costs more mat-vecs — the
// time trade-off is what Table 3 explores).
#include <iostream>

#include "bench_common.hpp"
#include "core/diag_scaling.hpp"
#include "core/fgmres.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"

namespace {

using namespace pfem;

void run_mesh(int mesh_no) {
  const fem::CantileverProblem prob = fem::make_table2_cantilever(mesh_no);
  exp::banner(std::cout, "Fig. 13 — static degree sweep, Mesh" +
                             std::to_string(mesh_no));
  const core::ScaledSystem s = core::scale_system(prob.stiffness, prob.load);
  core::SolveOptions opts;
  opts.tol = 1e-6;
  opts.max_iters = 60000;

  exp::Table table({"preconditioner", "iterations", "total mat-vecs",
                    "final relres"});
  for (int m : {1, 3, 7, 10, 20}) {
    core::GlsPrecond p(
        core::LinearOp::from_csr(s.a),
        core::GlsPolynomial(core::default_theta_after_scaling(), m));
    Vector x(s.b.size(), 0.0);
    const core::SolveReport res = core::fgmres(s.a, s.b, x, p, opts);
    table.add_row({p.name(), exp::Table::integer(res.iterations),
                   exp::Table::integer(static_cast<long long>(res.iterations) *
                                       (m + 1)),
                   exp::Table::sci(res.final_relres, 2)});
    bench::print_history(p.name(), res.history);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  run_mesh(1);
  run_mesh(2);
  return 0;
}
