// Table 2: the cantilever mesh family used throughout the evaluation.
// Builds each mesh and verifies node/equation counts against the paper.
#include <iostream>

#include "bench_common.hpp"
#include "exp/table.hpp"
#include "fem/problems.hpp"

int main(int argc, char** argv) {
  using namespace pfem;
  const bool full = bench::full_run(argc, argv);
  exp::banner(std::cout, "Table 2 — finite element meshes (cantilever)");

  exp::Table table({"Mesh", "nXele x nYele", "nNode", "nEqn", "built nEqn",
                    "nnz(K)"});
  const auto meshes = fem::table2_meshes();
  // Building Mesh9/Mesh10 takes a few seconds; default stops at Mesh8.
  const int last = full ? 10 : 8;
  for (int k = 1; k <= last; ++k) {
    const auto& info = meshes[static_cast<std::size_t>(k - 1)];
    const fem::CantileverProblem prob = fem::make_table2_cantilever(k);
    table.add_row({info.name,
                   std::to_string(info.nx) + " x " + std::to_string(info.ny),
                   exp::Table::integer(info.n_nodes),
                   exp::Table::integer(info.n_eqn),
                   exp::Table::integer(prob.dofs.num_free()),
                   exp::Table::integer(prob.stiffness.nnz())});
  }
  table.print(std::cout);
  if (!full) std::cout << "(pass --full to also build Mesh9 and Mesh10)\n";
  return 0;
}
