#!/usr/bin/env bash
# Regenerate every paper table/figure at paper scale (--full where the
# bench supports it) plus all ablations.  Expects the repo already built:
#   cmake -B build -G Ninja && cmake --build build
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=build/bench
FULL="fig10_theta_sensitivity fig15_speedup_degree fig17_speedup_size \
      fig17_machines table2_meshes table3_speedup ablate_gs_reductions \
      ablate_partition ablate_variant ablate_solver_precond \
      ablate_elements ablate_adaptive_theta ablate_reordering \
      ablate_rdd_precond ext_3d_scaling ablate_ebe"
PLAIN="fig01_neumann_residual fig02_gls_residual fig03_stability \
       fig11_static_precond fig12_dynamic_precond fig13_degree_static \
       fig14_degree_dynamic table1_complexity"

for b in $PLAIN; do
  echo "### $b"
  "$BENCH/$b"
done
for b in $FULL; do
  echo "### $b --full"
  "$BENCH/$b" --full
done
echo "### micro_kernels"
"$BENCH/micro_kernels"
