#!/usr/bin/env bash
# Regenerate every paper table/figure at paper scale (--full where the
# bench supports it) plus all ablations and the service load bench.
# Expects the repo already built:
#   cmake -B build -G Ninja && cmake --build build
#
# Every bench runs even if an earlier one fails; each gets an [ok] /
# [FAIL exit N] line and the script exits nonzero when anything failed,
# so a broken bench can't hide in pages of output.
set -uo pipefail
cd "$(dirname "$0")/.."

BENCH=build/bench
FULL="fig10_theta_sensitivity fig15_speedup_degree fig17_speedup_size \
      fig17_machines table2_meshes table3_speedup ablate_gs_reductions \
      ablate_partition ablate_variant ablate_solver_precond \
      ablate_elements ablate_adaptive_theta ablate_reordering \
      ablate_rdd_precond ablate_ebe svc_load"
PLAIN="fig01_neumann_residual fig02_gls_residual fig03_stability \
       fig11_static_precond fig12_dynamic_precond fig13_degree_static \
       fig14_degree_dynamic table1_complexity"

# Seed recorded in every BENCH_*.json provenance block (and passed to
# the seeded benches) so a run is replayable from its artifacts alone.
SEED=${PFEM_SEED:-0}

# Fail fast on an unbuilt tree: missing binaries are a setup error, not
# a bench result.
missing=0
for b in $PLAIN $FULL micro_kernels deflation_scaling micro_comm \
         ext_3d_scaling hetero_scaling; do
  if [ ! -x "$BENCH/$b" ]; then
    echo "error: $BENCH/$b not built" >&2
    missing=1
  fi
done
[ "$missing" -ne 0 ] && exit 2

declare -A status
# run_bench_as KEY BINARY ARGS... — KEY names the run in the summary, so
# one binary can appear under several modes without clobbering status.
run_bench_as() {
  local key=$1 name=$2
  shift 2
  echo "### $key: $name $*"
  "$BENCH/$name" "$@"
  status[$key]=$?
}
run_bench() {
  local name=$1
  shift
  run_bench_as "$name" "$name" "$@"
}

# Stamp provenance into every BENCH_*.json (inserted right after the
# opening brace) so the perf trajectory stays attributable to a commit,
# build type and seed.  Idempotent: files already stamped are skipped.
stamp_provenance() {
  local sha dirty bt ts f
  sha=$(git rev-parse HEAD 2>/dev/null || echo unknown)
  if git diff --quiet 2>/dev/null && git diff --cached --quiet 2>/dev/null; then
    dirty=false
  else
    dirty=true
  fi
  bt=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt \
       2>/dev/null | head -1)
  ts=$(date -u +%Y-%m-%dT%H:%M:%SZ)
  for f in BENCH_*.json; do
    [ -f "$f" ] || continue
    grep -q '"provenance"' "$f" && continue
    sed -i "0,/{/s//{\\n  \"provenance\": {\"git_sha\": \"$sha\", \
\"git_dirty\": $dirty, \"build_type\": \"${bt:-unknown}\", \
\"seed\": $SEED, \"timestamp_utc\": \"$ts\"},/" "$f"
  done
}

for b in $PLAIN; do run_bench "$b"; done
for b in $FULL; do run_bench "$b" --full; done
# The kernel sweep (CSR vs SELL vs fused) lands in BENCH_kernels.json next
# to the table/figure JSON the other benches emit.
run_bench micro_kernels --kernels-json=BENCH_kernels.json
# The matrix-free sweep (Format::Ebe vs CSR vs SELL, with the
# bytes-per-dof column) — same binary, filter out the google benchmarks
# so they run only once, in the micro_kernels invocation above.
run_bench_as micro_kernels_ebe micro_kernels --ebe-json=BENCH_ebe.json \
  '--benchmark_filter=^$'
# The two-level deflation weak-scaling sweep is itself an acceptance
# gate: its exit code is nonzero when deflated P=2 -> P=16 iteration
# growth exceeds 1.3x, so a coarse-space regression fails the whole run.
run_bench deflation_scaling --deflation-json=BENCH_deflation.json
# The 3-D extension sweep (modeled speedup, 3-D deflation, brick3d
# stiffness jumps, RDD duplication factor) records into BENCH_3d.json.
run_bench ext_3d_scaling --full --json=BENCH_3d.json
# The heterogeneous-diffusion sweep is the third acceptance gate:
# nonzero exit when jump-aware deflation at a 1e4 coefficient jump on
# the misaligned checkerboard exceeds 1.5x the homogeneous deflated
# iteration count (GLS(7), Table-2-sized mesh, P = 8).
run_bench hetero_scaling --json=BENCH_hetero.json
# The net sweeps: the transport ladder (in-process ring vs shm ring vs
# socket loopback) and the sharded socket service.  svc_load --socket is
# a second acceptance gate — nonzero exit when the warm stream falls
# below 2x cold throughput or the warm cache-hit rate below 90%.
run_bench_as micro_comm_net micro_comm --net --full \
  --net-json=BENCH_net_comm.json
run_bench_as svc_load_socket svc_load --socket --full --seed="$SEED" \
  --socket-json=BENCH_net_svc.json
# The solve-session replay gate: a drifting-operator trace solved cold
# vs through a session.  Nonzero exit when the warm lane saves less
# than 30% of the cold lane's mean iterations.
run_bench_as svc_load_replay svc_load --replay --full \
  --replay-json=BENCH_sessions.json

# Fold the two net fragments into one BENCH_net.json.
if [ -f BENCH_net_comm.json ] && [ -f BENCH_net_svc.json ]; then
  {
    echo '{'
    echo '  "bench": "net",'
    echo '  "transport_comparison":'
    sed 's/^/  /;$s/}$/},/' BENCH_net_comm.json
    echo '  "sharded_service":'
    sed 's/^/  /' BENCH_net_svc.json
    echo '}'
  } > BENCH_net.json
  rm -f BENCH_net_comm.json BENCH_net_svc.json
  echo "net results folded into BENCH_net.json"
fi

stamp_provenance

echo
echo "### summary"
failed=0
for b in $PLAIN $FULL micro_kernels micro_kernels_ebe deflation_scaling \
         ext_3d_scaling hetero_scaling micro_comm_net svc_load_socket \
         svc_load_replay; do
  code=${status[$b]}
  if [ "$code" -eq 0 ]; then
    echo "[ok]   $b"
  else
    echo "[FAIL exit $code] $b"
    failed=1
  fi
done
exit $failed
