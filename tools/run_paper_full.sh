#!/usr/bin/env bash
# Regenerate every paper table/figure at paper scale (--full where the
# bench supports it) plus all ablations and the service load bench.
# Expects the repo already built:
#   cmake -B build -G Ninja && cmake --build build
#
# Every bench runs even if an earlier one fails; each gets an [ok] /
# [FAIL exit N] line and the script exits nonzero when anything failed,
# so a broken bench can't hide in pages of output.
set -uo pipefail
cd "$(dirname "$0")/.."

BENCH=build/bench
FULL="fig10_theta_sensitivity fig15_speedup_degree fig17_speedup_size \
      fig17_machines table2_meshes table3_speedup ablate_gs_reductions \
      ablate_partition ablate_variant ablate_solver_precond \
      ablate_elements ablate_adaptive_theta ablate_reordering \
      ablate_rdd_precond ext_3d_scaling ablate_ebe svc_load"
PLAIN="fig01_neumann_residual fig02_gls_residual fig03_stability \
       fig11_static_precond fig12_dynamic_precond fig13_degree_static \
       fig14_degree_dynamic table1_complexity"

# Fail fast on an unbuilt tree: missing binaries are a setup error, not
# a bench result.
missing=0
for b in $PLAIN $FULL micro_kernels deflation_scaling; do
  if [ ! -x "$BENCH/$b" ]; then
    echo "error: $BENCH/$b not built" >&2
    missing=1
  fi
done
[ "$missing" -ne 0 ] && exit 2

declare -A status
run_bench() {
  local name=$1
  shift
  echo "### $name $*"
  "$BENCH/$name" "$@"
  status[$name]=$?
}

for b in $PLAIN; do run_bench "$b"; done
for b in $FULL; do run_bench "$b" --full; done
# The kernel sweep (CSR vs SELL vs fused) lands in BENCH_kernels.json next
# to the table/figure JSON the other benches emit.
run_bench micro_kernels --kernels-json=BENCH_kernels.json
# The two-level deflation weak-scaling sweep is itself an acceptance
# gate: its exit code is nonzero when deflated P=2 -> P=16 iteration
# growth exceeds 1.3x, so a coarse-space regression fails the whole run.
run_bench deflation_scaling --deflation-json=BENCH_deflation.json

echo
echo "### summary"
failed=0
for b in $PLAIN $FULL micro_kernels deflation_scaling; do
  code=${status[$b]}
  if [ "$code" -eq 0 ]; then
    echo "[ok]   $b"
  else
    echo "[FAIL exit $code] $b"
    failed=1
  fi
done
exit $failed
