// pfem_loadgen — synthetic-client load generator for the solve service.
//
// Spawns C client threads against one in-process Service and drives it
// for a wall-clock duration in one of two modes:
//
//   closed (default): each client submits, waits for the outcome, and
//     immediately submits again — throughput is set by service speed;
//   open: each client submits at a fixed rate (--rate req/s per client)
//     without waiting — arrival pressure is independent of service
//     speed, so the bounded queue and deadline shedding actually engage.
//
// Prints a human summary and (with --json=FILE) a machine-readable
// artifact with outcome counts, throughput, and client-observed latency
// percentiles.  Exit code is nonzero when any request FAILED (rejections
// are expected shedding, not failures) or when nothing completed — the
// CI smoke gate.
//
//   pfem_loadgen [--ranks=4] [--nx=24] [--ny=8] [--degree=7]
//                [--clients=3] [--seconds=5] [--mode=closed|open]
//                [--rate=20] [--rhs=1] [--deadline-ms=0] [--queue=64]
//                [--max-batch=16] [--json=FILE]
//                [--trace-json=FILE] [--metrics-json=FILE] [--trace-ring=N]
//
// With --connect=ADDR the clients speak the net::proto wire protocol to
// a remote pfem_serve --listen shard (or a pfem_router in front of
// several) instead of an in-process service: one socket connection per
// client, closed-loop, cycling --ops operator keys.  --nx/--ny must
// match the server's so the RHS length validates.  The JSON artifact
// gains the response-observed cache-hit rate (the router-affinity
// metric).
//
//   pfem_loadgen --connect=unix:/tmp/router.sock [--clients=3]
//                [--seconds=5] [--ops=4] [--rhs=1] [--deadline-ms=0]
//                [--json=FILE]
//
// With --replay=N the load generator becomes a drifting-operator trace
// replayer: N sequential steps of a slowly drifting problem (diagonal
// operator drift + smooth RHS drift), each solved twice — once cold
// (session-less) and once through a solve session (warm start +
// recycled directions) — printing the per-step and mean iteration
// counts.  The stream is fully deterministic (content-derived seeds, no
// wall-clock dependence), so two runs produce identical iteration
// traces: the CI session-replay gate.  Combined with --connect the
// replay speaks the wire protocol (session frames + pinned solves
// through a router); operator drift is then omitted since updates don't
// travel the wire, leaving pure RHS drift.
//
//   pfem_loadgen --replay=12 [--ranks=4] [--nx=24] [--ny=8] [--json=FILE]
//   pfem_loadgen --replay=12 --connect=unix:/tmp/router.sock [--json=FILE]
//
// With --mix the clients drive MIXED-TENANT traffic: one operator per
// problem family (cantilever2d / hetero2d with a 1e4 coefficient jump /
// brick3d), each registered with its own per-operator DeflationOptions
// (the families disagree on components and coord_dim), interleaved
// round-robin by every client.  --cache (default 2, below the 3
// families) keeps the operator cache under eviction pressure, so the
// run exercises eviction + rebuild + coalescing + per-family sessions
// together — zero FAILED outcomes is the gate.
//
//   pfem_loadgen --mix [--ranks=4] [--clients=3] [--seconds=5]
//                [--degree=7] [--cache=2] [--rhs=1] [--json=FILE]
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "svc/remote.hpp"
#include "svc_cli.hpp"

namespace {

using namespace pfem;

struct ClientTally {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
};

// ---- replay helpers -------------------------------------------------------

/// Per-rank copies of the partition's matrices with every diagonal entry
/// scaled by (1 + drift): a deterministic, SPD-preserving "drifting
/// operator" with unchanged sparsity, standing in for the quasi-static /
/// time-stepping operator paths that solve sessions target.
std::shared_ptr<const std::vector<sparse::CsrMatrix>> drifted_matrices(
    const partition::EddPartition& part, real_t drift) {
  auto mats = std::make_shared<std::vector<sparse::CsrMatrix>>();
  mats->reserve(part.subs.size());
  for (const auto& sub : part.subs) {
    sparse::CsrMatrix a = sub.k_loc;
    const auto rp = a.row_ptr();
    const auto ci = a.col_idx();
    auto vals = a.values();
    for (index_t i = 0; i < a.rows(); ++i)
      for (index_t k = rp[static_cast<std::size_t>(i)];
           k < rp[static_cast<std::size_t>(i) + 1]; ++k)
        if (ci[static_cast<std::size_t>(k)] == i)
          vals[static_cast<std::size_t>(k)] *= 1.0 + drift;
    mats->push_back(std::move(a));
  }
  return mats;
}

/// Step-t RHS of a replay: the base load under a small smooth spatial
/// drift, so consecutive steps stay close (warm starts help) without
/// being identical (the warm solve still has real work to do).
Vector replay_rhs(const Vector& load, int t, int steps) {
  Vector f = load;
  const real_t s = static_cast<real_t>(t) / static_cast<real_t>(steps);
  for (std::size_t i = 0; i < f.size(); ++i)
    f[i] *= 1.0 + 0.1 * s *
                      (0.5 + 0.5 * static_cast<real_t>(i % 7) / 7.0);
  return f;
}

double mean_from(const std::vector<int>& v, std::size_t first) {
  if (v.size() <= first) return 0.0;
  double sum = 0.0;
  for (std::size_t i = first; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(v.size() - first);
}

/// Shared tail of both replay modes: per-mean summary + optional JSON
/// artifact.  Means skip step 0 — the first warm solve has no session
/// state yet, so it IS a cold solve (session warm-up, not signal).
bool finish_replay(const std::string& json, const char* mode,
                   const std::string& connect, int steps,
                   const std::vector<int>& cold_iters,
                   const std::vector<int>& warm_iters, bool ok) {
  const double cold_mean = mean_from(cold_iters, 1);
  const double warm_mean = mean_from(warm_iters, 1);
  const double reduction =
      cold_mean > 0.0 ? 1.0 - warm_mean / cold_mean : 0.0;
  std::cout << "replay: mean iterations over steps 1.." << steps - 1
            << ": cold " << cold_mean << ", warm " << warm_mean
            << " (reduction " << reduction * 100.0 << "%)\n";
  if (!json.empty()) {
    std::ofstream out(json);
    if (!out) {
      std::cerr << "error: could not write " << json << "\n";
      ok = false;
    } else {
      out << "{\n"
          << "  \"mode\": \"" << mode << "\",\n";
      if (!connect.empty()) out << "  \"connect\": \"" << connect << "\",\n";
      out << "  \"steps\": " << steps << ",\n"
          << "  \"cold_mean_iters\": " << cold_mean << ",\n"
          << "  \"warm_mean_iters\": " << warm_mean << ",\n"
          << "  \"iter_reduction\": " << reduction << ",\n"
          << "  \"ok\": " << (ok ? "true" : "false") << "\n"
          << "}\n";
      std::cout << "replay JSON written to " << json << "\n";
    }
  }
  return ok;
}

/// In-process drifting-operator replay: per step, drift the operator +
/// RHS, solve once session-less (cold) and once through the session
/// (warm), and compare iteration counts.
int run_replay(int argc, char** argv, int steps) {
  const int ranks = tools::int_arg(argc, argv, "--ranks", 4);
  const int nx = tools::int_arg(argc, argv, "--nx", 24);
  const int ny = tools::int_arg(argc, argv, "--ny", 8);
  const int degree = tools::int_arg(argc, argv, "--degree", 7);
  const std::string json = tools::str_arg(argc, argv, "--json", "");

  const tools::ProblemSetup setup = tools::make_setup(nx, ny, ranks, degree);
  std::cout << "pfem_loadgen: replaying " << steps
            << " drifting-operator steps, " << setup.prob.dofs.num_free()
            << " equations, P=" << ranks << "\n";

  svc::ServiceConfig cfg;
  cfg.nranks = ranks;
  cfg.observe = exp::observe_from_flags(argc, argv);
  svc::Service service(cfg);
  service.register_operator("op", setup.part, setup.poly);
  const svc::SessionId session = service.open_session("op");
  if (session == svc::kNoSession) {
    std::cerr << "pfem_loadgen: open_session refused\n";
    return 1;
  }

  auto solve_one = [&](svc::SessionId sid, const Vector& f, int& iters) {
    svc::SolveRequest req;
    req.operator_key = "op";
    req.session = sid;
    req.rhs.push_back(f);
    svc::Outcome o = service.submit(std::move(req)).outcome.get();
    const auto* c = std::get_if<svc::Completed>(&o);
    if (c == nullptr || !c->result.items.front().converged) {
      std::cerr << "replay solve " << tools::outcome_name(o) << "\n";
      return false;
    }
    iters = c->result.items.front().iterations;
    return true;
  };

  std::vector<int> cold_iters, warm_iters;
  bool ok = true;
  for (int t = 0; t < steps && ok; ++t) {
    if (t > 0)
      service.update_operator(
          "op", drifted_matrices(*setup.part,
                                 0.05 * static_cast<real_t>(t) /
                                     static_cast<real_t>(steps)));
    const Vector f = replay_rhs(setup.prob.load, t, steps);
    int ci = 0, wi = 0;
    ok = solve_one(svc::kNoSession, f, ci) && solve_one(session, f, wi);
    if (ok) {
      cold_iters.push_back(ci);
      warm_iters.push_back(wi);
      std::cout << "step " << t << ": cold " << ci << " it, warm " << wi
                << " it\n";
    }
  }
  (void)service.close_session(session);
  service.shutdown(/*drain=*/true);

  const svc::ServiceStats st = service.stats();
  std::cout << "service: warm_rhs=" << st.warm_rhs
            << " sessions_opened=" << st.sessions_opened
            << " sessions_closed=" << st.sessions_closed
            << " sessions_evicted=" << st.sessions_evicted << "\n";
  ok = finish_replay(json, "replay", "", steps, cold_iters, warm_iters,
                     ok && !warm_iters.empty()) &&
       exp::dump_trace_if_requested(argc, argv, service.trace());
  std::cout << (ok ? "pfem_loadgen: OK\n" : "pfem_loadgen: FAILED\n");
  return ok ? 0 : 1;
}

/// Wire-protocol replay against a remote shard or router: session
/// open/solve/close frames over the socket, RHS drift only (operator
/// updates don't travel the wire).  Exercises router session pinning
/// end to end.
int run_replay_remote(int argc, char** argv, const std::string& connect,
                      int steps) {
  namespace proto = net::proto;
  const int nx = tools::int_arg(argc, argv, "--nx", 24);
  const int ny = tools::int_arg(argc, argv, "--ny", 8);
  const std::string key = tools::str_arg(argc, argv, "--key", "op0");
  const std::string json = tools::str_arg(argc, argv, "--json", "");

  fem::CantileverSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  std::cout << "pfem_loadgen: replaying " << steps << " steps over "
            << connect << " (key '" << key << "')\n";

  std::unique_ptr<svc::Client> cli;
  try {
    cli = std::make_unique<svc::Client>(connect, "loadgen-replay");
  } catch (const std::exception& e) {
    std::cerr << "pfem_loadgen: " << e.what() << "\n";
    return 1;
  }
  const std::uint64_t session = cli->open_session(key);
  if (session == 0) {
    std::cerr << "pfem_loadgen: SessionOpen refused\n";
    return 1;
  }

  auto solve_one = [&](std::uint64_t sid, const Vector& f, int& iters) {
    proto::SolveRequestMsg req;
    req.operator_key = key;
    req.session_id = sid;
    req.rhs.push_back(f);
    proto::SolveResponseMsg resp;
    if (!cli->solve(req, resp) ||
        resp.status != proto::SolveStatus::Completed ||
        resp.items.empty() || !resp.items.front().converged) {
      std::cerr << "replay solve failed"
                << (resp.detail.empty() ? "" : ": " + resp.detail) << "\n";
      return false;
    }
    iters = resp.items.front().iterations;
    return true;
  };

  std::vector<int> cold_iters, warm_iters;
  bool ok = true;
  for (int t = 0; t < steps && ok; ++t) {
    const Vector f = replay_rhs(prob.load, t, steps);
    int ci = 0, wi = 0;
    ok = solve_one(0, f, ci) && solve_one(session, f, wi);
    if (ok) {
      cold_iters.push_back(ci);
      warm_iters.push_back(wi);
      std::cout << "step " << t << ": cold " << ci << " it, warm " << wi
                << " it\n";
    }
  }
  ok = cli->close_session(key, session) && ok;
  ok = finish_replay(json, "replay-remote", connect, steps, cold_iters,
                     warm_iters, ok && !warm_iters.empty());
  std::cout << (ok ? "pfem_loadgen: OK\n" : "pfem_loadgen: FAILED\n");
  return ok ? 0 : 1;
}

/// Closed-loop clients over the wire protocol.  Rejections are expected
/// shedding; FAILED responses, malformed frames, and dead connections
/// are failures.
int run_remote(int argc, char** argv, const std::string& connect) {
  namespace proto = net::proto;
  const int nx = tools::int_arg(argc, argv, "--nx", 24);
  const int ny = tools::int_arg(argc, argv, "--ny", 8);
  const int clients = tools::int_arg(argc, argv, "--clients", 3);
  const double seconds = tools::double_arg(argc, argv, "--seconds", 5.0);
  const int rhs_per_req = tools::int_arg(argc, argv, "--rhs", 1);
  const int deadline_ms = tools::int_arg(argc, argv, "--deadline-ms", 0);
  const int ops = tools::int_arg(argc, argv, "--ops", 4);
  const std::string json = tools::str_arg(argc, argv, "--json", "");

  // Only the load vector is needed locally — partitioning happens on
  // the server; build for 1 part to skip the partition cost.
  fem::CantileverSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  const fem::CantileverProblem prob = fem::make_cantilever(spec);
  std::cout << "pfem_loadgen: " << clients << " closed-loop clients -> "
            << connect << ", " << seconds << " s, " << ops << " keys\n";

  svc::LatencyRecorder latency;
  std::mutex tally_m;
  ClientTally tally;
  std::uint64_t wire_cache_hits = 0;
  std::atomic<bool> stop{false};

  const auto t_start = svc::Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::unique_ptr<svc::Client> cli;
      try {
        cli = std::make_unique<svc::Client>(
            connect, "loadgen-" + std::to_string(c));
      } catch (const std::exception& e) {
        std::scoped_lock lock(tally_m);
        ++tally.failed;
        std::cerr << "client " << c << ": " << e.what() << "\n";
        return;
      }
      std::uint64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        proto::SolveRequestMsg req;
        req.operator_key =
            "op" + std::to_string((static_cast<std::uint64_t>(c) + seq) %
                                  static_cast<std::uint64_t>(ops));
        for (int b = 0; b < rhs_per_req; ++b) {
          Vector f = prob.load;
          const real_t scale =
              1.0 + 0.05 * static_cast<real_t>((seq + static_cast<
                                                          std::uint64_t>(
                                                          c + b)) %
                                               17);
          for (real_t& v : f) v *= scale;
          req.rhs.push_back(std::move(f));
        }
        if (deadline_ms > 0)
          req.deadline_ns =
              static_cast<std::uint64_t>(deadline_ms) * 1000000ull;
        const auto t0 = svc::Clock::now();
        proto::SolveResponseMsg resp;
        if (!cli->solve(req, resp)) {
          std::scoped_lock lock(tally_m);
          ++tally.failed;
          break;  // connection unusable
        }
        std::scoped_lock lock(tally_m);
        switch (resp.status) {
          case proto::SolveStatus::Completed:
            ++tally.completed;
            if (resp.cache_hit) ++wire_cache_hits;
            latency.record(std::chrono::duration<double>(svc::Clock::now() -
                                                         t0)
                               .count());
            break;
          case proto::SolveStatus::Rejected:
            ++tally.rejected;
            break;
          case proto::SolveStatus::Cancelled:
            ++tally.cancelled;
            break;
          case proto::SolveStatus::Failed:
            ++tally.failed;
            break;
        }
        ++seq;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(svc::Clock::now() - t_start).count();

  const svc::LatencySnapshot lat = latency.snapshot();
  const double rps = static_cast<double>(tally.completed) / elapsed;
  const double hit_rate =
      tally.completed > 0
          ? static_cast<double>(wire_cache_hits) /
                static_cast<double>(tally.completed)
          : 0.0;
  std::cout << "elapsed " << elapsed << " s\n"
            << "completed " << tally.completed << " (" << rps
            << " solves/s), rejected " << tally.rejected << ", cancelled "
            << tally.cancelled << ", FAILED " << tally.failed << "\n"
            << "cache-hit responses " << wire_cache_hits << " ("
            << hit_rate * 100.0 << "%)\n"
            << "latency  p50=" << lat.p50 * 1e3 << " ms  p90="
            << lat.p90 * 1e3 << " ms  p99=" << lat.p99 * 1e3
            << " ms  max=" << lat.max * 1e3 << " ms\n";

  bool ok = tally.failed == 0 && tally.completed > 0;
  if (!json.empty()) {
    std::ofstream out(json);
    if (!out) {
      std::cerr << "error: could not write " << json << "\n";
      ok = false;
    } else {
      out << "{\n"
          << "  \"mode\": \"remote\",\n"
          << "  \"connect\": \"" << connect << "\",\n"
          << "  \"clients\": " << clients << ",\n"
          << "  \"elapsed_s\": " << elapsed << ",\n"
          << "  \"throughput_rps\": " << rps << ",\n"
          << "  \"client_completed\": " << tally.completed << ",\n"
          << "  \"client_rejected\": " << tally.rejected << ",\n"
          << "  \"client_cancelled\": " << tally.cancelled << ",\n"
          << "  \"client_failed\": " << tally.failed << ",\n"
          << "  \"cache_hit_responses\": " << wire_cache_hits << ",\n"
          << "  \"cache_hit_rate\": " << hit_rate << ",\n"
          << "  \"latency_count\": " << lat.count << ",\n"
          << "  \"latency_mean_s\": " << lat.mean << ",\n"
          << "  \"latency_p50_s\": " << lat.p50 << ",\n"
          << "  \"latency_p90_s\": " << lat.p90 << ",\n"
          << "  \"latency_p99_s\": " << lat.p99 << ",\n"
          << "  \"latency_max_s\": " << lat.max << "\n"
          << "}\n";
      std::cout << "stats JSON written to " << json << "\n";
    }
  }
  if (!ok) {
    std::cerr << "pfem_loadgen: FAILED (failed=" << tally.failed
              << ", completed=" << tally.completed << ")\n";
    return 1;
  }
  std::cout << "pfem_loadgen: OK\n";
  return 0;
}

/// Mixed-tenant closed-loop run: one operator per problem family with
/// per-operator deflation, clients interleave the family keys, and the
/// cache capacity sits below the family count so every rotation evicts
/// and rebuilds.  A session per family keeps warm state in the mix.
int run_mix(int argc, char** argv) {
  const int ranks = tools::int_arg(argc, argv, "--ranks", 4);
  const int degree = tools::int_arg(argc, argv, "--degree", 7);
  const int clients = tools::int_arg(argc, argv, "--clients", 3);
  const double seconds = tools::double_arg(argc, argv, "--seconds", 5.0);
  const int rhs_per_req = tools::int_arg(argc, argv, "--rhs", 1);
  const int cache = tools::int_arg(argc, argv, "--cache", 2);
  const std::string json = tools::str_arg(argc, argv, "--json", "");

  const std::vector<std::string> families = fem::problem_families();
  std::vector<tools::FamilySetup> setups;
  setups.reserve(families.size());
  for (const std::string& f : families)
    setups.push_back(tools::make_family_setup(f, ranks, degree));

  std::cout << "pfem_loadgen: mixed-tenant run, " << families.size()
            << " families, P=" << ranks << ", cache=" << cache << ", "
            << clients << " closed-loop clients, " << seconds << " s\n";

  svc::ServiceConfig cfg;
  cfg.nranks = ranks;
  cfg.cache_capacity = static_cast<std::size_t>(cache);
  cfg.queue_capacity =
      static_cast<std::size_t>(tools::int_arg(argc, argv, "--queue", 64));
  cfg.max_batch_rhs =
      static_cast<std::size_t>(tools::int_arg(argc, argv, "--max-batch", 16));
  cfg.observe = exp::observe_from_flags(argc, argv);
  svc::Service service(cfg);
  std::vector<svc::SessionId> sessions;
  for (const auto& s : setups) {
    service.register_operator(s.fp.family, s.part, s.poly, nullptr,
                              s.deflation);
    sessions.push_back(service.open_session(s.fp.family));
  }

  svc::LatencyRecorder client_latency;
  std::mutex tally_m;
  ClientTally tally;
  std::atomic<bool> stop{false};

  auto classify = [&](const svc::Outcome& o, svc::Clock::time_point t0) {
    std::scoped_lock lock(tally_m);
    if (std::holds_alternative<svc::Completed>(o)) {
      ++tally.completed;
      client_latency.record(
          std::chrono::duration<double>(svc::Clock::now() - t0).count());
    } else if (std::holds_alternative<svc::Rejected>(o)) {
      ++tally.rejected;
    } else if (std::holds_alternative<svc::Cancelled>(o)) {
      ++tally.cancelled;
    } else {
      ++tally.failed;
      std::cerr << "mix request failed: "
                << std::get<svc::Failed>(o).error << "\n";
    }
  };

  const auto t_start = svc::Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      std::uint64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t fi =
            (static_cast<std::size_t>(c) + seq) % setups.size();
        const tools::FamilySetup& s = setups[fi];
        svc::SolveRequest req;
        req.operator_key = s.fp.family;
        // Client 0 routes its requests through the family's session
        // (warm starts across the eviction churn); others stay cold.
        if (c == 0) req.session = sessions[fi];
        for (int b = 0; b < rhs_per_req; ++b) {
          Vector f = s.fp.prob.load;
          const real_t scale =
              1.0 +
              0.05 * static_cast<real_t>(
                         (seq + static_cast<std::uint64_t>(c + b)) % 17);
          for (real_t& v : f) v *= scale;
          req.rhs.push_back(std::move(f));
        }
        const auto t0 = svc::Clock::now();
        classify(service.submit(std::move(req)).outcome.get(), t0);
        ++seq;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  service.shutdown(/*drain=*/true);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(svc::Clock::now() - t_start).count();

  const svc::ServiceStats st = service.stats();
  const svc::LatencySnapshot lat = client_latency.snapshot();
  const double rps = static_cast<double>(tally.completed) / elapsed;
  std::cout << "elapsed " << elapsed << " s\n"
            << "completed " << tally.completed << " (" << rps
            << " solves/s), rejected " << tally.rejected << ", cancelled "
            << tally.cancelled << ", FAILED " << tally.failed << "\n"
            << "service: batches=" << st.batches
            << " cache_hits=" << st.cache_hits
            << " cache_misses=" << st.cache_misses
            << " warm_rhs=" << st.warm_rhs << "\n";

  // Cache pressure must actually engage: with capacity below the family
  // count, the round-robin traffic has to rebuild evicted operators.
  bool ok = tally.failed == 0 && tally.completed > 0;
  if (st.cache_misses <= static_cast<std::uint64_t>(setups.size())) {
    std::cerr << "pfem_loadgen: expected eviction-driven rebuilds, saw "
              << st.cache_misses << " misses\n";
    ok = false;
  }
  if (!json.empty()) {
    std::ostringstream extra;
    extra << "  \"mode\": \"mix\",\n"
          << "  \"families\": " << setups.size() << ",\n"
          << "  \"cache_capacity\": " << cache << ",\n"
          << "  \"clients\": " << clients << ",\n"
          << "  \"elapsed_s\": " << elapsed << ",\n"
          << "  \"throughput_rps\": " << rps << ",\n"
          << "  \"client_completed\": " << tally.completed << ",\n"
          << "  \"client_rejected\": " << tally.rejected << ",\n"
          << "  \"client_cancelled\": " << tally.cancelled << ",\n"
          << "  \"client_failed\": " << tally.failed << ",\n";
    ok = tools::write_stats_json(json, st, lat, extra.str()) && ok;
  }
  ok = exp::dump_trace_if_requested(argc, argv, service.trace()) && ok;
  if (!ok) {
    std::cerr << "pfem_loadgen: FAILED (failed=" << tally.failed
              << ", completed=" << tally.completed << ")\n";
    return 1;
  }
  std::cout << "pfem_loadgen: OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string connect = tools::str_arg(argc, argv, "--connect", "");
  const int replay = tools::int_arg(argc, argv, "--replay", 0);
  if (replay > 0)
    return connect.empty() ? run_replay(argc, argv, replay)
                           : run_replay_remote(argc, argv, connect, replay);
  if (!connect.empty()) return run_remote(argc, argv, connect);
  if (exp::has_flag(argc, argv, "--mix")) return run_mix(argc, argv);
  const int ranks = tools::int_arg(argc, argv, "--ranks", 4);
  const int nx = tools::int_arg(argc, argv, "--nx", 24);
  const int ny = tools::int_arg(argc, argv, "--ny", 8);
  const int degree = tools::int_arg(argc, argv, "--degree", 7);
  const int clients = tools::int_arg(argc, argv, "--clients", 3);
  const double seconds = tools::double_arg(argc, argv, "--seconds", 5.0);
  const std::string mode = tools::str_arg(argc, argv, "--mode", "closed");
  const double rate = tools::double_arg(argc, argv, "--rate", 20.0);
  const int rhs_per_req = tools::int_arg(argc, argv, "--rhs", 1);
  const int deadline_ms = tools::int_arg(argc, argv, "--deadline-ms", 0);
  const std::string json = tools::str_arg(argc, argv, "--json", "");
  const bool open_loop = mode == "open";

  const tools::ProblemSetup setup = tools::make_setup(nx, ny, ranks, degree);
  std::cout << "pfem_loadgen: " << setup.prob.dofs.num_free()
            << " equations, P=" << ranks << ", " << clients << " "
            << mode << "-loop clients, " << seconds << " s\n";

  svc::ServiceConfig cfg;
  cfg.nranks = ranks;
  cfg.queue_capacity =
      static_cast<std::size_t>(tools::int_arg(argc, argv, "--queue", 64));
  cfg.max_batch_rhs =
      static_cast<std::size_t>(tools::int_arg(argc, argv, "--max-batch", 16));
  cfg.observe = exp::observe_from_flags(argc, argv);
  svc::Service service(cfg);
  service.register_operator("op", setup.part, setup.poly);

  svc::LatencyRecorder client_latency;  // client-observed, completed only
  std::mutex tally_m;
  ClientTally tally;
  std::atomic<bool> stop{false};

  auto classify = [&](const svc::Outcome& o, svc::Clock::time_point t0) {
    std::scoped_lock lock(tally_m);
    if (std::holds_alternative<svc::Completed>(o)) {
      ++tally.completed;
      client_latency.record(
          std::chrono::duration<double>(svc::Clock::now() - t0).count());
    } else if (std::holds_alternative<svc::Rejected>(o)) {
      ++tally.rejected;
    } else if (std::holds_alternative<svc::Cancelled>(o)) {
      ++tally.cancelled;
    } else {
      ++tally.failed;
    }
  };

  auto make_request = [&](int client, std::uint64_t seq) {
    svc::SolveRequest req;
    req.operator_key = "op";
    for (int b = 0; b < rhs_per_req; ++b) {
      Vector f = setup.prob.load;
      const real_t scale =
          1.0 + 0.05 * static_cast<real_t>((seq + static_cast<std::uint64_t>(
                                                      client + b)) %
                                           17);
      for (real_t& v : f) v *= scale;
      req.rhs.push_back(std::move(f));
    }
    if (deadline_ms > 0)
      req.deadline =
          svc::Clock::now() + std::chrono::milliseconds(deadline_ms);
    return req;
  };

  const auto t_start = svc::Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      // Open-loop clients harvest their in-flight futures at the end.
      std::vector<std::pair<svc::Clock::time_point, std::future<svc::Outcome>>>
          inflight;
      std::uint64_t seq = 0;
      auto next_send = svc::Clock::now();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = svc::Clock::now();
        auto submitted = service.submit(make_request(c, seq++));
        if (open_loop) {
          inflight.emplace_back(t0, std::move(submitted.outcome));
          next_send += std::chrono::duration_cast<svc::Clock::duration>(
              std::chrono::duration<double>(1.0 / rate));
          std::this_thread::sleep_until(next_send);
        } else {
          classify(submitted.outcome.get(), t0);
        }
      }
      for (auto& [t0, fut] : inflight) classify(fut.get(), t0);
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  // Drain everything queued so every in-flight future resolves.
  service.shutdown(/*drain=*/true);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(svc::Clock::now() - t_start).count();

  const svc::ServiceStats st = service.stats();
  // Open-loop clients only harvest futures at the end of the run, so
  // their classify() timestamps overstate latency; use the service-side
  // submit->outcome recorder there, client-observed timing otherwise.
  const svc::LatencySnapshot lat =
      open_loop ? service.latency() : client_latency.snapshot();
  const double rps = static_cast<double>(tally.completed) / elapsed;
  std::cout << "elapsed " << elapsed << " s\n"
            << "completed " << tally.completed << " (" << rps
            << " solves/s), rejected " << tally.rejected << ", cancelled "
            << tally.cancelled << ", FAILED " << tally.failed << "\n"
            << "service: batches=" << st.batches
            << " cache_hits=" << st.cache_hits
            << " cache_misses=" << st.cache_misses
            << " queue_full=" << st.rejected_queue_full
            << " deadline=" << st.rejected_deadline << "\n"
            << "latency  p50=" << lat.p50 * 1e3 << " ms  p90="
            << lat.p90 * 1e3 << " ms  p99=" << lat.p99 * 1e3
            << " ms  max=" << lat.max * 1e3 << " ms\n";

  bool ok = tally.failed == 0 && tally.completed > 0;
  if (!json.empty()) {
    std::ostringstream extra;
    extra << "  \"mode\": \"" << mode << "\",\n"
          << "  \"clients\": " << clients << ",\n"
          << "  \"elapsed_s\": " << elapsed << ",\n"
          << "  \"throughput_rps\": " << rps << ",\n"
          << "  \"client_completed\": " << tally.completed << ",\n"
          << "  \"client_rejected\": " << tally.rejected << ",\n"
          << "  \"client_cancelled\": " << tally.cancelled << ",\n"
          << "  \"client_failed\": " << tally.failed << ",\n";
    ok = tools::write_stats_json(json, st, lat, extra.str()) && ok;
  }
  // Export after shutdown: the lanes are quiesced.
  ok = exp::dump_trace_if_requested(argc, argv, service.trace()) && ok;
  if (!ok) {
    std::cerr << "pfem_loadgen: FAILED (failed=" << tally.failed
              << ", completed=" << tally.completed << ")\n";
    return 1;
  }
  std::cout << "pfem_loadgen: OK\n";
  return 0;
}
