// pfem_router — shard router for the socket-served solve service.
//
// Accepts pfem_loadgen --connect clients on --listen and multiplexes
// their requests onto N pfem_serve --listen shards with operator-cache
// affinity: hash(operator_key) mod nshards, spilling to the
// least-loaded shard when the affine one has --max-inflight requests
// in flight, and shedding load with a typed Rejected{QueueFull} when
// every shard is saturated.  Runs until SIGTERM/SIGINT (or
// --serve-seconds) and reports routing stats (and --json=FILE).
//
//   pfem_router --listen=unix:/tmp/router.sock \
//               --shards=unix:/tmp/shard0.sock,unix:/tmp/shard1.sock \
//               [--max-inflight=8] [--name=pfem-router]
//               [--serve-seconds=0] [--json=FILE]
#include <csignal>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "exp/cli.hpp"
#include "svc/remote.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void on_stop_signal(int) { g_stop = 1; }

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using pfem::exp::double_flag;
  using pfem::exp::int_flag;
  using pfem::exp::str_flag;

  pfem::svc::RouterConfig cfg;
  cfg.listen_addr = str_flag(argc, argv, "--listen", "");
  cfg.shard_addrs = split_csv(str_flag(argc, argv, "--shards", ""));
  cfg.max_inflight_per_shard =
      static_cast<std::size_t>(int_flag(argc, argv, "--max-inflight", 8));
  cfg.name = str_flag(argc, argv, "--name", "pfem-router");
  const double serve_seconds =
      double_flag(argc, argv, "--serve-seconds", 0.0);
  const std::string json = str_flag(argc, argv, "--json", "");

  if (cfg.listen_addr.empty() || cfg.shard_addrs.empty()) {
    std::cerr << "usage: pfem_router --listen=ADDR --shards=ADDR[,ADDR...]"
                 " [--max-inflight=N] [--serve-seconds=S] [--json=FILE]\n";
    return 2;
  }

  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);

  try {
    pfem::svc::Router router(cfg);
    std::cout << cfg.name << ": " << router.nshards()
              << " shard(s), listening on " << cfg.listen_addr << std::endl;

    const auto t0 = std::chrono::steady_clock::now();
    while (!g_stop) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (serve_seconds > 0.0 &&
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
                  .count() >= serve_seconds)
        break;
    }
    router.stop();

    const pfem::svc::Router::Stats st = router.stats();
    std::cout << cfg.name << ": forwarded=" << st.forwarded
              << " affinity=" << st.affinity << " spilled=" << st.spilled
              << " rejected_backpressure=" << st.rejected_backpressure
              << " session_frames=" << st.session_frames
              << " session_pinned=" << st.session_pinned
              << " responses=" << st.responses << "\n";
    if (!json.empty()) {
      std::ofstream out(json);
      if (!out) {
        std::cerr << "error: could not write " << json << "\n";
        return 1;
      }
      out << "{\n"
          << "  \"shards\": " << router.nshards() << ",\n"
          << "  \"forwarded\": " << st.forwarded << ",\n"
          << "  \"affinity\": " << st.affinity << ",\n"
          << "  \"spilled\": " << st.spilled << ",\n"
          << "  \"rejected_backpressure\": " << st.rejected_backpressure
          << ",\n"
          << "  \"session_frames\": " << st.session_frames << ",\n"
          << "  \"session_pinned\": " << st.session_pinned << ",\n"
          << "  \"responses\": " << st.responses << "\n"
          << "}\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "pfem_router: FAILED: " << e.what() << "\n";
    return 1;
  }
  std::cout << cfg.name << ": OK" << std::endl;
  return 0;
}
