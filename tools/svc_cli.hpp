// Shared plumbing for the solve-service drivers (pfem_serve,
// pfem_loadgen): flag parsing, problem/partition setup, and the JSON
// emitter for stats + latency artifacts.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "exp/cli.hpp"
#include "exp/experiments.hpp"
#include "fem/problems.hpp"
#include "svc/service.hpp"

namespace pfem::tools {

// Deprecated spellings kept for the drivers; parsing lives in exp/cli.hpp.
inline std::string str_arg(int argc, char** argv, const char* name,
                           const std::string& fallback) {
  return exp::str_flag(argc, argv, name, fallback);
}

inline int int_arg(int argc, char** argv, const char* name, int fallback) {
  return exp::int_flag(argc, argv, name, fallback);
}

inline double double_arg(int argc, char** argv, const char* name,
                         double fallback) {
  return exp::double_flag(argc, argv, name, fallback);
}

/// Cantilever problem + EDD partition + polynomial spec shared by both
/// drivers; sized by --nx/--ny, partitioned for --ranks ranks.
struct ProblemSetup {
  fem::CantileverProblem prob;
  std::shared_ptr<const partition::EddPartition> part;
  core::PolySpec poly;
};

inline ProblemSetup make_setup(int nx, int ny, int nparts, int degree) {
  fem::CantileverSpec spec;
  spec.nx = nx;
  spec.ny = ny;
  fem::CantileverProblem prob = fem::make_cantilever(spec);
  auto part = std::make_shared<const partition::EddPartition>(
      exp::make_edd(prob, nparts));
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = degree;
  return ProblemSetup{std::move(prob), std::move(part), poly};
}

/// One tenant of a mixed-family service: a problem-family instance with
/// its partition and the deflation options matched to its coarse-space
/// layout (to be passed per-operator to Service::register_operator —
/// the family operators disagree on components/coord_dim, so a
/// service-wide DeflationOptions cannot serve them all).
struct FamilySetup {
  fem::FamilyProblem fp;
  std::shared_ptr<const partition::EddPartition> part;
  core::PolySpec poly;
  core::DeflationOptions deflation;
};

inline FamilySetup make_family_setup(const std::string& family, int nparts,
                                     int degree) {
  fem::ProblemSpec spec = fem::default_spec(family);
  if (family != "cantilever2d") {
    spec.jump = 1.0e4;
    spec.aligned = false;
    spec.checker = 3;
  }
  fem::FamilyProblem fp = fem::make_problem(spec);
  auto part = std::make_shared<const partition::EddPartition>(
      exp::make_edd(fp, nparts));
  core::PolySpec poly;
  poly.kind = core::PolyKind::Gls;
  poly.degree = degree;
  core::DeflationOptions deflation =
      exp::family_deflation(fp, /*jump_aware=*/family != "cantilever2d");
  return FamilySetup{std::move(fp), std::move(part), poly,
                     std::move(deflation)};
}

/// Emit the service stats + latency snapshot (plus caller-provided
/// extras) as a flat JSON object.  Returns false when FILE can't be
/// written, so drivers can surface it in their exit code.
inline bool write_stats_json(const std::string& path,
                             const svc::ServiceStats& st,
                             const svc::LatencySnapshot& lat,
                             const std::string& extra_fields) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: could not write " << path << "\n";
    return false;
  }
  out << "{\n";
  if (!extra_fields.empty()) out << extra_fields;
  out << "  \"submitted\": " << st.submitted << ",\n"
      << "  \"completed\": " << st.completed << ",\n"
      << "  \"rejected_queue_full\": " << st.rejected_queue_full << ",\n"
      << "  \"rejected_deadline\": " << st.rejected_deadline << ",\n"
      << "  \"rejected_other\": " << st.rejected_other << ",\n"
      << "  \"cancelled\": " << st.cancelled << ",\n"
      << "  \"failed\": " << st.failed << ",\n"
      << "  \"cache_hits\": " << st.cache_hits << ",\n"
      << "  \"cache_misses\": " << st.cache_misses << ",\n"
      << "  \"sessions_opened\": " << st.sessions_opened << ",\n"
      << "  \"sessions_closed\": " << st.sessions_closed << ",\n"
      << "  \"sessions_evicted\": " << st.sessions_evicted << ",\n"
      << "  \"warm_rhs\": " << st.warm_rhs << ",\n"
      << "  \"batches\": " << st.batches << ",\n"
      << "  \"rhs_solved\": " << st.rhs_solved << ",\n"
      << "  \"solve_seconds\": " << st.solve_seconds << ",\n"
      << "  \"latency_count\": " << lat.count << ",\n"
      << "  \"latency_mean_s\": " << lat.mean << ",\n"
      << "  \"latency_p50_s\": " << lat.p50 << ",\n"
      << "  \"latency_p90_s\": " << lat.p90 << ",\n"
      << "  \"latency_p99_s\": " << lat.p99 << ",\n"
      << "  \"latency_max_s\": " << lat.max << "\n"
      << "}\n";
  std::cout << "stats JSON written to " << path << "\n";
  return true;
}

inline const char* outcome_name(const svc::Outcome& o) {
  if (std::holds_alternative<svc::Completed>(o)) return "completed";
  if (const auto* r = std::get_if<svc::Rejected>(&o))
    return svc::reject_reason_name(r->reason);
  if (std::holds_alternative<svc::Cancelled>(o)) return "cancelled";
  return "failed";
}

}  // namespace pfem::tools
