// pfem_trace — offline companion for the span traces the solvers and the
// solve service emit (--trace-json):
//
//   pfem_trace --check FILE...            structural validation (exit 1
//                                         on the first malformed file)
//   pfem_trace --summary FILE...          per-span aggregate table
//                                         (count, total, self time)
//   pfem_trace --merge=OUT FILE...        one timeline, pids offset so
//                                         lanes never collide
//   pfem_trace --counters=CJSON FILE      cross-check the trace's
//                                         per-rank "exchange" span count
//                                         against PerfCounters
//                                         neighbor_exchanges
//                                         (--counters-json output)
//
// The counters cross-check is the paper's Table-1 argument made
// mechanical: every logical neighbor exchange emits exactly one
// "exchange" span at the site that bumps the counter, so the two
// pipelines must agree rank by rank (unless the flight-recorder ring
// dropped records, which the footer reports).
//
// When the counters carry a "fault" object (chaos runs), the same
// argument extends to injected faults: every fired fault stamps one
// fault_* span at the site that bumps its counter.  The trace outlives
// failed attempts while counters survive only from the attempt that
// completed, so the invariant is counter <= span count rank by rank —
// tightening to exact equality on a retry-free, drop-free run.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "obs/trace_io.hpp"

namespace {

using pfem::obs::io::Json;
using pfem::obs::io::TraceFile;

int usage() {
  std::cerr
      << "usage: pfem_trace [--check] [--summary] [--merge=OUT] "
         "[--merge-ranks=OUT] [--counters=COUNTERS.json[,MORE...]] FILE...\n"
         "  --check           validate structure and span nesting\n"
         "  --summary         per-span-name time aggregates\n"
         "  --merge=OUT       merge FILEs into one timeline at OUT\n"
         "                    (pids offset so lanes never collide)\n"
         "  --merge-ranks=OUT merge per-process captures of ONE\n"
         "                    multi-process run (pids preserved: lane r\n"
         "                    stays global rank r)\n"
         "  --counters=FILES  cross-check exchange spans vs PerfCounters;\n"
         "                    comma-separated shard captures are summed\n"
         "                    per rank before the check\n"
         "with no mode flag, runs --check and --summary\n";
  return 2;
}

bool load(const std::string& path, TraceFile& t) {
  std::string err;
  if (!pfem::obs::io::load_chrome_trace(path, t, err)) {
    std::cerr << path << ": " << err << "\n";
    return false;
  }
  return true;
}

int do_check(const std::vector<std::string>& files) {
  int rc = 0;
  for (const auto& path : files) {
    TraceFile t;
    if (!load(path, t)) {
      rc = 1;
      continue;
    }
    std::string err;
    if (!pfem::obs::io::check(t, err)) {
      std::cerr << path << ": INVALID: " << err << "\n";
      rc = 1;
      continue;
    }
    std::cout << path << ": OK (" << t.events.size() << " events";
    if (t.nranks >= 0) std::cout << ", " << t.nranks << " ranks";
    if (t.dropped > 0) std::cout << ", " << t.dropped << " dropped";
    std::cout << ")\n";
  }
  return rc;
}

int do_summary(const std::vector<std::string>& files) {
  for (const auto& path : files) {
    TraceFile t;
    if (!load(path, t)) return 1;
    const auto stats = pfem::obs::io::span_summary(t);
    std::cout << path << ":\n";
    std::printf("  %-16s %-9s %8s %12s %12s\n", "span", "cat", "count",
                "total_ms", "self_ms");
    for (const auto& s : stats)
      std::printf("  %-16s %-9s %8llu %12.3f %12.3f\n", s.name.c_str(),
                  s.cat.c_str(), static_cast<unsigned long long>(s.count),
                  s.total_us / 1e3, s.self_us / 1e3);
  }
  return 0;
}

int do_merge(const std::string& out_path,
             const std::vector<std::string>& files, bool keep_pids) {
  std::vector<TraceFile> inputs;
  for (const auto& path : files) {
    TraceFile t;
    if (!load(path, t)) return 1;
    inputs.push_back(std::move(t));
  }
  const TraceFile merged = keep_pids ? pfem::obs::io::merge_ranks(inputs)
                                     : pfem::obs::io::merge(inputs);
  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  pfem::obs::io::write_chrome_trace(os, merged);
  std::cout << "merged " << files.size() << " trace(s), "
            << merged.events.size() << " events -> " << out_path << "\n";
  return 0;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

int do_counters(const std::string& counters_csv,
                const std::vector<std::string>& files) {
  // Several trace files are the per-process captures of ONE
  // multi-process run: merge them with pids preserved first.
  TraceFile t;
  {
    std::vector<TraceFile> inputs;
    for (const auto& path : files) {
      TraceFile f;
      if (!load(path, f)) return 1;
      inputs.push_back(std::move(f));
    }
    t = inputs.size() == 1 ? std::move(inputs.front())
                           : pfem::obs::io::merge_ranks(inputs);
  }

  // Likewise several counters captures (one per shard process, remote
  // ranks zeroed in each) are summed per rank before the check.
  std::vector<Json> roots;
  std::size_t nranks = 0;
  for (const std::string& counters_path : split_csv(counters_csv)) {
    std::ifstream in(counters_path);
    if (!in) {
      std::cerr << "error: could not read " << counters_path << "\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    Json root;
    std::string err;
    if (!pfem::obs::io::json_parse(ss.str(), root, err)) {
      std::cerr << counters_path << ": " << err << "\n";
      return 1;
    }
    const Json& ranks = root.at("ranks");
    if (!ranks.is(Json::Type::Array) || ranks.arr.empty()) {
      std::cerr << counters_path << ": no \"ranks\" array\n";
      return 1;
    }
    nranks = std::max(nranks, ranks.arr.size());
    roots.push_back(std::move(root));
  }

  // Per-rank sum of a numeric counter across the captures; -1 when the
  // path is absent everywhere (feature probe for older files).
  auto counted_at = [&](std::size_t r,
                        std::initializer_list<const char*> path) -> double {
    double total = 0.0;
    bool any = false;
    for (const Json& root : roots) {
      const Json& ranks = root.at("ranks");
      if (r >= ranks.arr.size()) continue;
      const Json* v = &ranks.arr[r];
      for (const char* key : path) v = &v->at(key);
      if (v->is(Json::Type::Number)) {
        total += v->num;
        any = true;
      }
    }
    return any ? total : -1.0;
  };

  const auto spans = pfem::obs::io::count_by_pid(t, "exchange");
  if (t.dropped > 0)
    std::cout << "note: trace dropped " << t.dropped
              << " records (ring too small); counts are lower bounds\n";
  int rc = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    const auto counted = static_cast<std::uint64_t>(
        counted_at(r, {"neighbor", "exchanges"}));
    const std::uint64_t traced = r < spans.size() ? spans[r] : 0;
    const bool match =
        t.dropped > 0 ? traced <= counted : traced == counted;
    std::printf("  rank %zu: counters=%llu trace=%llu %s\n", r,
                static_cast<unsigned long long>(counted),
                static_cast<unsigned long long>(traced),
                match ? "OK" : "MISMATCH");
    if (!match) rc = 1;
  }
  if (rc == 0)
    std::cout << "exchange counts agree (" << nranks << " ranks)\n";

  // Coarse-solve cross-check — only when the counters carry the
  // "coarse_solves" key (older captures predate deflation).  The
  // one-shot solvers stamp one "coarse_correct" span per coarse solve,
  // but the batch path stamps ONE span per application covering every
  // live RHS, so the spans are a lower bound on the counter: require
  // traced <= counted, and traced > 0 whenever counted > 0 (unless the
  // ring dropped records).
  const double coarse_probe = counted_at(0, {"kernels", "coarse_solves"});
  if (coarse_probe >= 0.0) {
    const auto cspans = pfem::obs::io::count_by_pid(t, "coarse_correct");
    bool any_coarse = false;
    for (std::size_t r = 0; r < nranks; ++r) {
      const auto counted = static_cast<std::uint64_t>(
          std::max(0.0, counted_at(r, {"kernels", "coarse_solves"})));
      const std::uint64_t traced = r < cspans.size() ? cspans[r] : 0;
      if (counted == 0 && traced == 0) continue;
      any_coarse = true;
      const bool match =
          traced <= counted && (traced > 0 || counted == 0 || t.dropped > 0);
      std::printf("  rank %zu: coarse_solves=%llu trace=%llu %s\n", r,
                  static_cast<unsigned long long>(counted),
                  static_cast<unsigned long long>(traced),
                  match ? "OK" : "MISMATCH");
      if (!match) rc = 1;
    }
    if (any_coarse && rc == 0)
      std::cout << "coarse-solve counts agree (" << nranks << " ranks)\n";
  }

  // Fault cross-check — only when the counters carry the "fault" object
  // (older captures predate it).  Counters from a retried solve keep
  // only the completed attempt while the trace logged every attempt, so
  // equality is required only on retry-free runs; otherwise the counter
  // must not exceed the spans.
  bool have_fault = false;
  for (const Json& root : roots)
    have_fault |=
        root.at("ranks").arr.front().at("fault").is(Json::Type::Object);
  if (!have_fault) return rc;
  struct FaultKind {
    const char* counter;  ///< key inside the per-rank "fault" object
    const char* span;     ///< the span every firing of it stamps
  };
  static constexpr FaultKind kFaults[] = {
      {"delays", "fault_delay"},     {"drops", "fault_drop"},
      {"dups", "fault_dup"},         {"stalls", "fault_stall"},
      {"crashes", "fault_crash"},    {"timeouts", "fault_timeout"},
  };
  std::uint64_t total_retries = 0;
  bool any_retries = false;
  for (std::size_t r = 0; r < nranks; ++r) {
    const auto retries = static_cast<std::uint64_t>(
        std::max(0.0, counted_at(r, {"fault", "retries"})));
    total_retries = std::max(total_retries, retries);
    any_retries |= retries > 0;
  }
  for (const FaultKind& k : kFaults) {
    const auto spans_by_pid = pfem::obs::io::count_by_pid(t, k.span);
    for (std::size_t r = 0; r < nranks; ++r) {
      const auto counted = static_cast<std::uint64_t>(
          std::max(0.0, counted_at(r, {"fault", k.counter})));
      const std::uint64_t traced =
          r < spans_by_pid.size() ? spans_by_pid[r] : 0;
      const bool lax = any_retries || t.dropped > 0;
      const bool match = lax ? counted <= traced : counted == traced;
      if (counted != 0 || traced != 0 || !match)
        std::printf("  rank %zu %-14s counters=%llu trace=%llu %s\n", r,
                    k.span, static_cast<unsigned long long>(counted),
                    static_cast<unsigned long long>(traced),
                    match ? "OK" : "MISMATCH");
      if (!match) rc = 1;
    }
  }
  // Every service re-dispatch stamps one "retry" span on the aux lane,
  // and the completed attempt's counters carry the final retry count on
  // every rank — the spans can only exceed the counters when the trace
  // spans more batches than the counters do.
  std::uint64_t retry_spans = 0;
  for (const std::uint64_t c : pfem::obs::io::count_by_pid(t, "retry"))
    retry_spans += c;
  if (total_retries > 0 || retry_spans > 0) {
    const bool match = total_retries <= retry_spans;
    std::printf("  retries: counters=%llu trace=%llu %s\n",
                static_cast<unsigned long long>(total_retries),
                static_cast<unsigned long long>(retry_spans),
                match ? "OK" : "MISMATCH");
    if (!match) rc = 1;
  }
  if (rc == 0) std::cout << "fault counts agree\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const bool check = pfem::exp::has_flag(argc, argv, "--check");
  const bool summary = pfem::exp::has_flag(argc, argv, "--summary");
  const std::string merge_out =
      pfem::exp::str_flag(argc, argv, "--merge", "");
  const std::string merge_ranks_out =
      pfem::exp::str_flag(argc, argv, "--merge-ranks", "");
  const std::string counters =
      pfem::exp::str_flag(argc, argv, "--counters", "");

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i)
    if (argv[i][0] != '-') files.emplace_back(argv[i]);
  if (files.empty()) return usage();

  int rc = 0;
  const bool any_mode = check || summary || !merge_out.empty() ||
                        !merge_ranks_out.empty() || !counters.empty();
  if (check || !any_mode) rc |= do_check(files);
  if (summary || !any_mode) rc |= do_summary(files);
  if (!merge_out.empty()) rc |= do_merge(merge_out, files, false);
  if (!merge_ranks_out.empty()) rc |= do_merge(merge_ranks_out, files, true);
  if (!counters.empty()) rc |= do_counters(counters, files);
  return rc;
}
