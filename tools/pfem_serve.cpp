// pfem_serve — scripted demo of the solve service: registers a
// cantilever operator on a warm P-rank team, streams request bursts
// through the cache/batching path, refreshes the operator in place
// (time-step style), and shows the typed load-shedding outcomes.
//
//   pfem_serve [--ranks=4] [--nx=24] [--ny=8] [--degree=7]
//              [--burst=8] [--json=FILE]
//              [--trace-json=FILE] [--metrics-json=FILE] [--trace-ring=N]
//
// Exits nonzero when any request fails or an expected solve does not
// converge, so it doubles as an end-to-end smoke test.
#include <iostream>
#include <vector>

#include "exp/table.hpp"
#include "svc_cli.hpp"

namespace {

using namespace pfem;

/// Submit `n` single-RHS requests (load scaled per request) and wait.
/// Returns the number of converged solves.
int run_burst(svc::Service& service, const tools::ProblemSetup& setup,
              const std::string& key, int n, exp::Table& table,
              const std::string& label) {
  std::vector<svc::Service::Submitted> pending;
  pending.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    svc::SolveRequest req;
    req.operator_key = key;
    Vector f = setup.prob.load;
    const real_t scale = 1.0 + 0.1 * static_cast<real_t>(i);
    for (real_t& v : f) v *= scale;
    req.rhs.push_back(std::move(f));
    pending.push_back(service.submit(std::move(req)));
  }
  int converged = 0;
  int cache_hits = 0;
  double queue_s = 0.0, solve_s = 0.0;
  for (auto& p : pending) {
    const svc::Outcome o = p.outcome.get();
    if (const auto* c = std::get_if<svc::Completed>(&o)) {
      if (c->result.items.front().converged) ++converged;
      cache_hits += c->cache_hit ? 1 : 0;
      queue_s += c->queue_seconds;
      solve_s = c->solve_seconds;
    }
  }
  table.add_row({label, exp::Table::integer(n), exp::Table::integer(converged),
                 exp::Table::integer(cache_hits),
                 exp::Table::num(solve_s * 1e3, 1)});
  return converged;
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = tools::int_arg(argc, argv, "--ranks", 4);
  const int nx = tools::int_arg(argc, argv, "--nx", 24);
  const int ny = tools::int_arg(argc, argv, "--ny", 8);
  const int degree = tools::int_arg(argc, argv, "--degree", 7);
  const int burst = tools::int_arg(argc, argv, "--burst", 8);
  const std::string json = tools::str_arg(argc, argv, "--json", "");

  const tools::ProblemSetup setup = tools::make_setup(nx, ny, ranks, degree);
  std::cout << "pfem_serve: " << setup.prob.dofs.num_free() << " equations, P="
            << ranks << ", " << setup.poly.name() << "\n";

  svc::ServiceConfig cfg;
  cfg.nranks = ranks;
  cfg.observe = pfem::exp::observe_from_flags(argc, argv);
  svc::Service service(cfg);
  service.register_operator("cantilever", setup.part, setup.poly);

  exp::Table table(
      {"phase", "requests", "converged", "cache hits", "solve ms"});
  int expected = 0, converged = 0;

  // Burst 1: cold — the first dispatch builds scaling + preconditioner.
  expected += burst;
  converged += run_burst(service, setup, "cantilever", burst, table, "cold");
  // Burst 2: warm — served entirely from the operator cache.
  expected += burst;
  converged += run_burst(service, setup, "cantilever", burst, table, "warm");

  // Operator refresh: stiffen every subdomain matrix in place (the
  // time-stepping pattern: same layout, new values) and resubmit.
  auto stiffened = std::make_shared<std::vector<sparse::CsrMatrix>>();
  for (const auto& sub : setup.part->subs) {
    sparse::CsrMatrix k = sub.k_loc;
    for (real_t& v : k.values()) v *= 2.0;
    stiffened->push_back(std::move(k));
  }
  service.update_operator("cantilever", stiffened);
  expected += burst;
  converged +=
      run_burst(service, setup, "cantilever", burst, table, "refreshed");

  // Load shedding demo: an already-expired deadline is refused at
  // admission with a typed reason — no queueing, no hang.
  svc::SolveRequest late;
  late.operator_key = "cantilever";
  late.rhs.push_back(setup.prob.load);
  late.deadline = svc::Clock::now() - std::chrono::milliseconds(1);
  auto refused = service.submit(std::move(late));
  const svc::Outcome late_outcome = refused.outcome.get();
  std::cout << "expired-deadline request -> "
            << tools::outcome_name(late_outcome) << "\n";

  table.print(std::cout);
  const svc::ServiceStats st = service.stats();
  const svc::LatencySnapshot lat = service.latency();
  std::cout << "batches=" << st.batches << " cache_hits=" << st.cache_hits
            << " cache_misses=" << st.cache_misses
            << " rejected_deadline=" << st.rejected_deadline
            << " failed=" << st.failed << "\n";

  bool ok = converged == expected && st.failed == 0 &&
            std::holds_alternative<svc::Rejected>(late_outcome);
  if (!json.empty())
    ok = tools::write_stats_json(json, st, lat, "") && ok;
  service.shutdown();
  // Export after shutdown: the lanes are quiesced.
  ok = pfem::exp::dump_trace_if_requested(argc, argv, service.trace()) && ok;
  if (!ok) {
    std::cerr << "pfem_serve: FAILED (" << converged << "/" << expected
              << " converged)\n";
    return 1;
  }
  std::cout << "pfem_serve: OK (" << converged << "/" << expected
            << " converged)\n";
  return 0;
}
