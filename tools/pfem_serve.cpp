// pfem_serve — the solve service as a process.  Two modes:
//
// Scripted demo (default): registers a cantilever operator on a warm
// P-rank team, streams request bursts through the cache/batching path,
// refreshes the operator in place (time-step style), and shows the
// typed load-shedding outcomes.
//
//   pfem_serve [--ranks=4] [--nx=24] [--ny=8] [--degree=7]
//              [--burst=8] [--json=FILE]
//              [--trace-json=FILE] [--metrics-json=FILE] [--trace-ring=N]
//
// Socket server (--listen): one service *shard* behind the net::proto
// wire protocol, serving pfem_loadgen --connect clients directly or
// sitting behind pfem_router.  Registers --ops operator keys
// ("op0".."opN-1") over the same cantilever problem and serves until
// SIGTERM/SIGINT (or --serve-seconds).  Clients must be built for the
// same --nx/--ny (RHS length is validated per request).
//
//   pfem_serve --listen=unix:/tmp/shard0.sock [--name=shard0] [--ops=4]
//              [--queue=64] [--max-batch=16] [--json=FILE]
//              [--trace-json=FILE]
//
// Exits nonzero when any request fails or an expected solve does not
// converge, so it doubles as an end-to-end smoke test.
#include <csignal>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "exp/table.hpp"
#include "svc/remote.hpp"
#include "svc_cli.hpp"

namespace {

using namespace pfem;

volatile std::sig_atomic_t g_stop = 0;

extern "C" void on_stop_signal(int) { g_stop = 1; }

/// Serve one shard over a socket until a stop signal (or the optional
/// duration cap, a safety net for scripted runs).
int run_listen(int argc, char** argv, const tools::ProblemSetup& setup,
               svc::ServiceConfig cfg, const std::string& listen) {
  const std::string name = tools::str_arg(argc, argv, "--name", "pfem-shard");
  const int ops = tools::int_arg(argc, argv, "--ops", 4);
  const double serve_seconds =
      tools::double_arg(argc, argv, "--serve-seconds", 0.0);
  const std::string json = tools::str_arg(argc, argv, "--json", "");

  svc::Service service(cfg);
  for (int i = 0; i < ops; ++i)
    service.register_operator("op" + std::to_string(i), setup.part,
                              setup.poly);

  std::signal(SIGTERM, on_stop_signal);
  std::signal(SIGINT, on_stop_signal);
  svc::Server server(service, listen, name);
  std::cout << name << ": listening on " << listen << " (" << ops
            << " operators, P=" << cfg.nranks << ")" << std::endl;

  const auto t0 = svc::Clock::now();
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (serve_seconds > 0.0 &&
        std::chrono::duration<double>(svc::Clock::now() - t0).count() >=
            serve_seconds)
      break;
  }

  // Drain queued work first so the harvesters' futures resolve, then
  // tear the connections down.
  service.shutdown(/*drain=*/true);
  server.stop();

  const svc::ServiceStats st = service.stats();
  const svc::Server::Stats ss = server.stats();
  std::cout << name << ": connections=" << ss.connections
            << " requests=" << ss.requests << " responses=" << ss.responses
            << " malformed=" << ss.malformed
            << " cache_hits=" << st.cache_hits
            << " cache_misses=" << st.cache_misses
            << " failed=" << st.failed << "\n";

  bool ok = st.failed == 0;
  if (!json.empty()) {
    std::ostringstream extra;
    extra << "  \"name\": \"" << name << "\",\n"
          << "  \"connections\": " << ss.connections << ",\n"
          << "  \"requests\": " << ss.requests << ",\n"
          << "  \"responses\": " << ss.responses << ",\n"
          << "  \"malformed\": " << ss.malformed << ",\n";
    ok = tools::write_stats_json(json, st, service.latency(), extra.str()) &&
         ok;
  }
  ok = exp::dump_trace_if_requested(argc, argv, service.trace()) && ok;
  std::cout << name << (ok ? ": OK" : ": FAILED") << std::endl;
  return ok ? 0 : 1;
}

/// Submit `n` single-RHS requests (load scaled per request) and wait.
/// Returns the number of converged solves.
int run_burst(svc::Service& service, const tools::ProblemSetup& setup,
              const std::string& key, int n, exp::Table& table,
              const std::string& label) {
  std::vector<svc::Service::Submitted> pending;
  pending.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    svc::SolveRequest req;
    req.operator_key = key;
    Vector f = setup.prob.load;
    const real_t scale = 1.0 + 0.1 * static_cast<real_t>(i);
    for (real_t& v : f) v *= scale;
    req.rhs.push_back(std::move(f));
    pending.push_back(service.submit(std::move(req)));
  }
  int converged = 0;
  int cache_hits = 0;
  double queue_s = 0.0, solve_s = 0.0;
  for (auto& p : pending) {
    const svc::Outcome o = p.outcome.get();
    if (const auto* c = std::get_if<svc::Completed>(&o)) {
      if (c->result.items.front().converged) ++converged;
      cache_hits += c->cache_hit ? 1 : 0;
      queue_s += c->queue_seconds;
      solve_s = c->solve_seconds;
    }
  }
  table.add_row({label, exp::Table::integer(n), exp::Table::integer(converged),
                 exp::Table::integer(cache_hits),
                 exp::Table::num(solve_s * 1e3, 1)});
  return converged;
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = tools::int_arg(argc, argv, "--ranks", 4);
  const int nx = tools::int_arg(argc, argv, "--nx", 24);
  const int ny = tools::int_arg(argc, argv, "--ny", 8);
  const int degree = tools::int_arg(argc, argv, "--degree", 7);
  const int burst = tools::int_arg(argc, argv, "--burst", 8);
  const std::string json = tools::str_arg(argc, argv, "--json", "");
  const std::string listen = tools::str_arg(argc, argv, "--listen", "");

  const tools::ProblemSetup setup = tools::make_setup(nx, ny, ranks, degree);
  std::cout << "pfem_serve: " << setup.prob.dofs.num_free() << " equations, P="
            << ranks << ", " << setup.poly.name() << "\n";

  svc::ServiceConfig cfg;
  cfg.nranks = ranks;
  cfg.queue_capacity =
      static_cast<std::size_t>(tools::int_arg(argc, argv, "--queue", 64));
  cfg.max_batch_rhs =
      static_cast<std::size_t>(tools::int_arg(argc, argv, "--max-batch", 16));
  cfg.observe = pfem::exp::observe_from_flags(argc, argv);
  if (!listen.empty()) return run_listen(argc, argv, setup, cfg, listen);
  svc::Service service(cfg);
  service.register_operator("cantilever", setup.part, setup.poly);

  exp::Table table(
      {"phase", "requests", "converged", "cache hits", "solve ms"});
  int expected = 0, converged = 0;

  // Burst 1: cold — the first dispatch builds scaling + preconditioner.
  expected += burst;
  converged += run_burst(service, setup, "cantilever", burst, table, "cold");
  // Burst 2: warm — served entirely from the operator cache.
  expected += burst;
  converged += run_burst(service, setup, "cantilever", burst, table, "warm");

  // Operator refresh: stiffen every subdomain matrix in place (the
  // time-stepping pattern: same layout, new values) and resubmit.
  auto stiffened = std::make_shared<std::vector<sparse::CsrMatrix>>();
  for (const auto& sub : setup.part->subs) {
    sparse::CsrMatrix k = sub.k_loc;
    for (real_t& v : k.values()) v *= 2.0;
    stiffened->push_back(std::move(k));
  }
  service.update_operator("cantilever", stiffened);
  expected += burst;
  converged +=
      run_burst(service, setup, "cantilever", burst, table, "refreshed");

  // Load shedding demo: an already-expired deadline is refused at
  // admission with a typed reason — no queueing, no hang.
  svc::SolveRequest late;
  late.operator_key = "cantilever";
  late.rhs.push_back(setup.prob.load);
  late.deadline = svc::Clock::now() - std::chrono::milliseconds(1);
  auto refused = service.submit(std::move(late));
  const svc::Outcome late_outcome = refused.outcome.get();
  std::cout << "expired-deadline request -> "
            << tools::outcome_name(late_outcome) << "\n";

  table.print(std::cout);
  const svc::ServiceStats st = service.stats();
  const svc::LatencySnapshot lat = service.latency();
  std::cout << "batches=" << st.batches << " cache_hits=" << st.cache_hits
            << " cache_misses=" << st.cache_misses
            << " rejected_deadline=" << st.rejected_deadline
            << " failed=" << st.failed << "\n";

  bool ok = converged == expected && st.failed == 0 &&
            std::holds_alternative<svc::Rejected>(late_outcome);
  if (!json.empty())
    ok = tools::write_stats_json(json, st, lat, "") && ok;
  service.shutdown();
  // Export after shutdown: the lanes are quiesced.
  ok = pfem::exp::dump_trace_if_requested(argc, argv, service.trace()) && ok;
  if (!ok) {
    std::cerr << "pfem_serve: FAILED (" << converged << "/" << expected
              << " converged)\n";
    return 1;
  }
  std::cout << "pfem_serve: OK (" << converged << "/" << expected
            << " converged)\n";
  return 0;
}
