# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_la[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_ilu_gershgorin[1]_include.cmake")
include("/root/repo/build/tests/test_fem[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_par[1]_include.cmake")
include("/root/repo/build/tests/test_poly[1]_include.cmake")
include("/root/repo/build/tests/test_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_fgmres[1]_include.cmake")
include("/root/repo/build/tests/test_edd_solver[1]_include.cmake")
include("/root/repo/build/tests/test_rdd_solver[1]_include.cmake")
include("/root/repo/build/tests/test_timeint[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_cg[1]_include.cmake")
include("/root/repo/build/tests/test_chebyshev[1]_include.cmake")
include("/root/repo/build/tests/test_lanczos[1]_include.cmake")
include("/root/repo/build/tests/test_graph_q8[1]_include.cmake")
include("/root/repo/build/tests/test_solver_options[1]_include.cmake")
include("/root/repo/build/tests/test_3d[1]_include.cmake")
include("/root/repo/build/tests/test_rcm_schwarz_damping[1]_include.cmake")
include("/root/repo/build/tests/test_property_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_stress_meshio_nonlinear[1]_include.cmake")
include("/root/repo/build/tests/test_iluk[1]_include.cmake")
include("/root/repo/build/tests/test_bicgstab[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
