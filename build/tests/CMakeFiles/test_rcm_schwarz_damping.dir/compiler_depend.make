# Empty compiler generated dependencies file for test_rcm_schwarz_damping.
# This may be replaced when dependencies are built.
