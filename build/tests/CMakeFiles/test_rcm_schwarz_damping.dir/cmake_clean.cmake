file(REMOVE_RECURSE
  "CMakeFiles/test_rcm_schwarz_damping.dir/test_rcm_schwarz_damping.cpp.o"
  "CMakeFiles/test_rcm_schwarz_damping.dir/test_rcm_schwarz_damping.cpp.o.d"
  "test_rcm_schwarz_damping"
  "test_rcm_schwarz_damping.pdb"
  "test_rcm_schwarz_damping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rcm_schwarz_damping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
