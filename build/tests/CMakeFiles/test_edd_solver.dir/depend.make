# Empty dependencies file for test_edd_solver.
# This may be replaced when dependencies are built.
