file(REMOVE_RECURSE
  "CMakeFiles/test_edd_solver.dir/test_edd_solver.cpp.o"
  "CMakeFiles/test_edd_solver.dir/test_edd_solver.cpp.o.d"
  "test_edd_solver"
  "test_edd_solver.pdb"
  "test_edd_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edd_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
