file(REMOVE_RECURSE
  "CMakeFiles/test_3d.dir/test_3d.cpp.o"
  "CMakeFiles/test_3d.dir/test_3d.cpp.o.d"
  "test_3d"
  "test_3d.pdb"
  "test_3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
