# Empty dependencies file for test_graph_q8.
# This may be replaced when dependencies are built.
