file(REMOVE_RECURSE
  "CMakeFiles/test_graph_q8.dir/test_graph_q8.cpp.o"
  "CMakeFiles/test_graph_q8.dir/test_graph_q8.cpp.o.d"
  "test_graph_q8"
  "test_graph_q8.pdb"
  "test_graph_q8[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_q8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
