file(REMOVE_RECURSE
  "CMakeFiles/test_lanczos.dir/test_lanczos.cpp.o"
  "CMakeFiles/test_lanczos.dir/test_lanczos.cpp.o.d"
  "test_lanczos"
  "test_lanczos.pdb"
  "test_lanczos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lanczos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
