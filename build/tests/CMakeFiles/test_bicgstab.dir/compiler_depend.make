# Empty compiler generated dependencies file for test_bicgstab.
# This may be replaced when dependencies are built.
