# Empty dependencies file for test_stress_meshio_nonlinear.
# This may be replaced when dependencies are built.
