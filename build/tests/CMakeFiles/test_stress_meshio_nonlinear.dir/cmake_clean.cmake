file(REMOVE_RECURSE
  "CMakeFiles/test_stress_meshio_nonlinear.dir/test_stress_meshio_nonlinear.cpp.o"
  "CMakeFiles/test_stress_meshio_nonlinear.dir/test_stress_meshio_nonlinear.cpp.o.d"
  "test_stress_meshio_nonlinear"
  "test_stress_meshio_nonlinear.pdb"
  "test_stress_meshio_nonlinear[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_meshio_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
