# Empty dependencies file for test_rdd_solver.
# This may be replaced when dependencies are built.
