file(REMOVE_RECURSE
  "CMakeFiles/test_rdd_solver.dir/test_rdd_solver.cpp.o"
  "CMakeFiles/test_rdd_solver.dir/test_rdd_solver.cpp.o.d"
  "test_rdd_solver"
  "test_rdd_solver.pdb"
  "test_rdd_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdd_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
