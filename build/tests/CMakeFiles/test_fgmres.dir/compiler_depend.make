# Empty compiler generated dependencies file for test_fgmres.
# This may be replaced when dependencies are built.
