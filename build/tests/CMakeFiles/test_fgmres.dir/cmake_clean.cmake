file(REMOVE_RECURSE
  "CMakeFiles/test_fgmres.dir/test_fgmres.cpp.o"
  "CMakeFiles/test_fgmres.dir/test_fgmres.cpp.o.d"
  "test_fgmres"
  "test_fgmres.pdb"
  "test_fgmres[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fgmres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
