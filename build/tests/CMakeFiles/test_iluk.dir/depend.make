# Empty dependencies file for test_iluk.
# This may be replaced when dependencies are built.
