file(REMOVE_RECURSE
  "CMakeFiles/test_iluk.dir/test_iluk.cpp.o"
  "CMakeFiles/test_iluk.dir/test_iluk.cpp.o.d"
  "test_iluk"
  "test_iluk.pdb"
  "test_iluk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iluk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
