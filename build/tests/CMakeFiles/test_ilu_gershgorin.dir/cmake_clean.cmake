file(REMOVE_RECURSE
  "CMakeFiles/test_ilu_gershgorin.dir/test_ilu_gershgorin.cpp.o"
  "CMakeFiles/test_ilu_gershgorin.dir/test_ilu_gershgorin.cpp.o.d"
  "test_ilu_gershgorin"
  "test_ilu_gershgorin.pdb"
  "test_ilu_gershgorin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ilu_gershgorin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
