# Empty compiler generated dependencies file for test_ilu_gershgorin.
# This may be replaced when dependencies are built.
