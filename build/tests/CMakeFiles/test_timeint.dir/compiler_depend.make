# Empty compiler generated dependencies file for test_timeint.
# This may be replaced when dependencies are built.
