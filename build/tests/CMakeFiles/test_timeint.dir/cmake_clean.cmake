file(REMOVE_RECURSE
  "CMakeFiles/test_timeint.dir/test_timeint.cpp.o"
  "CMakeFiles/test_timeint.dir/test_timeint.cpp.o.d"
  "test_timeint"
  "test_timeint.pdb"
  "test_timeint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timeint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
