file(REMOVE_RECURSE
  "CMakeFiles/test_solver_options.dir/test_solver_options.cpp.o"
  "CMakeFiles/test_solver_options.dir/test_solver_options.cpp.o.d"
  "test_solver_options"
  "test_solver_options.pdb"
  "test_solver_options[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
