# Empty compiler generated dependencies file for test_solver_options.
# This may be replaced when dependencies are built.
