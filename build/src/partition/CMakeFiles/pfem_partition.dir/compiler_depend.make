# Empty compiler generated dependencies file for pfem_partition.
# This may be replaced when dependencies are built.
