file(REMOVE_RECURSE
  "CMakeFiles/pfem_partition.dir/edd.cpp.o"
  "CMakeFiles/pfem_partition.dir/edd.cpp.o.d"
  "CMakeFiles/pfem_partition.dir/geom.cpp.o"
  "CMakeFiles/pfem_partition.dir/geom.cpp.o.d"
  "CMakeFiles/pfem_partition.dir/graph.cpp.o"
  "CMakeFiles/pfem_partition.dir/graph.cpp.o.d"
  "CMakeFiles/pfem_partition.dir/rdd.cpp.o"
  "CMakeFiles/pfem_partition.dir/rdd.cpp.o.d"
  "libpfem_partition.a"
  "libpfem_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfem_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
