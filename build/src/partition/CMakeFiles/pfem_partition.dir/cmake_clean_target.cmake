file(REMOVE_RECURSE
  "libpfem_partition.a"
)
