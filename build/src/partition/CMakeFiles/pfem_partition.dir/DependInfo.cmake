
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/edd.cpp" "src/partition/CMakeFiles/pfem_partition.dir/edd.cpp.o" "gcc" "src/partition/CMakeFiles/pfem_partition.dir/edd.cpp.o.d"
  "/root/repo/src/partition/geom.cpp" "src/partition/CMakeFiles/pfem_partition.dir/geom.cpp.o" "gcc" "src/partition/CMakeFiles/pfem_partition.dir/geom.cpp.o.d"
  "/root/repo/src/partition/graph.cpp" "src/partition/CMakeFiles/pfem_partition.dir/graph.cpp.o" "gcc" "src/partition/CMakeFiles/pfem_partition.dir/graph.cpp.o.d"
  "/root/repo/src/partition/rdd.cpp" "src/partition/CMakeFiles/pfem_partition.dir/rdd.cpp.o" "gcc" "src/partition/CMakeFiles/pfem_partition.dir/rdd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fem/CMakeFiles/pfem_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/pfem_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/pfem_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
