# Empty compiler generated dependencies file for pfem_timeint.
# This may be replaced when dependencies are built.
