file(REMOVE_RECURSE
  "libpfem_timeint.a"
)
