file(REMOVE_RECURSE
  "CMakeFiles/pfem_timeint.dir/dynamic_driver.cpp.o"
  "CMakeFiles/pfem_timeint.dir/dynamic_driver.cpp.o.d"
  "CMakeFiles/pfem_timeint.dir/newmark.cpp.o"
  "CMakeFiles/pfem_timeint.dir/newmark.cpp.o.d"
  "CMakeFiles/pfem_timeint.dir/nonlinear_driver.cpp.o"
  "CMakeFiles/pfem_timeint.dir/nonlinear_driver.cpp.o.d"
  "libpfem_timeint.a"
  "libpfem_timeint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfem_timeint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
