# Empty dependencies file for pfem_exp.
# This may be replaced when dependencies are built.
