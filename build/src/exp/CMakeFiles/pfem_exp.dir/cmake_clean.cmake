file(REMOVE_RECURSE
  "CMakeFiles/pfem_exp.dir/experiments.cpp.o"
  "CMakeFiles/pfem_exp.dir/experiments.cpp.o.d"
  "CMakeFiles/pfem_exp.dir/table.cpp.o"
  "CMakeFiles/pfem_exp.dir/table.cpp.o.d"
  "libpfem_exp.a"
  "libpfem_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfem_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
