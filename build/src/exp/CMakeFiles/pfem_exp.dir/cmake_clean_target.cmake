file(REMOVE_RECURSE
  "libpfem_exp.a"
)
