# Empty dependencies file for pfem_sparse.
# This may be replaced when dependencies are built.
