file(REMOVE_RECURSE
  "libpfem_sparse.a"
)
