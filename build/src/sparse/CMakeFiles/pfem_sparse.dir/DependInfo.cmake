
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/bsr.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/bsr.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/bsr.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/gershgorin.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/gershgorin.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/gershgorin.cpp.o.d"
  "/root/repo/src/sparse/ilu0.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/ilu0.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/ilu0.cpp.o.d"
  "/root/repo/src/sparse/iluk.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/iluk.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/iluk.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/io.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/io.cpp.o.d"
  "/root/repo/src/sparse/lanczos.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/lanczos.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/lanczos.cpp.o.d"
  "/root/repo/src/sparse/rcm.cpp" "src/sparse/CMakeFiles/pfem_sparse.dir/rcm.cpp.o" "gcc" "src/sparse/CMakeFiles/pfem_sparse.dir/rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/pfem_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
