file(REMOVE_RECURSE
  "CMakeFiles/pfem_sparse.dir/bsr.cpp.o"
  "CMakeFiles/pfem_sparse.dir/bsr.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/coo.cpp.o"
  "CMakeFiles/pfem_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/csr.cpp.o"
  "CMakeFiles/pfem_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/generators.cpp.o"
  "CMakeFiles/pfem_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/gershgorin.cpp.o"
  "CMakeFiles/pfem_sparse.dir/gershgorin.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/ilu0.cpp.o"
  "CMakeFiles/pfem_sparse.dir/ilu0.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/iluk.cpp.o"
  "CMakeFiles/pfem_sparse.dir/iluk.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/io.cpp.o"
  "CMakeFiles/pfem_sparse.dir/io.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/lanczos.cpp.o"
  "CMakeFiles/pfem_sparse.dir/lanczos.cpp.o.d"
  "CMakeFiles/pfem_sparse.dir/rcm.cpp.o"
  "CMakeFiles/pfem_sparse.dir/rcm.cpp.o.d"
  "libpfem_sparse.a"
  "libpfem_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfem_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
