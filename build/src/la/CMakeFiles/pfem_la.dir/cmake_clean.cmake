file(REMOVE_RECURSE
  "CMakeFiles/pfem_la.dir/dense.cpp.o"
  "CMakeFiles/pfem_la.dir/dense.cpp.o.d"
  "CMakeFiles/pfem_la.dir/hessenberg_lsq.cpp.o"
  "CMakeFiles/pfem_la.dir/hessenberg_lsq.cpp.o.d"
  "CMakeFiles/pfem_la.dir/vector_ops.cpp.o"
  "CMakeFiles/pfem_la.dir/vector_ops.cpp.o.d"
  "libpfem_la.a"
  "libpfem_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfem_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
