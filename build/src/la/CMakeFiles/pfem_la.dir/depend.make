# Empty dependencies file for pfem_la.
# This may be replaced when dependencies are built.
