file(REMOVE_RECURSE
  "libpfem_la.a"
)
