
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/dense.cpp" "src/la/CMakeFiles/pfem_la.dir/dense.cpp.o" "gcc" "src/la/CMakeFiles/pfem_la.dir/dense.cpp.o.d"
  "/root/repo/src/la/hessenberg_lsq.cpp" "src/la/CMakeFiles/pfem_la.dir/hessenberg_lsq.cpp.o" "gcc" "src/la/CMakeFiles/pfem_la.dir/hessenberg_lsq.cpp.o.d"
  "/root/repo/src/la/vector_ops.cpp" "src/la/CMakeFiles/pfem_la.dir/vector_ops.cpp.o" "gcc" "src/la/CMakeFiles/pfem_la.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
