file(REMOVE_RECURSE
  "CMakeFiles/pfem_par.dir/comm.cpp.o"
  "CMakeFiles/pfem_par.dir/comm.cpp.o.d"
  "CMakeFiles/pfem_par.dir/cost_model.cpp.o"
  "CMakeFiles/pfem_par.dir/cost_model.cpp.o.d"
  "libpfem_par.a"
  "libpfem_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfem_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
