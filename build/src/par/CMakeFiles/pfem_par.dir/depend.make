# Empty dependencies file for pfem_par.
# This may be replaced when dependencies are built.
