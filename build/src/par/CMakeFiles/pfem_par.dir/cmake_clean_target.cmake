file(REMOVE_RECURSE
  "libpfem_par.a"
)
