file(REMOVE_RECURSE
  "CMakeFiles/pfem_fem.dir/assembly.cpp.o"
  "CMakeFiles/pfem_fem.dir/assembly.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/dofmap.cpp.o"
  "CMakeFiles/pfem_fem.dir/dofmap.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/ebe.cpp.o"
  "CMakeFiles/pfem_fem.dir/ebe.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/elements.cpp.o"
  "CMakeFiles/pfem_fem.dir/elements.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/mesh.cpp.o"
  "CMakeFiles/pfem_fem.dir/mesh.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/mesh_io.cpp.o"
  "CMakeFiles/pfem_fem.dir/mesh_io.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/problems.cpp.o"
  "CMakeFiles/pfem_fem.dir/problems.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/stress.cpp.o"
  "CMakeFiles/pfem_fem.dir/stress.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/structured.cpp.o"
  "CMakeFiles/pfem_fem.dir/structured.cpp.o.d"
  "CMakeFiles/pfem_fem.dir/vtk.cpp.o"
  "CMakeFiles/pfem_fem.dir/vtk.cpp.o.d"
  "libpfem_fem.a"
  "libpfem_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfem_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
