
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fem/assembly.cpp" "src/fem/CMakeFiles/pfem_fem.dir/assembly.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/assembly.cpp.o.d"
  "/root/repo/src/fem/dofmap.cpp" "src/fem/CMakeFiles/pfem_fem.dir/dofmap.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/dofmap.cpp.o.d"
  "/root/repo/src/fem/ebe.cpp" "src/fem/CMakeFiles/pfem_fem.dir/ebe.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/ebe.cpp.o.d"
  "/root/repo/src/fem/elements.cpp" "src/fem/CMakeFiles/pfem_fem.dir/elements.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/elements.cpp.o.d"
  "/root/repo/src/fem/mesh.cpp" "src/fem/CMakeFiles/pfem_fem.dir/mesh.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/mesh.cpp.o.d"
  "/root/repo/src/fem/mesh_io.cpp" "src/fem/CMakeFiles/pfem_fem.dir/mesh_io.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/mesh_io.cpp.o.d"
  "/root/repo/src/fem/problems.cpp" "src/fem/CMakeFiles/pfem_fem.dir/problems.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/problems.cpp.o.d"
  "/root/repo/src/fem/stress.cpp" "src/fem/CMakeFiles/pfem_fem.dir/stress.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/stress.cpp.o.d"
  "/root/repo/src/fem/structured.cpp" "src/fem/CMakeFiles/pfem_fem.dir/structured.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/structured.cpp.o.d"
  "/root/repo/src/fem/vtk.cpp" "src/fem/CMakeFiles/pfem_fem.dir/vtk.cpp.o" "gcc" "src/fem/CMakeFiles/pfem_fem.dir/vtk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/pfem_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/pfem_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
