# Empty compiler generated dependencies file for pfem_fem.
# This may be replaced when dependencies are built.
