file(REMOVE_RECURSE
  "libpfem_fem.a"
)
