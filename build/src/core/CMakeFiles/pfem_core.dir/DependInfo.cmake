
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bicgstab.cpp" "src/core/CMakeFiles/pfem_core.dir/bicgstab.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/bicgstab.cpp.o.d"
  "/root/repo/src/core/cg.cpp" "src/core/CMakeFiles/pfem_core.dir/cg.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/cg.cpp.o.d"
  "/root/repo/src/core/chebyshev.cpp" "src/core/CMakeFiles/pfem_core.dir/chebyshev.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/chebyshev.cpp.o.d"
  "/root/repo/src/core/diag_scaling.cpp" "src/core/CMakeFiles/pfem_core.dir/diag_scaling.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/diag_scaling.cpp.o.d"
  "/root/repo/src/core/edd_solver.cpp" "src/core/CMakeFiles/pfem_core.dir/edd_solver.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/edd_solver.cpp.o.d"
  "/root/repo/src/core/fgmres.cpp" "src/core/CMakeFiles/pfem_core.dir/fgmres.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/fgmres.cpp.o.d"
  "/root/repo/src/core/gls_poly.cpp" "src/core/CMakeFiles/pfem_core.dir/gls_poly.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/gls_poly.cpp.o.d"
  "/root/repo/src/core/neumann.cpp" "src/core/CMakeFiles/pfem_core.dir/neumann.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/neumann.cpp.o.d"
  "/root/repo/src/core/orthopoly.cpp" "src/core/CMakeFiles/pfem_core.dir/orthopoly.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/orthopoly.cpp.o.d"
  "/root/repo/src/core/precond.cpp" "src/core/CMakeFiles/pfem_core.dir/precond.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/precond.cpp.o.d"
  "/root/repo/src/core/rdd_solver.cpp" "src/core/CMakeFiles/pfem_core.dir/rdd_solver.cpp.o" "gcc" "src/core/CMakeFiles/pfem_core.dir/rdd_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/pfem_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/pfem_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/pfem_par.dir/DependInfo.cmake"
  "/root/repo/build/src/fem/CMakeFiles/pfem_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/pfem_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
