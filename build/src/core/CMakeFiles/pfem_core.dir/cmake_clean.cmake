file(REMOVE_RECURSE
  "CMakeFiles/pfem_core.dir/bicgstab.cpp.o"
  "CMakeFiles/pfem_core.dir/bicgstab.cpp.o.d"
  "CMakeFiles/pfem_core.dir/cg.cpp.o"
  "CMakeFiles/pfem_core.dir/cg.cpp.o.d"
  "CMakeFiles/pfem_core.dir/chebyshev.cpp.o"
  "CMakeFiles/pfem_core.dir/chebyshev.cpp.o.d"
  "CMakeFiles/pfem_core.dir/diag_scaling.cpp.o"
  "CMakeFiles/pfem_core.dir/diag_scaling.cpp.o.d"
  "CMakeFiles/pfem_core.dir/edd_solver.cpp.o"
  "CMakeFiles/pfem_core.dir/edd_solver.cpp.o.d"
  "CMakeFiles/pfem_core.dir/fgmres.cpp.o"
  "CMakeFiles/pfem_core.dir/fgmres.cpp.o.d"
  "CMakeFiles/pfem_core.dir/gls_poly.cpp.o"
  "CMakeFiles/pfem_core.dir/gls_poly.cpp.o.d"
  "CMakeFiles/pfem_core.dir/neumann.cpp.o"
  "CMakeFiles/pfem_core.dir/neumann.cpp.o.d"
  "CMakeFiles/pfem_core.dir/orthopoly.cpp.o"
  "CMakeFiles/pfem_core.dir/orthopoly.cpp.o.d"
  "CMakeFiles/pfem_core.dir/precond.cpp.o"
  "CMakeFiles/pfem_core.dir/precond.cpp.o.d"
  "CMakeFiles/pfem_core.dir/rdd_solver.cpp.o"
  "CMakeFiles/pfem_core.dir/rdd_solver.cpp.o.d"
  "libpfem_core.a"
  "libpfem_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfem_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
