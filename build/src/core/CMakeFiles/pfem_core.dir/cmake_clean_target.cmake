file(REMOVE_RECURSE
  "libpfem_core.a"
)
