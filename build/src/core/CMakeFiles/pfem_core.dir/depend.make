# Empty dependencies file for pfem_core.
# This may be replaced when dependencies are built.
