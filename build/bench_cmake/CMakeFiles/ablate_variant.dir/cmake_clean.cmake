file(REMOVE_RECURSE
  "../bench/ablate_variant"
  "../bench/ablate_variant.pdb"
  "CMakeFiles/ablate_variant.dir/ablate_variant.cpp.o"
  "CMakeFiles/ablate_variant.dir/ablate_variant.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_variant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
