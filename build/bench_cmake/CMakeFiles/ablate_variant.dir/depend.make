# Empty dependencies file for ablate_variant.
# This may be replaced when dependencies are built.
