file(REMOVE_RECURSE
  "../bench/ext_3d_scaling"
  "../bench/ext_3d_scaling.pdb"
  "CMakeFiles/ext_3d_scaling.dir/ext_3d_scaling.cpp.o"
  "CMakeFiles/ext_3d_scaling.dir/ext_3d_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_3d_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
