# Empty dependencies file for ext_3d_scaling.
# This may be replaced when dependencies are built.
