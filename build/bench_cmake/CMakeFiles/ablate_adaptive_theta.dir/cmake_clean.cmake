file(REMOVE_RECURSE
  "../bench/ablate_adaptive_theta"
  "../bench/ablate_adaptive_theta.pdb"
  "CMakeFiles/ablate_adaptive_theta.dir/ablate_adaptive_theta.cpp.o"
  "CMakeFiles/ablate_adaptive_theta.dir/ablate_adaptive_theta.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_adaptive_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
