# Empty compiler generated dependencies file for ablate_adaptive_theta.
# This may be replaced when dependencies are built.
