file(REMOVE_RECURSE
  "../bench/fig01_neumann_residual"
  "../bench/fig01_neumann_residual.pdb"
  "CMakeFiles/fig01_neumann_residual.dir/fig01_neumann_residual.cpp.o"
  "CMakeFiles/fig01_neumann_residual.dir/fig01_neumann_residual.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_neumann_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
