# Empty compiler generated dependencies file for fig01_neumann_residual.
# This may be replaced when dependencies are built.
