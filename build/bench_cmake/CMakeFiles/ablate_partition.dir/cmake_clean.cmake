file(REMOVE_RECURSE
  "../bench/ablate_partition"
  "../bench/ablate_partition.pdb"
  "CMakeFiles/ablate_partition.dir/ablate_partition.cpp.o"
  "CMakeFiles/ablate_partition.dir/ablate_partition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
