
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_partition.cpp" "bench_cmake/CMakeFiles/ablate_partition.dir/ablate_partition.cpp.o" "gcc" "bench_cmake/CMakeFiles/ablate_partition.dir/ablate_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/pfem_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/timeint/CMakeFiles/pfem_timeint.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pfem_core.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/pfem_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/par/CMakeFiles/pfem_par.dir/DependInfo.cmake"
  "/root/repo/build/src/fem/CMakeFiles/pfem_fem.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/pfem_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/pfem_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
