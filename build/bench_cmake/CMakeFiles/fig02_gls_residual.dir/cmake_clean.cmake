file(REMOVE_RECURSE
  "../bench/fig02_gls_residual"
  "../bench/fig02_gls_residual.pdb"
  "CMakeFiles/fig02_gls_residual.dir/fig02_gls_residual.cpp.o"
  "CMakeFiles/fig02_gls_residual.dir/fig02_gls_residual.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_gls_residual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
