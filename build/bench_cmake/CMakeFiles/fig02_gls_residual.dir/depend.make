# Empty dependencies file for fig02_gls_residual.
# This may be replaced when dependencies are built.
