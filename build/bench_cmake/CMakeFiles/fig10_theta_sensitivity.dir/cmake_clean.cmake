file(REMOVE_RECURSE
  "../bench/fig10_theta_sensitivity"
  "../bench/fig10_theta_sensitivity.pdb"
  "CMakeFiles/fig10_theta_sensitivity.dir/fig10_theta_sensitivity.cpp.o"
  "CMakeFiles/fig10_theta_sensitivity.dir/fig10_theta_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_theta_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
