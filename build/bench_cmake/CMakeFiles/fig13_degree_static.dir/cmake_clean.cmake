file(REMOVE_RECURSE
  "../bench/fig13_degree_static"
  "../bench/fig13_degree_static.pdb"
  "CMakeFiles/fig13_degree_static.dir/fig13_degree_static.cpp.o"
  "CMakeFiles/fig13_degree_static.dir/fig13_degree_static.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_degree_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
