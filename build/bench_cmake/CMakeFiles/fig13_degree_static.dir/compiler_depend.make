# Empty compiler generated dependencies file for fig13_degree_static.
# This may be replaced when dependencies are built.
