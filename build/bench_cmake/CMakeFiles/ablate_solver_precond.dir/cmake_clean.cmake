file(REMOVE_RECURSE
  "../bench/ablate_solver_precond"
  "../bench/ablate_solver_precond.pdb"
  "CMakeFiles/ablate_solver_precond.dir/ablate_solver_precond.cpp.o"
  "CMakeFiles/ablate_solver_precond.dir/ablate_solver_precond.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_solver_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
