# Empty dependencies file for ablate_solver_precond.
# This may be replaced when dependencies are built.
