# Empty compiler generated dependencies file for ablate_ebe.
# This may be replaced when dependencies are built.
