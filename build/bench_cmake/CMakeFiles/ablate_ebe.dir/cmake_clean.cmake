file(REMOVE_RECURSE
  "../bench/ablate_ebe"
  "../bench/ablate_ebe.pdb"
  "CMakeFiles/ablate_ebe.dir/ablate_ebe.cpp.o"
  "CMakeFiles/ablate_ebe.dir/ablate_ebe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ebe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
