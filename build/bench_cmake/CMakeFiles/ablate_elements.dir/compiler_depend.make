# Empty compiler generated dependencies file for ablate_elements.
# This may be replaced when dependencies are built.
