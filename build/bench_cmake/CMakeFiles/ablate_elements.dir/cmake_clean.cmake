file(REMOVE_RECURSE
  "../bench/ablate_elements"
  "../bench/ablate_elements.pdb"
  "CMakeFiles/ablate_elements.dir/ablate_elements.cpp.o"
  "CMakeFiles/ablate_elements.dir/ablate_elements.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
