# Empty compiler generated dependencies file for fig17_machines.
# This may be replaced when dependencies are built.
