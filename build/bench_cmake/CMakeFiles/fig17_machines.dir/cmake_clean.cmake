file(REMOVE_RECURSE
  "../bench/fig17_machines"
  "../bench/fig17_machines.pdb"
  "CMakeFiles/fig17_machines.dir/fig17_machines.cpp.o"
  "CMakeFiles/fig17_machines.dir/fig17_machines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
