# Empty dependencies file for fig14_degree_dynamic.
# This may be replaced when dependencies are built.
