file(REMOVE_RECURSE
  "../bench/fig14_degree_dynamic"
  "../bench/fig14_degree_dynamic.pdb"
  "CMakeFiles/fig14_degree_dynamic.dir/fig14_degree_dynamic.cpp.o"
  "CMakeFiles/fig14_degree_dynamic.dir/fig14_degree_dynamic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_degree_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
