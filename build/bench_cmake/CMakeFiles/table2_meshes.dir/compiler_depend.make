# Empty compiler generated dependencies file for table2_meshes.
# This may be replaced when dependencies are built.
