file(REMOVE_RECURSE
  "../bench/table2_meshes"
  "../bench/table2_meshes.pdb"
  "CMakeFiles/table2_meshes.dir/table2_meshes.cpp.o"
  "CMakeFiles/table2_meshes.dir/table2_meshes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_meshes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
