# Empty compiler generated dependencies file for fig15_speedup_degree.
# This may be replaced when dependencies are built.
