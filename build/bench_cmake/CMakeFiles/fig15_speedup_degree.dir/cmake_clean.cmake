file(REMOVE_RECURSE
  "../bench/fig15_speedup_degree"
  "../bench/fig15_speedup_degree.pdb"
  "CMakeFiles/fig15_speedup_degree.dir/fig15_speedup_degree.cpp.o"
  "CMakeFiles/fig15_speedup_degree.dir/fig15_speedup_degree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_speedup_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
