file(REMOVE_RECURSE
  "../bench/fig17_speedup_size"
  "../bench/fig17_speedup_size.pdb"
  "CMakeFiles/fig17_speedup_size.dir/fig17_speedup_size.cpp.o"
  "CMakeFiles/fig17_speedup_size.dir/fig17_speedup_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_speedup_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
