# Empty dependencies file for fig17_speedup_size.
# This may be replaced when dependencies are built.
