# Empty compiler generated dependencies file for ablate_rdd_precond.
# This may be replaced when dependencies are built.
