file(REMOVE_RECURSE
  "../bench/ablate_rdd_precond"
  "../bench/ablate_rdd_precond.pdb"
  "CMakeFiles/ablate_rdd_precond.dir/ablate_rdd_precond.cpp.o"
  "CMakeFiles/ablate_rdd_precond.dir/ablate_rdd_precond.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rdd_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
