# Empty compiler generated dependencies file for fig11_static_precond.
# This may be replaced when dependencies are built.
