file(REMOVE_RECURSE
  "../bench/fig11_static_precond"
  "../bench/fig11_static_precond.pdb"
  "CMakeFiles/fig11_static_precond.dir/fig11_static_precond.cpp.o"
  "CMakeFiles/fig11_static_precond.dir/fig11_static_precond.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_static_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
