# Empty compiler generated dependencies file for ablate_gs_reductions.
# This may be replaced when dependencies are built.
