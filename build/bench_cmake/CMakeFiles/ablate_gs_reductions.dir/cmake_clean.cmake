file(REMOVE_RECURSE
  "../bench/ablate_gs_reductions"
  "../bench/ablate_gs_reductions.pdb"
  "CMakeFiles/ablate_gs_reductions.dir/ablate_gs_reductions.cpp.o"
  "CMakeFiles/ablate_gs_reductions.dir/ablate_gs_reductions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_gs_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
