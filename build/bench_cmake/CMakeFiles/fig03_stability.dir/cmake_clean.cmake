file(REMOVE_RECURSE
  "../bench/fig03_stability"
  "../bench/fig03_stability.pdb"
  "CMakeFiles/fig03_stability.dir/fig03_stability.cpp.o"
  "CMakeFiles/fig03_stability.dir/fig03_stability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
