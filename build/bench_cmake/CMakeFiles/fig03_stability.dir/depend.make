# Empty dependencies file for fig03_stability.
# This may be replaced when dependencies are built.
