# Empty dependencies file for ablate_reordering.
# This may be replaced when dependencies are built.
