file(REMOVE_RECURSE
  "../bench/ablate_reordering"
  "../bench/ablate_reordering.pdb"
  "CMakeFiles/ablate_reordering.dir/ablate_reordering.cpp.o"
  "CMakeFiles/ablate_reordering.dir/ablate_reordering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
