# Empty compiler generated dependencies file for fig12_dynamic_precond.
# This may be replaced when dependencies are built.
