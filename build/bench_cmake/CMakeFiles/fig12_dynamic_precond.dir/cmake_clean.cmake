file(REMOVE_RECURSE
  "../bench/fig12_dynamic_precond"
  "../bench/fig12_dynamic_precond.pdb"
  "CMakeFiles/fig12_dynamic_precond.dir/fig12_dynamic_precond.cpp.o"
  "CMakeFiles/fig12_dynamic_precond.dir/fig12_dynamic_precond.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dynamic_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
