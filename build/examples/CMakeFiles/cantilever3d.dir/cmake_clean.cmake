file(REMOVE_RECURSE
  "CMakeFiles/cantilever3d.dir/cantilever3d.cpp.o"
  "CMakeFiles/cantilever3d.dir/cantilever3d.cpp.o.d"
  "cantilever3d"
  "cantilever3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cantilever3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
