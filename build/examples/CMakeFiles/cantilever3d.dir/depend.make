# Empty dependencies file for cantilever3d.
# This may be replaced when dependencies are built.
