# Empty compiler generated dependencies file for static_cantilever.
# This may be replaced when dependencies are built.
