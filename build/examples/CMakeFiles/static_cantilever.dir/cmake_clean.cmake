file(REMOVE_RECURSE
  "CMakeFiles/static_cantilever.dir/static_cantilever.cpp.o"
  "CMakeFiles/static_cantilever.dir/static_cantilever.cpp.o.d"
  "static_cantilever"
  "static_cantilever.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_cantilever.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
