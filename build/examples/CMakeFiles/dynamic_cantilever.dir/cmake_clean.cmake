file(REMOVE_RECURSE
  "CMakeFiles/dynamic_cantilever.dir/dynamic_cantilever.cpp.o"
  "CMakeFiles/dynamic_cantilever.dir/dynamic_cantilever.cpp.o.d"
  "dynamic_cantilever"
  "dynamic_cantilever.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_cantilever.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
