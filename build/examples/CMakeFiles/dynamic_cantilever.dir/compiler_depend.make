# Empty compiler generated dependencies file for dynamic_cantilever.
# This may be replaced when dependencies are built.
