# Empty compiler generated dependencies file for solve_cli.
# This may be replaced when dependencies are built.
