file(REMOVE_RECURSE
  "CMakeFiles/solve_cli.dir/solve_cli.cpp.o"
  "CMakeFiles/solve_cli.dir/solve_cli.cpp.o.d"
  "solve_cli"
  "solve_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solve_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
