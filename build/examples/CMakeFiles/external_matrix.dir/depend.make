# Empty dependencies file for external_matrix.
# This may be replaced when dependencies are built.
