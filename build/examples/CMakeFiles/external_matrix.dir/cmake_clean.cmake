file(REMOVE_RECURSE
  "CMakeFiles/external_matrix.dir/external_matrix.cpp.o"
  "CMakeFiles/external_matrix.dir/external_matrix.cpp.o.d"
  "external_matrix"
  "external_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
