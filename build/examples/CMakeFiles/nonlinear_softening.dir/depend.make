# Empty dependencies file for nonlinear_softening.
# This may be replaced when dependencies are built.
