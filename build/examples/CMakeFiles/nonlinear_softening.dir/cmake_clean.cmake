file(REMOVE_RECURSE
  "CMakeFiles/nonlinear_softening.dir/nonlinear_softening.cpp.o"
  "CMakeFiles/nonlinear_softening.dir/nonlinear_softening.cpp.o.d"
  "nonlinear_softening"
  "nonlinear_softening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonlinear_softening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
