// Gershgorin spectrum bounds (Theorem 1 of the paper).
//
// These power the norm-1 diagonal scaling argument: for the scaled matrix
// A = D K D with d_i = 1/sqrt(||k_i||_1), every Gershgorin disc lies in
// [-1, 1], and for an SPD K the spectrum lands in (0, 1) — which is why
// the polynomial preconditioner can always be built on Θ = (0, 1).
#pragma once

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::sparse {

/// Closed interval.
struct Interval {
  real_t lo;
  real_t hi;
};

/// Upper bound on the largest eigenvalue: max_i ||k_i||_1 (Theorem 1).
[[nodiscard]] real_t gershgorin_lambda_max_bound(const CsrMatrix& a);

/// Full Gershgorin enclosure [min_i (a_ii - r_i), max_i (a_ii + r_i)]
/// where r_i is the off-diagonal absolute row sum.
[[nodiscard]] Interval gershgorin_interval(const CsrMatrix& a);

/// Power iteration estimate of the spectral radius; used in tests to
/// verify that scaling really maps sigma(A) into (0,1) and that
/// rho(I - A) < 1 holds for the Neumann series.
[[nodiscard]] real_t power_method_rho(const CsrMatrix& a, int iters = 200,
                                      std::uint64_t seed = 42);

}  // namespace pfem::sparse
