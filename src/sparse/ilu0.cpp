#include "sparse/ilu0.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pfem::sparse {

Ilu0::Ilu0(const CsrMatrix& a, real_t pivot_tol) : lu_(a) {
  PFEM_CHECK(a.rows() == a.cols());
  const index_t n = lu_.rows();
  const auto row_ptr = lu_.row_ptr();
  const auto col_idx = lu_.col_idx();
  auto values = lu_.values();

  diag_pos_.assign(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      if (col_idx[k] == i) diag_pos_[i] = k;
    PFEM_CHECK_MSG(diag_pos_[i] >= 0,
                   "ILU(0): missing diagonal entry in row " << i);
  }

  // IKJ-variant in-place factorization restricted to the pattern of A.
  // Scratch map: column -> position in current row (or -1).
  IndexVector pos(static_cast<std::size_t>(n), -1);
  for (index_t i = 0; i < n; ++i) {
    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      pos[col_idx[k]] = k;

    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const index_t j = col_idx[k];
      if (j >= i) break;  // only the strictly-lower part is eliminated
      const real_t piv = values[diag_pos_[j]];
      PFEM_CHECK_MSG(std::abs(piv) > pivot_tol,
                     "ILU(0): zero pivot at row "
                         << j << " (singular local matrix — e.g. floating "
                            "subdomain without Dirichlet dofs)");
      const real_t lij = values[k] / piv;
      values[k] = lij;
      // Subtract lij * U(j, j+1:) restricted to the pattern of row i.
      for (index_t kk = diag_pos_[j] + 1; kk < row_ptr[j + 1]; ++kk) {
        const index_t p = pos[col_idx[kk]];
        if (p >= 0) values[p] -= lij * values[kk];
      }
    }
    PFEM_CHECK_MSG(std::abs(values[diag_pos_[i]]) > pivot_tol,
                   "ILU(0): zero pivot at row "
                       << i << " (singular local matrix — e.g. floating "
                          "subdomain without Dirichlet dofs)");

    for (index_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k)
      pos[col_idx[k]] = -1;
  }
}

void Ilu0::solve(std::span<const real_t> v, std::span<real_t> z) const {
  const index_t n = lu_.rows();
  PFEM_CHECK(v.size() == static_cast<std::size_t>(n));
  PFEM_CHECK(z.size() == static_cast<std::size_t>(n));
  const auto row_ptr = lu_.row_ptr();
  const auto col_idx = lu_.col_idx();
  const auto values = lu_.values();

  // Forward: L y = v (unit diagonal).
  for (index_t i = 0; i < n; ++i) {
    real_t s = v[i];
    for (index_t k = row_ptr[i]; k < diag_pos_[i]; ++k)
      s -= values[k] * z[col_idx[k]];
    z[i] = s;
  }
  // Backward: U z = y.
  for (index_t i = n - 1; i >= 0; --i) {
    real_t s = z[i];
    for (index_t k = diag_pos_[i] + 1; k < row_ptr[i + 1]; ++k)
      s -= values[k] * z[col_idx[k]];
    z[i] = s / values[diag_pos_[i]];
  }
}

}  // namespace pfem::sparse
