// Element-by-element (EBE) storage: the matrix-free counterpart of a
// sub-assembled CSR block.  A store keeps each element's dense matrix
// plus its dof ids and applies y += Σ_e B_eᵀ (K_e (B_e x)) by
// gather–multiply–scatter, never forming the assembled operator.
//
// This lives in the sparse layer (not fem) on purpose: the partition and
// kernel layers need the type, and only construction knows anything
// about finite elements.  A store is index-validated once at build time
// — every apply afterwards is guaranteed in-bounds, so the hot loop
// carries no checks beyond the constrained-dof guard.
//
// Scaling contract: scale_symmetric() folds D K D into the stored
// entries with the exact per-entry rounding sequence of
// CsrMatrix::scale_symmetric (t = d_row * d_col rounded first, then
// v * t).  An assembled entry with a single contributing element is
// therefore bit-identical to the eagerly scaled CSR entry; entries
// summed from several elements differ by the reassociation of the
// scaling across the sum (Σv)·t vs Σ(v·t) — within a few ulps, measured
// and bounded by tests/test_kernels.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace pfem::sparse {

/// Largest dofs-per-element an EbeStore accepts: Hex8 elasticity needs
/// 24; 32 leaves headroom for Quad8 3D growth while keeping the apply's
/// gather/scatter scratch on the stack (thread-safe const apply — the
/// TSan jobs run concurrent applies through shared kernels).
inline constexpr index_t kMaxEbeElemDofs = 32;

class EbeStore {
 public:
  EbeStore() = default;

  /// @param n      rows/cols of the (virtual) assembled operator
  /// @param edofs  dofs per element (uniform; the mesh has one type)
  /// @param dof_ids  ne*edofs entries; -1 marks a constrained dof slot
  ///                 (gathers zero, never scattered), anything else must
  ///                 lie in [0, n)
  /// @param values   ne*edofs*edofs entries, element-major, each element
  ///                 row-major
  /// Throws pfem::Error on any shape or index violation — the apply path
  /// relies on this validation for its no-bounds-check hot loop.
  EbeStore(index_t n, index_t edofs, IndexVector dof_ids,
           std::vector<real_t> values);

  [[nodiscard]] index_t rows() const noexcept { return n_; }
  [[nodiscard]] index_t edofs() const noexcept { return edofs_; }
  [[nodiscard]] index_t num_elems() const noexcept { return ne_; }
  [[nodiscard]] std::span<const index_t> dof_ids() const noexcept {
    return dof_ids_;
  }
  [[nodiscard]] std::span<const real_t> values() const noexcept {
    return values_;
  }
  /// Dense entries kept (the storage cost EBE trades for zero assembly).
  [[nodiscard]] std::uint64_t stored_values() const noexcept {
    return values_.size();
  }
  /// Dof ids of one element (edofs entries, -1 = constrained).
  [[nodiscard]] std::span<const index_t> elem_dofs(index_t e) const;

  /// Does element e touch any dof flagged in `mask` (size rows())?
  [[nodiscard]] bool touches(index_t e,
                             std::span<const char> mask) const;

  /// Fold the symmetric diagonal scaling D (size rows()) into the stored
  /// entries: v(r,c) *= d[id_r] * d[id_c], replaying
  /// CsrMatrix::scale_symmetric's rounding sequence entry by entry.
  /// Constrained rows/columns are left untouched (they can never reach
  /// y: a constrained column gathers zero, a constrained row is never
  /// scattered).
  void scale_symmetric(std::span<const real_t> d);

  /// y += Σ_{e in [begin, end)} B_eᵀ (K_e (B_e x)).  ADDITIVE on
  /// purpose: element ranges share rows, so the caller zeroes y before
  /// the first range (unlike the row-split CSR/SELL blocks, which assign
  /// disjoint whole rows).
  void apply_add(index_t begin, index_t end, std::span<const real_t> x,
                 std::span<real_t> y) const;

  /// Multi-RHS form, element-major: each element's matrix is loaded once
  /// and applied to every lane before moving on — the batched service
  /// path's memory-traffic win.  Same additive contract per lane.
  void apply_add_many(index_t begin, index_t end,
                      std::span<const Vector* const> xs,
                      std::span<Vector* const> ys) const;

  /// Copy with elements reordered as order[0], order[1], ... (a
  /// permutation of [0, num_elems)); used to store the interface-coupled
  /// elements contiguously ahead of the interior ones.
  [[nodiscard]] EbeStore permuted(std::span<const index_t> order) const;

  /// Flops of one full apply: 2 per stored entry + gather/scatter.
  [[nodiscard]] std::uint64_t apply_flops() const noexcept {
    return 2 * stored_values() + 2 * dof_ids_.size();
  }

 private:
  index_t n_ = 0;
  index_t edofs_ = 0;
  index_t ne_ = 0;
  IndexVector dof_ids_;         ///< ne * edofs, -1 = constrained
  std::vector<real_t> values_;  ///< ne * edofs^2, element-major row-major
};

}  // namespace pfem::sparse
