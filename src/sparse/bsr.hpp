// 2x2 block CSR (BSR) — a compact-storage SpMV for 2-D vector problems.
//
// Plane-elasticity matrices couple the (u, v) dofs of node pairs, so the
// CSR pattern naturally tiles into dense 2x2 blocks when dofs are
// numbered node-major (as this library's DofMap does away from Dirichlet
// boundaries).  Storing the blocks contiguously halves the index
// metadata and gives the SpMV unit-stride access to 4 values per index
// load — the "compact data structures / predictable access" guidance of
// performance-conscious C++.  bench/micro_kernels measures the win.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::sparse {

/// 2x2-blocked sparse matrix.  Rows/cols must be even; entries that do
/// not fill a whole block are zero-padded (correctness is unaffected).
class Bsr2 {
 public:
  /// Convert from CSR (rows == cols, both even).
  explicit Bsr2(const CsrMatrix& a);

  [[nodiscard]] index_t rows() const noexcept { return 2 * block_rows_; }
  [[nodiscard]] index_t block_rows() const noexcept { return block_rows_; }
  [[nodiscard]] index_t block_nnz() const noexcept {
    return as_index(block_cols_.size());
  }

  /// Stored scalar values (4 per block) — includes padding zeros.
  [[nodiscard]] std::uint64_t stored_values() const noexcept {
    return 4ull * static_cast<std::uint64_t>(block_nnz());
  }

  /// y <- A x
  void spmv(std::span<const real_t> x, std::span<real_t> y) const;

 private:
  index_t block_rows_ = 0;
  IndexVector block_ptr_;   // block_rows + 1
  IndexVector block_cols_;  // block column indices
  Vector values_;           // 4 * block_nnz, row-major within a block
};

}  // namespace pfem::sparse
