#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

// SIMD bodies for the default chunk width (C = 8) on x86-64, selected
// at runtime so the binary still runs on machines without AVX2/AVX-512F.
// Only mul/add intrinsics are used — never FMA — and each SIMD lane
// performs the scalar kernel's exact per-entry rounding sequence, so
// these paths are bit-identical to the portable loops below (and to the
// eagerly scaled CSR kernel; see tests/test_kernels.cpp).
#if defined(__x86_64__) && defined(__GNUC__)
#define PFEM_SELL_X86 1
#include <immintrin.h>
#endif

namespace pfem::sparse {

namespace {

// One chunk-width-templated body per kernel so the compiler sees C as a
// constant and keeps the C accumulators in registers.  The j-loop walks
// each lane's entries in original CSR column order; padded entries carry
// (val=0, col=0) and fold in as +0.0*x[0].
template <int C>
void spmv_chunks(index_t nchunks, const index_t* chunk_ptr,
                 const index_t* slot_row, const index_t* col,
                 const real_t* val, const real_t* x, real_t* y, bool add) {
  for (index_t k = 0; k < nchunks; ++k) {
    const index_t base = chunk_ptr[k];
    const index_t w = (chunk_ptr[k + 1] - base) / C;
    const real_t* v = val + base;
    const index_t* c = col + base;
    real_t acc[C];
    for (int l = 0; l < C; ++l) acc[l] = 0.0;
    for (index_t j = 0; j < w; ++j) {
      const real_t* vj = v + static_cast<std::size_t>(j) * C;
      const index_t* cj = c + static_cast<std::size_t>(j) * C;
      for (int l = 0; l < C; ++l) acc[l] += vj[l] * x[cj[l]];
    }
    const index_t* rows = slot_row + static_cast<std::size_t>(k) * C;
    for (int l = 0; l < C; ++l) {
      if (rows[l] < 0) continue;
      if (add) {
        y[rows[l]] += acc[l];
      } else {
        y[rows[l]] = acc[l];
      }
    }
  }
}

// Fused D A D x: t = d_row*d_col, v' = a*t, acc += v'*x — the exact
// rounding sequence of scale_symmetric() + spmv(), so results match the
// eagerly scaled matrix bit for bit.  Pad lanes use d_row = 0.
template <int C>
void spmv_scaled_chunks(index_t nchunks, const index_t* chunk_ptr,
                        const index_t* slot_row, const index_t* col,
                        const real_t* val, const real_t* d, const real_t* x,
                        real_t* y) {
  for (index_t k = 0; k < nchunks; ++k) {
    const index_t base = chunk_ptr[k];
    const index_t w = (chunk_ptr[k + 1] - base) / C;
    const real_t* v = val + base;
    const index_t* c = col + base;
    const index_t* rows = slot_row + static_cast<std::size_t>(k) * C;
    real_t acc[C];
    real_t dr[C];
    for (int l = 0; l < C; ++l) {
      acc[l] = 0.0;
      dr[l] = rows[l] >= 0 ? d[rows[l]] : 0.0;
    }
    for (index_t j = 0; j < w; ++j) {
      const real_t* vj = v + static_cast<std::size_t>(j) * C;
      const index_t* cj = c + static_cast<std::size_t>(j) * C;
      for (int l = 0; l < C; ++l) {
        const real_t t = dr[l] * d[cj[l]];
        const real_t vv = vj[l] * t;
        acc[l] += vv * x[cj[l]];
      }
    }
    for (int l = 0; l < C; ++l) {
      if (rows[l] >= 0) y[rows[l]] = acc[l];
    }
  }
}

// Generic-width fallback for chunk values outside {4, 8, 16}.
void spmv_chunks_any(int c, index_t nchunks, const index_t* chunk_ptr,
                     const index_t* slot_row, const index_t* col,
                     const real_t* val, const real_t* x, real_t* y,
                     bool add) {
  Vector acc(static_cast<std::size_t>(c));
  for (index_t k = 0; k < nchunks; ++k) {
    const index_t base = chunk_ptr[k];
    const index_t w = (chunk_ptr[k + 1] - base) / c;
    std::fill(acc.begin(), acc.end(), 0.0);
    for (index_t j = 0; j < w; ++j) {
      const real_t* vj = val + base + static_cast<std::size_t>(j) * c;
      const index_t* cj = col + base + static_cast<std::size_t>(j) * c;
      for (int l = 0; l < c; ++l) acc[l] += vj[l] * x[cj[l]];
    }
    const index_t* rows = slot_row + static_cast<std::size_t>(k) * c;
    for (int l = 0; l < c; ++l) {
      if (rows[l] < 0) continue;
      if (add) {
        y[rows[l]] += acc[l];
      } else {
        y[rows[l]] = acc[l];
      }
    }
  }
}

void spmv_scaled_chunks_any(int c, index_t nchunks, const index_t* chunk_ptr,
                            const index_t* slot_row, const index_t* col,
                            const real_t* val, const real_t* d,
                            const real_t* x, real_t* y) {
  Vector acc(static_cast<std::size_t>(c));
  Vector dr(static_cast<std::size_t>(c));
  for (index_t k = 0; k < nchunks; ++k) {
    const index_t base = chunk_ptr[k];
    const index_t w = (chunk_ptr[k + 1] - base) / c;
    const index_t* rows = slot_row + static_cast<std::size_t>(k) * c;
    for (int l = 0; l < c; ++l) {
      acc[l] = 0.0;
      dr[l] = rows[l] >= 0 ? d[rows[l]] : 0.0;
    }
    for (index_t j = 0; j < w; ++j) {
      const real_t* vj = val + base + static_cast<std::size_t>(j) * c;
      const index_t* cj = col + base + static_cast<std::size_t>(j) * c;
      for (int l = 0; l < c; ++l) {
        const real_t t = dr[l] * d[cj[l]];
        const real_t vv = vj[l] * t;
        acc[l] += vv * x[cj[l]];
      }
    }
    for (int l = 0; l < c; ++l) {
      if (rows[l] >= 0) y[rows[l]] = acc[l];
    }
  }
}

#ifdef PFEM_SELL_X86

// GCC's own AVX-512 headers route several intrinsics (zext/insert/
// permute) through _mm512_undefined_pd(), which -Wmaybe-uninitialized
// flags inside every caller.  Known header false positive (GCC PR
// 105593); silence it for the SIMD bodies only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

bool cpu_has_avx2() {
  static const bool b = __builtin_cpu_supports("avx2");
  return b;
}

// Masked-gather wrappers: the plain gather intrinsics leave their source
// operand undefined, which GCC (correctly) flags with -Wmaybe-
// uninitialized; an explicit zero source with an all-ones mask is the
// same operation without the warning.
__attribute__((target("avx2"))) inline __m256d gather4(const real_t* base,
                                                       __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

__attribute__((target("avx512f"))) inline __m256d gather4_avx512(
    const real_t* base, __m128i idx) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), base, idx,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

__attribute__((target("avx512f"))) inline __m512d gather8(const real_t* base,
                                                          __m256i idx) {
  return _mm512_mask_i32gather_pd(_mm512_setzero_pd(), 0xFF, idx, base, 8);
}

bool cpu_has_avx512f() {
  static const bool b = __builtin_cpu_supports("avx512f");
  return b;
}

__attribute__((target("avx2"))) void spmv_chunks8_avx2(
    index_t nchunks, const index_t* chunk_ptr, const index_t* slot_row,
    const index_t* col, const real_t* val, const real_t* x, real_t* y,
    bool add) {
  for (index_t k = 0; k < nchunks; ++k) {
    const index_t base = chunk_ptr[k];
    const index_t w = (chunk_ptr[k + 1] - base) / 8;
    const real_t* v = val + base;
    const index_t* c = col + base;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (index_t j = 0; j < w; ++j) {
      const index_t* cj = c + static_cast<std::size_t>(j) * 8;
      const real_t* vj = v + static_cast<std::size_t>(j) * 8;
      const __m128i i0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cj));
      const __m128i i1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cj + 4));
      const __m256d x0 = gather4(x, i0);
      const __m256d x1 = gather4(x, i1);
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(_mm256_loadu_pd(vj), x0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(_mm256_loadu_pd(vj + 4), x1));
    }
    alignas(32) real_t a[8];
    _mm256_store_pd(a, acc0);
    _mm256_store_pd(a + 4, acc1);
    const index_t* rows = slot_row + static_cast<std::size_t>(k) * 8;
    for (int l = 0; l < 8; ++l) {
      if (rows[l] < 0) continue;
      if (add) {
        y[rows[l]] += a[l];
      } else {
        y[rows[l]] = a[l];
      }
    }
  }
}

__attribute__((target("avx2"))) void spmv_scaled_chunks8_avx2(
    index_t nchunks, const index_t* chunk_ptr, const index_t* slot_row,
    const index_t* col, const real_t* val, const real_t* d, const real_t* x,
    real_t* y) {
  for (index_t k = 0; k < nchunks; ++k) {
    const index_t base = chunk_ptr[k];
    const index_t w = (chunk_ptr[k + 1] - base) / 8;
    const real_t* v = val + base;
    const index_t* c = col + base;
    const index_t* rows = slot_row + static_cast<std::size_t>(k) * 8;
    alignas(32) real_t drbuf[8];
    for (int l = 0; l < 8; ++l) {
      drbuf[l] = rows[l] >= 0 ? d[rows[l]] : 0.0;
    }
    const __m256d dr0 = _mm256_load_pd(drbuf);
    const __m256d dr1 = _mm256_load_pd(drbuf + 4);
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (index_t j = 0; j < w; ++j) {
      const index_t* cj = c + static_cast<std::size_t>(j) * 8;
      const real_t* vj = v + static_cast<std::size_t>(j) * 8;
      const __m128i i0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cj));
      const __m128i i1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(cj + 4));
      // t = d_row*d_col; v' = a*t; acc += v'*x — the scalar sequence.
      const __m256d t0 = _mm256_mul_pd(dr0, gather4(d, i0));
      const __m256d t1 = _mm256_mul_pd(dr1, gather4(d, i1));
      const __m256d vv0 = _mm256_mul_pd(_mm256_loadu_pd(vj), t0);
      const __m256d vv1 = _mm256_mul_pd(_mm256_loadu_pd(vj + 4), t1);
      acc0 = _mm256_add_pd(
          acc0, _mm256_mul_pd(vv0, gather4(x, i0)));
      acc1 = _mm256_add_pd(
          acc1, _mm256_mul_pd(vv1, gather4(x, i1)));
    }
    alignas(32) real_t a[8];
    _mm256_store_pd(a, acc0);
    _mm256_store_pd(a + 4, acc1);
    for (int l = 0; l < 8; ++l) {
      if (rows[l] >= 0) y[rows[l]] = a[l];
    }
  }
}

__attribute__((target("avx512f"))) void spmv_chunks8_avx512(
    index_t nchunks, const index_t* chunk_ptr, const index_t* slot_row,
    const index_t* col, const real_t* val, const char* paired,
    const real_t* x, real_t* y, bool add) {
  // Lane-paired chunks gather each x value once (even lanes only) and
  // broadcast it to both lanes of the pair — half the gather traffic,
  // the dominant cost of this kernel.  Same x values into the same
  // mul/add sequence, so both branches are bit-identical.
  const __m256i kEvens = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m512i kDup = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
  for (index_t k = 0; k < nchunks; ++k) {
    const index_t base = chunk_ptr[k];
    const index_t w = (chunk_ptr[k + 1] - base) / 8;
    const real_t* v = val + base;
    const index_t* c = col + base;
    __m512d acc = _mm512_setzero_pd();
    for (index_t j = 0; j < w; ++j) {
      // Keep the val/col streams ~8 steps ahead of the gathers; the
      // hardware prefetcher alone leaves DRAM bandwidth on the table
      // once the matrix falls out of L2.
      _mm_prefetch(reinterpret_cast<const char*>(
                       v + static_cast<std::size_t>(j + 8) * 8),
                   _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(
                       c + static_cast<std::size_t>(j + 16) * 8),
                   _MM_HINT_T0);
      const __m256i cj = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          c + static_cast<std::size_t>(j) * 8));
      __m512d xg;
      if (paired[k] != 0) {
        const __m128i ce = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(cj, kEvens));
        const __m256d g = gather4_avx512(x, ce);
        xg = _mm512_maskz_permutexvar_pd(0xFF, kDup,
                                         _mm512_zextpd256_pd512(g));
      } else {
        xg = gather8(x, cj);
      }
      const __m512d vj =
          _mm512_loadu_pd(v + static_cast<std::size_t>(j) * 8);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(vj, xg));
    }
    alignas(64) real_t a[8];
    _mm512_store_pd(a, acc);
    const index_t* rows = slot_row + static_cast<std::size_t>(k) * 8;
    for (int l = 0; l < 8; ++l) {
      if (rows[l] < 0) continue;
      if (add) {
        y[rows[l]] += a[l];
      } else {
        y[rows[l]] = a[l];
      }
    }
  }
}

__attribute__((target("avx512f"))) void spmv_scaled_chunks8_avx512(
    index_t nchunks, const index_t* chunk_ptr, const index_t* slot_row,
    const index_t* col, const real_t* val, const char* paired,
    const real_t* d, const real_t* x, real_t* y) {
  const __m256i kEvens = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m512i kDup = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
  for (index_t k = 0; k < nchunks; ++k) {
    const index_t base = chunk_ptr[k];
    const index_t w = (chunk_ptr[k + 1] - base) / 8;
    const real_t* v = val + base;
    const index_t* c = col + base;
    const index_t* rows = slot_row + static_cast<std::size_t>(k) * 8;
    alignas(64) real_t drbuf[8];
    for (int l = 0; l < 8; ++l) {
      drbuf[l] = rows[l] >= 0 ? d[rows[l]] : 0.0;
    }
    const __m512d dr = _mm512_load_pd(drbuf);
    __m512d acc = _mm512_setzero_pd();
    for (index_t j = 0; j < w; ++j) {
      const __m256i cj = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          c + static_cast<std::size_t>(j) * 8));
      const __m512d vj =
          _mm512_loadu_pd(v + static_cast<std::size_t>(j) * 8);
      __m512d dg, xg;
      if (paired[k] != 0) {
        const __m128i ce = _mm256_castsi256_si128(
            _mm256_permutevar8x32_epi32(cj, kEvens));
        dg = _mm512_maskz_permutexvar_pd(
            0xFF, kDup, _mm512_zextpd256_pd512(gather4_avx512(d, ce)));
        xg = _mm512_maskz_permutexvar_pd(
            0xFF, kDup, _mm512_zextpd256_pd512(gather4_avx512(x, ce)));
      } else {
        dg = gather8(d, cj);
        xg = gather8(x, cj);
      }
      // t = d_row*d_col; v' = a*t; acc += v'*x — the scalar sequence.
      const __m512d t = _mm512_mul_pd(dr, dg);
      const __m512d vv = _mm512_mul_pd(vj, t);
      acc = _mm512_add_pd(acc, _mm512_mul_pd(vv, xg));
    }
    alignas(64) real_t a[8];
    _mm512_store_pd(a, acc);
    for (int l = 0; l < 8; ++l) {
      if (rows[l] >= 0) y[rows[l]] = a[l];
    }
  }
}

#pragma GCC diagnostic pop

#endif  // PFEM_SELL_X86

}  // namespace

SellMatrix SellMatrix::from_csr(const CsrMatrix& a, int chunk, int sigma) {
  IndexVector all(static_cast<std::size_t>(a.rows()));
  std::iota(all.begin(), all.end(), index_t{0});
  return from_csr_rows(a, all, chunk, sigma);
}

SellMatrix SellMatrix::from_csr_rows(const CsrMatrix& a,
                                     std::span<const index_t> rows, int chunk,
                                     int sigma) {
  const int c = chunk > 0 ? chunk : kDefaultChunk;
  const int sg = sigma > 0 ? std::max(sigma, c) : 8 * c;
  PFEM_CHECK(c >= 1 && c <= 4096);

  const auto nr = static_cast<index_t>(rows.size());
  for (const index_t r : rows) PFEM_CHECK(r >= 0 && r < a.rows());

  SellMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.stored_rows_ = nr;
  m.c_ = c;
  m.sigma_ = sg;
  m.nchunks_ = (nr + c - 1) / c;

  // σ-window sort: within each window of sg subset positions, stable-sort
  // by descending row length.  Stability keeps equal-length rows in the
  // caller's order, so conversion is deterministic.
  IndexVector order(static_cast<std::size_t>(nr));
  std::iota(order.begin(), order.end(), index_t{0});
  const auto rp = a.row_ptr();
  auto len = [&](index_t i) { return rp[rows[i] + 1] - rp[rows[i]]; };
  for (index_t w0 = 0; w0 < nr; w0 += sg) {
    const index_t w1 = std::min<index_t>(w0 + sg, nr);
    std::stable_sort(order.begin() + w0, order.begin() + w1,
                     [&](index_t i, index_t j) { return len(i) > len(j); });
  }

  const auto nslots = static_cast<std::size_t>(m.nchunks_) * c;
  m.slot_row_.assign(nslots, index_t{-1});
  m.slot_len_.assign(nslots, index_t{0});
  m.chunk_ptr_.assign(static_cast<std::size_t>(m.nchunks_) + 1, index_t{0});
  for (index_t k = 0; k < m.nchunks_; ++k) {
    index_t w = 0;
    for (int l = 0; l < c; ++l) {
      const index_t pos = k * c + l;
      if (pos >= nr) break;
      const index_t row = rows[order[pos]];
      const index_t rl = rp[row + 1] - rp[row];
      m.slot_row_[static_cast<std::size_t>(pos)] = row;
      m.slot_len_[static_cast<std::size_t>(pos)] = rl;
      w = std::max(w, rl);
    }
    m.chunk_ptr_[k + 1] = m.chunk_ptr_[k] + w * c;
  }

  m.col_.assign(static_cast<std::size_t>(m.chunk_ptr_.back()), index_t{0});
  m.val_.assign(static_cast<std::size_t>(m.chunk_ptr_.back()), real_t{0.0});
  const auto ci = a.col_idx();
  const auto av = a.values();
  index_t nnz = 0;
  for (index_t k = 0; k < m.nchunks_; ++k) {
    const index_t base = m.chunk_ptr_[k];
    for (int l = 0; l < c; ++l) {
      const index_t row = m.slot_row_[static_cast<std::size_t>(k) * c + l];
      if (row < 0) continue;
      const index_t rl = rp[row + 1] - rp[row];
      for (index_t j = 0; j < rl; ++j) {
        const auto slot = static_cast<std::size_t>(base + j * c + l);
        m.col_[slot] = ci[rp[row] + j];
        m.val_[slot] = av[rp[row] + j];
      }
      nnz += rl;
    }
  }
  m.nnz_ = nnz;

  // Detect lane-paired chunks (see chunk_paired_ in the header): both
  // lanes of a pair must carry elementwise equal columns across the full
  // padded width, which also makes an all-padding pair (cols all 0)
  // trivially paired and a real/padding mismatch fall back to generic.
  m.chunk_paired_.assign(static_cast<std::size_t>(m.nchunks_), 0);
  if (c % 2 == 0) {
    for (index_t k = 0; k < m.nchunks_; ++k) {
      const index_t base = m.chunk_ptr_[k];
      const index_t w = (m.chunk_ptr_[k + 1] - base) / c;
      bool paired = true;
      for (index_t j = 0; paired && j < w; ++j) {
        const index_t* cj = m.col_.data() + base + j * c;
        for (int s = 0; s + 1 < c; s += 2) {
          if (cj[s] != cj[s + 1]) {
            paired = false;
            break;
          }
        }
      }
      m.chunk_paired_[static_cast<std::size_t>(k)] = paired ? 1 : 0;
    }
  }
  return m;
}

void SellMatrix::spmv(std::span<const real_t> x, std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(cols_));
  PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(rows_));
  switch (c_) {
    case 4:
      spmv_chunks<4>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                     col_.data(), val_.data(), x.data(), y.data(), false);
      break;
    case 8:
#ifdef PFEM_SELL_X86
      if (cpu_has_avx512f()) {
        spmv_chunks8_avx512(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                            col_.data(), val_.data(), chunk_paired_.data(),
                            x.data(), y.data(), false);
        break;
      }
      if (cpu_has_avx2()) {
        spmv_chunks8_avx2(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                          col_.data(), val_.data(), x.data(), y.data(),
                          false);
        break;
      }
#endif
      spmv_chunks<8>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                     col_.data(), val_.data(), x.data(), y.data(), false);
      break;
    case 16:
      spmv_chunks<16>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                      col_.data(), val_.data(), x.data(), y.data(), false);
      break;
    default:
      spmv_chunks_any(c_, nchunks_, chunk_ptr_.data(), slot_row_.data(),
                      col_.data(), val_.data(), x.data(), y.data(), false);
  }
}

void SellMatrix::spmv_add(std::span<const real_t> x,
                          std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(cols_));
  PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(rows_));
  switch (c_) {
    case 4:
      spmv_chunks<4>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                     col_.data(), val_.data(), x.data(), y.data(), true);
      break;
    case 8:
#ifdef PFEM_SELL_X86
      if (cpu_has_avx512f()) {
        spmv_chunks8_avx512(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                            col_.data(), val_.data(), chunk_paired_.data(),
                            x.data(), y.data(), true);
        break;
      }
      if (cpu_has_avx2()) {
        spmv_chunks8_avx2(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                          col_.data(), val_.data(), x.data(), y.data(), true);
        break;
      }
#endif
      spmv_chunks<8>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                     col_.data(), val_.data(), x.data(), y.data(), true);
      break;
    case 16:
      spmv_chunks<16>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                      col_.data(), val_.data(), x.data(), y.data(), true);
      break;
    default:
      spmv_chunks_any(c_, nchunks_, chunk_ptr_.data(), slot_row_.data(),
                      col_.data(), val_.data(), x.data(), y.data(), true);
  }
}

void SellMatrix::spmv_scaled(std::span<const real_t> d,
                             std::span<const real_t> x,
                             std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(d.size() == static_cast<std::size_t>(cols_));
  PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(cols_));
  PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(rows_));
  switch (c_) {
    case 4:
      spmv_scaled_chunks<4>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                            col_.data(), val_.data(), d.data(), x.data(),
                            y.data());
      break;
    case 8:
#ifdef PFEM_SELL_X86
      if (cpu_has_avx512f()) {
        spmv_scaled_chunks8_avx512(nchunks_, chunk_ptr_.data(),
                                   slot_row_.data(), col_.data(), val_.data(),
                                   chunk_paired_.data(), d.data(), x.data(),
                                   y.data());
        break;
      }
      if (cpu_has_avx2()) {
        spmv_scaled_chunks8_avx2(nchunks_, chunk_ptr_.data(),
                                 slot_row_.data(), col_.data(), val_.data(),
                                 d.data(), x.data(), y.data());
        break;
      }
#endif
      spmv_scaled_chunks<8>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                            col_.data(), val_.data(), d.data(), x.data(),
                            y.data());
      break;
    case 16:
      spmv_scaled_chunks<16>(nchunks_, chunk_ptr_.data(), slot_row_.data(),
                             col_.data(), val_.data(), d.data(), x.data(),
                             y.data());
      break;
    default:
      spmv_scaled_chunks_any(c_, nchunks_, chunk_ptr_.data(), slot_row_.data(),
                             col_.data(), val_.data(), d.data(), x.data(),
                             y.data());
  }
}

CsrMatrix SellMatrix::to_csr() const {
  IndexVector row_ptr(static_cast<std::size_t>(rows_) + 1, index_t{0});
  const auto nslots = static_cast<index_t>(slot_row_.size());
  for (index_t s = 0; s < nslots; ++s) {
    if (slot_row_[s] >= 0) row_ptr[slot_row_[s] + 1] = slot_len_[s];
  }
  for (index_t i = 0; i < rows_; ++i) row_ptr[i + 1] += row_ptr[i];

  IndexVector col(static_cast<std::size_t>(row_ptr.back()));
  Vector val(static_cast<std::size_t>(row_ptr.back()));
  for (index_t k = 0; k < nchunks_; ++k) {
    const index_t base = chunk_ptr_[k];
    for (int l = 0; l < c_; ++l) {
      const auto slot = static_cast<std::size_t>(k) * c_ + l;
      const index_t row = slot_row_[slot];
      if (row < 0) continue;
      for (index_t j = 0; j < slot_len_[slot]; ++j) {
        col[row_ptr[row] + j] = col_[base + j * c_ + l];
        val[row_ptr[row] + j] = val_[base + j * c_ + l];
      }
    }
  }
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col),
                   std::move(val));
}

}  // namespace pfem::sparse
