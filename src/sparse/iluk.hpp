// ILU(k): incomplete LU with level-of-fill k (the paper's "ILU(k), where
// k is the level of fill-in", §1/§2.1).
//
// The symbolic phase grows the sparsity pattern by the classical fill
// levels (lev(fill) = lev(i,k) + lev(k,j) + 1, kept while <= k); the
// numeric factorization on the expanded pattern is exactly the ILU(0)
// kernel, so IluK composes the two: `Ilu0(iluk_pattern(a, k))`.
// ILU(0) is recovered at k = 0; increasing k trades memory and solve
// cost for a stronger preconditioner — the sequential baseline family
// the paper compares the polynomials against.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/ilu0.hpp"

namespace pfem::sparse {

/// The matrix A with its pattern symbolically expanded to fill level k
/// (added entries hold value 0).  k = 0 returns A unchanged.
[[nodiscard]] CsrMatrix iluk_pattern(const CsrMatrix& a, int level);

/// Level-k incomplete factorization with the Ilu0 numeric kernel.
class IluK {
 public:
  IluK(const CsrMatrix& a, int level, real_t pivot_tol = 1e-14)
      : level_(level), ilu_(iluk_pattern(a, level), pivot_tol) {}

  void solve(std::span<const real_t> v, std::span<real_t> z) const {
    ilu_.solve(v, z);
  }
  [[nodiscard]] int level() const noexcept { return level_; }
  [[nodiscard]] const CsrMatrix& factors() const noexcept {
    return ilu_.factors();
  }
  [[nodiscard]] index_t fill_nnz() const noexcept {
    return ilu_.factors().nnz();
  }
  [[nodiscard]] std::uint64_t solve_flops() const {
    return ilu_.solve_flops();
  }

 private:
  int level_;
  Ilu0 ilu_;
};

}  // namespace pfem::sparse
