// Coordinate-format accumulator used during finite element assembly.
//
// Elements scatter their local stiffness/mass entries here; `build()`
// sorts, merges duplicates (the FE "assembly" Σ operation), and emits a
// CSR matrix.  This is the only assembly path in the library — the EDD
// solver uses it *per subdomain only*, which is exactly the paper's point:
// interface entries are never merged across processors.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace pfem::sparse {

class CsrMatrix;

/// Triplet accumulator.  add() is O(1); build() is O(nnz log nnz).
class CooBuilder {
 public:
  CooBuilder(index_t rows, index_t cols);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t entry_count() const noexcept { return i_.size(); }

  void reserve(std::size_t nnz);

  /// Append one triplet; duplicates are summed at build() time.
  void add(index_t i, index_t j, real_t v);

  /// Sort + merge duplicates + compress to CSR.
  [[nodiscard]] CsrMatrix build() const;

 private:
  index_t rows_;
  index_t cols_;
  IndexVector i_;
  IndexVector j_;
  Vector v_;
};

}  // namespace pfem::sparse
