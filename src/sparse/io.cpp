#include "sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace pfem::sparse {

void write_matrix_market(std::ostream& os, const CsrMatrix& a) {
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << a.rows() << " " << a.cols() << " " << a.nnz() << "\n";
  os << std::setprecision(17);
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k)
      os << i + 1 << " " << cols[k] + 1 << " " << vals[k] << "\n";
  }
}

void write_matrix_market(const std::string& path, const CsrMatrix& a) {
  std::ofstream os(path);
  PFEM_CHECK_MSG(os.good(), "cannot open " << path << " for writing");
  write_matrix_market(os, a);
}

CsrMatrix read_matrix_market(std::istream& is) {
  std::string line;
  PFEM_CHECK_MSG(std::getline(is, line), "empty MatrixMarket stream");
  std::string lower = line;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  PFEM_CHECK_MSG(lower.rfind("%%matrixmarket", 0) == 0,
                 "missing MatrixMarket banner");
  PFEM_CHECK_MSG(lower.find("coordinate") != std::string::npos,
                 "only coordinate format is supported");
  PFEM_CHECK_MSG(lower.find("real") != std::string::npos ||
                     lower.find("integer") != std::string::npos,
                 "only real/integer fields are supported");
  const bool symmetric = lower.find("symmetric") != std::string::npos;

  // Skip comments.
  while (std::getline(is, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream hdr(line);
  index_t rows = 0, cols = 0;
  long long nnz = 0;
  PFEM_CHECK_MSG(static_cast<bool>(hdr >> rows >> cols >> nnz),
                 "malformed size line");

  CooBuilder coo(rows, cols);
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * nnz : nnz));
  for (long long k = 0; k < nnz; ++k) {
    index_t i = 0, j = 0;
    real_t v = 0.0;
    PFEM_CHECK_MSG(static_cast<bool>(is >> i >> j >> v),
                   "truncated MatrixMarket data at entry " << k);
    PFEM_CHECK_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                   "out-of-range MatrixMarket index at entry " << k);
    coo.add(i - 1, j - 1, v);
    if (symmetric && i != j) coo.add(j - 1, i - 1, v);
  }
  return coo.build();
}

CsrMatrix read_matrix_market(const std::string& path) {
  std::ifstream is(path);
  PFEM_CHECK_MSG(is.good(), "cannot open " << path << " for reading");
  return read_matrix_market(is);
}

}  // namespace pfem::sparse
