// Reverse Cuthill–McKee ordering.
//
// The paper lists "reordering of a matrix to gain parallel performance"
// among the costs the EDD formulation avoids (§1, claim ii).  This module
// provides the classical bandwidth-reducing reordering so that cost/benefit
// can be measured: RCM tightens the band, which strengthens level-0
// incomplete factorizations (bench/ablate_reordering quantifies it).
#pragma once

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::sparse {

/// RCM ordering of the symmetric pattern of A.  Returns `order` with
/// order[k] = the original index placed at position k (a permutation;
/// disconnected components are handled by re-seeding).
[[nodiscard]] IndexVector rcm_ordering(const CsrMatrix& a);

/// Symmetric permutation B = P A Pᵀ: B(k, l) = A(order[k], order[l]).
[[nodiscard]] CsrMatrix permute_symmetric(const CsrMatrix& a,
                                          const IndexVector& order);

/// Matrix bandwidth: max_i max_{j: a_ij != 0} |i - j|.
[[nodiscard]] index_t bandwidth(const CsrMatrix& a);

}  // namespace pfem::sparse
