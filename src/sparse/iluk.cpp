#include "sparse/iluk.hpp"

#include <map>
#include <vector>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace pfem::sparse {

CsrMatrix iluk_pattern(const CsrMatrix& a, int level) {
  PFEM_CHECK(a.rows() == a.cols());
  PFEM_CHECK(level >= 0);
  if (level == 0) return a;
  const index_t n = a.rows();

  // Per processed row: the upper-triangular part (col > row) with its
  // fill level, needed when later rows eliminate against this row.
  std::vector<std::vector<std::pair<index_t, int>>> upper(
      static_cast<std::size_t>(n));

  CooBuilder coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    // Working pattern of row i: col -> level.
    std::map<index_t, int> row;
    {
      const auto cols = a.row_cols(i);
      for (index_t c : cols) row[c] = 0;
    }
    // Walk the strictly-lower entries in ascending column order; fills
    // insert only columns greater than the pivot, so forward iteration
    // over the map stays valid.
    for (auto it = row.begin(); it != row.end() && it->first < i; ++it) {
      const index_t k = it->first;
      const int lev_ik = it->second;
      if (lev_ik >= level) continue;  // cannot spawn fill <= level
      for (const auto& [j, lev_kj] : upper[static_cast<std::size_t>(k)]) {
        const int lev = lev_ik + lev_kj + 1;
        if (lev > level) continue;
        const auto ins = row.emplace(j, lev);
        if (!ins.second && ins.first->second > lev)
          ins.first->second = lev;
      }
    }
    // Emit the pattern (original values, 0 for fill) and record the
    // upper part for later rows.
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    std::size_t p = 0;
    for (const auto& [c, lev] : row) {
      real_t v = 0.0;
      while (p < cols.size() && cols[p] < c) ++p;
      if (p < cols.size() && cols[p] == c) v = vals[p];
      coo.add(i, c, v);
      if (c > i) upper[static_cast<std::size_t>(i)].emplace_back(c, lev);
    }
  }
  return coo.build();
}

}  // namespace pfem::sparse
