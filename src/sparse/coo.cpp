#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "sparse/csr.hpp"

namespace pfem::sparse {

CooBuilder::CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  PFEM_CHECK(rows >= 0 && cols >= 0);
}

void CooBuilder::reserve(std::size_t nnz) {
  i_.reserve(nnz);
  j_.reserve(nnz);
  v_.reserve(nnz);
}

void CooBuilder::add(index_t i, index_t j, real_t v) {
  PFEM_DEBUG_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  i_.push_back(i);
  j_.push_back(j);
  v_.push_back(v);
}

CsrMatrix CooBuilder::build() const {
  const std::size_t n = i_.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (i_[a] != i_[b]) return i_[a] < i_[b];
    return j_[a] < j_[b];
  });

  IndexVector row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  IndexVector col_idx;
  Vector values;
  col_idx.reserve(n);
  values.reserve(n);

  std::size_t k = 0;
  while (k < n) {
    const index_t row = i_[order[k]];
    const index_t col = j_[order[k]];
    real_t sum = 0.0;
    while (k < n && i_[order[k]] == row && j_[order[k]] == col) {
      sum += v_[order[k]];
      ++k;
    }
    col_idx.push_back(col);
    values.push_back(sum);
    ++row_ptr[static_cast<std::size_t>(row) + 1];
  }
  for (index_t r = 0; r < rows_; ++r)
    row_ptr[static_cast<std::size_t>(r) + 1] +=
        row_ptr[static_cast<std::size_t>(r)];

  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace pfem::sparse
