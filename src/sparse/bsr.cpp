#include "sparse/bsr.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pfem::sparse {

Bsr2::Bsr2(const CsrMatrix& a) {
  PFEM_CHECK(a.rows() == a.cols());
  PFEM_CHECK_MSG(a.rows() % 2 == 0, "Bsr2 needs an even dimension");
  block_rows_ = a.rows() / 2;
  block_ptr_.assign(static_cast<std::size_t>(block_rows_) + 1, 0);

  // Pass 1: block columns per block row (sorted, deduplicated).
  std::vector<IndexVector> row_blocks(static_cast<std::size_t>(block_rows_));
  for (index_t br = 0; br < block_rows_; ++br) {
    IndexVector& cols = row_blocks[static_cast<std::size_t>(br)];
    for (index_t r = 2 * br; r <= 2 * br + 1; ++r)
      for (index_t c : a.row_cols(r)) cols.push_back(c / 2);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    block_ptr_[static_cast<std::size_t>(br) + 1] =
        block_ptr_[static_cast<std::size_t>(br)] + as_index(cols.size());
  }
  block_cols_.reserve(static_cast<std::size_t>(block_ptr_.back()));
  for (const IndexVector& cols : row_blocks)
    block_cols_.insert(block_cols_.end(), cols.begin(), cols.end());
  values_.assign(4ull * block_cols_.size(), 0.0);

  // Pass 2: scatter scalar values into their blocks.
  for (index_t br = 0; br < block_rows_; ++br) {
    const index_t begin = block_ptr_[static_cast<std::size_t>(br)];
    const index_t end = block_ptr_[static_cast<std::size_t>(br) + 1];
    for (index_t local_r = 0; local_r < 2; ++local_r) {
      const index_t r = 2 * br + local_r;
      const auto cols = a.row_cols(r);
      const auto vals = a.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t bc = cols[k] / 2;
        const index_t local_c = cols[k] % 2;
        const auto it = std::lower_bound(block_cols_.begin() + begin,
                                         block_cols_.begin() + end, bc);
        const auto pos =
            static_cast<std::size_t>(it - block_cols_.begin());
        values_[4 * pos + 2 * static_cast<std::size_t>(local_r) +
                static_cast<std::size_t>(local_c)] = vals[k];
      }
    }
  }
}

void Bsr2::spmv(std::span<const real_t> x, std::span<real_t> y) const {
  PFEM_CHECK(x.size() == static_cast<std::size_t>(rows()));
  PFEM_CHECK(y.size() == static_cast<std::size_t>(rows()));
  for (index_t br = 0; br < block_rows_; ++br) {
    real_t y0 = 0.0, y1 = 0.0;
    for (index_t k = block_ptr_[br]; k < block_ptr_[br + 1]; ++k) {
      const std::size_t base = 4ull * static_cast<std::size_t>(k);
      const index_t bc = block_cols_[k];
      const real_t x0 = x[2 * static_cast<std::size_t>(bc)];
      const real_t x1 = x[2 * static_cast<std::size_t>(bc) + 1];
      y0 += values_[base] * x0 + values_[base + 1] * x1;
      y1 += values_[base + 2] * x0 + values_[base + 3] * x1;
    }
    y[2 * static_cast<std::size_t>(br)] = y0;
    y[2 * static_cast<std::size_t>(br) + 1] = y1;
  }
}

}  // namespace pfem::sparse
