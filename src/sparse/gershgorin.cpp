#include "sparse/gershgorin.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/vector_ops.hpp"

namespace pfem::sparse {

real_t gershgorin_lambda_max_bound(const CsrMatrix& a) {
  const Vector norms = a.row_norms1();
  real_t m = 0.0;
  for (real_t v : norms) m = std::max(m, v);
  return m;
}

Interval gershgorin_interval(const CsrMatrix& a) {
  PFEM_CHECK(a.rows() == a.cols());
  Interval iv{0.0, 0.0};
  bool first = true;
  for (index_t i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    real_t diag = 0.0, radius = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i)
        diag = vals[k];
      else
        radius += std::abs(vals[k]);
    }
    const real_t lo = diag - radius, hi = diag + radius;
    if (first) {
      iv = {lo, hi};
      first = false;
    } else {
      iv.lo = std::min(iv.lo, lo);
      iv.hi = std::max(iv.hi, hi);
    }
  }
  return iv;
}

real_t power_method_rho(const CsrMatrix& a, int iters, std::uint64_t seed) {
  PFEM_CHECK(a.rows() == a.cols());
  const std::size_t n = static_cast<std::size_t>(a.rows());
  if (n == 0) return 0.0;
  Rng rng(seed);
  Vector x(n), y(n);
  for (real_t& v : x) v = rng.normal();
  real_t norm = la::nrm2(x);
  PFEM_CHECK(norm > 0.0);
  la::scal(1.0 / norm, x);
  real_t lambda = 0.0;
  for (int it = 0; it < iters; ++it) {
    a.spmv(x, y);
    lambda = la::nrm2(y);
    if (lambda == 0.0) return 0.0;
    la::scal(1.0 / lambda, y);
    std::swap(x, y);
  }
  return lambda;
}

}  // namespace pfem::sparse
