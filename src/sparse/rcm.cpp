#include "sparse/rcm.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"
#include "sparse/coo.hpp"

namespace pfem::sparse {

IndexVector rcm_ordering(const CsrMatrix& a) {
  PFEM_CHECK(a.rows() == a.cols());
  const index_t n = a.rows();
  IndexVector degree(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    degree[static_cast<std::size_t>(i)] = as_index(a.row_cols(i).size());

  IndexVector order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  IndexVector nbrs;

  while (as_index(order.size()) < n) {
    // Seed: unvisited vertex of minimum degree (pseudo-peripheral).
    index_t seed = -1;
    for (index_t i = 0; i < n; ++i) {
      if (visited[static_cast<std::size_t>(i)]) continue;
      if (seed < 0 || degree[static_cast<std::size_t>(i)] <
                          degree[static_cast<std::size_t>(seed)])
        seed = i;
    }
    std::deque<index_t> queue{seed};
    visited[static_cast<std::size_t>(seed)] = true;
    while (!queue.empty()) {
      const index_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      nbrs.clear();
      for (index_t u : a.row_cols(v))
        if (u != v && !visited[static_cast<std::size_t>(u)]) {
          nbrs.push_back(u);
          visited[static_cast<std::size_t>(u)] = true;
        }
      std::sort(nbrs.begin(), nbrs.end(), [&](index_t x, index_t y) {
        return degree[static_cast<std::size_t>(x)] <
               degree[static_cast<std::size_t>(y)];
      });
      for (index_t u : nbrs) queue.push_back(u);
    }
  }
  std::reverse(order.begin(), order.end());  // the "reverse" in RCM
  return order;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, const IndexVector& order) {
  PFEM_CHECK(a.rows() == a.cols());
  PFEM_CHECK(order.size() == static_cast<std::size_t>(a.rows()));
  const index_t n = a.rows();
  IndexVector inv(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    PFEM_CHECK(order[static_cast<std::size_t>(k)] >= 0 &&
               order[static_cast<std::size_t>(k)] < n);
    PFEM_CHECK_MSG(inv[static_cast<std::size_t>(
                       order[static_cast<std::size_t>(k)])] == -1,
                   "order is not a permutation");
    inv[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] = k;
  }
  CooBuilder coo(n, n);
  coo.reserve(static_cast<std::size_t>(a.nnz()));
  for (index_t k = 0; k < n; ++k) {
    const index_t i = order[static_cast<std::size_t>(k)];
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t)
      coo.add(k, inv[static_cast<std::size_t>(cols[t])], vals[t]);
  }
  return coo.build();
}

index_t bandwidth(const CsrMatrix& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j : a.row_cols(i))
      bw = std::max(bw, j > i ? j - i : i - j);
  return bw;
}

}  // namespace pfem::sparse
