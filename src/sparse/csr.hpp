// Compressed sparse row matrix — the workhorse storage of the library.
//
// Everything the paper's kernels need lives here: SpMV (Eq. 37 locally,
// Eq. 48 for RDD), norm-1 row sums for the diagonal scaling (Theorem 1 /
// Algorithm 3), symmetric scaling A = D K D (Eq. 11), and submatrix
// extraction for subdomain/RDD block construction.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace pfem::sparse {

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Takes ownership of fully formed CSR arrays.  Column indices must be
  /// strictly increasing within each row.
  CsrMatrix(index_t rows, index_t cols, IndexVector row_ptr,
            IndexVector col_idx, Vector values);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }

  [[nodiscard]] std::span<const index_t> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const index_t> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const real_t> values() const { return values_; }
  [[nodiscard]] std::span<real_t> values() { return values_; }

  /// Column indices / values of row i.
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const;
  [[nodiscard]] std::span<const real_t> row_vals(index_t i) const;

  /// y <- A x
  void spmv(std::span<const real_t> x, std::span<real_t> y) const;

  /// y <- y + alpha * A x
  void spmv_add(std::span<const real_t> x, std::span<real_t> y,
                real_t alpha = 1.0) const;

  /// Entry lookup (binary search within the row); 0 if not stored.
  [[nodiscard]] real_t at(index_t i, index_t j) const;

  /// Main diagonal (0 where absent).
  [[nodiscard]] Vector diagonal() const;

  /// d_i = ||k_i||_1 = sum_j |a_ij|  (Theorem 1 row norms).
  [[nodiscard]] Vector row_norms1() const;

  /// A <- diag(d) * A * diag(d)  — the symmetric norm-1 scaling (Eq. 11).
  void scale_symmetric(std::span<const real_t> d);

  /// A <- A + alpha * B for B with identical sparsity pattern; throws if
  /// patterns differ.  Used to form the dynamic effective stiffness
  /// K_eff = K + a0*M without re-assembly.
  void add_same_pattern(const CsrMatrix& b, real_t alpha);

  /// A^T (also used to verify symmetry).
  [[nodiscard]] CsrMatrix transposed() const;

  /// max_{ij} |A_ij - (A^T)_ij| — symmetry defect.
  [[nodiscard]] real_t symmetry_defect() const;

  /// Extract the square submatrix on `rows_keep` (global->local order as
  /// given).  Entries whose column is outside the set are dropped.
  [[nodiscard]] CsrMatrix extract_square(std::span<const index_t> rows_keep)
      const;

  /// Flops of one SpMV: 2*nnz.
  [[nodiscard]] std::uint64_t spmv_flops() const {
    return 2ull * static_cast<std::uint64_t>(nnz());
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  IndexVector row_ptr_;
  IndexVector col_idx_;
  Vector values_;
};

/// n x n identity in CSR.
[[nodiscard]] CsrMatrix csr_identity(index_t n);

}  // namespace pfem::sparse
