#include "sparse/ebe_store.hpp"

#include <utility>

#include "common/error.hpp"

namespace pfem::sparse {

EbeStore::EbeStore(index_t n, index_t edofs, IndexVector dof_ids,
                   std::vector<real_t> values)
    : n_(n), edofs_(edofs) {
  PFEM_CHECK_MSG(n >= 0, "EbeStore: negative dimension " << n);
  PFEM_CHECK_MSG(edofs >= 1 && edofs <= kMaxEbeElemDofs,
                 "EbeStore: dofs per element " << edofs
                 << " outside [1, " << kMaxEbeElemDofs << "]");
  PFEM_CHECK_MSG(dof_ids.size() % static_cast<std::size_t>(edofs) == 0,
                 "EbeStore: dof_ids size " << dof_ids.size()
                 << " is not a multiple of edofs " << edofs);
  ne_ = as_index(dof_ids.size() / static_cast<std::size_t>(edofs));
  PFEM_CHECK_MSG(
      values.size() == static_cast<std::size_t>(ne_) *
                           static_cast<std::size_t>(edofs) * edofs,
      "EbeStore: values size " << values.size() << " != ne*edofs^2 = "
      << static_cast<std::size_t>(ne_) * static_cast<std::size_t>(edofs) *
             edofs);
  for (const index_t id : dof_ids)
    PFEM_CHECK_MSG(id == -1 || (id >= 0 && id < n),
                   "EbeStore: dof id " << id << " outside [0, " << n
                   << ") and not the constrained marker -1");
  dof_ids_ = std::move(dof_ids);
  values_ = std::move(values);
}

std::span<const index_t> EbeStore::elem_dofs(index_t e) const {
  PFEM_CHECK(e >= 0 && e < ne_);
  return {dof_ids_.data() + static_cast<std::size_t>(e) * edofs_,
          static_cast<std::size_t>(edofs_)};
}

bool EbeStore::touches(index_t e, std::span<const char> mask) const {
  PFEM_DEBUG_CHECK(mask.size() == static_cast<std::size_t>(n_));
  for (const index_t id : elem_dofs(e))
    if (id >= 0 && mask[static_cast<std::size_t>(id)] != 0) return true;
  return false;
}

void EbeStore::scale_symmetric(std::span<const real_t> d) {
  PFEM_CHECK(d.size() == static_cast<std::size_t>(n_));
  for (index_t e = 0; e < ne_; ++e) {
    const index_t* ids =
        dof_ids_.data() + static_cast<std::size_t>(e) * edofs_;
    real_t* ke = values_.data() +
                 static_cast<std::size_t>(e) * edofs_ * edofs_;
    for (index_t r = 0; r < edofs_; ++r) {
      if (ids[r] < 0) continue;
      const real_t dr = d[static_cast<std::size_t>(ids[r])];
      real_t* row = ke + static_cast<std::size_t>(r) * edofs_;
      for (index_t c = 0; c < edofs_; ++c) {
        if (ids[c] < 0) continue;
        // Same rounding sequence as CsrMatrix::scale_symmetric: the
        // product d_r * d_c rounds first, then scales the entry.
        row[c] *= dr * d[static_cast<std::size_t>(ids[c])];
      }
    }
  }
}

void EbeStore::apply_add(index_t begin, index_t end,
                         std::span<const real_t> x,
                         std::span<real_t> y) const {
  PFEM_DEBUG_CHECK(begin >= 0 && begin <= end && end <= ne_);
  PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(n_));
  PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(n_));
  // Stack scratch: bounded by the constructor's edofs check, and local
  // to the call so concurrent applies through a shared const store never
  // race (the EddRank no-allocation buffer discipline, without buffers).
  real_t xe[kMaxEbeElemDofs];
  real_t ye[kMaxEbeElemDofs];
  const auto ed = static_cast<std::size_t>(edofs_);
  for (index_t e = begin; e < end; ++e) {
    const index_t* ids = dof_ids_.data() + static_cast<std::size_t>(e) * ed;
    const real_t* ke = values_.data() + static_cast<std::size_t>(e) * ed * ed;
    // Gather (constrained dofs contribute zero).
    for (std::size_t k = 0; k < ed; ++k)
      xe[k] = ids[k] >= 0 ? x[static_cast<std::size_t>(ids[k])] : 0.0;
    // Dense multiply.
    for (std::size_t r = 0; r < ed; ++r) {
      real_t s = 0.0;
      const real_t* row = ke + r * ed;
      for (std::size_t c = 0; c < ed; ++c) s += row[c] * xe[c];
      ye[r] = s;
    }
    // Scatter-add (constrained rows never land).
    for (std::size_t k = 0; k < ed; ++k)
      if (ids[k] >= 0) y[static_cast<std::size_t>(ids[k])] += ye[k];
  }
}

void EbeStore::apply_add_many(index_t begin, index_t end,
                              std::span<const Vector* const> xs,
                              std::span<Vector* const> ys) const {
  PFEM_DEBUG_CHECK(begin >= 0 && begin <= end && end <= ne_);
  PFEM_DEBUG_CHECK(xs.size() == ys.size());
  real_t xe[kMaxEbeElemDofs];
  real_t ye[kMaxEbeElemDofs];
  const auto ed = static_cast<std::size_t>(edofs_);
  const std::size_t nb = xs.size();
  for (index_t e = begin; e < end; ++e) {
    const index_t* ids = dof_ids_.data() + static_cast<std::size_t>(e) * ed;
    const real_t* ke = values_.data() + static_cast<std::size_t>(e) * ed * ed;
    // Element-major: K_e stays hot across every lane.
    for (std::size_t b = 0; b < nb; ++b) {
      const Vector& x = *xs[b];
      Vector& y = *ys[b];
      for (std::size_t k = 0; k < ed; ++k)
        xe[k] = ids[k] >= 0 ? x[static_cast<std::size_t>(ids[k])] : 0.0;
      for (std::size_t r = 0; r < ed; ++r) {
        real_t s = 0.0;
        const real_t* row = ke + r * ed;
        for (std::size_t c = 0; c < ed; ++c) s += row[c] * xe[c];
        ye[r] = s;
      }
      for (std::size_t k = 0; k < ed; ++k)
        if (ids[k] >= 0) y[static_cast<std::size_t>(ids[k])] += ye[k];
    }
  }
}

EbeStore EbeStore::permuted(std::span<const index_t> order) const {
  PFEM_CHECK_MSG(order.size() == static_cast<std::size_t>(ne_),
                 "EbeStore::permuted: order size " << order.size()
                 << " != num_elems " << ne_);
  IndexVector ids(dof_ids_.size());
  std::vector<real_t> vals(values_.size());
  const auto ed = static_cast<std::size_t>(edofs_);
  std::vector<char> seen(static_cast<std::size_t>(ne_), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const index_t e = order[i];
    PFEM_CHECK_MSG(e >= 0 && e < ne_ && seen[static_cast<std::size_t>(e)] == 0,
                   "EbeStore::permuted: order is not a permutation");
    seen[static_cast<std::size_t>(e)] = 1;
    for (std::size_t k = 0; k < ed; ++k)
      ids[i * ed + k] = dof_ids_[static_cast<std::size_t>(e) * ed + k];
    for (std::size_t k = 0; k < ed * ed; ++k)
      vals[i * ed * ed + k] = values_[static_cast<std::size_t>(e) * ed * ed + k];
  }
  return EbeStore(n_, edofs_, std::move(ids), std::move(vals));
}

}  // namespace pfem::sparse
