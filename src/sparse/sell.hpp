// SELL-C-σ sliced-ELLPACK matrix — the vectorized SpMV storage.
//
// Rows are grouped into chunks of C consecutive slots; within a chunk the
// entries are stored column-major (slot j of lane l lives at
// base + j*C + l), so one inner-loop step advances C independent row
// accumulators with unit-stride loads — the layout AMGCL-style backends
// use to get SIMD out of FE matrices whose rows are too short for
// row-wise vectorization.  Within windows of σ rows a stable sort by
// descending row length packs similar-length rows into the same chunk to
// bound zero padding; the slot→row permutation is stored and results are
// scattered back, so callers never see the reordering.
//
// Bit-identity contract (what the solvers rely on): every row's partial
// sums are accumulated in the ORIGINAL CSR column order, one add per
// stored entry, exactly like the scalar CSR loop — the σ permutation
// moves whole rows between slots and never reassociates a row's sum, so
// spmv() is bit-identical to CsrMatrix::spmv for finite inputs.  Padded
// slots contribute `+ 0.0 * x[0]`, which is exact for finite x.
//
// spmv_scaled() fuses the paper's norm-1 symmetric scaling (Eq. 11) into
// the kernel: per entry it forms t = d_row*d_col, v' = a*t, acc += v'*x —
// the same three roundings scale_symmetric() followed by spmv() performs,
// so the fused apply is bit-identical to scaling eagerly.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::sparse {

class SellMatrix {
 public:
  SellMatrix() = default;

  /// Convert a full CSR matrix.  chunk/sigma of 0 pick platform defaults
  /// (C=8, σ=8C); chunk must be one of the vector-friendly widths the
  /// kernel templates cover ({4, 8, 16}) or any other positive value for
  /// the generic fallback path.
  [[nodiscard]] static SellMatrix from_csr(const CsrMatrix& a, int chunk = 0,
                                           int sigma = 0);

  /// Convert only the given rows of `a` (each id in [0, a.rows())); the
  /// kernels scatter results to the ORIGINAL row ids, so a row-subset
  /// block can write straight into a full-length y.  Used by the
  /// interior/interface split operator.
  [[nodiscard]] static SellMatrix from_csr_rows(const CsrMatrix& a,
                                                std::span<const index_t> rows,
                                                int chunk = 0, int sigma = 0);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nnz() const noexcept { return nnz_; }
  [[nodiscard]] index_t stored_rows() const noexcept { return stored_rows_; }
  [[nodiscard]] int chunk() const noexcept { return c_; }
  [[nodiscard]] int sigma() const noexcept { return sigma_; }
  /// Stored entries including zero padding (padding ratio diagnostics).
  [[nodiscard]] index_t padded_nnz() const noexcept {
    return chunk_ptr_.empty() ? 0 : chunk_ptr_.back();
  }
  /// Slot -> original row id permutation; -1 marks a padding slot.
  [[nodiscard]] std::span<const index_t> slot_row() const { return slot_row_; }
  /// Chunks whose lane pairs (2s, 2s+1) carry identical column patterns
  /// — vector-dof FE rows — and qualify for the half-gather kernel.
  [[nodiscard]] index_t paired_chunks() const noexcept {
    index_t n = 0;
    for (const char p : chunk_paired_) n += p;
    return n;
  }

  /// y[r] <- (A x)_r for every stored row r; other entries of y are
  /// untouched.  Bit-identical to the scalar CSR row loop.
  void spmv(std::span<const real_t> x, std::span<real_t> y) const;

  /// y[r] <- y[r] + (A x)_r for every stored row r.
  void spmv_add(std::span<const real_t> x, std::span<real_t> y) const;

  /// y[r] <- (D A D x)_r — the norm-1 scaling fused into the kernel; `a`
  /// must be the UNSCALED matrix and d the scaling diagonal (length
  /// cols()).  Bit-identical to scale_symmetric(d) followed by spmv().
  void spmv_scaled(std::span<const real_t> d, std::span<const real_t> x,
                   std::span<real_t> y) const;

  /// Round-trip back to CSR in original row order (identity on from_csr
  /// input; subset rows of from_csr_rows input, others empty).
  [[nodiscard]] CsrMatrix to_csr() const;

  /// Flops of one SpMV over the stored rows: 2*nnz (padding excluded).
  [[nodiscard]] std::uint64_t spmv_flops() const {
    return 2ull * static_cast<std::uint64_t>(nnz_);
  }

  /// Platform default chunk width (rows per slice).
  static constexpr int kDefaultChunk = 8;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nnz_ = 0;
  index_t stored_rows_ = 0;
  int c_ = 0;
  int sigma_ = 0;
  index_t nchunks_ = 0;
  IndexVector chunk_ptr_;  ///< nchunks_+1 entry offsets (chunk k spans w*C)
  IndexVector slot_row_;   ///< nchunks_*C original row per lane, -1 = pad
  IndexVector slot_len_;   ///< nchunks_*C true row length per lane
  IndexVector col_;        ///< padded, column-major per chunk
  Vector val_;             ///< padded, column-major per chunk
  /// Per-chunk flag: every lane pair (2s, 2s+1) has elementwise equal
  /// column indices across the chunk width.  True for the interleaved
  /// dof pairs of vector-valued FE problems (both dofs of a node see
  /// the same neighbors); lets the SIMD kernels gather each x value
  /// once and broadcast it to both lanes — same values, same mul/add
  /// sequence, so still bit-identical.
  std::vector<char> chunk_paired_;
};

}  // namespace pfem::sparse
