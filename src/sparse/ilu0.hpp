// ILU(0) — incomplete LU with zero fill-in (paper's sequential baseline).
//
// The paper compares polynomial preconditioning against ILU(0) (Figs. 11,
// 12) and argues that in the EDD setting local ILU(0) can fail outright:
// a "floating" subdomain (no Dirichlet dofs) has a singular local
// stiffness and the factorization hits a zero pivot (§3.2.3, Eq. 45).
// That failure mode is surfaced here as a pfem::Error carrying the pivot
// row, and is exercised directly by tests/bench.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::sparse {

/// ILU(0) factorization on the sparsity pattern of A.
class Ilu0 {
 public:
  /// Factor A ≈ L U with no fill-in.  Throws pfem::Error on a zero (or
  /// numerically tiny) pivot — e.g. a floating-subdomain local matrix.
  explicit Ilu0(const CsrMatrix& a, real_t pivot_tol = 1e-14);

  /// z <- (LU)^{-1} v  (forward + backward substitution).
  void solve(std::span<const real_t> v, std::span<real_t> z) const;

  /// Combined factor (unit lower L strictly below diagonal, U on/above).
  [[nodiscard]] const CsrMatrix& factors() const noexcept { return lu_; }

  /// Flops of one solve: ~2*nnz.
  [[nodiscard]] std::uint64_t solve_flops() const {
    return 2ull * static_cast<std::uint64_t>(lu_.nnz());
  }

 private:
  CsrMatrix lu_;
  IndexVector diag_pos_;  // index of the diagonal entry within each row
};

}  // namespace pfem::sparse
