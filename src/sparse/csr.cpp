#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pfem::sparse {

CsrMatrix::CsrMatrix(index_t rows, index_t cols, IndexVector row_ptr,
                     IndexVector col_idx, Vector values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)), values_(std::move(values)) {
  PFEM_CHECK(rows >= 0 && cols >= 0);
  PFEM_CHECK(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1);
  PFEM_CHECK(col_idx_.size() == values_.size());
  PFEM_CHECK(row_ptr_.front() == 0);
  PFEM_CHECK(static_cast<std::size_t>(row_ptr_.back()) == col_idx_.size());
#ifndef NDEBUG
  for (index_t i = 0; i < rows_; ++i) {
    PFEM_CHECK(row_ptr_[i] <= row_ptr_[i + 1]);
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      PFEM_CHECK(col_idx_[k] >= 0 && col_idx_[k] < cols_);
      if (k > row_ptr_[i]) PFEM_CHECK(col_idx_[k - 1] < col_idx_[k]);
    }
  }
#endif
}

std::span<const index_t> CsrMatrix::row_cols(index_t i) const {
  PFEM_DEBUG_CHECK(i >= 0 && i < rows_);
  return {col_idx_.data() + row_ptr_[i],
          static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
}

std::span<const real_t> CsrMatrix::row_vals(index_t i) const {
  PFEM_DEBUG_CHECK(i >= 0 && i < rows_);
  return {values_.data() + row_ptr_[i],
          static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
}

void CsrMatrix::spmv(std::span<const real_t> x, std::span<real_t> y) const {
  // Hot path: spmv runs m-deep inside every polynomial apply, so span
  // validation is debug-only here — callers (operator build, kernel
  // setup) establish the sizes once with checks that stay on in release.
  PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(cols_));
  PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i) {
    real_t s = 0.0;
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      s += values_[k] * x[col_idx_[k]];
    y[i] = s;
  }
}

void CsrMatrix::spmv_add(std::span<const real_t> x, std::span<real_t> y,
                         real_t alpha) const {
  PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(cols_));
  PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i) {
    real_t s = 0.0;
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      s += values_[k] * x[col_idx_[k]];
    y[i] += alpha * s;
  }
}

real_t CsrMatrix::at(index_t i, index_t j) const {
  PFEM_DEBUG_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  const auto cols = row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return row_vals(i)[static_cast<std::size_t>(it - cols.begin())];
}

Vector CsrMatrix::diagonal() const {
  Vector d(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = 0; i < std::min(rows_, cols_); ++i) d[i] = at(i, i);
  return d;
}

Vector CsrMatrix::row_norms1() const {
  Vector d(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    real_t s = 0.0;
    for (real_t v : row_vals(i)) s += std::abs(v);
    d[i] = s;
  }
  return d;
}

void CsrMatrix::scale_symmetric(std::span<const real_t> d) {
  PFEM_CHECK(rows_ == cols_);
  PFEM_CHECK(d.size() == static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i)
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      values_[k] *= d[i] * d[col_idx_[k]];
}

void CsrMatrix::add_same_pattern(const CsrMatrix& b, real_t alpha) {
  PFEM_CHECK_MSG(rows_ == b.rows_ && cols_ == b.cols_ &&
                     row_ptr_ == b.row_ptr_ && col_idx_ == b.col_idx_,
                 "add_same_pattern requires identical sparsity");
  for (std::size_t k = 0; k < values_.size(); ++k)
    values_[k] += alpha * b.values_[k];
}

CsrMatrix CsrMatrix::transposed() const {
  IndexVector row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (index_t c : col_idx_) ++row_ptr[static_cast<std::size_t>(c) + 1];
  for (index_t j = 0; j < cols_; ++j)
    row_ptr[static_cast<std::size_t>(j) + 1] +=
        row_ptr[static_cast<std::size_t>(j)];
  IndexVector col_idx(col_idx_.size());
  Vector values(values_.size());
  IndexVector next(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const index_t j = col_idx_[k];
      const index_t pos = next[j]++;
      col_idx[pos] = i;
      values[pos] = values_[k];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

real_t CsrMatrix::symmetry_defect() const {
  PFEM_CHECK(rows_ == cols_);
  const CsrMatrix t = transposed();
  real_t m = 0.0;
  for (index_t i = 0; i < rows_; ++i) {
    // Merge-walk row i of A and A^T.
    const auto ca = row_cols(i);
    const auto va = row_vals(i);
    const auto cb = t.row_cols(i);
    const auto vb = t.row_vals(i);
    std::size_t a = 0, b = 0;
    while (a < ca.size() || b < cb.size()) {
      if (b == cb.size() || (a < ca.size() && ca[a] < cb[b])) {
        m = std::max(m, std::abs(va[a]));
        ++a;
      } else if (a == ca.size() || cb[b] < ca[a]) {
        m = std::max(m, std::abs(vb[b]));
        ++b;
      } else {
        m = std::max(m, std::abs(va[a] - vb[b]));
        ++a;
        ++b;
      }
    }
  }
  return m;
}

CsrMatrix CsrMatrix::extract_square(
    std::span<const index_t> rows_keep) const {
  PFEM_CHECK(rows_ == cols_);
  IndexVector global_to_local(static_cast<std::size_t>(rows_), -1);
  for (std::size_t l = 0; l < rows_keep.size(); ++l) {
    PFEM_CHECK(rows_keep[l] >= 0 && rows_keep[l] < rows_);
    global_to_local[rows_keep[l]] = as_index(l);
  }
  const index_t n = as_index(rows_keep.size());
  IndexVector row_ptr(static_cast<std::size_t>(n) + 1, 0);
  IndexVector col_idx;
  Vector values;
  for (index_t li = 0; li < n; ++li) {
    const index_t gi = rows_keep[li];
    for (index_t k = row_ptr_[gi]; k < row_ptr_[gi + 1]; ++k) {
      const index_t lj = global_to_local[col_idx_[k]];
      if (lj < 0) continue;
      col_idx.push_back(lj);
      values.push_back(values_[k]);
    }
    row_ptr[static_cast<std::size_t>(li) + 1] = as_index(col_idx.size());
  }
  // Columns within a row keep global order; re-sort to local order.
  for (index_t li = 0; li < n; ++li) {
    const index_t b = row_ptr[li], e = row_ptr[li + 1];
    std::vector<std::pair<index_t, real_t>> tmp;
    tmp.reserve(static_cast<std::size_t>(e - b));
    for (index_t k = b; k < e; ++k) tmp.emplace_back(col_idx[k], values[k]);
    std::sort(tmp.begin(), tmp.end());
    for (index_t k = b; k < e; ++k) {
      col_idx[k] = tmp[static_cast<std::size_t>(k - b)].first;
      values[k] = tmp[static_cast<std::size_t>(k - b)].second;
    }
  }
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix csr_identity(index_t n) {
  IndexVector row_ptr(static_cast<std::size_t>(n) + 1);
  IndexVector col_idx(static_cast<std::size_t>(n));
  Vector values(static_cast<std::size_t>(n), 1.0);
  for (index_t i = 0; i <= n; ++i) row_ptr[i] = i;
  for (index_t i = 0; i < n; ++i) col_idx[i] = i;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace pfem::sparse
