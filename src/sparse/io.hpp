// MatrixMarket coordinate I/O.
//
// Lets users feed external systems into the solver stack and lets the
// examples dump assembled FE matrices for inspection with standard tools.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace pfem::sparse {

/// Write A in MatrixMarket coordinate format ("%%MatrixMarket matrix
/// coordinate real general").
void write_matrix_market(std::ostream& os, const CsrMatrix& a);
void write_matrix_market(const std::string& path, const CsrMatrix& a);

/// Read a MatrixMarket coordinate file (real, general or symmetric —
/// symmetric storage is expanded).  Throws pfem::Error on malformed input.
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& is);
[[nodiscard]] CsrMatrix read_matrix_market(const std::string& path);

}  // namespace pfem::sparse
