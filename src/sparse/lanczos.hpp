// Lanczos spectrum estimation.
//
// The paper notes (§2.1) that "the accuracy of Θ determines the rate of
// convergence of the preconditioned systems" and that σ(K) "is generally
// difficult to compute" while "an approximate estimation to it can be
// easily obtained".  This module provides that estimation: a k-step
// Lanczos process whose extreme Ritz values bracket λ_min/λ_max of a
// symmetric matrix, enabling an *adaptive* Θ that is tighter than the
// always-valid post-scaling default (ε, 1) (cf. Fig. 10's sensitivity).
#pragma once

#include "common/types.hpp"
#include "sparse/csr.hpp"
#include "sparse/gershgorin.hpp"

namespace pfem::sparse {

struct LanczosResult {
  Vector alphas;       ///< tridiagonal diagonal (k entries)
  Vector betas;        ///< tridiagonal off-diagonal (k-1 entries)
  Vector ritz_values;  ///< eigenvalues of T_k, ascending
  int steps = 0;       ///< actual steps taken (may stop early on breakdown)
};

/// k-step Lanczos with full re-orthogonalization (robust for the small k
/// used in spectrum estimation).  A must be symmetric.
[[nodiscard]] LanczosResult lanczos(const CsrMatrix& a, int k,
                                    std::uint64_t seed = 1);

/// Estimate [λ_min, λ_max] from the extreme Ritz values, widened by the
/// multiplicative `safety` margin (Ritz values lie *inside* the true
/// spectrum).  λ_min is clamped positive for SPD use.
[[nodiscard]] Interval estimate_spectrum(const CsrMatrix& a, int steps = 30,
                                         real_t safety = 1.1,
                                         std::uint64_t seed = 1);

}  // namespace pfem::sparse
