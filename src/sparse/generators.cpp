#include "sparse/generators.hpp"

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/coo.hpp"

namespace pfem::sparse {

CsrMatrix laplace2d(index_t nx, index_t ny) {
  PFEM_CHECK(nx >= 1 && ny >= 1);
  const index_t n = nx * ny;
  CooBuilder coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 5);
  auto id = [nx](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = id(i, j);
      coo.add(row, row, 4.0);
      if (i > 0) coo.add(row, id(i - 1, j), -1.0);
      if (i + 1 < nx) coo.add(row, id(i + 1, j), -1.0);
      if (j > 0) coo.add(row, id(i, j - 1), -1.0);
      if (j + 1 < ny) coo.add(row, id(i, j + 1), -1.0);
    }
  }
  return coo.build();
}

CsrMatrix random_spd(index_t n, index_t per_row, real_t margin,
                     std::uint64_t seed) {
  PFEM_CHECK(n >= 1 && per_row >= 0 && margin > 0.0);
  Rng rng(seed);
  CooBuilder coo(n, n);
  // Build the strictly-upper part, mirror it, then add a dominant diagonal.
  Vector rowsum(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    std::set<index_t> cols;
    for (index_t k = 0; k < per_row; ++k) {
      if (i + 1 >= n) break;
      const index_t j = rng.uniform_index(i + 1, n - 1);
      if (!cols.insert(j).second) continue;
      const real_t v = -rng.uniform(0.05, 1.0);
      coo.add(i, j, v);
      coo.add(j, i, v);
      rowsum[i] += std::abs(v);
      rowsum[j] += std::abs(v);
    }
  }
  for (index_t i = 0; i < n; ++i) coo.add(i, i, rowsum[i] + margin);
  return coo.build();
}

CsrMatrix tridiag(index_t n, real_t diag, real_t off) {
  PFEM_CHECK(n >= 1);
  CooBuilder coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, diag);
    if (i > 0) coo.add(i, i - 1, off);
    if (i + 1 < n) coo.add(i, i + 1, off);
  }
  return coo.build();
}

CsrMatrix convection_diffusion_2d(index_t nx, index_t ny, real_t vx,
                                  real_t vy) {
  PFEM_CHECK(nx >= 1 && ny >= 1);
  const index_t n = nx * ny;
  CooBuilder coo(n, n);
  auto id = [nx](index_t i, index_t j) { return j * nx + i; };
  // Upwind: flow in +x couples to the west neighbor, etc.  Grid h = 1.
  const real_t w = 1.0 + std::max(vx, 0.0);   // west coefficient
  const real_t e = 1.0 + std::max(-vx, 0.0);  // east
  const real_t s = 1.0 + std::max(vy, 0.0);   // south
  const real_t t = 1.0 + std::max(-vy, 0.0);  // north
  const real_t diag = w + e + s + t;
  for (index_t j = 0; j < ny; ++j) {
    for (index_t i = 0; i < nx; ++i) {
      const index_t row = id(i, j);
      coo.add(row, row, diag);
      if (i > 0) coo.add(row, id(i - 1, j), -w);
      if (i + 1 < nx) coo.add(row, id(i + 1, j), -e);
      if (j > 0) coo.add(row, id(i, j - 1), -s);
      if (j + 1 < ny) coo.add(row, id(i, j + 1), -t);
    }
  }
  return coo.build();
}

CsrMatrix diagonal_matrix(const Vector& eigenvalues) {
  const index_t n = as_index(eigenvalues.size());
  CooBuilder coo(n, n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, eigenvalues[i]);
  return coo.build();
}

}  // namespace pfem::sparse
