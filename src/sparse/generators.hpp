// Synthetic sparse test matrices.
//
// Tests and the Fig. 1-3 polynomial studies need matrices with known
// spectra independent of the FE substrate: 2-D Laplacians (classical
// eigenvalues), diagonally dominant random SPD systems, and diagonal
// matrices with prescribed eigenvalues to probe Θ coverage directly.
#pragma once

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::sparse {

/// 5-point finite-difference Laplacian on an nx x ny grid (Dirichlet).
/// Eigenvalues: 4 - 2cos(i*pi/(nx+1)) - 2cos(j*pi/(ny+1)); SPD.
[[nodiscard]] CsrMatrix laplace2d(index_t nx, index_t ny);

/// Random sparse symmetric diagonally dominant SPD matrix:
/// ~`per_row` off-diagonals per row in (-1,0), diagonal = |row| sum + margin.
[[nodiscard]] CsrMatrix random_spd(index_t n, index_t per_row,
                                   real_t margin = 0.1,
                                   std::uint64_t seed = 7);

/// Symmetric tridiagonal Toeplitz [off, diag, off]; eigenvalues
/// diag + 2*off*cos(k*pi/(n+1)).
[[nodiscard]] CsrMatrix tridiag(index_t n, real_t diag, real_t off);

/// Diagonal matrix with the given eigenvalues (for spectral tests of the
/// polynomial preconditioners — p(A) acts exactly as p(lambda_i)).
[[nodiscard]] CsrMatrix diagonal_matrix(const Vector& eigenvalues);

/// Upwind finite-difference convection–diffusion operator
/// −Δu + (vx, vy)·∇u on an nx x ny grid (Dirichlet): the classical
/// *unsymmetric* test system for GMRES/BiCGSTAB (the paper motivates
/// GMRES with exactly this problem class).  Larger |v| = stronger
/// nonsymmetry; the upwind stencil keeps it an M-matrix.
[[nodiscard]] CsrMatrix convection_diffusion_2d(index_t nx, index_t ny,
                                                real_t vx, real_t vy);

}  // namespace pfem::sparse
