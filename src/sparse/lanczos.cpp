#include "sparse/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "la/dense.hpp"
#include "la/vector_ops.hpp"

namespace pfem::sparse {

LanczosResult lanczos(const CsrMatrix& a, int k, std::uint64_t seed) {
  PFEM_CHECK(a.rows() == a.cols());
  PFEM_CHECK(k >= 1);
  const std::size_t n = static_cast<std::size_t>(a.rows());
  k = std::min<int>(k, a.rows());

  Rng rng(seed);
  std::vector<Vector> q;  // full re-orthogonalization basis
  q.reserve(static_cast<std::size_t>(k));
  Vector v(n);
  for (real_t& x : v) x = rng.normal();
  la::scal(1.0 / la::nrm2(v), v);
  q.push_back(v);

  LanczosResult res;
  Vector w(n);
  real_t beta_prev = 0.0;
  for (int j = 0; j < k; ++j) {
    a.spmv(q.back(), w);
    if (j > 0) la::axpy(-beta_prev, q[static_cast<std::size_t>(j) - 1], w);
    const real_t alpha = la::dot(w, q.back());
    la::axpy(-alpha, q.back(), w);
    // Full re-orthogonalization against the whole basis.
    for (const Vector& qi : q) la::axpy(-la::dot(w, qi), qi, w);
    res.alphas.push_back(alpha);
    ++res.steps;
    const real_t beta = la::nrm2(w);
    if (j + 1 == k || beta < 1e-12 * std::abs(alpha) || beta == 0.0)
      break;  // done or invariant subspace found
    res.betas.push_back(beta);
    beta_prev = beta;
    la::scal(1.0 / beta, w);
    q.push_back(w);
  }

  // Ritz values = eigenvalues of the tridiagonal T.
  const index_t ts = as_index(res.alphas.size());
  la::DenseMatrix t(ts, ts);
  for (index_t i = 0; i < ts; ++i) {
    t(i, i) = res.alphas[static_cast<std::size_t>(i)];
    if (i + 1 < ts) {
      t(i, i + 1) = res.betas[static_cast<std::size_t>(i)];
      t(i + 1, i) = res.betas[static_cast<std::size_t>(i)];
    }
  }
  res.ritz_values = la::symmetric_eigenvalues(std::move(t));
  return res;
}

Interval estimate_spectrum(const CsrMatrix& a, int steps, real_t safety,
                           std::uint64_t seed) {
  PFEM_CHECK(safety >= 1.0);
  const LanczosResult res = lanczos(a, steps, seed);
  PFEM_CHECK(!res.ritz_values.empty());
  real_t lo = res.ritz_values.front() / safety;
  real_t hi = res.ritz_values.back() * safety;
  if (lo <= 0.0)
    lo = std::max(res.ritz_values.front(), real_t(0)) + 1e-12;
  return Interval{lo, hi};
}

}  // namespace pfem::sparse
