// Span-based tracing for the SPMD runtime and the solvers (pfem::obs).
//
// The paper's argument is a communication-count story (Table 1: m+3 vs
// m+1 neighbor exchanges per Arnoldi step).  PerfCounters give the
// aggregate totals; this layer records *where inside a solve* the time
// and the exchanges go, cheaply enough to leave on in production:
//
//   - `Trace` owns one `Tracer` lane per rank plus one auxiliary lane
//     for non-rank threads (the solve service's scheduler).  Each lane
//     is a fixed-capacity ring of POD records written by exactly one
//     thread — no locks, no allocation after arming, overwrite-oldest
//     when full (flight-recorder semantics, with a dropped count).
//   - `Span` is the RAII scope.  The OBS_SPAN macro expands to one
//     predicted-false null check when tracing is off; a live span costs
//     two clock reads and one ring store.
//   - Counter records annotate a lane with named values (relres per
//     iteration, queue depth) on the same timeline.
//
// Timebase: steady_clock nanoseconds since the Trace's epoch.  That is
// the same clock as svc::Clock, so service code can stamp retroactive
// spans (e.g. "queued" from a request's submit time) into a lane.
//
// Thread-safety contract: a lane is single-writer.  Rank lanes are
// written only by their rank's thread during a job; readers (records(),
// the exporters) must run after the job completed — Team::run's join
// handshake provides the required happens-before edge.  The aux lane is
// written only by the service scheduler thread and read after shutdown.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pfem::fault {
class FaultInjector;  // chaos hook carried by ObserveOptions, not owned
}

namespace pfem::obs {

/// Span/counter category — coarse buckets for self-time attribution.
/// Keep in sync with cat_name().
enum class Cat : std::uint8_t {
  Setup,     ///< operator build: scaling, polynomial construction
  Solve,     ///< whole-solve and per-iteration scopes
  Matvec,    ///< local sparse matrix-vector products
  Exchange,  ///< neighbor boundary exchange (the Table-1 currency)
  Reduce,    ///< allreduce / barrier collectives
  Precond,   ///< polynomial preconditioner application
  Ortho,     ///< Gram-Schmidt orthogonalization
  Svc,       ///< service lifecycle (queued/coalesced/solve/done)
  Fault,     ///< injected faults, channel timeouts, service retries
};

[[nodiscard]] const char* cat_name(Cat c) noexcept;

/// One ring entry.  `name` must be a string literal (or otherwise
/// outlive the Trace): lanes store the pointer, never the bytes.
struct Record {
  enum class Kind : std::uint8_t { Span, Counter };

  const char* name = nullptr;
  std::uint64_t t0_ns = 0;  ///< start (Span) or stamp time (Counter)
  std::uint64_t t1_ns = 0;  ///< end; == t0_ns for counters
  double value = 0.0;       ///< counter value; unused for spans
  std::uint32_t id = 0;     ///< small correlate (RHS index, request id)
  std::uint16_t depth = 0;  ///< span nesting depth at open time
  Cat cat = Cat::Solve;
  Kind kind = Kind::Span;
};

/// Single-writer span/counter ring for one lane (rank or aux).
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Arm the lane: allocate `capacity` records once and start accepting
  /// writes.  `epoch` is the shared trace start time.
  void arm(std::chrono::steady_clock::time_point epoch, std::size_t capacity);

  [[nodiscard]] bool enabled() const noexcept { return armed_; }

  /// Nanoseconds since the trace epoch (call only on armed lanes).
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return to_ns(std::chrono::steady_clock::now());
  }

  /// Convert an absolute steady_clock stamp to trace time — lets the
  /// service turn a request's submit time into a retroactive span.
  [[nodiscard]] std::uint64_t to_ns(
      std::chrono::steady_clock::time_point t) const noexcept {
    return t <= epoch_
               ? 0
               : static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t - epoch_)
                         .count());
  }

  // -- writer side (single thread) ----------------------------------------

  /// Open a span scope: returns the depth the matching emit should carry.
  [[nodiscard]] std::uint16_t open() noexcept { return depth_++; }

  /// Close a span scope and push its record.
  void close(const char* name, Cat cat, std::uint64_t t0, std::uint16_t depth,
             std::uint32_t id = 0) noexcept {
    --depth_;
    push(Record{name, t0, now_ns(), 0.0, id, depth, cat, Record::Kind::Span});
  }

  /// Push a fully-formed span without touching the depth counter — for
  /// retroactive records (service "queued" phases) and tests.
  void span_at(const char* name, Cat cat, std::uint64_t t0, std::uint64_t t1,
               std::uint32_t id = 0, std::uint16_t depth = 0) noexcept {
    push(Record{name, t0, t1, 0.0, id, depth, cat, Record::Kind::Span});
  }

  /// Stamp a named value on the timeline (per-iteration relres, queue
  /// depth, ...).
  void counter(const char* name, Cat cat, double value,
               std::uint32_t id = 0) noexcept {
    const std::uint64_t t = now_ns();
    push(Record{name, t, t, value, id, 0, cat, Record::Kind::Counter});
  }

  // -- reader side (after the writer quiesced) ----------------------------

  /// Records in chronological (write) order.  Oldest entries are gone
  /// when total() > capacity().
  [[nodiscard]] std::vector<Record> records() const;

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

 private:
  void push(const Record& r) noexcept {
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = r;
    ++total_;
  }

  bool armed_ = false;
  std::uint16_t depth_ = 0;
  std::uint64_t total_ = 0;
  std::vector<Record> ring_;
  std::chrono::steady_clock::time_point epoch_{};
};

/// RAII span scope.  Pass the lane's Tracer (or nullptr — disabled mode
/// costs exactly one branch).
class Span {
 public:
  Span(Tracer* tracer, const char* name, Cat cat,
       std::uint32_t id = 0) noexcept {
    if (tracer != nullptr && tracer->enabled()) [[unlikely]] {
      tracer_ = tracer;
      name_ = name;
      cat_ = cat;
      id_ = id;
      depth_ = tracer->open();
      t0_ = tracer->now_ns();
    }
  }
  ~Span() {
    if (tracer_ != nullptr) tracer_->close(name_, cat_, t0_, depth_, id_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::uint32_t id_ = 0;
  std::uint16_t depth_ = 0;
  Cat cat_ = Cat::Solve;
};

#define PFEM_OBS_CONCAT2(a, b) a##b
#define PFEM_OBS_CONCAT(a, b) PFEM_OBS_CONCAT2(a, b)

/// `OBS_SPAN(tracer, "arnoldi", Cat::Solve)` — RAII scope on `tracer`
/// (may be null).  An optional fourth argument is the record id.
#define OBS_SPAN(tracer, name, ...)                          \
  ::pfem::obs::Span PFEM_OBS_CONCAT(obs_span_, __LINE__) {   \
    (tracer), (name), __VA_ARGS__                            \
  }

/// A whole run's trace: one lane per rank plus one aux lane ("svc") for
/// non-rank threads.  Construct, hand lanes to the writers, read after
/// they quiesced.
class Trace {
 public:
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

  explicit Trace(int nranks, std::size_t ring_capacity = 0);

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] std::size_t ring_capacity() const noexcept { return cap_; }
  [[nodiscard]] std::chrono::steady_clock::time_point epoch() const noexcept {
    return epoch_;
  }

  [[nodiscard]] Tracer& rank(int r) {
    PFEM_CHECK(r >= 0 && r < nranks_);
    return lanes_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] const Tracer& rank(int r) const {
    PFEM_CHECK(r >= 0 && r < nranks_);
    return lanes_[static_cast<std::size_t>(r)];
  }

  /// The extra lane for non-rank threads (service scheduler).
  [[nodiscard]] Tracer& aux() { return lanes_.back(); }
  [[nodiscard]] const Tracer& aux() const { return lanes_.back(); }

  [[nodiscard]] std::uint64_t dropped_total() const noexcept;

 private:
  int nranks_;
  std::size_t cap_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<Tracer> lanes_;  ///< [0, nranks) ranks, back() aux
};

/// Observability knobs shared by SolveOptions and svc requests — one
/// struct instead of per-tool flag plumbing.
struct ObserveOptions {
  bool trace = false;               ///< record spans for this solve
  std::size_t ring_capacity = 0;    ///< records per lane; 0 = default
  /// Called after every FGMRES iteration with (iteration, relative
  /// residual, RHS index).  Invoked from rank 0's solver thread — keep
  /// it cheap and thread-safe.
  std::function<void(index_t, real_t, std::size_t)> progress;
  /// Chaos hooks for solvers that own their team internally (solve_edd,
  /// solve_rdd): a seeded fault plan armed on the solve's team (not
  /// owned; its plan must match the partition's rank count), and a
  /// channel-wait deadline (0 disables) that turns a dead peer into a
  /// typed comm failure instead of a hang.  Pointer-only here — obs
  /// stays independent of the fault library.
  fault::FaultInjector* fault_injector = nullptr;
  double comm_timeout_seconds = 0.0;
};

}  // namespace pfem::obs
