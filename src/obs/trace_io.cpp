#include "obs/trace_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace pfem::obs::io {

namespace {

const Json kNull{};

// ---- Recursive-descent JSON parser ---------------------------------------

class Parser {
 public:
  Parser(const std::string& text, std::string& err) : s_(text), err_(err) {}

  bool parse(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != s_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    err_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool value(Json& out) {
    if (depth_ > 128) return fail("nesting too deep");
    switch (peek()) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.type = Json::Type::String;
        return string(out.str);
      case 't':
        out.type = Json::Type::Bool;
        out.b = true;
        return literal("true");
      case 'f':
        out.type = Json::Type::Bool;
        out.b = false;
        return literal("false");
      case 'n':
        out.type = Json::Type::Null;
        return literal("null");
      default:
        return number(out);
    }
  }

  bool object(Json& out) {
    out.type = Json::Type::Object;
    ++pos_;  // '{'
    ++depth_;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!value(out.obj[key])) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(Json& out) {
    out.type = Json::Type::Array;
    ++pos_;  // '['
    ++depth_;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      out.arr.emplace_back();
      if (!value(out.arr.back())) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    if (peek() != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char e = s_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not produced by
          // our writers).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(Json& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    try {
      out.num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return fail("bad number");
    }
    out.type = Json::Type::Number;
    return true;
  }

  const std::string& s_;
  std::string& err_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

constexpr double kEpsUs = 1e-6;  ///< sub-nanosecond slack for comparisons

/// A lane is one Chrome (pid, tid) track.  Rank lanes all use tid 0;
/// the svc lane fans each request out to its own tid, so nesting is
/// only meaningful per track, never across a whole pid.
using Lane = std::pair<int, int>;

/// Indices of a lane's "X" events in sweep order: start ascending,
/// longer spans first on ties so parents precede children.
std::vector<std::size_t> sweep_order(const std::vector<Event>& events,
                                     Lane lane) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < events.size(); ++i)
    if (events[i].ph == 'X' && events[i].pid == lane.first &&
        events[i].tid == lane.second)
      idx.push_back(i);
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    if (events[a].ts_us != events[b].ts_us)
      return events[a].ts_us < events[b].ts_us;
    return events[a].dur_us > events[b].dur_us;
  });
  return idx;
}

std::vector<Lane> lanes_of(const TraceFile& t) {
  std::vector<Lane> lanes;
  for (const Event& e : t.events) lanes.emplace_back(e.pid, e.tid);
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
  return lanes;
}

}  // namespace

const Json& Json::at(const std::string& key) const {
  if (type != Type::Object) return kNull;
  const auto it = obj.find(key);
  return it == obj.end() ? kNull : it->second;
}

bool json_parse(const std::string& text, Json& out, std::string& err) {
  Parser p(text, err);
  return p.parse(out);
}

bool parse_chrome_trace(const std::string& text, TraceFile& out,
                        std::string& err) {
  Json root;
  if (!json_parse(text, root, err)) return false;
  const Json& events = root.at("traceEvents");
  if (!events.is(Json::Type::Array)) {
    err = "missing traceEvents array";
    return false;
  }
  out.events.clear();
  for (const Json& j : events.arr) {
    Event e;
    e.name = j.at("name").str_or("");
    e.cat = j.at("cat").str_or("");
    const std::string ph = j.at("ph").str_or("");
    e.ph = ph.empty() ? '\0' : ph[0];
    e.ts_us = j.at("ts").num_or(0.0);
    e.dur_us = j.at("dur").num_or(0.0);
    e.pid = static_cast<int>(j.at("pid").num_or(0.0));
    e.tid = static_cast<int>(j.at("tid").num_or(0.0));
    const Json& args = j.at("args");
    if (e.ph == 'C') e.value = args.at(e.name).num_or(0.0);
    if (e.ph == 'M') e.process_name = args.at("name").str_or("");
    out.events.push_back(std::move(e));
  }
  const Json& footer = root.at("pfem");
  out.nranks = static_cast<long long>(footer.at("nranks").num_or(-1.0));
  out.ring_capacity =
      static_cast<long long>(footer.at("ring_capacity").num_or(-1.0));
  out.dropped = static_cast<long long>(footer.at("dropped").num_or(-1.0));
  return true;
}

bool load_chrome_trace(const std::string& path, TraceFile& out,
                       std::string& err) {
  std::ifstream f(path);
  if (!f) {
    err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_chrome_trace(ss.str(), out, err);
}

bool check(const TraceFile& t, std::string& err) {
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const Event& e = t.events[i];
    const std::string where = "event " + std::to_string(i);
    if (e.name.empty()) {
      err = where + ": empty name";
      return false;
    }
    if (e.ph != 'X' && e.ph != 'C' && e.ph != 'M') {
      err = where + ": unknown phase '" + std::string(1, e.ph) + "'";
      return false;
    }
    if (e.ts_us < 0.0 || e.dur_us < 0.0 || !std::isfinite(e.ts_us) ||
        !std::isfinite(e.dur_us)) {
      err = where + ": negative or non-finite ts/dur";
      return false;
    }
  }
  // Each (pid, tid) track may be named at most once: a duplicate
  // process_name/thread_name metadata entry means two writers claimed
  // the same lane (e.g. a bad merge), and every per-lane statistic
  // downstream would silently mix their spans.
  {
    std::map<std::pair<int, int>, std::string> named;
    for (const Event& e : t.events) {
      if (e.ph != 'M') continue;
      const auto key = std::make_pair(e.pid, e.tid);
      const auto [it, inserted] = named.emplace(key, e.name);
      if (!inserted && it->second == e.name) {
        err = "pid " + std::to_string(e.pid) + " tid " +
              std::to_string(e.tid) + ": duplicate \"" + e.name +
              "\" metadata — two tracks claim the same lane";
        return false;
      }
    }
  }
  // Spans within one (pid, tid) track must nest: a span that starts
  // inside another must end inside it too.
  for (const Lane& lane : lanes_of(t)) {
    std::vector<double> open_ends;
    for (const std::size_t i : sweep_order(t.events, lane)) {
      const Event& e = t.events[i];
      while (!open_ends.empty() && open_ends.back() <= e.ts_us + kEpsUs)
        open_ends.pop_back();
      const double end = e.ts_us + e.dur_us;
      if (!open_ends.empty() && end > open_ends.back() + kEpsUs) {
        err = "pid " + std::to_string(lane.first) + " tid " +
              std::to_string(lane.second) + ": span \"" + e.name +
              "\" at ts=" + std::to_string(e.ts_us) +
              " partially overlaps an enclosing span";
        return false;
      }
      open_ends.push_back(end);
    }
  }
  return true;
}

TraceFile merge(const std::vector<TraceFile>& files) {
  TraceFile out;
  int pid_base = 0;
  long long dropped = 0;
  bool have_dropped = false;
  for (const TraceFile& f : files) {
    int max_pid = -1;
    for (const Event& e : f.events) {
      Event copy = e;
      copy.pid += pid_base;
      max_pid = std::max(max_pid, e.pid);
      out.events.push_back(std::move(copy));
    }
    pid_base += max_pid + 1;
    if (f.dropped >= 0) {
      dropped += f.dropped;
      have_dropped = true;
    }
  }
  out.dropped = have_dropped ? dropped : -1;
  return out;
}

TraceFile merge_ranks(const std::vector<TraceFile>& files) {
  TraceFile out;
  long long dropped = 0;
  bool have_dropped = false;
  for (const TraceFile& f : files) {
    out.events.insert(out.events.end(), f.events.begin(), f.events.end());
    out.nranks = std::max(out.nranks, f.nranks);
    if (f.dropped >= 0) {
      dropped += f.dropped;
      have_dropped = true;
    }
  }
  out.dropped = have_dropped ? dropped : -1;
  return out;
}

void write_chrome_trace(std::ostream& os, const TraceFile& t) {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (const Event& e : t.events) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": ";
    write_escaped(os, e.name);
    os << ", \"ph\": \"" << e.ph << "\"";
    if (!e.cat.empty()) {
      os << ", \"cat\": ";
      write_escaped(os, e.cat);
    }
    if (e.ph != 'M') os << ", \"ts\": " << e.ts_us;
    if (e.ph == 'X') os << ", \"dur\": " << e.dur_us;
    os << ", \"pid\": " << e.pid << ", \"tid\": " << e.tid << ", \"args\": {";
    if (e.ph == 'C') {
      write_escaped(os, e.name);
      os << ": " << e.value;
    } else if (e.ph == 'M') {
      os << "\"name\": ";
      write_escaped(os, e.process_name);
    }
    os << "}}";
  }
  os << "\n]";
  if (t.dropped >= 0) os << ", \"pfem\": {\"dropped\": " << t.dropped << "}";
  os << "}\n";
}

std::vector<NameStat> span_summary(const TraceFile& t) {
  std::map<std::string, NameStat> by_name;
  struct Open {
    double end;
    double child_us;
    std::size_t idx;
  };
  for (const Lane& lane : lanes_of(t)) {
    std::vector<Open> stack;
    auto finalize = [&](const Open& o) {
      const Event& e = t.events[o.idx];
      NameStat& s = by_name[e.name];
      if (s.name.empty()) {
        s.name = e.name;
        s.cat = e.cat;
      }
      ++s.count;
      s.total_us += e.dur_us;
      s.self_us += e.dur_us - std::min(o.child_us, e.dur_us);
    };
    for (const std::size_t i : sweep_order(t.events, lane)) {
      const Event& e = t.events[i];
      while (!stack.empty() && stack.back().end <= e.ts_us + kEpsUs) {
        finalize(stack.back());
        stack.pop_back();
      }
      if (!stack.empty()) stack.back().child_us += e.dur_us;
      stack.push_back(Open{e.ts_us + e.dur_us, 0.0, i});
    }
    while (!stack.empty()) {
      finalize(stack.back());
      stack.pop_back();
    }
  }
  std::vector<NameStat> out;
  out.reserve(by_name.size());
  for (auto& [_, s] : by_name) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(), [](const NameStat& a, const NameStat& b) {
    return a.self_us > b.self_us;
  });
  return out;
}

std::vector<std::uint64_t> count_by_pid(const TraceFile& t,
                                        const std::string& name) {
  // Size by every pid in the trace (not just pids with matches), so a
  // lane that never emitted `name` reads as an explicit 0.
  std::vector<std::uint64_t> counts;
  for (const Event& e : t.events) {
    if (e.pid < 0) continue;
    if (counts.size() <= static_cast<std::size_t>(e.pid))
      counts.resize(static_cast<std::size_t>(e.pid) + 1, 0);
    if (e.ph == 'X' && e.name == name)
      ++counts[static_cast<std::size_t>(e.pid)];
  }
  return counts;
}

}  // namespace pfem::obs::io
