// Trace exporters: Chrome trace_event JSON (one merged timeline across
// ranks, pid = rank) and a flat metrics snapshot (per-lane span totals
// with self-time, counter summaries).  Both formats are documented in
// DESIGN.md §8; the Chrome file opens directly in chrome://tracing or
// https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace pfem::obs {

/// Aggregated statistics for one span name within one lane.
struct SpanStat {
  const char* name = nullptr;
  Cat cat = Cat::Solve;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< inclusive (wall) time
  std::uint64_t self_ns = 0;   ///< total minus time inside nested spans
};

/// Per-name span totals for one lane's chronological records, sorted by
/// self-time descending.  Counters are ignored.  Self-time attributes
/// each span's duration minus its direct children's durations, using
/// the recorded nesting depths.
[[nodiscard]] std::vector<SpanStat> span_stats(std::span<const Record> records);

/// Serialize the merged timeline as Chrome trace_event JSON.
void chrome_trace_json(std::ostream& os, const Trace& trace);

/// Serialize the flat metrics snapshot JSON.
void metrics_json(std::ostream& os, const Trace& trace);

/// File-writing wrappers; return false when the file cannot be written.
[[nodiscard]] bool write_chrome_trace(const std::string& path,
                                      const Trace& trace);
[[nodiscard]] bool write_metrics_json(const std::string& path,
                                      const Trace& trace);

}  // namespace pfem::obs
