#include "obs/trace.hpp"

#include <algorithm>

namespace pfem::obs {

const char* cat_name(Cat c) noexcept {
  switch (c) {
    case Cat::Setup:
      return "setup";
    case Cat::Solve:
      return "solve";
    case Cat::Matvec:
      return "matvec";
    case Cat::Exchange:
      return "exchange";
    case Cat::Reduce:
      return "reduce";
    case Cat::Precond:
      return "precond";
    case Cat::Ortho:
      return "ortho";
    case Cat::Svc:
      return "svc";
    case Cat::Fault:
      return "fault";
  }
  return "unknown";
}

void Tracer::arm(std::chrono::steady_clock::time_point epoch,
                 std::size_t capacity) {
  PFEM_CHECK_MSG(!armed_, "Tracer::arm: lane already armed");
  PFEM_CHECK(capacity > 0);
  epoch_ = epoch;
  ring_.resize(capacity);
  total_ = 0;
  depth_ = 0;
  armed_ = true;
}

std::vector<Record> Tracer::records() const {
  std::vector<Record> out;
  if (!armed_ || total_ == 0) return out;
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(total_, ring_.size()));
  out.reserve(n);
  // Oldest surviving record first: when the ring wrapped, that is the
  // slot the next write would overwrite.
  const std::size_t start =
      total_ > ring_.size() ? static_cast<std::size_t>(total_ % ring_.size())
                            : 0;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

Trace::Trace(int nranks, std::size_t ring_capacity)
    : nranks_(nranks),
      cap_(ring_capacity == 0 ? kDefaultRingCapacity : ring_capacity),
      epoch_(std::chrono::steady_clock::now()),
      lanes_(static_cast<std::size_t>(nranks) + 1) {
  PFEM_CHECK(nranks >= 1);
  for (Tracer& lane : lanes_) lane.arm(epoch_, cap_);
}

std::uint64_t Trace::dropped_total() const noexcept {
  std::uint64_t total = 0;
  for (const Tracer& lane : lanes_) total += lane.dropped();
  return total;
}

}  // namespace pfem::obs
