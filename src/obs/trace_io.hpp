// Reading side of the trace pipeline: a minimal JSON parser (no external
// deps — enough for the files this repo emits), the Chrome trace_event
// loader, validation, merging, and summaries.  Used by tools/pfem_trace
// and the obs tests; the hot-path writer lives in export.cpp and never
// goes through here.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace pfem::obs::io {

// ---- Minimal JSON value ---------------------------------------------------

/// Parsed JSON value.  Numbers are doubles (the files we read never need
/// 64-bit-exact integers above 2^53).
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  [[nodiscard]] bool is(Type t) const noexcept { return type == t; }
  /// Object member or null-typed sentinel when absent / not an object.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] double num_or(double fallback) const noexcept {
    return type == Type::Number ? num : fallback;
  }
  [[nodiscard]] std::string str_or(const std::string& fallback) const {
    return type == Type::String ? str : fallback;
  }
};

/// Parse `text`; returns false and sets `err` (with an offset) on
/// malformed input.
bool json_parse(const std::string& text, Json& out, std::string& err);

// ---- Chrome trace model ---------------------------------------------------

/// One trace_event entry ("X" complete span, "C" counter, "M" metadata).
struct Event {
  std::string name;
  std::string cat;
  char ph = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;
  int pid = 0;
  int tid = 0;
  double value = 0.0;        ///< counter value (args[name]) for "C"
  std::string process_name;  ///< args.name for "M" process_name entries
};

struct TraceFile {
  std::vector<Event> events;
  // From the writer's "pfem" footer when present; -1 when absent.
  long long nranks = -1;
  long long ring_capacity = -1;
  long long dropped = -1;
};

bool parse_chrome_trace(const std::string& text, TraceFile& out,
                        std::string& err);
bool load_chrome_trace(const std::string& path, TraceFile& out,
                       std::string& err);

/// Structural validation: every event has a name and a known phase,
/// spans have non-negative ts/dur, and the spans within each pid nest
/// properly (no partial overlap).  Returns false and describes the first
/// violation in `err`.
bool check(const TraceFile& t, std::string& err);

/// Merge traces into one timeline; each input's pids are offset past the
/// previous input's maximum so lanes never collide.
TraceFile merge(const std::vector<TraceFile>& files);

/// Merge traces that already share one GLOBAL rank numbering — the
/// per-process captures of a multi-process team, where every file has
/// lanes for all ranks but only its own process's lanes carry events.
/// pids are preserved (lane r stays rank r), which is what lets the
/// --counters cross-check run on the merged timeline.
TraceFile merge_ranks(const std::vector<TraceFile>& files);

/// Re-serialize as Chrome trace_event JSON (for `pfem_trace --merge`).
void write_chrome_trace(std::ostream& os, const TraceFile& t);

// ---- Summaries ------------------------------------------------------------

/// Per-name aggregate over all "X" events, self-time computed from
/// interval nesting within each pid; sorted by self-time descending.
struct NameStat {
  std::string name;
  std::string cat;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

[[nodiscard]] std::vector<NameStat> span_summary(const TraceFile& t);

/// Count of "X" events named `name` per pid (index = pid); pids with no
/// such events hold 0.  With name "exchange" this is the per-rank count
/// of logical neighbor exchanges — the number PerfCounters totals.
[[nodiscard]] std::vector<std::uint64_t> count_by_pid(const TraceFile& t,
                                                      const std::string& name);

}  // namespace pfem::obs::io
