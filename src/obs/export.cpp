#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string_view>

namespace pfem::obs {

namespace {

/// JSON string escaping; span names are literals but counter names may
/// one day carry user text, so stay correct.
void json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Microseconds with nanosecond resolution — Chrome's ts/dur unit.
void us_from_ns(std::ostream& os, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  os << buf;
}

/// With tid_from_id, each record's id picks its Chrome thread track.
/// The aux (svc) lane uses this so one request's retroactive lifecycle
/// spans (queued/coalesced) share a track with nothing but their own
/// dispatch — tracks nest even though the lane's spans overlap freely.
void lane_events(std::ostream& os, const Tracer& lane, int pid, bool& first,
                 bool tid_from_id = false) {
  for (const Record& r : lane.records()) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": ";
    json_escaped(os, r.name);
    os << ", \"cat\": \"" << cat_name(r.cat) << "\", \"ph\": \""
       << (r.kind == Record::Kind::Span ? 'X' : 'C') << "\", \"ts\": ";
    us_from_ns(os, r.t0_ns);
    if (r.kind == Record::Kind::Span) {
      os << ", \"dur\": ";
      us_from_ns(os, r.t1_ns - r.t0_ns);
    }
    os << ", \"pid\": " << pid << ", \"tid\": "
       << (tid_from_id ? r.id : 0u) << ", \"args\": {";
    if (r.kind == Record::Kind::Counter) {
      json_escaped(os, r.name);
      os << ": " << r.value;
      if (r.id != 0) os << ", \"id\": " << r.id;
    } else {
      os << "\"id\": " << r.id;
    }
    os << "}}";
  }
}

struct CounterStat {
  const char* name;
  Cat cat;
  std::uint64_t count = 0;
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
};

std::vector<CounterStat> counter_stats(std::span<const Record> records) {
  std::vector<CounterStat> out;
  std::map<std::string_view, std::size_t> index;
  for (const Record& r : records) {
    if (r.kind != Record::Kind::Counter) continue;
    auto [it, inserted] = index.try_emplace(r.name, out.size());
    if (inserted) out.push_back(CounterStat{r.name, r.cat, 0, 0, r.value,
                                            r.value});
    CounterStat& s = out[it->second];
    ++s.count;
    s.last = r.value;
    s.min = std::min(s.min, r.value);
    s.max = std::max(s.max, r.value);
  }
  return out;
}

void lane_metrics(std::ostream& os, const Tracer& lane,
                  const std::string& label) {
  const std::vector<Record> records = lane.records();
  os << "    {\"lane\": \"" << label << "\", \"records\": " << records.size()
     << ", \"total\": " << lane.total() << ", \"dropped\": " << lane.dropped()
     << ",\n     \"spans\": [";
  bool first = true;
  for (const SpanStat& s : span_stats(records)) {
    if (!first) os << ",\n                ";
    first = false;
    os << "{\"name\": ";
    json_escaped(os, s.name);
    os << ", \"cat\": \"" << cat_name(s.cat) << "\", \"count\": " << s.count
       << ", \"total_ns\": " << s.total_ns << ", \"self_ns\": " << s.self_ns
       << "}";
  }
  os << "],\n     \"counters\": [";
  first = true;
  for (const CounterStat& s : counter_stats(records)) {
    if (!first) os << ",\n                   ";
    first = false;
    os << "{\"name\": ";
    json_escaped(os, s.name);
    os << ", \"count\": " << s.count << ", \"last\": " << s.last
       << ", \"min\": " << s.min << ", \"max\": " << s.max << "}";
  }
  os << "]}";
}

}  // namespace

std::vector<SpanStat> span_stats(std::span<const Record> records) {
  std::vector<SpanStat> out;
  std::map<std::string_view, std::size_t> index;
  // Records arrive in close order, so a span's direct children (depth
  // d+1) all closed — and were accumulated — before it.  child_ns[d]
  // carries the not-yet-claimed child time at depth d.
  std::vector<std::uint64_t> child_ns;
  for (const Record& r : records) {
    if (r.kind != Record::Kind::Span) continue;
    const std::uint64_t dur = r.t1_ns - r.t0_ns;
    const std::size_t d = r.depth;
    if (child_ns.size() < d + 2) child_ns.resize(d + 2, 0);
    const std::uint64_t nested = std::min(child_ns[d + 1], dur);
    child_ns[d + 1] = 0;
    child_ns[d] += dur;
    auto [it, inserted] = index.try_emplace(r.name, out.size());
    if (inserted) out.push_back(SpanStat{r.name, r.cat, 0, 0, 0});
    SpanStat& s = out[it->second];
    ++s.count;
    s.total_ns += dur;
    s.self_ns += dur - nested;
  }
  std::sort(out.begin(), out.end(), [](const SpanStat& a, const SpanStat& b) {
    return a.self_ns > b.self_ns;
  });
  return out;
}

void chrome_trace_json(std::ostream& os, const Trace& trace) {
  os << "{\"traceEvents\": [\n";
  bool first = true;
  for (int r = 0; r < trace.nranks(); ++r) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << r
       << ", \"tid\": 0, \"args\": {\"name\": \"rank " << r << "\"}}";
  }
  os << ",\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
     << trace.nranks() << ", \"tid\": 0, \"args\": {\"name\": \"svc\"}}";
  for (int r = 0; r < trace.nranks(); ++r)
    lane_events(os, trace.rank(r), r, first);
  lane_events(os, trace.aux(), trace.nranks(), first,
              /*tid_from_id=*/true);
  os << "\n], \"displayTimeUnit\": \"ms\", \"pfem\": {\"nranks\": "
     << trace.nranks() << ", \"ring_capacity\": " << trace.ring_capacity()
     << ", \"dropped\": " << trace.dropped_total() << "}}\n";
}

void metrics_json(std::ostream& os, const Trace& trace) {
  os << "{\n  \"schema\": \"pfem-metrics-v1\",\n  \"nranks\": "
     << trace.nranks() << ",\n  \"ring_capacity\": " << trace.ring_capacity()
     << ",\n  \"dropped\": " << trace.dropped_total() << ",\n  \"lanes\": [\n";
  for (int r = 0; r < trace.nranks(); ++r) {
    lane_metrics(os, trace.rank(r), "rank" + std::to_string(r));
    os << ",\n";
  }
  lane_metrics(os, trace.aux(), "svc");
  os << "\n  ]\n}\n";
}

bool write_chrome_trace(const std::string& path, const Trace& trace) {
  std::ofstream f(path);
  if (!f) return false;
  chrome_trace_json(f, trace);
  return static_cast<bool>(f);
}

bool write_metrics_json(const std::string& path, const Trace& trace) {
  std::ofstream f(path);
  if (!f) return false;
  metrics_json(f, trace);
  return static_cast<bool>(f);
}

}  // namespace pfem::obs
