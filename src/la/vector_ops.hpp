// Level-1 dense vector kernels.
//
// These are the three time-consuming kernels the paper identifies for
// iterative methods (§3.1.2): vector update (axpy), inner product, and —
// together with SpMV in src/sparse — the mat-vec.  All kernels operate on
// raw spans so the same code runs on full vectors and on subdomain-local
// slices.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.hpp"

namespace pfem::la {

/// y <- alpha*x + y  (DAXPY)
void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y);

/// y <- alpha*x + beta*y
void axpby(real_t alpha, std::span<const real_t> x, real_t beta,
           std::span<real_t> y);

/// x <- alpha*x
void scal(real_t alpha, std::span<real_t> x);

/// <x, y>
[[nodiscard]] real_t dot(std::span<const real_t> x, std::span<const real_t> y);

/// ||x||_2
[[nodiscard]] real_t nrm2(std::span<const real_t> x);

/// ||x||_inf
[[nodiscard]] real_t nrm_inf(std::span<const real_t> x);

/// y <- x
void copy(std::span<const real_t> x, std::span<real_t> y);

/// x <- value
void fill(std::span<real_t> x, real_t value);

/// z <- x - y
void sub(std::span<const real_t> x, std::span<const real_t> y,
         std::span<real_t> z);

/// Flop-count formulas for the kernels above, used by the performance
/// model (Table 1 accounting).  n is the vector length.
namespace flops {
constexpr std::uint64_t axpy(std::size_t n) { return 2 * n; }
constexpr std::uint64_t dot(std::size_t n) { return 2 * n; }
constexpr std::uint64_t nrm2(std::size_t n) { return 2 * n; }
constexpr std::uint64_t scal(std::size_t n) { return n; }
}  // namespace flops

}  // namespace pfem::la
