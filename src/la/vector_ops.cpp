#include "la/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pfem::la {

void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y) {
  PFEM_DEBUG_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void axpby(real_t alpha, std::span<const real_t> x, real_t beta,
           std::span<real_t> y) {
  PFEM_DEBUG_CHECK(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

void scal(real_t alpha, std::span<real_t> x) {
  for (real_t& v : x) v *= alpha;
}

real_t dot(std::span<const real_t> x, std::span<const real_t> y) {
  PFEM_DEBUG_CHECK(x.size() == y.size());
  real_t s = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

real_t nrm2(std::span<const real_t> x) { return std::sqrt(dot(x, x)); }

real_t nrm_inf(std::span<const real_t> x) {
  real_t m = 0.0;
  for (real_t v : x) m = std::max(m, std::abs(v));
  return m;
}

void copy(std::span<const real_t> x, std::span<real_t> y) {
  PFEM_DEBUG_CHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void fill(std::span<real_t> x, real_t value) {
  std::fill(x.begin(), x.end(), value);
}

void sub(std::span<const real_t> x, std::span<const real_t> y,
         std::span<real_t> z) {
  PFEM_DEBUG_CHECK(x.size() == y.size() && y.size() == z.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] - y[i];
}

}  // namespace pfem::la
