#include "la/dense.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pfem::la {

DenseMatrix::DenseMatrix(index_t rows, index_t cols, real_t value)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, value) {
  PFEM_CHECK(rows >= 0 && cols >= 0);
}

void DenseMatrix::matvec(std::span<const real_t> x,
                         std::span<real_t> y) const {
  PFEM_CHECK(x.size() == static_cast<std::size_t>(cols_));
  PFEM_CHECK(y.size() == static_cast<std::size_t>(rows_));
  for (index_t i = 0; i < rows_; ++i) {
    real_t s = 0.0;
    const real_t* r = data_.data() + static_cast<std::size_t>(i) * cols_;
    for (index_t j = 0; j < cols_; ++j) s += r[j] * x[j];
    y[i] = s;
  }
}

void DenseMatrix::matvec_transpose(std::span<const real_t> x,
                                   std::span<real_t> y) const {
  PFEM_CHECK(x.size() == static_cast<std::size_t>(rows_));
  PFEM_CHECK(y.size() == static_cast<std::size_t>(cols_));
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    const real_t* r = data_.data() + static_cast<std::size_t>(i) * cols_;
    for (index_t j = 0; j < cols_; ++j) y[j] += r[j] * x[i];
  }
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& b) const {
  PFEM_CHECK(cols_ == b.rows_);
  DenseMatrix c(rows_, b.cols_);
  for (index_t i = 0; i < rows_; ++i) {
    for (index_t k = 0; k < cols_; ++k) {
      const real_t aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (index_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

real_t DenseMatrix::max_abs_diff(const DenseMatrix& b) const {
  PFEM_CHECK(rows_ == b.rows_ && cols_ == b.cols_);
  real_t m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    m = std::max(m, std::abs(data_[i] - b.data_[i]));
  return m;
}

void cholesky_solve(DenseMatrix& a, std::span<real_t> b) {
  const index_t n = a.rows();
  PFEM_CHECK(a.cols() == n);
  PFEM_CHECK(b.size() == static_cast<std::size_t>(n));
  // Factor A = L L^T (lower triangle stored in a).
  for (index_t j = 0; j < n; ++j) {
    real_t d = a(j, j);
    for (index_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    PFEM_CHECK_MSG(d > 0.0, "matrix not positive definite at pivot " << j);
    const real_t ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      real_t s = a(i, j);
      for (index_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Forward solve L y = b.
  for (index_t i = 0; i < n; ++i) {
    real_t s = b[i];
    for (index_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Backward solve L^T x = y.
  for (index_t i = n - 1; i >= 0; --i) {
    real_t s = b[i];
    for (index_t k = i + 1; k < n; ++k) s -= a(k, i) * b[k];
    b[i] = s / a(i, i);
  }
}

void lu_solve(DenseMatrix& a, std::span<real_t> b) {
  const LuFactorization lu(std::move(a));
  lu.solve(b);
}

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  const index_t n = lu_.rows();
  PFEM_CHECK(lu_.cols() == n);
  piv_.resize(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    // Partial pivot.
    index_t p = j;
    real_t best = std::abs(lu_(j, j));
    for (index_t i = j + 1; i < n; ++i) {
      const real_t v = std::abs(lu_(i, j));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    PFEM_CHECK_MSG(best > 0.0, "singular matrix at column " << j);
    piv_[static_cast<std::size_t>(j)] = p;
    if (p != j)
      for (index_t k = 0; k < n; ++k) std::swap(lu_(j, k), lu_(p, k));
    const real_t inv = 1.0 / lu_(j, j);
    for (index_t i = j + 1; i < n; ++i) {
      const real_t lij = lu_(i, j) * inv;
      lu_(i, j) = lij;
      for (index_t k = j + 1; k < n; ++k) lu_(i, k) -= lij * lu_(j, k);
    }
  }
}

void LuFactorization::solve(std::span<real_t> b) const {
  const index_t n = lu_.rows();
  PFEM_CHECK(b.size() == static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const index_t p = piv_[static_cast<std::size_t>(j)];
    if (p != j) std::swap(b[j], b[p]);
  }
  for (index_t i = 1; i < n; ++i) {
    real_t s = b[i];
    for (index_t k = 0; k < i; ++k) s -= lu_(i, k) * b[k];
    b[i] = s;
  }
  for (index_t i = n - 1; i >= 0; --i) {
    real_t s = b[i];
    for (index_t k = i + 1; k < n; ++k) s -= lu_(i, k) * b[k];
    b[i] = s / lu_(i, i);
  }
}

namespace {

/// Classical cyclic Jacobi: rotate away off-diagonal mass in place.
void jacobi_diagonalize(DenseMatrix& a, int sweeps) {
  const index_t n = a.rows();
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    real_t off = 0.0;
    for (index_t p = 0; p < n; ++p)
      for (index_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (off < 1e-30) break;
    for (index_t p = 0; p < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const real_t apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const real_t theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const real_t t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const real_t c = 1.0 / std::sqrt(t * t + 1.0);
        const real_t s = t * c;
        for (index_t k = 0; k < n; ++k) {
          const real_t akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (index_t k = 0; k < n; ++k) {
          const real_t apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
}

}  // namespace

EigRange symmetric_eig_range(DenseMatrix a, int sweeps) {
  const index_t n = a.rows();
  PFEM_CHECK(a.cols() == n);
  PFEM_CHECK(n >= 1);
  jacobi_diagonalize(a, sweeps);
  EigRange r{a(0, 0), a(0, 0)};
  for (index_t i = 1; i < n; ++i) {
    r.min = std::min(r.min, a(i, i));
    r.max = std::max(r.max, a(i, i));
  }
  return r;
}

Vector symmetric_eigenvalues(DenseMatrix a, int sweeps) {
  const index_t n = a.rows();
  PFEM_CHECK(a.cols() == n);
  PFEM_CHECK(n >= 1);
  jacobi_diagonalize(a, sweeps);
  Vector eigs(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) eigs[static_cast<std::size_t>(i)] = a(i, i);
  std::sort(eigs.begin(), eigs.end());
  return eigs;
}

}  // namespace pfem::la
