// Small dense matrices and factorizations.
//
// Used for element matrices (8x8 Q4 stiffness), the GLS normal equations
// (Cholesky, order <= degree+1), and the Hessenberg least-squares fallback.
// These are *small*-matrix routines: O(n^3) without blocking, which is the
// right tool below n ~ 200.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace pfem::la {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols, real_t value = 0.0);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }

  real_t& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  real_t operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  [[nodiscard]] std::span<real_t> row(index_t i) {
    return {data_.data() + static_cast<std::size_t>(i) * cols_,
            static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<const real_t> row(index_t i) const {
    return {data_.data() + static_cast<std::size_t>(i) * cols_,
            static_cast<std::size_t>(cols_)};
  }

  [[nodiscard]] std::span<real_t> data() { return data_; }
  [[nodiscard]] std::span<const real_t> data() const { return data_; }

  /// y <- A x
  void matvec(std::span<const real_t> x, std::span<real_t> y) const;

  /// y <- A^T x
  void matvec_transpose(std::span<const real_t> x, std::span<real_t> y) const;

  /// C <- A * B
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& b) const;

  [[nodiscard]] DenseMatrix transposed() const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  [[nodiscard]] real_t max_abs_diff(const DenseMatrix& b) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real_t> data_;
};

/// In-place Cholesky solve of SPD system A x = b.  A is overwritten with
/// its factor.  Throws pfem::Error if A is not positive definite.
void cholesky_solve(DenseMatrix& a, std::span<real_t> b);

/// LU solve with partial pivoting of A x = b; A overwritten, b becomes x.
/// Throws pfem::Error on (numerical) singularity.
void lu_solve(DenseMatrix& a, std::span<real_t> b);

/// LU factorization with partial pivoting, computed once at construction
/// for repeated right-hand sides (factor-once / solve-many, e.g. the
/// replicated deflation coarse operator).  solve() is const and touches
/// no shared mutable state, so one factorization may be shared read-only
/// across threads.  Throws pfem::Error on (numerical) singularity.
class LuFactorization {
 public:
  LuFactorization() = default;
  explicit LuFactorization(DenseMatrix a);

  [[nodiscard]] index_t n() const noexcept { return lu_.rows(); }

  /// b <- A^{-1} b (pivoted forward/back substitution).
  void solve(std::span<real_t> b) const;

  /// Flop count of one solve (the two triangular sweeps).
  [[nodiscard]] std::uint64_t solve_flops() const noexcept {
    const auto nn = static_cast<std::uint64_t>(lu_.rows());
    return 2 * nn * nn;
  }

 private:
  DenseMatrix lu_;               ///< unit-L below, U on and above the diagonal
  std::vector<index_t> piv_;     ///< row swapped with i at elimination step i
};

/// Symmetric eigenvalue range estimate [min, max] by a few cycles of the
/// Jacobi eigenvalue method; exact (to tolerance) for the small matrices
/// this is applied to in tests.
struct EigRange {
  real_t min;
  real_t max;
};
[[nodiscard]] EigRange symmetric_eig_range(DenseMatrix a, int sweeps = 30);

/// All eigenvalues of a symmetric matrix (ascending), by the Jacobi
/// method.  Intended for the small matrices of tests and the Lanczos
/// Ritz extraction (n up to a few hundred).
[[nodiscard]] Vector symmetric_eigenvalues(DenseMatrix a, int sweeps = 50);

}  // namespace pfem::la
