#include "la/hessenberg_lsq.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pfem::la {

HessenbergLsq::HessenbergLsq(index_t max_m, real_t beta)
    : max_m_(max_m), res_(std::abs(beta)) {
  PFEM_CHECK(max_m >= 1);
  r_.assign(static_cast<std::size_t>(max_m_) * (max_m_ + 1), 0.0);
  g_.assign(static_cast<std::size_t>(max_m_) + 1, 0.0);
  g_[0] = beta;
  cs_.reserve(static_cast<std::size_t>(max_m_));
  sn_.reserve(static_cast<std::size_t>(max_m_));
}

real_t HessenbergLsq::push_column(std::span<const real_t> h) {
  PFEM_CHECK_MSG(j_ < max_m_, "Hessenberg LSQ capacity exceeded");
  PFEM_CHECK(h.size() == static_cast<std::size_t>(j_) + 2);

  // Copy the new column, apply all previous rotations.
  std::vector<real_t> col(h.begin(), h.end());
  for (index_t k = 0; k < j_; ++k) {
    const real_t t = cs_[static_cast<std::size_t>(k)] * col[k] +
                     sn_[static_cast<std::size_t>(k)] * col[k + 1];
    col[static_cast<std::size_t>(k) + 1] =
        -sn_[static_cast<std::size_t>(k)] * col[k] +
        cs_[static_cast<std::size_t>(k)] * col[k + 1];
    col[static_cast<std::size_t>(k)] = t;
  }

  // New rotation annihilating the subdiagonal entry.
  const real_t a = col[static_cast<std::size_t>(j_)];
  const real_t b = col[static_cast<std::size_t>(j_) + 1];
  const real_t rho = std::hypot(a, b);
  real_t c = 1.0, s = 0.0;
  if (rho > 0.0) {
    c = a / rho;
    s = b / rho;
  }
  cs_.push_back(c);
  sn_.push_back(s);
  col[static_cast<std::size_t>(j_)] = rho;

  for (index_t i = 0; i <= j_; ++i)
    r_entry(i, j_) = col[static_cast<std::size_t>(i)];

  const real_t gj = g_[static_cast<std::size_t>(j_)];
  g_[static_cast<std::size_t>(j_)] = c * gj;
  g_[static_cast<std::size_t>(j_) + 1] = -s * gj;

  ++j_;
  res_ = std::abs(g_[static_cast<std::size_t>(j_)]);
  return res_;
}

Vector HessenbergLsq::solve() const {
  Vector y(static_cast<std::size_t>(j_), 0.0);
  for (index_t i = j_ - 1; i >= 0; --i) {
    real_t s = g_[static_cast<std::size_t>(i)];
    for (index_t k = i + 1; k < j_; ++k)
      s -= r_entry(i, k) * y[static_cast<std::size_t>(k)];
    const real_t rii = r_entry(i, i);
    // A zero diagonal appears when the operator is singular and the
    // Arnoldi space hit its null direction (hard breakdown): that
    // coefficient is undetermined by the least-squares problem, and
    // y_i = 0 keeps a valid minimizer.  The caller's final TRUE
    // residual — not this solve — decides whether to report
    // convergence.
    y[static_cast<std::size_t>(i)] = rii != 0.0 ? s / rii : 0.0;
  }
  return y;
}

}  // namespace pfem::la
