// Incremental least squares for the GMRES Hessenberg system.
//
// GMRES (Algorithm 1 / 5 / 6 / 8 in the paper) needs, at inner step j,
//   y_j = argmin_y || beta*e_1 - H_j y ||_2
// where H_j is the (j+2) x (j+1) upper-Hessenberg matrix from the Arnoldi
// process.  Applying one Givens rotation per step keeps R upper triangular
// and makes |g_{j+1}| the current residual norm for free — this is how the
// solver monitors ||r_i||/||r_0|| <= tol each inner iteration without
// forming x (paper §6.1 convergence criterion).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace pfem::la {

/// Incremental QR solve of the (m+1) x m Hessenberg least-squares problem.
class HessenbergLsq {
 public:
  /// @param max_m maximum Krylov dimension (restart length m̃)
  /// @param beta  initial residual norm ||r_0||
  HessenbergLsq(index_t max_m, real_t beta);

  /// Feed column j of the Hessenberg matrix: h[0..j+1] inclusive, i.e.
  /// j+2 entries with h[j+1] the subdiagonal term.  Returns the residual
  /// norm ||beta*e1 - H y|| after absorbing this column.
  real_t push_column(std::span<const real_t> h);

  /// Number of columns absorbed so far.
  [[nodiscard]] index_t size() const noexcept { return j_; }

  /// Current least-squares residual norm.
  [[nodiscard]] real_t residual_norm() const noexcept { return res_; }

  /// Solve R y = g for the current j columns (y has size() entries).
  [[nodiscard]] Vector solve() const;

 private:
  index_t max_m_;
  index_t j_ = 0;       // columns absorbed
  real_t res_;          // |g_{j}| after rotations
  std::vector<real_t> r_;   // packed upper-triangular R, column-major slabs
  std::vector<real_t> g_;   // rotated rhs
  std::vector<real_t> cs_;  // Givens cosines
  std::vector<real_t> sn_;  // Givens sines

  real_t& r_entry(index_t i, index_t j) {
    return r_[static_cast<std::size_t>(j) * (max_m_ + 1) + i];
  }
  real_t r_entry(index_t i, index_t j) const {
    return r_[static_cast<std::size_t>(j) * (max_m_ + 1) + i];
  }
};

}  // namespace pfem::la
