// The par-transport wire frame: what one send() becomes on a socket.
//
//   [magic u32 "PFN1"] [version u16] [kind u16]
//   [src i32] [dst i32] [tag i32]
//   [seq u64] [count u64]            -- count = payload doubles
//   payload: count * 8 bytes (little-endian IEEE doubles)
//
// kind Data carries a message; kind Abort propagates team teardown to
// the peer process; kind Fin is the goodbye of an orderly transport
// teardown — EOF after a Fin is a clean close, EOF without one is peer
// death and aborts the team (both no payload).  Decoding is fully
// typed — truncated, bad-magic, bad-version and oversized frames each
// get their own status, never UB — mirroring the trace_io
// malformed-input contract.
#pragma once

#include <cstdint>
#include <span>

#include "net/bytes.hpp"

namespace pfem::net {

constexpr std::uint32_t kFrameMagic = 0x314e4650u;  // "PFN1" little-endian
constexpr std::uint16_t kFrameVersion = 1;
/// Hard payload bound (2^26 doubles = 512 MiB): anything larger is a
/// corrupt length prefix, not a message this library would ever send.
constexpr std::uint64_t kMaxFrameDoubles = 1ull << 26;

enum class FrameKind : std::uint16_t { Data = 1, Abort = 2, Fin = 3 };

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kFrameVersion;
  std::uint16_t kind = static_cast<std::uint16_t>(FrameKind::Data);
  std::int32_t src = 0;
  std::int32_t dst = 0;
  std::int32_t tag = 0;
  std::uint64_t seq = 0;
  std::uint64_t count = 0;  ///< payload length in doubles
};

constexpr std::size_t kFrameHeaderBytes = 4 + 2 + 2 + 4 + 4 + 4 + 8 + 8;

enum class FrameStatus {
  Ok,
  Truncated,   ///< fewer than kFrameHeaderBytes available
  BadMagic,
  BadVersion,
  BadKind,
  Oversized,   ///< count exceeds kMaxFrameDoubles
};

[[nodiscard]] inline const char* frame_status_name(FrameStatus s) noexcept {
  switch (s) {
    case FrameStatus::Ok: return "ok";
    case FrameStatus::Truncated: return "truncated";
    case FrameStatus::BadMagic: return "bad_magic";
    case FrameStatus::BadVersion: return "bad_version";
    case FrameStatus::BadKind: return "bad_kind";
    case FrameStatus::Oversized: return "oversized";
  }
  return "?";
}

inline void encode_frame_header(ByteBuffer& out, const FrameHeader& h) {
  put_u32(out, h.magic);
  put_u16(out, h.version);
  put_u16(out, h.kind);
  put_i32(out, h.src);
  put_i32(out, h.dst);
  put_i32(out, h.tag);
  put_u64(out, h.seq);
  put_u64(out, h.count);
}

[[nodiscard]] inline FrameStatus decode_frame_header(
    std::span<const unsigned char> bytes, FrameHeader& h) {
  ByteReader r(bytes);
  if (!r.get_u32(h.magic) || !r.get_u16(h.version) || !r.get_u16(h.kind) ||
      !r.get_i32(h.src) || !r.get_i32(h.dst) || !r.get_i32(h.tag) ||
      !r.get_u64(h.seq) || !r.get_u64(h.count))
    return FrameStatus::Truncated;
  if (h.magic != kFrameMagic) return FrameStatus::BadMagic;
  if (h.version != kFrameVersion) return FrameStatus::BadVersion;
  if (h.kind != static_cast<std::uint16_t>(FrameKind::Data) &&
      h.kind != static_cast<std::uint16_t>(FrameKind::Abort) &&
      h.kind != static_cast<std::uint16_t>(FrameKind::Fin))
    return FrameStatus::BadKind;
  if (h.count > kMaxFrameDoubles) return FrameStatus::Oversized;
  return FrameStatus::Ok;
}

}  // namespace pfem::net
