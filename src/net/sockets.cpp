#include "net/sockets.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace pfem::net {

namespace {

struct Parsed {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp
  std::string port;  // tcp
};

Parsed parse_addr(const std::string& addr) {
  Parsed p;
  if (addr.rfind("unix:", 0) == 0) {
    p.is_unix = true;
    p.path = addr.substr(5);
    PFEM_CHECK_MSG(!p.path.empty(), "empty unix socket path in " << addr);
    PFEM_CHECK_MSG(p.path.size() < sizeof(sockaddr_un{}.sun_path),
                   "unix socket path too long: " << p.path);
    return p;
  }
  if (addr.rfind("tcp:", 0) == 0) {
    const std::string rest = addr.substr(4);
    const auto colon = rest.rfind(':');
    PFEM_CHECK_MSG(colon != std::string::npos,
                   "tcp address needs host:port, got " << addr);
    p.host = rest.substr(0, colon);
    p.port = rest.substr(colon + 1);
    PFEM_CHECK_MSG(!p.port.empty(), "tcp address needs a port: " << addr);
    return p;
  }
  PFEM_CHECK_MSG(false,
                 "address must be unix:/path or tcp:host:port, got " << addr);
  return p;  // unreachable
}

[[noreturn]] void throw_errno(const char* what, const std::string& detail) {
  PFEM_CHECK_MSG(false, what << " failed (" << std::strerror(errno) << ") "
                             << detail);
  std::abort();  // unreachable; PFEM_CHECK_MSG throws
}

int try_connect_once(const Parsed& p) {
  if (p.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket", p.path);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, p.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) == 0)
      return fd;
    ::close(fd);
    return -1;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const char* host = p.host.empty() ? "127.0.0.1" : p.host.c_str();
  if (::getaddrinfo(host, p.port.c_str(), &hints, &res) != 0) return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  return fd;
}

}  // namespace

int listen_on(const std::string& addr) {
  const Parsed p = parse_addr(addr);
  if (p.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket", p.path);
    ::unlink(p.path.c_str());  // stale socket from a previous run
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, p.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0)
      throw_errno("bind", p.path);
    if (::listen(fd, 64) != 0) throw_errno("listen", p.path);
    return fd;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const char* host = p.host.empty() ? nullptr : p.host.c_str();
  if (::getaddrinfo(host, p.port.c_str(), &hints, &res) != 0)
    throw_errno("getaddrinfo", p.host + ":" + p.port);
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 64) == 0)
      break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) throw_errno("bind/listen", p.host + ":" + p.port);
  return fd;
}

int connect_to(const std::string& addr, double timeout_seconds) {
  const Parsed p = parse_addr(addr);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  for (;;) {
    const int fd = try_connect_once(p);
    if (fd >= 0) return fd;
    if (std::chrono::steady_clock::now() >= deadline)
      PFEM_CHECK_MSG(false, "connect to " << addr << " timed out after "
                                          << timeout_seconds << " s");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

int accept_conn(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;  // listening socket closed/shut down: orderly stop
  }
}

std::array<int, 2> stream_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw_errno("socketpair", "");
  return {fds[0], fds[1]};
}

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) return false;  // EOF
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) return false;  // peer died: treat as EOF
    throw_errno("read", "");
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::send(fd, p + put, n - put, MSG_NOSIGNAL);
    if (w >= 0) {
      put += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) return false;
    throw_errno("write", "");
  }
  return true;
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

void shutdown_fd(int fd) noexcept {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace pfem::net
