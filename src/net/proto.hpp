// pfem::net::proto — the versioned binary protocol of the solve
// service (pfem_serve --listen / pfem_loadgen --connect / pfem_router).
//
// Stream framing: every message is a 16-byte header
//
//   u32 magic   "PFSV"
//   u16 version (1)
//   u16 type    (MsgType)
//   u64 body_len
//
// followed by body_len bytes of little-endian body.  Decoding is total:
// any malformed input maps to a typed DecodeStatus (never UB, never an
// exception) so servers can close the connection with a reason and the
// fuzz suite can assert on outcomes.
//
// Connection: client sends Hello, server answers HelloAck (advertising
// its shard name and team size); then any number of SolveRequest frames,
// each answered by exactly one SolveResponse carrying the same req_id.
// Responses may arrive out of order relative to other requests.  The
// req_id is the FIRST field of every request/response body — at a fixed
// byte offset (kProtoHeaderBytes) — so the router can rewrite it in
// place when multiplexing many client connections onto one shard
// connection.
//
// Solve sessions: SessionOpen(operator_key) is answered by a SessionAck
// whose session_id is the server-assigned handle (0 = refused, see
// detail); SessionClose(operator_key, session_id) is answered by a
// SessionAck echoing the id (0 = unknown).  A SolveRequest carries the
// handle in session_id (0 = no session).  Every request body — solve,
// open, close — starts with (req_id, operator_key), so an affinity
// router can route ALL session traffic by the key with one peek; a
// session therefore lives on the key's affine shard, and session ids
// never need to cross shards.
//
// Deadlines travel as RELATIVE nanoseconds (0 = none): wall clocks of
// client and server need not agree; the server re-anchors the budget on
// its own steady clock at decode time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "net/bytes.hpp"

namespace pfem::net::proto {

inline constexpr std::uint32_t kProtoMagic = 0x56534650u;  // "PFSV" LE
inline constexpr std::uint16_t kProtoVersion = 1;
inline constexpr std::size_t kProtoHeaderBytes = 16;

/// Body-size cap: a frame claiming more is rejected as Oversized before
/// any allocation (malformed-input safety, satellite 3).
inline constexpr std::uint64_t kMaxBodyBytes = 1ull << 28;

enum class MsgType : std::uint16_t {
  Hello = 1,
  HelloAck = 2,
  SolveRequest = 3,
  SolveResponse = 4,
  SessionOpen = 5,
  SessionAck = 6,  ///< answers both SessionOpen and SessionClose
  SessionClose = 7,
};

/// Defined in common/status.hpp (one home for cross-layer status
/// enums); re-exported here so protocol call sites keep the
/// subsystem-local spelling.  Wire-stable value contract (append-only,
/// never renumber — peers compare numerics, artifacts compare names):
///
///   DecodeStatus   0 ok, 1 truncated, 2 bad_magic, 3 bad_version,
///                  4 bad_type, 5 oversized, 6 bad_body
///   RejectReason   0 queue_full, 1 deadline_exceeded,
///                  2 unknown_operator, 3 bad_request, 4 shutting_down,
///                  5 unknown_session  (SolveResponseMsg::reject_reason)
///   CommErrorKind  0 timeout, 1 crash, 2 lost
///   MsgType        1 hello, 2 hello_ack, 3 solve_request,
///                  4 solve_response, 5 session_open, 6 session_ack,
///                  7 session_close
using DecodeStatus = status::DecodeStatus;

[[nodiscard]] constexpr const char* decode_status_name(
    DecodeStatus s) noexcept {
  return status::name(s);
}

struct ProtoHeader {
  std::uint16_t type = 0;
  std::uint64_t body_len = 0;
};

struct HelloMsg {
  std::string client_name;
};

struct HelloAckMsg {
  std::string server_name;
  std::int32_t nranks = 0;
};

/// Response status codes (mirror svc::Outcome alternatives).
enum class SolveStatus : std::uint32_t {
  Completed = 0,
  Rejected = 1,
  Cancelled = 2,
  Failed = 3,
};

struct SolveRequestMsg {
  std::uint64_t req_id = 0;  ///< MUST stay the first field (router rewrite)
  std::string operator_key;
  /// Solve-session handle from a SessionAck; 0 = session-less.  Encoded
  /// directly after operator_key so a router can peek (req_id, key,
  /// session) with one pass and pin session requests to the key's
  /// affine shard.
  std::uint64_t session_id = 0;
  std::uint32_t priority = 0;      ///< svc::Priority
  std::uint64_t deadline_ns = 0;   ///< relative budget; 0 = no deadline
  std::uint64_t seed = 0;
  bool want_solution = false;
  std::int32_t restart = 25;
  std::int32_t max_iters = 10000;
  double tol = 1e-6;
  std::vector<Vector> rhs;
};

/// Open a solve session pinned to `operator_key`; answered by a
/// SessionAck (session_id != 0 on success).
struct SessionOpenMsg {
  std::uint64_t req_id = 0;  ///< MUST stay the first field (router rewrite)
  std::string operator_key;
};

/// Close a session.  Carries the operator key ONLY for router affinity
/// (same body prefix as SolveRequest, so the close reaches the shard
/// that owns the session); the server validates by id alone.
struct SessionCloseMsg {
  std::uint64_t req_id = 0;  ///< MUST stay the first field (router rewrite)
  std::string operator_key;
  std::uint64_t session_id = 0;
};

/// Answer to SessionOpen (session_id = new handle, 0 = refused — e.g.
/// unknown operator) and to SessionClose (session_id echoed, 0 =
/// unknown session).  `detail` explains a refusal.
struct SessionAckMsg {
  std::uint64_t req_id = 0;  ///< MUST stay the first field (router rewrite)
  std::uint64_t session_id = 0;
  std::string detail;
};

struct SolveItemMsg {
  bool converged = false;
  bool breakdown = false;
  std::int32_t iterations = 0;
  double final_relres = 0.0;
};

struct SolveResponseMsg {
  std::uint64_t req_id = 0;  ///< MUST stay the first field (router rewrite)
  SolveStatus status = SolveStatus::Failed;
  std::uint32_t reject_reason = 0;  ///< svc::RejectReason when Rejected
  std::string detail;               ///< reject detail / cancel / error text
  bool cache_hit = false;
  bool comm = false;  ///< Failed: typed communication fault
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;
  std::vector<SolveItemMsg> items;
  std::vector<Vector> solution;  ///< non-empty only when requested
};

// --- encode: append one complete frame (header + body) to `out` ---
void encode_hello(ByteBuffer& out, const HelloMsg& m);
void encode_hello_ack(ByteBuffer& out, const HelloAckMsg& m);
void encode_solve_request(ByteBuffer& out, const SolveRequestMsg& m);
void encode_solve_response(ByteBuffer& out, const SolveResponseMsg& m);
void encode_session_open(ByteBuffer& out, const SessionOpenMsg& m);
void encode_session_close(ByteBuffer& out, const SessionCloseMsg& m);
void encode_session_ack(ByteBuffer& out, const SessionAckMsg& m);

// --- decode ---
/// Validates magic/version/type/body_len of a 16-byte header.
[[nodiscard]] DecodeStatus decode_header(std::span<const unsigned char> hdr,
                                         ProtoHeader& out);
[[nodiscard]] DecodeStatus decode_hello(std::span<const unsigned char> body,
                                        HelloMsg& out);
[[nodiscard]] DecodeStatus decode_hello_ack(
    std::span<const unsigned char> body, HelloAckMsg& out);
[[nodiscard]] DecodeStatus decode_solve_request(
    std::span<const unsigned char> body, SolveRequestMsg& out);
[[nodiscard]] DecodeStatus decode_solve_response(
    std::span<const unsigned char> body, SolveResponseMsg& out);
[[nodiscard]] DecodeStatus decode_session_open(
    std::span<const unsigned char> body, SessionOpenMsg& out);
[[nodiscard]] DecodeStatus decode_session_close(
    std::span<const unsigned char> body, SessionCloseMsg& out);
[[nodiscard]] DecodeStatus decode_session_ack(
    std::span<const unsigned char> body, SessionAckMsg& out);

}  // namespace pfem::net::proto
