// pfem::net::proto — the versioned binary protocol of the solve
// service (pfem_serve --listen / pfem_loadgen --connect / pfem_router).
//
// Stream framing: every message is a 16-byte header
//
//   u32 magic   "PFSV"
//   u16 version (1)
//   u16 type    (MsgType)
//   u64 body_len
//
// followed by body_len bytes of little-endian body.  Decoding is total:
// any malformed input maps to a typed DecodeStatus (never UB, never an
// exception) so servers can close the connection with a reason and the
// fuzz suite can assert on outcomes.
//
// Session: client sends Hello, server answers HelloAck (advertising its
// shard name and team size); then any number of SolveRequest frames,
// each answered by exactly one SolveResponse carrying the same req_id.
// Responses may arrive out of order relative to other requests.  The
// req_id is the FIRST field of both bodies — at a fixed byte offset
// (kProtoHeaderBytes) — so the router can rewrite it in place when
// multiplexing many client connections onto one shard connection.
//
// Deadlines travel as RELATIVE nanoseconds (0 = none): wall clocks of
// client and server need not agree; the server re-anchors the budget on
// its own steady clock at decode time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/bytes.hpp"

namespace pfem::net::proto {

inline constexpr std::uint32_t kProtoMagic = 0x56534650u;  // "PFSV" LE
inline constexpr std::uint16_t kProtoVersion = 1;
inline constexpr std::size_t kProtoHeaderBytes = 16;

/// Body-size cap: a frame claiming more is rejected as Oversized before
/// any allocation (malformed-input safety, satellite 3).
inline constexpr std::uint64_t kMaxBodyBytes = 1ull << 28;

enum class MsgType : std::uint16_t {
  Hello = 1,
  HelloAck = 2,
  SolveRequest = 3,
  SolveResponse = 4,
};

enum class DecodeStatus {
  Ok,
  Truncated,   ///< fewer bytes than the header/body claims
  BadMagic,
  BadVersion,
  BadType,
  Oversized,   ///< body_len exceeds kMaxBodyBytes (or a count field lies)
  BadBody,     ///< structurally invalid body for the declared type
};

[[nodiscard]] const char* decode_status_name(DecodeStatus s) noexcept;

struct ProtoHeader {
  std::uint16_t type = 0;
  std::uint64_t body_len = 0;
};

struct HelloMsg {
  std::string client_name;
};

struct HelloAckMsg {
  std::string server_name;
  std::int32_t nranks = 0;
};

/// Response status codes (mirror svc::Outcome alternatives).
enum class SolveStatus : std::uint32_t {
  Completed = 0,
  Rejected = 1,
  Cancelled = 2,
  Failed = 3,
};

struct SolveRequestMsg {
  std::uint64_t req_id = 0;  ///< MUST stay the first field (router rewrite)
  std::string operator_key;
  std::uint32_t priority = 0;      ///< svc::Priority
  std::uint64_t deadline_ns = 0;   ///< relative budget; 0 = no deadline
  std::uint64_t seed = 0;
  bool want_solution = false;
  std::int32_t restart = 25;
  std::int32_t max_iters = 10000;
  double tol = 1e-6;
  std::vector<Vector> rhs;
};

struct SolveItemMsg {
  bool converged = false;
  bool breakdown = false;
  std::int32_t iterations = 0;
  double final_relres = 0.0;
};

struct SolveResponseMsg {
  std::uint64_t req_id = 0;  ///< MUST stay the first field (router rewrite)
  SolveStatus status = SolveStatus::Failed;
  std::uint32_t reject_reason = 0;  ///< svc::RejectReason when Rejected
  std::string detail;               ///< reject detail / cancel / error text
  bool cache_hit = false;
  bool comm = false;  ///< Failed: typed communication fault
  double queue_seconds = 0.0;
  double solve_seconds = 0.0;
  std::vector<SolveItemMsg> items;
  std::vector<Vector> solution;  ///< non-empty only when requested
};

// --- encode: append one complete frame (header + body) to `out` ---
void encode_hello(ByteBuffer& out, const HelloMsg& m);
void encode_hello_ack(ByteBuffer& out, const HelloAckMsg& m);
void encode_solve_request(ByteBuffer& out, const SolveRequestMsg& m);
void encode_solve_response(ByteBuffer& out, const SolveResponseMsg& m);

// --- decode ---
/// Validates magic/version/type/body_len of a 16-byte header.
[[nodiscard]] DecodeStatus decode_header(std::span<const unsigned char> hdr,
                                         ProtoHeader& out);
[[nodiscard]] DecodeStatus decode_hello(std::span<const unsigned char> body,
                                        HelloMsg& out);
[[nodiscard]] DecodeStatus decode_hello_ack(
    std::span<const unsigned char> body, HelloAckMsg& out);
[[nodiscard]] DecodeStatus decode_solve_request(
    std::span<const unsigned char> body, SolveRequestMsg& out);
[[nodiscard]] DecodeStatus decode_solve_response(
    std::span<const unsigned char> body, SolveResponseMsg& out);

}  // namespace pfem::net::proto
