// Socket transport: par ranks split across processes, one stream
// connection per process pair carrying length-prefixed frames
// (frame.hpp).  See transport.hpp for the contract.
#pragma once

#include <memory>
#include <vector>

#include "net/transport.hpp"

namespace pfem::net {

/// Ranks are assigned to processes as contiguous blocks:
/// ranks_per_proc = {2, 2} puts ranks 0-1 in process 0 and 2-3 in
/// process 1.  fds[p] is a connected stream socket to process p (the
/// transport takes ownership and closes them); fds[my_proc] is ignored
/// — co-located pairs are routed through a private socketpair so EVERY
/// message, local or remote, travels the same wire path (that is what
/// makes single-process "loopback" runs a faithful rehearsal of the
/// distributed wire, chaos suite included).
struct SocketTransportConfig {
  std::vector<int> ranks_per_proc;
  int my_proc = 0;
  std::vector<int> fds;
};

std::shared_ptr<Transport> make_socket_transport(SocketTransportConfig cfg);

/// Single-process loopback: all `nranks` ranks in this process, every
/// message still serialized through a socketpair.
std::shared_ptr<Transport> make_socket_loopback_transport(int nranks);

}  // namespace pfem::net
