// Socket transport implementation.
//
// Outbound: push() assigns the pair's next wire sequence number from
// the same sender-owned counters the in-process ring uses (so injected
// Drops consume numbers identically), then writes one frame — header +
// raw doubles — to the destination process's connection under a
// per-connection mutex (ranks of one process share the socket).
//
// Inbound: one reader thread per connection demultiplexes frames into
// a RingCore inbox, delivering each message under its wire sequence
// number.  take() is then EXACTLY the in-process receive: same ring,
// same dedup watermark, same gap detection, same stash — the chaos
// semantics are inherited, not re-implemented.
//
// Teardown: abort() trips the local inbox and best-effort sends an
// Abort frame to every peer process; a peer that sees EOF instead
// (process death) also aborts.  Blocked ranks unwind with net::Aborted
// either way.
#include "net/socket_transport.hpp"

#include <cstring>
#include <mutex>
#include <thread>

#include "net/frame.hpp"
#include "net/ring.hpp"
#include "net/sockets.hpp"

namespace pfem::net {

namespace {

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig cfg)
      : nprocs_(static_cast<int>(cfg.ranks_per_proc.size())),
        my_proc_(cfg.my_proc),
        ring_(total_ranks(cfg)) {
    PFEM_CHECK(nprocs_ >= 1);
    PFEM_CHECK(my_proc_ >= 0 && my_proc_ < nprocs_);
    PFEM_CHECK_MSG(static_cast<int>(cfg.fds.size()) == nprocs_ ||
                       nprocs_ == 1,
                   "socket transport: need one fd per peer process");
    proc_of_.reserve(static_cast<std::size_t>(ring_.size()));
    for (int p = 0; p < nprocs_; ++p) {
      PFEM_CHECK(cfg.ranks_per_proc[static_cast<std::size_t>(p)] >= 1);
      if (p == my_proc_) rank_base_ = static_cast<int>(proc_of_.size());
      for (int i = 0; i < cfg.ranks_per_proc[static_cast<std::size_t>(p)];
           ++i)
        proc_of_.push_back(p);
    }
    nlocal_ = cfg.ranks_per_proc[static_cast<std::size_t>(my_proc_)];

    // Connection table: peers from the config, self through a private
    // socketpair so local traffic takes the same serialize/deserialize
    // path as remote traffic.
    const auto self = stream_pair();
    conn_.assign(static_cast<std::size_t>(nprocs_), -1);
    read_fd_.assign(static_cast<std::size_t>(nprocs_), -1);
    for (int p = 0; p < nprocs_; ++p) {
      if (p == my_proc_) {
        conn_[static_cast<std::size_t>(p)] = self[0];
        read_fd_[static_cast<std::size_t>(p)] = self[1];
      } else {
        const int fd = cfg.fds[static_cast<std::size_t>(p)];
        PFEM_CHECK_MSG(fd >= 0, "socket transport: missing fd for process "
                                    << p);
        conn_[static_cast<std::size_t>(p)] = fd;
        read_fd_[static_cast<std::size_t>(p)] = fd;  // full duplex
      }
    }
    write_mutex_ = std::vector<std::mutex>(static_cast<std::size_t>(nprocs_));
    readers_.reserve(static_cast<std::size_t>(nprocs_));
    for (int p = 0; p < nprocs_; ++p)
      readers_.emplace_back([this, p] { reader_loop(p); });
  }

  ~SocketTransport() override {
    // Goodbye handshake: tell every peer this close is orderly BEFORE
    // closing anything.  A process can legitimately finish its half of
    // a job and tear down while a slower peer still waits for frames
    // that are already in the socket buffer — the peer drains them,
    // reads our Fin, and treats the EOF as a clean close.  Peer death
    // remains distinguishable: EOF with no Fin aborts the team.
    FrameHeader fin;
    fin.kind = static_cast<std::uint16_t>(FrameKind::Fin);
    ByteBuffer finbuf;
    encode_frame_header(finbuf, fin);
    for (int p = 0; p < nprocs_; ++p) {
      if (p == my_proc_) continue;
      try {
        std::lock_guard<std::mutex> lk(
            write_mutex_[static_cast<std::size_t>(p)]);
        (void)write_full(conn_[static_cast<std::size_t>(p)], finbuf.data(),
                         finbuf.size());
      } catch (...) {
        // Peer already gone — nothing to say goodbye to.
      }
    }
    shutting_down_.store(true, std::memory_order_seq_cst);
    ring_.abort();
    for (int p = 0; p < nprocs_; ++p)
      shutdown_fd(read_fd_[static_cast<std::size_t>(p)]);
    for (std::thread& t : readers_) t.join();
    close_fd(conn_[static_cast<std::size_t>(my_proc_)]);
    close_fd(read_fd_[static_cast<std::size_t>(my_proc_)]);
    for (int p = 0; p < nprocs_; ++p)
      if (p != my_proc_) close_fd(conn_[static_cast<std::size_t>(p)]);
  }

  [[nodiscard]] const char* name() const noexcept override {
    return "socket";
  }
  [[nodiscard]] int nranks() const noexcept override { return ring_.size(); }
  [[nodiscard]] int rank_base() const noexcept override { return rank_base_; }
  [[nodiscard]] int local_ranks() const noexcept override { return nlocal_; }
  [[nodiscard]] bool multi_process() const noexcept override {
    return nprocs_ > 1;
  }

  void push(int src, int dst, int tag, std::span<const real_t> data,
            bool wire_dup, const WaitStats& /*ws*/) override {
    ring_.check_abort();
    // Sender-owned numbering, shared with the in-process semantics: an
    // injected Drop (mark_dropped) consumed a number here too.
    const std::uint64_t seq =
        wire_dup ? ring_.last_seq(src, dst) : ring_.next_seq(src, dst);
    FrameHeader h;
    h.kind = static_cast<std::uint16_t>(FrameKind::Data);
    h.src = src;
    h.dst = dst;
    h.tag = tag;
    h.seq = seq;
    h.count = data.size();
    ByteBuffer buf;
    buf.reserve(kFrameHeaderBytes + data.size() * sizeof(real_t));
    encode_frame_header(buf, h);
    put_bytes(buf, data.data(), data.size() * sizeof(real_t));
    const int proc = proc_of_[static_cast<std::size_t>(dst)];
    bool ok;
    {
      std::lock_guard<std::mutex> lk(
          write_mutex_[static_cast<std::size_t>(proc)]);
      ok = write_full(conn_[static_cast<std::size_t>(proc)], buf.data(),
                      buf.size());
    }
    if (!ok) {
      // Peer process is gone: tear the team down instead of hanging.
      ring_.abort();
      throw Aborted{};
    }
  }

  void mark_dropped(int src, int dst) override {
    ring_.mark_dropped(src, dst);
  }

  void take(int dst, int src, int tag, MsgSink& sink,
            const WaitStats& ws) override {
    ring_.take(dst, src, tag, sink, ws);
  }

  void set_timeout(double seconds) noexcept override {
    ring_.set_timeout(seconds);
  }

  void abort() noexcept override {
    ring_.abort();
    // Best-effort Abort frame to every peer so their blocked ranks
    // unwind promptly instead of waiting for a timeout.
    FrameHeader h;
    h.kind = static_cast<std::uint16_t>(FrameKind::Abort);
    ByteBuffer buf;
    encode_frame_header(buf, h);
    for (int p = 0; p < nprocs_; ++p) {
      if (p == my_proc_) continue;
      try {
        std::lock_guard<std::mutex> lk(
            write_mutex_[static_cast<std::size_t>(p)]);
        (void)write_full(conn_[static_cast<std::size_t>(p)], buf.data(),
                         buf.size());
      } catch (...) {
        // Peer already gone — nothing to propagate to.
      }
    }
  }

  [[nodiscard]] bool is_aborted() const noexcept override {
    return ring_.is_aborted();
  }

  /// Wire sequence numbers keep running across jobs (both ends must
  /// agree and there is no inter-process rendezvous here): clean
  /// back-to-back jobs continue seamlessly; a Team whose job aborted
  /// should discard the transport (see Transport::reset_for_job).
  void reset_for_job() override {}

 private:
  static int total_ranks(const SocketTransportConfig& cfg) {
    int n = 0;
    for (const int k : cfg.ranks_per_proc) n += k;
    PFEM_CHECK(n >= 1);
    return n;
  }

  void reader_loop(int proc) {
    const int fd = read_fd_[static_cast<std::size_t>(proc)];
    unsigned char hdr[kFrameHeaderBytes];
    Vector scratch;
    // Set by this connection's Fin frame; only this thread touches it.
    bool peer_said_goodbye = false;
    for (;;) {
      if (!read_full(fd, hdr, sizeof hdr)) {
        // EOF: orderly when we are shutting down or the peer announced
        // its close with a Fin; peer death otherwise — then local
        // ranks must not block forever.
        if (!peer_said_goodbye &&
            !shutting_down_.load(std::memory_order_seq_cst))
          ring_.abort();
        return;
      }
      FrameHeader h;
      if (decode_frame_header(std::span<const unsigned char>(hdr, sizeof hdr),
                              h) != FrameStatus::Ok) {
        ring_.abort();  // corrupt stream: fail the team, typed upstream
        return;
      }
      if (h.kind == static_cast<std::uint16_t>(FrameKind::Fin)) {
        peer_said_goodbye = true;
        continue;  // drain anything the peer wrote before its Fin
      }
      if (h.kind == static_cast<std::uint16_t>(FrameKind::Abort)) {
        ring_.abort();
        continue;  // keep draining until the peer closes
      }
      if (h.dst < 0 || h.dst >= ring_.size() || h.src < 0 ||
          h.src >= ring_.size() ||
          proc_of_[static_cast<std::size_t>(h.dst)] != my_proc_) {
        ring_.abort();
        return;
      }
      scratch.resize(h.count);
      if (!read_full(fd, scratch.data(), h.count * sizeof(real_t))) {
        if (!shutting_down_.load(std::memory_order_seq_cst)) ring_.abort();
        return;
      }
      try {
        // Deliver under the frame's wire seq; blocks when the inbox
        // ring is full (backpressure onto the socket).
        ring_.push_seq(h.src, h.dst, h.tag,
                       std::span<const real_t>(scratch.data(), scratch.size()),
                       h.seq, WaitStats{}, fault::Op::Recv, h.dst, h.src);
      } catch (...) {
        // Abort (or an armed timeout) while delivering: the team is
        // going down; stop demultiplexing.
        return;
      }
    }
  }

  int nprocs_;
  int my_proc_;
  RingCore ring_;  ///< inbox for local dsts + outbound seq counters
  std::vector<int> proc_of_;
  int rank_base_ = 0;
  int nlocal_ = 0;
  std::vector<int> conn_;     ///< per process: fd push() writes to
  std::vector<int> read_fd_;  ///< per process: fd the reader drains
  std::vector<std::mutex> write_mutex_;
  std::vector<std::thread> readers_;
  std::atomic<bool> shutting_down_{false};
};

}  // namespace

std::shared_ptr<Transport> make_socket_transport(SocketTransportConfig cfg) {
  return std::make_shared<SocketTransport>(std::move(cfg));
}

std::shared_ptr<Transport> make_socket_loopback_transport(int nranks) {
  SocketTransportConfig cfg;
  cfg.ranks_per_proc = {nranks};
  cfg.my_proc = 0;
  return std::make_shared<SocketTransport>(std::move(cfg));
}

}  // namespace pfem::net
