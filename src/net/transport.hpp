// pfem::net — the process-transport seam under the SPMD runtime.
//
// par::Team speaks to its wire through this interface: blocking tagged
// point-to-point push/take per ordered rank pair with FIFO order, wire
// sequence numbers (dedup of injected duplicates, typed loss detection
// of injected drops), a team-wide abort flag that unwinds blocked
// ranks, and an optional wait deadline that turns a dead peer into a
// typed fault::CommError instead of a hang.
//
// Three implementations:
//
//   in-process (inproc.cpp)        — the PR-1 SPSC channel rings, the
//                                    zero-cost default for rank teams
//                                    that are threads in one process;
//   shared memory (shm.cpp)        — fixed-capacity rings in a
//                                    MAP_SHARED region for co-located
//                                    processes forked around it;
//   sockets (socket_transport.cpp) — length-prefixed frames over
//                                    stream sockets (Unix or TCP), one
//                                    connection per process pair, for
//                                    ranks split across address spaces.
//
// Fault injection stays ABOVE this seam: par::Comm consumes the seeded
// plan and translates Drop into mark_dropped() and Duplicate into a
// wire_dup push, so every transport inherits the chaos suite's
// semantics (gap => CommError::lost, dup absorbed) without any
// transport-specific hooks.  Likewise spans/counters: the runtime
// stamps them, transports only report wait time through WaitStats.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"

namespace pfem::net {

/// Thrown out of blocked transport (and runtime) waits when the team is
/// torn down because another rank failed or the job was cancelled, so
/// the whole team unwinds instead of deadlocking.  par's TeamRuntime
/// swallows these and rethrows the originating error.
class Aborted : public Error {
 public:
  Aborted() : Error("SPMD team aborted because another rank failed") {}
};

/// Per-call accounting hooks: transports add blocked-wait time and
/// deadline expiries to the caller's counters through these (null-safe),
/// keeping pfem::par the only layer that knows PerfCounters.
struct WaitStats {
  double* wait_seconds = nullptr;
  std::uint64_t* timeouts = nullptr;

  void add_wait(double s) const {
    if (wait_seconds != nullptr) *wait_seconds += s;
  }
  void add_timeout() const {
    if (timeouts != nullptr) ++*timeouts;
  }
};

/// Receiver callback of take().  `owned` is non-null when the transport
/// can relinquish the payload buffer (the in-process single-copy swap
/// receive); otherwise the sink must copy out of `data` before
/// returning (shared-memory slots, which stay mapped in the region).
/// `data` is valid only for the duration of the call.
class MsgSink {
 public:
  virtual void deliver(Vector* owned, std::span<const real_t> data) = 0;

 protected:
  ~MsgSink() = default;
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// Global team size (across every process on this transport).
  [[nodiscard]] virtual int nranks() const noexcept = 0;
  /// First rank hosted by THIS process (contiguous block).
  [[nodiscard]] virtual int rank_base() const noexcept = 0;
  /// Number of ranks hosted by this process.
  [[nodiscard]] virtual int local_ranks() const noexcept = 0;
  /// True when rank pairs may live in different address spaces — the
  /// runtime then routes barriers/allreduces over tagged p2p messages
  /// (reserved negative tags) instead of its in-process reduction cells.
  [[nodiscard]] virtual bool multi_process() const noexcept = 0;

  /// Blocking FIFO push of (src -> dst, tag).  `wire_dup` re-sends the
  /// previous message's wire sequence number (an injected duplicated
  /// delivery) instead of issuing a fresh one.  Blocks when the pair's
  /// ring/window is full; throws CommError::timeout past the armed
  /// deadline, Aborted on team teardown.  src must be hosted locally.
  virtual void push(int src, int dst, int tag, std::span<const real_t> data,
                    bool wire_dup, const WaitStats& ws) = 0;

  /// Consume (src -> dst)'s next wire sequence number without sending —
  /// an injected Drop.  The receiver sees the gap and fails typed.
  virtual void mark_dropped(int src, int dst) = 0;

  /// Blocking receive of the oldest (src -> dst) message with tag
  /// `tag`; non-matching older messages are stashed (FIFO per tag is
  /// preserved).  Absorbs wire duplicates; throws CommError::lost on a
  /// sequence gap, CommError::timeout past the deadline, Aborted on
  /// teardown.  dst must be hosted locally.
  virtual void take(int dst, int src, int tag, MsgSink& sink,
                    const WaitStats& ws) = 0;

  /// Deadline for blocking waits in THIS process; 0 disables.
  virtual void set_timeout(double seconds) noexcept = 0;

  /// Tear down: every blocked or future transport call in every
  /// attached process unwinds with Aborted.  Multi-process transports
  /// propagate the flag (shared memory word / abort frame).
  virtual void abort() noexcept = 0;
  [[nodiscard]] virtual bool is_aborted() const noexcept = 0;

  /// Restore quiescence between Team jobs.  The in-process transport
  /// fully recycles rings and sequence numbers (the warm-team path);
  /// multi-process transports keep their wire sequence numbers running
  /// (both ends must agree and cannot rendezvous here) — clean
  /// back-to-back jobs are fine, but a transport whose job aborted
  /// should be discarded, not reused.
  virtual void reset_for_job() = 0;
};

/// The default: the in-process per-pair SPSC channel rings.
std::shared_ptr<Transport> make_inproc_transport(int nranks);

}  // namespace pfem::net
