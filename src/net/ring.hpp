// The in-process channel-ring core: one persistent single-producer /
// single-consumer ring of preallocated payload slots per ordered rank
// pair, with wire sequence numbers, out-of-order tag stashing, and
// spin -> yield -> condvar-park blocking.
//
// This is the PR-1 runtime's transport, extracted so it serves two
// masters: the in-process Transport uses it end to end (sender fills a
// slot, receiver drains it), and the socket transport uses it as its
// receive-side inbox (the reader thread is the producer, delivering
// frames under their wire sequence numbers).  Keeping one RingCore
// means the gap-detection / dedup / stash semantics the chaos suite
// pins down are literally the same code on every wire.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "fault/fault.hpp"
#include "net/transport.hpp"
#include "net/wait.hpp"

namespace pfem::net {

/// One preallocated message slot of an SPSC ring.  `full` is the
/// synchronization point: the sender owns the slot while false, the
/// receiver while true.  Payload capacity grows on first use and is
/// then reused forever — no steady-state allocation.
struct RingSlot {
  std::atomic<bool> full{false};
  int tag = 0;
  std::size_t size = 0;
  /// Wire sequence number (1-based, per channel).  A duplicated
  /// delivery reuses its original's number, which is how the receiver
  /// recognizes and absorbs it — at-least-once off the wire,
  /// exactly-once delivered.
  std::uint64_t seq = 0;
  Vector payload;
};

/// Persistent SPSC channel for one ordered rank pair.  head is touched
/// only by the producer, tail and stash only by the consumer;
/// cross-thread visibility runs through RingSlot::full.
///
/// The stash holds messages the receiver popped while scanning for a
/// different tag (a seldom-used MPI-style out-of-order match); FIFO
/// order per tag is preserved because stashed messages are always older
/// than anything still in the ring.
struct RingChannel {
  // Deep enough that the solver's 1-2 messages per neighbor per
  // iteration never block, shallow enough that the ring's payload
  // buffers are revisited while still cache-resident.
  static constexpr std::size_t kSlots = 8;

  struct Stashed {
    int tag;
    Vector payload;
  };

  std::array<RingSlot, kSlots> slots;
  std::size_t head = 0;  ///< producer-owned: next slot to fill
  std::size_t tail = 0;  ///< consumer-owned: next slot to drain
  std::vector<Stashed> stash;  ///< consumer-owned out-of-order buffer
  std::uint64_t send_seq = 0;  ///< sender-owned: last wire seq issued
  std::uint64_t last_drained_seq = 0;  ///< consumer-owned: dedup watermark

  // Parking lot.  The waiting counters gate the notify calls so the
  // uncontended fast path never touches the mutex; the seq_cst
  // handshake (RingSlot::full / *_waiting) makes the gate
  // lost-wakeup-free.
  std::mutex m;
  std::condition_variable data_cv;   ///< consumer waits for a full slot
  std::condition_variable space_cv;  ///< producer waits for a free slot
  std::atomic<int> recv_waiting{0};
  std::atomic<int> send_waiting{0};
};

/// The P x P channel matrix plus the abort/timeout plumbing its waits
/// consult.  All methods keep the SPSC discipline: for a given (src,
/// dst) pair, push_seq is called by one thread and take by one thread.
class RingCore {
 public:
  explicit RingCore(int nranks)
      : size_(nranks),
        channels_(static_cast<std::size_t>(nranks) *
                  static_cast<std::size_t>(nranks)) {}

  [[nodiscard]] int size() const noexcept { return size_; }

  [[nodiscard]] RingChannel& channel(int src, int dst) {
    return channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(size_) +
                     static_cast<std::size_t>(dst)];
  }

  /// Producer-side wire sequence bookkeeping (sender-owned counters;
  /// the socket transport uses these for its OUTBOUND numbering even
  /// though the frames travel over a socket, so an injected Drop
  /// consumes a number exactly like the in-process wire).
  [[nodiscard]] std::uint64_t next_seq(int src, int dst) {
    return ++channel(src, dst).send_seq;
  }
  [[nodiscard]] std::uint64_t last_seq(int src, int dst) {
    return channel(src, dst).send_seq;
  }
  void mark_dropped(int src, int dst) { ++channel(src, dst).send_seq; }

  /// Blocking push of a message that already carries its wire sequence
  /// number.  `op`/`err_rank`/`err_peer` shape the typed timeout error
  /// (Op::Send for a true sender, Op::Recv when the producer is a
  /// socket reader delivering into the inbox — the *receiver* is who
  /// is stuck in that case).
  void push_seq(int src, int dst, int tag, std::span<const real_t> data,
                std::uint64_t seq, const WaitStats& ws, fault::Op op,
                int err_rank, int err_peer) {
    RingChannel& ch = channel(src, dst);
    RingSlot& slot = ch.slots[ch.head % RingChannel::kSlots];
    // Ring full: wait for the consumer to free this slot.
    if (slot.full.load(std::memory_order_seq_cst)) {
      const auto t0 = detail::SteadyClock::now();
      if (!wait_until(
              [&] { return !slot.full.load(std::memory_order_seq_cst); },
              ch.m, ch.space_cv, ch.send_waiting)) {
        ws.add_timeout();
        throw fault::CommError::timeout(err_rank, err_peer, op,
                                        timeout_seconds());
      }
      ws.add_wait(detail::seconds_since(t0));
    }
    check_abort();
    slot.tag = tag;
    slot.size = data.size();
    slot.seq = seq;
    if (slot.payload.size() < data.size()) slot.payload.resize(data.size());
    std::copy(data.begin(), data.end(), slot.payload.begin());
    slot.full.store(true, std::memory_order_seq_cst);
    ++ch.head;
    notify_if_waiting(ch.m, ch.data_cv, ch.recv_waiting);
  }

  /// Pop the oldest (src -> dst) message with a matching tag and hand
  /// it to the sink (relinquishing the payload buffer, so the sink may
  /// swap it out — the single-copy receive).  Non-matching older
  /// messages move to the stash so the ring stays a compact FIFO.
  void take(int dst, int src, int tag, MsgSink& sink, const WaitStats& ws) {
    // No abort check while data is available: a peer process that
    // finishes its half of the job and closes its connection trips the
    // EOF abort AFTER its final frames were delivered, and those frames
    // must still reach the ranks waiting on them (otherwise clean
    // completion races teardown).  Only an unsatisfiable wait — empty
    // channel and the abort flag up — unwinds with Aborted.
    RingChannel& ch = channel(src, dst);
    for (auto it = ch.stash.begin(); it != ch.stash.end(); ++it) {
      if (it->tag == tag) {
        sink.deliver(&it->payload,
                     std::span<const real_t>(it->payload.data(),
                                             it->payload.size()));
        ch.stash.erase(it);
        return;
      }
    }
    for (;;) {
      RingSlot& slot = ch.slots[ch.tail % RingChannel::kSlots];
      if (!slot.full.load(std::memory_order_seq_cst)) {
        check_abort();
        const auto t0 = detail::SteadyClock::now();
        if (!wait_until(
                [&] { return slot.full.load(std::memory_order_seq_cst); },
                ch.m, ch.data_cv, ch.recv_waiting)) {
          ws.add_timeout();
          throw fault::CommError::timeout(dst, src, fault::Op::Recv,
                                          timeout_seconds());
        }
        ws.add_wait(detail::seconds_since(t0));
        // The wake may be the abort, not data — consume if the slot
        // filled, unwind otherwise.
        if (!slot.full.load(std::memory_order_seq_cst)) check_abort();
      }
      // Wire-level duplicate (seq at or below the watermark): the
      // channel absorbs it — at-least-once delivery dedups to
      // exactly-once before any solver code sees the payload.
      if (slot.seq <= ch.last_drained_seq) {
        release_slot(ch, slot);
        continue;
      }
      // A gap above the watermark means a message was dropped on the
      // wire (an injected Drop consumed its seq without delivering).
      // Surface it typed right here: consuming the next message in the
      // lost one's place would silently shift the stream and corrupt
      // the solve.  (A drop with no later traffic is caught by the
      // channel timeout instead.)
      if (slot.seq > ch.last_drained_seq + 1)
        throw fault::CommError::lost(dst, src, ch.last_drained_seq + 1,
                                     slot.seq);
      ch.last_drained_seq = slot.seq;
      if (slot.tag == tag) {
        sink.deliver(&slot.payload,
                     std::span<const real_t>(slot.payload.data(), slot.size));
        release_slot(ch, slot);
        return;
      }
      // Tag mismatch: move the message aside.  The slot keeps an empty
      // Vector; the producer regrows it on the next use of this ring
      // position.
      ch.stash.push_back(RingChannel::Stashed{slot.tag, Vector()});
      ch.stash.back().payload.swap(slot.payload);
      ch.stash.back().payload.resize(slot.size);
      release_slot(ch, slot);
    }
  }

  // ---- Abort / timeout ---------------------------------------------------

  void set_timeout(double seconds) noexcept {
    timeout_ns_.store(
        seconds > 0.0 ? static_cast<std::int64_t>(seconds * 1e9) : 0,
        std::memory_order_seq_cst);
  }

  [[nodiscard]] double timeout_seconds() const noexcept {
    return static_cast<double>(timeout_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  void abort() noexcept {
    aborted_.store(true, std::memory_order_seq_cst);
    for (RingChannel& ch : channels_) {
      std::lock_guard<std::mutex> lk(ch.m);
      ch.data_cv.notify_all();
      ch.space_cv.notify_all();
    }
  }

  [[nodiscard]] bool is_aborted() const noexcept {
    return aborted_.load(std::memory_order_seq_cst);
  }

  void check_abort() const {
    if (is_aborted()) throw Aborted{};
  }

  /// Restore quiescence (only safe while no thread is inside a
  /// push/take — the Team dispatcher owns that window between jobs).
  void reset() {
    aborted_.store(false, std::memory_order_seq_cst);
    for (RingChannel& ch : channels_) {
      for (RingSlot& slot : ch.slots) {
        slot.full.store(false, std::memory_order_relaxed);
        slot.tag = 0;
        slot.size = 0;
      }
      ch.head = 0;
      ch.tail = 0;
      ch.stash.clear();
      ch.send_seq = 0;
      ch.last_drained_seq = 0;
    }
  }

 private:
  void release_slot(RingChannel& ch, RingSlot& slot) {
    slot.full.store(false, std::memory_order_seq_cst);
    ++ch.tail;
    notify_if_waiting(ch.m, ch.space_cv, ch.send_waiting);
  }

  /// Publisher side of the parking-lot handshake: the waiting counter
  /// is read after the seq_cst publish of the condition, so a waiter
  /// that missed the publish is guaranteed to be visible here (and vice
  /// versa) — the Dekker-style store/load pairing rules out lost
  /// wakeups without taking the mutex on the fast path.
  static void notify_if_waiting(std::mutex& m, std::condition_variable& cv,
                                std::atomic<int>& waiting) {
    if (waiting.load(std::memory_order_seq_cst) != 0) {
      // Empty critical section: any waiter that registered but has not
      // finished its predicate re-check under the lock is flushed out.
      { std::lock_guard<std::mutex> lk(m); }
      cv.notify_all();
    }
  }

  /// Waiter side: spin on the predicate, then yield, then park.
  /// Returns false when a timeout is armed and the park phase exceeded
  /// it with the predicate still false.  (An abort wakes the waiter
  /// through `done` and is never reported as a timeout.)
  template <typename Pred>
  [[nodiscard]] bool wait_until(Pred pred, std::mutex& m,
                                std::condition_variable& cv,
                                std::atomic<int>& waiting) {
    auto done = [&] { return pred() || is_aborted(); };
    for (int i = detail::spin_budget(); i > 0; --i) {
      if (done()) return true;
      detail::cpu_relax();
    }
    for (int i = 0; i < detail::kYieldIters; ++i) {
      if (done()) return true;
      std::this_thread::yield();
    }
    const std::int64_t tns = timeout_ns_.load(std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(m);
    waiting.fetch_add(1, std::memory_order_seq_cst);
    bool ok = true;
    if (tns <= 0)
      cv.wait(lk, done);
    else
      ok = cv.wait_for(lk, std::chrono::nanoseconds(tns), done);
    waiting.fetch_sub(1, std::memory_order_relaxed);
    return ok;
  }

  int size_;
  std::vector<RingChannel> channels_;
  std::atomic<bool> aborted_{false};
  std::atomic<std::int64_t> timeout_ns_{0};  ///< 0 = waits never time out
};

}  // namespace pfem::net
