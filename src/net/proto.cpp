#include "net/proto.hpp"

namespace pfem::net::proto {

namespace {

/// Sane caps on repeated fields so a hostile count cannot drive a huge
/// allocation before the payload-size check catches it.
constexpr std::uint32_t kMaxStringBytes = 1u << 16;
constexpr std::uint32_t kMaxVectors = 1u << 12;
constexpr std::uint64_t kMaxVectorDoubles = kMaxBodyBytes / sizeof(real_t);

void begin_frame(ByteBuffer& out, MsgType type) {
  put_u32(out, kProtoMagic);
  put_u16(out, kProtoVersion);
  put_u16(out, static_cast<std::uint16_t>(type));
  put_u64(out, 0);  // body_len patched in end_frame
}

void end_frame(ByteBuffer& out, std::size_t frame_start) {
  const std::uint64_t body_len =
      out.size() - frame_start - kProtoHeaderBytes;
  for (int i = 0; i < 8; ++i)
    out[frame_start + 8 + static_cast<std::size_t>(i)] =
        static_cast<unsigned char>((body_len >> (8 * i)) & 0xff);
}

void put_string(ByteBuffer& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  put_bytes(out, s.data(), s.size());
}

void put_vector(ByteBuffer& out, const Vector& v) {
  put_u64(out, v.size());
  put_bytes(out, v.data(), v.size() * sizeof(real_t));
}

[[nodiscard]] DecodeStatus get_short_string(ByteReader& r, std::string& s) {
  std::uint32_t n;
  if (!r.get_u32(n)) return DecodeStatus::BadBody;
  if (n > kMaxStringBytes) return DecodeStatus::Oversized;  // lying count
  return r.get_string(s, n) ? DecodeStatus::Ok : DecodeStatus::BadBody;
}

[[nodiscard]] DecodeStatus get_vector(ByteReader& r, Vector& v) {
  std::uint64_t n;
  if (!r.get_u64(n)) return DecodeStatus::BadBody;
  if (n > kMaxVectorDoubles) return DecodeStatus::Oversized;  // lying count
  if (n * sizeof(real_t) > r.remaining()) return DecodeStatus::BadBody;
  v.resize(n);
  return r.get_doubles(v.data(), n) ? DecodeStatus::Ok : DecodeStatus::BadBody;
}

/// Bodies are fixed compositions, not streams: leftover bytes mean the
/// peer and we disagree about the layout — structurally invalid.
[[nodiscard]] DecodeStatus finish(const ByteReader& r) {
  return r.remaining() == 0 ? DecodeStatus::Ok : DecodeStatus::BadBody;
}

}  // namespace

void encode_hello(ByteBuffer& out, const HelloMsg& m) {
  const std::size_t start = out.size();
  begin_frame(out, MsgType::Hello);
  put_string(out, m.client_name);
  end_frame(out, start);
}

void encode_hello_ack(ByteBuffer& out, const HelloAckMsg& m) {
  const std::size_t start = out.size();
  begin_frame(out, MsgType::HelloAck);
  put_string(out, m.server_name);
  put_i32(out, m.nranks);
  end_frame(out, start);
}

void encode_solve_request(ByteBuffer& out, const SolveRequestMsg& m) {
  const std::size_t start = out.size();
  begin_frame(out, MsgType::SolveRequest);
  put_u64(out, m.req_id);  // fixed offset kProtoHeaderBytes: router rewrite
  put_string(out, m.operator_key);
  put_u64(out, m.session_id);  // right after the key: router session peek
  put_u32(out, m.priority);
  put_u64(out, m.deadline_ns);
  put_u64(out, m.seed);
  put_u32(out, m.want_solution ? 1 : 0);
  put_i32(out, m.restart);
  put_i32(out, m.max_iters);
  put_f64(out, m.tol);
  put_u32(out, static_cast<std::uint32_t>(m.rhs.size()));
  for (const Vector& v : m.rhs) put_vector(out, v);
  end_frame(out, start);
}

void encode_solve_response(ByteBuffer& out, const SolveResponseMsg& m) {
  const std::size_t start = out.size();
  begin_frame(out, MsgType::SolveResponse);
  put_u64(out, m.req_id);  // fixed offset kProtoHeaderBytes: router rewrite
  put_u32(out, static_cast<std::uint32_t>(m.status));
  put_u32(out, m.reject_reason);
  put_string(out, m.detail);
  put_u32(out, (m.cache_hit ? 1u : 0u) | (m.comm ? 2u : 0u));
  put_f64(out, m.queue_seconds);
  put_f64(out, m.solve_seconds);
  put_u32(out, static_cast<std::uint32_t>(m.items.size()));
  for (const SolveItemMsg& it : m.items) {
    put_u32(out, (it.converged ? 1u : 0u) | (it.breakdown ? 2u : 0u));
    put_i32(out, it.iterations);
    put_f64(out, it.final_relres);
  }
  put_u32(out, static_cast<std::uint32_t>(m.solution.size()));
  for (const Vector& v : m.solution) put_vector(out, v);
  end_frame(out, start);
}

void encode_session_open(ByteBuffer& out, const SessionOpenMsg& m) {
  const std::size_t start = out.size();
  begin_frame(out, MsgType::SessionOpen);
  put_u64(out, m.req_id);  // fixed offset kProtoHeaderBytes: router rewrite
  put_string(out, m.operator_key);
  end_frame(out, start);
}

void encode_session_close(ByteBuffer& out, const SessionCloseMsg& m) {
  const std::size_t start = out.size();
  begin_frame(out, MsgType::SessionClose);
  put_u64(out, m.req_id);  // fixed offset kProtoHeaderBytes: router rewrite
  put_string(out, m.operator_key);
  put_u64(out, m.session_id);
  end_frame(out, start);
}

void encode_session_ack(ByteBuffer& out, const SessionAckMsg& m) {
  const std::size_t start = out.size();
  begin_frame(out, MsgType::SessionAck);
  put_u64(out, m.req_id);  // fixed offset kProtoHeaderBytes: router rewrite
  put_u64(out, m.session_id);
  put_string(out, m.detail);
  end_frame(out, start);
}

DecodeStatus decode_header(std::span<const unsigned char> hdr,
                           ProtoHeader& out) {
  if (hdr.size() < kProtoHeaderBytes) return DecodeStatus::Truncated;
  ByteReader r(hdr);
  std::uint32_t magic;
  std::uint16_t version;
  (void)r.get_u32(magic);
  (void)r.get_u16(version);
  (void)r.get_u16(out.type);
  (void)r.get_u64(out.body_len);
  if (magic != kProtoMagic) return DecodeStatus::BadMagic;
  if (version != kProtoVersion) return DecodeStatus::BadVersion;
  if (out.type < static_cast<std::uint16_t>(MsgType::Hello) ||
      out.type > static_cast<std::uint16_t>(MsgType::SessionClose))
    return DecodeStatus::BadType;
  if (out.body_len > kMaxBodyBytes) return DecodeStatus::Oversized;
  return DecodeStatus::Ok;
}

DecodeStatus decode_hello(std::span<const unsigned char> body,
                          HelloMsg& out) {
  ByteReader r(body);
  if (const DecodeStatus s = get_short_string(r, out.client_name);
      s != DecodeStatus::Ok)
    return s;
  return finish(r);
}

DecodeStatus decode_hello_ack(std::span<const unsigned char> body,
                              HelloAckMsg& out) {
  ByteReader r(body);
  if (const DecodeStatus s = get_short_string(r, out.server_name);
      s != DecodeStatus::Ok)
    return s;
  if (!r.get_i32(out.nranks)) return DecodeStatus::BadBody;
  return finish(r);
}

DecodeStatus decode_solve_request(std::span<const unsigned char> body,
                                  SolveRequestMsg& out) {
  ByteReader r(body);
  if (!r.get_u64(out.req_id)) return DecodeStatus::BadBody;
  if (const DecodeStatus s = get_short_string(r, out.operator_key);
      s != DecodeStatus::Ok)
    return s;
  std::uint32_t want, nrhs;
  if (!r.get_u64(out.session_id) || !r.get_u32(out.priority) ||
      !r.get_u64(out.deadline_ns) || !r.get_u64(out.seed) ||
      !r.get_u32(want) || !r.get_i32(out.restart) ||
      !r.get_i32(out.max_iters) || !r.get_f64(out.tol) || !r.get_u32(nrhs))
    return DecodeStatus::BadBody;
  if (nrhs > kMaxVectors) return DecodeStatus::Oversized;
  out.want_solution = want != 0;
  out.rhs.resize(nrhs);
  for (Vector& v : out.rhs)
    if (const DecodeStatus s = get_vector(r, v); s != DecodeStatus::Ok)
      return s;
  return finish(r);
}

DecodeStatus decode_solve_response(std::span<const unsigned char> body,
                                   SolveResponseMsg& out) {
  ByteReader r(body);
  std::uint32_t status, flags, nitems;
  if (!r.get_u64(out.req_id) || !r.get_u32(status) ||
      !r.get_u32(out.reject_reason))
    return DecodeStatus::BadBody;
  if (const DecodeStatus s = get_short_string(r, out.detail);
      s != DecodeStatus::Ok)
    return s;
  if (!r.get_u32(flags) || !r.get_f64(out.queue_seconds) ||
      !r.get_f64(out.solve_seconds) || !r.get_u32(nitems))
    return DecodeStatus::BadBody;
  if (status > static_cast<std::uint32_t>(SolveStatus::Failed))
    return DecodeStatus::BadBody;
  if (nitems > kMaxVectors) return DecodeStatus::Oversized;
  out.status = static_cast<SolveStatus>(status);
  out.cache_hit = (flags & 1u) != 0;
  out.comm = (flags & 2u) != 0;
  out.items.resize(nitems);
  for (SolveItemMsg& it : out.items) {
    std::uint32_t f;
    if (!r.get_u32(f) || !r.get_i32(it.iterations) ||
        !r.get_f64(it.final_relres))
      return DecodeStatus::BadBody;
    it.converged = (f & 1u) != 0;
    it.breakdown = (f & 2u) != 0;
  }
  std::uint32_t nsol;
  if (!r.get_u32(nsol)) return DecodeStatus::BadBody;
  if (nsol > kMaxVectors) return DecodeStatus::Oversized;
  out.solution.resize(nsol);
  for (Vector& v : out.solution)
    if (const DecodeStatus s = get_vector(r, v); s != DecodeStatus::Ok)
      return s;
  return finish(r);
}

DecodeStatus decode_session_open(std::span<const unsigned char> body,
                                 SessionOpenMsg& out) {
  ByteReader r(body);
  if (!r.get_u64(out.req_id)) return DecodeStatus::BadBody;
  if (const DecodeStatus s = get_short_string(r, out.operator_key);
      s != DecodeStatus::Ok)
    return s;
  return finish(r);
}

DecodeStatus decode_session_close(std::span<const unsigned char> body,
                                  SessionCloseMsg& out) {
  ByteReader r(body);
  if (!r.get_u64(out.req_id)) return DecodeStatus::BadBody;
  if (const DecodeStatus s = get_short_string(r, out.operator_key);
      s != DecodeStatus::Ok)
    return s;
  if (!r.get_u64(out.session_id)) return DecodeStatus::BadBody;
  return finish(r);
}

DecodeStatus decode_session_ack(std::span<const unsigned char> body,
                                SessionAckMsg& out) {
  ByteReader r(body);
  if (!r.get_u64(out.req_id) || !r.get_u64(out.session_id))
    return DecodeStatus::BadBody;
  if (const DecodeStatus s = get_short_string(r, out.detail);
      s != DecodeStatus::Ok)
    return s;
  return finish(r);
}

}  // namespace pfem::net::proto
