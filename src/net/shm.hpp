// Shared-memory transport: fixed-capacity SPSC rings in one MAP_SHARED
// region for co-located processes forked around it.  See transport.hpp
// for the contract.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "net/transport.hpp"

namespace pfem::net {

/// The mapped region: create it in the parent BEFORE fork(); every
/// child inherits the mapping, so all processes see the same rings.
/// One region serves exactly one transport topology (nranks pairs,
/// slot_doubles payload capacity per slot).
class ShmRegion {
 public:
  /// `slot_doubles` bounds the largest single message (a neighbor
  /// interface trace, an allreduce payload).  A push that exceeds it
  /// throws a typed Error — raise the capacity, don't truncate.
  static std::shared_ptr<ShmRegion> create(int nranks,
                                           std::size_t slot_doubles = 4096);
  ~ShmRegion();
  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] std::size_t slot_doubles() const noexcept {
    return slot_doubles_;
  }
  [[nodiscard]] unsigned char* base() const noexcept { return base_; }

 private:
  ShmRegion(unsigned char* base, std::size_t bytes, int nranks,
            std::size_t slot_doubles)
      : base_(base), bytes_(bytes), nranks_(nranks),
        slot_doubles_(slot_doubles) {}

  unsigned char* base_;
  std::size_t bytes_;
  int nranks_;
  std::size_t slot_doubles_;
};

/// Contiguous rank blocks per process, like the socket transport.
struct ShmTransportConfig {
  std::vector<int> ranks_per_proc;
  int my_proc = 0;
};

std::shared_ptr<Transport> make_shm_transport(
    std::shared_ptr<ShmRegion> region, ShmTransportConfig cfg);

/// Single-process loopback over a fresh region — all ranks in this
/// process, every message still round-tripping through the
/// fixed-capacity shared slots (polling waits included).
std::shared_ptr<Transport> make_shm_loopback_transport(
    int nranks, std::size_t slot_doubles = 4096);

}  // namespace pfem::net
