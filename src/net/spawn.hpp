// Minimal fork/wait helpers for multi-process tests, benches, and the
// shard launchers.  fork() duplicates only the calling thread — run it
// BEFORE creating any Team, server, or transport (their worker threads
// would not exist in the child, deadlocking anything that awaits them).
#pragma once

#include <functional>

#include <sys/types.h>

namespace pfem::net {

/// Fork and run `body` in the child; the child terminates with
/// _exit(body()) and never returns here (exceptions in `body` exit 99).
/// Returns the child's pid in the parent.
pid_t fork_run(const std::function<int()>& body);

/// Blocking waitpid; returns the child's exit code, or -1 if it died
/// on a signal / could not be reaped.
int wait_exit(pid_t pid);

}  // namespace pfem::net
