// Shared blocking-wait machinery for the transports (and the par
// runtime's collective cells): spin briefly, then yield, then back off.
//
// The budgets mirror what the PR-1 channel runtime tuned: arrivals in
// the solver hot paths land within a few hundred nanoseconds, so the
// spin phase absorbs nearly all waits; yielding covers oversubscription;
// whatever comes after (condvar park in-process, short sleeps for
// shared-memory polling) is the backstop for genuinely idle ranks.
#pragma once

#include <chrono>
#include <thread>

namespace pfem::net::detail {

using SteadyClock = std::chrono::steady_clock;

inline double seconds_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Busy-wait budget before parking (in-process) or sleeping (shm).
constexpr int kSpinIters = 1 << 14;

/// Spinning only helps when the partner can make progress on another
/// core; on a single-CPU machine it burns the waiter's whole timeslice
/// while the partner is runnable-but-not-running, so skip straight to
/// the yield phase there.
inline int spin_budget() {
  static const int budget =
      std::thread::hardware_concurrency() > 1 ? kSpinIters : 0;
  return budget;
}

/// sched_yield attempts between spinning and the backstop phase.
constexpr int kYieldIters = 256;

}  // namespace pfem::net::detail
