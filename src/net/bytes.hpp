// Little-endian byte codec shared by the net wire formats (the par
// transport frames in frame.hpp and the service protocol in proto.hpp).
//
// Everything is explicit memcpy into/out of unsigned char buffers: no
// struct punning, no padding on the wire, no alignment assumptions —
// which is also what makes the malformed-input paths in the decoders
// UB-free by construction.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pfem::net {

using ByteBuffer = std::vector<unsigned char>;

inline void put_u16(ByteBuffer& b, std::uint16_t v) {
  b.push_back(static_cast<unsigned char>(v & 0xff));
  b.push_back(static_cast<unsigned char>((v >> 8) & 0xff));
}

inline void put_u32(ByteBuffer& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

inline void put_u64(ByteBuffer& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b.push_back(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
}

inline void put_i32(ByteBuffer& b, std::int32_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
}

inline void put_f64(ByteBuffer& b, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(b, bits);
}

inline void put_bytes(ByteBuffer& b, const void* p, std::size_t n) {
  const auto* s = static_cast<const unsigned char*>(p);
  b.insert(b.end(), s, s + n);
}

/// Bounds-checked read cursor: every get_* returns false instead of
/// reading past the end, so decoders turn truncation into a typed
/// error, never an out-of-bounds access.
class ByteReader {
 public:
  explicit ByteReader(std::span<const unsigned char> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  [[nodiscard]] bool get_u16(std::uint16_t& v) noexcept {
    if (remaining() < 2) return false;
    v = static_cast<std::uint16_t>(data_[pos_] |
                                   (std::uint16_t(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }

  [[nodiscard]] bool get_u32(std::uint32_t& v) noexcept {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool get_u64(std::uint64_t& v) noexcept {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= std::uint64_t(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool get_i32(std::int32_t& v) noexcept {
    std::uint32_t u;
    if (!get_u32(u)) return false;
    v = static_cast<std::int32_t>(u);
    return true;
  }

  [[nodiscard]] bool get_f64(double& v) noexcept {
    std::uint64_t bits;
    if (!get_u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }

  [[nodiscard]] bool get_string(std::string& s, std::size_t n) {
    if (remaining() < n) return false;
    s.assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool get_doubles(real_t* out, std::size_t n) noexcept {
    if (remaining() < n * sizeof(real_t)) return false;
    std::memcpy(out, data_.data() + pos_, n * sizeof(real_t));
    pos_ += n * sizeof(real_t);
    return true;
  }

 private:
  std::span<const unsigned char> data_;
  std::size_t pos_ = 0;
};

}  // namespace pfem::net
