#include "net/spawn.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <exception>

#include "common/error.hpp"

namespace pfem::net {

pid_t fork_run(const std::function<int()>& body) {
  const pid_t pid = ::fork();
  PFEM_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    int code = 99;
    try {
      code = body();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[child %d] uncaught: %s\n",
                   static_cast<int>(::getpid()), e.what());
    } catch (...) {
      std::fprintf(stderr, "[child %d] uncaught non-std exception\n",
                   static_cast<int>(::getpid()));
    }
    std::fflush(nullptr);
    ::_exit(code);  // skip atexit/static dtors: parent state, not ours
  }
  return pid;
}

int wait_exit(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r == pid) break;
    if (r < 0 && errno == EINTR) continue;
    return -1;
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -1;
}

}  // namespace pfem::net
