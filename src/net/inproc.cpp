// The in-process transport: a thin Transport facade over RingCore.
// This is the zero-cost default every single-process Team uses — the
// exact channel semantics the PR-1 runtime had, one virtual call away.
#include <memory>

#include "net/ring.hpp"
#include "net/transport.hpp"

namespace pfem::net {

namespace {

class InprocTransport final : public Transport {
 public:
  explicit InprocTransport(int nranks) : ring_(nranks) {}

  [[nodiscard]] const char* name() const noexcept override {
    return "inproc";
  }
  [[nodiscard]] int nranks() const noexcept override { return ring_.size(); }
  [[nodiscard]] int rank_base() const noexcept override { return 0; }
  [[nodiscard]] int local_ranks() const noexcept override {
    return ring_.size();
  }
  [[nodiscard]] bool multi_process() const noexcept override { return false; }

  void push(int src, int dst, int tag, std::span<const real_t> data,
            bool wire_dup, const WaitStats& ws) override {
    const std::uint64_t seq =
        wire_dup ? ring_.last_seq(src, dst) : ring_.next_seq(src, dst);
    ring_.push_seq(src, dst, tag, data, seq, ws, fault::Op::Send, src, dst);
  }

  void mark_dropped(int src, int dst) override {
    ring_.mark_dropped(src, dst);
  }

  void take(int dst, int src, int tag, MsgSink& sink,
            const WaitStats& ws) override {
    ring_.take(dst, src, tag, sink, ws);
  }

  void set_timeout(double seconds) noexcept override {
    ring_.set_timeout(seconds);
  }
  void abort() noexcept override { ring_.abort(); }
  [[nodiscard]] bool is_aborted() const noexcept override {
    return ring_.is_aborted();
  }
  void reset_for_job() override { ring_.reset(); }

 private:
  RingCore ring_;
};

}  // namespace

std::shared_ptr<Transport> make_inproc_transport(int nranks) {
  PFEM_CHECK(nranks >= 1);
  return std::make_shared<InprocTransport>(nranks);
}

}  // namespace pfem::net
