// Stream-socket plumbing for the socket transport and the service
// protocol: address parsing ("unix:/path" and "tcp:host:port"),
// listen/accept/connect (with bounded connect retry for startup
// races), full-buffer read/write, and connected pairs for loopback.
//
// All functions throw pfem::Error on system-call failure; read_full
// returns false on clean EOF so callers can distinguish an orderly
// close from corruption.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "common/error.hpp"

namespace pfem::net {

/// Bind + listen on "unix:/path" (unlinks a stale socket file first) or
/// "tcp:host:port" (host may be empty for INADDR_ANY).  Returns the
/// listening fd.
[[nodiscard]] int listen_on(const std::string& addr);

/// Connect to an address in the same syntax.  Retries with a short
/// sleep until `timeout_seconds` elapses — servers and clients are
/// launched concurrently, so "connection refused / no such file" during
/// startup is expected, not fatal.
[[nodiscard]] int connect_to(const std::string& addr,
                             double timeout_seconds = 10.0);

/// Accept one connection; returns the connected fd, or -1 when the
/// listening socket was shut down (the orderly stop path).
[[nodiscard]] int accept_conn(int listen_fd);

/// A connected AF_UNIX stream pair (for in-process loopback and
/// pre-fork parent/child wiring).
[[nodiscard]] std::array<int, 2> stream_pair();

/// Read exactly n bytes.  Returns false on EOF before the first byte
/// OR mid-buffer (caller treats mid-buffer EOF as a truncated frame);
/// throws on errors other than EINTR.
[[nodiscard]] bool read_full(int fd, void* buf, std::size_t n);

/// Write exactly n bytes (SIGPIPE suppressed).  Returns false when the
/// peer has closed; throws on other errors.
[[nodiscard]] bool write_full(int fd, const void* buf, std::size_t n);

void close_fd(int fd) noexcept;

/// shutdown(2) both directions, waking any thread blocked in read —
/// the orderly way to stop reader loops before close.
void shutdown_fd(int fd) noexcept;

}  // namespace pfem::net
