// Shared-memory transport implementation.
//
// The region holds the cross-process state only: an abort word and, per
// ordered rank pair, a ring of 8 fixed-capacity payload slots whose
// `full` word is the synchronization point (std::atomic_ref, seq_cst —
// the same handshake the in-process ring uses, minus the condition
// variables, which cannot live in anonymous shared memory).  Everything
// single-sided stays process-local: the sender's head/send_seq, the
// receiver's tail/watermark/stash.  Blocked ranks spin, yield, then
// poll with short sleeps; an armed timeout turns a dead peer into a
// typed CommError exactly like the other transports.
//
// The dedup-watermark / gap-detection / stash logic deliberately
// mirrors RingCore::take line for line (see ring.hpp) — the slot
// storage differs, the chaos semantics must not.
#include "net/shm.hpp"

#include <sys/mman.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "net/wait.hpp"

namespace pfem::net {

namespace {

constexpr std::size_t kSlots = 8;
constexpr std::size_t kSlotHeaderBytes = 32;  // full, tag, seq, count (u64s)
constexpr std::size_t kRegionHeaderBytes = 64;
constexpr std::uint64_t kShmMagic = 0x31544e4d45465000ull;

[[nodiscard]] constexpr std::size_t slot_bytes(std::size_t slot_doubles) {
  return kSlotHeaderBytes + sizeof(real_t) * slot_doubles;
}

[[nodiscard]] constexpr std::size_t channel_bytes(std::size_t slot_doubles) {
  return kSlots * slot_bytes(slot_doubles);
}

[[nodiscard]] constexpr std::size_t region_bytes(int nranks,
                                                 std::size_t slot_doubles) {
  return kRegionHeaderBytes + static_cast<std::size_t>(nranks) *
                                  static_cast<std::size_t>(nranks) *
                                  channel_bytes(slot_doubles);
}

struct SlotRef {
  unsigned char* p;

  [[nodiscard]] std::atomic_ref<std::uint64_t> full() const noexcept {
    return std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(p));
  }
  [[nodiscard]] std::int64_t& tag() const noexcept {
    return *reinterpret_cast<std::int64_t*>(p + 8);
  }
  [[nodiscard]] std::uint64_t& seq() const noexcept {
    return *reinterpret_cast<std::uint64_t*>(p + 16);
  }
  [[nodiscard]] std::uint64_t& count() const noexcept {
    return *reinterpret_cast<std::uint64_t*>(p + 24);
  }
  [[nodiscard]] real_t* payload() const noexcept {
    return reinterpret_cast<real_t*>(p + kSlotHeaderBytes);
  }
};

class ShmTransport final : public Transport {
 public:
  ShmTransport(std::shared_ptr<ShmRegion> region, ShmTransportConfig cfg)
      : region_(std::move(region)),
        nprocs_(static_cast<int>(cfg.ranks_per_proc.size())),
        my_proc_(cfg.my_proc) {
    PFEM_CHECK(region_ != nullptr);
    PFEM_CHECK(nprocs_ >= 1);
    PFEM_CHECK(my_proc_ >= 0 && my_proc_ < nprocs_);
    int n = 0;
    for (int p = 0; p < nprocs_; ++p) {
      PFEM_CHECK(cfg.ranks_per_proc[static_cast<std::size_t>(p)] >= 1);
      if (p == my_proc_) rank_base_ = n;
      n += cfg.ranks_per_proc[static_cast<std::size_t>(p)];
    }
    nlocal_ = cfg.ranks_per_proc[static_cast<std::size_t>(my_proc_)];
    PFEM_CHECK_MSG(n == region_->nranks(),
                   "shm transport: ranks_per_proc sums to "
                       << n << " but the region was created for "
                       << region_->nranks() << " ranks");
    local_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                  LocalChan{});
  }

  [[nodiscard]] const char* name() const noexcept override { return "shm"; }
  [[nodiscard]] int nranks() const noexcept override {
    return region_->nranks();
  }
  [[nodiscard]] int rank_base() const noexcept override { return rank_base_; }
  [[nodiscard]] int local_ranks() const noexcept override { return nlocal_; }
  [[nodiscard]] bool multi_process() const noexcept override {
    return nprocs_ > 1;
  }

  void push(int src, int dst, int tag, std::span<const real_t> data,
            bool wire_dup, const WaitStats& ws) override {
    check_abort();
    PFEM_CHECK_MSG(
        data.size() <= region_->slot_doubles(),
        "shm transport: message of " << data.size()
            << " doubles exceeds the slot capacity of "
            << region_->slot_doubles()
            << " (raise slot_doubles when creating the region)");
    LocalChan& lc = local_chan(src, dst);
    const std::uint64_t seq = wire_dup ? lc.send_seq : ++lc.send_seq;
    const SlotRef slot = slot_at(src, dst, lc.head % kSlots);
    // Ring full: poll for the receiver to free this slot.
    if (slot.full().load(std::memory_order_seq_cst) != 0) {
      if (!poll_wait(
              [&] {
                return slot.full().load(std::memory_order_seq_cst) == 0;
              },
              ws)) {
        ws.add_timeout();
        throw fault::CommError::timeout(src, dst, fault::Op::Send,
                                        timeout_seconds());
      }
    }
    check_abort();
    slot.tag() = tag;
    slot.seq() = seq;
    slot.count() = data.size();
    std::memcpy(slot.payload(), data.data(), data.size() * sizeof(real_t));
    slot.full().store(1, std::memory_order_seq_cst);
    ++lc.head;
  }

  void mark_dropped(int src, int dst) override {
    ++local_chan(src, dst).send_seq;
  }

  void take(int dst, int src, int tag, MsgSink& sink,
            const WaitStats& ws) override {
    check_abort();
    LocalChan& lc = local_chan(src, dst);
    for (auto it = lc.stash.begin(); it != lc.stash.end(); ++it) {
      if (it->tag == tag) {
        sink.deliver(&it->payload,
                     std::span<const real_t>(it->payload.data(),
                                             it->payload.size()));
        lc.stash.erase(it);
        return;
      }
    }
    for (;;) {
      const SlotRef slot = slot_at(src, dst, lc.tail % kSlots);
      if (slot.full().load(std::memory_order_seq_cst) == 0) {
        if (!poll_wait(
                [&] {
                  return slot.full().load(std::memory_order_seq_cst) != 0;
                },
                ws)) {
          ws.add_timeout();
          throw fault::CommError::timeout(dst, src, fault::Op::Recv,
                                          timeout_seconds());
        }
      }
      check_abort();
      const std::uint64_t seq = slot.seq();
      // Wire-level duplicate: absorb below the watermark (see
      // RingCore::take for the full rationale).
      if (seq <= lc.watermark) {
        release(slot, lc);
        continue;
      }
      // Gap above the watermark: a dropped message — fail typed.
      if (seq > lc.watermark + 1)
        throw fault::CommError::lost(dst, src, lc.watermark + 1, seq);
      lc.watermark = seq;
      const int mtag = static_cast<int>(slot.tag());
      const std::size_t n = slot.count();
      if (mtag == tag) {
        sink.deliver(nullptr, std::span<const real_t>(slot.payload(), n));
        release(slot, lc);
        return;
      }
      // Tag mismatch: copy out of the shared slot into the local stash.
      lc.stash.push_back(Stashed{mtag, Vector(slot.payload(),
                                              slot.payload() + n)});
      release(slot, lc);
    }
  }

  void set_timeout(double seconds) noexcept override {
    timeout_ns_.store(
        seconds > 0.0 ? static_cast<std::int64_t>(seconds * 1e9) : 0,
        std::memory_order_seq_cst);
  }

  void abort() noexcept override {
    abort_word().store(1, std::memory_order_seq_cst);
  }

  [[nodiscard]] bool is_aborted() const noexcept override {
    return abort_word().load(std::memory_order_seq_cst) != 0;
  }

  /// Single-process loopback recycles fully (warm-team path); across
  /// processes there is no rendezvous here, so wire state keeps running
  /// — see Transport::reset_for_job.
  void reset_for_job() override {
    if (nprocs_ != 1) return;
    abort_word().store(0, std::memory_order_seq_cst);
    const int n = region_->nranks();
    for (int s = 0; s < n; ++s)
      for (int d = 0; d < n; ++d) {
        for (std::size_t k = 0; k < kSlots; ++k)
          slot_at(s, d, k).full().store(0, std::memory_order_relaxed);
        LocalChan& lc = local_chan(s, d);
        lc.head = 0;
        lc.tail = 0;
        lc.send_seq = 0;
        lc.watermark = 0;
        lc.stash.clear();
      }
  }

 private:
  struct Stashed {
    int tag;
    Vector payload;
  };

  /// Single-sided ring state (never shared across processes).
  struct LocalChan {
    std::size_t head = 0;           ///< sender-owned
    std::size_t tail = 0;           ///< receiver-owned
    std::uint64_t send_seq = 0;     ///< sender-owned
    std::uint64_t watermark = 0;    ///< receiver-owned dedup watermark
    std::vector<Stashed> stash;     ///< receiver-owned
  };

  [[nodiscard]] std::atomic_ref<std::uint64_t> abort_word() const noexcept {
    // Offset 24 of the region header (after magic, nranks, slot_doubles).
    return std::atomic_ref<std::uint64_t>(
        *reinterpret_cast<std::uint64_t*>(region_->base() + 24));
  }

  [[nodiscard]] LocalChan& local_chan(int src, int dst) {
    return local_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(region_->nranks()) +
                  static_cast<std::size_t>(dst)];
  }

  [[nodiscard]] SlotRef slot_at(int src, int dst, std::size_t k) const {
    const std::size_t sd = region_->slot_doubles();
    unsigned char* ch =
        region_->base() + kRegionHeaderBytes +
        (static_cast<std::size_t>(src) *
             static_cast<std::size_t>(region_->nranks()) +
         static_cast<std::size_t>(dst)) *
            channel_bytes(sd);
    return SlotRef{ch + k * slot_bytes(sd)};
  }

  [[nodiscard]] double timeout_seconds() const noexcept {
    return static_cast<double>(timeout_ns_.load(std::memory_order_relaxed)) *
           1e-9;
  }

  void check_abort() const {
    if (is_aborted()) throw Aborted{};
  }

  /// Spin, yield, then poll with short sleeps (no cross-process
  /// condvars).  Returns false on an armed-timeout expiry; throws
  /// Aborted on teardown.  Wait time is charged to ws.
  template <typename Pred>
  [[nodiscard]] bool poll_wait(Pred pred, const WaitStats& ws) const {
    auto done = [&] { return pred() || is_aborted(); };
    const auto t0 = detail::SteadyClock::now();
    for (int i = detail::spin_budget(); i > 0; --i) {
      if (done()) {
        ws.add_wait(detail::seconds_since(t0));
        check_abort();
        return true;
      }
      detail::cpu_relax();
    }
    for (int i = 0; i < detail::kYieldIters; ++i) {
      if (done()) {
        ws.add_wait(detail::seconds_since(t0));
        check_abort();
        return true;
      }
      std::this_thread::yield();
    }
    const std::int64_t tns = timeout_ns_.load(std::memory_order_relaxed);
    const auto deadline = tns > 0
                              ? t0 + std::chrono::nanoseconds(tns)
                              : detail::SteadyClock::time_point::max();
    while (!done()) {
      if (detail::SteadyClock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    ws.add_wait(detail::seconds_since(t0));
    check_abort();
    return true;
  }

  void release(const SlotRef& slot, LocalChan& lc) {
    slot.full().store(0, std::memory_order_seq_cst);
    ++lc.tail;
  }

  std::shared_ptr<ShmRegion> region_;
  int nprocs_;
  int my_proc_;
  int rank_base_ = 0;
  int nlocal_ = 0;
  std::vector<LocalChan> local_;
  std::atomic<std::int64_t> timeout_ns_{0};
};

}  // namespace

std::shared_ptr<ShmRegion> ShmRegion::create(int nranks,
                                             std::size_t slot_doubles) {
  PFEM_CHECK(nranks >= 1);
  PFEM_CHECK(slot_doubles >= 1);
  const std::size_t bytes = region_bytes(nranks, slot_doubles);
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  PFEM_CHECK_MSG(p != MAP_FAILED,
                 "mmap of " << bytes << " shared bytes failed");
  auto* base = static_cast<unsigned char*>(p);
  std::memset(base, 0, bytes);
  std::memcpy(base, &kShmMagic, sizeof kShmMagic);
  const std::uint64_t n64 = static_cast<std::uint64_t>(nranks);
  const std::uint64_t sd64 = slot_doubles;
  std::memcpy(base + 8, &n64, sizeof n64);
  std::memcpy(base + 16, &sd64, sizeof sd64);
  return std::shared_ptr<ShmRegion>(
      new ShmRegion(base, bytes, nranks, slot_doubles));
}

ShmRegion::~ShmRegion() { ::munmap(base_, bytes_); }

std::shared_ptr<Transport> make_shm_transport(
    std::shared_ptr<ShmRegion> region, ShmTransportConfig cfg) {
  return std::make_shared<ShmTransport>(std::move(region), std::move(cfg));
}

std::shared_ptr<Transport> make_shm_loopback_transport(
    int nranks, std::size_t slot_doubles) {
  ShmTransportConfig cfg;
  cfg.ranks_per_proc = {nranks};
  cfg.my_proc = 0;
  return std::make_shared<ShmTransport>(ShmRegion::create(nranks, slot_doubles),
                                        std::move(cfg));
}

}  // namespace pfem::net
