#include "timeint/newmark.hpp"

#include "common/error.hpp"

namespace pfem::timeint {

Newmark::Newmark(const sparse::CsrMatrix& k, const sparse::CsrMatrix& m,
                 const NewmarkOptions& opts)
    : opts_(opts), m_(m), k_eff_(k) {
  PFEM_CHECK(opts.beta > 0.0 && opts.gamma > 0.0 && opts.dt > 0.0);
  PFEM_CHECK(opts.rayleigh_alpha >= 0.0 && opts.rayleigh_beta >= 0.0);
  const real_t dt = opts.dt, beta = opts.beta, gamma = opts.gamma;
  a0_ = 1.0 / (beta * dt * dt);
  a1_ = gamma / (beta * dt);
  a2_ = 1.0 / (beta * dt);
  a3_ = 1.0 / (2.0 * beta) - 1.0;
  a4_ = gamma / beta - 1.0;
  a5_ = 0.5 * dt * (gamma / beta - 2.0);
  a6_ = dt * (1.0 - gamma);
  a7_ = gamma * dt;
  k_eff_.add_same_pattern(m, a0_);  // K_eff = K + a0*M (Eq. 52)

  damped_ = opts.rayleigh_alpha > 0.0 || opts.rayleigh_beta > 0.0;
  if (damped_) {
    // Rayleigh damping C = alpha*M + beta_r*K (same sparsity as K, M).
    damping_ = k;
    auto vals = damping_.values();
    for (real_t& v : vals) v *= opts.rayleigh_beta;
    damping_.add_same_pattern(m, opts.rayleigh_alpha);
    k_eff_.add_same_pattern(damping_, a1_);  // + a1*C
  }
}

Vector Newmark::effective_rhs(std::span<const real_t> u,
                              std::span<const real_t> v,
                              std::span<const real_t> a,
                              std::span<const real_t> f_next) const {
  const std::size_t n = u.size();
  PFEM_CHECK(v.size() == n && a.size() == n && f_next.size() == n);
  Vector tmp(n), rhs(n);
  for (std::size_t i = 0; i < n; ++i)
    tmp[i] = a0_ * u[i] + a2_ * v[i] + a3_ * a[i];
  m_.spmv(tmp, rhs);
  for (std::size_t i = 0; i < n; ++i) rhs[i] += f_next[i];
  if (damped_) {
    for (std::size_t i = 0; i < n; ++i)
      tmp[i] = a1_ * u[i] + a4_ * v[i] + a5_ * a[i];
    damping_.spmv_add(tmp, rhs);
  }
  return rhs;
}

void Newmark::advance(std::span<const real_t> u_new, std::span<real_t> u,
                      std::span<real_t> v, std::span<real_t> a) const {
  const std::size_t n = u_new.size();
  PFEM_CHECK(u.size() == n && v.size() == n && a.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    const real_t a_new = a0_ * (u_new[i] - u[i]) - a2_ * v[i] - a3_ * a[i];
    v[i] = v[i] + a6_ * a[i] + a7_ * a_new;
    a[i] = a_new;
    u[i] = u_new[i];
  }
}

}  // namespace pfem::timeint
