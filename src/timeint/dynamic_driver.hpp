// Elastodynamics solve drivers: march Newmark steps and record the
// iterative-solver behaviour per step — the paper's "dynamic analysis"
// experiments (Figs. 12/14 and the dynamic columns of the speedup
// studies).
#pragma once

#include <functional>
#include <memory>

#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "core/precond.hpp"
#include "fem/problems.hpp"
#include "partition/edd.hpp"
#include "timeint/newmark.hpp"

namespace pfem::timeint {

struct DynamicRunOptions {
  NewmarkOptions newmark;
  index_t steps = 5;
  core::SolveOptions solve;
};

struct DynamicRunResult {
  std::vector<index_t> iterations_per_step;
  index_t total_iterations = 0;
  std::vector<real_t> first_step_history;  ///< residual history, step 1
  Vector u_final;
  bool all_converged = true;
};

/// Builds the preconditioner for the *scaled* effective matrix once per
/// run (the effective matrix is constant over steps).
using PrecondFactory = std::function<std::unique_ptr<core::Preconditioner>(
    const sparse::CsrMatrix& a_scaled)>;

/// Sequential dynamic run: constant load f, homogeneous initial
/// conditions, initial acceleration from M a₀ = f − K u₀.
[[nodiscard]] DynamicRunResult run_dynamic_sequential(
    const sparse::CsrMatrix& k, const sparse::CsrMatrix& m,
    std::span<const real_t> f, const DynamicRunOptions& opts,
    const PrecondFactory& make_precond);

struct EddDynamicResult : DynamicRunResult {
  /// Element-wise per-rank counters summed over all steps' solves.
  std::vector<par::PerfCounters> rank_counters_total;
};

/// EDD dynamic run: per-subdomain effective matrices
/// K̂_eff = K̂_loc + a0·M̂_loc (same sub-assembly layout; never merged
/// across interfaces), each step solved by the parallel EDD-FGMRES.
[[nodiscard]] EddDynamicResult run_dynamic_edd(
    const fem::Mesh& mesh, const fem::DofMap& dofs, const fem::Material& mat,
    const partition::EddPartition& part, std::span<const real_t> f,
    const DynamicRunOptions& opts, const core::PolySpec& poly,
    core::EddVariant variant = core::EddVariant::Enhanced);

}  // namespace pfem::timeint
