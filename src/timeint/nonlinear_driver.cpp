#include "timeint/nonlinear_driver.hpp"

#include <cmath>

#include "common/error.hpp"
#include "core/diag_scaling.hpp"
#include "core/precond.hpp"
#include "fem/assembly.hpp"
#include "fem/elements.hpp"
#include "fem/stress.hpp"
#include "la/vector_ops.hpp"
#include "sparse/coo.hpp"

namespace pfem::timeint {

namespace {

/// Equivalent centroid strain of element e for displacement u.
real_t equivalent_strain(const fem::Mesh& mesh, const fem::DofMap& dofs,
                         index_t e, std::span<const real_t> u) {
  // Reuse the stress-recovery strain path by computing strains from the
  // element kinematics directly.
  const IndexVector gd = fem::element_dofs(mesh, dofs, e);
  Vector ue(gd.size(), 0.0);
  for (std::size_t k = 0; k < gd.size(); ++k)
    if (gd[k] >= 0) ue[k] = u[static_cast<std::size_t>(gd[k])];

  const auto nodes = mesh.elem_nodes(e);
  Vector eps;
  switch (mesh.type()) {
    case fem::ElemType::Quad4: {
      fem::QuadCoords xy{};
      for (int i = 0; i < 4; ++i) {
        xy[2 * i] = mesh.x(nodes[i]);
        xy[2 * i + 1] = mesh.y(nodes[i]);
      }
      eps = fem::quad4_centroid_strain(xy, ue);
      break;
    }
    case fem::ElemType::Tri3: {
      fem::TriCoords xy{};
      for (int i = 0; i < 3; ++i) {
        xy[2 * i] = mesh.x(nodes[i]);
        xy[2 * i + 1] = mesh.y(nodes[i]);
      }
      eps = fem::tri3_centroid_strain(xy, ue);
      break;
    }
    case fem::ElemType::Quad8: {
      fem::Quad8Coords xy{};
      for (int i = 0; i < 8; ++i) {
        xy[2 * i] = mesh.x(nodes[i]);
        xy[2 * i + 1] = mesh.y(nodes[i]);
      }
      eps = fem::quad8_centroid_strain(xy, ue);
      break;
    }
    case fem::ElemType::Hex8: {
      fem::HexCoords xyz{};
      for (int i = 0; i < 8; ++i) {
        xyz[3 * i] = mesh.x(nodes[i]);
        xyz[3 * i + 1] = mesh.y(nodes[i]);
        xyz[3 * i + 2] = mesh.z(nodes[i]);
      }
      const Vector e6 = fem::hex8_centroid_strain(xyz, ue);
      return std::sqrt(e6[0] * e6[0] + e6[1] * e6[1] + e6[2] * e6[2] +
                       0.5 * (e6[3] * e6[3] + e6[4] * e6[4] +
                              e6[5] * e6[5]));
    }
  }
  return std::sqrt(eps[0] * eps[0] + eps[1] * eps[1] +
                   0.5 * eps[2] * eps[2]);
}

/// Assemble Σ f_e · Ke over all elements in the global numbering.
sparse::CsrMatrix assemble_scaled(const fem::Mesh& mesh,
                                  const fem::DofMap& dofs,
                                  const fem::Material& mat,
                                  std::span<const real_t> factors) {
  const index_t n = dofs.num_free();
  sparse::CooBuilder coo(n, n);
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const la::DenseMatrix ke =
        fem::element_matrix(mesh, mat, fem::Operator::Stiffness, e);
    const IndexVector gd = fem::element_dofs(mesh, dofs, e);
    const real_t fe = factors[static_cast<std::size_t>(e)];
    for (std::size_t r = 0; r < gd.size(); ++r) {
      if (gd[r] < 0) continue;
      for (std::size_t c = 0; c < gd.size(); ++c) {
        if (gd[c] < 0) continue;
        coo.add(gd[r], gd[c],
                fe * ke(as_index(r), as_index(c)));
      }
    }
  }
  return coo.build();
}

/// Assemble Σ f_e · Ke over a subdomain's elements in its local
/// numbering (no interface merging — the EDD discipline).
sparse::CsrMatrix assemble_scaled_local(const fem::Mesh& mesh,
                                        const fem::DofMap& dofs,
                                        const fem::Material& mat,
                                        const partition::EddSubdomain& sub,
                                        std::span<const real_t> factors,
                                        const IndexVector& g2l) {
  sparse::CooBuilder coo(sub.n_local(), sub.n_local());
  for (index_t e : sub.elems) {
    const la::DenseMatrix ke =
        fem::element_matrix(mesh, mat, fem::Operator::Stiffness, e);
    const IndexVector gd = fem::element_dofs(mesh, dofs, e);
    const real_t fe = factors[static_cast<std::size_t>(e)];
    for (std::size_t r = 0; r < gd.size(); ++r) {
      if (gd[r] < 0) continue;
      const index_t lr = g2l[static_cast<std::size_t>(gd[r])];
      for (std::size_t c = 0; c < gd.size(); ++c) {
        if (gd[c] < 0) continue;
        const index_t lc = g2l[static_cast<std::size_t>(gd[c])];
        coo.add(lr, lc, fe * ke(as_index(r), as_index(c)));
      }
    }
  }
  return coo.build();
}

}  // namespace

Vector secant_factors(const fem::Mesh& mesh, const fem::DofMap& dofs,
                      std::span<const real_t> u, real_t softening) {
  Vector factors(static_cast<std::size_t>(mesh.num_elems()), 1.0);
  if (softening == 0.0) return factors;
  for (index_t e = 0; e < mesh.num_elems(); ++e) {
    const real_t eq = equivalent_strain(mesh, dofs, e, u);
    factors[static_cast<std::size_t>(e)] = 1.0 / (1.0 + softening * eq);
  }
  return factors;
}

NonlinearResult solve_nonlinear_sequential(const fem::Mesh& mesh,
                                           const fem::DofMap& dofs,
                                           const fem::Material& mat,
                                           std::span<const real_t> f,
                                           const NonlinearOptions& opts) {
  PFEM_CHECK(opts.softening >= 0.0 && opts.max_picard >= 1);
  const std::size_t n = f.size();
  PFEM_CHECK(n == static_cast<std::size_t>(dofs.num_free()));

  NonlinearResult result;
  result.u.assign(n, 0.0);
  Vector u_prev(n, 0.0);

  for (int it = 0; it < opts.max_picard; ++it) {
    const Vector factors =
        secant_factors(mesh, dofs, result.u, opts.softening);
    const sparse::CsrMatrix k = assemble_scaled(mesh, dofs, mat, factors);
    const core::ScaledSystem s = core::scale_system(k, f);
    core::Ilu0Precond precond(s.a);
    Vector x(n, 0.0);
    const core::SolveReport sr =
        core::fgmres(s.a, s.b, x, precond, opts.solve);
    PFEM_CHECK_MSG(sr.converged, "inner linear solve failed");
    result.total_linear_iterations += sr.iterations;
    la::copy(result.u, u_prev);
    result.u = s.unscale(x);
    ++result.picard_iterations;

    real_t du = 0.0, scale = 1e-30;
    for (std::size_t i = 0; i < n; ++i) {
      du = std::max(du, std::abs(result.u[i] - u_prev[i]));
      scale = std::max(scale, std::abs(result.u[i]));
    }
    result.picard_history.push_back(du / scale);
    if (du <= opts.picard_tol * scale || opts.softening == 0.0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

NonlinearResult solve_nonlinear_edd(const fem::Mesh& mesh,
                                    const fem::DofMap& dofs,
                                    const fem::Material& mat,
                                    const partition::EddPartition& part,
                                    std::span<const real_t> f,
                                    const core::PolySpec& poly,
                                    const NonlinearOptions& opts) {
  PFEM_CHECK(opts.softening >= 0.0 && opts.max_picard >= 1);
  const std::size_t n = f.size();
  PFEM_CHECK(n == static_cast<std::size_t>(part.n_global));

  // Per-subdomain global->local maps, built once.
  std::vector<IndexVector> g2l(part.subs.size(),
                               IndexVector(n, -1));
  for (std::size_t s = 0; s < part.subs.size(); ++s)
    for (std::size_t l = 0; l < part.subs[s].local_to_global.size(); ++l)
      g2l[s][static_cast<std::size_t>(part.subs[s].local_to_global[l])] =
          as_index(l);

  NonlinearResult result;
  result.u.assign(n, 0.0);
  Vector u_prev(n, 0.0);

  for (int it = 0; it < opts.max_picard; ++it) {
    const Vector factors =
        secant_factors(mesh, dofs, result.u, opts.softening);
    std::vector<sparse::CsrMatrix> k_loc;
    k_loc.reserve(part.subs.size());
    for (std::size_t s = 0; s < part.subs.size(); ++s)
      k_loc.push_back(assemble_scaled_local(mesh, dofs, mat, part.subs[s],
                                            factors, g2l[s]));
    const core::DistSolve sr =
        core::solve_edd(part, f, poly, opts.solve,
                        core::EddVariant::Enhanced, &k_loc);
    PFEM_CHECK_MSG(sr.converged, "inner EDD solve failed");
    result.total_linear_iterations += sr.iterations;
    la::copy(result.u, u_prev);
    result.u = sr.x;
    ++result.picard_iterations;

    real_t du = 0.0, scale = 1e-30;
    for (std::size_t i = 0; i < n; ++i) {
      du = std::max(du, std::abs(result.u[i] - u_prev[i]));
      scale = std::max(scale, std::abs(result.u[i]));
    }
    result.picard_history.push_back(du / scale);
    if (du <= opts.picard_tol * scale || opts.softening == 0.0) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace pfem::timeint
