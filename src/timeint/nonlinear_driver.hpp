// Quasi-static nonlinear driver (Picard / successive substitution).
//
// The paper scopes its solver to "linear/nonlinear, static or dynamic"
// implicit FE computations (§2.1): in the nonlinear case each iteration
// re-assembles a deformation-dependent stiffness and calls the same
// preconditioned iterative solver.  This driver implements that loop for
// a strain-softening secant material
//
//   E_e(u) = E0 / (1 + c · ε_eq(u_e)),   ε_eq = √(εxx² + εyy² + ½γxy²)
//
// evaluated at each element centroid (c = 0 recovers the linear
// problem exactly).  Because Young's modulus scales the element
// stiffness linearly, re-assembly is a cheap per-element rescale.
// Both a sequential path and an EDD-parallel path (per-subdomain
// re-assembly — still no interface merging) are provided.
#pragma once

#include "core/edd_solver.hpp"
#include "core/fgmres.hpp"
#include "fem/problems.hpp"
#include "partition/edd.hpp"

namespace pfem::timeint {

struct NonlinearOptions {
  real_t softening = 0.1;       ///< c; 0 = linear
  int max_picard = 100;         ///< fixed-point iteration cap
  real_t picard_tol = 1e-8;     ///< relative ‖u_{k+1} − u_k‖∞ target
  core::SolveOptions solve;     ///< inner linear-solver settings
};

struct NonlinearResult {
  Vector u;
  bool converged = false;
  int picard_iterations = 0;
  index_t total_linear_iterations = 0;
  std::vector<real_t> picard_history;  ///< relative update per iteration
};

/// Sequential Picard loop with an ILU(0)-preconditioned FGMRES inner
/// solve on the scaled system.
[[nodiscard]] NonlinearResult solve_nonlinear_sequential(
    const fem::Mesh& mesh, const fem::DofMap& dofs, const fem::Material& mat,
    std::span<const real_t> f, const NonlinearOptions& opts = {});

/// EDD-parallel Picard loop: each iteration re-assembles the subdomain
/// matrices from the current deformation and runs EDD-FGMRES.
[[nodiscard]] NonlinearResult solve_nonlinear_edd(
    const fem::Mesh& mesh, const fem::DofMap& dofs, const fem::Material& mat,
    const partition::EddPartition& part, std::span<const real_t> f,
    const core::PolySpec& poly, const NonlinearOptions& opts = {});

/// The per-element secant factors E_e(u)/E0 for the current displacement
/// (exposed for tests).
[[nodiscard]] Vector secant_factors(const fem::Mesh& mesh,
                                    const fem::DofMap& dofs,
                                    std::span<const real_t> u,
                                    real_t softening);

}  // namespace pfem::timeint
