#include "timeint/dynamic_driver.hpp"

#include "common/error.hpp"
#include "core/diag_scaling.hpp"
#include "fem/assembly.hpp"
#include "la/vector_ops.hpp"

namespace pfem::timeint {

namespace {

/// Initial acceleration: M a0 = f - K u0 (u0 = 0 here), solved with
/// Jacobi-FGMRES — M is well conditioned, this converges in a few steps.
Vector initial_acceleration(const sparse::CsrMatrix& m,
                            std::span<const real_t> f) {
  Vector a(f.size(), 0.0);
  core::JacobiPrecond jacobi(m);
  core::SolveOptions opts;
  opts.tol = 1e-10;
  const core::SolveReport res = core::fgmres(m, f, a, jacobi, opts);
  PFEM_CHECK_MSG(res.converged, "initial-acceleration solve failed");
  return a;
}

}  // namespace

DynamicRunResult run_dynamic_sequential(const sparse::CsrMatrix& k,
                                        const sparse::CsrMatrix& m,
                                        std::span<const real_t> f,
                                        const DynamicRunOptions& opts,
                                        const PrecondFactory& make_precond) {
  PFEM_CHECK(opts.steps >= 1);
  const std::size_t n = f.size();
  const Newmark nm(k, m, opts.newmark);

  // Scale the (step-invariant) effective matrix once; per step only the
  // rhs changes.
  Vector zero(n, 0.0);
  core::ScaledSystem scaled = core::scale_system(nm.k_eff(), zero);
  std::unique_ptr<core::Preconditioner> precond = make_precond(scaled.a);
  PFEM_CHECK(precond != nullptr);

  DynamicRunResult result;
  Vector u(n, 0.0), v(n, 0.0);
  Vector a = initial_acceleration(m, f);

  Vector x(n), b(n);
  for (index_t step = 0; step < opts.steps; ++step) {
    const Vector rhs = nm.effective_rhs(u, v, a, f);
    for (std::size_t i = 0; i < n; ++i) b[i] = scaled.d[i] * rhs[i];
    la::fill(x, 0.0);
    const core::SolveReport sr =
        core::fgmres(scaled.a, b, x, *precond, opts.solve);
    result.all_converged = result.all_converged && sr.converged;
    result.iterations_per_step.push_back(sr.iterations);
    result.total_iterations += sr.iterations;
    if (step == 0) result.first_step_history = sr.history;

    const Vector u_new = scaled.unscale(x);
    nm.advance(u_new, u, v, a);
  }
  result.u_final = std::move(u);
  return result;
}

EddDynamicResult run_dynamic_edd(const fem::Mesh& mesh,
                                 const fem::DofMap& dofs,
                                 const fem::Material& mat,
                                 const partition::EddPartition& part,
                                 std::span<const real_t> f,
                                 const DynamicRunOptions& opts,
                                 const core::PolySpec& poly,
                                 core::EddVariant variant) {
  PFEM_CHECK(opts.steps >= 1);
  const std::size_t n = f.size();
  PFEM_CHECK(n == static_cast<std::size_t>(part.n_global));

  // Global operators for the (sequential) Newmark bookkeeping.
  const sparse::CsrMatrix k = fem::assemble(mesh, dofs, mat,
                                            fem::Operator::Stiffness);
  const sparse::CsrMatrix m = fem::assemble(mesh, dofs, mat,
                                            fem::Operator::Mass);
  const Newmark nm(k, m, opts.newmark);

  // Per-subdomain effective matrices: K̂_loc + a0·M̂_loc.
  std::vector<sparse::CsrMatrix> k_eff_loc;
  k_eff_loc.reserve(part.subs.size());
  for (int s = 0; s < part.nparts(); ++s) {
    sparse::CsrMatrix ke = part.subs[static_cast<std::size_t>(s)].k_loc;
    const sparse::CsrMatrix ml = partition::assemble_edd_local(
        mesh, dofs, mat, fem::Operator::Mass, part, s);
    ke.add_same_pattern(ml, nm.a0());
    k_eff_loc.push_back(std::move(ke));
  }

  EddDynamicResult result;
  result.rank_counters_total.resize(part.subs.size());
  Vector u(n, 0.0), v(n, 0.0);
  Vector a = initial_acceleration(m, f);

  for (index_t step = 0; step < opts.steps; ++step) {
    const Vector rhs = nm.effective_rhs(u, v, a, f);
    const core::DistSolve sr = core::solve_edd(
        part, rhs, poly, opts.solve, variant, &k_eff_loc);
    result.all_converged = result.all_converged && sr.converged;
    result.iterations_per_step.push_back(sr.iterations);
    result.total_iterations += sr.iterations;
    if (step == 0) result.first_step_history = sr.history;
    for (std::size_t r = 0; r < sr.rank_counters.size(); ++r)
      result.rank_counters_total[r] += sr.rank_counters[r];

    nm.advance(sr.x, u, v, a);
  }
  result.u_final = std::move(u);
  return result;
}

}  // namespace pfem::timeint
