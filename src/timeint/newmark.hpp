// Newmark-β implicit time integration for M ü + K u = f (Eq. 51).
//
// The paper's "family of generalized integration operators" reduces, per
// time step, to an effective linear system (Eq. 52)
//   [a0·M + K] u_{n+1} = f̂_{n+1}
// which is what the iterative solver is benchmarked on in the dynamic
// experiments (Figs. 12/14).  The default parameters (β = 1/4, γ = 1/2,
// average acceleration) are unconditionally stable.
#pragma once

#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::timeint {

struct NewmarkOptions {
  real_t beta = 0.25;
  real_t gamma = 0.5;
  real_t dt = 0.05;
  /// Rayleigh damping C = rayleigh_alpha·M + rayleigh_beta·K (0 = none).
  real_t rayleigh_alpha = 0.0;
  real_t rayleigh_beta = 0.0;
};

/// Precomputed Newmark operator: effective stiffness + step updates.
class Newmark {
 public:
  /// K and M must share a sparsity pattern (same mesh/dofs assembly).
  Newmark(const sparse::CsrMatrix& k, const sparse::CsrMatrix& m,
          const NewmarkOptions& opts = {});

  [[nodiscard]] const sparse::CsrMatrix& k_eff() const noexcept {
    return k_eff_;
  }
  [[nodiscard]] const NewmarkOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] real_t a0() const noexcept { return a0_; }

  /// Effective right-hand side f̂_{n+1} = f_{n+1} + M(a0·u + a2·v + a3·a).
  [[nodiscard]] Vector effective_rhs(std::span<const real_t> u,
                                     std::span<const real_t> v,
                                     std::span<const real_t> a,
                                     std::span<const real_t> f_next) const;

  /// Given the solved u_{n+1}, advance (u, v, a) in place.
  void advance(std::span<const real_t> u_new, std::span<real_t> u,
               std::span<real_t> v, std::span<real_t> a) const;

 private:
  NewmarkOptions opts_;
  const sparse::CsrMatrix& m_;
  sparse::CsrMatrix k_eff_;
  sparse::CsrMatrix damping_;  ///< C (empty pattern copy when undamped)
  bool damped_ = false;
  real_t a0_, a1_, a2_, a3_, a4_, a5_, a6_, a7_;
};

}  // namespace pfem::timeint
