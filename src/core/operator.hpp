// Abstract linear operator.
//
// The polynomial preconditioners apply P_m(A)v purely through mat-vec
// products, so they are written against this minimal operator concept.
// Sequentially the operator is a CSR SpMV; in the EDD/RDD solvers it is
// the *distributed* mat-vec (local SpMV + nearest-neighbor exchange),
// which is precisely how the paper parallelizes preconditioning at zero
// extra machinery.
#pragma once

#include <functional>
#include <span>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sparse/csr.hpp"

namespace pfem::core {

class LinearOp {
 public:
  using ApplyFn =
      std::function<void(std::span<const real_t>, std::span<real_t>)>;

  LinearOp() = default;
  LinearOp(index_t n, ApplyFn fn) : n_(n), fn_(std::move(fn)) {}

  [[nodiscard]] index_t size() const noexcept { return n_; }

  /// y <- A x.  x and y must not alias.
  void apply(std::span<const real_t> x, std::span<real_t> y) const {
    PFEM_DEBUG_CHECK(fn_ != nullptr);
    PFEM_DEBUG_CHECK(x.size() == static_cast<std::size_t>(n_));
    PFEM_DEBUG_CHECK(y.size() == static_cast<std::size_t>(n_));
    fn_(x, y);
  }

  /// Wrap a CSR matrix (no counters).
  [[nodiscard]] static LinearOp from_csr(const sparse::CsrMatrix& a) {
    PFEM_CHECK(a.rows() == a.cols());
    return LinearOp(a.rows(),
                    [&a](std::span<const real_t> x, std::span<real_t> y) {
                      a.spmv(x, y);
                    });
  }

 private:
  index_t n_ = 0;
  ApplyFn fn_;
};

}  // namespace pfem::core
