#include "core/gls_poly.hpp"

#include <cmath>

#include "common/error.hpp"

namespace pfem::core {

OrthoBasis GlsPolynomial::build_basis(const Theta& theta, int degree,
                                      int points_per_interval,
                                      QuadratureRule& w_rule_out) {
  validate_theta(theta);
  PFEM_CHECK(degree >= 0);
  if (points_per_interval <= 0)
    points_per_interval = std::max(64, 8 * (degree + 1));
  w_rule_out = chebyshev_rule(theta, points_per_interval);
  // Modified measure λ²·w for the φ basis ({λφ_i} orthonormal under w).
  QuadratureRule mod = w_rule_out;
  for (std::size_t j = 0; j < mod.nodes.size(); ++j)
    mod.weights[j] *= mod.nodes[j] * mod.nodes[j];
  return OrthoBasis(mod, degree);
}

GlsPolynomial::GlsPolynomial(Theta theta, int degree, int points_per_interval)
    : theta_(std::move(theta)), m_(degree),
      basis_([&] {
        QuadratureRule w_rule;
        OrthoBasis b = build_basis(theta_, degree, points_per_interval,
                                   w_rule);
        // Stash the w-rule via the lambda capture trick is not possible
        // here; μ is computed below from a re-built rule instead.
        return b;
      }()) {
  // μ_i = <1, λ φ_i>_w = Σ_j w_j λ_j φ_i(λ_j), with φ_i evaluated at the
  // shared node set (w-rule and modified rule share nodes).
  const int ppi =
      points_per_interval > 0 ? points_per_interval : std::max(64, 8 * (m_ + 1));
  const QuadratureRule w_rule = chebyshev_rule(theta_, ppi);
  PFEM_CHECK(w_rule.nodes.size() == basis_.num_nodes());
  mu_.assign(static_cast<std::size_t>(m_) + 1, 0.0);
  for (int i = 0; i <= m_; ++i) {
    const auto phi = basis_.node_values(i);
    real_t s = 0.0;
    for (std::size_t j = 0; j < w_rule.nodes.size(); ++j)
      s += w_rule.weights[j] * w_rule.nodes[j] * phi[j];
    mu_[static_cast<std::size_t>(i)] = s;
  }
}

void GlsPolynomial::apply(const LinearOp& a, std::span<const real_t> v,
                          std::span<real_t> z) const {
  const std::size_t n = v.size();
  PFEM_CHECK(z.size() == n);
  // u_i = φ_i(A) v by the three-term recursion; z accumulates Σ μ_i u_i.
  Vector u_prev(n, 0.0);
  Vector u(n);
  const real_t inv0 = 1.0 / basis_.sqrt_beta(0);
  for (std::size_t i = 0; i < n; ++i) u[i] = inv0 * v[i];
  for (std::size_t i = 0; i < n; ++i) z[i] = mu_[0] * u[i];

  Vector au(n);
  for (int i = 0; i < m_; ++i) {
    a.apply(u, au);
    const real_t ai = basis_.alpha(i);
    const real_t sb_i = basis_.sqrt_beta(i);     // pairs with u_prev (0 at i=0)
    const real_t sb_n = basis_.sqrt_beta(i + 1);
    const real_t mu_next = mu_[static_cast<std::size_t>(i) + 1];
    // u_{i+1} overwrites u_prev (dead after t), then swaps into u — one
    // write stream less than copying u into u_prev elementwise.
    for (std::size_t k = 0; k < n; ++k) {
      const real_t t =
          (au[k] - ai * u[k] - (i > 0 ? sb_i * u_prev[k] : 0.0)) / sb_n;
      u_prev[k] = t;
      z[k] += mu_next * t;
    }
    std::swap(u_prev, u);
  }
}

real_t GlsPolynomial::eval(real_t lambda) const {
  const Vector phi = basis_.eval_all(lambda);
  real_t s = 0.0;
  for (int i = 0; i <= m_; ++i)
    s += mu_[static_cast<std::size_t>(i)] * phi[static_cast<std::size_t>(i)];
  return s;
}

real_t GlsPolynomial::residual(real_t lambda) const {
  return 1.0 - lambda * eval(lambda);
}

real_t GlsPolynomial::residual_sup_on_theta(int samples_per_interval) const {
  PFEM_CHECK(samples_per_interval >= 2);
  real_t sup = 0.0;
  for (const Interval& iv : theta_) {
    for (int k = 0; k < samples_per_interval; ++k) {
      const real_t lambda =
          iv.lo + (iv.hi - iv.lo) * static_cast<real_t>(k) /
                      static_cast<real_t>(samples_per_interval - 1);
      sup = std::max(sup, std::abs(residual(lambda)));
    }
  }
  return sup;
}

Vector GlsPolynomial::power_coeffs() const {
  // Power-basis coefficients of φ_i via the recursion, accumulated with μ.
  const std::size_t sz = static_cast<std::size_t>(m_) + 1;
  Vector phi_prev(sz, 0.0), phi_cur(sz, 0.0), acc(sz, 0.0), tmp(sz, 0.0);
  phi_cur[0] = 1.0 / basis_.sqrt_beta(0);
  for (std::size_t k = 0; k < sz; ++k) acc[k] = mu_[0] * phi_cur[k];
  for (int i = 0; i < m_; ++i) {
    const real_t ai = basis_.alpha(i);
    const real_t sb_i = basis_.sqrt_beta(i);
    const real_t sb_n = basis_.sqrt_beta(i + 1);
    // tmp = (λ·phi_cur − ai·phi_cur − sb_i·phi_prev) / sb_n.
    for (std::size_t k = 0; k < sz; ++k) tmp[k] = 0.0;
    for (std::size_t k = 0; k + 1 < sz; ++k)
      tmp[k + 1] += phi_cur[k];  // λ shift
    for (std::size_t k = 0; k < sz; ++k) {
      tmp[k] -= ai * phi_cur[k];
      if (i > 0) tmp[k] -= sb_i * phi_prev[k];
      tmp[k] /= sb_n;
    }
    phi_prev = phi_cur;
    phi_cur = tmp;
    const real_t mu_next = mu_[static_cast<std::size_t>(i) + 1];
    for (std::size_t k = 0; k < sz; ++k) acc[k] += mu_next * phi_cur[k];
  }
  return acc;
}

real_t GlsPolynomial::coeff_abs_sum() const {
  real_t s = 0.0;
  for (real_t c : power_coeffs()) s += std::abs(c);
  return s;
}

}  // namespace pfem::core
