// Spectrum estimate Θ — a union of disjoint intervals (Eq. 18).
//
// The GLS polynomial is built on Θ = ∪_k (l_k, h_k) with
// l_1 < h_1 <= l_2 < ... and 0 ∉ Θ, which admits symmetric *indefinite*
// systems (intervals on both sides of zero).  After norm-1 diagonal
// scaling, SPD systems always admit Θ = (ε, 1) (Eq. 12), which is the
// solver default.
#pragma once

#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pfem::core {

struct Interval {
  real_t lo;
  real_t hi;
};

using Theta = std::vector<Interval>;

/// Validate Eq. 18: non-empty, each lo < hi, ordered and disjoint, 0 ∉ Θ.
inline void validate_theta(const Theta& theta) {
  PFEM_CHECK_MSG(!theta.empty(), "Theta must contain at least one interval");
  for (std::size_t k = 0; k < theta.size(); ++k) {
    PFEM_CHECK_MSG(theta[k].lo < theta[k].hi,
                   "Theta interval " << k << " is empty or inverted");
    // Closed-interval semantics, matching theta_contains: an interval
    // merely TOUCHING 0 (lo == 0 or hi == 0) already violates 0 ∉ Θ and
    // would hand the GLS basis a point at 0.
    PFEM_CHECK_MSG(!(theta[k].lo <= 0.0 && theta[k].hi >= 0.0),
                   "Theta must not contain 0 (Eq. 18)");
    if (k > 0)
      PFEM_CHECK_MSG(theta[k - 1].hi <= theta[k].lo,
                     "Theta intervals must be ordered and disjoint");
  }
}

/// Is lambda inside Θ (closed intervals)?
[[nodiscard]] inline bool theta_contains(const Theta& theta, real_t lambda) {
  for (const Interval& iv : theta)
    if (lambda >= iv.lo && lambda <= iv.hi) return true;
  return false;
}

/// The default Θ after norm-1 diagonal scaling: (ε, 1) with ε the machine
/// precision (paper §6.1: "Θ can be simply defined as (ε, 1)").
[[nodiscard]] inline Theta default_theta_after_scaling() {
  return {Interval{std::numeric_limits<real_t>::epsilon(), 1.0}};
}

}  // namespace pfem::core
