#include "core/precond.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pfem::core {

void IdentityPrecond::apply(std::span<const real_t> v, std::span<real_t> z) {
  PFEM_CHECK(v.size() == z.size());
  std::copy(v.begin(), v.end(), z.begin());
}

JacobiPrecond::JacobiPrecond(const sparse::CsrMatrix& a)
    : inv_diag_(a.diagonal()) {
  for (real_t& d : inv_diag_) {
    PFEM_CHECK_MSG(d != 0.0, "Jacobi: zero diagonal entry");
    d = 1.0 / d;
  }
}

void JacobiPrecond::apply(std::span<const real_t> v, std::span<real_t> z) {
  PFEM_CHECK(v.size() == inv_diag_.size() && z.size() == inv_diag_.size());
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) z[i] = inv_diag_[i] * v[i];
}

Ilu0Precond::Ilu0Precond(const sparse::CsrMatrix& a) : ilu_(a) {}

void Ilu0Precond::apply(std::span<const real_t> v, std::span<real_t> z) {
  ilu_.solve(v, z);
}

IlukPrecond::IlukPrecond(const sparse::CsrMatrix& a, int level)
    : iluk_(a, level) {}

void IlukPrecond::apply(std::span<const real_t> v, std::span<real_t> z) {
  iluk_.solve(v, z);
}

}  // namespace pfem::core
